// Command loadfactor runs the hashing-scheme laboratory behind
// Figures 3d, 19a and 19b of the CHIME paper: for each collision-
// resolution scheme used on disaggregated memory, it measures the
// maximum load factor a fixed-size table sustains before the first
// insertion failure, alongside the scheme's read-amplification factor.
//
// Usage:
//
//	loadfactor [-entries 128] [-trials 100] [-seed 42]
package main

import (
	"flag"
	"fmt"

	"chime/internal/hopscotch"
)

func main() {
	entries := flag.Int("entries", 128, "hash table size in entries")
	trials := flag.Int("trials", 100, "trials per configuration")
	seed := flag.Int64("seed", 42, "random seed")
	flag.Parse()

	fmt.Printf("hash-table load-factor lab: %d entries, %d trials\n\n", *entries, *trials)
	fmt.Printf("%-14s %6s %10s\n", "scheme", "amp", "max-load")
	for _, r := range hopscotch.Figure3d(*entries, *trials, *seed) {
		fmt.Printf("%-14s %6d %10.3f\n", r.Name, r.ReadAmp, r.MaxLoadFactor)
	}

	fmt.Printf("\nhopscotch neighborhood sweep (Figure 19b, span 64):\n")
	fmt.Printf("%-6s %10s\n", "H", "max-load")
	for _, h := range []int{2, 4, 8, 16} {
		fmt.Printf("%-6d %10.3f\n", h, hopscotch.MaxLoadFactorHopscotch(64, h, *trials, *seed))
	}

	fmt.Printf("\nhopscotch span sweep (Figure 19a, H=8):\n")
	fmt.Printf("%-6s %10s\n", "span", "max-load")
	for _, span := range []int{16, 32, 64, 128, 256, 512} {
		fmt.Printf("%-6d %10.3f\n", span, hopscotch.MaxLoadFactorHopscotch(span, 8, *trials, *seed))
	}
}
