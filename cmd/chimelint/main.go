// Command chimelint runs the repo's invariant analyzers (virtualclock,
// seededrand, verbgate, lockword, dmerrors, obsnames, durableio) over
// the module.
//
// Standalone:
//
//	go run ./cmd/chimelint ./...     # lint the module in the cwd
//	chimelint -list                  # print the analyzer suite
//
// As a vet tool:
//
//	go vet -vettool=$(which chimelint) ./...
//
// In vet mode the go command hands the tool one JSON config file per
// package (the unitchecker protocol); chimelint type-checks the listed
// files against the compiler export data go vet supplies and runs the
// same suite. Exit status mirrors go vet: 0 clean, 2 when diagnostics
// were reported, 1 on operational errors.
//
// Suppression: a finding is silenced only by a documented directive on
// or directly above the offending line:
//
//	//lint:allow <analyzer> <reason>
package main

import (
	"fmt"
	"os"
	"strings"

	"chime/internal/analysis"
	"chime/internal/analysis/registry"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// Flag handling is manual: the go vet driver probes with -V=full
	// and -flags before handing over .cfg files, and flag.Parse's
	// unknown-flag errors would break the handshake.
	rest := args[:0:0]
	var list bool
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full" || a == "-V":
			// The go command hashes this line into its build cache key.
			fmt.Println("chimelint version 1")
			return 0
		case a == "-flags" || a == "--flags":
			// We accept no analyzer flags from the vet driver.
			fmt.Println("[]")
			return 0
		case a == "-list" || a == "--list":
			list = true
		case strings.HasPrefix(a, "-"):
			fmt.Fprintf(os.Stderr, "chimelint: unknown flag %s\n", a)
			return 1
		default:
			rest = append(rest, a)
		}
	}
	if list {
		for _, a := range registry.All() {
			fmt.Println(a.Name)
		}
		return 0
	}
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return unitcheck(rest[0])
	}
	return standalone(rest)
}

// standalone lints the whole module rooted at the current directory.
// Package patterns beyond ./... are not supported — the suite is meant
// to hold over the entire tree, and partial runs hide violations.
func standalone(patterns []string) int {
	for _, p := range patterns {
		if p != "./..." {
			fmt.Fprintf(os.Stderr, "chimelint: only the ./... pattern is supported (got %q)\n", p)
			return 1
		}
	}
	pkgs, err := analysis.LoadModule(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "chimelint: %v\n", err)
		return 1
	}
	bad := false
	exit := 0
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrs {
			fmt.Fprintf(os.Stderr, "chimelint: %s: %v\n", pkg.PkgPath, terr)
			exit = 1
		}
		if len(pkg.TypeErrs) > 0 {
			continue
		}
		findings, err := analysis.Run(pkg, registry.All())
		if err != nil {
			fmt.Fprintf(os.Stderr, "chimelint: %v\n", err)
			return 1
		}
		for _, f := range findings {
			fmt.Println(f)
			bad = true
		}
	}
	if bad && exit == 0 {
		exit = 2
	}
	return exit
}
