// Command chimelint runs the repo's invariant analyzers (virtualclock,
// seededrand, verbgate, lockword, dmerrors, obsnames, durableio,
// maporder, noalloc, lockorder) over the module.
//
// Standalone:
//
//	go run ./cmd/chimelint ./...     # lint the module in the cwd
//	chimelint -list                  # print the analyzer suite
//	chimelint -suppressions          # list every //lint:allow directive
//	chimelint -suppressions -json    # ... as JSON
//
// As a vet tool:
//
//	go vet -vettool=$(which chimelint) ./...
//
// In vet mode the go command hands the tool one JSON config file per
// package (the unitchecker protocol); chimelint type-checks the listed
// files against the compiler export data go vet supplies and runs the
// same suite, exchanging interprocedural function summaries ("facts")
// with the driver through the vetx files the protocol provides. Exit
// status mirrors go vet: 0 clean, 2 when diagnostics were reported, 1
// on operational errors.
//
// Standalone mode analyzes packages in dependency order so the
// interprocedural analyzers (maporder, noalloc, lockorder) see the
// summaries of every import; findings are printed sorted by position,
// and two runs over the same tree are byte-identical.
//
// Suppression: a finding is silenced only by a documented directive on
// or directly above the offending line:
//
//	//lint:allow <analyzer> <reason>
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"text/tabwriter"

	"chime/internal/analysis"
	"chime/internal/analysis/registry"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// Flag handling is manual: the go vet driver probes with -V=full
	// and -flags before handing over .cfg files, and flag.Parse's
	// unknown-flag errors would break the handshake.
	rest := args[:0:0]
	var list, suppressions, asJSON bool
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full" || a == "-V":
			// The go command hashes this line into its build cache key.
			fmt.Println("chimelint version 2")
			return 0
		case a == "-flags" || a == "--flags":
			// We accept no analyzer flags from the vet driver.
			fmt.Println("[]")
			return 0
		case a == "-list" || a == "--list":
			list = true
		case a == "-suppressions" || a == "--suppressions":
			suppressions = true
		case a == "-json" || a == "--json":
			asJSON = true
		case strings.HasPrefix(a, "-"):
			fmt.Fprintf(os.Stderr, "chimelint: unknown flag %s\n", a)
			return 1
		default:
			rest = append(rest, a)
		}
	}
	if list {
		for _, a := range registry.All() {
			fmt.Println(a.Name)
		}
		return 0
	}
	if suppressions {
		return listSuppressions(asJSON)
	}
	if asJSON {
		fmt.Fprintln(os.Stderr, "chimelint: -json is only meaningful with -suppressions")
		return 1
	}
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return unitcheck(rest[0])
	}
	return standalone(rest)
}

// standalone lints the whole module rooted at the current directory.
// Package patterns beyond ./... are not supported — the suite is meant
// to hold over the entire tree, and partial runs hide violations (and
// starve the interprocedural analyzers of facts).
func standalone(patterns []string) int {
	for _, p := range patterns {
		if p != "./..." {
			fmt.Fprintf(os.Stderr, "chimelint: only the ./... pattern is supported (got %q)\n", p)
			return 1
		}
	}
	pkgs, err := analysis.LoadModule(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "chimelint: %v\n", err)
		return 1
	}
	findings, typeErrs, err := analysis.AnalyzeAll(pkgs, registry.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "chimelint: %v\n", err)
		return 1
	}
	exit := 0
	if len(typeErrs) > 0 {
		paths := make([]string, 0, len(typeErrs))
		for p := range typeErrs {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			for _, terr := range typeErrs[p] {
				fmt.Fprintf(os.Stderr, "chimelint: %s: %v\n", p, terr)
			}
		}
		exit = 1
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 && exit == 0 {
		exit = 2
	}
	return exit
}

// listSuppressions prints every //lint:allow directive in the module
// as a sorted table (or JSON array), so the suppression inventory is
// reviewable and its growth deliberate.
func listSuppressions(asJSON bool) int {
	root, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "chimelint: %v\n", err)
		return 1
	}
	pkgs, err := analysis.LoadModule(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "chimelint: %v\n", err)
		return 1
	}
	var all []analysis.AllowDirective
	for _, pkg := range pkgs {
		all = append(all, analysis.Suppressions(pkg)...)
	}
	for i := range all {
		// Module-relative paths keep the report stable across checkouts.
		if rel, err := filepath.Rel(root, all[i].File); err == nil {
			all[i].File = filepath.ToSlash(rel)
		}
	}
	sortDirectives(all)
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			fmt.Fprintf(os.Stderr, "chimelint: %v\n", err)
			return 1
		}
		return 0
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintf(tw, "ANALYZER\tLOCATION\tREASON\n")
	for _, d := range all {
		fmt.Fprintf(tw, "%s\t%s:%d\t%s\n", d.Analyzer, d.File, d.Line, d.Reason)
	}
	fmt.Fprintf(tw, "TOTAL\t%d\t\n", len(all))
	if err := tw.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "chimelint: %v\n", err)
		return 1
	}
	return 0
}

func sortDirectives(all []analysis.AllowDirective) {
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
}
