package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"chime/internal/analysis"
	"chime/internal/analysis/registry"
)

// vetConfig is the per-package JSON config the go vet driver passes to
// -vettool binaries (x/tools calls this the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package as directed by a go vet config file.
// Types come from the compiler export data go vet already produced, so
// this path needs no module loading of its own.
//
// Facts: the interprocedural analyzers exchange function summaries
// through the vetx files the protocol provides — PackageVetx names the
// dependencies' fact files, VetxOutput is where this package's
// (dependency facts + own exports, merged) must land. The go command
// schedules VetxOnly runs over dependencies before the packages named
// on the command line, which is exactly the dependency order the
// analyzers need. Standard-library packages are skipped outright
// (empty vetx): the invariants only concern this module, and
// re-type-checking the stdlib per package would make vet mode
// unusably slow.
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chimelint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "chimelint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	if cfg.Standard[cfg.ImportPath] {
		if !writeVetx(cfg.VetxOutput, nil) {
			return 1
		}
		return 0
	}

	imported := analysis.NewFactSet()
	vetxPaths := make([]string, 0, len(cfg.PackageVetx))
	for _, p := range cfg.PackageVetx {
		vetxPaths = append(vetxPaths, p)
	}
	sort.Strings(vetxPaths)
	for _, p := range vetxPaths {
		f, err := os.Open(p)
		if err != nil {
			// A dependency outside the fact flow (or an older go
			// toolchain) is treated as fact-free, not fatal.
			continue
		}
		deps, err := analysis.ReadFacts(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "chimelint: %s: %v\n", p, err)
			return 1
		}
		imported.Merge(deps)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chimelint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, compilerOrGC(cfg.Compiler), func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tcfg := &types.Config{Importer: imp}
	tpkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(cfg.VetxOutput, nil)
			return 0
		}
		fmt.Fprintf(os.Stderr, "chimelint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	pkg := &analysis.Package{
		PkgPath:   strings.TrimSuffix(cfg.ImportPath, "_test"),
		Dir:       cfg.Dir,
		Fset:      fset,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}
	findings, exported, err := analysis.Run(pkg, registry.All(), imported)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chimelint: %v\n", err)
		return 1
	}
	// Downstream packages need the whole transitive summary, so the
	// vetx carries the dependencies' facts plus this package's own.
	imported.Merge(exported)
	if !writeVetx(cfg.VetxOutput, imported) {
		return 1
	}
	if cfg.VetxOnly {
		return 0
	}
	bad := false
	for _, f := range findings {
		// go vet lints test variants too; the chimelint invariants
		// deliberately exempt test code.
		if strings.HasSuffix(f.Pos.Filename, "_test.go") {
			continue
		}
		fmt.Fprintln(os.Stderr, f)
		bad = true
	}
	if bad {
		return 2
	}
	return 0
}

// writeVetx writes the fact set (nil = empty) in its canonical
// encoding; the go command content-hashes the file into the build
// cache, so determinism here keeps vet runs cacheable.
func writeVetx(path string, facts *analysis.FactSet) bool {
	if path == "" {
		return true
	}
	var buf bytes.Buffer
	if facts != nil {
		if err := facts.Dump(&buf); err != nil {
			fmt.Fprintf(os.Stderr, "chimelint: %v\n", err)
			return false
		}
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o666); err != nil {
		fmt.Fprintf(os.Stderr, "chimelint: %v\n", err)
		return false
	}
	return true
}

func compilerOrGC(c string) string {
	if c == "" {
		return "gc"
	}
	return c
}
