package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"chime/internal/analysis"
	"chime/internal/analysis/registry"
)

// vetConfig is the per-package JSON config the go vet driver passes to
// -vettool binaries (x/tools calls this the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package as directed by a go vet config file.
// Types come from the compiler export data go vet already produced, so
// this path needs no module loading of its own. The whole suite is
// factless, so the vetx output the driver expects is always empty.
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chimelint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "chimelint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "chimelint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chimelint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, compilerOrGC(cfg.Compiler), func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tcfg := &types.Config{Importer: imp}
	tpkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "chimelint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	pkg := &analysis.Package{
		PkgPath:   strings.TrimSuffix(cfg.ImportPath, "_test"),
		Dir:       cfg.Dir,
		Fset:      fset,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}
	findings, err := analysis.Run(pkg, registry.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "chimelint: %v\n", err)
		return 1
	}
	bad := false
	for _, f := range findings {
		// go vet lints test variants too; the chimelint invariants
		// deliberately exempt test code.
		if strings.HasSuffix(f.Pos.Filename, "_test.go") {
			continue
		}
		fmt.Fprintln(os.Stderr, f)
		bad = true
	}
	if bad {
		return 2
	}
	return 0
}

func compilerOrGC(c string) string {
	if c == "" {
		return "gc"
	}
	return c
}
