package core

import "fmt"

// Tally breaks the map-order invariant: range order reaches a printed
// sink through a call.
func Tally(counts map[string]int) {
	for k, v := range counts {
		emit(k, v)
	}
}

func emit(k string, v int) {
	fmt.Printf("%s=%d\n", k, v)
}

// Hot claims the zero-alloc invariant and then breaks it, both
// directly and through a callee.
//
//chime:noalloc
func Hot(xs []int, x int) []int {
	grown := grow(xs, x)
	return append(grown, x)
}

func grow(xs []int, x int) []int {
	return append(xs, x)
}
