// A deliberately violating simulation-facing package: the chimelint
// smoke test asserts the binary exits non-zero here.
package core

import (
	"math/rand"
	"time"
)

// Backoff breaks two invariants at once: wall-clock time in a
// sim-facing package and a draw from the global random source.
func Backoff() time.Duration {
	time.Sleep(time.Microsecond)
	return time.Duration(rand.Intn(100)) * time.Microsecond
}
