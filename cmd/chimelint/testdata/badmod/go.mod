module chime

go 1.22
