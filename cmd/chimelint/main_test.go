package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLint compiles the chimelint binary once per test run.
func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "chimelint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building chimelint: %v\n%s", err, out)
	}
	return bin
}

// The multichecker must register the full seven-analyzer suite.
func TestListRegistersAllSevenAnalyzers(t *testing.T) {
	bin := buildLint(t)
	out, err := exec.Command(bin, "-list").Output()
	if err != nil {
		t.Fatalf("chimelint -list: %v", err)
	}
	got := strings.Fields(string(out))
	want := []string{"virtualclock", "seededrand", "verbgate", "lockword", "dmerrors", "obsnames", "durableio"}
	if len(got) != len(want) {
		t.Fatalf("registered analyzers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registered analyzers = %v, want %v", got, want)
		}
	}
}

// A known-bad module (wall-clock + global rand in a sim-facing
// package) must fail the lint with diagnostics from the right
// analyzers.
func TestExitsNonZeroOnBadFixture(t *testing.T) {
	bin := buildLint(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = "testdata/badmod"
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("expected non-zero exit on bad fixture, got err=%v\n%s", err, out)
	}
	if code := ee.ExitCode(); code != 2 {
		t.Fatalf("exit code = %d, want 2\n%s", code, out)
	}
	for _, needle := range []string{"(virtualclock)", "(seededrand)", "time.Sleep", "rand.Intn"} {
		if !strings.Contains(string(out), needle) {
			t.Errorf("output missing %q:\n%s", needle, out)
		}
	}
}

// The go vet driver protocol must also reject the bad fixture: this is
// the -vettool integration path CI and editors use.
func TestVetToolModeOnBadFixture(t *testing.T) {
	bin := buildLint(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = "testdata/badmod"
	out, err := cmd.CombinedOutput()
	if _, ok := err.(*exec.ExitError); !ok {
		t.Fatalf("expected go vet -vettool to fail on bad fixture, got err=%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "(virtualclock)") {
		t.Errorf("vet output missing virtualclock diagnostic:\n%s", out)
	}
}

// The real tree must lint clean — this is `make lint` pinned as a test,
// so a regression anywhere in the repo fails `go test ./...` too.
func TestRepoLintsClean(t *testing.T) {
	bin := buildLint(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("chimelint on the repo: %v\n%s", err, out)
	}
}
