package main

import (
	"encoding/json"
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLint compiles the chimelint binary once per test run.
func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "chimelint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building chimelint: %v\n%s", err, out)
	}
	return bin
}

// The multichecker must register the full ten-analyzer suite: the
// seven per-package analyzers plus the three interprocedural ones.
func TestListRegistersAllTenAnalyzers(t *testing.T) {
	bin := buildLint(t)
	out, err := exec.Command(bin, "-list").Output()
	if err != nil {
		t.Fatalf("chimelint -list: %v", err)
	}
	got := strings.Fields(string(out))
	want := []string{"virtualclock", "seededrand", "verbgate", "lockword", "dmerrors", "obsnames", "durableio", "maporder", "noalloc", "lockorder"}
	if len(got) != len(want) {
		t.Fatalf("registered analyzers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registered analyzers = %v, want %v", got, want)
		}
	}
}

// A known-bad module (wall-clock + global rand in a sim-facing
// package) must fail the lint with diagnostics from the right
// analyzers.
func TestExitsNonZeroOnBadFixture(t *testing.T) {
	bin := buildLint(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = "testdata/badmod"
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("expected non-zero exit on bad fixture, got err=%v\n%s", err, out)
	}
	if code := ee.ExitCode(); code != 2 {
		t.Fatalf("exit code = %d, want 2\n%s", code, out)
	}
	for _, needle := range []string{
		"(virtualclock)", "(seededrand)", "time.Sleep", "rand.Intn",
		// The seeded interprocedural bugs: a map range reaching a
		// printed sink through a call, and an annotated function
		// allocating both directly and through a callee.
		"(maporder)", "(noalloc)", "grow: append",
	} {
		if !strings.Contains(string(out), needle) {
			t.Errorf("output missing %q:\n%s", needle, out)
		}
	}
}

// Two consecutive runs over the same tree must be byte-identical:
// the interprocedural fact flow may not leak map order or any other
// nondeterminism into the report.
func TestOutputBitIdentical(t *testing.T) {
	bin := buildLint(t)
	run := func() string {
		cmd := exec.Command(bin, "./...")
		cmd.Dir = "testdata/badmod"
		out, err := cmd.CombinedOutput()
		if _, ok := err.(*exec.ExitError); !ok {
			t.Fatalf("expected findings on bad fixture, got err=%v\n%s", err, out)
		}
		return string(out)
	}
	first := run()
	if first == "" {
		t.Fatal("no output on bad fixture")
	}
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d differs from first\n--- first ---\n%s\n--- got ---\n%s", i+2, first, got)
		}
	}
}

// The go vet driver protocol must also reject the bad fixture: this is
// the -vettool integration path CI and editors use.
func TestVetToolModeOnBadFixture(t *testing.T) {
	bin := buildLint(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = "testdata/badmod"
	out, err := cmd.CombinedOutput()
	if _, ok := err.(*exec.ExitError); !ok {
		t.Fatalf("expected go vet -vettool to fail on bad fixture, got err=%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "(virtualclock)") {
		t.Errorf("vet output missing virtualclock diagnostic:\n%s", out)
	}
}

// The real tree must lint clean — this is `make lint` pinned as a test,
// so a regression anywhere in the repo fails `go test ./...` too.
func TestRepoLintsClean(t *testing.T) {
	bin := buildLint(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("chimelint on the repo: %v\n%s", err, out)
	}
}

// repoSuppressions is the audited count of //lint:allow directives in
// the tree. The pin forces every new suppression through review: if
// you added one deliberately, bump this and say why in the commit.
const repoSuppressions = 18

// -suppressions must inventory every allow directive with analyzer,
// location and reason, and agree with the audited count.
func TestSuppressionsTable(t *testing.T) {
	bin := buildLint(t)
	cmd := exec.Command(bin, "-suppressions")
	cmd.Dir = "../.."
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("chimelint -suppressions: %v", err)
	}
	s := string(out)
	if !strings.Contains(s, fmt.Sprintf("TOTAL%s%d", "\t", repoSuppressions)) &&
		!strings.Contains(s, fmt.Sprintf("TOTAL         %d", repoSuppressions)) {
		t.Errorf("suppressions table total != %d:\n%s", repoSuppressions, s)
	}
	for _, needle := range []string{"ANALYZER", "LOCATION", "REASON", "noalloc", "virtualclock"} {
		if !strings.Contains(s, needle) {
			t.Errorf("suppressions table missing %q:\n%s", needle, s)
		}
	}
}

// The -json variant must carry the same inventory, machine-readable.
func TestSuppressionsJSON(t *testing.T) {
	bin := buildLint(t)
	cmd := exec.Command(bin, "-suppressions", "-json")
	cmd.Dir = "../.."
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("chimelint -suppressions -json: %v", err)
	}
	var entries []struct {
		Analyzer string `json:"analyzer"`
		Reason   string `json:"reason"`
		File     string `json:"file"`
		Line     int    `json:"line"`
	}
	if err := json.Unmarshal(out, &entries); err != nil {
		t.Fatalf("parsing -suppressions -json: %v\n%s", err, out)
	}
	if len(entries) != repoSuppressions {
		t.Errorf("suppression count = %d, want %d", len(entries), repoSuppressions)
	}
	for i, e := range entries {
		if e.Analyzer == "" || e.Reason == "" || e.File == "" || e.Line == 0 {
			t.Errorf("entry %d incomplete: %+v", i, e)
		}
		if filepath.IsAbs(e.File) {
			t.Errorf("entry %d file %q not module-relative", i, e.File)
		}
	}
}
