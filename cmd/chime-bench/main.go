// Command chime-bench regenerates the tables and figures of the CHIME
// paper (SOSP '24) on the simulated disaggregated-memory fabric.
//
// Usage:
//
//	chime-bench -list
//	chime-bench -run fig12
//	chime-bench -run all -scale small
//	chime-bench -run fig18e -load 200000 -ops 50000 -clients 64
//
// Each experiment prints the rows the corresponding paper artifact
// reports (throughput in virtual-time Mops, latency percentiles in
// virtual microseconds, bytes and round trips per operation, cache MB).
// Absolute numbers differ from the paper's CloudLab testbed; the shapes
// — who wins, by what factor, where the crossovers sit — are the
// reproduction targets (see EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"chime/internal/bench"
	"chime/internal/obs"
	"chime/internal/offroute"
)

func main() {
	var (
		run     = flag.String("run", "", "experiment id (e.g. fig12, tab1) or 'all'")
		list    = flag.Bool("list", false, "list experiments and exit")
		scale   = flag.String("scale", "default", "preset scale: small | default")
		loadN   = flag.Int("load", 0, "override: items preloaded")
		ops     = flag.Int("ops", 0, "override: measured operations per run")
		clients = flag.Int("clients", 0, "override: fixed client count")
		sweep   = flag.String("sweep", "", "override: comma-separated client sweep (e.g. 8,64,256)")
		depths  = flag.String("depths", "", "pipeline experiment: comma-separated SearchBatch depths (default 1,2,4,8,16)")
		jsonOut = flag.String("json", "", "pipeline experiment: also write rows as JSON to this file")

		metricsOut = flag.String("metrics-json", "", "write the unified metrics registry (counters, NIC/latency histograms, per-run rows) as JSON to this file")
		traceOut   = flag.String("trace", "", "write a Chrome trace_event JSON (about:tracing / Perfetto) of per-op spans and NIC timelines to this file")

		flightrec   = flag.Bool("flightrec", false, "attach the per-op flight recorder: metrics JSON gains the flight section (tail-latency attribution + virtual-time timeline); never perturbs virtual clocks")
		timelineOut = flag.String("timeline-json", "", "write the flight recorder's virtual-time timeline (last run; implies -flightrec) as JSON to this file")

		faultSeed = flag.Int64("fault-seed", 0, "faults experiment: schedule seed (0 = default)")
		faultRate = flag.String("fault-rate", "", "faults experiment: comma-separated drop/spike rates (default 0,0.001,0.005,0.02)")

		offload     = flag.String("offload", "", "offload experiment: comma-separated routing modes off|on|adaptive (default off,on,adaptive)")
		mnCPUs      = flag.Int("mn-cpus", 0, "offload experiment: offload cores per MN (default: dmsim model default, 2)")
		mnServiceNs = flag.Int64("mn-service-ns", 0, "offload experiment: fixed dispatch ns per offloaded program (default: dmsim model default, 600)")

		snapshot = flag.String("snapshot", "", "persist experiment: warm-start cache dir — each system is loaded once, snapshotted under <dir>/<system>, and restored instead of re-loaded thereafter (across invocations)")

		lanes      = flag.Int("lanes", 0, "scale experiment: event-loop lane count (default 1)")
		depth      = flag.Int("depth", 0, "scale experiment: posted-verb pipeline depth (default 8)")
		verbOps    = flag.Int("verb-ops", 0, "scale experiment: measured verbs per client (default auto)")
		gateCap    = flag.Int("gate-cap", 0, "scale experiment: largest client count measured under the condvar gate (default 10000)")
		quantum    = flag.Int("quantum-rtts", 0, "scale experiment: cohort window width in base RTTs, both schedulers (default 8)")
		verify     = flag.Bool("verify", false, "scale experiment: double-run each point and record reproducibility")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the whole invocation to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "creating %s: %v\n", *cpuprofile, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "starting CPU profile: %v\n", err)
			os.Exit(1)
		}
		// os.Exit on failure paths abandons an incomplete profile, which
		// is fine: profiles are only read from successful runs.
		defer pprof.StopCPUProfile()
	}

	if *list {
		fmt.Println("available experiments:")
		for _, e := range bench.Experiments {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *run == "" {
		fmt.Fprintln(os.Stderr, "usage: chime-bench -run <id>|all [-scale small|default] (see -list)")
		os.Exit(2)
	}

	sc := bench.DefaultScale
	if *scale == "small" {
		sc = bench.SmallScale
	}
	if *loadN > 0 {
		sc.LoadN = *loadN
	}
	if *ops > 0 {
		sc.Ops = *ops
	}
	if *clients > 0 {
		sc.Clients = *clients
	}
	if *sweep != "" {
		var cs []int
		for _, part := range strings.Split(*sweep, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || v <= 0 {
				fmt.Fprintf(os.Stderr, "bad -sweep element %q\n", part)
				os.Exit(2)
			}
			cs = append(cs, v)
		}
		sc.ClientSweep = cs
	}
	// One observer spans every experiment of the invocation; tracing is
	// only turned on when a trace artifact was asked for (span buffering
	// is the one observability cost worth gating).
	if *metricsOut != "" || *traceOut != "" || *flightrec || *timelineOut != "" {
		sc.Obs = bench.NewObserver(*traceOut != "")
	}
	// The flight recorder must attach before any system is built: clients
	// capture their recording handle at creation.
	if *flightrec || *timelineOut != "" {
		sc.Obs.EnableFlightRecorder(obs.FlightConfig{})
	}
	writeObsArtifacts := func() {
		if sc.Obs == nil {
			return
		}
		if *metricsOut != "" {
			blob, err := sc.Obs.MetricsJSON()
			if err == nil {
				err = os.WriteFile(*metricsOut, blob, 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", *metricsOut, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *metricsOut)
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err == nil {
				err = sc.Obs.WriteTrace(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", *traceOut, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *traceOut)
		}
		if *timelineOut != "" {
			fr := sc.Obs.FlightReport()
			if fr == nil {
				fmt.Fprintln(os.Stderr, "-timeline-json: flight recorder recorded nothing")
				os.Exit(1)
			}
			blob, err := json.MarshalIndent(fr.Timeline, "", "  ")
			if err == nil {
				err = os.WriteFile(*timelineOut, blob, 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", *timelineOut, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *timelineOut)
		}
	}

	// The pipeline experiment supports depth overrides and a JSON
	// artifact (BENCH_PIPELINE.json); it is dispatched directly so the
	// structured rows are available for marshaling.
	if *run == "pipeline" {
		var ds []int
		for _, part := range strings.Split(*depths, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			v, err := strconv.Atoi(part)
			if err != nil || v <= 0 {
				fmt.Fprintf(os.Stderr, "bad -depths element %q\n", part)
				os.Exit(2)
			}
			ds = append(ds, v)
		}
		fmt.Printf("==== pipeline: SearchBatch depth sweep (load=%d ops=%d) ====\n", sc.LoadN, sc.Ops)
		start := time.Now()
		rows, err := bench.RunPipeline(sc, ds)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipeline failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(bench.FormatPipelineRows(rows))
		if *jsonOut != "" {
			blob, err := bench.MarshalPipelineJSON(sc, rows)
			if err == nil {
				err = os.WriteFile(*jsonOut, blob, 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonOut, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		fmt.Printf("---- pipeline done in %v ----\n\n", time.Since(start).Round(time.Millisecond))
		return
	}

	// The writepipe experiment (batched writes over posted verbs) gets
	// the same direct dispatch: depth overrides plus a JSON artifact
	// (BENCH_WRITEPIPE.json).
	if *run == "writepipe" {
		var ds []int
		for _, part := range strings.Split(*depths, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			v, err := strconv.Atoi(part)
			if err != nil || v <= 0 {
				fmt.Fprintf(os.Stderr, "bad -depths element %q\n", part)
				os.Exit(2)
			}
			ds = append(ds, v)
		}
		fmt.Printf("==== writepipe: batch-write depth sweep (load=%d ops=%d) ====\n", sc.LoadN, sc.Ops)
		start := time.Now()
		rows, err := bench.RunWritepipe(sc, ds)
		if err != nil {
			fmt.Fprintf(os.Stderr, "writepipe failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(bench.FormatWritepipeRows(rows))
		if *jsonOut != "" {
			blob, err := bench.MarshalWritepipeJSON(sc, rows)
			if err == nil {
				err = os.WriteFile(*jsonOut, blob, 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonOut, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		fmt.Printf("---- writepipe done in %v ----\n\n", time.Since(start).Round(time.Millisecond))
		return
	}

	// The faults experiment takes seed/rate overrides and emits the
	// BENCH_FAULTS.json artifact; dispatched directly so the structured
	// rows are available for marshaling.
	if *run == "faults" {
		var rates []float64
		for _, part := range strings.Split(*faultRate, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			v, err := strconv.ParseFloat(part, 64)
			if err != nil || v < 0 || v >= 1 {
				fmt.Fprintf(os.Stderr, "bad -fault-rate element %q\n", part)
				os.Exit(2)
			}
			rates = append(rates, v)
		}
		fmt.Printf("==== faults: fault-rate sweep with lease recovery (load=%d ops=%d) ====\n", sc.LoadN, sc.Ops)
		start := time.Now()
		rows, err := bench.RunFaults(sc, *faultSeed, rates)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faults failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(bench.FormatFaultsRows(rows))
		if *jsonOut != "" {
			blob, err := bench.MarshalFaultsJSON(sc, rows)
			if err == nil {
				err = os.WriteFile(*jsonOut, blob, 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonOut, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		writeObsArtifacts()
		fmt.Printf("---- faults done in %v ----\n\n", time.Since(start).Round(time.Millisecond))
		return
	}

	// The offload experiment (MN-side verbs vs one-sided traversal, with
	// the adaptive router head-to-head) takes routing-mode and MN-compute
	// overrides and emits the BENCH_OFFLOAD.json artifact.
	if *run == "offload" {
		opts := bench.OffloadOptions{
			MNCPUs:      *mnCPUs,
			MNServiceNs: *mnServiceNs,
		}
		for _, part := range strings.Split(*offload, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			m, err := offroute.ParseMode(part)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad -offload element %q: %v\n", part, err)
				os.Exit(2)
			}
			opts.Modes = append(opts.Modes, m)
		}
		fmt.Printf("==== offload: MN-side verbs vs one-sided, adaptive router (load=%d ops=%d) ====\n", sc.LoadN, sc.Ops)
		start := time.Now()
		rows, err := bench.RunOffload(sc, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "offload failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(bench.FormatOffloadRows(rows))
		if *jsonOut != "" {
			blob, err := bench.MarshalOffloadJSON(sc, opts, rows)
			if err == nil {
				err = os.WriteFile(*jsonOut, blob, 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonOut, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		writeObsArtifacts()
		fmt.Printf("---- offload done in %v ----\n\n", time.Since(start).Round(time.Millisecond))
		return
	}

	// The persist experiment (durability overhead, recovery cost,
	// warm-start) takes the -snapshot warm-start cache dir and emits the
	// BENCH_PERSIST.json artifact.
	if *run == "persist" {
		opts := bench.PersistOptions{SnapshotDir: *snapshot}
		fmt.Printf("==== persist: durability overhead, recovery cost, warm-start (load=%d ops=%d) ====\n", sc.LoadN, sc.Ops)
		start := time.Now()
		rows, err := bench.RunPersist(sc, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "persist failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(bench.FormatPersistRows(rows))
		if *jsonOut != "" {
			blob, err := bench.MarshalPersistJSON(sc, opts, rows)
			if err == nil {
				err = os.WriteFile(*jsonOut, blob, 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonOut, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		writeObsArtifacts()
		fmt.Printf("---- persist done in %v ----\n\n", time.Since(start).Round(time.Millisecond))
		return
	}

	// The attribution experiment (flight-recorder phase shares and the
	// zero-perturbation pin) emits the BENCH_ATTRIB.json artifact and,
	// with -timeline-json, the sample virtual-time timeline. It builds a
	// fresh observer per point (the pin section needs recorder-off and
	// recorder-on builds), so the invocation-wide observer is not used.
	if *run == "attribution" {
		fmt.Printf("==== attribution: tail-latency attribution and timelines (load=%d ops=%d) ====\n", sc.LoadN, sc.Ops)
		start := time.Now()
		opts := bench.AttributionOptions{}
		rows, sample, err := bench.RunAttribution(sc, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "attribution failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(bench.FormatAttributionRows(rows))
		if sample != nil {
			fmt.Printf("\n## Timeline sample (%s, contended mix)\n", bench.HeadToHeadSystems[0])
			fmt.Print(bench.FormatTimeline(*sample))
		}
		if *jsonOut != "" {
			blob, err := bench.MarshalAttribJSON(sc, opts, rows, sample)
			if err == nil {
				err = os.WriteFile(*jsonOut, blob, 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonOut, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		if *timelineOut != "" && sample != nil {
			blob, err := json.MarshalIndent(sample, "", "  ")
			if err == nil {
				err = os.WriteFile(*timelineOut, blob, 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", *timelineOut, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *timelineOut)
		}
		fmt.Printf("---- attribution done in %v ----\n\n", time.Since(start).Round(time.Millisecond))
		return
	}

	// The scale experiment measures the simulator's host-side capacity
	// (simulated verbs per wall second, gate vs event loop); dispatched
	// directly for its own knobs and the BENCH_SCALE.json artifact.
	if *run == "scale" {
		opts := bench.ScaleOptions{
			ClientSweep:  sc.ClientSweep,
			OpsPerClient: *verbOps,
			Depth:        *depth,
			Lanes:        *lanes,
			QuantumRTTs:  *quantum,
			GateCap:      *gateCap,
			Verify:       *verify,
		}
		if *sweep == "" {
			opts.ClientSweep = nil // RunScale default 1k/10k/100k, not the index-bench sweep
		}
		fmt.Printf("==== scale: host-side capacity sweep, gate vs event loop ====\n")
		start := time.Now()
		rows, err := bench.RunScale(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scale failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(bench.FormatScaleRows(rows))
		if at, sp := bench.ScaleSpeedup(rows); at > 0 {
			fmt.Printf("event/gate speedup at %d clients: %.1fx\n", at, sp)
		}
		if *jsonOut != "" {
			blob, err := bench.MarshalScaleJSON(opts, rows)
			if err == nil {
				err = os.WriteFile(*jsonOut, blob, 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonOut, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		fmt.Printf("---- scale done in %v ----\n\n", time.Since(start).Round(time.Millisecond))
		return
	}

	var exps []bench.Experiment
	if *run == "all" {
		exps = bench.Experiments
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, err := bench.FindExperiment(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	for _, e := range exps {
		fmt.Printf("==== %s: %s (load=%d ops=%d) ====\n", e.ID, e.Title, sc.LoadN, sc.Ops)
		start := time.Now()
		if err := e.Run(os.Stdout, sc); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("---- %s done in %v ----\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	writeObsArtifacts()
}
