package main

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chime/internal/folio"
)

// buildFolio writes a .folio file exercising every record type: a
// compacted snapshot (pages + index + reseeded alloc/meta), then live
// sparse appends, abandoned dirty so the header's crash flag is set.
func buildFolio(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "mn0.folio")
	s, err := folio.Create(path, folio.Options{PageSize: 64, Stamp: 42})
	if err != nil {
		t.Fatal(err)
	}
	mem := make([]byte, 1024)
	for i := range mem {
		if i%3 == 0 {
			mem[i] = byte(i)
		}
	}
	// Zero one page entirely so compaction's sparse-page elision shows
	// up in the counts.
	for i := 256; i < 320; i++ {
		mem[i] = 0
	}
	if err := s.Compact(mem, 512, map[string]string{"kind": "test", "super": "0:64"}, 42); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendWrite(128, []byte("hello folio")); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendWrite(200, bytes.Repeat([]byte{0xAB}, 32)); err != nil {
		t.Fatal(err)
	}
	if err := s.NoteAlloc(640); err != nil {
		t.Fatal(err)
	}
	if err := s.SetMeta("epoch", "2"); err != nil {
		t.Fatal(err)
	}
	if err := s.Abandon(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestFolioInspectJSONLParity pins the "file is the interface"
// contract behind `chimectl folio`: every figure Inspect reports must
// be recomputable from the raw bytes with nothing but a JSON-per-line
// scan — the same view jq/grep/wc give. If Inspect and the naive scan
// ever disagree, either the format or the inspector drifted.
func TestFolioInspectJSONLParity(t *testing.T) {
	path := buildFolio(t)
	info, err := folio.Inspect(path)
	if err != nil {
		t.Fatal(err)
	}

	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.FileBytes != int64(len(blob)) {
		t.Errorf("FileBytes = %d, file has %d", info.FileBytes, len(blob))
	}

	// The header is line 1, space-padded to 128 bytes: `head -c 128 | jq`.
	var hdr struct {
		V  int      `json:"_v"`
		E  int      `json:"_e"`
		TS int64    `json:"_ts"`
		S  [6]int64 `json:"_s"`
	}
	if err := json.Unmarshal(bytes.TrimRight(blob[:folio.HeaderBytes-1], " "), &hdr); err != nil {
		t.Fatalf("header is not plain JSON: %v", err)
	}
	if info.Version != hdr.V || info.Dirty != (hdr.E != 0) || info.Stamp != hdr.TS {
		t.Errorf("header parity: Inspect %+v vs raw %+v", info, hdr)
	}
	if !info.Dirty {
		t.Error("Abandon should have left the file dirty")
	}
	if info.HeapEnd != hdr.S[0] || info.IndexEnd != hdr.S[1] || info.PageSize != hdr.S[2] {
		t.Errorf("section parity: Inspect [%d %d %d] vs raw %v",
			info.HeapEnd, info.IndexEnd, info.PageSize, hdr.S[:3])
	}

	// Every later line is one JSON record: `tail -c +129 | jq -s` or
	// `grep -c '"t":"w"'`. Recount everything Inspect claims.
	type rec struct {
		T   string `json:"t"`
		Off uint64 `json:"off"`
		D   string `json:"d"`
		K   string `json:"k"`
		V   string `json:"v"`
	}
	counts := map[string]int{}
	payload := map[string]int64{}
	var allocOff uint64
	meta := map[string]string{}
	for _, line := range bytes.Split(blob[folio.HeaderBytes:], []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var r rec
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatalf("non-JSONL line %q: %v", line, err)
		}
		counts[r.T]++
		if r.D != "" {
			data, err := base64.StdEncoding.DecodeString(r.D)
			if err != nil {
				t.Fatalf("record %q payload is not base64: %v", r.T, err)
			}
			payload[r.T] += int64(len(data))
		}
		if r.T == "alloc" && r.Off > allocOff {
			allocOff = r.Off
		}
		if r.T == "meta" {
			meta[r.K] = r.V
		}
	}

	if info.PageRecords != counts["page"] || info.IndexRecords != counts["idx"] {
		t.Errorf("snapshot parity: Inspect %d pages/%d idx vs scan %d/%d",
			info.PageRecords, info.IndexRecords, counts["page"], counts["idx"])
	}
	if info.WriteRecords != counts["w"] || info.AllocRecords != counts["alloc"] || info.MetaRecords != counts["meta"] {
		t.Errorf("sparse parity: Inspect w=%d alloc=%d meta=%d vs scan w=%d alloc=%d meta=%d",
			info.WriteRecords, info.AllocRecords, info.MetaRecords,
			counts["w"], counts["alloc"], counts["meta"])
	}
	if info.PageBytes != payload["page"] || info.WriteBytes != payload["w"] {
		t.Errorf("payload parity: Inspect page=%d w=%d vs scan page=%d w=%d",
			info.PageBytes, info.WriteBytes, payload["page"], payload["w"])
	}
	if info.AllocOff != allocOff {
		t.Errorf("alloc watermark: Inspect %d vs scan %d", info.AllocOff, allocOff)
	}
	if len(info.Meta) != len(meta) {
		t.Fatalf("meta parity: Inspect %v vs scan %v", info.Meta, meta)
	}
	for k, v := range meta {
		if info.Meta[k] != v {
			t.Errorf("meta[%q]: Inspect %q vs scan %q", k, info.Meta[k], v)
		}
	}

	// Sanity on the build itself: compaction snapshots up to the
	// allocator watermark (512 bytes = 8 pages) minus the all-zero
	// page; both live writes and the reseeded records present.
	if counts["page"] != 7 {
		t.Errorf("expected 7 snapshot pages (8 under the watermark minus the zeroed one), scanned %d", counts["page"])
	}
	if counts["w"] != 2 || counts["alloc"] != 2 || counts["meta"] != 3 {
		t.Errorf("expected 2 writes, 2 allocs (reseed+live), 3 metas; scanned %v", counts)
	}

	// The rendered block carries the same figures.
	out := info.Format()
	for _, want := range []string{"DIRTY", "7 pages", "2 writes", "super = 0:64", "epoch = 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() output missing %q:\n%s", want, out)
		}
	}
}
