// Command chimectl runs a single ad-hoc workload against one index on a
// freshly simulated DM fabric and prints the measured point — a
// one-liner for exploring configurations outside the paper's fixed
// experiment grid.
//
// Examples:
//
//	chimectl -index CHIME -workload B -load 100000 -clients 64
//	chimectl -index Sherman -workload C -span 128 -cache 4194304
//	chimectl -index CHIME -workload A -value 128 -indirect
//	chimectl -index SMART -workload E -ops 20000
package main

import (
	"flag"
	"fmt"
	"os"

	"chime/internal/bench"
	"chime/internal/dmsim"
	"chime/internal/ycsb"
)

func main() {
	var (
		index    = flag.String("index", "CHIME", "CHIME | Sherman | SMART | ROLEX")
		workload = flag.String("workload", "C", "YCSB workload: A B C D E LOAD")
		loadN    = flag.Int("load", 100000, "items preloaded")
		ops      = flag.Int("ops", 40000, "measured operations")
		clients  = flag.Int("clients", 32, "simulated clients")
		mns      = flag.Int("mns", 1, "memory nodes")
		mnSize   = flag.Int("mnsize", 2<<30, "bytes per memory node")
		cache    = flag.Int64("cache", 0, "CN cache bytes (0 = paper-scaled)")
		hotspot  = flag.Int64("hotspot", 0, "hotspot buffer bytes (0 = paper-scaled; CHIME only)")
		span     = flag.Int("span", 0, "span size override")
		neigh    = flag.Int("neighborhood", 0, "neighborhood override (CHIME)")
		value    = flag.Int("value", 8, "value size in bytes")
		indirect = flag.Bool("indirect", false, "store values out of line")
		noRDWC   = flag.Bool("no-rdwc", false, "disable read delegation / write combining")
		seed     = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	mix, err := ycsb.MixByName(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	factory, ok := bench.Factories[*index]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown index %q (CHIME, Sherman, SMART, ROLEX)\n", *index)
		os.Exit(2)
	}

	fcfg := dmsim.DefaultConfig()
	fcfg.MNs = *mns
	fcfg.MNSize = *mnSize
	fcfg.ChunkBytes = 1 << 20
	fabric, err := dmsim.NewFabric(fcfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	scaled := func(paperMB int64) int64 {
		b := int64(*loadN) * paperMB << 20 / 60_000_000
		if b < 2<<20 {
			b = 2 << 20
		}
		return b
	}
	cfg := bench.SystemConfig{
		Fabric:       fabric,
		LoadKeys:     bench.SortedLoadKeys(*loadN),
		ValueSize:    *value,
		Indirect:     *indirect,
		CacheBytes:   *cache,
		HotspotBytes: *hotspot,
		SpanSize:     *span,
		Neighborhood: *neigh,
		DisableRDWC:  *noRDWC,
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = scaled(100)
	}
	if cfg.HotspotBytes == 0 {
		cfg.HotspotBytes = scaled(30)
	}

	fmt.Printf("loading %d items into %s...\n", *loadN, *index)
	sys, err := factory(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	per := *ops / *clients
	if per < 1 {
		per = 1
	}
	res, err := bench.Run(sys, bench.RunConfig{
		Mix:          mix,
		Clients:      *clients,
		OpsPerClient: per,
		ValueSize:    *value,
		KeySpace:     bench.NewKeySpaceFor(cfg.LoadKeys),
		Seed:         *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(bench.FormatResults([]bench.Result{res}))

	ns := fabric.TotalNICStats()
	fmt.Printf("\nfabric: %d verbs, %.1f MB read, %.1f MB written, NIC busy %.2f ms (queued %.2f ms)\n",
		ns.Verbs, float64(ns.BytesOut)/1e6, float64(ns.BytesIn)/1e6,
		float64(ns.ServedNs)/1e6, float64(ns.QueuedNs)/1e6)
}
