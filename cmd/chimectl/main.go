// Command chimectl runs a single ad-hoc workload against one index on a
// freshly simulated DM fabric and prints the measured point — a
// one-liner for exploring configurations outside the paper's fixed
// experiment grid.
//
// Examples:
//
//	chimectl -index CHIME -workload B -load 100000 -clients 64
//	chimectl -index Sherman -workload C -span 128 -cache 4194304
//	chimectl -index CHIME -workload A -value 128 -indirect
//	chimectl -index SMART -workload E -ops 20000
//	chimectl -index CHIME -workload A -flightrec -metrics-json m.json
//	chimectl report BENCH_ATTRIB.json
//	chimectl folio snapshots/CHIME/mn0.folio
//
// The report subcommand renders observability artifacts (BENCH_ATTRIB
// .json, a chime-bench/chimectl metrics JSON, or a bare timeline JSON)
// as the same aligned tables the experiments print. The folio
// subcommand summarizes a durability-plane .folio file: header fields,
// section extents, record counts and recovered metadata. Everything it
// prints is recomputable with jq/grep — the file is plain JSONL with a
// fixed-width JSON header, and a parity test pins that equivalence.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"chime/internal/bench"
	"chime/internal/dmsim"
	"chime/internal/folio"
	"chime/internal/obs"
	"chime/internal/ycsb"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "report" {
		runReport(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "folio" {
		runFolio(os.Args[2:])
		return
	}
	var (
		index    = flag.String("index", "CHIME", "CHIME | Sherman | SMART | ROLEX")
		workload = flag.String("workload", "C", "YCSB workload: A B C D E LOAD")
		loadN    = flag.Int("load", 100000, "items preloaded")
		ops      = flag.Int("ops", 40000, "measured operations")
		clients  = flag.Int("clients", 32, "simulated clients")
		mns      = flag.Int("mns", 1, "memory nodes")
		mnSize   = flag.Int("mnsize", 2<<30, "bytes per memory node")
		cache    = flag.Int64("cache", 0, "CN cache bytes (0 = paper-scaled)")
		hotspot  = flag.Int64("hotspot", 0, "hotspot buffer bytes (0 = paper-scaled; CHIME only)")
		span     = flag.Int("span", 0, "span size override")
		neigh    = flag.Int("neighborhood", 0, "neighborhood override (CHIME)")
		value    = flag.Int("value", 8, "value size in bytes")
		indirect = flag.Bool("indirect", false, "store values out of line")
		noRDWC   = flag.Bool("no-rdwc", false, "disable read delegation / write combining")
		seed     = flag.Int64("seed", 1, "workload seed")

		metricsOut  = flag.String("metrics-json", "", "write the metrics registry (counters, histograms, the measured row) as JSON to this file")
		traceOut    = flag.String("trace", "", "write a Chrome trace_event JSON of per-op spans and NIC timelines to this file")
		flightrec   = flag.Bool("flightrec", false, "attach the per-op flight recorder and print the tail-latency attribution tables")
		timelineOut = flag.String("timeline-json", "", "write the flight recorder's virtual-time timeline (implies -flightrec) as JSON to this file")
	)
	flag.Parse()

	mix, err := ycsb.MixByName(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	factory, ok := bench.Factories[*index]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown index %q (CHIME, Sherman, SMART, ROLEX)\n", *index)
		os.Exit(2)
	}

	// The observer (and its flight recorder) must exist before the system
	// is built: the factory wires it into the compute node, and clients
	// capture their recording handle at creation.
	var observer *bench.Observer
	if *metricsOut != "" || *traceOut != "" || *flightrec || *timelineOut != "" {
		observer = bench.NewObserver(*traceOut != "")
		if *flightrec || *timelineOut != "" {
			observer.EnableFlightRecorder(obs.FlightConfig{})
		}
	}

	fcfg := dmsim.DefaultConfig()
	fcfg.MNs = *mns
	fcfg.MNSize = *mnSize
	fcfg.ChunkBytes = 1 << 20
	fabric, err := dmsim.NewFabric(fcfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fabric.SetObserver(observer.Sink())

	scaled := func(paperMB int64) int64 {
		b := int64(*loadN) * paperMB << 20 / 60_000_000
		if b < 2<<20 {
			b = 2 << 20
		}
		return b
	}
	cfg := bench.SystemConfig{
		Fabric:       fabric,
		LoadKeys:     bench.SortedLoadKeys(*loadN),
		ValueSize:    *value,
		Indirect:     *indirect,
		CacheBytes:   *cache,
		HotspotBytes: *hotspot,
		SpanSize:     *span,
		Neighborhood: *neigh,
		DisableRDWC:  *noRDWC,
		Obs:          observer,
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = scaled(100)
	}
	if cfg.HotspotBytes == 0 {
		cfg.HotspotBytes = scaled(30)
	}

	fmt.Printf("loading %d items into %s...\n", *loadN, *index)
	sys, err := factory(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	per := *ops / *clients
	if per < 1 {
		per = 1
	}
	res, err := bench.Run(sys, bench.RunConfig{
		Mix:          mix,
		Clients:      *clients,
		OpsPerClient: per,
		ValueSize:    *value,
		KeySpace:     bench.NewKeySpaceFor(cfg.LoadKeys),
		Seed:         *seed,
		Obs:          observer,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(bench.FormatResults([]bench.Result{res}))

	ns := fabric.TotalNICStats()
	fmt.Printf("\nfabric: %d verbs, %.1f MB read, %.1f MB written, NIC busy %.2f ms (queued %.2f ms)\n",
		ns.Verbs, float64(ns.BytesOut)/1e6, float64(ns.BytesIn)/1e6,
		float64(ns.ServedNs)/1e6, float64(ns.QueuedNs)/1e6)

	if fr := observer.FlightReport(); fr != nil {
		rows := []bench.AttributionRow{{
			Section: "attrib", Scheduler: "gate", System: *index, Mix: mix.Name,
			Clients: res.Clients, Ops: res.Ops, ThroughputMops: res.ThroughputMops,
			P50Us: res.P50Us, P99Us: res.P99Us, Attribution: fr.Attribution,
		}}
		fmt.Printf("\n%s", bench.FormatAttributionRows(rows))
		fmt.Printf("\n## Virtual-time timeline\n%s", bench.FormatTimeline(fr.Timeline))
		if *timelineOut != "" {
			blob, err := json.MarshalIndent(fr.Timeline, "", "  ")
			if err == nil {
				err = os.WriteFile(*timelineOut, blob, 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", *timelineOut, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *timelineOut)
		}
	}
	if *metricsOut != "" {
		blob, err := observer.MetricsJSON()
		if err == nil {
			err = os.WriteFile(*metricsOut, blob, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *metricsOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *metricsOut)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err == nil {
			err = observer.WriteTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *traceOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *traceOut)
	}
}

// runFolio summarizes .folio durability files. With -json it emits the
// folio.Info struct; without, the aligned text block. Inspect never
// opens a session, so the dirty flag (and the file) are untouched —
// safe to point at a live or crashed store.
func runFolio(args []string) {
	fs := flag.NewFlagSet("folio", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit the summary as JSON instead of text")
	fs.Parse(args)
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: chimectl folio [-json] <file.folio>...")
		os.Exit(2)
	}
	for _, path := range fs.Args() {
		info, err := folio.Inspect(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			os.Exit(1)
		}
		if *jsonOut {
			blob, err := json.MarshalIndent(info, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("%s\n", blob)
			continue
		}
		fmt.Print(info.Format())
	}
}

// runReport renders observability artifacts as tables. It recognizes
// the three JSON shapes the tools emit: the attribution experiment's
// BENCH_ATTRIB.json, a chime-bench/metrics/* registry dump (whose
// optional flight section carries attribution and timeline), and a bare
// timeline report.
func runReport(paths []string) {
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "usage: chimectl report <artifact.json>...")
		os.Exit(2)
	}
	for _, path := range paths {
		blob, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var probe struct {
			Experiment string `json:"experiment"`
			Schema     string `json:"schema"`
			WindowNs   int64  `json:"window_ns"`
		}
		if err := json.Unmarshal(blob, &probe); err != nil {
			fmt.Fprintf(os.Stderr, "%s: not a JSON artifact: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("==== %s ====\n", path)
		switch {
		case probe.Experiment == "attribution":
			var art struct {
				Rows     []bench.AttributionRow `json:"rows"`
				Timeline *obs.TimelineReport    `json:"timeline_sample"`
			}
			if err := json.Unmarshal(blob, &art); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Print(bench.FormatAttributionRows(art.Rows))
			if art.Timeline != nil {
				fmt.Printf("\n## Timeline sample\n%s", bench.FormatTimeline(*art.Timeline))
			}
		case strings.HasPrefix(probe.Schema, "chime-bench/metrics/"):
			var art struct {
				Flight *bench.FlightSection `json:"flight"`
			}
			if err := json.Unmarshal(blob, &art); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
				os.Exit(1)
			}
			if art.Flight == nil {
				fmt.Printf("metrics artifact (%s) has no flight section; rerun with -flightrec\n", probe.Schema)
				break
			}
			rows := []bench.AttributionRow{{
				Section: "attrib", Scheduler: "-", System: "-", Mix: "-",
				Attribution: art.Flight.Attribution,
			}}
			fmt.Print(bench.FormatAttributionRows(rows))
			fmt.Printf("\n## Virtual-time timeline\n%s", bench.FormatTimeline(art.Flight.Timeline))
		case probe.WindowNs > 0:
			var tl obs.TimelineReport
			if err := json.Unmarshal(blob, &tl); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Print(bench.FormatTimeline(tl))
		default:
			fmt.Fprintf(os.Stderr, "%s: unrecognized artifact (want BENCH_ATTRIB.json, a metrics JSON, or a timeline JSON)\n", path)
			os.Exit(1)
		}
	}
}
