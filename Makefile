GO ?= go

.PHONY: all vet build test race check bench-pipeline bench-writepipe bench-faults chaos

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The async verb layer, the pipelined clients, the remaining index
# baselines, the shared instruments, the fault/chaos plane, the local
# lock table and the multi-goroutine harness are the
# concurrency-sensitive packages; run them under the race detector.
race:
	$(GO) test -race ./internal/dmsim/... ./internal/core/... ./internal/sherman/... \
		./internal/smartidx/... ./internal/rolex/... ./internal/obs/... ./internal/bench/... \
		./internal/fault/... ./internal/locktable/...

# The seeded chaos suite alone (crash recovery invariants across all
# four systems), under the race detector.
chaos:
	$(GO) test -race -v -run 'TestChaos' ./internal/fault/

check: vet build test race

# Regenerate the committed pipeline-depth artifact.
bench-pipeline:
	$(GO) run ./cmd/chime-bench -run pipeline -scale small -json BENCH_PIPELINE.json

# Regenerate the committed batch-write-depth artifact.
bench-writepipe:
	$(GO) run ./cmd/chime-bench -run writepipe -scale small -json BENCH_WRITEPIPE.json

# Regenerate the committed fault-sweep artifact.
bench-faults:
	$(GO) run ./cmd/chime-bench -run faults -scale small -json BENCH_FAULTS.json
