GO ?= go

.PHONY: all vet lint suppressions build test race check bench-pipeline bench-writepipe bench-faults bench-scale bench-offload bench-attribution bench-persist profile chaos

all: check

vet:
	$(GO) vet ./...

# Static invariant enforcement: the chimelint suite — seven per-package
# analyzers (virtualclock, seededrand, verbgate, lockword, dmerrors,
# obsnames, durableio) plus the three interprocedural ones (maporder,
# noalloc, lockorder) riding the call-graph + fact engine — must pass
# with zero findings. staticcheck and govulncheck run when installed (CI
# pins and installs them; the offline dev container may not have them).
lint:
	$(GO) run ./cmd/chimelint ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "staticcheck not installed; skipping (CI runs it)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
		else echo "govulncheck not installed; skipping (CI runs it)"; fi

# Audit every //lint:allow directive in the tree (analyzer, location,
# reason). CI uploads the -json form as a build artifact.
suppressions:
	$(GO) run ./cmd/chimelint -suppressions

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Everything under internal/ runs under the race detector: the verb
# layer, clients, instruments and harness are concurrency-sensitive,
# and the remaining packages (ycsb, hopscotch, nodelayout, rdwc, lease,
# analysis) are cheap enough that sweeping the whole tree costs little.
race:
	$(GO) test -race ./internal/dmsim/... ./internal/core/... ./internal/sherman/... \
		./internal/smartidx/... ./internal/rolex/... ./internal/obs/... ./internal/bench/... \
		./internal/fault/... ./internal/locktable/... ./internal/ycsb/... \
		./internal/hopscotch/... ./internal/nodelayout/... ./internal/rdwc/... \
		./internal/lease/... ./internal/analysis/... ./internal/offroute/... \
		./internal/folio/...

# The seeded chaos suite alone (crash recovery invariants across all
# four systems), under the race detector.
chaos:
	$(GO) test -race -v -run 'TestChaos' ./internal/fault/

check: vet lint build test race

# Regenerate the committed pipeline-depth artifact.
bench-pipeline:
	$(GO) run ./cmd/chime-bench -run pipeline -scale small -json BENCH_PIPELINE.json

# Regenerate the committed batch-write-depth artifact.
bench-writepipe:
	$(GO) run ./cmd/chime-bench -run writepipe -scale small -json BENCH_WRITEPIPE.json

# Regenerate the committed fault-sweep artifact.
bench-faults:
	$(GO) run ./cmd/chime-bench -run faults -scale small -json BENCH_FAULTS.json

# Regenerate the committed offload head-to-head artifact: one-sided vs
# MN-side verbs vs the adaptive router, both schedulers, double-run
# reproducibility fingerprints. Takes a few minutes (every point is
# built fresh and run twice).
bench-offload:
	$(GO) run ./cmd/chime-bench -run offload -scale small -json BENCH_OFFLOAD.json

# Regenerate the committed tail-latency attribution artifact (flight
# recorder phase shares, zero-perturbation pins under both schedulers)
# plus the sample virtual-time timeline. Every pin point is built fresh
# and run twice (recorder off, then on).
bench-attribution:
	$(GO) run ./cmd/chime-bench -run attribution -scale small \
		-json BENCH_ATTRIB.json -timeline-json BENCH_TIMELINE.json

# Regenerate the committed host-capacity artifact: the full 1k-100k
# client sweep, gate vs event loop, with determinism double-runs.
# Takes a couple of minutes; the gate rows at 10k are most of it.
bench-scale:
	$(GO) run ./cmd/chime-bench -run scale -verify -json BENCH_SCALE.json

# Regenerate the committed durability artifact: write-behind log
# overhead vs off, MN kill/restart recovery cost vs log length, and
# warm-start restore vs cold load, with double-run fingerprints.
bench-persist:
	$(GO) run ./cmd/chime-bench -run persist -scale small -json BENCH_PERSIST.json

# CPU-profile the 100k-client capacity point and drop into pprof.
profile:
	$(GO) build -o /tmp/chime-bench ./cmd/chime-bench
	/tmp/chime-bench -run scale -sweep 100000 -gate-cap 1 -cpuprofile scale-cpu.pprof
	$(GO) tool pprof -top -nodecount=25 /tmp/chime-bench scale-cpu.pprof
