// Quickstart: stand up a simulated disaggregated-memory pool, bootstrap
// a CHIME tree on it, and run point and range operations from a client.
//
//	go run ./examples/quickstart
package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"

	"chime/internal/core"
	"chime/internal/dmsim"
)

func main() {
	// The memory pool: one memory node with 256 MB of remote memory,
	// reachable through one-sided RDMA-style verbs with the paper's
	// testbed parameters (100 Gbps NIC, 2 us one-sided latency).
	fabric, err := dmsim.NewFabric(dmsim.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Bootstrap a CHIME tree: span-64 nodes, neighborhood-8 hopscotch
	// leaves, every paper technique enabled.
	tree, err := core.Bootstrap(fabric, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// A compute node holds the CN-side state the paper describes: an
	// internal-node cache (here 16 MB) and the hotspot buffer (1 MB).
	cn := tree.NewComputeNode(16<<20, 1<<20)
	client := cn.NewClient()

	// Insert some keys.
	for i := uint64(1); i <= 1000; i++ {
		val := make([]byte, 8)
		binary.LittleEndian.PutUint64(val, i*i)
		if err := client.Insert(i*7919, val); err != nil {
			log.Fatalf("insert: %v", err)
		}
	}

	// Point query.
	got, err := client.Search(42 * 7919)
	if err != nil {
		log.Fatalf("search: %v", err)
	}
	fmt.Printf("search(42*7919) = %d\n", binary.LittleEndian.Uint64(got))

	// Update and re-read.
	newVal := make([]byte, 8)
	binary.LittleEndian.PutUint64(newVal, 12345)
	if err := client.Update(42*7919, newVal); err != nil {
		log.Fatalf("update: %v", err)
	}
	got, _ = client.Search(42 * 7919)
	fmt.Printf("after update      = %d\n", binary.LittleEndian.Uint64(got))

	// Range scan: ten smallest keys at or above 500*7919.
	kvs, err := client.Scan(500*7919, 10)
	if err != nil {
		log.Fatalf("scan: %v", err)
	}
	fmt.Println("scan(500*7919, 10):")
	for _, kv := range kvs {
		fmt.Printf("  key=%-10d value=%d\n", kv.Key, binary.LittleEndian.Uint64(kv.Value))
	}

	// Delete.
	if err := client.Delete(43 * 7919); err != nil {
		log.Fatalf("delete: %v", err)
	}
	if _, err := client.Search(43 * 7919); errors.Is(err, core.ErrNotFound) {
		fmt.Println("delete(43*7919) confirmed: key gone")
	}

	// What did this cost on the wire? Every verb was accounted.
	st := client.DM().Stats()
	fmt.Printf("\nremote traffic: %d round trips, %.1f KB read, %.1f KB written\n",
		st.Trips, float64(st.BytesRead)/1e3, float64(st.BytesWritten)/1e3)
	cs := cn.CacheStats()
	fmt.Printf("CN cache: %d internal nodes (%.1f KB), %d hits / %d misses\n",
		cs.Nodes, float64(cs.UsedBytes)/1e3, cs.Hits, cs.Misses)
}
