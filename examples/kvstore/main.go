// kvstore: a shared key-value store on disaggregated memory — the
// paper's motivating deployment (§2.2). Two compute nodes, each with
// its own cache and hotspot buffer, drive a Zipfian read-mostly
// workload against one CHIME tree in the memory pool, concurrently with
// a writer stream. The example prints per-CN throughput, latency, cache
// behaviour and speculative-read statistics.
//
//	go run ./examples/kvstore
package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"

	"chime/internal/core"
	"chime/internal/dmsim"
	"chime/internal/ycsb"
)

const (
	loadItems    = 50000
	clientsPerCN = 8
	opsPerClient = 2000
	hotFraction  = 0.95 // YCSB B: 95% reads, 5% updates
)

func main() {
	cfg := dmsim.DefaultConfig()
	cfg.MNs = 2
	cfg.MNSize = 512 << 20
	fabric := dmsim.MustNewFabric(cfg)

	tree, err := core.Bootstrap(fabric, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Two compute nodes sharing the same remote tree, as in the shared
	// indexing scenario: each CN has 8 MB of node cache and a 2 MB
	// hotspot buffer.
	cns := []*core.ComputeNode{
		tree.NewComputeNode(8<<20, 2<<20),
		tree.NewComputeNode(8<<20, 2<<20),
	}

	// Bulk load through CN 0.
	fmt.Printf("loading %d items...\n", loadItems)
	loader := cns[0].NewClient()
	for i := uint64(0); i < loadItems; i++ {
		val := make([]byte, 8)
		binary.LittleEndian.PutUint64(val, i)
		if err := loader.Insert(ycsb.KeyOf(i), val); err != nil {
			log.Fatalf("load: %v", err)
		}
	}

	// Measured phase: every client on both CNs runs YCSB B with Zipfian
	// skew. Clients are created up front and join the fabric's time
	// gate so the virtual-time throughput is meaningful.
	type out struct {
		ops   int
		durNs int64
	}
	clients := make([]*core.Client, 0, 2*clientsPerCN)
	owners := make([]int, 0, 2*clientsPerCN)
	for cnIdx, cn := range cns {
		for i := 0; i < clientsPerCN; i++ {
			cl := cn.NewClient()
			cl.DM().JoinCohort()
			clients = append(clients, cl)
			owners = append(owners, cnIdx)
		}
	}
	outs := make([]out, len(clients))
	var wg sync.WaitGroup
	for idx, cl := range clients {
		wg.Add(1)
		go func(idx int, cl *core.Client) {
			defer wg.Done()
			defer cl.DM().LeaveCohort()
			r := rand.New(rand.NewSource(int64(idx)))
			zip := ycsb.NewZipfian(loadItems, 0.99)
			start := cl.DM().Now()
			val := make([]byte, 8)
			for i := 0; i < opsPerClient; i++ {
				key := ycsb.KeyOf(zip.Next(r.Float64()))
				if r.Float64() < hotFraction {
					if _, err := cl.Search(key); err != nil && !errors.Is(err, core.ErrNotFound) {
						log.Fatalf("search: %v", err)
					}
				} else {
					binary.LittleEndian.PutUint64(val, uint64(i))
					if err := cl.Update(key, val); err != nil && !errors.Is(err, core.ErrNotFound) {
						log.Fatalf("update: %v", err)
					}
				}
			}
			outs[idx] = out{ops: opsPerClient, durNs: cl.DM().Now() - start}
		}(idx, cl)
	}
	wg.Wait()

	// Report per CN.
	for cnIdx, cn := range cns {
		var ops int
		var maxDur int64
		for i := range clients {
			if owners[i] != cnIdx {
				continue
			}
			ops += outs[i].ops
			if outs[i].durNs > maxDur {
				maxDur = outs[i].durNs
			}
		}
		cs := cn.CacheStats()
		hs := cn.HotspotStats()
		hitRatio := float64(cs.Hits) / float64(cs.Hits+cs.Misses)
		fmt.Printf("\nCN%d: %.2f Mops (%d ops / %.1f ms virtual)\n",
			cnIdx, float64(ops)*1e3/float64(maxDur), ops, float64(maxDur)/1e6)
		fmt.Printf("  node cache: %d nodes, %.1f KB, hit ratio %.1f%%\n",
			cs.Nodes, float64(cs.UsedBytes)/1e3, hitRatio*100)
		if hs.Lookups > 0 {
			fmt.Printf("  hotspot buffer: %d entries, %.1f%% lookup hits, %.1f%% speculations correct\n",
				hs.Entries,
				100*float64(hs.Hits)/float64(hs.Lookups),
				100*float64(hs.Correct)/float64(max64(hs.Speculations, 1)))
		}
	}
	ns := fabric.TotalNICStats()
	fmt.Printf("\nfabric totals: %d verbs, %.1f MB out of the pool, %.1f MB in\n",
		ns.Verbs, float64(ns.BytesOut)/1e6, float64(ns.BytesIn)/1e6)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
