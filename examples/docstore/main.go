// docstore: a small document store with string keys on disaggregated
// memory, exercising CHIME's variable-length key support (§4.5): leaf
// entries hold an 8-byte prefix fingerprint, full keys and values live
// in remote blocks, and fingerprint collisions chain.
//
//	go run ./examples/docstore
package main

import (
	"fmt"
	"log"
	"sort"

	"chime/internal/core"
	"chime/internal/dmsim"
)

func main() {
	fabric := dmsim.MustNewFabric(dmsim.DefaultConfig())
	opts := core.DefaultOptions()
	opts.VarKeys = true
	tree, err := core.Bootstrap(fabric, opts)
	if err != nil {
		log.Fatal(err)
	}
	client := tree.NewComputeNode(16<<20, 0).NewClient()

	docs := map[string]string{
		"users/alice/profile":    `{"name":"Alice","role":"engineer"}`,
		"users/alice/settings":   `{"theme":"dark"}`,
		"users/bob/profile":      `{"name":"Bob","role":"analyst"}`,
		"orders/2026-07-01/0001": `{"item":"widget","qty":3}`,
		"orders/2026-07-02/0001": `{"item":"gadget","qty":1}`,
		"orders/2026-07-04/0007": `{"item":"sprocket","qty":12}`,
	}
	// Insert in sorted key order: map range order would make the
	// fabric's allocation sequence (and any persistence log) differ
	// run to run.
	keys := make([]string, 0, len(docs))
	for k := range docs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := client.InsertKV([]byte(k), []byte(docs[k])); err != nil {
			log.Fatalf("insert %q: %v", k, err)
		}
	}

	// Point lookup by full string key.
	v, err := client.SearchKV([]byte("users/alice/profile"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("users/alice/profile -> %s\n", v)

	// Prefix-range scan: every order (keys starting "orders/").
	fmt.Println("\nall orders:")
	kvs, err := client.ScanKV([]byte("orders/"), 100)
	if err != nil {
		log.Fatal(err)
	}
	for _, kv := range kvs {
		if len(kv.Key) < 7 || string(kv.Key[:7]) != "orders/" {
			break // past the prefix
		}
		fmt.Printf("  %-24s %s\n", kv.Key, kv.Value)
	}

	// Update a document in place.
	if err := client.UpdateKV([]byte("users/bob/profile"), []byte(`{"name":"Bob","role":"manager"}`)); err != nil {
		log.Fatal(err)
	}
	v, _ = client.SearchKV([]byte("users/bob/profile"))
	fmt.Printf("\nafter promotion: %s\n", v)

	// These two keys share their first 8 bytes ("users/al"): their
	// blocks chain behind one fingerprint, and both stay addressable.
	fp1 := core.FingerprintOf([]byte("users/alice/profile"))
	fp2 := core.FingerprintOf([]byte("users/alice/settings"))
	fmt.Printf("\nfingerprint collision: %#x == %#x -> chained blocks\n", fp1, fp2)

	if err := client.DeleteKV([]byte("users/alice/settings")); err != nil {
		log.Fatal(err)
	}
	if _, err := client.SearchKV([]byte("users/alice/profile")); err != nil {
		log.Fatalf("chain rebuild lost a sibling: %v", err)
	}
	fmt.Println("deleted users/alice/settings; users/alice/profile survives the chain rebuild")
}
