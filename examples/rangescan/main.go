// rangescan: time-ordered event analytics on disaggregated memory —
// the range-query workload that motivates using a *range* index rather
// than a hash table (§2.2). Events carry composite keys
// (minute << 24 | sequence), so "all events in minutes [t, t+w)" is a
// key-range scan. The example loads an event log into both CHIME and
// Sherman on identical fabrics and compares what the same scans cost
// each index on the wire.
//
//	go run ./examples/rangescan
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"

	"chime/internal/core"
	"chime/internal/dmsim"
	"chime/internal/sherman"
)

const (
	minutes      = 400
	eventsPerMin = 60
	scanWindow   = 5 // minutes per analytics query
	queries      = 50
)

func eventKey(minute, seq uint64) uint64 { return minute<<24 | seq }

func main() {
	// Load the same synthetic event log into both indexes.
	fmt.Printf("event log: %d minutes x %d events\n\n", minutes, eventsPerMin)

	chimeFabric := dmsim.MustNewFabric(dmsim.DefaultConfig())
	chimeTree, err := core.Bootstrap(chimeFabric, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	chimeCl := chimeTree.NewComputeNode(16<<20, 0).NewClient()

	shermanFabric := dmsim.MustNewFabric(dmsim.DefaultConfig())
	shermanTree, err := sherman.Bootstrap(shermanFabric, sherman.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	shermanCl := shermanTree.NewComputeNode(16 << 20).NewClient()

	val := make([]byte, 8)
	for m := uint64(0); m < minutes; m++ {
		for s := uint64(0); s < eventsPerMin; s++ {
			binary.LittleEndian.PutUint64(val, m*1000+s)
			k := eventKey(m, s)
			if err := chimeCl.Insert(k, val); err != nil {
				log.Fatalf("chime insert: %v", err)
			}
			if err := shermanCl.Insert(k, val); err != nil {
				log.Fatalf("sherman insert: %v", err)
			}
		}
	}

	// Warm both caches with one pass of point reads.
	for m := uint64(0); m < minutes; m += 7 {
		if _, err := chimeCl.Search(eventKey(m, 0)); err != nil {
			log.Fatal(err)
		}
		if _, err := shermanCl.Search(eventKey(m, 0)); err != nil {
			log.Fatal(err)
		}
	}

	// Analytics: "sum the last scanWindow minutes" sliding randomly.
	r := rand.New(rand.NewSource(7))
	chimeCl.DM().ResetStats()
	shermanCl.DM().ResetStats()
	chimeStart := chimeCl.DM().Now()
	shermanStart := shermanCl.DM().Now()

	var chimeSum, shermanSum uint64
	for q := 0; q < queries; q++ {
		m := uint64(r.Intn(minutes - scanWindow))
		want := scanWindow * eventsPerMin

		kvs, err := chimeCl.Scan(eventKey(m, 0), want)
		if err != nil {
			log.Fatalf("chime scan: %v", err)
		}
		for _, kv := range kvs {
			chimeSum += binary.LittleEndian.Uint64(kv.Value)
		}

		skvs, err := shermanCl.Scan(eventKey(m, 0), want)
		if err != nil {
			log.Fatalf("sherman scan: %v", err)
		}
		for _, kv := range skvs {
			shermanSum += binary.LittleEndian.Uint64(kv.Value)
		}
		if len(kvs) != len(skvs) {
			log.Fatalf("query %d: CHIME returned %d events, Sherman %d", q, len(kvs), len(skvs))
		}
	}
	if chimeSum != shermanSum {
		log.Fatalf("aggregation mismatch: %d vs %d", chimeSum, shermanSum)
	}
	fmt.Printf("%d scan queries agree on both indexes (checksum %d)\n\n", queries, chimeSum)

	report := func(name string, st dmsim.ClientStats, durNs int64) {
		perQ := float64(queries)
		fmt.Printf("%-8s %6.1f trips/query  %8.1f KB read/query  %8.1f us/query\n",
			name,
			float64(st.Trips)/perQ,
			float64(st.BytesRead)/perQ/1e3,
			float64(durNs)/perQ/1e3)
	}
	report("CHIME", chimeCl.DM().Stats(), chimeCl.DM().Now()-chimeStart)
	report("Sherman", shermanCl.DM().Stats(), shermanCl.DM().Now()-shermanStart)
	fmt.Println("\n(both are KV-contiguous: scans fetch whole leaves along the sibling chain;")
	fmt.Println(" a KV-discrete radix tree would pay one small READ per event instead — see fig12 YCSB E)")
}
