// Package chime is a from-scratch Go reproduction of CHIME (SOSP '24):
// a cache-efficient, high-performance hybrid range index on
// disaggregated memory that combines B+-tree internal nodes with
// hopscotch-hashing leaf nodes.
//
// The repository contains the CHIME index itself (internal/core), the
// three baselines its evaluation compares against — Sherman
// (internal/sherman), SMART (internal/smartidx) and ROLEX
// (internal/rolex) — a simulated disaggregated-memory fabric with
// one-sided RDMA-style verbs and a calibrated NIC model
// (internal/dmsim), a YCSB workload generator (internal/ycsb), and a
// benchmark harness (internal/bench) that regenerates every table and
// figure of the paper's evaluation. See README.md, DESIGN.md and
// EXPERIMENTS.md.
package chime
