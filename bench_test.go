package chime

// Benchmark targets regenerating every table and figure of the CHIME
// paper's evaluation. Each BenchmarkFigXX runs the corresponding
// experiment from internal/bench and prints the rows the paper
// artifact reports.
//
// By default the benches run at bench.SmallScale so `go test -bench=.`
// finishes quickly; set CHIME_BENCH_SCALE=default (or use
// cmd/chime-bench directly) for the full-size runs recorded in
// EXPERIMENTS.md. Throughput and latency are measured in virtual fabric
// time, so the numbers are stable across host machines.

import (
	"bytes"
	"os"
	"testing"

	"chime/internal/bench"
)

func benchScale() bench.Scale {
	if os.Getenv("CHIME_BENCH_SCALE") == "default" {
		return bench.DefaultScale
	}
	return bench.SmallScale
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := bench.FindExperiment(id)
	if err != nil {
		b.Fatal(err)
	}
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := exp.Run(&buf, sc); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == 0 {
			os.Stdout.Write(buf.Bytes())
		}
	}
}

// §3 motivation: the two trade-offs and the metadata microbenchmarks.

func BenchmarkFig3a_Tradeoff(b *testing.B)         { runExperiment(b, "fig3a") }
func BenchmarkFig3b_LimitedBandwidth(b *testing.B) { runExperiment(b, "fig3b") }
func BenchmarkFig3c_LimitedCache(b *testing.B)     { runExperiment(b, "fig3c") }
func BenchmarkFig3d_LoadFactor(b *testing.B)       { runExperiment(b, "fig3d") }
func BenchmarkFig4a_VacancyAccess(b *testing.B)    { runExperiment(b, "fig4a") }
func BenchmarkFig4b_LeafMeta(b *testing.B)         { runExperiment(b, "fig4b") }
func BenchmarkFig4c_Neighborhood(b *testing.B)     { runExperiment(b, "fig4c") }

// Table 1: round trips per operation.

func BenchmarkTable1_RoundTrips(b *testing.B) { runExperiment(b, "tab1") }

// §5.2 main comparison.

func BenchmarkFig12_YCSB(b *testing.B)             { runExperiment(b, "fig12") }
func BenchmarkFig13_VarLen(b *testing.B)           { runExperiment(b, "fig13") }
func BenchmarkFig14_CacheConsumption(b *testing.B) { runExperiment(b, "fig14") }

// §5.3 factor analysis.

func BenchmarkFig15_FactorAnalysis(b *testing.B)    { runExperiment(b, "fig15") }
func BenchmarkFig15b_CHIMELearned(b *testing.B)     { runExperiment(b, "fig15b") }
func BenchmarkFig16_SiblingValidation(b *testing.B) { runExperiment(b, "fig16") }
func BenchmarkFig17_SpeculativeRead(b *testing.B)   { runExperiment(b, "fig17") }

// §5.4 sensitivity analysis.

func BenchmarkFig18a_Skewness(b *testing.B)               { runExperiment(b, "fig18a") }
func BenchmarkFig18b_CacheSize(b *testing.B)              { runExperiment(b, "fig18b") }
func BenchmarkFig18c_InlineValue(b *testing.B)            { runExperiment(b, "fig18c") }
func BenchmarkFig18d_IndirectValue(b *testing.B)          { runExperiment(b, "fig18d") }
func BenchmarkFig18e_SpanSize(b *testing.B)               { runExperiment(b, "fig18e") }
func BenchmarkFig18f_NeighborhoodSize(b *testing.B)       { runExperiment(b, "fig18f") }
func BenchmarkFig19a_SpanLoadFactor(b *testing.B)         { runExperiment(b, "fig19a") }
func BenchmarkFig19b_NeighborhoodLoadFactor(b *testing.B) { runExperiment(b, "fig19b") }
func BenchmarkFig19c_HotspotBuffer(b *testing.B)          { runExperiment(b, "fig19c") }

// §4.5 discussion claims.

func BenchmarkDisc_WriteAmplification(b *testing.B) { runExperiment(b, "disc-wamp") }
func BenchmarkDisc_MemoryOverhead(b *testing.B)     { runExperiment(b, "disc-mem") }
func BenchmarkDisc_TreeHeight(b *testing.B)         { runExperiment(b, "disc-height") }
