package chime

// Smoke tests that build and run every example application end to end.
// They execute `go run` as a subprocess, so a broken example fails the
// suite rather than rotting silently.

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

func runExample(t *testing.T, dir string, wantSubstrings ...string) {
	t.Helper()
	if testing.Short() {
		t.Skip("example smoke tests skipped in -short mode")
	}
	start := time.Now()
	cmd := exec.Command("go", "run", "./"+dir)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s failed after %v: %v\n%s", dir, time.Since(start), err, out)
	}
	for _, want := range wantSubstrings {
		if !strings.Contains(string(out), want) {
			t.Fatalf("%s output missing %q:\n%s", dir, want, out)
		}
	}
}

func TestExampleQuickstart(t *testing.T) {
	runExample(t, "examples/quickstart",
		"after update",
		"delete(43*7919) confirmed",
		"remote traffic",
	)
}

func TestExampleKVStore(t *testing.T) {
	runExample(t, "examples/kvstore",
		"CN0:",
		"CN1:",
		"hotspot buffer",
		"fabric totals",
	)
}

func TestExampleRangescan(t *testing.T) {
	runExample(t, "examples/rangescan",
		"scan queries agree on both indexes",
		"CHIME",
		"Sherman",
	)
}

func TestExampleDocstore(t *testing.T) {
	runExample(t, "examples/docstore",
		"users/alice/profile",
		"all orders:",
		"fingerprint collision",
		"survives the chain rebuild",
	)
}
