package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"chime/internal/dmsim"
	"chime/internal/ycsb"
)

// fullScanTrips counts the round trips of a complete scan — a proxy for
// the length of the leaf sibling chain.
func fullScanTrips(t *testing.T, cl *Client, expect int) int64 {
	t.Helper()
	before := cl.DM().Stats().Trips
	out, err := cl.Scan(0, expect+10)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != expect {
		t.Fatalf("scan found %d items, want %d", len(out), expect)
	}
	return cl.DM().Stats().Trips - before
}

func TestMergeShrinksLeafChain(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	const n = 4000
	for i := uint64(0); i < n; i++ {
		if err := cl.Insert(ycsb.KeyOf(i), val8(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Delete a contiguous key band so whole leaves empty out.
	keys := make([]uint64, 0, n)
	for i := uint64(0); i < n; i++ {
		keys = append(keys, ycsb.KeyOf(i))
	}
	sortU64(keys)
	for _, k := range keys[500:3500] {
		if err := cl.Delete(k); err != nil {
			t.Fatalf("delete %#x: %v", k, err)
		}
	}

	trips := fullScanTrips(t, cl, 1000)
	// Without merging the chain stays ~90 leaves; with merging the
	// emptied middle collapses. Expect far fewer than the original leaf
	// count worth of trips.
	if trips > 60 {
		t.Fatalf("full scan cost %d trips; merge did not shrink the chain", trips)
	}

	// Everything still present and correct.
	for i, k := range keys {
		got, err := cl.Search(k)
		if i >= 500 && i < 3500 {
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("deleted key %d: %v", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("surviving key %d: %v", i, err)
		}
		_ = got
	}
}

func TestMergeThenReinsert(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	const n = 2000
	for i := uint64(0); i < n; i++ {
		if err := cl.Insert(ycsb.KeyOf(i), val8(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < n; i++ {
		if err := cl.Delete(ycsb.KeyOf(i)); err != nil {
			t.Fatal(err)
		}
	}
	// The merged tree must absorb a full reload: merged-away ranges are
	// now owned by their left neighbors.
	for i := uint64(0); i < n; i++ {
		if err := cl.Insert(ycsb.KeyOf(i), val8(i+7)); err != nil {
			t.Fatalf("reinsert %d: %v", i, err)
		}
	}
	for i := uint64(0); i < n; i++ {
		got, err := cl.Search(ycsb.KeyOf(i))
		if err != nil || binary.LittleEndian.Uint64(got) != i+7 {
			t.Fatalf("reloaded %d: %v %v", i, got, err)
		}
	}
}

func TestMergeConcurrentWithTraffic(t *testing.T) {
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 512 << 20
	ix, err := Bootstrap(dmsim.MustNewFabric(cfg), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cn := ix.NewComputeNode(64<<20, 1<<20)
	loader := cn.NewClient()
	const n = 3000
	for i := uint64(0); i < n; i++ {
		if err := loader.Insert(ycsb.KeyOf(i), val8(i)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	// Deleters empty out bands (triggering merges) while readers,
	// writers and scanners hammer the same tree.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := cn.NewClient()
			lo := uint64(w) * n / 2
			for i := lo; i < lo+n/4; i++ {
				if err := cl.Delete(ycsb.KeyOf(i)); err != nil && !errors.Is(err, ErrNotFound) {
					errs <- fmt.Errorf("deleter: %w", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cl := cn.NewClient()
			rng := rand.New(rand.NewSource(int64(r)))
			for i := 0; i < 600; i++ {
				k := ycsb.KeyOf(uint64(rng.Intn(n)))
				switch rng.Intn(3) {
				case 0:
					if _, err := cl.Search(k); err != nil && !errors.Is(err, ErrNotFound) {
						errs <- fmt.Errorf("reader: %w", err)
						return
					}
				case 1:
					if err := cl.Insert(ycsb.KeyOf(uint64(n)+uint64(r*1000+i)), val8(1)); err != nil {
						errs <- fmt.Errorf("inserter: %w", err)
						return
					}
				case 2:
					if _, err := cl.Scan(k, 15); err != nil {
						errs <- fmt.Errorf("scanner: %w", err)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Post-hoc verification: survivors intact.
	cl := cn.NewClient()
	for i := uint64(0); i < n; i++ {
		del := (i < n/4) || (i >= n/2 && i < n/2+n/4)
		got, err := cl.Search(ycsb.KeyOf(i))
		if del {
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("deleted %d resurfaced: %v", i, err)
			}
		} else if err != nil || binary.LittleEndian.Uint64(got) != i {
			t.Fatalf("survivor %d: %v %v", i, got, err)
		}
	}
}

func sortU64(a []uint64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// TestMergeWithVarKeys: DeleteKV-driven merges must keep fingerprint
// chains addressable through the restructured tree.
func TestMergeWithVarKeys(t *testing.T) {
	opts := DefaultOptions()
	opts.VarKeys = true
	_, cl := newTestTree(t, opts)
	const n = 1500
	key := func(i int) []byte { return []byte(fmt.Sprintf("doc/%06d", i)) }
	for i := 0; i < n; i++ {
		if err := cl.InsertKV(key(i), []byte{byte(i)}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	// Empty a large middle band (whole leaves merge away).
	for i := 200; i < 1200; i++ {
		if err := cl.DeleteKV(key(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		got, err := cl.SearchKV(key(i))
		if i >= 200 && i < 1200 {
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("deleted %d: %v", i, err)
			}
			continue
		}
		if err != nil || got[0] != byte(i) {
			t.Fatalf("survivor %d: %v %v", i, got, err)
		}
	}
	// Reinsert into merged-away ranges.
	for i := 500; i < 700; i++ {
		if err := cl.InsertKV(key(i), []byte{0xEE}); err != nil {
			t.Fatalf("reinsert %d: %v", i, err)
		}
	}
	out, err := cl.ScanKV([]byte("doc/000500"), 200)
	if err != nil || len(out) != 200 {
		t.Fatalf("post-merge scan: %d %v", len(out), err)
	}
}
