package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"chime/internal/dmsim"
	"chime/internal/hopscotch"
	"chime/internal/obs"
)

// Pipelined batch writes (async verb pipelining, write side). InsertBatch
// and UpdateBatch drive up to `depth` writes through the tree at once on
// ONE client, mirroring SearchBatch: each key is a state machine whose
// remote verbs are posted, so the lock CAS, window fetch, and doorbell
// write+unlock of different keys overlap on the virtual clock.
//
// On top of per-key pipelining, keys that resolve to the same leaf are
// COMBINED into one write cycle: the first arrival becomes the cycle
// leader and posts the lock CAS; later arrivals park on the cycle and
// ride its single lock/fetch/write round trips. A cycle keeps collecting
// until its fetch is posted — CAS conflict retries therefore widen the
// combining window exactly when the leaf is contended, which is when
// combining pays most. Multi-key cycles always fetch the whole node
// (exact occupancy for several hop plans); singleton cycles keep the
// narrow insert/update window geometry of the synchronous path.
//
// The batch path intentionally bypasses the local lock table: its
// blocking Acquire would stall every other key in the batch. The posted
// CAS retry loop is always correct against lock-table holders on this or
// any other compute node — the remote word is the ground truth — and
// per-leaf combining already serves the role local handover plays for
// same-CN contention. Restart handling is per key: a stale ref, moved
// fence, or split restarts only the key(s) involved, never the batch.

// writeOp states.
const (
	wpRootWait = iota + 1
	wpInternalWait
	wpLockWait
	wpLockRead
	wpFetchWait
	wpWriteWait
	wpJoined
	wpDone
)

type writeKind int

const (
	writeUpsert writeKind = iota // insert-or-overwrite (YCSB insert/load)
	writeUpdate                  // overwrite-only, ErrNotFound when absent
)

// writeOp is one in-flight key of an InsertBatch/UpdateBatch.
type writeOp struct {
	kind writeKind
	key  uint64
	val  []byte // prepared value bytes (pointer block in indirect mode)
	idx  int    // position in the input / result slices

	state int

	// Traversal state (mirrors searchOp).
	root      dmsim.GAddr
	rootLevel uint8
	cur       dmsim.GAddr
	path      []pathEntry
	ref       leafRef
	hops      int

	h       *dmsim.Completion
	rootBuf [8]byte
	img     []byte // internal-node image (pooled)

	restarts, torn, casFails int

	cy       *writeCycle
	notFound bool // update key absent; reported once the cycle commits

	err error
}

// writeCycle is one lock/fetch/write round over a single leaf, shared by
// every batch key that resolved to that leaf while it was collecting.
type writeCycle struct {
	leaf       dmsim.GAddr
	leader     *writeOp
	ops        []*writeOp
	collecting bool

	lw      lockWord
	lockBuf [8]byte // dedicated word read (PiggybackVacancy off)

	im        *leafImage
	fetched   []bool
	full      bool
	metaG     int
	ranges    []byteRange
	metaRange byteRange
	h, h2     *dmsim.Completion

	// settled holds the ops whose outcome (success or ErrNotFound) commits
	// when the posted doorbell write+unlock completes.
	settled []*writeOp
}

// wpSched is the per-batch scheduler state.
type wpSched struct {
	// cycles maps packed leaf address -> the currently collecting cycle.
	cycles map[uint64]*writeCycle
	// wake collects ops whose state was changed off-queue (restarted or
	// completed followers, promoted leaders); the scheduler re-settles
	// them after every step.
	wake []*writeOp

	cyclesN  int64
	combined int64
}

// InsertBatch performs up to depth concurrent upserts (Insert semantics)
// on this client. Results are positionally aligned with keys; a nil
// error means the key is durably written.
func (c *Client) InsertBatch(keys []uint64, values [][]byte, depth int) []error {
	return c.runWriteBatch(writeUpsert, keys, values, depth)
}

// UpdateBatch performs up to depth concurrent overwrite-only updates,
// returning ErrNotFound per absent key.
func (c *Client) UpdateBatch(keys []uint64, values [][]byte, depth int) []error {
	return c.runWriteBatch(writeUpdate, keys, values, depth)
}

// MultiPut is the bench-facing alias for InsertBatch.
func (c *Client) MultiPut(keys []uint64, values [][]byte, depth int) []error {
	return c.InsertBatch(keys, values, depth)
}

// WriteCombineStats reports how many leaf write cycles the batch write
// pipeline has executed on this client and how many batch keys were
// absorbed into an already-open cycle on the same leaf.
func (c *Client) WriteCombineStats() (cycles, combinedKeys int64) {
	return c.wcCycles, c.wcCombined
}

func (c *Client) runWriteBatch(kind writeKind, keys []uint64, values [][]byte, depth int) []error {
	n := len(keys)
	errs := make([]error, n)
	if n == 0 {
		return errs
	}
	if sp := c.obs.Tracer.Begin("chime.write_batch", "idx", c.dc.ID(), c.dc.Now()); sp != nil {
		sp.Arg("keys", n)
		sp.Arg("depth", depth)
		defer func() { sp.End(c.dc.Now()) }()
	}
	if fl := c.dc.Flight(); fl != nil {
		fl.Begin(obs.OpBatchWrite, c.dc.Now())
		defer func() { fl.End(c.dc.Now()) }()
	}
	if len(values) != n {
		err := fmt.Errorf("core: write batch: %d keys but %d values", n, len(values))
		for i := range errs {
			errs[i] = err
		}
		return errs
	}
	if depth < 1 {
		depth = 1
	}

	st := &wpSched{cycles: make(map[uint64]*writeCycle)}
	var queue []*writeOp
	var all []*writeOp
	live := 0
	next := 0

	settle := func(op *writeOp) {
		switch op.state {
		case wpDone:
			errs[op.idx] = op.err
			live--
		case wpJoined:
			// Parked on a cycle; its leader drives it from here.
		default:
			queue = append(queue, op)
		}
	}
	drain := func() {
		for len(st.wake) > 0 {
			w := st.wake
			st.wake = nil
			for _, op := range w {
				settle(op)
			}
		}
	}
	admit := func() {
		for next < n && live < depth {
			op := &writeOp{kind: kind, key: keys[next], idx: next}
			next++
			live++
			all = append(all, op)
			val, err := c.prepareValue(op.key, values[op.idx])
			if err != nil {
				op.err, op.state = err, wpDone
			} else {
				op.val = val
				c.beginWriteOp(st, op)
			}
			settle(op)
			drain()
		}
	}

	admit()
	for live > 0 {
		if len(queue) == 0 {
			// Every live op must be queued or parked under a queued leader;
			// an empty queue with live ops is a scheduler bug. Fail them
			// rather than spin forever.
			for _, op := range all {
				if op.state != wpDone {
					errs[op.idx] = fmt.Errorf("core: write batch(%#x): scheduler stalled in state %d", op.key, op.state)
				}
			}
			break
		}
		op := queue[0]
		queue = queue[1:]
		c.stepWriteOp(st, op)
		settle(op)
		drain()
		admit()
	}

	c.wcCycles += st.cyclesN
	c.wcCombined += st.combined
	c.obs.WCCycles.Add(st.cyclesN)
	c.obs.WCCombined.Add(st.combined)
	return errs
}

// beginWriteOp (re)starts a key's traversal toward its leaf.
func (c *Client) beginWriteOp(st *wpSched, op *writeOp) {
	op.path = nil
	op.hops = 0
	op.cy = nil
	op.notFound = false
	c.chargeLocalWork()
	if c.rootAddr.IsNil() {
		h, err := c.dc.PostRead(c.ix.super, op.rootBuf[:])
		if err != nil {
			c.failWriteOp(op, err)
			return
		}
		op.h = h
		op.state = wpRootWait
		return
	}
	op.root, op.rootLevel = c.rootAddr, c.rootLevel
	c.descendWriteFromRoot(st, op)
}

func (c *Client) descendWriteFromRoot(st *wpSched, op *writeOp) {
	if op.rootLevel == 0 {
		op.ref = leafRef{addr: op.root}
		c.arriveWriteAtLeaf(st, op)
		return
	}
	op.cur = op.root
	c.descendWriteLoop(st, op)
}

// descendWriteLoop walks internal levels through the cache until it
// needs a remote read (posting it) or reaches level 1 (arriving at the
// leaf and joining/opening a write cycle).
func (c *Client) descendWriteLoop(st *wpSched, op *writeOp) {
	for ; op.hops < maxRetries; op.hops++ {
		n := c.cn.cache.get(op.cur)
		if n == nil {
			op.img = c.ix.inner.getImage()
			h, err := c.dc.PostRead(op.cur, op.img)
			if err != nil {
				c.failWriteOp(op, err)
				return
			}
			op.h = h
			op.state = wpInternalWait
			return
		}
		if !c.stepWriteNode(st, op, n, true) {
			return
		}
	}
	c.failWriteOp(op, fmt.Errorf("core: write batch(%#x): descent loop exhausted", op.key))
}

// stepWriteNode applies one internal node to the descent; false means
// the op posted, arrived at its leaf, restarted, or failed.
func (c *Client) stepWriteNode(st *wpSched, op *writeOp, n *internalNode, fromCache bool) bool {
	key := op.key
	if !n.covers(key) {
		if fromCache {
			c.cn.cache.invalidate(op.cur)
			return true
		}
		if !n.fenceInf && key >= n.fenceHi && !n.sibling.IsNil() {
			op.cur = n.sibling
			return true
		}
		c.restartWriteOp(st, op)
		return false
	}
	op.path = append(op.path, pathEntry{addr: op.cur, level: n.level})
	child, _, nextC := n.childFor(key)
	if child.IsNil() {
		if fromCache {
			c.cn.cache.invalidate(op.cur)
			return true
		}
		c.restartWriteOp(st, op)
		return false
	}
	if n.level == 1 {
		op.ref = leafRef{
			addr:            child,
			expected:        nextC,
			expectedKnown:   !nextC.IsNil(),
			parentAddr:      op.cur,
			parentFromCache: fromCache,
			path:            op.path,
		}
		c.arriveWriteAtLeaf(st, op)
		return false
	}
	op.cur = child
	return true
}

// arriveWriteAtLeaf joins the leaf's collecting cycle, or opens a new
// one and posts its lock CAS.
func (c *Client) arriveWriteAtLeaf(st *wpSched, op *writeOp) {
	k := op.ref.addr.Pack()
	if cy, ok := st.cycles[k]; ok && cy.collecting {
		op.cy = cy
		cy.ops = append(cy.ops, op)
		op.state = wpJoined
		st.combined++
		return
	}
	cy := &writeCycle{leaf: op.ref.addr, leader: op, ops: []*writeOp{op}, collecting: true}
	st.cycles[k] = cy
	st.cyclesN++
	op.cy = cy
	c.postCycleLock(st, op)
}

// postCycleLock posts the leaf lock masked CAS (the §4.2.1 piggyback
// variant swaps the whole word so the previous vacancy/argmax payload
// arrives with the lock; the ablation keeps a dedicated word read).
func (c *Client) postCycleLock(st *wpSched, op *writeOp) {
	cy := op.cy
	addr := leafLockAddr(cy.leaf)
	var h *dmsim.Completion
	var err error
	if c.ix.opts.LeaseLocks {
		h, err = c.dc.PostMaskedCAS(addr, 0, c.lockSwapWord(), lockBit, ^uint64(0))
	} else if c.ix.opts.PiggybackVacancy {
		h, err = c.dc.PostMaskedCAS(addr, 0, lockBit, lockBit, ^uint64(0))
	} else {
		h, err = c.dc.PostMaskedCAS(addr, 0, lockBit, lockBit, lockBit)
	}
	if err != nil {
		c.failCycle(st, op, err, false)
		return
	}
	cy.h = h
	op.state = wpLockWait
}

// stepWriteOp polls the op's (or its cycle's) outstanding completions
// and advances the state machine.
func (c *Client) stepWriteOp(st *wpSched, op *writeOp) {
	switch op.state {
	case wpRootWait:
		c.dc.Poll(op.h)
		op.h = nil
		addr, lvl := unpackSuper(binary.LittleEndian.Uint64(op.rootBuf[:]))
		c.rootAddr, c.rootLevel = addr, lvl
		op.root, op.rootLevel = addr, lvl
		c.descendWriteFromRoot(st, op)

	case wpInternalWait:
		c.dc.Poll(op.h)
		op.h = nil
		if err := c.ix.inner.checkInternalImage(op.img); err != nil {
			op.torn++
			if op.torn > maxRetries {
				c.failWriteOp(op, fmt.Errorf("core: internal node %v: torn-read retries exhausted", op.cur))
				return
			}
			c.yield()
			h, perr := c.dc.PostRead(op.cur, op.img)
			if perr != nil {
				c.failWriteOp(op, perr)
				return
			}
			op.h = h
			return
		}
		fresh := c.ix.inner.decodeInternal(op.cur, op.img)
		c.ix.inner.putImage(op.img)
		op.img = nil
		if !fresh.valid {
			c.restartWriteOp(st, op)
			return
		}
		c.cn.cache.put(op.cur, fresh, int64(c.ix.inner.size))
		if c.stepWriteNode(st, op, fresh, false) {
			c.descendWriteLoop(st, op)
		}

	case wpLockWait:
		cy := op.cy
		c.dc.Poll(cy.h)
		prev, ok := cy.h.CASResult()
		cy.h = nil
		if !ok {
			if c.ix.opts.LeaseLocks {
				// Synchronous steal attempt: rare (only after a crash),
				// so dropping out of the pipeline for it is fine.
				lw, stolen, serr := c.tryStealLeafLease(cy.leaf, prev)
				if serr != nil {
					c.failCycle(st, op, serr, false)
					return
				}
				if stolen {
					c.resetBackoff()
					cy.lw = lw
					c.postCycleFetch(st, op)
					return
				}
			}
			op.casFails++
			if op.casFails > maxRetries {
				c.failCycle(st, op, fmt.Errorf("core: leaf %v: lock acquisition starved", cy.leaf), false)
				return
			}
			c.yield()
			c.postCycleLock(st, op) // the cycle keeps collecting meanwhile
			return
		}
		c.resetBackoff()
		if c.ix.opts.PiggybackVacancy {
			cy.lw = decodeLockWord(prev)
			c.postCycleFetch(st, op)
			return
		}
		h, err := c.dc.PostRead(leafLockAddr(cy.leaf), cy.lockBuf[:])
		if err != nil {
			c.failCycle(st, op, err, true)
			return
		}
		cy.h = h
		op.state = wpLockRead

	case wpLockRead:
		cy := op.cy
		c.dc.Poll(cy.h)
		cy.h = nil
		cy.lw = decodeLockWord(binary.LittleEndian.Uint64(cy.lockBuf[:]))
		c.postCycleFetch(st, op)

	case wpFetchWait:
		cy := op.cy
		c.dc.Poll(cy.h)
		c.dc.Poll(cy.h2)
		cy.h, cy.h2 = nil, nil
		check := cy.ranges
		if cy.metaRange.size() > 0 {
			check = append(append([]byteRange{}, cy.ranges...), cy.metaRange)
		}
		// The lock is held, so tearing cannot happen; validate anyway for
		// defense in depth (mirrors the sync path).
		if err := checkVersions(cy.im.buf, 0, c.ix.leaf.coveredCells(check)); err != nil {
			op.torn++
			if op.torn > maxRetries {
				c.failCycle(st, op, fmt.Errorf("core: leaf %v: torn-read retries exhausted", cy.leaf), true)
				return
			}
			c.yield()
			c.postCycleRanges(st, op)
			return
		}
		c.applyCycle(st, op)

	case wpWriteWait:
		cy := op.cy
		c.dc.Poll(cy.h)
		cy.h = nil
		c.resetBackoff()
		for _, d := range cy.settled {
			d.cy = nil
			if d.notFound {
				d.err = ErrNotFound
			}
			d.state = wpDone
			if d != op {
				st.wake = append(st.wake, d)
			}
		}
		c.releaseCycle(cy)

	default:
		c.failWriteOp(op, fmt.Errorf("core: write batch: step in state %d", op.state))
	}
}

// postCycleFetch freezes the cycle's membership and posts the read(s) of
// its working set: singleton cycles keep the synchronous path's narrow
// window geometry (insert window with vacancy probe + argmax rider for
// upserts, neighborhood window for updates); multi-key cycles read the
// whole node so several hop plans share exact occupancy.
func (c *Client) postCycleFetch(st *wpSched, drv *writeOp) {
	cy := drv.cy
	lay := c.ix.leaf
	cy.collecting = false
	if cur, ok := st.cycles[cy.leaf.Pack()]; ok && cur == cy {
		delete(st.cycles, cy.leaf.Pack())
	}
	if len(cy.ops) == 1 {
		op := cy.ops[0]
		home := lay.homeOf(op.key)
		count := lay.h
		if op.kind == writeUpsert {
			count = c.probeCount(home, cy.lw.vacancy)
			if count < lay.h {
				count = lay.h
			}
		}
		if count < lay.span {
			segs, idxs := lay.neighborhoodSegments(home, count, c.ix.opts.ReplicateMeta)
			ranges := segs
			fetchedSet := make(map[int]bool, len(idxs))
			for _, i := range idxs {
				fetchedSet[i] = true
			}
			if op.kind == writeUpsert && cy.lw.argmaxValid && !fetchedSet[cy.lw.argmax] && cy.lw.argmax < lay.span {
				cellC := lay.entryCells[cy.lw.argmax]
				ranges = append(append([]byteRange{}, segs...), byteRange{Off: cellC.Off, End: cellC.End()})
				fetchedSet[cy.lw.argmax] = true
			}
			if cy.im == nil {
				cy.im = lay.getImage()
			}
			cy.full = false
			cy.ranges = ranges
			cy.metaRange = byteRange{}
			cy.metaG = lay.metaInRanges(ranges)
			if !c.ix.opts.ReplicateMeta || cy.metaG < 0 {
				rc := lay.replicaCells[0]
				cy.metaRange = byteRange{Off: rc.Off, End: rc.End()}
				cy.metaG = 0
			}
			fetched := make([]bool, lay.span)
			for i := range fetchedSet {
				fetched[i] = true
			}
			cy.fetched = fetched
			c.postCycleRanges(st, drv)
			return
		}
	}
	c.postCycleWholeFetch(st, drv)
}

// postCycleWholeFetch (re)posts a whole-node read into the cycle's
// image; also the escalation path when a window cannot prove a hop plan.
func (c *Client) postCycleWholeFetch(st *wpSched, drv *writeOp) {
	cy := drv.cy
	lay := c.ix.leaf
	if cy.im == nil {
		cy.im = lay.getImage()
	}
	// A recycled buffer carries a stale lock line; the read below only
	// fills the cell region (split paths encode over the whole buffer).
	for i := range cy.im.buf[:lineSize] {
		cy.im.buf[i] = 0
	}
	cy.full = true
	cy.ranges = []byteRange{{Off: lineSize, End: lay.size}}
	cy.metaRange = byteRange{}
	cy.metaG = 0
	fetched := make([]bool, lay.span)
	for i := range fetched {
		fetched[i] = true
	}
	cy.fetched = fetched
	c.postCycleRanges(st, drv)
}

// postCycleRanges posts the cycle's recorded fetch geometry (initial
// fetch and torn-read reposts share it).
func (c *Client) postCycleRanges(st *wpSched, drv *writeOp) {
	cy := drv.cy
	var err error
	if cy.full {
		cy.h, err = c.dc.PostRead(cy.leaf.Add(lineSize), cy.im.buf[lineSize:])
	} else if len(cy.ranges) == 1 {
		r := cy.ranges[0]
		cy.h, err = c.dc.PostRead(cy.leaf.Add(uint64(r.Off)), cy.im.buf[r.Off:r.End])
	} else {
		addrs := make([]dmsim.GAddr, len(cy.ranges))
		bufs := make([][]byte, len(cy.ranges))
		for i, r := range cy.ranges {
			addrs[i] = cy.leaf.Add(uint64(r.Off))
			bufs[i] = cy.im.buf[r.Off:r.End]
		}
		cy.h, err = c.dc.PostReadBatch(addrs, bufs)
	}
	if err == nil && cy.metaRange.size() > 0 {
		cy.h2, err = c.dc.PostRead(cy.leaf.Add(uint64(cy.metaRange.Off)), cy.im.buf[cy.metaRange.Off:cy.metaRange.End])
	}
	if err != nil {
		c.failCycle(st, drv, err, true)
		return
	}
	drv.state = wpFetchWait
}

// applyCycle validates and mutates the fetched image for every op of the
// cycle, then posts ONE doorbell batch carrying all changed ranges plus
// the cleared lock word. Per-key conflicts (stale refs, moved fences)
// peel only the affected ops off the cycle.
func (c *Client) applyCycle(st *wpSched, stepped *writeOp) {
	cy := stepped.cy
	lay := c.ix.leaf
	meta := cy.im.meta(cy.metaG)

	leave := func(op *writeOp, f func(*writeOp)) {
		op.cy = nil
		f(op)
		if op != stepped {
			st.wake = append(st.wake, op)
		}
	}

	if !meta.valid {
		// The node vanished under us (merge): release and restart all.
		c.unlockLeaf(cy.leaf, cy.lw)
		for _, op := range cy.ops {
			leave(op, func(op *writeOp) {
				c.invalidateRefParent(op.ref)
				c.restartWriteOp(st, op)
			})
		}
		c.releaseCycle(cy)
		return
	}

	pending := make([]*writeOp, 0, len(cy.ops))
	for _, op := range cy.ops {
		if op.ref.expectedKnown && meta.sibling != op.ref.expected && op.ref.parentFromCache {
			// Cache validation (§4.2.3): the cached parent predates a split.
			leave(op, func(op *writeOp) {
				c.invalidateRefParent(op.ref)
				c.restartWriteOp(st, op)
			})
			continue
		}
		if !meta.fenceInf && op.key >= meta.fenceHi {
			if op.kind == writeUpdate && !meta.sibling.IsNil() {
				// Half-split: the key may live in a right sibling. Chase it
				// (a restart could livelock against a parent that simply
				// has not absorbed the split yet).
				sib := meta.sibling
				leave(op, func(op *writeOp) { c.rearriveWriteOp(st, op, sib) })
			} else {
				leave(op, func(op *writeOp) {
					c.invalidateRefParent(op.ref)
					c.restartWriteOp(st, op)
				})
			}
			continue
		}
		pending = append(pending, op)
	}
	cy.ops = pending

	if len(pending) == 0 {
		// Everyone left; just release the lock (rare — sync is fine).
		c.unlockLeaf(cy.leaf, cy.lw)
		c.releaseCycle(cy)
		return
	}
	if !containsWriteOp(pending, cy.leader) {
		cy.leader = pending[0]
	}

	changed := map[int]bool{}
	newLW := cy.lw
	var done []*writeOp
	for pi, op := range pending {
		if i := cy.findSlot(lay, op.key); i >= 0 {
			e := cy.im.entry(i)
			e.value = op.val
			cy.im.setEntry(i, e)
			changed[i] = true
			done = append(done, op)
			continue
		}
		if op.kind == writeUpdate {
			op.notFound = true
			done = append(done, op)
			continue
		}
		// Fresh placement: hop planning over the fetched occupancy;
		// unfetched slots are occupied-and-immovable (window cycles only).
		home := lay.homeOf(op.key)
		moves, free, planErr := hopscotch.Plan(lay.span, lay.h, home,
			func(i int) bool {
				if !cy.fetched[i] {
					return true
				}
				return cy.im.entry(i).occupied
			},
			func(i int) int {
				if !cy.fetched[i] {
					return i
				}
				return lay.homeOf(cy.im.entry(i).key)
			},
		)
		if planErr != nil && !cy.full {
			// The conservative window could not prove a feasible hop.
			// Escalate to a whole-node fetch and re-apply with exact
			// occupancy; only singleton cycles use windows, so nothing has
			// been applied yet.
			drv := cy.leader
			c.postCycleWholeFetch(st, drv)
			if drv != stepped {
				st.wake = append(st.wake, drv)
			}
			return
		}
		if planErr != nil {
			c.splitCycle(st, cy, stepped, op, meta, newLW, done, pending[pi+1:])
			return
		}
		for _, i := range c.applyHops(cy.im, moves, free, home, op.key, op.val) {
			changed[i] = true
		}
		if !cy.full {
			newLW.vacancy = c.updateVacancy(cy.im, cy.fetched, newLW.vacancy, free)
			c.updateArgmaxOnInsert(&newLW, cy.im, cy.fetched, free, op.key)
		}
		done = append(done, op)
	}

	var ranges []byteRange
	if cy.full {
		// A node-granular write: derive the exact lock word from the image.
		newLW = recomputeLockWord(cy.im)
		ranges = mergedCellRanges(lay, changed)
	} else {
		idxs := make([]int, 0, len(changed))
		for i := range changed {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		ranges = c.changedRanges(idxs, lay.homeOf(pending[0].key))
	}
	h, err := c.postWriteRangesAndUnlock(cy.leaf, cy.im, ranges, newLW)
	if err != nil {
		c.unlockLeaf(cy.leaf, cy.lw)
		for _, op := range pending {
			leave(op, func(op *writeOp) { c.failWriteOp(op, err) })
		}
		c.releaseCycle(cy)
		return
	}
	cy.h = h
	cy.settled = done
	drv := cy.leader
	drv.state = wpWriteWait
	if drv != stepped {
		st.wake = append(st.wake, drv)
	}
}

// splitCycle handles a full leaf discovered mid-apply: the synchronous
// splitLeaf commits every mutation already applied to the image (both
// halves are rewritten from it, and it unlocks internally), so the
// already-applied ops complete; the splitting op and the not-yet-applied
// rest retraverse into the half-split leaves.
func (c *Client) splitCycle(st *wpSched, cy *writeCycle, stepped, splitter *writeOp, meta leafMeta, lw lockWord, done, rest []*writeOp) {
	err := c.splitLeaf(splitter.ref, cy.im, meta, lw, splitter.key)
	for _, op := range done {
		op.cy = nil
		if op.notFound {
			op.err = ErrNotFound
		}
		op.state = wpDone
		if op != stepped {
			st.wake = append(st.wake, op)
		}
	}
	splitter.cy = nil
	if err != nil {
		c.failWriteOp(splitter, err)
	} else {
		c.restartWriteOp(st, splitter)
	}
	if splitter != stepped {
		st.wake = append(st.wake, splitter)
	}
	for _, op := range rest {
		op.cy = nil
		c.restartWriteOp(st, op)
		if op != stepped {
			st.wake = append(st.wake, op)
		}
	}
	c.releaseCycle(cy)
}

// findSlot locates key in its fetched neighborhood, or -1.
func (cy *writeCycle) findSlot(lay *leafLayout, key uint64) int {
	home := lay.homeOf(key)
	for d := 0; d < lay.h; d++ {
		i := (home + d) % lay.span
		if !cy.fetched[i] {
			continue
		}
		if e := cy.im.entry(i); e.occupied && e.key == key {
			return i
		}
	}
	return -1
}

// mergedCellRanges converts a changed-slot set into write-back ranges,
// merging exactly-abutting cells. Unlike changedRanges it never spans
// untouched cells — node-granular cycles may dirty non-contiguous slots
// with unfetchable gaps between them.
func mergedCellRanges(lay *leafLayout, changed map[int]bool) []byteRange {
	if len(changed) == 0 {
		return nil
	}
	idxs := make([]int, 0, len(changed))
	for i := range changed {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	var out []byteRange
	for _, i := range idxs {
		cell := lay.entryCells[i]
		if n := len(out); n > 0 && out[n-1].End >= cell.Off {
			if cell.End() > out[n-1].End {
				out[n-1].End = cell.End()
			}
		} else {
			out = append(out, byteRange{Off: cell.Off, End: cell.End()})
		}
	}
	return out
}

func containsWriteOp(ops []*writeOp, op *writeOp) bool {
	for _, o := range ops {
		if o == op {
			return true
		}
	}
	return false
}

// rearriveWriteOp re-enters the leaf layer at a sibling (B-link chase).
func (c *Client) rearriveWriteOp(st *wpSched, op *writeOp, leaf dmsim.GAddr) {
	op.hops++
	if op.hops > maxRetries {
		c.failWriteOp(op, fmt.Errorf("core: write batch(%#x): sibling chain too long", op.key))
		return
	}
	op.ref = leafRef{addr: leaf}
	c.arriveWriteAtLeaf(st, op)
}

// restartWriteOp retraverses one key after an optimistic conflict; the
// rest of the batch is untouched.
func (c *Client) restartWriteOp(st *wpSched, op *writeOp) {
	op.restarts++
	c.obs.Retries.Inc()
	if op.restarts > maxRetries {
		c.failWriteOp(op, fmt.Errorf("core: write batch(%#x): retries exhausted", op.key))
		return
	}
	c.releaseWriteOpBuffers(op)
	c.rootAddr = dmsim.NilGAddr // a split root invalidates it
	c.yield()
	c.beginWriteOp(st, op)
}

func (c *Client) failWriteOp(op *writeOp, err error) {
	op.err = err
	c.releaseWriteOpBuffers(op)
	op.state = wpDone
}

// failCycle fails every op of the cycle; locked says whether the leaf
// lock is held (post errors after a won CAS) and must be released.
func (c *Client) failCycle(st *wpSched, stepped *writeOp, err error, locked bool) {
	cy := stepped.cy
	if locked {
		c.unlockLeaf(cy.leaf, cy.lw)
	}
	if cur, ok := st.cycles[cy.leaf.Pack()]; ok && cur == cy {
		delete(st.cycles, cy.leaf.Pack())
	}
	for _, op := range cy.ops {
		op.cy = nil
		c.failWriteOp(op, err)
		if op != stepped {
			st.wake = append(st.wake, op)
		}
	}
	c.releaseCycle(cy)
}

// releaseCycle drains any in-flight completions and recycles the image.
func (c *Client) releaseCycle(cy *writeCycle) {
	c.dc.Poll(cy.h)
	c.dc.Poll(cy.h2)
	cy.h, cy.h2 = nil, nil
	if cy.im != nil {
		c.ix.leaf.putImage(cy.im)
		cy.im = nil
	}
	cy.settled = nil
	cy.ops = nil
}

// releaseWriteOpBuffers drains the op's own in-flight completion and
// returns its pooled internal image (cycle resources are cycle-owned).
func (c *Client) releaseWriteOpBuffers(op *writeOp) {
	c.dc.Poll(op.h)
	op.h = nil
	if op.img != nil {
		c.ix.inner.putImage(op.img)
		op.img = nil
	}
}
