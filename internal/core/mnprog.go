package core

import (
	"encoding/binary"
	"runtime"
	"sort"

	"chime/internal/dmsim"
)

// MN-side offload program (dmsim offload verbs). The program is
// co-designed with the remote layout in this package: it reuses the same
// image codecs and validation machinery the one-sided client paths use,
// but runs them against the MN's local memory through a metered MNCtx —
// every byte it touches feeds the bounded MN CPU's service time
// (dmsim/mncpu.go), so offload is never free.
//
// MN cores only reach their own memory, so the program handles exactly
// the ops that stay on one MN and returns a fallback verdict for
// everything else (cross-MN children, indirect blocks placed on other
// MNs, contended locks, torn reads past a small local budget); the
// client then redoes the op with one-sided verbs, which reach
// everything. The retry budgets are deliberately tiny compared to the
// client's maxRetries: an MN-local retry costs no round trip, but under
// the event-loop scheduler the program executes inside the issuing
// client's lane slot, so spinning on a lock held by a same-lane peer
// cannot make progress — give up early and let the one-sided fallback
// path (which parks at the sync gate) absorb the contention.
const (
	// mnTornRetries bounds MN-local optimistic re-reads of a torn node.
	mnTornRetries = 64

	// mnLockRetries bounds MN-side leaf lock acquisition attempts.
	mnLockRetries = 64

	// mnChainHops bounds sibling chases and descent hops.
	mnChainHops = 128
)

// mnProgram implements dmsim.MNProgram for one CHIME tree. Stateless
// beyond the shared Index, so one value serves every MN and client.
type mnProgram struct {
	ix *Index
}

// mnStep is the internal control-flow verdict of the program's helpers:
// either a definitive/fallback dmsim status (done=true), or a request to
// restart from the root (done=false), mirroring errRestart.
type mnStep struct {
	st   dmsim.OffloadStatus
	done bool
}

var mnRestart = mnStep{}

func mnDone(st dmsim.OffloadStatus) mnStep { return mnStep{st: st, done: true} }

// readInternal fetches and validates an internal node through the
// metered view. The returned image must be recycled by the caller after
// the decoded node's last use (decode copies everything it keeps).
func (p *mnProgram) readInternal(ctx *dmsim.MNCtx, addr dmsim.GAddr) (*internalNode, mnStep) {
	lay := p.ix.inner
	img := lay.getImage()
	defer lay.putImage(img)
	for try := 0; try < mnTornRetries; try++ {
		if !ctx.Read(addr, img) {
			return nil, mnDone(dmsim.OffloadCrossMN)
		}
		if lay.checkInternalImage(img) != nil {
			runtime.Gosched()
			continue
		}
		return lay.decodeInternal(addr, img), mnStep{done: true, st: dmsim.OffloadOK}
	}
	return nil, mnDone(dmsim.OffloadRetry)
}

// descend walks from the super block to the leaf covering key, chasing
// B-link siblings across half-splits. It returns the leaf address, or a
// non-OK step (fallback or restart request).
func (p *mnProgram) descend(ctx *dmsim.MNCtx, key uint64) (dmsim.GAddr, mnStep) {
	var b [8]byte
	if !ctx.Read(p.ix.super, b[:]) {
		return dmsim.NilGAddr, mnDone(dmsim.OffloadCrossMN)
	}
	cur, level := unpackSuper(binary.LittleEndian.Uint64(b[:]))
	if level == 0 {
		return cur, mnDone(dmsim.OffloadOK)
	}
	for hop := 0; hop < mnChainHops; hop++ {
		n, step := p.readInternal(ctx, cur)
		if n == nil {
			return dmsim.NilGAddr, step
		}
		if !n.valid {
			return dmsim.NilGAddr, mnRestart
		}
		if !n.covers(key) {
			if !n.fenceInf && key >= n.fenceHi && !n.sibling.IsNil() {
				cur = n.sibling
				continue
			}
			return dmsim.NilGAddr, mnRestart
		}
		child, _, _ := n.childFor(key)
		if child.IsNil() {
			return dmsim.NilGAddr, mnRestart
		}
		if n.level == 1 {
			return child, mnDone(dmsim.OffloadOK)
		}
		cur = child
	}
	return dmsim.NilGAddr, mnDone(dmsim.OffloadRetry)
}

// readLeafWindow mirrors Client.fetchLeafWindow against local memory:
// entries [home, home+count) plus a metadata replica, version-validated.
// The caller owns the returned image.
func (p *mnProgram) readLeafWindow(ctx *dmsim.MNCtx, leaf dmsim.GAddr, home, count int) (*leafImage, []int, int, mnStep) {
	lay := p.ix.leaf
	im := lay.getImage()
	segs, idxs := lay.neighborhoodSegments(home, count, p.ix.opts.ReplicateMeta)
	for try := 0; try < mnTornRetries; try++ {
		for _, s := range segs {
			if !ctx.Read(leaf.Add(uint64(s.Off)), im.buf[s.Off:s.End]) {
				lay.putImage(im)
				return nil, nil, 0, mnDone(dmsim.OffloadCrossMN)
			}
		}
		ranges := segs
		metaG := lay.metaInRanges(ranges)
		if !p.ix.opts.ReplicateMeta || metaG < 0 {
			rc := lay.replicaCells[0]
			if !ctx.Read(leaf.Add(uint64(rc.Off)), im.buf[rc.Off:rc.End()]) {
				lay.putImage(im)
				return nil, nil, 0, mnDone(dmsim.OffloadCrossMN)
			}
			metaG = 0
			ranges = append(append([]byteRange{}, segs...), byteRange{Off: rc.Off, End: rc.End()})
		}
		if checkVersions(im.buf, 0, lay.coveredCells(ranges)) != nil {
			runtime.Gosched()
			continue
		}
		return im, idxs, metaG, mnDone(dmsim.OffloadOK)
	}
	lay.putImage(im)
	return nil, nil, 0, mnDone(dmsim.OffloadRetry)
}

// emitValue resolves a found entry's stored bytes into the response:
// the inline value, or the value read out of the indirect KV block.
func (p *mnProgram) emitValue(ctx *dmsim.MNCtx, key uint64, stored []byte) mnStep {
	if !p.ix.opts.Indirect {
		if !ctx.Emit(stored) {
			return mnDone(dmsim.OffloadRetry)
		}
		return mnDone(dmsim.OffloadOK)
	}
	ptr := dmsim.UnpackGAddr(binary.LittleEndian.Uint64(stored[:8]))
	if ptr.IsNil() {
		return mnRestart
	}
	block := make([]byte, 8+p.ix.opts.ValueSize)
	if !ctx.Read(ptr, block) {
		// The KV block lives on another MN (client allocators spread
		// chunks round-robin): one-sided verbs must finish the job.
		return mnDone(dmsim.OffloadCrossMN)
	}
	if binary.LittleEndian.Uint64(block[:8]) != key {
		return mnRestart
	}
	if !ctx.Emit(block[8:]) {
		return mnDone(dmsim.OffloadRetry)
	}
	return mnDone(dmsim.OffloadOK)
}

// Search implements the offloaded point lookup: descend + neighborhood
// probe + hop-bitmap validation, all MN-local, emitting the value.
func (p *mnProgram) Search(ctx *dmsim.MNCtx, key, arg uint64) dmsim.OffloadStatus {
	if p.ix.opts.VarKeys {
		return dmsim.OffloadUnsupported
	}
	lay := p.ix.leaf
	home := lay.homeOf(key)
	for attempt := 0; attempt < mnTornRetries; attempt++ {
		leaf, step := p.descend(ctx, key)
		if !step.done {
			runtime.Gosched()
			continue
		}
		if step.st != dmsim.OffloadOK {
			return step.st
		}
		st, restart := p.searchLeafChain(ctx, leaf, key, home)
		if restart {
			runtime.Gosched()
			continue
		}
		return st
	}
	return dmsim.OffloadRetry
}

// searchLeafChain probes one leaf (and its right siblings across
// half-splits) for key. restart=true requests a fresh descent.
func (p *mnProgram) searchLeafChain(ctx *dmsim.MNCtx, leaf dmsim.GAddr, key uint64, home int) (dmsim.OffloadStatus, bool) {
	lay := p.ix.leaf
	for hops := 0; hops < mnChainHops; hops++ {
		im, idxs, metaG, step := p.readLeafWindow(ctx, leaf, home, lay.h)
		if im == nil {
			return step.st, false
		}

		homeEntry := im.entry(home)
		if homeEntry.hopBM != im.reconstructHopBitmap(home) {
			lay.putImage(im)
			return 0, true // concurrent hop-range write: restart
		}

		foundIdx := -1
		var foundVal []byte
		for d := 0; d < lay.h; d++ {
			if homeEntry.hopBM&(1<<uint(d)) == 0 {
				continue
			}
			e := im.entry(idxs[d])
			if e.occupied && e.key == key {
				foundIdx = idxs[d]
				foundVal = e.value
				break
			}
		}
		meta := im.meta(metaG)
		lay.putImage(im)

		if !meta.valid {
			return 0, true
		}
		if foundIdx >= 0 {
			step := p.emitValue(ctx, key, foundVal)
			if !step.done {
				return 0, true
			}
			return step.st, false
		}
		// Half-split: the key may have moved right. The program has no
		// parent "next child pointer", so it uses the fenceHigh replica
		// directly (the same safety net the last-child reader uses).
		if !meta.fenceInf && key >= meta.fenceHi && !meta.sibling.IsNil() {
			leaf = meta.sibling
			continue
		}
		return dmsim.OffloadNotFound, false
	}
	return dmsim.OffloadRetry, false
}

// lockLeaf takes the leaf's remote lock word by MN-local CAS. Unlike the
// client's piggyback protocol (which swaps the whole word and carries
// the payload away), the program compares and swaps only the lock bit,
// leaving the vacancy/argmax payload in place — an in-place value update
// changes neither. The two protocols interoperate: both compare only the
// lock bit.
func (p *mnProgram) lockLeaf(ctx *dmsim.MNCtx, leaf dmsim.GAddr) mnStep {
	addr := leafLockAddr(leaf)
	for try := 0; try < mnLockRetries; try++ {
		_, swapped, ok := ctx.MaskedCAS(addr, 0, lockBit, lockBit, lockBit)
		if !ok {
			return mnDone(dmsim.OffloadCrossMN)
		}
		if swapped {
			return mnDone(dmsim.OffloadOK)
		}
		runtime.Gosched()
	}
	return mnDone(dmsim.OffloadRetry)
}

// unlockLeaf clears only the lock bit, preserving the payload.
func (p *mnProgram) unlockLeaf(ctx *dmsim.MNCtx, leaf dmsim.GAddr) {
	ctx.MaskedCAS(leafLockAddr(leaf), lockBit, 0, lockBit, lockBit)
}

// Update implements the offloaded read-compare-update: locate key in its
// neighborhood under the leaf lock and swap the entry's value in place.
// Inserts, indirect values (client-side allocation) and lease locks
// (client identity lives in the lease word) stay one-sided.
func (p *mnProgram) Update(ctx *dmsim.MNCtx, key, arg uint64, val []byte) dmsim.OffloadStatus {
	o := p.ix.opts
	if o.VarKeys || o.Indirect || o.LeaseLocks {
		return dmsim.OffloadUnsupported
	}
	lay := p.ix.leaf
	if len(val) != lay.valSize {
		return dmsim.OffloadUnsupported
	}
	home := lay.homeOf(key)
	for attempt := 0; attempt < mnTornRetries; attempt++ {
		leaf, step := p.descend(ctx, key)
		if !step.done {
			runtime.Gosched()
			continue
		}
		if step.st != dmsim.OffloadOK {
			return step.st
		}
		st, restart := p.updateInChain(ctx, leaf, key, val, home)
		if restart {
			runtime.Gosched()
			continue
		}
		return st
	}
	return dmsim.OffloadRetry
}

func (p *mnProgram) updateInChain(ctx *dmsim.MNCtx, leaf dmsim.GAddr, key uint64, val []byte, home int) (dmsim.OffloadStatus, bool) {
	lay := p.ix.leaf
	for hops := 0; hops < mnChainHops; hops++ {
		if step := p.lockLeaf(ctx, leaf); step.st != dmsim.OffloadOK {
			return step.st, false
		}
		im, idxs, metaG, step := p.readLeafWindow(ctx, leaf, home, lay.h)
		if im == nil {
			p.unlockLeaf(ctx, leaf)
			return step.st, false
		}
		meta := im.meta(metaG)
		if !meta.valid {
			p.unlockLeaf(ctx, leaf)
			lay.putImage(im)
			return 0, true
		}

		foundIdx := -1
		for _, i := range idxs {
			if e := im.entry(i); e.occupied && e.key == key {
				foundIdx = i
				break
			}
		}
		if foundIdx < 0 {
			if !meta.fenceInf && key >= meta.fenceHi && !meta.sibling.IsNil() {
				next := meta.sibling
				p.unlockLeaf(ctx, leaf)
				lay.putImage(im)
				leaf = next
				continue
			}
			p.unlockLeaf(ctx, leaf)
			lay.putImage(im)
			return dmsim.OffloadNotFound, false
		}

		e := im.entry(foundIdx)
		e.value = val
		im.setEntry(foundIdx, e) // bumps the entry-level version
		cellC := lay.entryCells[foundIdx]
		ok := ctx.Write(leaf.Add(uint64(cellC.Off)), im.buf[cellC.Off:cellC.End()])
		p.unlockLeaf(ctx, leaf)
		lay.putImage(im)
		if !ok {
			return dmsim.OffloadCrossMN, false
		}
		return dmsim.OffloadOK, false
	}
	return dmsim.OffloadRetry, false
}

// mnKV is one collected scan record.
type mnKV struct {
	key uint64
	val []byte
}

// readWholeLeaf mirrors readLeafForScan: a full node image with version
// validation plus hop-bitmap reconstruction for every home entry.
func (p *mnProgram) readWholeLeaf(ctx *dmsim.MNCtx, leaf dmsim.GAddr) (*leafImage, mnStep) {
	lay := p.ix.leaf
	im := lay.getImage()
	for i := range im.buf[:lineSize] {
		im.buf[i] = 0
	}
	for try := 0; try < mnTornRetries; try++ {
		if !ctx.Read(leaf.Add(lineSize), im.buf[lineSize:]) {
			lay.putImage(im)
			return nil, mnDone(dmsim.OffloadCrossMN)
		}
		if checkVersions(im.buf, 0, lay.allCells) != nil {
			runtime.Gosched()
			continue
		}
		consistent := true
		for home := 0; home < lay.span; home++ {
			if im.entry(home).hopBM != im.reconstructHopBitmap(home) {
				consistent = false
				break
			}
		}
		if !consistent {
			runtime.Gosched()
			continue
		}
		return im, mnDone(dmsim.OffloadOK)
	}
	lay.putImage(im)
	return nil, mnDone(dmsim.OffloadRetry)
}

// Scan implements the offloaded range collection: walk the leaf chain
// MN-side, sort each leaf's in-range entries, and emit [8B key][value]
// records until limit records are out or the chain ends. Any failure
// after the first emitted record is a fallback (emitted bytes cannot be
// retracted), so restarts are only honored on the first leaf.
func (p *mnProgram) Scan(ctx *dmsim.MNCtx, start, arg uint64, limit int) dmsim.OffloadStatus {
	if p.ix.opts.VarKeys {
		return dmsim.OffloadUnsupported
	}
	if limit <= 0 {
		return dmsim.OffloadOK
	}
	lay := p.ix.leaf
	for attempt := 0; attempt < mnTornRetries; attempt++ {
		leaf, step := p.descend(ctx, start)
		if !step.done {
			runtime.Gosched()
			continue
		}
		if step.st != dmsim.OffloadOK {
			return step.st
		}
		emitted := 0
		var rec []byte
		restart := false
		for hops := 0; hops < mnChainHops; hops++ {
			im, step := p.readWholeLeaf(ctx, leaf)
			if im == nil {
				if emitted == 0 && step.st == dmsim.OffloadRetry {
					restart = true
					break
				}
				return step.st
			}
			meta := im.meta(0)
			if !meta.valid {
				lay.putImage(im)
				if emitted == 0 {
					restart = true
					break
				}
				return dmsim.OffloadRetry
			}
			var batch []mnKV
			for i := 0; i < lay.span; i++ {
				e := im.entry(i)
				if e.occupied && e.key >= start {
					batch = append(batch, mnKV{key: e.key, val: append([]byte(nil), e.value...)})
				}
			}
			lay.putImage(im)
			sort.Slice(batch, func(i, j int) bool { return batch[i].key < batch[j].key })
			for _, kv := range batch {
				val := kv.val
				if p.ix.opts.Indirect {
					ptr := dmsim.UnpackGAddr(binary.LittleEndian.Uint64(val[:8]))
					if ptr.IsNil() {
						if emitted == 0 {
							restart = true
							break
						}
						return dmsim.OffloadRetry
					}
					block := make([]byte, 8+p.ix.opts.ValueSize)
					if !ctx.Read(ptr, block) {
						return dmsim.OffloadCrossMN
					}
					if binary.LittleEndian.Uint64(block[:8]) != kv.key {
						if emitted == 0 {
							restart = true
							break
						}
						return dmsim.OffloadRetry
					}
					val = block[8:]
				}
				if cap(rec) < 8+len(val) {
					rec = make([]byte, 8+len(val))
				}
				rec = rec[:8+len(val)]
				binary.LittleEndian.PutUint64(rec[:8], kv.key)
				copy(rec[8:], val)
				if !ctx.Emit(rec) {
					return dmsim.OffloadOK // response buffer full: done
				}
				emitted++
				if emitted >= limit {
					return dmsim.OffloadOK
				}
			}
			if restart {
				break
			}
			if meta.sibling.IsNil() {
				return dmsim.OffloadOK
			}
			leaf = meta.sibling
		}
		if restart {
			runtime.Gosched()
			continue
		}
		if emitted > 0 {
			return dmsim.OffloadRetry // chain budget exhausted mid-scan
		}
	}
	return dmsim.OffloadRetry
}
