package core

import (
	"sync"

	"chime/internal/dmsim"
)

// hotspotBuffer implements the hotness-aware speculative read support of
// §4.3: a small per-CN cache mapping (leaf address, entry index) to a
// key fingerprint and an access counter. Before a neighborhood read, a
// client consults the buffer for hotspots inside the target neighborhood
// whose fingerprint matches the key; on a hit it speculatively READs the
// single hottest entry instead of the whole neighborhood.
//
// Each buffer entry costs hotspotEntryBytes (leaf address 8B + key index
// 2B + fingerprint 2B + counter 4B, per Figure 11); eviction is least
// frequently used.
const hotspotEntryBytes = 16

type hotspotKey struct {
	leaf dmsim.GAddr
	idx  uint16
}

type hotspotVal struct {
	fp      uint16
	counter uint32
}

type hotspotBuffer struct {
	mu  sync.Mutex
	cap int // max entries; 0 disables the buffer
	m   map[hotspotKey]*hotspotVal

	lookups, hits         int64
	speculations, correct int64
}

// fingerprint derives the 2-byte key fingerprint stored in the buffer.
func fingerprint(key uint64) uint16 {
	x := key * 0x9E3779B97F4A7C15
	return uint16(x >> 48)
}

func newHotspotBuffer(budgetBytes int64) *hotspotBuffer {
	return &hotspotBuffer{
		cap: int(budgetBytes / hotspotEntryBytes),
		m:   make(map[hotspotKey]*hotspotVal),
	}
}

// record updates the buffer after a remote KV entry access: bump an
// existing hotspot (or refresh it when the fingerprint is stale), insert
// a new one, evicting the LFU victim when full (§4.3).
func (h *hotspotBuffer) record(leaf dmsim.GAddr, idx int, key uint64) {
	if h.cap == 0 {
		return
	}
	fp := fingerprint(key)
	k := hotspotKey{leaf: leaf, idx: uint16(idx)}
	h.mu.Lock()
	defer h.mu.Unlock()
	if v, ok := h.m[k]; ok {
		if v.fp != fp {
			v.fp = fp
			v.counter = 1
		} else {
			v.counter++
		}
		return
	}
	if len(h.m) >= h.cap {
		// Evict the least frequently used entry. Counter ties break on
		// (leaf, idx) order so the victim is a pure function of the
		// buffer's contents, not of Go's randomized map iteration —
		// eviction under pressure must not perturb same-seed replays.
		var victim hotspotKey
		min := uint32(1<<32 - 1)
		first := true
		for kk, vv := range h.m {
			if first || vv.counter < min ||
				(vv.counter == min && (kk.leaf.Pack() < victim.leaf.Pack() ||
					(kk.leaf == victim.leaf && kk.idx < victim.idx))) {
				first = false
				min = vv.counter
				victim = kk
			}
		}
		delete(h.m, victim)
	}
	h.m[k] = &hotspotVal{fp: fp, counter: 1}
}

// lookup returns the hottest recorded entry index within the
// neighborhood [home, home+hn) (circular over span) whose fingerprint
// matches key, or -1.
func (h *hotspotBuffer) lookup(leaf dmsim.GAddr, key uint64, home, hn, span int) int {
	if h.cap == 0 {
		return -1
	}
	fp := fingerprint(key)
	best, bestCount := -1, uint32(0)
	h.mu.Lock()
	h.lookups++
	for d := 0; d < hn; d++ {
		idx := (home + d) % span
		if v, ok := h.m[hotspotKey{leaf: leaf, idx: uint16(idx)}]; ok {
			if v.fp == fp && v.counter > bestCount {
				best, bestCount = idx, v.counter
			}
		}
	}
	if best >= 0 {
		h.hits++
	}
	h.mu.Unlock()
	return best
}

// noteSpeculation records a speculative read's outcome for stats.
func (h *hotspotBuffer) noteSpeculation(correct bool) {
	h.mu.Lock()
	h.speculations++
	if correct {
		h.correct++
	}
	h.mu.Unlock()
}

// drop removes a stale hotspot after an incorrect speculation.
func (h *hotspotBuffer) drop(leaf dmsim.GAddr, idx int) {
	h.mu.Lock()
	delete(h.m, hotspotKey{leaf: leaf, idx: uint16(idx)})
	h.mu.Unlock()
}

// HotspotStats is a snapshot of buffer behaviour.
type HotspotStats struct {
	Lookups, Hits         int64
	Speculations, Correct int64
	Entries, Cap          int
}

func (h *hotspotBuffer) stats() HotspotStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HotspotStats{
		Lookups: h.lookups, Hits: h.hits,
		Speculations: h.speculations, Correct: h.correct,
		Entries: len(h.m), Cap: h.cap,
	}
}
