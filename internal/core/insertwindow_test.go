package core

import (
	"testing"
)

// Unit tests for the insert window machinery: the vacancy-bitmap-driven
// probe count and the conservative vacancy updates (§4.2.1).

func TestProbeCountExactBitmap(t *testing.T) {
	// Span 8 -> one vacancy bit per entry (perBit = 1).
	o := DefaultOptions()
	o.SpanSize = 8
	o.Neighborhood = 4
	_, cl := newTestTree(t, o)

	// All empty: the first group from home has a vacancy.
	if got := cl.probeCount(0, 0); got < 1 || got > cl.ix.leaf.span {
		t.Fatalf("probeCount(empty) = %d", got)
	}
	// Entries 0..4 full (bits 0-4 set), home 0: probe must reach entry 5.
	vac := uint64(0b11111)
	if got := cl.probeCount(0, vac); got != 6 {
		t.Fatalf("probeCount = %d, want 6 (cover first free entry 5)", got)
	}
	// Everything full: whole-node signal.
	if got := cl.probeCount(0, 0xFF); got != cl.ix.leaf.span {
		t.Fatalf("probeCount(full) = %d, want span", got)
	}
	// Wrap-around: home 6 with entries 6,7 full, 0 free.
	vac = uint64(0b11000000)
	if got := cl.probeCount(6, vac); got != 3 {
		t.Fatalf("wrap probeCount = %d, want 3 (entries 6,7,0)", got)
	}
}

func TestProbeCountGroupedBitmap(t *testing.T) {
	// Span 128 -> 43 groups of 3 entries: a zero bit means "some entry
	// in this 3-entry group may be free", and the home group extends
	// coverage to the next group.
	o := DefaultOptions()
	o.SpanSize = 128
	o.Neighborhood = 8
	_, cl := newTestTree(t, o)
	lay := cl.ix.leaf
	if lay.vacPerBit < 2 {
		t.Fatalf("test expects grouped bitmap, perBit=%d", lay.vacPerBit)
	}
	// All bits zero, home mid-group: window must cover at least the
	// home group and the following group.
	got := cl.probeCount(1, 0)
	if got < lay.vacPerBit {
		t.Fatalf("grouped probeCount = %d, too small", got)
	}
	// All full: whole node.
	full := (uint64(1) << uint(lay.vacGroups)) - 1
	if got := cl.probeCount(0, full); got != lay.span {
		t.Fatalf("grouped full probeCount = %d, want span", got)
	}
}

func TestUpdateVacancySetsOnlyProvablyFullGroups(t *testing.T) {
	o := DefaultOptions()
	o.SpanSize = 8
	o.Neighborhood = 4
	_, cl := newTestTree(t, o)
	lay := cl.ix.leaf
	im := newLeafImage(lay)
	fetched := make([]bool, lay.span)

	// Fill entries 0 and 1, fetch only those: group of slot 0 (size 1
	// at span 8) is provably full.
	for i := 0; i < 2; i++ {
		e := im.entry(i)
		e.occupied = true
		im.setEntryNoBump(i, e)
		fetched[i] = true
	}
	vac := cl.updateVacancy(im, fetched, 0, 0)
	if vac&1 == 0 {
		t.Fatal("slot 0's group must be marked full")
	}
	// An unfetched group must stay conservative even if claimed full.
	vac = cl.updateVacancy(im, fetched, 1<<5, 5)
	if vac&(1<<5) != 0 {
		t.Fatal("unfetched group must be cleared to 'may have vacancy'")
	}
}

func TestArgmaxMaintenance(t *testing.T) {
	o := DefaultOptions()
	o.SpanSize = 8
	o.Neighborhood = 4
	_, cl := newTestTree(t, o)
	lay := cl.ix.leaf
	im := newLeafImage(lay)
	fetched := make([]bool, lay.span)
	for i := range fetched {
		fetched[i] = true
	}
	e := im.entry(2)
	e.occupied, e.key = true, 500
	im.setEntryNoBump(2, e)

	lw := lockWord{argmax: 2, argmaxValid: true}
	// A larger key moves the argmax.
	cl.updateArgmaxOnInsert(&lw, im, fetched, 5, 900)
	if !lw.argmaxValid || lw.argmax != 5 {
		t.Fatalf("argmax after larger insert: %+v", lw)
	}
	// A smaller key leaves it.
	lw = lockWord{argmax: 2, argmaxValid: true}
	cl.updateArgmaxOnInsert(&lw, im, fetched, 6, 100)
	if !lw.argmaxValid || lw.argmax != 2 {
		t.Fatalf("argmax after smaller insert: %+v", lw)
	}
	// Unfetched argmax entry invalidates the field.
	lw = lockWord{argmax: 7, argmaxValid: true}
	fetched[7] = false
	cl.updateArgmaxOnInsert(&lw, im, fetched, 1, 50)
	if lw.argmaxValid {
		t.Fatal("unfetched argmax must invalidate")
	}
	// Invalid stays invalid (recomputed at the next node write).
	lw = lockWord{}
	cl.updateArgmaxOnInsert(&lw, im, fetched, 1, 50)
	if lw.argmaxValid {
		t.Fatal("invalid argmax must stay invalid on insert")
	}
}

func TestRecomputeLockWord(t *testing.T) {
	o := DefaultOptions()
	o.SpanSize = 8
	o.Neighborhood = 4
	lay := newLeafLayout(o)
	im := newLeafImage(lay)
	// Keys at slots 1 (key 10), 4 (key 99), 5 (key 50).
	for _, p := range []struct {
		slot int
		key  uint64
	}{{1, 10}, {4, 99}, {5, 50}} {
		e := im.entry(p.slot)
		e.occupied, e.key = true, p.key
		im.setEntryNoBump(p.slot, e)
	}
	lw := recomputeLockWord(im)
	if !lw.argmaxValid || lw.argmax != 4 {
		t.Fatalf("argmax = %+v, want slot 4", lw)
	}
	// With perBit 1 at span 8, only fully occupied groups set bits;
	// here every group has one entry, so groups 1, 4, 5 are full.
	want := uint64(1<<1 | 1<<4 | 1<<5)
	if lw.vacancy != want {
		t.Fatalf("vacancy = %b, want %b", lw.vacancy, want)
	}
}
