package core

import (
	"fmt"
	"sort"

	"chime/internal/dmsim"
	"chime/internal/hopscotch"
)

// This file implements node splits and Sherman-style up-propagation
// (§4.2.2, §4.4): a leaf that cannot absorb an insert moves its upper
// half to a newly allocated right sibling; the split key then propagates
// into the parent chain, splitting internal nodes (and eventually the
// root) as needed. The new node is always written before the old one, so
// it only becomes reachable once the old node's sibling pointer commits.

type kvPair struct {
	key uint64
	val []byte
}

// splitLeaf splits a locked, fully fetched leaf. It allocates and writes
// the new right node, rewrites the old node (moved entries cleared,
// sibling pointer and fences updated) and releases the lock with the
// same WRITE. The pending insert key is NOT placed; the caller
// retraverses and retries, which is guaranteed to land in a half-empty
// node.
func (c *Client) splitLeaf(ref leafRef, im *leafImage, meta leafMeta, lw lockWord, pendingKey uint64) error {
	c.obs.Splits.Inc()
	lay := c.ix.leaf

	// Collect all resident KV pairs.
	var kvs []kvPair
	for i := 0; i < lay.span; i++ {
		if e := im.entry(i); e.occupied {
			kvs = append(kvs, kvPair{key: e.key, val: append([]byte(nil), e.value...)})
		}
	}
	if len(kvs) < 2 {
		// A split cannot help a node this empty: the insert failed from
		// pathological collisions, not from capacity.
		c.unlockLeaf(ref.addr, lw)
		return fmt.Errorf("core: leaf %v: hopscotch neighborhood saturated with %d keys (key %#x)",
			ref.addr, len(kvs), pendingKey)
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].key < kvs[j].key })

	// Try the median first, then move fewer keys if the right node's
	// hopscotch build fails (vanishingly rare at half load).
	var rightIm *leafImage
	var splitKey uint64
	var splitAt int
	for splitAt = len(kvs) / 2; splitAt < len(kvs); splitAt++ {
		splitKey = kvs[splitAt].key
		var ok bool
		rightIm, ok = buildLeafImage(lay, kvs[splitAt:])
		if ok {
			break
		}
	}
	if rightIm == nil {
		c.unlockLeaf(ref.addr, lw)
		return fmt.Errorf("core: leaf %v: could not rebuild right node", ref.addr)
	}
	defer lay.putImage(rightIm)

	rightAddr, err := c.alloc.Alloc(lay.size)
	if err != nil {
		c.unlockLeaf(ref.addr, lw)
		return err
	}
	rightIm.setAllMeta(leafMeta{
		valid:    true,
		sibling:  meta.sibling,
		fenceInf: meta.fenceInf,
		fenceHi:  meta.fenceHi,
	})
	copy(rightIm.buf[:8], encodeLockBytes(recomputeLockWord(rightIm)))
	if err := c.dc.Write(rightAddr, rightIm.buf); err != nil {
		c.unlockLeaf(ref.addr, lw)
		return err
	}

	// Rewrite the old node: clear moved entries and their home-bitmap
	// bits; this is a node write, so bump NV across the node.
	moved := map[uint64]bool{}
	for _, kv := range kvs[splitAt:] {
		moved[kv.key] = true
	}
	for i := 0; i < lay.span; i++ {
		e := im.entry(i)
		if !e.occupied || !moved[e.key] {
			continue
		}
		home := lay.homeOf(e.key)
		hEntry := im.entry(home)
		d := ((i-home)%lay.span + lay.span) % lay.span
		hEntry.hopBM &^= 1 << uint(d)
		im.setEntryNoBump(home, hEntry)
		e = im.entry(i)
		e.occupied = false
		im.setEntryNoBump(i, e)
	}
	im.setAllMeta(leafMeta{
		valid:    true,
		sibling:  rightAddr,
		fenceInf: false,
		fenceHi:  splitKey,
	})
	im.bumpAllNV()

	newLW := recomputeLockWord(im)
	if err := c.dc.Write(ref.addr.Add(lineSize), im.buf[lineSize:]); err != nil {
		c.unlockLeaf(ref.addr, lw)
		return err
	}
	if err := c.unlockLeaf(ref.addr, newLW); err != nil {
		return err
	}

	return c.propagateSplit(ref.path, 0, splitKey, rightAddr)
}

// buildLeafImage constructs a fresh leaf image holding the given pairs
// via local hopscotch insertion. It reports ok=false when some key
// cannot be placed (caller adjusts the split point).
func buildLeafImage(lay *leafLayout, kvs []kvPair) (*leafImage, bool) {
	im := lay.getImageZeroed()
	occupied := make([]bool, lay.span)
	homes := make([]int, lay.span)
	for _, kv := range kvs {
		home := lay.homeOf(kv.key)
		moves, free, err := hopscotch.Plan(lay.span, lay.h, home,
			func(i int) bool { return occupied[i] },
			func(i int) int { return homes[i] })
		if err != nil {
			lay.putImage(im)
			return nil, false
		}
		for _, m := range moves {
			e := im.entry(m.From)
			kHome := lay.homeOf(e.key)
			tgt := im.entry(m.To)
			tgt.occupied, tgt.key, tgt.value = true, e.key, e.value
			im.setEntryNoBump(m.To, tgt)
			src := im.entry(m.From)
			src.occupied = false
			im.setEntryNoBump(m.From, src)
			hE := im.entry(kHome)
			dOld := ((m.From-kHome)%lay.span + lay.span) % lay.span
			dNew := ((m.To-kHome)%lay.span + lay.span) % lay.span
			hE.hopBM &^= 1 << uint(dOld)
			hE.hopBM |= 1 << uint(dNew)
			im.setEntryNoBump(kHome, hE)
			occupied[m.To], occupied[m.From] = true, false
			homes[m.To] = homes[m.From]
		}
		e := im.entry(free)
		e.occupied, e.key = true, kv.key
		e.value = kv.val
		im.setEntryNoBump(free, e)
		hE := im.entry(home)
		d := ((free-home)%lay.span + lay.span) % lay.span
		hE.hopBM |= 1 << uint(d)
		im.setEntryNoBump(home, hE)
		occupied[free] = true
		homes[free] = home
	}
	return im, true
}

// recomputeLockWord derives the exact vacancy bitmap and argmax from a
// complete image (used at node writes, where full information exists).
func recomputeLockWord(im *leafImage) lockWord {
	lay := im.lay
	lw := lockWord{}
	var maxKey uint64
	for g := 0; g < lay.vacGroups; g++ {
		lo, hi := groupRange(g, lay.vacPerBit, lay.span)
		fullG := true
		for i := lo; i < hi; i++ {
			e := im.entry(i)
			if !e.occupied {
				fullG = false
			} else if !lw.argmaxValid || e.key > maxKey {
				maxKey = e.key
				lw.argmax = i
				lw.argmaxValid = true
			}
		}
		if fullG {
			lw.vacancy |= 1 << uint(g)
		}
	}
	return lw
}

// propagateSplit inserts (splitKey, rightAddr) into the parent level
// after a split of a node at childLevel, following the paper's Step 1–3.
func (c *Client) propagateSplit(path []pathEntry, childLevel uint8, splitKey uint64, rightAddr dmsim.GAddr) error {
	// Find the recorded parent at childLevel+1 (path runs root→level 1).
	parentLevel := childLevel + 1
	var parentAddr dmsim.GAddr
	for _, pe := range path {
		if pe.level == parentLevel {
			parentAddr = pe.addr
			break
		}
	}
	for attempt := 0; attempt < maxRetries; attempt++ {
		if parentAddr.IsNil() {
			// Either the split node was the root, or the tree grew while
			// we worked. Re-check the root.
			if err := c.refreshRoot(); err != nil {
				return err
			}
			if c.rootLevel == childLevel {
				// Step 3: allocate a new root.
				done, err := c.growRoot(childLevel, splitKey, rightAddr)
				if err != nil {
					return err
				}
				if done {
					return nil
				}
				continue // lost the root race; find the new parent
			}
			addr, err := c.findParentAt(parentLevel, splitKey)
			if err != nil {
				return err
			}
			parentAddr = addr
		}

		done, retryAddr, err := c.insertIntoParent(parentAddr, parentLevel, splitKey, rightAddr, path)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		parentAddr = retryAddr // nil forces a re-find
		c.yield()
	}
	return fmt.Errorf("core: propagateSplit(%#x): retries exhausted", splitKey)
}

// growRoot performs Step 3: allocate a new root pointing at the old root
// and the new right node, then CAS the super block. Reports done=false
// when another client won the race.
func (c *Client) growRoot(oldLevel uint8, splitKey uint64, rightAddr dmsim.GAddr) (bool, error) {
	oldRoot, curLevel := c.rootAddr, c.rootLevel
	if curLevel != oldLevel {
		return false, nil
	}
	newRoot, err := c.dc.AllocRPC(0, c.ix.inner.size) // roots live on MN 0
	if err != nil {
		return false, err
	}
	n := &internalNode{
		addr:     newRoot,
		level:    oldLevel + 1,
		valid:    true,
		fenceInf: true,
		leftmost: oldRoot,
		entries:  []pivotEntry{{pivot: splitKey, child: rightAddr}},
	}
	if err := c.dc.Write(newRoot, c.ix.inner.encodeInternal(n, nil)); err != nil {
		return false, err
	}
	prev, ok, err := c.dc.CAS(c.ix.super, packSuper(oldRoot, oldLevel), packSuper(newRoot, oldLevel+1))
	if err != nil {
		return false, err
	}
	if !ok {
		c.rootAddr, c.rootLevel = unpackSuper(prev)
		return false, nil
	}
	c.rootAddr, c.rootLevel = newRoot, oldLevel+1
	return true, nil
}

// lockNode acquires an internal node's plain lock bit. In lease mode
// the CAS installs our lease and a lock stuck under an expired lease is
// stolen; no repair read is needed — every caller re-reads the node
// under the lock before touching it.
func (c *Client) lockNode(addr dmsim.GAddr) error {
	lease := c.ix.opts.LeaseLocks
	for try := 0; try < maxRetries; try++ {
		var prev uint64
		var ok bool
		var err error
		if lease {
			prev, ok, err = c.dc.MaskedCAS(addr, 0, c.lockSwapWord(), lockBit, ^uint64(0))
		} else {
			prev, ok, err = c.dc.MaskedCAS(addr, 0, lockBit, lockBit, lockBit)
		}
		if err != nil {
			return err
		}
		if ok {
			c.resetBackoff()
			return nil
		}
		if lease {
			stolen, err := c.tryStealLock(addr, prev)
			if err != nil {
				return err
			}
			if stolen {
				c.resetBackoff()
				return nil
			}
		}
		c.yield()
	}
	return fmt.Errorf("core: internal node %v: lock starved", addr)
}

func (c *Client) unlockNode(addr dmsim.GAddr) error {
	return c.dc.Write(addr, encodeLockBytes(lockWord{}))
}

// insertIntoParent is Step 2: lock the candidate parent, validate that
// it still covers the split key (chasing B-link siblings otherwise),
// insert the routing entry, and split the parent when full. Returns
// done=false with a new candidate address (or nil to re-find) when the
// parent moved.
func (c *Client) insertIntoParent(addr dmsim.GAddr, level uint8, splitKey uint64, rightAddr dmsim.GAddr, path []pathEntry) (bool, dmsim.GAddr, error) {
	for hops := 0; hops <= maxRetries; hops++ {
		if err := c.lockNode(addr); err != nil {
			return false, dmsim.NilGAddr, err
		}
		n, img, err := c.readInternal(addr)
		if err != nil {
			c.unlockNode(addr)
			return false, dmsim.NilGAddr, err
		}
		if !n.valid || n.level != level {
			c.unlockNode(addr)
			return false, dmsim.NilGAddr, nil // stale: re-find the parent
		}
		if !n.covers(splitKey) {
			sib := n.sibling
			c.unlockNode(addr)
			if !n.fenceInf && splitKey >= n.fenceHi && !sib.IsNil() {
				addr = sib
				continue
			}
			return false, dmsim.NilGAddr, nil
		}

		if n.insertEntry(c.ix.inner.span, pivotEntry{pivot: splitKey, child: rightAddr}) {
			img = c.ix.inner.encodeInternal(n, img)
			if err := c.writeInternalAndUnlock(addr, img); err != nil {
				return false, dmsim.NilGAddr, err
			}
			c.cn.cache.put(addr, n, int64(c.ix.inner.size))
			return true, dmsim.NilGAddr, nil
		}

		// Parent full: split it, then recurse upward.
		if err := c.splitInternal(n, img, splitKey, rightAddr, path); err != nil {
			return false, dmsim.NilGAddr, err
		}
		return true, dmsim.NilGAddr, nil
	}
	return false, dmsim.NilGAddr, fmt.Errorf("core: insertIntoParent(%#x): sibling chain too long", splitKey)
}

// writeInternalAndUnlock writes a full internal image and clears the
// lock word in one doorbell batch.
func (c *Client) writeInternalAndUnlock(addr dmsim.GAddr, img []byte) error {
	return c.dc.WriteBatch(
		[]dmsim.GAddr{addr.Add(lineSize), addr},
		[][]byte{img[lineSize:], encodeLockBytes(lockWord{})},
	)
}

// splitInternal splits a locked internal node n that is full, first
// logically adding (splitKey→rightAddr). The median pivot moves up.
func (c *Client) splitInternal(n *internalNode, prevImg []byte, splitKey uint64, rightAddr dmsim.GAddr, path []pathEntry) error {
	c.obs.Splits.Inc()
	// Insert into the (local) decoded node beyond capacity, then split.
	i := sort.Search(len(n.entries), func(i int) bool { return n.entries[i].pivot >= splitKey })
	n.entries = append(n.entries, pivotEntry{})
	copy(n.entries[i+1:], n.entries[i:])
	n.entries[i] = pivotEntry{pivot: splitKey, child: rightAddr}

	mid := len(n.entries) / 2
	midKey := n.entries[mid].pivot

	newAddr, err := c.alloc.Alloc(c.ix.inner.size)
	if err != nil {
		c.unlockNode(n.addr)
		return err
	}
	right := &internalNode{
		addr:     newAddr,
		level:    n.level,
		valid:    true,
		fenceLow: midKey,
		fenceInf: n.fenceInf,
		fenceHi:  n.fenceHi,
		sibling:  n.sibling,
		leftmost: n.entries[mid].child,
		entries:  append([]pivotEntry(nil), n.entries[mid+1:]...),
	}
	if err := c.dc.Write(newAddr, c.ix.inner.encodeInternal(right, nil)); err != nil {
		c.unlockNode(n.addr)
		return err
	}

	n.entries = n.entries[:mid]
	n.fenceInf = false
	n.fenceHi = midKey
	n.sibling = newAddr
	img := c.ix.inner.encodeInternal(n, prevImg)
	if err := c.writeInternalAndUnlock(n.addr, img); err != nil {
		return err
	}
	c.cn.cache.put(n.addr, n, int64(c.ix.inner.size))

	return c.propagateSplit(path, n.level, midKey, newAddr)
}

// findParentAt traverses from the root (remote reads, no cache — the
// cache may be what went stale) to the node at the given level covering
// key.
func (c *Client) findParentAt(level uint8, key uint64) (dmsim.GAddr, error) {
	for attempt := 0; attempt < maxRetries; attempt++ {
		if err := c.refreshRoot(); err != nil {
			return dmsim.NilGAddr, err
		}
		if c.rootLevel < level {
			c.yield()
			continue
		}
		cur := c.rootAddr
		ok := true
		for ok {
			n, _, err := c.readInternal(cur)
			if err != nil {
				return dmsim.NilGAddr, err
			}
			if !n.valid {
				ok = false
				break
			}
			if !n.covers(key) {
				if !n.fenceInf && key >= n.fenceHi && !n.sibling.IsNil() {
					cur = n.sibling
					continue
				}
				ok = false
				break
			}
			if n.level == level {
				return cur, nil
			}
			if n.level < level {
				ok = false
				break
			}
			child, _, _ := n.childFor(key)
			if child.IsNil() {
				ok = false
				break
			}
			cur = child
		}
		c.yield()
	}
	return dmsim.NilGAddr, fmt.Errorf("core: findParentAt(level %d, %#x): retries exhausted", level, key)
}
