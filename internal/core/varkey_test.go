package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"chime/internal/dmsim"
)

func newVarTree(t *testing.T) (*Index, *Client) {
	t.Helper()
	opts := DefaultOptions()
	opts.VarKeys = true
	return newTestTree(t, opts)
}

func TestVarKeysOptionValidation(t *testing.T) {
	o := DefaultOptions()
	o.VarKeys = true
	o.Indirect = true
	if err := o.Validate(); err == nil {
		t.Fatal("VarKeys+Indirect must be rejected")
	}
}

func TestFingerprintOrder(t *testing.T) {
	// Fingerprints must preserve bytewise prefix order.
	keys := [][]byte{
		[]byte("a"), []byte("aa"), []byte("ab"), []byte("b"),
		[]byte("hello"), []byte("hello-world"), []byte("hellp"),
	}
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i-1], keys[i]) >= 0 {
			t.Fatal("test keys must be sorted")
		}
		if FingerprintOf(keys[i-1]) > FingerprintOf(keys[i]) {
			t.Fatalf("fingerprint order violated between %q and %q", keys[i-1], keys[i])
		}
	}
}

func TestVarKVRoundTrip(t *testing.T) {
	_, cl := newVarTree(t)
	pairs := map[string]string{
		"user:1001":             "alice",
		"user:1002":             "bob with a much longer profile value " + string(bytes.Repeat([]byte("x"), 300)),
		"a":                     "single-byte key",
		"order:2026-07-04:0001": "shipped",
	}
	for k, v := range pairs {
		if err := cl.InsertKV([]byte(k), []byte(v)); err != nil {
			t.Fatalf("insert %q: %v", k, err)
		}
	}
	for k, v := range pairs {
		got, err := cl.SearchKV([]byte(k))
		if err != nil {
			t.Fatalf("search %q: %v", k, err)
		}
		if string(got) != v {
			t.Fatalf("search %q = %q, want %q", k, got, v)
		}
	}
	if _, err := cl.SearchKV([]byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
}

func TestVarKVRejectsOnFixedTree(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	if err := cl.InsertKV([]byte("k"), []byte("v")); err == nil {
		t.Fatal("KV API on a fixed-key tree must error")
	}
}

func TestVarKVValidation(t *testing.T) {
	_, cl := newVarTree(t)
	if err := cl.InsertKV(nil, []byte("v")); err == nil {
		t.Fatal("empty key must be rejected")
	}
	if _, err := cl.SearchKV(nil); err == nil {
		t.Fatal("empty key search must be rejected")
	}
}

// TestVarKVFingerprintCollisions is the §4.5 collision case: keys
// sharing their first 8 bytes land in one chain and must all remain
// individually addressable.
func TestVarKVFingerprintCollisions(t *testing.T) {
	_, cl := newVarTree(t)
	keys := []string{
		"collide-suffix-A",
		"collide-suffix-B",
		"collide-suffix-CCCCCC",
		"collide-", // exactly the 8-byte prefix
	}
	fp := FingerprintOf([]byte(keys[0]))
	for _, k := range keys {
		if FingerprintOf([]byte(k)) != fp {
			t.Fatalf("test setup: %q does not collide", k)
		}
	}
	for i, k := range keys {
		if err := cl.InsertKV([]byte(k), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("insert %q: %v", k, err)
		}
	}
	for i, k := range keys {
		got, err := cl.SearchKV([]byte(k))
		if err != nil || string(got) != fmt.Sprintf("v%d", i) {
			t.Fatalf("collided key %q: %q %v", k, got, err)
		}
	}
	// Update one collided key; others must survive.
	if err := cl.InsertKV([]byte(keys[1]), []byte("updated")); err != nil {
		t.Fatal(err)
	}
	got, _ := cl.SearchKV([]byte(keys[1]))
	if string(got) != "updated" {
		t.Fatalf("collided update lost: %q", got)
	}
	for i, k := range keys {
		if i == 1 {
			continue
		}
		if got, err := cl.SearchKV([]byte(k)); err != nil || string(got) != fmt.Sprintf("v%d", i) {
			t.Fatalf("neighbor %q corrupted: %q %v", k, got, err)
		}
	}
	// Delete from the middle of the chain.
	if err := cl.DeleteKV([]byte(keys[2])); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.SearchKV([]byte(keys[2])); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted collided key still present: %v", err)
	}
	for i, k := range keys {
		if i == 2 {
			continue
		}
		if _, err := cl.SearchKV([]byte(k)); err != nil {
			t.Fatalf("chain rebuild lost %q: %v", k, err)
		}
	}
}

func TestVarKVUpdateDelete(t *testing.T) {
	_, cl := newVarTree(t)
	if err := cl.UpdateKV([]byte("ghost"), []byte("v")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update missing: %v", err)
	}
	if err := cl.DeleteKV([]byte("ghost")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete missing: %v", err)
	}
	if err := cl.InsertKV([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := cl.UpdateKV([]byte("k1"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, _ := cl.SearchKV([]byte("k1"))
	if string(got) != "v2" {
		t.Fatalf("update: %q", got)
	}
	if err := cl.DeleteKV([]byte("k1")); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.SearchKV([]byte("k1")); !errors.Is(err, ErrNotFound) {
		t.Fatal("delete failed")
	}
	// Reinsert after the entry was dropped.
	if err := cl.InsertKV([]byte("k1"), []byte("v3")); err != nil {
		t.Fatal(err)
	}
	got, _ = cl.SearchKV([]byte("k1"))
	if string(got) != "v3" {
		t.Fatalf("reinsert: %q", got)
	}
}

func TestVarKVManyKeysWithSplits(t *testing.T) {
	_, cl := newVarTree(t)
	const n = 2000
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%06d", i)
		v := fmt.Sprintf("value-%d", i*i)
		if err := cl.InsertKV([]byte(k), []byte(v)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%06d", i)
		got, err := cl.SearchKV([]byte(k))
		if err != nil || string(got) != fmt.Sprintf("value-%d", i*i) {
			t.Fatalf("search %d: %q %v", i, got, err)
		}
	}
}

func TestVarKVScan(t *testing.T) {
	_, cl := newVarTree(t)
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("item/%05d", i)
		if err := cl.InsertKV([]byte(k), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	out, err := cl.ScanKV([]byte("item/00100"), 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 50 {
		t.Fatalf("scan returned %d", len(out))
	}
	if string(out[0].Key) != "item/00100" {
		t.Fatalf("scan starts at %q", out[0].Key)
	}
	for i := 1; i < len(out); i++ {
		if bytes.Compare(out[i-1].Key, out[i].Key) >= 0 {
			t.Fatal("scan unsorted")
		}
	}
	// Scan past the end.
	tail, err := cl.ScanKV([]byte("item/00495"), 100)
	if err != nil || len(tail) != 5 {
		t.Fatalf("tail scan: %d %v", len(tail), err)
	}
	if got, _ := cl.ScanKV([]byte("z"), 10); len(got) != 0 {
		t.Fatalf("out-of-range scan returned %d", len(got))
	}
}

func TestVarKVLargeValues(t *testing.T) {
	_, cl := newVarTree(t)
	big := bytes.Repeat([]byte{0xCD}, 4096)
	if err := cl.InsertKV([]byte("big"), big); err != nil {
		t.Fatal(err)
	}
	got, err := cl.SearchKV([]byte("big"))
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("large value round trip failed: %d bytes, %v", len(got), err)
	}
}

func TestVarKVConcurrent(t *testing.T) {
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 512 << 20
	f := dmsim.MustNewFabric(cfg)
	opts := DefaultOptions()
	opts.VarKeys = true
	ix, err := Bootstrap(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	cn := ix.NewComputeNode(64<<20, 1<<20)
	const clients, per = 6, 200
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := cn.NewClient()
			r := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < per; i++ {
				k := []byte(fmt.Sprintf("client%d/key%04d", c, r.Intn(per)))
				switch r.Intn(3) {
				case 0, 1:
					if err := cl.InsertKV(k, []byte(fmt.Sprintf("%d", i))); err != nil {
						errs <- err
						return
					}
				case 2:
					if _, err := cl.SearchKV(k); err != nil && !errors.Is(err, ErrNotFound) {
						errs <- err
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
