package core

import (
	"encoding/binary"
	"fmt"

	"chime/internal/dmsim"
	"chime/internal/obs"
)

// Pipelined multi-get (async verb pipelining). SearchBatch drives up to
// `depth` point lookups through the tree at once on ONE client: each key
// is a small state machine whose remote reads are posted verbs, so the
// round trips of different keys overlap on the virtual clock exactly as
// coroutine-multiplexed lookups overlap on a real NIC (the CHIME
// artifact runs several coroutines per CPU thread for this reason).
//
// Scheduling is FIFO round-robin: the op whose read was posted earliest
// is polled first (its completion is the oldest, so polling it advances
// the clock the least), then it posts its next read and goes to the back
// of the queue. Cache hits advance an op several levels without posting
// anything. Optimistic-retry failures (torn reads, stale caches,
// half-splits) are isolated per key: one key restarting its traversal
// never unwinds its neighbors.
//
// Hotness-aware speculation (§4.3) is deliberately skipped in batch
// mode: a speculative single-entry read saves bytes but serializes an
// extra dependent round trip per key, which is exactly what pipelining
// is trying to hide. Found entries are still *recorded* in the hotspot
// buffer so interleaved synchronous Searches keep their speculation.

// searchOp states.
const (
	opStart = iota
	opRootWait
	opInternalWait
	opLeafWait
	opIndirectWait
	opDone
)

// searchOp is one in-flight key of a SearchBatch.
type searchOp struct {
	key uint64
	idx int // position in the input / result slices

	state int

	// Traversal state (mirrors traverse/traverseFrom).
	root      dmsim.GAddr
	rootLevel uint8
	cur       dmsim.GAddr
	path      []pathEntry
	ref       leafRef
	hops      int

	// In-flight reads. h2 is the dedicated metadata READ when the
	// ReplicateMeta ablation is off.
	h, h2   *dmsim.Completion
	rootBuf [8]byte
	img     []byte     // internal-node image (pooled)
	im      *leafImage // leaf window image (pooled)
	idxs    []int
	metaG   int
	ranges  []byteRange
	valBuf  []byte // indirect KV block ([8B key][value])

	restarts, torn int

	val []byte
	err error
}

// SearchBatch performs up to depth point lookups concurrently on this
// client, returning per-key values and errors (ErrNotFound for absent
// keys). depth <= 1 degenerates to sequential pipelining of one key at
// a time; results are positionally aligned with keys.
func (c *Client) SearchBatch(keys []uint64, depth int) ([][]byte, []error) {
	n := len(keys)
	vals := make([][]byte, n)
	errs := make([]error, n)
	if n == 0 {
		return vals, errs
	}
	if sp := c.obs.Tracer.Begin("chime.search_batch", "idx", c.dc.ID(), c.dc.Now()); sp != nil {
		sp.Arg("keys", n)
		sp.Arg("depth", depth)
		defer func() { sp.End(c.dc.Now()) }()
	}
	if fl := c.dc.Flight(); fl != nil {
		fl.Begin(obs.OpBatchRead, c.dc.Now())
		defer func() { fl.End(c.dc.Now()) }()
	}
	if depth < 1 {
		depth = 1
	}

	ops := make([]*searchOp, 0, depth)
	next := 0
	admit := func() {
		for next < n && len(ops) < depth {
			op := &searchOp{key: keys[next], idx: next}
			next++
			c.beginOp(op)
			if op.state == opDone {
				vals[op.idx], errs[op.idx] = op.val, op.err
				continue
			}
			ops = append(ops, op)
		}
	}
	admit()
	for len(ops) > 0 {
		op := ops[0]
		ops = ops[1:]
		c.stepOp(op)
		if op.state == opDone {
			vals[op.idx], errs[op.idx] = op.val, op.err
			admit()
		} else {
			ops = append(ops, op)
		}
	}
	return vals, errs
}

// beginOp (re)starts a key's traversal: post the super-block read if the
// root is unknown, otherwise descend through the cache from the root.
func (c *Client) beginOp(op *searchOp) {
	op.path = nil
	op.hops = 0
	c.chargeLocalWork()
	if c.rootAddr.IsNil() {
		h, err := c.dc.PostRead(c.ix.super, op.rootBuf[:])
		if err != nil {
			c.failOp(op, err)
			return
		}
		op.h = h
		op.state = opRootWait
		return
	}
	op.root, op.rootLevel = c.rootAddr, c.rootLevel
	c.descendFromRoot(op)
}

// stepOp polls the op's outstanding completion(s) and advances its state
// machine until it either posts again or completes.
func (c *Client) stepOp(op *searchOp) {
	switch op.state {
	case opRootWait:
		c.dc.Poll(op.h)
		op.h = nil
		addr, lvl := unpackSuper(binary.LittleEndian.Uint64(op.rootBuf[:]))
		c.rootAddr, c.rootLevel = addr, lvl
		op.root, op.rootLevel = addr, lvl
		c.descendFromRoot(op)

	case opInternalWait:
		c.dc.Poll(op.h)
		op.h = nil
		if err := c.ix.inner.checkInternalImage(op.img); err != nil {
			op.torn++
			if op.torn > maxRetries {
				c.failOp(op, fmt.Errorf("core: internal node %v: torn-read retries exhausted", op.cur))
				return
			}
			c.yield()
			h, perr := c.dc.PostRead(op.cur, op.img)
			if perr != nil {
				c.failOp(op, perr)
				return
			}
			op.h = h
			return
		}
		fresh := c.ix.inner.decodeInternal(op.cur, op.img)
		c.ix.inner.putImage(op.img)
		op.img = nil
		if !fresh.valid {
			c.restartOp(op)
			return
		}
		c.cn.cache.put(op.cur, fresh, int64(c.ix.inner.size))
		if c.stepNode(op, fresh, false) {
			c.descendLoop(op)
		}

	case opLeafWait:
		c.dc.Poll(op.h)
		c.dc.Poll(op.h2)
		op.h, op.h2 = nil, nil
		c.finishLeafOp(op)

	case opIndirectWait:
		c.dc.Poll(op.h)
		op.h = nil
		if binary.LittleEndian.Uint64(op.valBuf[:8]) != op.key {
			c.restartOp(op)
			return
		}
		op.val = op.valBuf[8:]
		c.completeOp(op)

	default:
		c.failOp(op, fmt.Errorf("core: SearchBatch: step in state %d", op.state))
	}
}

func (c *Client) descendFromRoot(op *searchOp) {
	if op.rootLevel == 0 {
		op.ref = leafRef{addr: op.root}
		c.postLeafOp(op)
		return
	}
	op.cur = op.root
	c.descendLoop(op)
}

// descendLoop walks internal levels through the cache until it needs a
// remote read (posting it) or reaches level 1 (posting the leaf window).
func (c *Client) descendLoop(op *searchOp) {
	for ; op.hops < maxRetries; op.hops++ {
		n := c.cn.cache.get(op.cur)
		if n == nil {
			op.img = c.ix.inner.getImage()
			h, err := c.dc.PostRead(op.cur, op.img)
			if err != nil {
				c.failOp(op, err)
				return
			}
			op.h = h
			op.state = opInternalWait
			return
		}
		if !c.stepNode(op, n, true) {
			return
		}
	}
	c.failOp(op, fmt.Errorf("core: SearchBatch(%#x): descent loop exhausted", op.key))
}

// stepNode applies one internal node to the op's descent (the body of
// traverseFrom's loop). It reports whether the caller should keep
// descending locally; false means the op posted a read, restarted, or
// failed.
func (c *Client) stepNode(op *searchOp, n *internalNode, fromCache bool) bool {
	key := op.key
	if !n.covers(key) {
		if fromCache {
			// Stale cached node: drop it and retry this address remotely.
			c.cn.cache.invalidate(op.cur)
			return true
		}
		if !n.fenceInf && key >= n.fenceHi && !n.sibling.IsNil() {
			op.cur = n.sibling // half-split: chase the B-link sibling
			return true
		}
		c.restartOp(op)
		return false
	}
	op.path = append(op.path, pathEntry{addr: op.cur, level: n.level})
	child, _, nextC := n.childFor(key)
	if child.IsNil() {
		if fromCache {
			c.cn.cache.invalidate(op.cur)
			return true
		}
		c.restartOp(op)
		return false
	}
	if n.level == 1 {
		op.ref = leafRef{
			addr:            child,
			expected:        nextC,
			expectedKnown:   !nextC.IsNil(),
			parentAddr:      op.cur,
			parentFromCache: fromCache,
			path:            op.path,
		}
		c.postLeafOp(op)
		return false
	}
	op.cur = child
	return true
}

// postLeafOp posts the leaf neighborhood window read(s) for op.ref,
// mirroring fetchLeafWindow's geometry. When the metadata replica is not
// covered (the "+Leaf Meta" ablation), the dedicated replica READ is
// posted alongside rather than after — both complete before the window
// is decoded, so validation is unchanged, but the two round trips
// overlap.
func (c *Client) postLeafOp(op *searchOp) {
	lay := c.ix.leaf
	home := lay.homeOf(op.key)
	if op.im == nil {
		op.im = lay.getImage()
	}
	segs, idxs := lay.neighborhoodSegments(home, lay.h, c.ix.opts.ReplicateMeta)
	op.idxs = idxs
	op.ranges = segs
	op.metaG = lay.metaInRanges(segs)

	var err error
	if len(segs) == 1 {
		op.h, err = c.dc.PostRead(op.ref.addr.Add(uint64(segs[0].Off)), op.im.buf[segs[0].Off:segs[0].End])
	} else {
		addrs := make([]dmsim.GAddr, len(segs))
		bufs := make([][]byte, len(segs))
		for i, s := range segs {
			addrs[i] = op.ref.addr.Add(uint64(s.Off))
			bufs[i] = op.im.buf[s.Off:s.End]
		}
		op.h, err = c.dc.PostReadBatch(addrs, bufs)
	}
	if err != nil {
		c.failOp(op, err)
		return
	}
	if !c.ix.opts.ReplicateMeta || op.metaG < 0 {
		rc := lay.replicaCells[0]
		op.h2, err = c.dc.PostRead(op.ref.addr.Add(uint64(rc.Off)), op.im.buf[rc.Off:rc.End()])
		if err != nil {
			c.failOp(op, err)
			return
		}
		op.metaG = 0
		op.ranges = append(append([]byteRange{}, op.ranges...), byteRange{Off: rc.Off, End: rc.End()})
	}
	op.state = opLeafWait
}

// finishLeafOp validates and decodes a completed leaf window, exactly as
// searchLeafChain does for the synchronous path.
func (c *Client) finishLeafOp(op *searchOp) {
	lay := c.ix.leaf
	if err := checkVersions(op.im.buf, 0, lay.coveredCells(op.ranges)); err != nil {
		op.torn++
		if op.torn > maxRetries {
			c.failOp(op, fmt.Errorf("core: leaf %v: torn-read retries exhausted", op.ref.addr))
			return
		}
		c.yield()
		c.postLeafOp(op) // repost the same window into the same image
		return
	}
	c.resetBackoff()

	home := lay.homeOf(op.key)
	homeEntry := op.im.entry(home)
	if homeEntry.hopBM != op.im.reconstructHopBitmap(home) {
		c.restartOp(op) // concurrent hop-range write caught mid-flight
		return
	}

	foundIdx := -1
	var foundVal []byte
	for d := 0; d < lay.h; d++ {
		if homeEntry.hopBM&(1<<uint(d)) == 0 {
			continue
		}
		e := op.im.entry(op.idxs[d])
		if e.occupied && e.key == op.key {
			foundIdx = op.idxs[d]
			foundVal = e.value
			break
		}
	}

	meta := op.im.meta(op.metaG)
	lay.putImage(op.im)
	op.im = nil
	follow, err := c.validateLeafMeta(&op.ref, meta, op.key, foundIdx >= 0)
	if err != nil {
		c.restartOp(op)
		return
	}
	if foundIdx >= 0 {
		c.cn.hotspot.record(op.ref.addr, foundIdx, op.key)
		if c.ix.opts.Indirect {
			ptr := dmsim.UnpackGAddr(binary.LittleEndian.Uint64(foundVal[:8]))
			if ptr.IsNil() {
				c.restartOp(op)
				return
			}
			op.valBuf = make([]byte, 8+c.ix.opts.ValueSize)
			h, perr := c.dc.PostRead(ptr, op.valBuf)
			if perr != nil {
				c.failOp(op, perr)
				return
			}
			op.h = h
			op.state = opIndirectWait
			return
		}
		op.val = append([]byte(nil), foundVal...)
		c.completeOp(op)
		return
	}
	if follow {
		op.ref = leafRef{addr: meta.sibling}
		c.postLeafOp(op)
		return
	}
	op.err = ErrNotFound
	c.completeOp(op)
}

// restartOp retraverses one key after an optimistic conflict; other keys
// in the batch are untouched.
func (c *Client) restartOp(op *searchOp) {
	op.restarts++
	c.obs.Retries.Inc()
	if op.restarts > maxRetries {
		c.failOp(op, fmt.Errorf("core: SearchBatch(%#x): retries exhausted", op.key))
		return
	}
	c.releaseOpBuffers(op)
	c.rootAddr = dmsim.NilGAddr // a split root invalidates it
	c.yield()
	c.beginOp(op)
}

func (c *Client) completeOp(op *searchOp) {
	c.resetBackoff()
	c.releaseOpBuffers(op)
	op.state = opDone
}

func (c *Client) failOp(op *searchOp, err error) {
	op.err = err
	c.releaseOpBuffers(op)
	op.state = opDone
}

// releaseOpBuffers drains any in-flight completions (Poll is idempotent
// and nil-safe) and returns pooled images.
func (c *Client) releaseOpBuffers(op *searchOp) {
	c.dc.Poll(op.h)
	c.dc.Poll(op.h2)
	op.h, op.h2 = nil, nil
	if op.img != nil {
		c.ix.inner.putImage(op.img)
		op.img = nil
	}
	if op.im != nil {
		c.ix.leaf.putImage(op.im)
		op.im = nil
	}
}
