package core

import (
	"fmt"

	"chime/internal/dmsim"
	"chime/internal/lease"
)

// Lease-based lock recovery. A client that crashes between acquiring a
// remote lock and releasing it leaves the lock bit set forever — on
// real hardware the survivors are stuck until an out-of-band fencing
// mechanism intervenes. With Options.LeaseLocks enabled, every lock
// acquisition stamps an (owner, expiry) lease into the spare bits of
// the 8-byte lock word it was going to CAS anyway, so leases cost zero
// extra verbs. A contender that finds the lock held past its expiry
// steals it with a full-word CAS against the exact stale word (so two
// stealers cannot both win) and, for leaves, repairs the piggybacked
// metadata by re-reading the node and recomputing the vacancy bitmap
// and argmax from scratch.
//
// The word layout and steal protocol are shared across all four index
// implementations — see internal/lease. Here the lease bits overlap
// CHIME's vacancy/argmax payload, which is safe: the
// piggybacked payload only lives in the word while it is UNLOCKED (the
// acquire CAS returns it as prev and the release WRITE puts the updated
// copy back); while locked, every index in this repo treats the word as
// opaque. Leases therefore require PiggybackVacancy (enforced by
// Options.Validate): the non-piggyback ablation reads the word back
// after acquiring and would decode the lease as a bitmap.
//
// Crash-consistency argument for the repair: the simulator moves data
// at post time and a crashed client fails its verbs *before* any data
// movement, so remote node images are always consistent at verb
// granularity — a victim dies between protocol steps, never inside
// one. The repair therefore never sees a torn image; what it fixes is
// the metadata the victim took with it (the vacancy bitmap and argmax
// travel through the lock word, and the stale word holds a lease
// instead). Re-reading the leaf and recomputing both — plus the
// caller's usual re-validation of the node under the stolen lock —
// rolls the node forward to a state any surviving writer can build on.

// leaseNs returns the configured lease duration.
func (c *Client) leaseNs() int64 {
	if n := c.ix.opts.LeaseNs; n > 0 {
		return n
	}
	return lease.DefaultNs
}

// lockSwapWord returns the word a lease-mode acquire CAS installs:
// lock bit plus this client's fresh lease.
func (c *Client) lockSwapWord() uint64 {
	return lease.Word(c.dc.ID(), c.dc.Now()+c.leaseNs())
}

// tryStealLock steals a lock whose lease has expired: a full-word CAS
// from the exact stale word to a fresh lease of our own, so concurrent
// stealers (and a holder that is merely slow, whose release WRITE
// changes the word) race safely — at most one CAS wins. Returns whether
// this client now holds the lock. The caller must re-read the node
// under the stolen lock before trusting any cached state.
func (c *Client) tryStealLock(addr dmsim.GAddr, prev uint64) (bool, error) {
	if !lease.Expired(prev, c.dc.Now()) {
		return false, nil
	}
	c.obs.LeaseExpired.Inc()
	_, ok, err := c.dc.CAS(addr, prev, c.lockSwapWord())
	if err != nil || !ok {
		return false, err
	}
	c.obs.Recoveries.Inc()
	return true, nil
}

// tryStealLeafLease steals an expired leaf lock and repairs the
// piggybacked metadata the dead holder took with it. On success the
// returned lock word carries a freshly recomputed vacancy bitmap and
// argmax, exactly as a piggyback acquire would have delivered.
func (c *Client) tryStealLeafLease(leaf dmsim.GAddr, prev uint64) (lockWord, bool, error) {
	stolen, err := c.tryStealLock(leafLockAddr(leaf), prev)
	if err != nil || !stolen {
		return lockWord{}, false, err
	}
	lw, err := c.repairLeaf(leaf)
	if err != nil {
		// The steal succeeded but the repair read failed (fabric fault):
		// surface the error; our own lease on the stuck lock lets the
		// next contender recover.
		return lockWord{}, false, err
	}
	return lw, true, nil
}

// repairLeaf re-reads the whole leaf under the (stolen) lock and
// recomputes the lock-word payload from the entries themselves.
func (c *Client) repairLeaf(leaf dmsim.GAddr) (lockWord, error) {
	im, _, _, err := c.fetchWholeLeaf(leaf)
	if err != nil {
		return lockWord{}, err
	}
	lw := recomputeLockWord(im)
	c.ix.leaf.putImage(im)
	return lw, nil
}

// acquireLeafLease is the lease-mode leaf lock acquisition: the same
// piggyback masked-CAS as acquireLeafLock, but the swap word carries
// our lease and a failed CAS may steal from an expired holder. The
// same-CN lock table is bypassed entirely — a local handover would hand
// a waiter the *holder's* lease, turning a live client into a theft
// target — so cross-client contention is all remote, as on a fabric
// whose CNs crashed independently.
func (c *Client) acquireLeafLease(leaf dmsim.GAddr) (lockWord, error) {
	addr := leafLockAddr(leaf)
	for try := 0; try < maxRetries; try++ {
		prev, ok, err := c.dc.MaskedCAS(addr, 0, c.lockSwapWord(), lockBit, ^uint64(0))
		if err != nil {
			return lockWord{}, err
		}
		if ok {
			c.resetBackoff()
			return decodeLockWord(prev), nil
		}
		lw, stolen, err := c.tryStealLeafLease(leaf, prev)
		if err != nil {
			return lockWord{}, err
		}
		if stolen {
			c.resetBackoff()
			return lw, nil
		}
		c.obs.LockBackoffs.Inc()
		c.yield()
	}
	return lockWord{}, fmt.Errorf("core: leaf %v: lock acquisition starved", leaf)
}
