package core

import (
	"encoding/binary"

	"chime/internal/dmsim"
	"chime/internal/obs"
)

// Public operation entry points and the hybrid one-sided/offload router
// wiring. Each op consults the client's offroute.Router (nil = always
// one-sided) after checking that the MN-side program supports the op for
// this tree's configuration; support gates run before the router so
// unsupported ops never pollute its cost estimates. A routed offload
// whose program returns a fallback verdict redoes the op one-sided and
// reports the combined cost to the router, so adaptive mode learns that
// offloading this workload is expensive.

// offloadSearchOK reports whether the MN program can serve point
// lookups for this configuration. Indirect values are fine — the
// program resolves KV blocks MN-side; variable-length key chains are
// not (fingerprint collision handling needs the client).
func (ix *Index) offloadSearchOK() bool { return !ix.opts.VarKeys }

// offloadUpdateOK reports whether the MN program can serve in-place
// updates: indirect values need client-side allocation and lease locks
// carry the holder's identity, so both stay one-sided.
func (ix *Index) offloadUpdateOK() bool {
	return !ix.opts.VarKeys && !ix.opts.Indirect && !ix.opts.LeaseLocks
}

// Search performs a point query (§4.4). It returns ErrNotFound when the
// key is absent. With offload enabled the op may execute as a single
// LeafSearchAtMN RPC instead of a one-sided traversal.
func (c *Client) Search(key uint64) ([]byte, error) {
	if sp := c.obs.Tracer.Begin("chime.search", "idx", c.dc.ID(), c.dc.Now()); sp != nil {
		defer func() { sp.End(c.dc.Now()) }()
	}
	if fl := c.dc.Flight(); fl != nil {
		fl.Begin(obs.OpSearch, c.dc.Now())
		defer func() { fl.End(c.dc.Now()) }()
	}
	if c.router == nil || !c.ix.offloadSearchOK() {
		return c.searchOneSided(key)
	}
	if !c.router.UseOffload() {
		t0, trips0 := c.dc.Now(), c.dc.Stats().Trips
		val, err := c.searchOneSided(key)
		c.router.ObserveOneSided(c.dc.Now()-t0, c.dc.Stats().Trips-trips0)
		return val, err
	}
	t0 := c.dc.Now()
	n, st, err := c.dc.LeafSearchAtMN(c.ix.mnprog, c.ix.offMN, key, 0, c.offBuf)
	if err != nil {
		return nil, err
	}
	if !st.Fallback() {
		c.router.ObserveOffload(c.dc.Now() - t0)
		if st == dmsim.OffloadNotFound {
			return nil, ErrNotFound
		}
		return append([]byte(nil), c.offBuf[:n]...), nil
	}
	// Fallback: redo one-sided; the offload estimate absorbs the full
	// combined cost.
	val, err := c.searchOneSided(key)
	c.router.ObserveOffload(c.dc.Now() - t0)
	return val, err
}

// Update overwrites the value of an existing key, returning ErrNotFound
// if the key is absent. With offload enabled the op may execute as a
// single CompareAndCASAtMN RPC.
func (c *Client) Update(key uint64, value []byte) error {
	if sp := c.obs.Tracer.Begin("chime.update", "idx", c.dc.ID(), c.dc.Now()); sp != nil {
		defer func() { sp.End(c.dc.Now()) }()
	}
	if fl := c.dc.Flight(); fl != nil {
		fl.Begin(obs.OpUpdate, c.dc.Now())
		defer func() { fl.End(c.dc.Now()) }()
	}
	if c.router == nil || !c.ix.offloadUpdateOK() {
		return c.updateOneSided(key, value)
	}
	if !c.router.UseOffload() {
		t0, trips0 := c.dc.Now(), c.dc.Stats().Trips
		err := c.updateOneSided(key, value)
		c.router.ObserveOneSided(c.dc.Now()-t0, c.dc.Stats().Trips-trips0)
		return err
	}
	t0 := c.dc.Now()
	st, err := c.dc.CompareAndCASAtMN(c.ix.mnprog, c.ix.offMN, key, 0, value)
	if err != nil {
		return err
	}
	if !st.Fallback() {
		c.router.ObserveOffload(c.dc.Now() - t0)
		if st == dmsim.OffloadNotFound {
			return ErrNotFound
		}
		return nil
	}
	err = c.updateOneSided(key, value)
	c.router.ObserveOffload(c.dc.Now() - t0)
	return err
}

// Scan returns up to count items with keys >= start, in ascending key
// order (§4.4). With offload enabled the whole range collection may
// execute as a single ScatterGatherScan RPC whose response carries
// [8B key][value] records.
func (c *Client) Scan(start uint64, count int) ([]KV, error) {
	if count <= 0 {
		return nil, nil
	}
	if sp := c.obs.Tracer.Begin("chime.scan", "idx", c.dc.ID(), c.dc.Now()); sp != nil {
		defer func() { sp.End(c.dc.Now()) }()
	}
	if fl := c.dc.Flight(); fl != nil {
		fl.Begin(obs.OpScan, c.dc.Now())
		defer func() { fl.End(c.dc.Now()) }()
	}
	if c.router == nil || !c.ix.offloadSearchOK() {
		return c.scanOneSided(start, count)
	}
	if !c.router.UseOffload() {
		t0, trips0 := c.dc.Now(), c.dc.Stats().Trips
		out, err := c.scanOneSided(start, count)
		c.router.ObserveOneSided(c.dc.Now()-t0, c.dc.Stats().Trips-trips0)
		return out, err
	}
	t0 := c.dc.Now()
	recSize := 8 + c.ix.opts.ValueSize
	dst := make([]byte, count*recSize)
	n, st, err := c.dc.ScatterGatherScan(c.ix.mnprog, c.ix.offMN, start, 0, count, dst)
	if err != nil {
		return nil, err
	}
	if !st.Fallback() {
		c.router.ObserveOffload(c.dc.Now() - t0)
		out := make([]KV, 0, n/recSize)
		for off := 0; off+recSize <= n; off += recSize {
			out = append(out, KV{
				Key:   binary.LittleEndian.Uint64(dst[off : off+8]),
				Value: dst[off+8 : off+recSize],
			})
		}
		return out, nil
	}
	out, err := c.scanOneSided(start, count)
	c.router.ObserveOffload(c.dc.Now() - t0)
	return out, err
}

// OffloadStats reports how many of this client's routed ops went to
// each path (zeros with offload off).
func (c *Client) OffloadStats() (offloaded, onesided uint64) {
	return c.router.Stats()
}
