package core

import (
	"encoding/binary"
	"fmt"
	"sync"

	"chime/internal/dmsim"
	"chime/internal/hopscotch"
)

// Leaf node remote layout (paper Figure 10, optimized):
//
//	off 0:   8-byte lock word (lock bit | vacancy bitmap | argmax)
//	off 64:  groups, each = [metadata replica][H entries]
//
// A metadata replica precedes every H entries, so any H-entry
// neighborhood read either contains a replica or starts right after one
// and can include it by extending the window one cell to the left
// (§4.2.2). Entry cells and replica cells carry the two-level version
// bytes described in layout.go.
//
// Entry content:   [1B flags][2B hopscotch bitmap][keySize key][val]
// Replica content: [1B flags][8B sibling][8B fenceHigh]
//
// The replica's fenceHigh is this implementation's safety net for the
// one case sibling-based validation cannot decide: a reader that reaches
// the *last* child of its parent has no "next child pointer" to compare
// the leaf's sibling against, so it falls back to comparing the target
// key with fenceHigh. See the DESIGN.md substitution notes.

const (
	entryFlagOccupied = 1 << 0

	replicaFlagValid    = 1 << 0
	replicaFlagFenceInf = 1 << 1
)

// leafLayout is the derived byte geometry of a leaf node for a given
// Options. It is immutable and shared by all clients (the image pool is
// internally synchronized).
type leafLayout struct {
	span, h  int
	keySize  int
	valSize  int // stored bytes per value field (8 when indirect)
	indirect bool

	entryCells   []cell // indexed by entry index
	replicaCells []cell // indexed by group (span/h groups)
	allCells     []cell // every cell, for node-level version bumps
	size         int    // total node footprint including lock word

	vacGroups, vacPerBit int

	imgPool sync.Pool // of *leafImage; hot read paths recycle images
}

func newLeafLayout(o Options) *leafLayout {
	l := &leafLayout{
		span:     o.SpanSize,
		h:        o.Neighborhood,
		keySize:  o.KeySize,
		valSize:  o.ValueSize,
		indirect: o.Indirect,
	}
	if o.Indirect || o.VarKeys {
		l.valSize = 8 // pointer to the KV block / fingerprint chain
	}
	l.vacGroups, l.vacPerBit = vacancyGroups(o.SpanSize)

	entryContent := 1 + 2 + l.keySize + l.valSize
	replicaContent := 1 + 8 + 8
	groups := o.SpanSize / o.Neighborhood

	var contents []int
	for g := 0; g < groups; g++ {
		contents = append(contents, replicaContent)
		for e := 0; e < o.Neighborhood; e++ {
			contents = append(contents, entryContent)
		}
	}
	cells, regionSize := layoutCells(lineSize, contents)
	l.allCells = cells
	l.size = lineSize + regionSize

	for g := 0; g < groups; g++ {
		base := g * (o.Neighborhood + 1)
		l.replicaCells = append(l.replicaCells, cells[base])
		l.entryCells = append(l.entryCells, cells[base+1:base+1+o.Neighborhood]...)
	}
	return l
}

// homeOf returns the home entry index of a key.
func (l *leafLayout) homeOf(key uint64) int {
	return int(hopscotch.Hash(key) % uint64(l.span))
}

// groupOfEntry returns the metadata-replica group of an entry index.
func (l *leafLayout) groupOfEntry(idx int) int { return idx / l.h }

// leafEntry is the decoded form of one leaf slot.
type leafEntry struct {
	occupied bool
	hopBM    uint16
	key      uint64
	value    []byte // valSize bytes; the block pointer when indirect
}

// leafMeta is the decoded form of a metadata replica.
type leafMeta struct {
	valid    bool
	sibling  dmsim.GAddr
	fenceInf bool
	fenceHi  uint64
}

// leafImage wraps a full-size leaf byte buffer. Depending on context the
// buffer holds a complete node (splits, bootstrap) or a partial window
// fetched into the right offsets (searches, inserts); callers track
// which cells are populated.
type leafImage struct {
	lay *leafLayout
	buf []byte
}

func newLeafImage(lay *leafLayout) *leafImage {
	return &leafImage{lay: lay, buf: make([]byte, lay.size)}
}

// getImage returns a (possibly recycled) full-size leaf image. Recycled
// buffers hold stale bytes from a previous node; that is safe for every
// read path because consumers only decode cells whose version bytes were
// validated over the ranges actually fetched.
func (l *leafLayout) getImage() *leafImage {
	if im, ok := l.imgPool.Get().(*leafImage); ok && im != nil {
		return im
	}
	return newLeafImage(l)
}

// getImageZeroed returns a pooled image with every byte cleared, for
// building fresh node contents that are written out whole (splits): a
// recycled buffer's stale cells would otherwise reach the wire.
func (l *leafLayout) getImageZeroed() *leafImage {
	im := l.getImage()
	for i := range im.buf {
		im.buf[i] = 0
	}
	return im
}

// putImage recycles an image once no decoded state references it.
// Decoded entries and metadata copy their bytes out (readCellContent),
// so releasing after the last entry()/meta() call is safe.
func (l *leafLayout) putImage(im *leafImage) {
	if im == nil || len(im.buf) != l.size {
		return
	}
	l.imgPool.Put(im)
}

// entry decodes slot i.
func (im *leafImage) entry(i int) leafEntry {
	c := im.lay.entryCells[i]
	content := readCellContent(im.buf, c, make([]byte, 0, c.Content))
	e := leafEntry{
		occupied: content[0]&entryFlagOccupied != 0,
		hopBM:    binary.LittleEndian.Uint16(content[1:3]),
		key:      binary.LittleEndian.Uint64(content[3:11]),
	}
	e.value = content[3+im.lay.keySize : 3+im.lay.keySize+im.lay.valSize]
	return e
}

// setEntry encodes slot i and bumps its entry-level version.
func (im *leafImage) setEntry(i int, e leafEntry) {
	c := im.lay.entryCells[i]
	content := make([]byte, c.Content)
	if e.occupied {
		content[0] |= entryFlagOccupied
	}
	binary.LittleEndian.PutUint16(content[1:3], e.hopBM)
	binary.LittleEndian.PutUint64(content[3:11], e.key)
	copy(content[3+im.lay.keySize:], e.value)
	writeCellContent(im.buf, c, content)
	bumpEV(im.buf, c)
}

// setEntryNoBump encodes slot i without touching versions (bulk builds
// followed by a whole-node write, which bumps NV instead).
func (im *leafImage) setEntryNoBump(i int, e leafEntry) {
	c := im.lay.entryCells[i]
	content := make([]byte, c.Content)
	if e.occupied {
		content[0] |= entryFlagOccupied
	}
	binary.LittleEndian.PutUint16(content[1:3], e.hopBM)
	binary.LittleEndian.PutUint64(content[3:11], e.key)
	copy(content[3+im.lay.keySize:], e.value)
	writeCellContent(im.buf, c, content)
}

// meta decodes the metadata replica of group g.
func (im *leafImage) meta(g int) leafMeta {
	c := im.lay.replicaCells[g]
	content := readCellContent(im.buf, c, make([]byte, 0, c.Content))
	return leafMeta{
		valid:    content[0]&replicaFlagValid != 0,
		fenceInf: content[0]&replicaFlagFenceInf != 0,
		sibling:  dmsim.UnpackGAddr(binary.LittleEndian.Uint64(content[1:9])),
		fenceHi:  binary.LittleEndian.Uint64(content[9:17]),
	}
}

// setAllMeta writes the same metadata into every replica. Metadata only
// changes under node writes (splits), which bump NV for the whole node,
// so no EV bump here.
func (im *leafImage) setAllMeta(m leafMeta) {
	for g := range im.lay.replicaCells {
		c := im.lay.replicaCells[g]
		content := make([]byte, c.Content)
		if m.valid {
			content[0] |= replicaFlagValid
		}
		if m.fenceInf {
			content[0] |= replicaFlagFenceInf
		}
		binary.LittleEndian.PutUint64(content[1:9], m.sibling.Pack())
		binary.LittleEndian.PutUint64(content[9:17], m.fenceHi)
		writeCellContent(im.buf, c, content)
	}
}

// bumpAllNV increments the node-level version across the whole image.
func (im *leafImage) bumpAllNV() { bumpNV(im.buf, im.lay.allCells) }

// reconstructHopBitmap recomputes, from the actual keys stored in the
// image, the hopscotch bitmap that the home entry `home` should carry:
// bit d is set when slot (home+d)%span holds a key whose home is `home`.
// Only the slots in [home, home+h) are examined, all of which a
// neighborhood read fetches.
func (im *leafImage) reconstructHopBitmap(home int) uint16 {
	var bm uint16
	for d := 0; d < im.lay.h; d++ {
		i := (home + d) % im.lay.span
		e := im.entry(i)
		if e.occupied && im.lay.homeOf(e.key) == home {
			bm |= 1 << uint(d)
		}
	}
	return bm
}

// byteRange is a contiguous region of the node image.
type byteRange struct{ Off, End int }

func (r byteRange) size() int { return r.End - r.Off }

// cellSpanRange returns the byte range covering entry indexes
// [first, first+count) of a non-wrapping run, extended left to include
// the metadata replica adjacent to or inside the run.
func (l *leafLayout) cellSpanRange(first, count int, includeMeta bool) byteRange {
	lo := l.entryCells[first].Off
	hi := l.entryCells[first+count-1].End()
	if includeMeta {
		g := l.groupOfEntry(first)
		if rc := l.replicaCells[g]; rc.Off < lo {
			// The run starts mid-group; its own group's replica sits
			// before it. If the run crosses into the next group it
			// already contains that group's replica; otherwise extend
			// left to the replica of the starting group.
			if l.groupOfEntry(first+count-1) == g {
				lo = rc.Off
			}
		}
	}
	return byteRange{Off: lo, End: hi}
}

// neighborhoodSegments returns the 1 or 2 byte ranges (2 on wrap-around)
// covering entries [home, home+count) circularly, each extended to
// include a metadata replica when includeMeta is set, plus the list of
// covered entry indexes in fetch order.
func (l *leafLayout) neighborhoodSegments(home, count int, includeMeta bool) ([]byteRange, []int) {
	if count > l.span {
		count = l.span
	}
	idxs := make([]int, count)
	for i := range idxs {
		idxs[i] = (home + i) % l.span
	}
	if home+count <= l.span {
		return []byteRange{l.cellSpanRange(home, count, includeMeta)}, idxs
	}
	first := l.span - home
	segs := []byteRange{
		l.cellSpanRange(home, first, includeMeta),
		// The second segment starts at entry 0, whose group replica is
		// replica 0, located just before it.
		l.cellSpanRange(0, count-first, false),
	}
	if includeMeta {
		segs[1].Off = l.replicaCells[0].Off
	}
	return segs, idxs
}

// coveredCells lists the cells fully contained in the given ranges; used
// to validate versions over exactly what was fetched.
func (l *leafLayout) coveredCells(ranges []byteRange) []cell {
	var out []cell
	for _, c := range l.allCells {
		for _, r := range ranges {
			if c.Off >= r.Off && c.End() <= r.End {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

// metaInRanges returns the group index of a metadata replica fully
// contained in the ranges, or -1.
func (l *leafLayout) metaInRanges(ranges []byteRange) int {
	for g, c := range l.replicaCells {
		for _, r := range ranges {
			if c.Off >= r.Off && c.End() <= r.End {
				return g
			}
		}
	}
	return -1
}

// lockAddr returns the remote address of the node's lock word.
func leafLockAddr(node dmsim.GAddr) dmsim.GAddr { return node }

// String renders layout geometry for diagnostics.
func (l *leafLayout) String() string {
	return fmt.Sprintf("leaf{span=%d h=%d key=%d val=%d size=%dB}",
		l.span, l.h, l.keySize, l.valSize, l.size)
}
