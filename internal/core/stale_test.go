package core

import (
	"encoding/binary"
	"testing"

	"chime/internal/dmsim"
	"chime/internal/ycsb"
)

// TestCrossCNStaleCache exercises the sibling-based cache validation
// (§4.2.3 rule 1) across compute nodes: CN2 splits leaves behind CN1's
// cached parents; CN1's reads must detect the mismatch between the
// leaf's sibling pointer and the cached parent's next-child pointer,
// invalidate, and retry successfully.
func TestCrossCNStaleCache(t *testing.T) {
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 512 << 20
	ix, err := Bootstrap(dmsim.MustNewFabric(cfg), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cn1 := ix.NewComputeNode(64<<20, 1<<20)
	cn2 := ix.NewComputeNode(64<<20, 0)
	cl1, cl2 := cn1.NewClient(), cn2.NewClient()

	const phase1 = 800
	for i := uint64(0); i < phase1; i++ {
		if err := cl1.Insert(ycsb.KeyOf(i), val8(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < phase1; i++ { // warm CN1
		if _, err := cl1.Search(ycsb.KeyOf(i)); err != nil {
			t.Fatal(err)
		}
	}
	before := cn1.CacheStats()

	const phase2 = 5000
	for i := uint64(phase1); i < phase2; i++ {
		if err := cl2.Insert(ycsb.KeyOf(i), val8(i)); err != nil {
			t.Fatal(err)
		}
	}

	for i := uint64(0); i < phase2; i += 7 {
		got, err := cl1.Search(ycsb.KeyOf(i))
		if err != nil || binary.LittleEndian.Uint64(got) != i {
			t.Fatalf("stale-cache search %d: %v %v", i, got, err)
		}
	}
	after := cn1.CacheStats()
	if after.Invalidations == before.Invalidations {
		t.Fatal("expected cache invalidations from sibling-based validation")
	}

	// Writes through the stale cache must land too.
	for i := uint64(0); i < phase2; i += 113 {
		if err := cl1.Update(ycsb.KeyOf(i), val8(i^0xF)); err != nil {
			t.Fatalf("stale update %d: %v", i, err)
		}
		if err := cl1.Insert(ycsb.KeyOf(uint64(phase2)+i), val8(i)); err != nil {
			t.Fatalf("stale insert %d: %v", i, err)
		}
	}
	// Scans via the stale CN.
	out, err := cl1.Scan(0, 200)
	if err != nil || len(out) != 200 {
		t.Fatalf("stale scan: %d %v", len(out), err)
	}
}

// TestHotspotStaleAfterCrossCNUpdate: CN1's hotspot buffer records an
// entry location; CN2 moves the key (delete + reinsert elsewhere) and
// the speculative read must miss cleanly, fall back, and repair.
func TestHotspotStaleAfterCrossCNUpdate(t *testing.T) {
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 256 << 20
	ix, err := Bootstrap(dmsim.MustNewFabric(cfg), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cn1 := ix.NewComputeNode(32<<20, 1<<20)
	cn2 := ix.NewComputeNode(32<<20, 0)
	cl1, cl2 := cn1.NewClient(), cn2.NewClient()

	for i := uint64(0); i < 300; i++ {
		if err := cl1.Insert(ycsb.KeyOf(i), val8(i)); err != nil {
			t.Fatal(err)
		}
	}
	hot := ycsb.KeyOf(42)
	for i := 0; i < 30; i++ { // make it a hotspot on CN1
		if _, err := cl1.Search(hot); err != nil {
			t.Fatal(err)
		}
	}
	// CN2 rewrites the key's value out from under CN1's buffer.
	if err := cl2.Update(hot, val8(999)); err != nil {
		t.Fatal(err)
	}
	got, err := cl1.Search(hot)
	if err != nil || binary.LittleEndian.Uint64(got) != 999 {
		t.Fatalf("speculative read returned stale cross-CN value: %v %v", got, err)
	}
	// CN2 deletes it; CN1 must see the absence despite its hotspot.
	if err := cl2.Delete(hot); err != nil {
		t.Fatal(err)
	}
	if _, err := cl1.Search(hot); err == nil {
		t.Fatal("deleted key still visible through hotspot buffer")
	}
}
