package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"chime/internal/dmsim"
	"chime/internal/ycsb"
)

func haddr(off uint64) dmsim.GAddr { return dmsim.GAddr{Off: off} }

func TestHotspotRecordAndLookup(t *testing.T) {
	h := newHotspotBuffer(10 * hotspotEntryBytes)
	leaf := haddr(4096)
	h.record(leaf, 3, 0xABC)
	h.record(leaf, 3, 0xABC)
	h.record(leaf, 3, 0xABC)

	// Lookup within a neighborhood containing slot 3.
	if got := h.lookup(leaf, 0xABC, 0, 8, 64); got != 3 {
		t.Fatalf("lookup = %d, want 3", got)
	}
	// Wrong key (fingerprint mismatch) must miss.
	if got := h.lookup(leaf, 0xDEF, 0, 8, 64); got != -1 {
		t.Fatalf("foreign key hit slot %d", got)
	}
	// Neighborhood not covering slot 3 must miss.
	if got := h.lookup(leaf, 0xABC, 8, 8, 64); got != -1 {
		t.Fatalf("out-of-neighborhood hit %d", got)
	}
	// Different leaf must miss.
	if got := h.lookup(haddr(8192), 0xABC, 0, 8, 64); got != -1 {
		t.Fatalf("foreign leaf hit %d", got)
	}
}

func TestHotspotHottestWins(t *testing.T) {
	h := newHotspotBuffer(10 * hotspotEntryBytes)
	leaf := haddr(64)
	// Two keys in the same neighborhood with colliding... use the same
	// key recorded at two slots (it moved); the hotter slot must win.
	h.record(leaf, 2, 0x77)
	for i := 0; i < 5; i++ {
		h.record(leaf, 5, 0x77)
	}
	if got := h.lookup(leaf, 0x77, 0, 8, 64); got != 5 {
		t.Fatalf("hottest slot = %d, want 5", got)
	}
}

func TestHotspotFingerprintRefresh(t *testing.T) {
	h := newHotspotBuffer(10 * hotspotEntryBytes)
	leaf := haddr(64)
	for i := 0; i < 9; i++ {
		h.record(leaf, 1, 0xAAA)
	}
	// The slot's occupant changed: recording a different key must reset
	// the counter and refresh the fingerprint.
	h.record(leaf, 1, 0xBBB)
	if got := h.lookup(leaf, 0xAAA, 0, 8, 64); got != -1 {
		t.Fatal("stale fingerprint survived occupant change")
	}
	if got := h.lookup(leaf, 0xBBB, 0, 8, 64); got != 1 {
		t.Fatalf("new occupant not found: %d", got)
	}
}

func TestHotspotLFUEviction(t *testing.T) {
	h := newHotspotBuffer(2 * hotspotEntryBytes) // capacity 2
	leaf := haddr(64)
	for i := 0; i < 5; i++ {
		h.record(leaf, 0, 100) // hot
	}
	h.record(leaf, 1, 200) // cold
	h.record(leaf, 2, 300) // evicts the LFU (slot 1)
	if got := h.lookup(leaf, 100, 0, 8, 64); got != 0 {
		t.Fatal("hot entry evicted")
	}
	if got := h.lookup(leaf, 200, 0, 8, 64); got != -1 {
		t.Fatal("LFU entry survived past capacity")
	}
	st := h.stats()
	if st.Entries != 2 || st.Cap != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHotspotDisabled(t *testing.T) {
	h := newHotspotBuffer(0)
	h.record(haddr(64), 0, 1)
	if got := h.lookup(haddr(64), 1, 0, 8, 64); got != -1 {
		t.Fatal("disabled buffer must never hit")
	}
}

func TestHotspotDrop(t *testing.T) {
	h := newHotspotBuffer(4 * hotspotEntryBytes)
	leaf := haddr(64)
	h.record(leaf, 3, 9)
	h.drop(leaf, 3)
	if got := h.lookup(leaf, 9, 0, 8, 64); got != -1 {
		t.Fatal("dropped entry still resolvable")
	}
}

// TestHotspotStaleSlotSpeculation pins the write/speculation contract
// (§4.3): a hotspot entry pointing at a slot the key no longer occupies
// (it was relocated by a concurrent insert's hop moves) must fail the
// speculative read's occupied+key validation, be dropped, and fall back
// to the window read — never serve a wrong value.
func TestHotspotStaleSlotSpeculation(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	key := ycsb.KeyOf(1)
	if err := cl.Insert(key, val8(111)); err != nil {
		t.Fatal(err)
	}
	ref, err := cl.traverse(key)
	if err != nil {
		t.Fatal(err)
	}
	lay := cl.ix.leaf
	home := lay.homeOf(key)
	// Poison the hotspot buffer: record the key as hot at a neighborhood
	// slot it does not occupy — exactly what a concurrent relocation
	// leaves behind.
	wrong := (home + lay.h - 1) % lay.span
	for i := 0; i < 5; i++ {
		cl.cn.hotspot.record(ref.addr, wrong, key)
	}
	if got := cl.cn.hotspot.lookup(ref.addr, key, home, lay.h, lay.span); got != wrong {
		t.Fatalf("hotspot primed at %d, want %d", got, wrong)
	}
	got, err := cl.Search(key)
	if err != nil {
		t.Fatal(err)
	}
	if binary.LittleEndian.Uint64(got) != 111 {
		t.Fatalf("stale speculation served %x", got)
	}
	if got := cl.cn.hotspot.lookup(ref.addr, key, home, lay.h, lay.span); got == wrong {
		t.Fatal("failed speculative slot was not dropped")
	}
}

// TestHotspotDeletedKeySpeculation: a hot key that gets deleted must
// read back ErrNotFound, not a stale speculative hit.
func TestHotspotDeletedKeySpeculation(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	key := ycsb.KeyOf(2)
	if err := cl.Insert(key, val8(5)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ { // make it hot
		if _, err := cl.Search(key); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Delete(key); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Search(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted hot key: %v, want ErrNotFound", err)
	}
}

// TestHotspotRelocationByColliders drives real hop relocations: keys
// sharing (or preceding) the hot key's home slot pile into its
// neighborhood until inserts relocate entries and eventually split the
// leaf. After every insert the hot key must still read back correctly
// through whatever mix of speculation hits, validation misses, and
// window fallbacks results.
func TestHotspotRelocationByColliders(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	lay := cl.ix.leaf
	key := ycsb.KeyOf(3)
	home := lay.homeOf(key)
	if err := cl.Insert(key, val8(42)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // make it hot so every Search speculates
		if _, err := cl.Search(key); err != nil {
			t.Fatal(err)
		}
	}
	// Collect colliders homed into [home-h+1, home]: their inserts need
	// free slots in the hot key's neighborhood and trigger hop moves.
	var colliders []uint64
	for id := uint64(1000); len(colliders) < 3*lay.h && id < 200000; id++ {
		k := ycsb.KeyOf(id)
		d := ((home-lay.homeOf(k))%lay.span + lay.span) % lay.span
		if k != key && d < lay.h {
			colliders = append(colliders, k)
		}
	}
	for i, k := range colliders {
		if err := cl.Insert(k, val8(uint64(i))); err != nil {
			t.Fatalf("collider %d: %v", i, err)
		}
		got, err := cl.Search(key)
		if err != nil {
			t.Fatalf("hot key lost after collider %d: %v", i, err)
		}
		if binary.LittleEndian.Uint64(got) != 42 {
			t.Fatalf("hot key corrupted after collider %d: %x", i, got)
		}
	}
}

// TestHotspotConcurrentWriteRead races writers upserting a hot key
// against speculating readers: every read must return a value some
// writer actually wrote (the entry version check is what stands between
// speculation and torn values). Run under -race this also gates the
// hotspot buffer's internal locking against the write path.
func TestHotspotConcurrentWriteRead(t *testing.T) {
	ix, err := Bootstrap(testFabric(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cn := ix.NewComputeNode(64<<20, 1<<20)
	key := ycsb.KeyOf(9)
	loader := cn.NewClient()
	if err := loader.Insert(key, val8(1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ { // prime the hotspot entry
		if _, err := loader.Search(key); err != nil {
			t.Fatal(err)
		}
	}

	var maxWritten atomic.Uint64
	maxWritten.Store(1)
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		cl := cn.NewClient()
		for v := uint64(2); v < 1500; v++ {
			if err := cl.Insert(key, val8(v)); err != nil {
				errCh <- err
				return
			}
			maxWritten.Store(v)
		}
	}()
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := cn.NewClient()
			for {
				select {
				case <-done:
					return
				default:
				}
				got, err := cl.Search(key)
				if err != nil {
					errCh <- err
					return
				}
				v := binary.LittleEndian.Uint64(got)
				if v < 1 || v > maxWritten.Load()+1 {
					errCh <- fmt.Errorf("reader saw value %d never written (max %d)", v, maxWritten.Load())
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func TestNodeCacheLRUOrder(t *testing.T) {
	c := newNodeCache(3 * 100)
	n := &internalNode{valid: true}
	c.put(haddr(1), n, 100)
	c.put(haddr(2), n, 100)
	c.put(haddr(3), n, 100)
	// Touch 1 so 2 becomes LRU.
	if c.get(haddr(1)) == nil {
		t.Fatal("miss on resident node")
	}
	c.put(haddr(4), n, 100) // evicts 2
	if c.get(haddr(2)) != nil {
		t.Fatal("LRU victim survived")
	}
	if c.get(haddr(1)) == nil || c.get(haddr(3)) == nil || c.get(haddr(4)) == nil {
		t.Fatal("wrong node evicted")
	}
}

func TestNodeCacheOversizedRejected(t *testing.T) {
	c := newNodeCache(100)
	c.put(haddr(1), &internalNode{}, 500)
	if c.get(haddr(1)) != nil {
		t.Fatal("oversized entry must not be cached")
	}
	s := c.stats()
	if s.UsedBytes != 0 {
		t.Fatalf("used = %d", s.UsedBytes)
	}
}

func TestNodeCacheReplaceSameAddr(t *testing.T) {
	c := newNodeCache(1000)
	a := &internalNode{level: 1}
	b := &internalNode{level: 2}
	c.put(haddr(1), a, 100)
	c.put(haddr(1), b, 200)
	if got := c.get(haddr(1)); got == nil || got.level != 2 {
		t.Fatal("replacement not visible")
	}
	if s := c.stats(); s.UsedBytes != 200 || s.Nodes != 1 {
		t.Fatalf("accounting after replace: %+v", s)
	}
}

func TestFingerprintSpread(t *testing.T) {
	seen := map[uint16]int{}
	for k := uint64(0); k < 10000; k++ {
		seen[fingerprint(k)]++
	}
	// 10k keys over 64k fingerprint space: no value should repeat often.
	for fp, n := range seen {
		if n > 8 {
			t.Fatalf("fingerprint %#x repeats %d times", fp, n)
		}
	}
}
