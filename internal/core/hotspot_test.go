package core

import (
	"testing"

	"chime/internal/dmsim"
)

func haddr(off uint64) dmsim.GAddr { return dmsim.GAddr{Off: off} }

func TestHotspotRecordAndLookup(t *testing.T) {
	h := newHotspotBuffer(10 * hotspotEntryBytes)
	leaf := haddr(4096)
	h.record(leaf, 3, 0xABC)
	h.record(leaf, 3, 0xABC)
	h.record(leaf, 3, 0xABC)

	// Lookup within a neighborhood containing slot 3.
	if got := h.lookup(leaf, 0xABC, 0, 8, 64); got != 3 {
		t.Fatalf("lookup = %d, want 3", got)
	}
	// Wrong key (fingerprint mismatch) must miss.
	if got := h.lookup(leaf, 0xDEF, 0, 8, 64); got != -1 {
		t.Fatalf("foreign key hit slot %d", got)
	}
	// Neighborhood not covering slot 3 must miss.
	if got := h.lookup(leaf, 0xABC, 8, 8, 64); got != -1 {
		t.Fatalf("out-of-neighborhood hit %d", got)
	}
	// Different leaf must miss.
	if got := h.lookup(haddr(8192), 0xABC, 0, 8, 64); got != -1 {
		t.Fatalf("foreign leaf hit %d", got)
	}
}

func TestHotspotHottestWins(t *testing.T) {
	h := newHotspotBuffer(10 * hotspotEntryBytes)
	leaf := haddr(64)
	// Two keys in the same neighborhood with colliding... use the same
	// key recorded at two slots (it moved); the hotter slot must win.
	h.record(leaf, 2, 0x77)
	for i := 0; i < 5; i++ {
		h.record(leaf, 5, 0x77)
	}
	if got := h.lookup(leaf, 0x77, 0, 8, 64); got != 5 {
		t.Fatalf("hottest slot = %d, want 5", got)
	}
}

func TestHotspotFingerprintRefresh(t *testing.T) {
	h := newHotspotBuffer(10 * hotspotEntryBytes)
	leaf := haddr(64)
	for i := 0; i < 9; i++ {
		h.record(leaf, 1, 0xAAA)
	}
	// The slot's occupant changed: recording a different key must reset
	// the counter and refresh the fingerprint.
	h.record(leaf, 1, 0xBBB)
	if got := h.lookup(leaf, 0xAAA, 0, 8, 64); got != -1 {
		t.Fatal("stale fingerprint survived occupant change")
	}
	if got := h.lookup(leaf, 0xBBB, 0, 8, 64); got != 1 {
		t.Fatalf("new occupant not found: %d", got)
	}
}

func TestHotspotLFUEviction(t *testing.T) {
	h := newHotspotBuffer(2 * hotspotEntryBytes) // capacity 2
	leaf := haddr(64)
	for i := 0; i < 5; i++ {
		h.record(leaf, 0, 100) // hot
	}
	h.record(leaf, 1, 200) // cold
	h.record(leaf, 2, 300) // evicts the LFU (slot 1)
	if got := h.lookup(leaf, 100, 0, 8, 64); got != 0 {
		t.Fatal("hot entry evicted")
	}
	if got := h.lookup(leaf, 200, 0, 8, 64); got != -1 {
		t.Fatal("LFU entry survived past capacity")
	}
	st := h.stats()
	if st.Entries != 2 || st.Cap != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHotspotDisabled(t *testing.T) {
	h := newHotspotBuffer(0)
	h.record(haddr(64), 0, 1)
	if got := h.lookup(haddr(64), 1, 0, 8, 64); got != -1 {
		t.Fatal("disabled buffer must never hit")
	}
}

func TestHotspotDrop(t *testing.T) {
	h := newHotspotBuffer(4 * hotspotEntryBytes)
	leaf := haddr(64)
	h.record(leaf, 3, 9)
	h.drop(leaf, 3)
	if got := h.lookup(leaf, 9, 0, 8, 64); got != -1 {
		t.Fatal("dropped entry still resolvable")
	}
}

func TestNodeCacheLRUOrder(t *testing.T) {
	c := newNodeCache(3 * 100)
	n := &internalNode{valid: true}
	c.put(haddr(1), n, 100)
	c.put(haddr(2), n, 100)
	c.put(haddr(3), n, 100)
	// Touch 1 so 2 becomes LRU.
	if c.get(haddr(1)) == nil {
		t.Fatal("miss on resident node")
	}
	c.put(haddr(4), n, 100) // evicts 2
	if c.get(haddr(2)) != nil {
		t.Fatal("LRU victim survived")
	}
	if c.get(haddr(1)) == nil || c.get(haddr(3)) == nil || c.get(haddr(4)) == nil {
		t.Fatal("wrong node evicted")
	}
}

func TestNodeCacheOversizedRejected(t *testing.T) {
	c := newNodeCache(100)
	c.put(haddr(1), &internalNode{}, 500)
	if c.get(haddr(1)) != nil {
		t.Fatal("oversized entry must not be cached")
	}
	s := c.stats()
	if s.UsedBytes != 0 {
		t.Fatalf("used = %d", s.UsedBytes)
	}
}

func TestNodeCacheReplaceSameAddr(t *testing.T) {
	c := newNodeCache(1000)
	a := &internalNode{level: 1}
	b := &internalNode{level: 2}
	c.put(haddr(1), a, 100)
	c.put(haddr(1), b, 200)
	if got := c.get(haddr(1)); got == nil || got.level != 2 {
		t.Fatal("replacement not visible")
	}
	if s := c.stats(); s.UsedBytes != 200 || s.Nodes != 1 {
		t.Fatalf("accounting after replace: %+v", s)
	}
}

func TestFingerprintSpread(t *testing.T) {
	seen := map[uint16]int{}
	for k := uint64(0); k < 10000; k++ {
		seen[fingerprint(k)]++
	}
	// 10k keys over 64k fingerprint space: no value should repeat often.
	for fp, n := range seen {
		if n > 8 {
			t.Fatalf("fingerprint %#x repeats %d times", fp, n)
		}
	}
}
