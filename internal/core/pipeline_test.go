package core

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"

	"chime/internal/dmsim"
)

// TestSearchBatchMatchesSearch checks positional correctness of the
// pipelined multi-get against the synchronous path, across depths and
// with absent keys mixed in.
func TestSearchBatchMatchesSearch(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	const n = 3000
	for i := 1; i <= n; i++ {
		if err := cl.Insert(uint64(i)*5, val8(uint64(i)*11)); err != nil {
			t.Fatal(err)
		}
	}
	var keys []uint64
	for i := 0; i < 200; i++ {
		k := uint64(i*37%n+1) * 5
		if i%7 == 0 {
			k++ // absent: not a multiple of 5
		}
		keys = append(keys, k)
	}
	for _, depth := range []int{1, 2, 4, 8, 16, 64} {
		vals, errs := cl.SearchBatch(keys, depth)
		if len(vals) != len(keys) || len(errs) != len(keys) {
			t.Fatalf("depth %d: result length mismatch", depth)
		}
		for i, k := range keys {
			if k%5 != 0 {
				if !errors.Is(errs[i], ErrNotFound) {
					t.Fatalf("depth %d key %d: err = %v, want ErrNotFound", depth, k, errs[i])
				}
				continue
			}
			if errs[i] != nil {
				t.Fatalf("depth %d key %d: %v", depth, k, errs[i])
			}
			want := (k / 5) * 11
			if got := binary.LittleEndian.Uint64(vals[i]); got != want {
				t.Fatalf("depth %d key %d: value %d, want %d", depth, k, got, want)
			}
		}
	}
}

// TestSearchBatchIndirect exercises the posted indirect-block read leg.
func TestSearchBatchIndirect(t *testing.T) {
	opts := DefaultOptions()
	opts.Indirect = true
	opts.ValueSize = 64
	_, cl := newTestTree(t, opts)
	for i := 1; i <= 500; i++ {
		v := make([]byte, 64)
		binary.LittleEndian.PutUint64(v, uint64(i)*3)
		if err := cl.Insert(uint64(i), v); err != nil {
			t.Fatal(err)
		}
	}
	var keys []uint64
	for i := 1; i <= 100; i++ {
		keys = append(keys, uint64(i*4))
	}
	vals, errs := cl.SearchBatch(keys, 8)
	for i, k := range keys {
		if k <= 500 {
			if errs[i] != nil {
				t.Fatalf("key %d: %v", k, errs[i])
			}
			if got := binary.LittleEndian.Uint64(vals[i]); got != k*3 {
				t.Fatalf("key %d: value %d, want %d", k, got, k*3)
			}
		} else if !errors.Is(errs[i], ErrNotFound) {
			t.Fatalf("key %d: err = %v, want ErrNotFound", k, errs[i])
		}
	}
}

// TestSearchBatchPipelinesColdCache pins the tentpole speedup in
// virtual time: with a cold (disabled) internal-node cache every lookup
// pays full-depth round trips, and depth-8 pipelining must finish the
// batch in well under half the virtual time of depth-1.
func TestSearchBatchPipelinesColdCache(t *testing.T) {
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 512 << 20
	f := dmsim.MustNewFabric(cfg)
	ix, err := Bootstrap(f, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	loadCN := ix.NewComputeNode(64<<20, 0)
	loader := loadCN.NewClient()
	const n = 5000
	for i := 1; i <= n; i++ {
		if err := loader.Insert(uint64(i)*3, val8(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	var keys []uint64
	for i := 0; i < 256; i++ {
		keys = append(keys, uint64(i*19%n+1)*3)
	}

	elapsed := func(depth int) int64 {
		cn := ix.NewComputeNode(0, 0) // cold: cache disabled
		cl := cn.NewClient()
		start := cl.DM().Now()
		vals, errs := cl.SearchBatch(keys, depth)
		for i := range keys {
			if errs[i] != nil {
				t.Fatalf("depth %d key %d: %v", depth, keys[i], errs[i])
			}
			if binary.LittleEndian.Uint64(vals[i]) != keys[i]/3 {
				t.Fatalf("depth %d: wrong value for key %d", depth, keys[i])
			}
		}
		return cl.DM().Now() - start
	}

	seq := elapsed(1)
	pipe := elapsed(8)
	t.Logf("cold-cache batch of %d keys: depth-1 %dns, depth-8 %dns (%.2fx)",
		len(keys), seq, pipe, float64(seq)/float64(pipe))
	if pipe*2 >= seq {
		t.Fatalf("depth-8 pipelining too slow: %dns vs sequential %dns", pipe, seq)
	}
}

// TestSearchBatchUnderWriters races the pipelined reader against
// concurrent inserters (splits included); run with -race this also pins
// the shared cache/hotspot structures. Keys below the preload watermark
// must always be found with their original values.
func TestSearchBatchUnderWriters(t *testing.T) {
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 512 << 20
	f := dmsim.MustNewFabric(cfg)
	ix, err := Bootstrap(f, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cn := ix.NewComputeNode(4<<20, 0)
	loader := cn.NewClient()
	const stable = 2000
	for i := 1; i <= stable; i++ {
		if err := loader.Insert(uint64(i), val8(uint64(i)*7)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wr := cn.NewClient()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(stable + 1 + w*100000 + i)
				if err := wr.Insert(k, val8(k)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	reader := cn.NewClient()
	for round := 0; round < 30; round++ {
		var keys []uint64
		for i := 0; i < 64; i++ {
			keys = append(keys, uint64((round*64+i)%stable+1))
		}
		vals, errs := reader.SearchBatch(keys, 8)
		for i, k := range keys {
			if errs[i] != nil {
				t.Fatalf("round %d key %d: %v", round, k, errs[i])
			}
			if got := binary.LittleEndian.Uint64(vals[i]); got != k*7 {
				t.Fatalf("round %d key %d: value %d, want %d", round, k, got, k*7)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestSearchBatchEmptyAndDegenerate covers the trivial shapes.
func TestSearchBatchEmptyAndDegenerate(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	vals, errs := cl.SearchBatch(nil, 8)
	if len(vals) != 0 || len(errs) != 0 {
		t.Fatal("empty batch returned results")
	}
	if err := cl.Insert(9, val8(90)); err != nil {
		t.Fatal(err)
	}
	vals, errs = cl.SearchBatch([]uint64{9}, 0) // depth clamps to 1
	if errs[0] != nil || binary.LittleEndian.Uint64(vals[0]) != 90 {
		t.Fatalf("degenerate batch: vals=%v errs=%v", vals, errs)
	}
	if cl.DM().Inflight() != 0 {
		t.Fatalf("leaked %d in-flight verbs", cl.DM().Inflight())
	}
}
