package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"chime/internal/dmsim"
	"chime/internal/ycsb"
)

func testFabric(t *testing.T) *dmsim.Fabric {
	t.Helper()
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 512 << 20
	return dmsim.MustNewFabric(cfg)
}

func newTestTree(t *testing.T, opts Options) (*Index, *Client) {
	t.Helper()
	ix, err := Bootstrap(testFabric(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	cn := ix.NewComputeNode(64<<20, 1<<20)
	return ix, cn.NewClient()
}

func val8(x uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, x)
	return b
}

func TestBootstrapEmptySearch(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	if _, err := cl.Search(42); !errors.Is(err, ErrNotFound) {
		t.Fatalf("search on empty tree: %v, want ErrNotFound", err)
	}
}

func TestInsertSearchSingle(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	if err := cl.Insert(42, val8(4242)); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Search(42)
	if err != nil {
		t.Fatal(err)
	}
	if binary.LittleEndian.Uint64(got) != 4242 {
		t.Fatalf("value = %v", got)
	}
	if _, err := cl.Search(43); !errors.Is(err, ErrNotFound) {
		t.Fatalf("absent key: %v", err)
	}
}

func TestInsertUpsert(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	if err := cl.Insert(7, val8(1)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Insert(7, val8(2)); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Search(7)
	if err != nil {
		t.Fatal(err)
	}
	if binary.LittleEndian.Uint64(got) != 2 {
		t.Fatalf("upsert result = %v", got)
	}
}

func TestFillSingleLeaf(t *testing.T) {
	// Stay below one leaf's capacity: no splits involved.
	_, cl := newTestTree(t, DefaultOptions())
	r := rand.New(rand.NewSource(1))
	want := map[uint64]uint64{}
	for len(want) < 30 {
		k := r.Uint64()
		if err := cl.Insert(k, val8(k^0xFF)); err != nil {
			t.Fatal(err)
		}
		want[k] = k ^ 0xFF
	}
	for k, v := range want {
		got, err := cl.Search(k)
		if err != nil {
			t.Fatalf("Search(%#x): %v", k, err)
		}
		if binary.LittleEndian.Uint64(got) != v {
			t.Fatalf("Search(%#x) = %d, want %d", k, binary.LittleEndian.Uint64(got), v)
		}
	}
}

func TestInsertWithSplits(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	const n = 5000 // forces multiple levels of splits at span 64
	for i := uint64(0); i < n; i++ {
		k := ycsb.KeyOf(i)
		if err := cl.Insert(k, val8(i)); err != nil {
			t.Fatalf("insert %d (%#x): %v", i, k, err)
		}
	}
	for i := uint64(0); i < n; i++ {
		k := ycsb.KeyOf(i)
		got, err := cl.Search(k)
		if err != nil {
			t.Fatalf("search %d (%#x): %v", i, k, err)
		}
		if binary.LittleEndian.Uint64(got) != i {
			t.Fatalf("search %d = %d", i, binary.LittleEndian.Uint64(got))
		}
	}
}

func TestUpdateDelete(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	for i := uint64(0); i < 500; i++ {
		if err := cl.Insert(ycsb.KeyOf(i), val8(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Update half.
	for i := uint64(0); i < 500; i += 2 {
		if err := cl.Update(ycsb.KeyOf(i), val8(i+10000)); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	// Delete a quarter.
	for i := uint64(1); i < 500; i += 4 {
		if err := cl.Delete(ycsb.KeyOf(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	for i := uint64(0); i < 500; i++ {
		got, err := cl.Search(ycsb.KeyOf(i))
		switch {
		case i%4 == 1:
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("deleted key %d: %v", i, err)
			}
		case i%2 == 0:
			if err != nil || binary.LittleEndian.Uint64(got) != i+10000 {
				t.Fatalf("updated key %d: %v %v", i, got, err)
			}
		default:
			if err != nil || binary.LittleEndian.Uint64(got) != i {
				t.Fatalf("untouched key %d: %v %v", i, got, err)
			}
		}
	}
}

func TestUpdateMissing(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	if err := cl.Update(99, val8(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update missing: %v", err)
	}
	if err := cl.Delete(99); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete missing: %v", err)
	}
}

func TestDeleteThenReinsert(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	if err := cl.Insert(5, val8(1)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Delete(5); err != nil {
		t.Fatal(err)
	}
	if err := cl.Insert(5, val8(2)); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Search(5)
	if err != nil || binary.LittleEndian.Uint64(got) != 2 {
		t.Fatalf("reinserted: %v %v", got, err)
	}
}

func TestScanOrderedAcrossLeaves(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	const n = 2000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = ycsb.KeyOf(uint64(i))
		if err := cl.Insert(keys[i], val8(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	out, err := cl.Scan(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 100 {
		t.Fatalf("scan returned %d items", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].Key >= out[i].Key {
			t.Fatal("scan results not sorted")
		}
	}
	// Scan starting mid-range must begin at the right key.
	mid := out[50].Key
	out2, err := cl.Scan(mid, 10)
	if err != nil {
		t.Fatal(err)
	}
	if out2[0].Key != mid {
		t.Fatalf("scan from %#x starts at %#x", mid, out2[0].Key)
	}
	// Scanning past the end returns what exists.
	outAll, err := cl.Scan(0, n+500)
	if err != nil {
		t.Fatal(err)
	}
	if len(outAll) != n {
		t.Fatalf("full scan returned %d of %d", len(outAll), n)
	}
	if got, _ := cl.Scan(5, 0); got != nil {
		t.Fatal("count=0 scan must return nil")
	}
}

func TestSmallSpanWrapAround(t *testing.T) {
	// Small spans make wrap-around neighborhoods common (§4.4's corner
	// case and the Figure 18e note).
	o := DefaultOptions()
	o.SpanSize = 8
	o.Neighborhood = 4
	_, cl := newTestTree(t, o)
	for i := uint64(0); i < 1000; i++ {
		if err := cl.Insert(ycsb.KeyOf(i), val8(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := uint64(0); i < 1000; i++ {
		got, err := cl.Search(ycsb.KeyOf(i))
		if err != nil || binary.LittleEndian.Uint64(got) != i {
			t.Fatalf("search %d: %v %v", i, got, err)
		}
	}
}

func TestLargeSpanVacancyGrouping(t *testing.T) {
	// Span 128 > 48 vacancy bits: each bit covers several entries.
	o := DefaultOptions()
	o.SpanSize = 128
	o.Neighborhood = 8
	_, cl := newTestTree(t, o)
	for i := uint64(0); i < 2000; i++ {
		if err := cl.Insert(ycsb.KeyOf(i), val8(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := uint64(0); i < 2000; i++ {
		if _, err := cl.Search(ycsb.KeyOf(i)); err != nil {
			t.Fatalf("search %d: %v", i, err)
		}
	}
}

func TestAblationConfigs(t *testing.T) {
	// Every Figure 15 ablation must remain correct, just slower.
	configs := map[string]func(*Options){
		"no-piggyback":   func(o *Options) { o.PiggybackVacancy = false },
		"no-replication": func(o *Options) { o.ReplicateMeta = false },
		"no-speculation": func(o *Options) { o.SpeculativeRead = false },
	}
	for name, mutate := range configs {
		t.Run(name, func(t *testing.T) {
			o := DefaultOptions()
			mutate(&o)
			_, cl := newTestTree(t, o)
			for i := uint64(0); i < 800; i++ {
				if err := cl.Insert(ycsb.KeyOf(i), val8(i)); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
			}
			for i := uint64(0); i < 800; i++ {
				got, err := cl.Search(ycsb.KeyOf(i))
				if err != nil || binary.LittleEndian.Uint64(got) != i {
					t.Fatalf("search %d: %v %v", i, got, err)
				}
			}
		})
	}
}

func TestIndirectValues(t *testing.T) {
	o := DefaultOptions()
	o.Indirect = true
	o.ValueSize = 64
	_, cl := newTestTree(t, o)
	for i := uint64(0); i < 500; i++ {
		if err := cl.Insert(ycsb.KeyOf(i), ycsb.FillValue(ycsb.KeyOf(i), 64, 0)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 500; i++ {
		k := ycsb.KeyOf(i)
		got, err := cl.Search(k)
		if err != nil {
			t.Fatalf("search %d: %v", i, err)
		}
		want := ycsb.FillValue(k, 64, 0)
		if string(got) != string(want) {
			t.Fatalf("indirect value mismatch for %d", i)
		}
	}
	// Update rewrites the block pointer.
	k := ycsb.KeyOf(3)
	if err := cl.Update(k, ycsb.FillValue(k, 64, 1)); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Search(k)
	if err != nil || string(got) != string(ycsb.FillValue(k, 64, 1)) {
		t.Fatal("indirect update not visible")
	}
	// Scans resolve blocks too.
	out, err := cl.Scan(0, 10)
	if err != nil || len(out) != 10 {
		t.Fatalf("indirect scan: %d %v", len(out), err)
	}
}

func TestLargeInlineValues(t *testing.T) {
	o := DefaultOptions()
	o.ValueSize = 256
	_, cl := newTestTree(t, o)
	for i := uint64(0); i < 300; i++ {
		k := ycsb.KeyOf(i)
		if err := cl.Insert(k, ycsb.FillValue(k, 256, 0)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 300; i++ {
		k := ycsb.KeyOf(i)
		got, err := cl.Search(k)
		if err != nil || string(got) != string(ycsb.FillValue(k, 256, 0)) {
			t.Fatalf("256B value mismatch for %d: %v", i, err)
		}
	}
}

func TestValueSizeMismatchRejected(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	if err := cl.Insert(1, []byte("short")); err == nil {
		t.Fatal("wrong-size value must be rejected")
	}
}

func TestHotspotSpeculation(t *testing.T) {
	ix, cl := newTestTree(t, DefaultOptions())
	cn := cl.cn
	for i := uint64(0); i < 200; i++ {
		if err := cl.Insert(ycsb.KeyOf(i), val8(i)); err != nil {
			t.Fatal(err)
		}
	}
	hot := ycsb.KeyOf(17)
	for i := 0; i < 50; i++ {
		if _, err := cl.Search(hot); err != nil {
			t.Fatal(err)
		}
	}
	hs := cn.HotspotStats()
	if hs.Hits == 0 || hs.Speculations == 0 {
		t.Fatalf("hot key never hit the hotspot buffer: %+v", hs)
	}
	if hs.Correct < hs.Speculations*9/10 {
		t.Fatalf("speculation accuracy too low: %+v", hs)
	}
	_ = ix
}

func TestSpeculationAfterUpdateStaysCorrect(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	k := ycsb.KeyOf(5)
	if err := cl.Insert(k, val8(1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := cl.Search(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Update(k, val8(99)); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Search(k)
	if err != nil || binary.LittleEndian.Uint64(got) != 99 {
		t.Fatalf("speculative read returned stale value: %v %v", got, err)
	}
}

func TestCacheStatsAndConsumption(t *testing.T) {
	ix, cl := newTestTree(t, DefaultOptions())
	for i := uint64(0); i < 3000; i++ {
		if err := cl.Insert(ycsb.KeyOf(i), val8(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 3000; i++ {
		if _, err := cl.Search(ycsb.KeyOf(i)); err != nil {
			t.Fatal(err)
		}
	}
	cs := cl.cn.CacheStats()
	if cs.Nodes == 0 || cs.UsedBytes == 0 {
		t.Fatalf("internal nodes never cached: %+v", cs)
	}
	if cs.UsedBytes != int64(cs.Nodes)*int64(ix.InternalNodeSize()) {
		t.Fatalf("cache accounting: %d nodes, %d bytes, node size %d",
			cs.Nodes, cs.UsedBytes, ix.InternalNodeSize())
	}
	if cs.Hits == 0 {
		t.Fatal("repeated searches must hit the cache")
	}
}

func TestTinyCacheStillCorrect(t *testing.T) {
	ix, err := Bootstrap(testFabric(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cn := ix.NewComputeNode(0, 0) // no cache at all
	cl := cn.NewClient()
	for i := uint64(0); i < 1500; i++ {
		if err := cl.Insert(ycsb.KeyOf(i), val8(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 1500; i++ {
		got, err := cl.Search(ycsb.KeyOf(i))
		if err != nil || binary.LittleEndian.Uint64(got) != i {
			t.Fatalf("uncached search %d: %v %v", i, got, err)
		}
	}
	if cs := cn.CacheStats(); cs.Nodes != 0 {
		t.Fatalf("budget-0 cache stored %d nodes", cs.Nodes)
	}
}

func TestMultiMNPlacement(t *testing.T) {
	cfg := dmsim.DefaultConfig()
	cfg.MNs = 4
	cfg.MNSize = 128 << 20
	f := dmsim.MustNewFabric(cfg)
	ix, err := Bootstrap(f, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cl := ix.NewComputeNode(16<<20, 0).NewClient()
	for i := uint64(0); i < 4000; i++ {
		if err := cl.Insert(ycsb.KeyOf(i), val8(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 4000; i++ {
		if _, err := cl.Search(ycsb.KeyOf(i)); err != nil {
			t.Fatalf("search %d: %v", i, err)
		}
	}
}

// TestConcurrentInsertsDisjoint is the core integration test: many
// clients, disjoint key ranges, shared tree — no insert may be lost and
// every optimistic-synchronization path gets hammered for real.
func TestConcurrentInsertsDisjoint(t *testing.T) {
	ix, err := Bootstrap(testFabric(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cn := ix.NewComputeNode(64<<20, 1<<20)
	const clients, perClient = 8, 400
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := cn.NewClient()
			for i := 0; i < perClient; i++ {
				id := uint64(c*perClient + i)
				if err := cl.Insert(ycsb.KeyOf(id), val8(id)); err != nil {
					errs <- fmt.Errorf("client %d insert %d: %w", c, i, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	cl := cn.NewClient()
	for id := uint64(0); id < clients*perClient; id++ {
		got, err := cl.Search(ycsb.KeyOf(id))
		if err != nil {
			t.Fatalf("lost insert %d: %v", id, err)
		}
		if binary.LittleEndian.Uint64(got) != id {
			t.Fatalf("insert %d corrupted: %v", id, got)
		}
	}
}

// TestConcurrentReadWriteConsistency checks the read side of the
// three-level synchronization: readers racing updaters on hot keys must
// only ever observe values some writer actually wrote.
func TestConcurrentReadWriteConsistency(t *testing.T) {
	ix, err := Bootstrap(testFabric(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cn := ix.NewComputeNode(64<<20, 1<<20)
	loader := cn.NewClient()
	const hotKeys = 32
	for i := uint64(0); i < hotKeys; i++ {
		if err := loader.Insert(ycsb.KeyOf(i), val8(i<<32)); err != nil {
			t.Fatal(err)
		}
	}

	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 16)

	// Writers: value encodes (key, version) so readers can validate.
	for w := 0; w < 3; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			cl := cn.NewClient()
			r := rand.New(rand.NewSource(int64(w)))
			for v := uint64(1); ; v++ {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(r.Intn(hotKeys))
				if err := cl.Update(ycsb.KeyOf(k), val8(k<<32|v)); err != nil {
					errs <- fmt.Errorf("writer: %w", err)
					return
				}
			}
		}(w)
	}
	// Readers: the high 32 bits must always equal the key id.
	for rd := 0; rd < 5; rd++ {
		readers.Add(1)
		go func(rd int) {
			defer readers.Done()
			cl := cn.NewClient()
			r := rand.New(rand.NewSource(int64(100 + rd)))
			for i := 0; i < 3000; i++ {
				k := uint64(r.Intn(hotKeys))
				got, err := cl.Search(ycsb.KeyOf(k))
				if err != nil {
					errs <- fmt.Errorf("reader: %w", err)
					return
				}
				if binary.LittleEndian.Uint64(got)>>32 != k {
					errs <- fmt.Errorf("reader saw torn value %x for key %d", got, k)
					return
				}
			}
		}(rd)
	}

	readers.Wait()
	close(stop)
	writers.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentMixedWorkload runs inserts, updates, deletes and scans
// together and then verifies a shadow model built from per-key
// single-writer ownership.
func TestConcurrentMixedWorkload(t *testing.T) {
	ix, err := Bootstrap(testFabric(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cn := ix.NewComputeNode(64<<20, 1<<20)
	const clients, perClient = 6, 300
	finals := make([]map[uint64]uint64, clients) // key -> final value (0 = deleted)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := cn.NewClient()
			r := rand.New(rand.NewSource(int64(c)))
			mine := map[uint64]uint64{}
			for i := 0; i < perClient; i++ {
				id := uint64(c)<<32 | uint64(r.Intn(perClient))
				k := ycsb.KeyOf(id)
				switch r.Intn(10) {
				case 0, 1, 2, 3, 4, 5: // insert/overwrite
					v := uint64(i) + 1
					if err := cl.Insert(k, val8(v)); err != nil {
						errs <- err
						return
					}
					mine[k] = v
				case 6, 7: // delete
					err := cl.Delete(k)
					if err != nil && !errors.Is(err, ErrNotFound) {
						errs <- err
						return
					}
					delete(mine, k)
				case 8: // read own key
					got, err := cl.Search(k)
					if want, ok := mine[k]; ok {
						if err != nil || binary.LittleEndian.Uint64(got) != want {
							errs <- fmt.Errorf("own key %#x = %v,%v want %d", k, got, err, want)
							return
						}
					} else if !errors.Is(err, ErrNotFound) && err != nil {
						errs <- err
						return
					}
				case 9: // scan
					if _, err := cl.Scan(k, 20); err != nil {
						errs <- fmt.Errorf("scan: %w", err)
						return
					}
				}
			}
			finals[c] = mine
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	cl := cn.NewClient()
	for c, mine := range finals {
		for k, want := range mine {
			got, err := cl.Search(k)
			if err != nil {
				t.Fatalf("client %d key %#x lost: %v", c, k, err)
			}
			if binary.LittleEndian.Uint64(got) != want {
				t.Fatalf("client %d key %#x = %v, want %d", c, k, got, want)
			}
		}
	}
}

func TestTripsPerOperationMatchTable1(t *testing.T) {
	// Table 1 best case (all internal nodes cached): search 1–2 trips,
	// insert 3, update 3–4.
	_, cl := newTestTree(t, DefaultOptions())
	for i := uint64(0); i < 3000; i++ {
		if err := cl.Insert(ycsb.KeyOf(i), val8(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the cache fully.
	for i := uint64(0); i < 3000; i++ {
		if _, err := cl.Search(ycsb.KeyOf(i)); err != nil {
			t.Fatal(err)
		}
	}

	trips := func(f func()) int64 {
		before := cl.DM().Stats().Trips
		f()
		return cl.DM().Stats().Trips - before
	}

	// A cold key (not in the hotspot buffer) with a warm node cache.
	k := ycsb.KeyOf(1234)
	got := trips(func() {
		if _, err := cl.Search(k); err != nil {
			t.Fatal(err)
		}
	})
	if got < 1 || got > 2 {
		t.Errorf("search best-case trips = %d, want 1-2", got)
	}

	got = trips(func() {
		if err := cl.Update(k, val8(1)); err != nil {
			t.Fatal(err)
		}
	})
	if got < 3 || got > 4 {
		t.Errorf("update best-case trips = %d, want 3-4", got)
	}

	// Fresh key insert with no split.
	got = trips(func() {
		if err := cl.Insert(ycsb.KeyOf(999999), val8(1)); err != nil {
			t.Fatal(err)
		}
	})
	if got < 3 || got > 4 {
		t.Errorf("insert best-case trips = %d, want 3 (4 with allocation)", got)
	}
}
