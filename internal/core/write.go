package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"chime/internal/dmsim"
	"chime/internal/hopscotch"
	"chime/internal/obs"
)

// This file implements CHIME's write path (§4.4): lock-based writes with
// vacancy-bitmap piggybacking, hop-range inserts, entry-granular updates
// and deletes, and node splits with Sherman-style up-propagation.

// acquireLeafLock locks a leaf. Same-CN contention is absorbed by the
// local lock table (Sherman's design, which CHIME inherits — §2.2): a
// local handover delivers the lock together with the current lock-word
// payload and costs no network traffic. The first local contender takes
// the remote lock with the masked-CAS piggyback protocol (§4.2.1):
// compare only the lock bit, swap the whole word, and receive the
// previous word — which carries the vacancy bitmap and argmax for free.
// With the PiggybackVacancy ablation disabled, a plain lock CAS is
// followed by a dedicated READ of the word (the extra access Figure 4a
// measures).
func (c *Client) acquireLeafLock(leaf dmsim.GAddr) (lockWord, error) {
	// Everything until the lock is held — local handover waits, lock
	// CAS round trips, contention backoff — is lock time in the flight
	// ledger.
	fl := c.dc.Flight()
	defer fl.SetPhase(fl.SetPhase(obs.PhaseLockBackoff))
	if c.ix.opts.LeaseLocks {
		return c.acquireLeafLease(leaf)
	}
	if word, handover := c.cn.locks.Acquire(c.dc, leaf.Pack()); handover {
		return decodeLockWord(word), nil
	}
	addr := leafLockAddr(leaf)
	for try := 0; try < maxRetries; try++ {
		if c.ix.opts.PiggybackVacancy {
			prev, ok, err := c.dc.MaskedCAS(addr, 0, lockBit, lockBit, ^uint64(0))
			if err != nil {
				return lockWord{}, err
			}
			if ok {
				c.resetBackoff()
				return decodeLockWord(prev), nil
			}
		} else {
			_, ok, err := c.dc.MaskedCAS(addr, 0, lockBit, lockBit, lockBit)
			if err != nil {
				return lockWord{}, err
			}
			if ok {
				var b [8]byte
				if err := c.dc.Read(addr, b[:]); err != nil {
					return lockWord{}, err
				}
				c.resetBackoff()
				return decodeLockWord(binary.LittleEndian.Uint64(b[:])), nil
			}
		}
		c.obs.LockBackoffs.Inc()
		c.yield()
	}
	return lockWord{}, fmt.Errorf("core: leaf %v: lock acquisition starved", leaf)
}

func encodeLockBytes(lw lockWord) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], lw.encode())
	return b[:]
}

// unlockLeaf releases the lock. When a same-CN contender is queued the
// lock is handed over locally — the remote word stays locked and the
// payload (vacancy bitmap, argmax) travels with it; otherwise the
// updated word is written back with the lock bit cleared.
func (c *Client) unlockLeaf(leaf dmsim.GAddr, lw lockWord) error {
	if c.ix.opts.LeaseLocks {
		// Lease mode bypasses the local lock table (recovery.go): write
		// the payload back with the lock bit (and our lease) cleared.
		lw.locked = false
		return c.dc.Write(leafLockAddr(leaf), encodeLockBytes(lw))
	}
	lw.locked = true
	if c.cn.locks.ReleaseHandover(c.dc, leaf.Pack(), lw.encode()) {
		return nil
	}
	lw.locked = false
	if err := c.dc.Write(leafLockAddr(leaf), encodeLockBytes(lw)); err != nil {
		return err
	}
	c.cn.locks.ReleaseRemote(c.dc, leaf.Pack())
	return nil
}

// postWriteRangesAndUnlock posts the modified image ranges together
// with the cleared lock word as ONE doorbell batch and returns the
// completion without polling: a single round trip whose latency
// pipelined callers overlap with other keys' work. dmsim moves data at
// post time, so the remote lock is observably released the moment this
// returns; the local lock-table slot is cleared for the same reason.
// Callers that need a local handover (HasWaiters) must not use this —
// the handover keeps the remote word locked.
func (c *Client) postWriteRangesAndUnlock(leaf dmsim.GAddr, im *leafImage, ranges []byteRange, lw lockWord) (*dmsim.Completion, error) {
	addrs := make([]dmsim.GAddr, 0, len(ranges)+1)
	bufs := make([][]byte, 0, len(ranges)+1)
	for _, r := range ranges {
		if r.size() <= 0 {
			continue
		}
		addrs = append(addrs, leaf.Add(uint64(r.Off)))
		bufs = append(bufs, im.buf[r.Off:r.End])
	}
	lw.locked = false
	addrs = append(addrs, leafLockAddr(leaf))
	bufs = append(bufs, encodeLockBytes(lw))
	h, err := c.dc.PostWriteBatch(addrs, bufs)
	if err != nil {
		return nil, err
	}
	c.cn.locks.ReleaseRemote(c.dc, leaf.Pack())
	return h, nil
}

// writeRangeAndUnlock writes a contiguous image range back and releases
// the lock. With no local contender the unlock word joins the data in
// one doorbell batch — the combined WRITE pattern CHIME borrows from
// Sherman, costing a single round trip. With a local contender queued,
// only the data is written and the lock is handed over locally.
func (c *Client) writeRangeAndUnlock(leaf dmsim.GAddr, im *leafImage, ranges []byteRange, lw lockWord) error {
	if c.cn.locks.HasWaiters(leaf.Pack()) {
		addrs := make([]dmsim.GAddr, 0, len(ranges))
		bufs := make([][]byte, 0, len(ranges))
		for _, r := range ranges {
			if r.size() <= 0 {
				continue
			}
			addrs = append(addrs, leaf.Add(uint64(r.Off)))
			bufs = append(bufs, im.buf[r.Off:r.End])
		}
		if len(addrs) > 0 {
			if err := c.dc.WriteBatch(addrs, bufs); err != nil {
				return err
			}
		}
		lw.locked = true
		if c.cn.locks.ReleaseHandover(c.dc, leaf.Pack(), lw.encode()) {
			return nil
		}
		// The queued waiter vanished between the check and the handover
		// (cannot happen today — waiters never abandon — but stay safe):
		// fall through to a remote unlock.
		lw.locked = false
		if err := c.dc.Write(leafLockAddr(leaf), encodeLockBytes(lw)); err != nil {
			return err
		}
		c.cn.locks.ReleaseRemote(c.dc, leaf.Pack())
		return nil
	}
	h, err := c.postWriteRangesAndUnlock(leaf, im, ranges, lw)
	if err != nil {
		return err
	}
	c.dc.Poll(h)
	return nil
}

// Insert adds or overwrites a key (upsert semantics, as YCSB inserts
// and loads expect).
func (c *Client) Insert(key uint64, value []byte) error {
	if sp := c.obs.Tracer.Begin("chime.insert", "idx", c.dc.ID(), c.dc.Now()); sp != nil {
		defer func() { sp.End(c.dc.Now()) }()
	}
	if fl := c.dc.Flight(); fl != nil {
		fl.Begin(obs.OpInsert, c.dc.Now())
		defer func() { fl.End(c.dc.Now()) }()
	}
	val, err := c.prepareValue(key, value)
	if err != nil {
		return err
	}
	return c.insertWith(key, func([]byte, bool) ([]byte, error) { return val, nil })
}

// insertWith runs the insert protocol with a value callback: valFn is
// invoked under the leaf lock with the existing stored bytes (exists
// true) for an upsert, or (nil, false) for a fresh placement, and
// returns the bytes to store. Variable-length-key chains (§4.5) use the
// callback to splice blocks atomically.
func (c *Client) insertWith(key uint64, valFn func(old []byte, exists bool) ([]byte, error)) error {
	for attempt := 0; attempt < maxRetries; attempt++ {
		ref, err := c.traverse(key)
		if err != nil {
			return err
		}
		done, err := c.insertIntoLeaf(ref, key, valFn)
		if err == errRestart {
			// The leaf moved under us (split/delete). Re-read the super
			// block too: when the root itself was a leaf that split, the
			// cached root pointer is what went stale.
			c.obs.Retries.Inc()
			c.rootAddr = dmsim.NilGAddr
			c.yield()
			continue
		}
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		// A split happened; retraverse and retry.
	}
	return fmt.Errorf("core: Insert(%#x): retries exhausted", key)
}

// prepareValue returns the bytes stored in the leaf entry: the value
// itself, or a pointer to a freshly written KV block in indirect mode.
func (c *Client) prepareValue(key uint64, value []byte) ([]byte, error) {
	if !c.ix.opts.Indirect {
		if len(value) != c.ix.opts.ValueSize {
			return nil, fmt.Errorf("core: value is %dB, tree stores %dB", len(value), c.ix.opts.ValueSize)
		}
		return value, nil
	}
	block := make([]byte, 8+len(value))
	binary.LittleEndian.PutUint64(block[:8], key)
	copy(block[8:], value)
	addr, err := c.alloc.Alloc(len(block))
	if err != nil {
		return nil, err
	}
	if err := c.dc.Write(addr, block); err != nil {
		return nil, err
	}
	ptr := make([]byte, 8)
	binary.LittleEndian.PutUint64(ptr, addr.Pack())
	return ptr, nil
}

// invalidateRefParent drops the cached parent a leafRef was resolved
// through; stale parents must leave the cache or they re-route every
// retry to the same outdated leaf.
func (c *Client) invalidateRefParent(ref leafRef) {
	if ref.parentFromCache && !ref.parentAddr.IsNil() {
		c.cn.cache.invalidate(ref.parentAddr)
	}
}

// insertIntoLeaf performs the §4.4 insert protocol on one leaf. It
// returns done=false when it split the node (the caller retries), and
// errRestart when the key belongs elsewhere (stale ref).
func (c *Client) insertIntoLeaf(ref leafRef, key uint64, valFn func([]byte, bool) ([]byte, error)) (done bool, err error) {
	lay := c.ix.leaf
	lw, err := c.acquireLeafLock(ref.addr)
	if err != nil {
		return false, err
	}
	// From here every early exit must unlock.
	home := lay.homeOf(key)

	im, fetched, full, metaG, err := c.fetchInsertWindow(ref.addr, home, lw)
	if err != nil {
		c.unlockLeaf(ref.addr, lw)
		return false, err
	}
	// Every write verb below copies out of the image at post time, so the
	// buffer can be recycled on any exit (split paths included).
	defer func() { lay.putImage(im) }()

	// Validate that this leaf still covers the key (half-split during
	// our traversal): the lock is held, so the metadata is stable.
	meta := im.meta(metaG)
	if !meta.valid {
		c.unlockLeaf(ref.addr, lw)
		c.invalidateRefParent(ref)
		return false, errRestart
	}
	if ref.expectedKnown && meta.sibling != ref.expected && ref.parentFromCache {
		// Cache validation (§4.2.3): the cached parent predates a split.
		c.unlockLeaf(ref.addr, lw)
		c.invalidateRefParent(ref)
		return false, errRestart
	}
	if !meta.fenceInf && key >= meta.fenceHi {
		// The key moved right; §4.2.3's corner case. With the argmax we
		// could test the split node's max key, but the fenceHigh replica
		// answers directly: release, drop any stale cached parent (or it
		// would route us straight back here), and retraverse.
		c.unlockLeaf(ref.addr, lw)
		c.invalidateRefParent(ref)
		return false, errRestart
	}

	// Upsert: if the key already exists in its neighborhood, update it.
	for d := 0; d < lay.h; d++ {
		i := (home + d) % lay.span
		if !fetched[i] {
			continue
		}
		if e := im.entry(i); e.occupied && e.key == key {
			val, err := valFn(e.value, true)
			if err != nil {
				c.unlockLeaf(ref.addr, lw)
				return false, err
			}
			e.value = val
			im.setEntry(i, e)
			cellC := lay.entryCells[i]
			err = c.writeRangeAndUnlock(ref.addr, im, []byteRange{{Off: cellC.Off, End: cellC.End()}}, lw)
			return true, err
		}
	}

	// Hop planning over the fetched occupancy; unfetched slots are
	// treated as occupied-and-immovable, which is exact for every slot
	// the plan may touch (see fetchInsertWindow).
	moves, free, planErr := hopscotch.Plan(lay.span, lay.h, home,
		func(i int) bool {
			if !fetched[i] {
				return true
			}
			return im.entry(i).occupied
		},
		func(i int) int {
			if !fetched[i] {
				return i
			}
			return lay.homeOf(im.entry(i).key)
		},
	)
	if planErr != nil && !full {
		// The conservative window could not prove a feasible hop; fetch
		// the whole node and re-plan with exact occupancy.
		lay.putImage(im)
		im, fetched, metaG, err = c.fetchWholeLeaf(ref.addr)
		if err != nil {
			c.unlockLeaf(ref.addr, lw)
			return false, err
		}
		full = true
		meta = im.meta(metaG)
		moves, free, planErr = hopscotch.Plan(lay.span, lay.h, home,
			func(i int) bool { return im.entry(i).occupied },
			func(i int) int { return lay.homeOf(im.entry(i).key) },
		)
	}
	if planErr != nil {
		// Genuinely no room: split the node (unlocks internally).
		if err := c.splitLeaf(ref, im, meta, lw, key); err != nil {
			return false, err
		}
		return false, nil
	}

	val, err := valFn(nil, false)
	if err != nil {
		c.unlockLeaf(ref.addr, lw)
		return false, err
	}
	changed := c.applyHops(im, moves, free, home, key, val)

	// Lock-word bookkeeping (§4.2.1, §4.2.3): vacancy bit of the filled
	// slot's group, and the argmax index.
	lw.vacancy = c.updateVacancy(im, fetched, lw.vacancy, free)
	c.updateArgmaxOnInsert(&lw, im, fetched, free, key)

	ranges := c.changedRanges(changed, home)
	if err := c.writeRangeAndUnlock(ref.addr, im, ranges, lw); err != nil {
		return false, err
	}
	return true, nil
}

// fetchInsertWindow reads the insert working set in one round trip: the
// neighborhood of home extended through the first vacancy-bitmap group
// that may contain an empty slot, plus the argmax entry when it falls
// outside (fetched in the same doorbell batch). It returns the image,
// a per-entry fetched mask, whether the whole node was read, and the
// metadata replica group.
func (c *Client) fetchInsertWindow(leaf dmsim.GAddr, home int, lw lockWord) (*leafImage, []bool, bool, int, error) {
	lay := c.ix.leaf

	// Walk vacancy groups forward from home's group looking for a group
	// that may contain an empty slot.
	count := c.probeCount(home, lw.vacancy)
	if count >= lay.span {
		im, fetched, metaG, err := c.fetchWholeLeaf(leaf)
		return im, fetched, true, metaG, err
	}
	if count < lay.h {
		count = lay.h
	}

	segs, idxs := lay.neighborhoodSegments(home, count, c.ix.opts.ReplicateMeta)
	ranges := segs

	// Include the argmax entry in the same batch when it is outside the
	// window (no extra round trip; §4.2.3).
	fetchedSet := make(map[int]bool, len(idxs))
	for _, i := range idxs {
		fetchedSet[i] = true
	}
	if lw.argmaxValid && !fetchedSet[lw.argmax] && lw.argmax < lay.span {
		cellC := lay.entryCells[lw.argmax]
		ranges = append(append([]byteRange{}, segs...), byteRange{Off: cellC.Off, End: cellC.End()})
		fetchedSet[lw.argmax] = true
	}

	// Pooled image: only the fetched ranges are ever decoded or written
	// back (the fetched mask gates every consumer), so a recycled buffer's
	// stale bytes are unreachable.
	im := lay.getImage()
	for try := 0; try < maxRetries; try++ {
		addrs := make([]dmsim.GAddr, 0, len(ranges)+1)
		bufs := make([][]byte, 0, len(ranges)+1)
		for _, r := range ranges {
			addrs = append(addrs, leaf.Add(uint64(r.Off)))
			bufs = append(bufs, im.buf[r.Off:r.End])
		}
		var err error
		if len(addrs) == 1 {
			err = c.dc.Read(addrs[0], bufs[0])
		} else {
			err = c.dc.ReadBatch(addrs, bufs)
		}
		if err != nil {
			lay.putImage(im)
			return nil, nil, false, 0, err
		}

		checkRanges := ranges
		metaG := lay.metaInRanges(checkRanges)
		if !c.ix.opts.ReplicateMeta || metaG < 0 {
			rc := lay.replicaCells[0]
			if err := c.dc.Read(leaf.Add(uint64(rc.Off)), im.buf[rc.Off:rc.End()]); err != nil {
				lay.putImage(im)
				return nil, nil, false, 0, err
			}
			metaG = 0
			checkRanges = append(append([]byteRange{}, ranges...), byteRange{Off: rc.Off, End: rc.End()})
		}
		// We hold the lock, so no writer races us; a version mismatch
		// can only come from our own read tearing against nothing —
		// still validate for defense in depth.
		if err := checkVersions(im.buf, 0, lay.coveredCells(checkRanges)); err != nil {
			c.obs.TornReads.Inc()
			c.yield()
			continue
		}
		fetched := make([]bool, lay.span)
		for i := range fetchedSet {
			fetched[i] = true
		}
		return im, fetched, false, metaG, nil
	}
	lay.putImage(im)
	return nil, nil, false, 0, fmt.Errorf("core: leaf %v: insert window retries exhausted", leaf)
}

// probeCount returns how many entries past home must be fetched so that
// the first truly-empty slot (per the vacancy bitmap) is covered, or
// span when every group advertises full.
func (c *Client) probeCount(home int, vacancy uint64) int {
	lay := c.ix.leaf
	groups, perBit := lay.vacGroups, lay.vacPerBit
	g := groupOf(home, perBit)
	for step := 0; step < groups; step++ {
		gg := (g + step) % groups
		if vacancy&(1<<uint(gg)) == 0 {
			_, hi := groupRange(gg, perBit, lay.span)
			count := ((hi - 1 - home + lay.span) % lay.span) + 1
			if step == 0 && perBit > 1 {
				// The home group's free slot may precede home; make the
				// window also cover the next group so the probe usually
				// still lands inside the fetch (whole-node fallback
				// otherwise).
				g2 := (gg + 1) % groups
				_, hi2 := groupRange(g2, perBit, lay.span)
				count = ((hi2 - 1 - home + lay.span) % lay.span) + 1
			}
			if count > lay.span {
				count = lay.span
			}
			return count
		}
	}
	return lay.span
}

// fetchWholeLeaf reads the complete leaf image (splits and fallbacks).
func (c *Client) fetchWholeLeaf(leaf dmsim.GAddr) (*leafImage, []bool, int, error) {
	lay := c.ix.leaf
	im := lay.getImage()
	// A recycled buffer carries a stale lock line; the read below only
	// fills the cell region, so clear the first line to match a fresh
	// image (split paths encode over the whole buffer).
	for i := range im.buf[:lineSize] {
		im.buf[i] = 0
	}
	for try := 0; try < maxRetries; try++ {
		if err := c.dc.Read(leaf.Add(lineSize), im.buf[lineSize:]); err != nil {
			lay.putImage(im)
			return nil, nil, 0, err
		}
		if err := checkVersions(im.buf, 0, lay.allCells); err != nil {
			c.obs.TornReads.Inc()
			c.yield()
			continue
		}
		fetched := make([]bool, lay.span)
		for i := range fetched {
			fetched[i] = true
		}
		return im, fetched, 0, nil
	}
	lay.putImage(im)
	return nil, nil, 0, fmt.Errorf("core: leaf %v: whole-node read retries exhausted", leaf)
}

// applyHops executes the hop moves on the local image, inserts the key
// at the freed slot, and returns the indexes of all modified entries.
// Hop-entry modifications bump entry-level versions; readers detect the
// intermediate states via the reused-hopscotch-bitmap check (§4.1.2).
func (c *Client) applyHops(im *leafImage, moves []hopscotch.Move, free, home int, key uint64, val []byte) []int {
	lay := im.lay
	changedSet := map[int]bool{}
	for _, m := range moves {
		e := im.entry(m.From)
		kHome := lay.homeOf(e.key)

		// Relocate the key: clear source, fill target.
		target := im.entry(m.To)
		target.occupied = true
		target.key = e.key
		target.value = e.value
		im.setEntry(m.To, target)

		src := im.entry(m.From)
		src.occupied = false
		im.setEntry(m.From, src)

		// Update the hopscotch bitmap in the key's home entry.
		hEntry := im.entry(kHome)
		dOld := ((m.From-kHome)%lay.span + lay.span) % lay.span
		dNew := ((m.To-kHome)%lay.span + lay.span) % lay.span
		hEntry.hopBM &^= 1 << uint(dOld)
		hEntry.hopBM |= 1 << uint(dNew)
		im.setEntry(kHome, hEntry)

		changedSet[m.From] = true
		changedSet[m.To] = true
		changedSet[kHome] = true
	}

	e := im.entry(free)
	e.occupied = true
	e.key = key
	e.value = val
	im.setEntry(free, e)
	hEntry := im.entry(home)
	d := ((free-home)%lay.span + lay.span) % lay.span
	hEntry.hopBM |= 1 << uint(d)
	im.setEntry(home, hEntry)
	changedSet[free] = true
	changedSet[home] = true

	changed := make([]int, 0, len(changedSet))
	for i := range changedSet {
		changed = append(changed, i)
	}
	sort.Ints(changed)
	return changed
}

// changedRanges converts modified entry indexes into 1–2 contiguous
// write-back byte ranges. The fetched window is circularly contiguous
// starting at home, so indexes >= home belong to the window's first
// (high) segment and indexes < home to its wrapped (low) segment;
// splitting there guarantees every byte written back — including
// untouched cells between changed ones — was fetched. Safe under the
// node lock.
func (c *Client) changedRanges(changed []int, home int) []byteRange {
	lay := c.ix.leaf
	if len(changed) == 0 {
		return nil
	}
	var high, low []int // sorted input keeps each part sorted
	for _, i := range changed {
		if i >= home {
			high = append(high, i)
		} else {
			low = append(low, i)
		}
	}
	var ranges []byteRange
	for _, run := range [][]int{high, low} {
		if len(run) == 0 {
			continue
		}
		lo := lay.entryCells[run[0]].Off
		hi := lay.entryCells[run[len(run)-1]].End()
		ranges = append(ranges, byteRange{Off: lo, End: hi})
	}
	return ranges
}

// updateVacancy recomputes the vacancy bit of the group containing the
// filled slot. A bit is set ("full") only when the writer can prove
// every entry of the group is occupied from fetched data; otherwise it
// stays conservative at 0.
func (c *Client) updateVacancy(im *leafImage, fetched []bool, vacancy uint64, filled int) uint64 {
	lay := c.ix.leaf
	g := groupOf(filled, lay.vacPerBit)
	lo, hi := groupRange(g, lay.vacPerBit, lay.span)
	for i := lo; i < hi; i++ {
		if !fetched[i] || !im.entry(i).occupied {
			return vacancy &^ (1 << uint(g))
		}
	}
	return vacancy | (1 << uint(g))
}

// updateArgmaxOnInsert maintains the argmax-of-keys field (§4.2.3).
func (c *Client) updateArgmaxOnInsert(lw *lockWord, im *leafImage, fetched []bool, slot int, key uint64) {
	if !lw.argmaxValid {
		return // recomputed at the next node write
	}
	if lw.argmax >= c.ix.leaf.span || !fetched[lw.argmax] {
		lw.argmaxValid = false
		return
	}
	cur := im.entry(lw.argmax)
	if !cur.occupied {
		// The tracked max was removed without invalidation (shouldn't
		// happen, but stay safe).
		lw.argmaxValid = false
		return
	}
	if key > cur.key {
		lw.argmax = slot
	}
}

// updateOneSided overwrites the value of an existing key with one-sided
// verbs only; the public Update (offload.go) routes between this and
// the MN-side offload program.
func (c *Client) updateOneSided(key uint64, value []byte) error {
	val, err := c.prepareValue(key, value)
	if err != nil {
		return err
	}
	return c.modifyEntry(key, func(e *leafEntry) (bool, error) {
		e.value = val
		return true, nil
	})
}

// Delete removes a key, returning ErrNotFound if it is absent. Per
// §4.4, a delete clears the target entry via the update path; leaf
// merges are not triggered (structural merging is a rare path the paper
// inherits from DM B+ trees).
func (c *Client) Delete(key uint64) error {
	if sp := c.obs.Tracer.Begin("chime.delete", "idx", c.dc.ID(), c.dc.Now()); sp != nil {
		defer func() { sp.End(c.dc.Now()) }()
	}
	if fl := c.dc.Flight(); fl != nil {
		fl.Begin(obs.OpDelete, c.dc.Now())
		defer func() { fl.End(c.dc.Now()) }()
	}
	return c.modifyEntry(key, nil)
}

// modifyEntry implements the shared update/delete protocol: lock, read
// the neighborhood, mutate (or clear) the entry, write back + unlock in
// one trip. mutate == nil means delete; a non-nil mutate runs under the
// leaf lock (it may issue verbs) and returns keep=false to delete the
// entry after all.
func (c *Client) modifyEntry(key uint64, mutate func(*leafEntry) (bool, error)) error {
	for attempt := 0; attempt < maxRetries; attempt++ {
		ref, err := c.traverse(key)
		if err != nil {
			return err
		}
		err = c.modifyInLeaf(ref, key, mutate)
		if err == errRestart {
			c.obs.Retries.Inc()
			c.rootAddr = dmsim.NilGAddr
			c.yield()
			continue
		}
		return err
	}
	return fmt.Errorf("core: modify(%#x): retries exhausted", key)
}

func (c *Client) modifyInLeaf(ref leafRef, key uint64, mutate func(*leafEntry) (bool, error)) error {
	lay := c.ix.leaf
	addr := ref.addr
	for hops := 0; hops <= maxRetries; hops++ {
		lw, err := c.acquireLeafLock(addr)
		if err != nil {
			return err
		}
		home := lay.homeOf(key)
		im, idxs, metaG, err := c.fetchLeafWindow(addr, home, lay.h)
		if err != nil {
			c.unlockLeaf(addr, lw)
			return err
		}
		meta := im.meta(metaG)
		if !meta.valid {
			c.unlockLeaf(addr, lw)
			lay.putImage(im)
			return errRestart
		}

		foundIdx := -1
		for _, i := range idxs {
			if e := im.entry(i); e.occupied && e.key == key {
				foundIdx = i
				break
			}
		}
		if foundIdx < 0 {
			// Half-split: the key may live in a right sibling.
			if !meta.fenceInf && key >= meta.fenceHi && !meta.sibling.IsNil() {
				c.obs.SiblingChases.Inc()
				next := meta.sibling
				c.unlockLeaf(addr, lw)
				lay.putImage(im)
				addr = next
				continue
			}
			c.unlockLeaf(addr, lw)
			lay.putImage(im)
			return ErrNotFound
		}

		changed := []int{foundIdx}
		keep := false
		if mutate != nil {
			e := im.entry(foundIdx)
			k, err := mutate(&e)
			if err != nil {
				c.unlockLeaf(addr, lw)
				lay.putImage(im)
				return err
			}
			keep = k
			if keep {
				im.setEntry(foundIdx, e)
			}
		}
		if !keep {
			// Delete: clear the entry and its home-bitmap bit, update
			// vacancy and argmax.
			e := im.entry(foundIdx)
			e.occupied = false
			im.setEntry(foundIdx, e)
			hEntry := im.entry(home)
			d := ((foundIdx-home)%lay.span + lay.span) % lay.span
			hEntry.hopBM &^= 1 << uint(d)
			im.setEntry(home, hEntry)
			changed = append(changed, home)
			sort.Ints(changed)

			g := groupOf(foundIdx, lay.vacPerBit)
			lw.vacancy &^= 1 << uint(g)
			if lw.argmaxValid && lw.argmax == foundIdx {
				lw.argmaxValid = false
			}
		}
		err = c.writeRangeAndUnlock(addr, im, c.changedRanges(changed, home), lw)
		mergeCheck := err == nil && !keep && deleteLeftEmpty(im, idxs, lw)
		lay.putImage(im)
		if mergeCheck {
			// §4.4: a delete that may have emptied the leaf triggers a
			// node merge (confirmed with a whole-node read).
			c.maybeMergeLeaf(addr, key)
		}
		return err
	}
	return fmt.Errorf("core: modify(%#x): sibling chain too long", key)
}
