package core

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"chime/internal/dmsim"
)

// TestShadowModelProperty drives random operation sequences against a
// shadow map and checks full agreement, including scans, across varied
// geometries.
func TestShadowModelProperty(t *testing.T) {
	prop := func(seed int64, geomRaw uint8) bool {
		geoms := []Options{
			DefaultOptions(),
			{SpanSize: 16, Neighborhood: 4, ValueSize: 8, KeySize: 8,
				PiggybackVacancy: true, ReplicateMeta: true, SpeculativeRead: true},
			{SpanSize: 32, Neighborhood: 16, ValueSize: 16, KeySize: 8,
				PiggybackVacancy: true, ReplicateMeta: true},
			{SpanSize: 8, Neighborhood: 2, ValueSize: 8, KeySize: 8,
				PiggybackVacancy: true, ReplicateMeta: true, SpeculativeRead: true},
		}
		opts := geoms[int(geomRaw)%len(geoms)]
		cfg := dmsim.DefaultConfig()
		cfg.MNSize = 256 << 20
		ix, err := Bootstrap(dmsim.MustNewFabric(cfg), opts)
		if err != nil {
			t.Log(err)
			return false
		}
		cl := ix.NewComputeNode(32<<20, 256<<10).NewClient()

		r := rand.New(rand.NewSource(seed))
		shadow := map[uint64][]byte{}
		keys := make([]uint64, 0, 512)
		val := func() []byte {
			b := make([]byte, opts.ValueSize)
			r.Read(b)
			return b
		}
		for step := 0; step < 600; step++ {
			var k uint64
			if len(keys) > 0 && r.Float64() < 0.6 {
				k = keys[r.Intn(len(keys))]
			} else {
				k = r.Uint64() % 4096
			}
			switch r.Intn(10) {
			case 0, 1, 2, 3: // insert
				v := val()
				if err := cl.Insert(k, v); err != nil {
					t.Logf("seed %d step %d insert: %v", seed, step, err)
					return false
				}
				if _, ok := shadow[k]; !ok {
					keys = append(keys, k)
				}
				shadow[k] = v
			case 4, 5: // update
				v := val()
				err := cl.Update(k, v)
				if _, ok := shadow[k]; ok {
					if err != nil {
						t.Logf("seed %d step %d update: %v", seed, step, err)
						return false
					}
					shadow[k] = v
				} else if !errors.Is(err, ErrNotFound) {
					return false
				}
			case 6: // delete
				err := cl.Delete(k)
				if _, ok := shadow[k]; ok {
					if err != nil {
						return false
					}
					delete(shadow, k)
				} else if !errors.Is(err, ErrNotFound) {
					return false
				}
			case 7, 8: // search
				got, err := cl.Search(k)
				want, ok := shadow[k]
				if ok {
					if err != nil || string(got) != string(want) {
						t.Logf("seed %d step %d search mismatch", seed, step)
						return false
					}
				} else if !errors.Is(err, ErrNotFound) {
					return false
				}
			case 9: // scan and verify against the shadow
				out, err := cl.Scan(k, 20)
				if err != nil {
					return false
				}
				for i := 1; i < len(out); i++ {
					if out[i-1].Key >= out[i].Key {
						return false
					}
				}
				for _, kv := range out {
					want, ok := shadow[kv.Key]
					if !ok || string(kv.Value) != string(want) {
						t.Logf("seed %d step %d scan returned wrong item %#x", seed, step, kv.Key)
						return false
					}
				}
			}
		}
		// Final sweep: everything in the shadow must be present, ordered.
		out, err := cl.Scan(0, len(shadow)+100)
		if err != nil || len(out) != len(shadow) {
			t.Logf("seed %d final scan %d items, want %d (%v)", seed, len(out), len(shadow), err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestSequentialKeyInserts stresses the right-edge split path (ordered
// inserts always hit the rightmost leaf).
func TestSequentialKeyInserts(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	const n = 3000
	for i := uint64(1); i <= n; i++ {
		if err := cl.Insert(i, val8(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	out, err := cl.Scan(1, n)
	if err != nil || len(out) != n {
		t.Fatalf("scan: %d %v", len(out), err)
	}
	for i, kv := range out {
		if kv.Key != uint64(i+1) {
			t.Fatalf("position %d holds %d", i, kv.Key)
		}
	}
}

// TestReverseSequentialInserts stresses the left edge.
func TestReverseSequentialInserts(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	const n = 2000
	for i := n; i >= 1; i-- {
		if err := cl.Insert(uint64(i), val8(uint64(i))); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := uint64(1); i <= n; i++ {
		got, err := cl.Search(i)
		if err != nil || binary.LittleEndian.Uint64(got) != i {
			t.Fatalf("search %d: %v %v", i, got, err)
		}
	}
}

// TestDeleteAllThenReuse empties the whole tree and refills it: cleared
// entries, vacancy bits and hop bitmaps must all be reusable.
func TestDeleteAllThenReuse(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	const n = 600
	for i := uint64(0); i < n; i++ {
		if err := cl.Insert(i*31, val8(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < n; i++ {
		if err := cl.Delete(i * 31); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	out, err := cl.Scan(0, n)
	if err != nil || len(out) != 0 {
		t.Fatalf("emptied tree scan: %d %v", len(out), err)
	}
	for i := uint64(0); i < n; i++ {
		if err := cl.Insert(i*31, val8(i+1)); err != nil {
			t.Fatalf("reinsert %d: %v", i, err)
		}
	}
	for i := uint64(0); i < n; i++ {
		got, err := cl.Search(i * 31)
		if err != nil || binary.LittleEndian.Uint64(got) != i+1 {
			t.Fatalf("reuse %d: %v %v", i, got, err)
		}
	}
}

// TestExtremeKeys covers the key-space boundaries.
func TestExtremeKeys(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	keys := []uint64{0, 1, ^uint64(0), ^uint64(0) - 1, 1 << 63, 1<<63 - 1}
	for i, k := range keys {
		if err := cl.Insert(k, val8(uint64(i))); err != nil {
			t.Fatalf("insert %#x: %v", k, err)
		}
	}
	for i, k := range keys {
		got, err := cl.Search(k)
		if err != nil || binary.LittleEndian.Uint64(got) != uint64(i) {
			t.Fatalf("search %#x: %v %v", k, got, err)
		}
	}
	out, err := cl.Scan(0, 10)
	if err != nil || len(out) != len(keys) || out[0].Key != 0 || out[len(out)-1].Key != ^uint64(0) {
		t.Fatalf("extreme scan: %v %v", out, err)
	}
}
