package core

import (
	"chime/internal/dmsim"

	"fmt"
	"sort"
)

// KV is one result of a range scan.
type KV struct {
	Key   uint64
	Value []byte
}

// Scan returns up to count items with keys >= start, in ascending key
// order (§4.4). Leaves along the range are fetched whole (their entries
// are hash-ordered, not key-ordered) and the sibling chain is followed;
// each leaf costs one round trip, as in Table 1.
func (c *Client) Scan(start uint64, count int) ([]KV, error) {
	if count <= 0 {
		return nil, nil
	}
	for attempt := 0; attempt < maxRetries; attempt++ {
		out, err := c.scanOnce(start, count)
		if err == errRestart {
			c.rootAddr = dmsim.NilGAddr
			c.yield()
			continue
		}
		return out, err
	}
	return nil, fmt.Errorf("core: Scan(%#x): retries exhausted", start)
}

func (c *Client) scanOnce(start uint64, count int) ([]KV, error) {
	ref, err := c.traverse(start)
	if err != nil {
		return nil, err
	}
	lay := c.ix.leaf
	var out []KV
	addr := ref.addr
	for leaves := 0; leaves <= maxRetries; leaves++ {
		im, meta, err := c.readLeafForScan(addr)
		if err != nil {
			return nil, err
		}
		if !meta.valid {
			return nil, errRestart
		}

		var batch []KV
		for i := 0; i < lay.span; i++ {
			e := im.entry(i)
			if !e.occupied || e.key < start {
				continue
			}
			var val []byte
			if c.ix.opts.Indirect {
				val, err = c.readIndirect(e.value, e.key)
				if err == errRestart {
					return nil, errRestart
				}
				if err != nil {
					return nil, err
				}
			} else {
				val = append([]byte(nil), e.value...)
			}
			batch = append(batch, KV{Key: e.key, Value: val})
		}
		sort.Slice(batch, func(i, j int) bool { return batch[i].Key < batch[j].Key })
		out = append(out, batch...)
		if len(out) >= count {
			return out[:count], nil
		}
		if meta.sibling.IsNil() {
			return out, nil
		}
		addr = meta.sibling
	}
	return nil, fmt.Errorf("core: Scan(%#x): sibling chain too long", start)
}

// readLeafForScan fetches a whole leaf with full three-level
// validation: version bytes, plus hopscotch-bitmap reconstruction for
// every home entry so a mid-flight hop-range write cannot hide a key.
func (c *Client) readLeafForScan(addr dmsim.GAddr) (*leafImage, leafMeta, error) {
	lay := c.ix.leaf
	for try := 0; try < maxRetries; try++ {
		im, _, metaG, err := c.fetchWholeLeaf(addr)
		if err != nil {
			return nil, leafMeta{}, err
		}
		consistent := true
		for home := 0; home < lay.span; home++ {
			if im.entry(home).hopBM != im.reconstructHopBitmap(home) {
				consistent = false
				break
			}
		}
		if !consistent {
			c.yield()
			continue
		}
		return im, im.meta(metaG), nil
	}
	return nil, leafMeta{}, fmt.Errorf("core: scan leaf %v: retries exhausted", addr)
}
