package core

import (
	"chime/internal/dmsim"

	"encoding/binary"
	"fmt"
	"sort"
)

// KV is one result of a range scan.
type KV struct {
	Key   uint64
	Value []byte
}

// scanOneSided returns up to count items with keys >= start, in
// ascending key order (§4.4), using one-sided verbs only; the public
// Scan (offload.go) routes between this and the MN-side offload
// program. Leaves along the range are fetched whole (their entries
// are hash-ordered, not key-ordered) and the sibling chain is followed;
// each leaf costs one round trip, as in Table 1. The chain is pipelined
// with posted verbs: the next sibling's read is posted as soon as the
// current leaf's metadata is decoded, overlapping it with the current
// leaf's indirect-value reads (which are themselves posted as a group).
func (c *Client) scanOneSided(start uint64, count int) ([]KV, error) {
	for attempt := 0; attempt < maxRetries; attempt++ {
		out, err := c.scanOnce(start, count)
		if err == errRestart {
			c.obs.Retries.Inc()
			c.rootAddr = dmsim.NilGAddr
			c.yield()
			continue
		}
		return out, err
	}
	return nil, fmt.Errorf("core: Scan(%#x): retries exhausted", start)
}

func (c *Client) scanOnce(start uint64, count int) ([]KV, error) {
	ref, err := c.traverse(start)
	if err != nil {
		return nil, err
	}
	lay := c.ix.leaf
	var out []KV
	addr := ref.addr
	var pre *leafPrefetch
	defer func() {
		// A prefetch can be outstanding on every exit path (errors,
		// early count satisfaction); drain it so in-flight accounting
		// stays balanced and its image returns to the pool.
		if pre != nil {
			pre.abandon(c)
		}
	}()
	for leaves := 0; leaves <= maxRetries; leaves++ {
		var im *leafImage
		var meta leafMeta
		if pre != nil {
			im, meta, err = c.finishLeafPrefetch(pre)
			pre = nil
		} else {
			im, meta, err = c.readLeafForScan(addr)
		}
		if err != nil {
			return nil, err
		}
		if !meta.valid {
			lay.putImage(im)
			return nil, errRestart
		}

		// Post the sibling's whole-node read before resolving this
		// leaf's values: its round trip proceeds while the indirect
		// block reads below are in flight.
		if !meta.sibling.IsNil() && len(out) < count {
			pre = c.postLeafRead(meta.sibling)
		}
		addr = meta.sibling

		batch, err := c.collectLeafBatch(im, start)
		lay.putImage(im)
		if err != nil {
			return nil, err
		}
		sort.Slice(batch, func(i, j int) bool { return batch[i].Key < batch[j].Key })
		out = append(out, batch...)
		if len(out) >= count {
			return out[:count], nil
		}
		if addr.IsNil() {
			return out, nil
		}
	}
	return nil, fmt.Errorf("core: Scan(%#x): sibling chain too long", start)
}

// collectLeafBatch extracts the in-range entries of a validated leaf
// image. Values are copied out (or fetched from their blocks), so the
// image can be recycled as soon as this returns. Indirect block reads
// are posted as a group so their round trips overlap each other and any
// sibling prefetch already in flight.
func (c *Client) collectLeafBatch(im *leafImage, start uint64) ([]KV, error) {
	lay := c.ix.leaf
	var batch []KV
	if !c.ix.opts.Indirect {
		for i := 0; i < lay.span; i++ {
			e := im.entry(i)
			if !e.occupied || e.key < start {
				continue
			}
			batch = append(batch, KV{Key: e.key, Value: append([]byte(nil), e.value...)})
		}
		return batch, nil
	}
	type pending struct {
		key uint64
		buf []byte
		h   *dmsim.Completion
	}
	var pends []pending
	var firstErr error
	for i := 0; i < lay.span && firstErr == nil; i++ {
		e := im.entry(i)
		if !e.occupied || e.key < start {
			continue
		}
		ptr := dmsim.UnpackGAddr(binary.LittleEndian.Uint64(e.value[:8]))
		if ptr.IsNil() {
			firstErr = errRestart
			break
		}
		buf := make([]byte, 8+c.ix.opts.ValueSize)
		h, err := c.dc.PostRead(ptr, buf)
		if err != nil {
			firstErr = err
			break
		}
		pends = append(pends, pending{key: e.key, buf: buf, h: h})
	}
	for _, p := range pends {
		c.dc.Poll(p.h)
		if firstErr != nil {
			continue // drain only
		}
		if binary.LittleEndian.Uint64(p.buf[:8]) != p.key {
			firstErr = errRestart
			continue
		}
		batch = append(batch, KV{Key: p.key, Value: p.buf[8:]})
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return batch, nil
}

// leafPrefetch is a posted whole-leaf read in flight.
type leafPrefetch struct {
	addr dmsim.GAddr
	im   *leafImage
	h    *dmsim.Completion
}

// postLeafRead posts the whole-node read of a sibling leaf. Post errors
// (range violations) are deferred: finishLeafPrefetch falls back to the
// synchronous path, which re-reports them.
func (c *Client) postLeafRead(addr dmsim.GAddr) *leafPrefetch {
	lay := c.ix.leaf
	im := lay.getImage()
	for i := range im.buf[:lineSize] {
		im.buf[i] = 0
	}
	h, err := c.dc.PostRead(addr.Add(lineSize), im.buf[lineSize:])
	if err != nil {
		lay.putImage(im)
		return &leafPrefetch{addr: addr}
	}
	return &leafPrefetch{addr: addr, im: im, h: h}
}

// finishLeafPrefetch polls a posted leaf read and validates it exactly
// as readLeafForScan does (version bytes plus hopscotch-bitmap
// reconstruction); any validation failure falls back to the synchronous
// retry loop.
func (c *Client) finishLeafPrefetch(p *leafPrefetch) (*leafImage, leafMeta, error) {
	lay := c.ix.leaf
	if p.im == nil {
		return c.readLeafForScan(p.addr)
	}
	c.dc.Poll(p.h)
	ok := checkVersions(p.im.buf, 0, lay.allCells) == nil
	if ok {
		for home := 0; home < lay.span; home++ {
			if p.im.entry(home).hopBM != p.im.reconstructHopBitmap(home) {
				ok = false
				break
			}
		}
	}
	if ok {
		return p.im, p.im.meta(0), nil
	}
	lay.putImage(p.im)
	c.yield()
	return c.readLeafForScan(p.addr)
}

// abandon drains a prefetch that will not be consumed. The poll charges
// the client the verb's completion time — strictly conservative (a
// wasted prefetch can only slow the scan down, never speed it up).
func (p *leafPrefetch) abandon(c *Client) {
	if p.im != nil {
		c.dc.Poll(p.h)
		c.ix.leaf.putImage(p.im)
	}
}

// readLeafForScan fetches a whole leaf with full three-level
// validation: version bytes, plus hopscotch-bitmap reconstruction for
// every home entry so a mid-flight hop-range write cannot hide a key.
func (c *Client) readLeafForScan(addr dmsim.GAddr) (*leafImage, leafMeta, error) {
	lay := c.ix.leaf
	for try := 0; try < maxRetries; try++ {
		im, _, metaG, err := c.fetchWholeLeaf(addr)
		if err != nil {
			return nil, leafMeta{}, err
		}
		consistent := true
		for home := 0; home < lay.span; home++ {
			if im.entry(home).hopBM != im.reconstructHopBitmap(home) {
				consistent = false
				break
			}
		}
		if !consistent {
			lay.putImage(im)
			c.yield()
			continue
		}
		return im, im.meta(metaG), nil
	}
	return nil, leafMeta{}, fmt.Errorf("core: scan leaf %v: retries exhausted", addr)
}
