// Package core implements CHIME (SOSP '24): a cache-efficient,
// high-performance hybrid range index on disaggregated memory that
// combines B+-tree internal nodes with hopscotch-hashing leaf nodes.
//
// The package contains the paper's three core mechanisms:
//
//   - Three-level optimistic synchronization (§4.1): two-level cache-line
//     versions (node-level NV + entry-level EV nibbles) detect node and
//     entry writes; reused hopscotch bitmaps detect concurrent hop-range
//     writes.
//   - Access-aggregated metadata management (§4.2): the vacancy bitmap
//     and argmax field ride inside the 8-byte lock word and are acquired
//     with a single masked-CAS; leaf metadata (sibling pointer) is
//     replicated every H entries so any neighborhood read includes a
//     replica; sibling-based validation replaces per-leaf fence keys.
//   - Hotness-aware speculative reads (§4.3): an LFU hotspot buffer on
//     each compute node records exact entry locations of hot keys so a
//     search can fetch one entry instead of a whole neighborhood.
//
// Remote memory is reached through the one-sided verbs of
// internal/dmsim; all node images are explicit byte encodings, exactly
// as a client library on real RDMA hardware would lay them out.
package core

import (
	"fmt"

	"chime/internal/offroute"
)

// Options configures a CHIME tree. The zero value is not valid; use
// DefaultOptions and override fields.
type Options struct {
	// SpanSize is the number of entries per node (both internal and
	// leaf). Paper default: 64.
	SpanSize int

	// Neighborhood is the hopscotch neighborhood size H for leaf
	// nodes. Paper default: 8. Must divide evenly into leaf groups:
	// SpanSize%Neighborhood == 0.
	Neighborhood int

	// ValueSize is the inline value size in bytes. Ignored when
	// Indirect is set.
	ValueSize int

	// Indirect stores an 8-byte pointer per leaf entry instead of the
	// value; the KV block lives in separately allocated remote memory
	// (§4.5, CHIME-Indirect).
	Indirect bool

	// KeySize models the on-wire key size in bytes for layout
	// accounting (the API key is always a uint64; larger keys pad the
	// entry). Must be >= 8. Paper default: 8.
	KeySize int

	// PiggybackVacancy enables vacancy-bitmap piggybacking on the lock
	// word via masked-CAS (§4.2.1). When false, inserts issue a
	// dedicated READ for the vacancy bitmap after acquiring the lock —
	// the "+Vacancy" ablation of Figure 15.
	PiggybackVacancy bool

	// ReplicateMeta embeds a leaf-metadata replica every H entries
	// (§4.2.2). When false, every leaf read issues a dedicated READ
	// for the leaf header — the "+Leaf Meta" ablation of Figure 15.
	ReplicateMeta bool

	// SpeculativeRead enables the hotness-aware speculative read
	// mechanism (§4.3).
	SpeculativeRead bool

	// LeaseLocks stamps an (owner, expiry) lease into every remote lock
	// acquisition so survivors can detect and steal locks whose holder
	// crashed (recovery.go). Requires PiggybackVacancy: leases live in
	// the spare bits of the word the piggyback CAS already swaps. Lease
	// mode bypasses the same-CN lock table (a local handover would hand
	// over the holder's lease).
	LeaseLocks bool

	// LeaseNs is the lease duration in virtual nanoseconds. Zero means
	// the default (500 µs), far above any critical section so live
	// holders are never stolen from.
	LeaseNs int64

	// Offload selects the hybrid one-sided/RPC protocol: per-op routing
	// between one-sided traversal and the MN-side offload program
	// registered at bootstrap (mnprog.go). The zero value (ModeOff) is
	// pure one-sided traversal, bit-identical to a build without the
	// offload plane. ModeAlways offloads every supported op; ModeAdaptive
	// routes per op on observed cost and hotness (internal/offroute).
	Offload offroute.Mode

	// VarKeys enables the variable-length key API (§4.5): leaf entries
	// store an 8-byte prefix fingerprint plus a pointer to a chain of
	// remote blocks holding the full keys and values. Use the *KV
	// methods (InsertKV, SearchKV, ...); the uint64 API then operates
	// on raw fingerprints. Incompatible with Indirect (VarKeys already
	// stores indirect blocks).
	VarKeys bool
}

// DefaultOptions returns the paper's default configuration: span 64,
// neighborhood 8, 8-byte keys and values, all techniques enabled.
func DefaultOptions() Options {
	return Options{
		SpanSize:         64,
		Neighborhood:     8,
		ValueSize:        8,
		KeySize:          8,
		PiggybackVacancy: true,
		ReplicateMeta:    true,
		SpeculativeRead:  true,
	}
}

// Validate reports whether the options describe a buildable tree.
func (o Options) Validate() error {
	if o.SpanSize < 2 || o.SpanSize > 1024 {
		return fmt.Errorf("core: SpanSize %d out of [2,1024]", o.SpanSize)
	}
	if o.Neighborhood < 1 || o.Neighborhood > 16 {
		return fmt.Errorf("core: Neighborhood %d out of [1,16] (paper max 16: 2-byte hopscotch bitmap)", o.Neighborhood)
	}
	if o.Neighborhood > o.SpanSize {
		return fmt.Errorf("core: Neighborhood %d > SpanSize %d", o.Neighborhood, o.SpanSize)
	}
	if o.SpanSize%o.Neighborhood != 0 {
		return fmt.Errorf("core: SpanSize %d not a multiple of Neighborhood %d", o.SpanSize, o.Neighborhood)
	}
	if !o.Indirect && (o.ValueSize < 1 || o.ValueSize > 4096) {
		return fmt.Errorf("core: ValueSize %d out of [1,4096]", o.ValueSize)
	}
	if o.KeySize < 8 || o.KeySize > 256 {
		return fmt.Errorf("core: KeySize %d out of [8,256]", o.KeySize)
	}
	if o.VarKeys && o.Indirect {
		return fmt.Errorf("core: VarKeys and Indirect are mutually exclusive")
	}
	if o.LeaseLocks && !o.PiggybackVacancy {
		return fmt.Errorf("core: LeaseLocks requires PiggybackVacancy (leases ride the piggyback CAS word)")
	}
	if o.LeaseNs < 0 {
		return fmt.Errorf("core: negative LeaseNs")
	}
	return nil
}
