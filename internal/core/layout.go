package core

// The byte-level layout machinery (cell placement and two-level
// cache-line versions, §4.1.1) lives in internal/nodelayout so the
// Sherman and ROLEX baselines share the exact same implementation. The
// aliases below keep the core package's call sites terse.

import "chime/internal/nodelayout"

const lineSize = nodelayout.LineSize

type cell = nodelayout.Cell

var errTornRead = nodelayout.ErrTornRead

func packVer(nv, ev uint8) byte { return nodelayout.PackVer(nv, ev) }
func verNV(b byte) uint8        { return nodelayout.VerNV(b) }
func verEV(b byte) uint8        { return nodelayout.VerEV(b) }

func layoutCells(start int, contents []int) ([]cell, int) {
	return nodelayout.LayoutCells(start, contents)
}

func writeCellContent(img []byte, c cell, content []byte) {
	nodelayout.WriteCellContent(img, c, content)
}

func readCellContent(img []byte, c cell, dst []byte) []byte {
	return nodelayout.ReadCellContent(img, c, dst)
}

func bumpNV(img []byte, cells []cell) { nodelayout.BumpNV(img, cells) }
func bumpEV(img []byte, c cell)       { nodelayout.BumpEV(img, c) }

func checkVersions(win []byte, winOff int, cells []cell) error {
	return nodelayout.CheckVersions(win, winOff, cells)
}
