package core

// MetadataBytesPerEntry models the per-entry leaf metadata overhead of
// CHIME (§4.5 "Remote memory consumption", Figure 16): the 2-byte
// hopscotch bitmap, the two-level cache-line versions (1 byte per entry
// plus 1 byte per 63 bytes of KV data), and the per-H-entries metadata
// replica. With fence-key replication the replica carries both fence
// keys (2·keySize) plus the sibling pointer and flags; sibling-based
// validation (§4.2.3) shrinks the replica to the 10-byte sibling record.
//
// With keySize=8, valueSize=8, H=8 the fence/sibling ratio is ≈1.4×, and
// at keySize=256 it is ≈8.6× — the endpoints Figure 16 reports.
func MetadataBytesPerEntry(keySize, valueSize, h int, siblingValidation bool) float64 {
	base := 2.0 + 1.0 + float64(keySize+valueSize)/63.0
	replica := float64(2*keySize + 10)
	if siblingValidation {
		replica = 10
	}
	return base + replica/float64(h)
}
