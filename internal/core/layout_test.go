package core

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPackVer(t *testing.T) {
	for nv := uint8(0); nv < 16; nv++ {
		for ev := uint8(0); ev < 16; ev++ {
			b := packVer(nv, ev)
			if verNV(b) != nv || verEV(b) != ev {
				t.Fatalf("packVer(%d,%d) round-trips to (%d,%d)", nv, ev, verNV(b), verEV(b))
			}
		}
	}
	// Nibbles wrap.
	if b := packVer(17, 18); verNV(b) != 1 || verEV(b) != 2 {
		t.Fatal("version nibbles must wrap mod 16")
	}
}

func TestLayoutCellsSmallNoLineCrossing(t *testing.T) {
	// 20-byte content cells (21B physical): 3 fit per 64-byte line.
	cells, size := layoutCells(0, []int{20, 20, 20, 20})
	for i, c := range cells {
		start := c.Off % lineSize
		if start+c.Physical() > lineSize {
			t.Fatalf("cell %d at %d crosses a line", i, c.Off)
		}
	}
	if cells[3].Off != 64 {
		t.Fatalf("4th cell should start a new line, got %d", cells[3].Off)
	}
	if size != cells[3].End() {
		t.Fatalf("region size %d, last cell ends %d", size, cells[3].End())
	}
}

func TestLayoutCellsBig(t *testing.T) {
	// 130 bytes of content needs ceil(130/63)=3 lines.
	cells, _ := layoutCells(0, []int{10, 130})
	big := cells[1]
	if !big.Big || big.Lines != 3 {
		t.Fatalf("big cell = %+v, want 3 lines", big)
	}
	if big.Off%lineSize != 0 {
		t.Fatalf("big cell must be line-aligned, got %d", big.Off)
	}
	var offs []int
	offs = big.VersionOffsets(offs)
	if len(offs) != 3 || offs[0] != big.Off || offs[1] != big.Off+64 {
		t.Fatalf("version offsets = %v", offs)
	}
}

func TestCellContentRoundTrip(t *testing.T) {
	prop := func(seed int64, sizeRaw uint16) bool {
		size := int(sizeRaw)%300 + 1
		cells, total := layoutCells(0, []int{size})
		img := make([]byte, total)
		content := make([]byte, size)
		x := uint64(seed)
		for i := range content {
			x = x*6364136223846793005 + 1442695040888963407
			content[i] = byte(x >> 56)
		}
		writeCellContent(img, cells[0], content)
		got := readCellContent(img, cells[0], nil)
		return bytes.Equal(got, content)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteCellDoesNotClobberVersionBytes(t *testing.T) {
	cells, total := layoutCells(0, []int{200})
	img := make([]byte, total)
	var offs []int
	offs = cells[0].VersionOffsets(offs)
	for _, o := range offs {
		img[o] = packVer(7, 3)
	}
	content := bytes.Repeat([]byte{0xFF}, 200)
	writeCellContent(img, cells[0], content)
	for _, o := range offs {
		if img[o] != packVer(7, 3) {
			t.Fatalf("content write clobbered version byte at %d", o)
		}
	}
}

func TestBumpNVAndEV(t *testing.T) {
	cells, total := layoutCells(0, []int{30, 200})
	img := make([]byte, total)

	bumpNV(img, cells)
	var offs []int
	for _, c := range cells {
		for _, o := range c.VersionOffsets(offs[:0]) {
			if verNV(img[o]) != 1 || verEV(img[o]) != 0 {
				t.Fatalf("after bumpNV version byte at %d = %#x", o, img[o])
			}
		}
	}

	bumpEV(img, cells[1])
	for _, o := range cells[0].VersionOffsets(offs[:0]) {
		if verEV(img[o]) != 0 {
			t.Fatal("bumpEV leaked into other cell")
		}
	}
	for _, o := range cells[1].VersionOffsets(offs[:0]) {
		if verEV(img[o]) != 1 || verNV(img[o]) != 1 {
			t.Fatalf("bumpEV wrong at %d: %#x", o, img[o])
		}
	}
}

func TestCheckVersionsDetectsNodeTear(t *testing.T) {
	cells, total := layoutCells(0, []int{30, 30, 200})
	img := make([]byte, total)
	if err := checkVersions(img, 0, cells); err != nil {
		t.Fatalf("clean image must validate: %v", err)
	}
	// Simulate a reader that caught half of a node write: one cell has
	// the new NV.
	bumpNV(img, cells[1:2])
	if err := checkVersions(img, 0, cells); err != errTornRead {
		t.Fatalf("NV tear not detected: %v", err)
	}
}

func TestCheckVersionsDetectsEntryTear(t *testing.T) {
	cells, total := layoutCells(0, []int{200})
	img := make([]byte, total)
	// Tear *inside* a big cell: bump only its second line's version.
	var offs []int
	offs = cells[0].VersionOffsets(offs)
	img[offs[1]] = packVer(0, 1)
	if err := checkVersions(img, 0, cells); err != errTornRead {
		t.Fatalf("intra-cell tear not detected: %v", err)
	}
}

func TestCheckVersionsWindowOffset(t *testing.T) {
	cells, total := layoutCells(128, []int{30})
	img := make([]byte, 128+total)
	bumpNV(img, cells)
	// Validate through a window starting at offset 128.
	if err := checkVersions(img[128:], 128, cells); err != nil {
		t.Fatalf("windowed validation failed: %v", err)
	}
}

func TestLockWordRoundTrip(t *testing.T) {
	prop := func(locked bool, vac uint64, argmax uint16, valid bool) bool {
		lw := lockWord{
			locked:      locked,
			vacancy:     vac & (1<<vacancyBits - 1),
			argmax:      int(argmax) & (1<<argmaxBits - 1),
			argmaxValid: valid,
		}
		return decodeLockWord(lw.encode()) == lw
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLockWordLockBitIsBitZero(t *testing.T) {
	lw := lockWord{locked: true}
	if lw.encode() != 1 {
		t.Fatalf("lock-only word = %#x, want 1", lw.encode())
	}
}

func TestVacancyGroups(t *testing.T) {
	cases := []struct{ span, groups, perBit int }{
		{8, 8, 1},
		{48, 48, 1},
		{64, 32, 2},
		{96, 48, 2},
		{512, 47, 11},
	}
	for _, c := range cases {
		g, p := vacancyGroups(c.span)
		if g != c.groups || p != c.perBit {
			t.Errorf("vacancyGroups(%d) = (%d,%d), want (%d,%d)", c.span, g, p, c.groups, c.perBit)
		}
		if g > vacancyBits {
			t.Errorf("span %d: %d groups exceed bitmap width", c.span, g)
		}
		// Groups must cover the whole span.
		lo, hi := groupRange(g-1, p, c.span)
		if hi != c.span || lo >= hi {
			t.Errorf("span %d: last group [%d,%d)", c.span, lo, hi)
		}
	}
}

func TestLeafLayoutGeometry(t *testing.T) {
	lay := newLeafLayout(DefaultOptions())
	if len(lay.entryCells) != 64 || len(lay.replicaCells) != 8 {
		t.Fatalf("cells: %d entries, %d replicas", len(lay.entryCells), len(lay.replicaCells))
	}
	// Entry cells must be strictly increasing and non-overlapping with
	// replicas interleaved every H entries.
	prev := 0
	for _, c := range lay.allCells {
		if c.Off < prev {
			t.Fatalf("cell at %d overlaps previous ending %d", c.Off, prev)
		}
		prev = c.End()
	}
	if lay.size < prev {
		t.Fatal("node size smaller than last cell")
	}
	// Replica g must precede entry g*H.
	for g, rc := range lay.replicaCells {
		if rc.Off >= lay.entryCells[g*lay.h].Off {
			t.Fatalf("replica %d at %d not before entry %d", g, rc.Off, g*lay.h)
		}
	}
}

func TestLeafEntryCodec(t *testing.T) {
	lay := newLeafLayout(DefaultOptions())
	im := newLeafImage(lay)
	e := leafEntry{occupied: true, hopBM: 0xBEEF, key: 0x1122334455667788, value: []byte("8bytesok")}
	im.setEntry(5, e)
	got := im.entry(5)
	if !got.occupied || got.hopBM != 0xBEEF || got.key != e.key || string(got.value) != "8bytesok" {
		t.Fatalf("entry round trip: %+v", got)
	}
	// setEntry must bump EV.
	c := lay.entryCells[5]
	if verEV(im.buf[c.Off]) != 1 {
		t.Fatal("setEntry must bump the entry version")
	}
	// Other entries untouched.
	if im.entry(6).occupied {
		t.Fatal("neighboring entry contaminated")
	}
}

func TestLeafMetaCodec(t *testing.T) {
	lay := newLeafLayout(DefaultOptions())
	im := newLeafImage(lay)
	m := leafMeta{valid: true, sibling: gaddr(1, 0x1234), fenceHi: 999}
	im.setAllMeta(m)
	for g := 0; g < len(lay.replicaCells); g++ {
		got := im.meta(g)
		if !got.valid || got.sibling != m.sibling || got.fenceHi != 999 || got.fenceInf {
			t.Fatalf("replica %d: %+v", g, got)
		}
	}
}

func TestReconstructHopBitmap(t *testing.T) {
	lay := newLeafLayout(DefaultOptions())
	im := newLeafImage(lay)
	// Find a key homed at slot 3, place it at 3 and another at 5.
	var k1, k2 uint64
	for k := uint64(1); ; k++ {
		if lay.homeOf(k) == 3 {
			if k1 == 0 {
				k1 = k
			} else {
				k2 = k
				break
			}
		}
	}
	im.setEntry(3, leafEntry{occupied: true, key: k1, value: make([]byte, 8)})
	im.setEntry(5, leafEntry{occupied: true, key: k2, value: make([]byte, 8)})
	bm := im.reconstructHopBitmap(3)
	if bm != 0b101 {
		t.Fatalf("reconstructed bitmap = %b, want 101", bm)
	}
}

func TestNeighborhoodSegments(t *testing.T) {
	lay := newLeafLayout(DefaultOptions())

	// Mid-node, non-wrapping: one segment, containing a replica.
	segs, idxs := lay.neighborhoodSegments(10, 8, true)
	if len(segs) != 1 {
		t.Fatalf("non-wrap segments = %d", len(segs))
	}
	if len(idxs) != 8 || idxs[0] != 10 || idxs[7] != 17 {
		t.Fatalf("idxs = %v", idxs)
	}
	if lay.metaInRanges(segs) < 0 {
		t.Fatal("window must contain a metadata replica")
	}

	// Group-aligned: replica precedes the group.
	segs, _ = lay.neighborhoodSegments(16, 8, true)
	if lay.metaInRanges(segs) != 2 {
		t.Fatalf("group-aligned window replica group = %d, want 2", lay.metaInRanges(segs))
	}

	// Wrap-around: two segments, replica available.
	segs, idxs = lay.neighborhoodSegments(60, 8, true)
	if len(segs) != 2 {
		t.Fatalf("wrap segments = %d", len(segs))
	}
	if idxs[0] != 60 || idxs[4] != 0 || idxs[7] != 3 {
		t.Fatalf("wrap idxs = %v", idxs)
	}
	if lay.metaInRanges(segs) < 0 {
		t.Fatal("wrap window must contain a replica")
	}

	// Every home position must yield a window with a replica.
	for home := 0; home < lay.span; home++ {
		segs, _ := lay.neighborhoodSegments(home, lay.h, true)
		if lay.metaInRanges(segs) < 0 {
			t.Fatalf("home %d: no replica in window", home)
		}
	}
}

func TestCoveredCells(t *testing.T) {
	lay := newLeafLayout(DefaultOptions())
	segs, _ := lay.neighborhoodSegments(10, 8, true)
	cells := lay.coveredCells(segs)
	// At least the 8 entries plus 1 replica.
	if len(cells) < 9 {
		t.Fatalf("covered cells = %d, want >= 9", len(cells))
	}
	for _, c := range cells {
		inside := false
		for _, s := range segs {
			if c.Off >= s.Off && c.End() <= s.End {
				inside = true
			}
		}
		if !inside {
			t.Fatalf("cell at %d reported covered but isn't", c.Off)
		}
	}
}

func TestBigValueLeafLayout(t *testing.T) {
	o := DefaultOptions()
	o.ValueSize = 512
	lay := newLeafLayout(o)
	c := lay.entryCells[0]
	if !c.Big {
		t.Fatal("512B-value entries must be big cells")
	}
	im := newLeafImage(lay)
	val := bytes.Repeat([]byte{0xAB}, 512)
	im.setEntry(0, leafEntry{occupied: true, key: 42, value: val})
	got := im.entry(0)
	if !bytes.Equal(got.value, val) || got.key != 42 {
		t.Fatal("big-entry round trip failed")
	}
}

func TestInternalNodeCodec(t *testing.T) {
	lay := newInternalLayout(DefaultOptions())
	n := &internalNode{
		level:    3,
		valid:    true,
		fenceLow: 100,
		fenceHi:  2000,
		sibling:  gaddr(0, 4096),
		leftmost: gaddr(1, 8192),
		entries: []pivotEntry{
			{pivot: 200, child: gaddr(0, 100)},
			{pivot: 500, child: gaddr(0, 200)},
			{pivot: 900, child: gaddr(0, 300)},
		},
	}
	img := lay.encodeInternal(n, nil)
	if err := lay.checkInternalImage(img); err != nil {
		t.Fatal(err)
	}
	got := lay.decodeInternal(gaddr(0, 1), img)
	if got.level != 3 || !got.valid || got.fenceLow != 100 || got.fenceHi != 2000 {
		t.Fatalf("header: %+v", got)
	}
	if got.sibling != n.sibling || got.leftmost != n.leftmost || len(got.entries) != 3 {
		t.Fatalf("pointers: %+v", got)
	}
	for i := range n.entries {
		if got.entries[i] != n.entries[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got.entries[i], n.entries[i])
		}
	}

	// Re-encode as a node write: NV must bump everywhere.
	img2 := lay.encodeInternal(got, img)
	if verNV(img2[lay.headerCell.Off]) != verNV(img[lay.headerCell.Off])+1 {
		t.Fatal("node write must bump NV")
	}
}

func TestInternalChildFor(t *testing.T) {
	n := &internalNode{
		leftmost: gaddr(0, 1),
		entries: []pivotEntry{
			{pivot: 100, child: gaddr(0, 2)},
			{pivot: 200, child: gaddr(0, 3)},
		},
	}
	cases := []struct {
		key   uint64
		child uint64
		next  uint64 // 0 = unknown
	}{
		{50, 1, 2},
		{100, 2, 3},
		{150, 2, 3},
		{200, 3, 0},
		{999, 3, 0},
	}
	for _, c := range cases {
		child, _, next := n.childFor(c.key)
		if child.Off != c.child {
			t.Errorf("childFor(%d) = %v, want off %d", c.key, child, c.child)
		}
		if next.Off != c.next {
			t.Errorf("childFor(%d) next = %v, want off %d", c.key, next, c.next)
		}
	}
}

func TestInternalInsertEntrySorted(t *testing.T) {
	n := &internalNode{}
	for _, p := range []uint64{50, 10, 90, 30} {
		if !n.insertEntry(4, pivotEntry{pivot: p}) {
			t.Fatal("insert into non-full node failed")
		}
	}
	if n.insertEntry(4, pivotEntry{pivot: 70}) {
		t.Fatal("insert into full node must fail")
	}
	for i := 1; i < len(n.entries); i++ {
		if n.entries[i-1].pivot >= n.entries[i].pivot {
			t.Fatalf("pivots not sorted: %+v", n.entries)
		}
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Options){
		func(o *Options) { o.SpanSize = 1 },
		func(o *Options) { o.Neighborhood = 0 },
		func(o *Options) { o.Neighborhood = 17 },
		func(o *Options) { o.SpanSize = 60 }, // not a multiple of 8
		func(o *Options) { o.ValueSize = 0 },
		func(o *Options) { o.KeySize = 4 },
	}
	for i, mutate := range bad {
		o := DefaultOptions()
		mutate(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("case %d must fail validation", i)
		}
	}
}
