package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"

	"chime/internal/dmsim"
	"chime/internal/locktable"
	"chime/internal/obs"
	"chime/internal/offroute"
)

// Index is one CHIME tree living in the memory pool. It is cheap to
// share: it holds only the fabric handle, options, derived layouts and
// the address of the super block (root pointer). Create per-CN state
// with NewComputeNode and per-client handles with ComputeNode.NewClient.
type Index struct {
	fabric *dmsim.Fabric
	opts   Options
	leaf   *leafLayout
	inner  *internalLayout
	super  dmsim.GAddr

	// mnprog is the MN-side offload program registered at bootstrap
	// (mnprog.go); offMN is the MN it is addressed on — the root's MN,
	// where every descent starts.
	mnprog dmsim.MNProgramID
	offMN  int
}

// ErrNotFound reports that a key is absent from the tree.
var ErrNotFound = errors.New("core: key not found")

// errRestart is an internal signal: the current attempt observed a
// structural change (stale cache, half-split, deleted node) and the
// operation must retraverse.
var errRestart = errors.New("core: restart traversal")

// maxRetries bounds optimistic retry loops; exceeding it indicates a
// livelock-grade problem and surfaces as an error rather than a hang.
const maxRetries = 100000

// localWorkNs is the CN-side compute charged per tree operation step
// (hashing, local search) on the virtual clock.
const localWorkNs = 150

// Bootstrap creates a fresh tree on the fabric: a super block holding
// the root pointer and one empty leaf as the root.
func Bootstrap(f *dmsim.Fabric, opts Options) (*Index, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	ix := &Index{
		fabric: f,
		opts:   opts,
		leaf:   newLeafLayout(opts),
		inner:  newInternalLayout(opts),
	}
	boot := f.NewClient()

	super, err := boot.AllocRPC(0, 8)
	if err != nil {
		return nil, fmt.Errorf("core: bootstrap super block: %w", err)
	}
	ix.super = super

	leafAddr, err := boot.AllocRPC(0, ix.leaf.size)
	if err != nil {
		return nil, fmt.Errorf("core: bootstrap root leaf: %w", err)
	}
	im := newLeafImage(ix.leaf)
	im.setAllMeta(leafMeta{valid: true, fenceInf: true})
	if err := boot.Write(leafAddr, im.buf); err != nil {
		return nil, err
	}
	if err := ix.writeSuper(boot, leafAddr, 0); err != nil {
		return nil, err
	}
	ix.mnprog = f.RegisterMNProgram(&mnProgram{ix: ix})
	ix.offMN = int(super.MN)
	return ix, nil
}

// Attach binds to a tree that already exists on the fabric — a
// warm-started persistent fabric whose MN memory was restored from a
// folio snapshot+log. It performs no remote writes: the super block,
// root and all nodes are taken as-is; opts must match the options the
// tree was bootstrapped with (layouts are derived from them).
func Attach(f *dmsim.Fabric, opts Options, super dmsim.GAddr) (*Index, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	ix := &Index{
		fabric: f,
		opts:   opts,
		leaf:   newLeafLayout(opts),
		inner:  newInternalLayout(opts),
		super:  super,
	}
	ix.mnprog = f.RegisterMNProgram(&mnProgram{ix: ix})
	ix.offMN = int(super.MN)
	return ix, nil
}

// Super returns the super block's address, the one root pointer a
// re-attaching compute node needs (persisted across restarts via
// dmsim.Fabric.SetPersistMeta).
func (ix *Index) Super() dmsim.GAddr { return ix.super }

// Options returns the tree's configuration.
func (ix *Index) Options() Options { return ix.opts }

// LeafNodeSize returns the encoded size of one leaf node in bytes.
func (ix *Index) LeafNodeSize() int { return ix.leaf.size }

// InternalNodeSize returns the encoded size of one internal node.
func (ix *Index) InternalNodeSize() int { return ix.inner.size }

// The super block is a single CAS-able word: level in the top byte, the
// root node's MN-0 offset in the low 56 bits. Root nodes are always
// allocated on MN 0 so the whole root identity fits one atomic word.
func packSuper(addr dmsim.GAddr, level uint8) uint64 {
	return dmsim.PackTagged(addr, level)
}

func unpackSuper(w uint64) (dmsim.GAddr, uint8) {
	return dmsim.UnpackTagged(w)
}

func (ix *Index) writeSuper(c *dmsim.Client, root dmsim.GAddr, level uint8) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], packSuper(root, level))
	return c.Write(ix.super, b[:])
}

// ComputeNode models one compute node: the internal-node cache and the
// hotspot buffer shared by all of its clients (§2.2, §4.3).
type ComputeNode struct {
	ix      *Index
	cache   *nodeCache
	hotspot *hotspotBuffer
	locks   *locktable.Table
	obs     obs.IndexInstruments
}

// SetObserver attaches an observability sink; clients created afterward
// count retries, torn reads, lock backoffs, sibling chases, splits and
// merges into it, and emit per-operation trace spans when the sink
// traces. Call before NewClient, from a single goroutine. With no sink
// every instrumented call is a no-op.
func (cn *ComputeNode) SetObserver(s *obs.Sink) {
	cn.obs = obs.ResolveIndex(s)
}

// NewComputeNode creates CN-shared state with the given byte budgets for
// the internal-node cache and the hotspot buffer. A zero hotspot budget,
// or Options.SpeculativeRead=false, disables speculative reads.
func (ix *Index) NewComputeNode(cacheBytes, hotspotBytes int64) *ComputeNode {
	if !ix.opts.SpeculativeRead {
		hotspotBytes = 0
	}
	return &ComputeNode{
		ix:      ix,
		cache:   newNodeCache(cacheBytes),
		hotspot: newHotspotBuffer(hotspotBytes),
		locks:   locktable.New(),
	}
}

// LockTableStats reports local-lock acquisitions and handovers.
func (cn *ComputeNode) LockTableStats() (acquires, handovers int64) {
	return cn.locks.Stats()
}

// CacheStats reports the CN's internal-node cache counters.
func (cn *ComputeNode) CacheStats() CacheStats { return cn.cache.stats() }

// HotspotStats reports the CN's hotspot-buffer counters.
func (cn *ComputeNode) HotspotStats() HotspotStats { return cn.hotspot.stats() }

// Client is one client (CPU core / coroutine) on a compute node. Not
// safe for concurrent use: each simulated client owns one goroutine.
type Client struct {
	cn    *ComputeNode
	ix    *Index
	dc    *dmsim.Client
	alloc *dmsim.ChunkAllocator

	rootAddr  dmsim.GAddr
	rootLevel uint8

	backoff int64

	// Write-pipeline counters: leaf write cycles executed and batch keys
	// absorbed into an already-open cycle (per-leaf write combining).
	wcCycles   int64
	wcCombined int64

	// Instruments resolved from the CN's sink at construction; all
	// fields are nil-safe no-ops without a sink.
	obs obs.IndexInstruments

	// router decides one-sided vs. MN-side offload per op (offload.go);
	// nil when Options.Offload is off. offBuf is the reusable offload
	// response buffer.
	router *offroute.Router
	offBuf []byte
}

// NewClient creates a client handle bound to this compute node.
func (cn *ComputeNode) NewClient() *Client {
	dc := cn.ix.fabric.NewClient()
	dc.SetFlight(cn.obs.Flight.NewFlight(dc.ID()))
	bufSize := cn.ix.opts.ValueSize
	if bufSize < 8 {
		bufSize = 8
	}
	return &Client{
		cn:     cn,
		ix:     cn.ix,
		dc:     dc,
		alloc:  dmsim.NewChunkAllocator(dc, int(dc.ID())%cn.ix.fabric.MNs()),
		obs:    cn.obs,
		router: offroute.New(cn.ix.opts.Offload),
		offBuf: make([]byte, bufSize),
	}
}

// DM returns the underlying fabric client (virtual clock and traffic
// stats), used by the benchmark harness.
func (c *Client) DM() *dmsim.Client { return c.dc }

// yield backs off after an optimistic conflict: a little virtual time
// plus a scheduler yield so the conflicting writer can finish in real
// time too.
func (c *Client) yield() {
	if c.backoff < 64 {
		c.backoff = 64
	} else if c.backoff < 8192 {
		c.backoff *= 2
	}
	c.dc.Advance(c.backoff)
	runtime.Gosched()
}

func (c *Client) resetBackoff() { c.backoff = 0 }

// chargeLocalWork charges the per-step CN-side compute, labeled as
// cache/local-lookup work in the flight ledger.
func (c *Client) chargeLocalWork() {
	fl := c.dc.Flight()
	prev := fl.SetPhase(obs.PhaseCacheLookup)
	c.dc.Advance(localWorkNs)
	fl.SetPhase(prev)
}

// refreshRoot re-reads the super block.
func (c *Client) refreshRoot() error {
	var b [8]byte
	if err := c.dc.Read(c.ix.super, b[:]); err != nil {
		return err
	}
	c.rootAddr, c.rootLevel = unpackSuper(binary.LittleEndian.Uint64(b[:]))
	return nil
}

// readInternal fetches and validates an internal node, retrying torn
// reads. It does not consult the cache. The raw image is returned
// alongside the decoded node so that a subsequent node write can bump
// the node-level versions relative to the fetched state.
func (c *Client) readInternal(addr dmsim.GAddr) (*internalNode, []byte, error) {
	img := c.ix.inner.getImage()
	for try := 0; try < maxRetries; try++ {
		if err := c.dc.Read(addr, img); err != nil {
			return nil, nil, err
		}
		if err := c.ix.inner.checkInternalImage(img); err != nil {
			c.obs.TornReads.Inc()
			c.yield()
			continue
		}
		c.resetBackoff()
		return c.ix.inner.decodeInternal(addr, img), img, nil
	}
	return nil, nil, fmt.Errorf("core: internal node %v: torn-read retries exhausted", addr)
}

// pathEntry records one internal node visited during traversal, for
// split up-propagation.
type pathEntry struct {
	addr  dmsim.GAddr
	level uint8
}

// leafRef identifies the leaf a traversal reached plus the context
// needed for sibling-based validation (§4.2.3).
type leafRef struct {
	addr dmsim.GAddr

	// expected is the "next child pointer" from the parent: what the
	// leaf's sibling pointer should equal. Unknown (expectedKnown
	// false) when the leaf is its parent's last child or was reached
	// by sibling chase.
	expected      dmsim.GAddr
	expectedKnown bool

	// parentAddr/fromCache drive cache invalidation on mismatch.
	parentAddr      dmsim.GAddr
	parentFromCache bool

	path []pathEntry
}

// traverse walks internal nodes (cache first, remote on miss) down to
// the leaf covering key.
func (c *Client) traverse(key uint64) (leafRef, error) {
	for attempt := 0; attempt < maxRetries; attempt++ {
		if c.rootAddr.IsNil() {
			if err := c.refreshRoot(); err != nil {
				return leafRef{}, err
			}
		}
		ref, err := c.traverseFrom(c.rootAddr, c.rootLevel, key)
		if err == errRestart {
			c.obs.Retries.Inc()
			c.rootAddr = dmsim.NilGAddr // force a super-block re-read
			c.yield()
			continue
		}
		if err == nil {
			c.resetBackoff()
		}
		return ref, err
	}
	return leafRef{}, fmt.Errorf("core: traverse(%#x): restart loop exhausted", key)
}

func (c *Client) traverseFrom(root dmsim.GAddr, rootLevel uint8, key uint64) (leafRef, error) {
	c.chargeLocalWork()
	if rootLevel == 0 {
		// The root is a leaf.
		return leafRef{addr: root}, nil
	}
	cur := root
	var path []pathEntry
	for hop := 0; hop < maxRetries; hop++ {
		fromCache := true
		n := c.cn.cache.get(cur)
		if n == nil {
			fromCache = false
			fresh, img, err := c.readInternal(cur)
			if err != nil {
				return leafRef{}, err
			}
			// The decoded node copies everything it keeps; recycle the
			// fetch buffer.
			c.ix.inner.putImage(img)
			if !fresh.valid {
				return leafRef{}, errRestart
			}
			c.cn.cache.put(cur, fresh, int64(c.ix.inner.size))
			n = fresh
		}
		if !n.covers(key) {
			if fromCache {
				// Stale cached node: drop it and retry this address
				// remotely.
				c.cn.cache.invalidate(cur)
				continue
			}
			if !n.fenceInf && key >= n.fenceHi && !n.sibling.IsNil() {
				// Half-split at this level: chase the B-link sibling.
				c.obs.SiblingChases.Inc()
				cur = n.sibling
				continue
			}
			return leafRef{}, errRestart
		}
		path = append(path, pathEntry{addr: cur, level: n.level})
		child, _, next := n.childFor(key)
		if child.IsNil() {
			if fromCache {
				c.cn.cache.invalidate(cur)
				continue
			}
			return leafRef{}, errRestart
		}
		if n.level == 1 {
			return leafRef{
				addr:            child,
				expected:        next,
				expectedKnown:   !next.IsNil(),
				parentAddr:      cur,
				parentFromCache: fromCache,
				path:            path,
			}, nil
		}
		cur = child
	}
	return leafRef{}, fmt.Errorf("core: traverseFrom(%#x): descent loop exhausted", key)
}

// fetchLeafWindow reads entries [home, home+count) of a leaf (circular),
// including a metadata replica, into a fresh image, validating versions
// and returning the covered entry indexes and the replica group. When
// the ReplicateMeta ablation is off, the replica is fetched with a
// dedicated extra READ, as §3.2.2 describes.
func (c *Client) fetchLeafWindow(leaf dmsim.GAddr, home, count int) (*leafImage, []int, int, error) {
	lay := c.ix.leaf
	im := lay.getImage()
	segs, idxs := lay.neighborhoodSegments(home, count, c.ix.opts.ReplicateMeta)

	for try := 0; try < maxRetries; try++ {
		var err error
		if len(segs) == 1 {
			err = c.dc.Read(leaf.Add(uint64(segs[0].Off)), im.buf[segs[0].Off:segs[0].End])
		} else {
			addrs := make([]dmsim.GAddr, len(segs))
			bufs := make([][]byte, len(segs))
			for i, s := range segs {
				addrs[i] = leaf.Add(uint64(s.Off))
				bufs[i] = im.buf[s.Off:s.End]
			}
			err = c.dc.ReadBatch(addrs, bufs)
		}
		if err != nil {
			lay.putImage(im)
			return nil, nil, 0, err
		}

		ranges := segs
		metaG := lay.metaInRanges(ranges)
		if !c.ix.opts.ReplicateMeta || metaG < 0 {
			// Dedicated metadata READ (the "+Leaf Meta" ablation): fetch
			// replica 0 separately, costing one extra round trip.
			rc := lay.replicaCells[0]
			if err := c.dc.Read(leaf.Add(uint64(rc.Off)), im.buf[rc.Off:rc.End()]); err != nil {
				lay.putImage(im)
				return nil, nil, 0, err
			}
			metaG = 0
			ranges = append(append([]byteRange{}, segs...), byteRange{Off: rc.Off, End: rc.End()})
		}

		if err := checkVersions(im.buf, 0, lay.coveredCells(ranges)); err != nil {
			c.obs.TornReads.Inc()
			c.yield()
			continue
		}
		c.resetBackoff()
		return im, idxs, metaG, nil
	}
	lay.putImage(im)
	return nil, nil, 0, fmt.Errorf("core: leaf %v: torn-read retries exhausted", leaf)
}

// validateLeafMeta applies sibling-based validation to a fetched leaf
// window. Returns errRestart for stale caches and deleted nodes; reports
// followSibling=true when the reader should continue into the sibling
// (possible half-split).
func (c *Client) validateLeafMeta(ref *leafRef, meta leafMeta, key uint64, found bool) (followSibling bool, err error) {
	if !meta.valid {
		return false, errRestart
	}
	mismatch := ref.expectedKnown && meta.sibling != ref.expected
	if mismatch && ref.parentFromCache {
		// Cache validation (§4.2.3 rule 1): the cached parent predates a
		// split; invalidate and retry the whole search.
		c.cn.cache.invalidate(ref.parentAddr)
		return false, errRestart
	}
	if found {
		return false, nil
	}
	// Half-split validation (§4.2.3 rule 2): key absent, sibling pointer
	// mismatched (or unknown with the key beyond the fence) — the key may
	// have moved right.
	if mismatch {
		return true, nil
	}
	if !ref.expectedKnown && !meta.fenceInf && key >= meta.fenceHi && !meta.sibling.IsNil() {
		return true, nil
	}
	return false, nil
}

// searchOneSided performs a point query with one-sided verbs only; the
// public Search (offload.go) routes between this and the MN-side
// offload program.
func (c *Client) searchOneSided(key uint64) ([]byte, error) {
	for attempt := 0; attempt < maxRetries; attempt++ {
		ref, err := c.traverse(key)
		if err != nil {
			return nil, err
		}
		val, err := c.searchLeafChain(ref, key)
		if err == errRestart {
			c.obs.Retries.Inc()
			c.rootAddr = dmsim.NilGAddr // a split root-leaf invalidates it
			c.yield()
			continue
		}
		return val, err
	}
	return nil, fmt.Errorf("core: Search(%#x): retries exhausted", key)
}

// searchLeafChain searches the leaf ref points at, following sibling
// pointers across half-splits.
func (c *Client) searchLeafChain(ref leafRef, key uint64) ([]byte, error) {
	lay := c.ix.leaf
	home := lay.homeOf(key)
	cur := ref
	for hops := 0; hops <= maxRetries; hops++ {
		// Hotness-aware speculative read (§4.3): try the single hot
		// entry first.
		if idx := c.cn.hotspot.lookup(cur.addr, key, home, lay.h, lay.span); idx >= 0 {
			val, ok, err := c.speculativeRead(cur.addr, idx, key)
			if err != nil {
				return nil, err
			}
			c.cn.hotspot.noteSpeculation(ok)
			if ok {
				c.obs.HotspotHits.Inc()
				return val, nil
			}
			c.obs.HotspotMisses.Inc()
			c.cn.hotspot.drop(cur.addr, idx)
		}

		im, idxs, metaG, err := c.fetchLeafWindow(cur.addr, home, lay.h)
		if err != nil {
			return nil, err
		}

		// Third synchronization level (§4.1.2): the stored hopscotch
		// bitmap of the home entry must match the bitmap reconstructed
		// from the keys actually fetched; a mismatch means a concurrent
		// hop-range write was caught mid-flight.
		homeEntry := im.entry(home)
		if homeEntry.hopBM != im.reconstructHopBitmap(home) {
			lay.putImage(im)
			return nil, errRestart
		}

		foundIdx := -1
		var foundVal []byte
		for d := 0; d < lay.h; d++ {
			if homeEntry.hopBM&(1<<uint(d)) == 0 {
				continue
			}
			e := im.entry(idxs[d])
			if e.occupied && e.key == key {
				foundIdx = idxs[d]
				foundVal = e.value
				break
			}
		}

		meta := im.meta(metaG)
		// Everything consumed below (foundVal, meta) is already copied
		// out of the image; recycle it before the verdict.
		lay.putImage(im)
		follow, err := c.validateLeafMeta(&cur, meta, key, foundIdx >= 0)
		if err != nil {
			return nil, err
		}
		if foundIdx >= 0 {
			c.cn.hotspot.record(cur.addr, foundIdx, key)
			if c.ix.opts.Indirect {
				return c.readIndirect(foundVal, key)
			}
			return append([]byte(nil), foundVal...), nil
		}
		if follow {
			c.obs.SiblingChases.Inc()
			cur = leafRef{addr: meta.sibling}
			continue
		}
		return nil, ErrNotFound
	}
	return nil, fmt.Errorf("core: Search(%#x): sibling chain too long", key)
}

// speculativeRead fetches one entry cell and reports whether it held the
// key with consistent versions.
func (c *Client) speculativeRead(leaf dmsim.GAddr, idx int, key uint64) ([]byte, bool, error) {
	lay := c.ix.leaf
	cellC := lay.entryCells[idx]
	im := lay.getImage()
	defer lay.putImage(im)
	if err := c.dc.Read(leaf.Add(uint64(cellC.Off)), im.buf[cellC.Off:cellC.End()]); err != nil {
		return nil, false, err
	}
	if err := checkVersions(im.buf, 0, []cell{cellC}); err != nil {
		return nil, false, nil // torn: treat as misspeculation
	}
	e := im.entry(idx)
	if !e.occupied || e.key != key {
		return nil, false, nil
	}
	if c.ix.opts.Indirect {
		val, err := c.readIndirect(e.value, key)
		if err == errRestart {
			return nil, false, nil
		}
		return val, err == nil, err
	}
	return append([]byte(nil), e.value...), true, nil
}

// readIndirect follows a leaf entry's block pointer and returns the
// value stored in the KV block (§4.5). The block holds [8B key][value];
// a key mismatch means the entry was concurrently re-pointed.
func (c *Client) readIndirect(ptrBytes []byte, key uint64) ([]byte, error) {
	ptr := dmsim.UnpackGAddr(binary.LittleEndian.Uint64(ptrBytes[:8]))
	if ptr.IsNil() {
		return nil, errRestart
	}
	buf := make([]byte, 8+c.ix.opts.ValueSize)
	if err := c.dc.Read(ptr, buf); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(buf[:8]) != key {
		return nil, errRestart
	}
	return buf[8:], nil
}
