package core

import (
	"testing"

	"chime/internal/dmsim"
)

// buildAllocTree loads a tree big enough to have real internal levels,
// returning a client with a warm node cache.
func buildAllocTree(tb testing.TB, n int) *Client {
	tb.Helper()
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 512 << 20
	f := dmsim.MustNewFabric(cfg)
	ix, err := Bootstrap(f, DefaultOptions())
	if err != nil {
		tb.Fatal(err)
	}
	cn := ix.NewComputeNode(64<<20, 1<<20)
	cl := cn.NewClient()
	for i := 1; i <= n; i++ {
		if err := cl.Insert(uint64(i)*7, val8(uint64(i))); err != nil {
			tb.Fatal(err)
		}
	}
	return cl
}

// TestSearchAllocsBounded pins the effect of image pooling on the read
// path. A warm-cache search fetches one leaf window into a pooled
// buffer; without pooling every search allocates a full leaf image
// (plus an internal image per cache miss), which pushes the allocation
// count well past this ceiling. The bound is ~2x the measured warm
// figure so it only trips on structural regressions, not noise.
func TestSearchAllocsBounded(t *testing.T) {
	cl := buildAllocTree(t, 2000)
	key := uint64(700) * 7
	for i := 0; i < 3; i++ { // warm cache and pools
		if _, err := cl.Search(key); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := cl.Search(key); err != nil {
			t.Fatal(err)
		}
	})
	const maxAllocs = 40
	if avg > maxAllocs {
		t.Fatalf("warm Search allocates %.1f objects/op, want <= %d (image pooling regressed?)", avg, maxAllocs)
	}
}

// TestInsertAllocsBounded pins image pooling on the write path: a warm
// upsert (same key re-inserted) locks, fetches one insert window into a
// pooled buffer, and writes back. Without pooling every write allocates
// a full leaf image, blowing well past this ceiling.
func TestInsertAllocsBounded(t *testing.T) {
	cl := buildAllocTree(t, 2000)
	key := uint64(700) * 7
	for i := 0; i < 3; i++ { // warm cache and pools
		if err := cl.Insert(key, val8(1)); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := cl.Insert(key, val8(2)); err != nil {
			t.Fatal(err)
		}
	})
	const maxAllocs = 60
	if avg > maxAllocs {
		t.Fatalf("warm Insert allocates %.1f objects/op, want <= %d (write-path image pooling regressed?)", avg, maxAllocs)
	}
}

// TestUpdateAllocsBounded does the same for the update/delete window
// path (fetchLeafWindow + writeRangeAndUnlock).
func TestUpdateAllocsBounded(t *testing.T) {
	cl := buildAllocTree(t, 2000)
	key := uint64(700) * 7
	for i := 0; i < 3; i++ {
		if err := cl.Update(key, val8(1)); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := cl.Update(key, val8(3)); err != nil {
			t.Fatal(err)
		}
	})
	const maxAllocs = 60
	if avg > maxAllocs {
		t.Fatalf("warm Update allocates %.1f objects/op, want <= %d (write-path image pooling regressed?)", avg, maxAllocs)
	}
}

func BenchmarkSearch(b *testing.B) {
	cl := buildAllocTree(b, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i%2000+1) * 7
		if _, err := cl.Search(k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScan(b *testing.B) {
	cl := buildAllocTree(b, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Scan(uint64(i%1000+1)*7, 50); err != nil {
			b.Fatal(err)
		}
	}
}
