package core

import (
	"testing"

	"chime/internal/ycsb"
)

// Verb-count assertions for the doorbell write+unlock fusion (§4.4 /
// Sherman's combined WRITE): a leaf write must cost exactly THREE round
// trips — lock CAS, window fetch, and one fused doorbell batch carrying
// the data ranges plus the cleared lock word. An unfused path would pay
// a fourth trip for the standalone unlock WRITE.
//
// The tree is kept to a single root leaf so traversal costs no trips
// once the root is cached, making the write protocol's trips exact.

func primedRootLeaf(t *testing.T) *Client {
	t.Helper()
	_, cl := newTestTree(t, DefaultOptions())
	for i := uint64(0); i < 4; i++ {
		if err := cl.Insert(ycsb.KeyOf(i), val8(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Prime the cached root pointer so the measured ops pay zero
	// traversal trips.
	if _, err := cl.Search(ycsb.KeyOf(0)); err != nil {
		t.Fatal(err)
	}
	return cl
}

func tripsOf(t *testing.T, cl *Client, f func()) int64 {
	t.Helper()
	cl.DM().ResetStats()
	f()
	return cl.DM().Stats().Trips
}

func TestUpdateTripCount(t *testing.T) {
	cl := primedRootLeaf(t)
	got := tripsOf(t, cl, func() {
		if err := cl.Update(ycsb.KeyOf(1), val8(99)); err != nil {
			t.Fatal(err)
		}
	})
	if got != 3 {
		t.Fatalf("Update cost %d trips, want 3 (lock CAS + window fetch + fused write/unlock)", got)
	}
}

func TestInsertTripCount(t *testing.T) {
	cl := primedRootLeaf(t)
	got := tripsOf(t, cl, func() {
		if err := cl.Insert(ycsb.KeyOf(100), val8(1)); err != nil {
			t.Fatal(err)
		}
	})
	if got != 3 {
		t.Fatalf("Insert cost %d trips, want 3 (lock CAS + window fetch + fused write/unlock)", got)
	}
}

func TestDeleteTripCount(t *testing.T) {
	cl := primedRootLeaf(t)
	got := tripsOf(t, cl, func() {
		if err := cl.Delete(ycsb.KeyOf(2)); err != nil {
			t.Fatal(err)
		}
	})
	// Lock CAS + window fetch + fused write/unlock; a delete that may
	// have emptied the leaf adds merge-confirmation reads, so allow the
	// no-merge case only (the leaf still holds keys).
	if got != 3 {
		t.Fatalf("Delete cost %d trips, want 3", got)
	}
}

func TestInsertBatchSingletonTripCount(t *testing.T) {
	cl := primedRootLeaf(t)
	got := tripsOf(t, cl, func() {
		keys := []uint64{ycsb.KeyOf(200)}
		vals := [][]byte{val8(1)}
		if err := cl.InsertBatch(keys, vals, 1)[0]; err != nil {
			t.Fatal(err)
		}
	})
	if got != 3 {
		t.Fatalf("singleton InsertBatch cost %d trips, want 3", got)
	}
}
