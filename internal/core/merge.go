package core

import (
	"sort"

	"chime/internal/dmsim"
)

// Leaf merging (§4.4 Delete: "Otherwise, a node merge is triggered like
// DM B+ trees, where node-level versions are used to detect
// inconsistencies").
//
// Policy: a leaf that a delete leaves completely empty is unlinked from
// the B-link chain and its routing entry removed from the parent. The
// left sibling absorbs the victim's (empty) key range, keeping the
// fence invariants intact. Deadlock-freedom comes from a strict
// acquisition order — parent, then left sibling, then victim — and from
// the fact that no other code path holds more than one node lock at a
// time.
//
// A leaf that is its parent's leftmost child is not merged (its left
// sibling lives under a different parent); it stays valid and empty,
// ready to absorb future inserts. Node memory is not recycled (the
// allocator has no free list), matching the simulator's allocation
// model.

// maybeMergeLeaf is called after a delete observed a fully empty
// neighborhood with an all-clear vacancy bitmap. It confirms emptiness
// with a whole-node read and, when confirmed, performs the unlink.
// All failures are silent: merging is an optimization, never required
// for correctness.
func (c *Client) maybeMergeLeaf(addr dmsim.GAddr, key uint64) {
	// Confirm the leaf is empty outside any lock first (cheap bail-out).
	im, _, metaG, err := c.fetchWholeLeaf(addr)
	if err != nil {
		return
	}
	if !im.meta(metaG).valid || !leafEmpty(im) {
		return
	}
	c.mergeEmptyLeaf(addr, key)
}

func leafEmpty(im *leafImage) bool {
	for i := 0; i < im.lay.span; i++ {
		if im.entry(i).occupied {
			return false
		}
	}
	return true
}

// mergeEmptyLeaf unlinks the (believed empty) leaf covering key.
func (c *Client) mergeEmptyLeaf(victim dmsim.GAddr, key uint64) {
	// Locate the parent with a fresh remote walk — the cache may be
	// what is stale.
	parentAddr, err := c.findParentAt(1, key)
	if err != nil {
		return
	}
	if err := c.lockNode(parentAddr); err != nil {
		return
	}
	parent, parentImg, err := c.readInternal(parentAddr)
	if err != nil || !parent.valid || parent.level != 1 || !parent.covers(key) {
		c.unlockNode(parentAddr)
		return
	}

	// Identify the victim's routing entry and its left neighbor.
	child, entryIdx, _ := parent.childFor(key)
	if child != victim || entryIdx < 0 {
		// Either the tree moved, or the victim is the leftmost child
		// (entryIdx == -1): skip.
		c.unlockNode(parentAddr)
		return
	}
	var leftAddr dmsim.GAddr
	if entryIdx == 0 {
		leftAddr = parent.leftmost
	} else {
		leftAddr = parent.entries[entryIdx-1].child
	}
	if leftAddr.IsNil() {
		c.unlockNode(parentAddr)
		return
	}

	// Lock left then victim (chain order).
	leftLW, err := c.acquireLeafLock(leftAddr)
	if err != nil {
		c.unlockNode(parentAddr)
		return
	}
	victimLW, err := c.acquireLeafLock(victim)
	if err != nil {
		c.unlockLeaf(leftAddr, leftLW)
		c.unlockNode(parentAddr)
		return
	}

	abort := func() {
		c.unlockLeaf(victim, victimLW)
		c.unlockLeaf(leftAddr, leftLW)
		c.unlockNode(parentAddr)
	}

	// Re-verify under the locks: victim still empty and valid, left
	// still points at it.
	vIm, _, vMetaG, err := c.fetchWholeLeaf(victim)
	if err != nil {
		abort()
		return
	}
	vMeta := vIm.meta(vMetaG)
	if !vMeta.valid || !leafEmpty(vIm) {
		abort()
		return
	}
	lIm, _, lMetaG, err := c.fetchWholeLeaf(leftAddr)
	if err != nil {
		abort()
		return
	}
	lMeta := lIm.meta(lMetaG)
	if !lMeta.valid || lMeta.sibling != victim {
		abort()
		return
	}

	// 1. Left absorbs the victim's range: sibling and fence move over.
	//    A node write: bump NV across the left node.
	lIm.setAllMeta(leafMeta{
		valid:    true,
		sibling:  vMeta.sibling,
		fenceInf: vMeta.fenceInf,
		fenceHi:  vMeta.fenceHi,
	})
	lIm.bumpAllNV()
	if err := c.dc.Write(leftAddr.Add(lineSize), lIm.buf[lineSize:]); err != nil {
		abort()
		return
	}

	// 2. Invalidate the victim so readers holding its address restart.
	vIm.setAllMeta(leafMeta{valid: false, sibling: vMeta.sibling, fenceInf: vMeta.fenceInf, fenceHi: vMeta.fenceHi})
	vIm.bumpAllNV()
	if err := c.dc.Write(victim.Add(lineSize), vIm.buf[lineSize:]); err != nil {
		abort()
		return
	}

	// 3. Remove the routing entry from the parent and release it.
	parent.entries = append(parent.entries[:entryIdx], parent.entries[entryIdx+1:]...)
	img := c.ix.inner.encodeInternal(parent, parentImg)
	if err := c.writeInternalAndUnlock(parentAddr, img); err != nil {
		c.unlockLeaf(victim, victimLW)
		c.unlockLeaf(leftAddr, leftLW)
		return
	}
	c.cn.cache.put(parentAddr, parent, int64(c.ix.inner.size))
	c.obs.Merges.Inc()

	c.unlockLeaf(victim, victimLW)
	c.unlockLeaf(leftAddr, leftLW)
}

// deleteLeftEmpty is invoked from the delete path: it reports whether
// the post-delete window hints that the whole leaf might now be empty
// (no occupied entry in the fetched neighborhood and an all-clear
// vacancy bitmap), which gates the more expensive whole-node check.
func deleteLeftEmpty(im *leafImage, idxs []int, lw lockWord) bool {
	if lw.vacancy != 0 {
		return false
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		if im.entry(i).occupied {
			return false
		}
	}
	return true
}
