package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"

	"chime/internal/ycsb"
)

func checkAll(t *testing.T, cl *Client, want map[uint64]uint64) {
	t.Helper()
	for k, v := range want {
		got, err := cl.Search(k)
		if err != nil {
			t.Fatalf("key %#x lost: %v", k, err)
		}
		if binary.LittleEndian.Uint64(got) != v {
			t.Fatalf("key %#x = %x, want %d", k, got, v)
		}
	}
}

func TestInsertBatchBasic(t *testing.T) {
	for _, depth := range []int{1, 8} {
		t.Run(fmt.Sprintf("depth%d", depth), func(t *testing.T) {
			_, cl := newTestTree(t, DefaultOptions())
			const n = 500
			keys := make([]uint64, n)
			vals := make([][]byte, n)
			want := map[uint64]uint64{}
			for i := range keys {
				keys[i] = ycsb.KeyOf(uint64(i))
				vals[i] = val8(uint64(i) + 1)
				want[keys[i]] = uint64(i) + 1
			}
			for i, err := range cl.InsertBatch(keys, vals, depth) {
				if err != nil {
					t.Fatalf("key %d: %v", i, err)
				}
			}
			checkAll(t, cl, want)
		})
	}
}

func TestInsertBatchUpsert(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	const n = 300
	keys := make([]uint64, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = ycsb.KeyOf(uint64(i))
		vals[i] = val8(uint64(i) + 1)
		if err := cl.Insert(keys[i], val8(0xdead)); err != nil {
			t.Fatal(err)
		}
	}
	want := map[uint64]uint64{}
	for i, k := range keys {
		want[k] = uint64(i) + 1
	}
	for i, err := range cl.InsertBatch(keys, vals, 8) {
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
	}
	checkAll(t, cl, want)
}

// TestUpdateBatchMixed checks per-key error isolation: absent keys
// report ErrNotFound without disturbing their neighbors' updates.
func TestUpdateBatchMixed(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	const n = 200
	keys := make([]uint64, n)
	vals := make([][]byte, n)
	want := map[uint64]uint64{}
	for i := range keys {
		keys[i] = ycsb.KeyOf(uint64(i))
		vals[i] = val8(uint64(i) + 1)
		if i%3 != 0 {
			continue // every third key is never inserted
		}
		if err := cl.Insert(keys[i], val8(7)); err != nil {
			t.Fatal(err)
		}
	}
	errs := cl.UpdateBatch(keys, vals, 8)
	for i, err := range errs {
		if i%3 == 0 {
			if err != nil {
				t.Fatalf("present key %d: %v", i, err)
			}
			want[keys[i]] = uint64(i) + 1
		} else if !errors.Is(err, ErrNotFound) {
			t.Fatalf("absent key %d: err = %v, want ErrNotFound", i, err)
		}
	}
	checkAll(t, cl, want)
	for i := range keys {
		if i%3 != 0 {
			if _, err := cl.Search(keys[i]); !errors.Is(err, ErrNotFound) {
				t.Fatalf("absent key %d materialized: %v", i, err)
			}
		}
	}
}

// TestInsertBatchSplits starts from an empty tree (the root is a leaf)
// and pushes enough keys through one batch to force repeated leaf and
// root splits mid-flight: every key must land despite the restarts.
func TestInsertBatchSplits(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	const n = 2500
	keys := make([]uint64, n)
	vals := make([][]byte, n)
	want := map[uint64]uint64{}
	for i := range keys {
		keys[i] = ycsb.KeyOf(uint64(i))
		vals[i] = val8(uint64(i) + 1)
		want[keys[i]] = uint64(i) + 1
	}
	for i, err := range cl.InsertBatch(keys, vals, 16) {
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
	}
	checkAll(t, cl, want)
}

// TestWriteBatchCombining verifies per-leaf write combining: on a
// root-leaf tree every key of the batch resolves to the same leaf, so
// one cycle should absorb the whole admission window.
func TestWriteBatchCombining(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	const n = 8
	keys := make([]uint64, n)
	vals := make([][]byte, n)
	want := map[uint64]uint64{}
	for i := range keys {
		keys[i] = ycsb.KeyOf(uint64(i))
		vals[i] = val8(uint64(i) + 1)
		want[keys[i]] = uint64(i) + 1
	}
	for i, err := range cl.InsertBatch(keys, vals, n) {
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
	}
	cycles, combined := cl.WriteCombineStats()
	if cycles == 0 {
		t.Fatal("no write cycles recorded")
	}
	if combined == 0 {
		t.Fatalf("no combining on a single-leaf batch (cycles=%d)", cycles)
	}
	checkAll(t, cl, want)
}

// TestWriteBatchRestartIsolation hammers the per-key restart paths: two
// concurrent batch writers over interleaved key ranges force splits,
// stale cached parents, and lock conflicts while each op must still
// land or fail only for itself. Run under -race this also gates the
// scheduler's bookkeeping.
func TestWriteBatchRestartIsolation(t *testing.T) {
	ix, err := Bootstrap(testFabric(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cn := ix.NewComputeNode(64<<20, 1<<20)
	const writers, perWriter = 4, 600
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := cn.NewClient()
			keys := make([]uint64, perWriter)
			vals := make([][]byte, perWriter)
			for i := range keys {
				id := uint64(i*writers + w) // interleaved ownership
				keys[i] = ycsb.KeyOf(id)
				vals[i] = val8(id + 1)
			}
			for i, err := range cl.InsertBatch(keys, vals, 8) {
				if err != nil {
					errCh <- fmt.Errorf("writer %d key %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	cl := cn.NewClient()
	for id := uint64(0); id < writers*perWriter; id++ {
		got, err := cl.Search(ycsb.KeyOf(id))
		if err != nil {
			t.Fatalf("lost batched insert %d: %v", id, err)
		}
		if binary.LittleEndian.Uint64(got) != id+1 {
			t.Fatalf("batched insert %d corrupted: %x", id, got)
		}
	}
}

// TestWriteBatchVsSyncWriters races batch writers against synchronous
// Insert/Update/Delete clients on overlapping leaves (disjoint keys):
// the batch path bypasses the local lock table, so this exercises
// remote-CAS vs lock-table interleavings both ways.
func TestWriteBatchVsSyncWriters(t *testing.T) {
	ix, err := Bootstrap(testFabric(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cn := ix.NewComputeNode(64<<20, 1<<20)
	const n = 800
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	wg.Add(2)
	go func() {
		defer wg.Done()
		cl := cn.NewClient()
		keys := make([]uint64, n)
		vals := make([][]byte, n)
		for i := range keys {
			keys[i] = ycsb.KeyOf(uint64(2 * i)) // even ids
			vals[i] = val8(uint64(2*i) + 1)
		}
		for i, err := range cl.InsertBatch(keys, vals, 8) {
			if err != nil {
				errCh <- fmt.Errorf("batch key %d: %w", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		cl := cn.NewClient()
		for i := 0; i < n; i++ {
			id := uint64(2*i + 1) // odd ids
			if err := cl.Insert(ycsb.KeyOf(id), val8(id+1)); err != nil {
				errCh <- fmt.Errorf("sync insert %d: %w", i, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	cl := cn.NewClient()
	for id := uint64(0); id < 2*n; id++ {
		got, err := cl.Search(ycsb.KeyOf(id))
		if err != nil {
			t.Fatalf("lost id %d: %v", id, err)
		}
		if binary.LittleEndian.Uint64(got) != id+1 {
			t.Fatalf("id %d corrupted: %x", id, got)
		}
	}
}

// TestInsertBatchIndirect runs the batch path in indirect (KV-block)
// mode, where prepared values are out-of-line pointer blocks.
func TestInsertBatchIndirect(t *testing.T) {
	opts := DefaultOptions()
	opts.Indirect = true
	opts.ValueSize = 24
	_, cl := newTestTree(t, opts)
	const n = 400
	keys := make([]uint64, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = ycsb.KeyOf(uint64(i))
		v := make([]byte, 24)
		binary.LittleEndian.PutUint64(v, uint64(i)+1)
		vals[i] = v
	}
	for i, err := range cl.InsertBatch(keys, vals, 8) {
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
	}
	for i, k := range keys {
		got, err := cl.Search(k)
		if err != nil {
			t.Fatalf("key %d lost: %v", i, err)
		}
		if binary.LittleEndian.Uint64(got[:8]) != uint64(i)+1 {
			t.Fatalf("key %d = %x", i, got)
		}
	}
}
