package core

// The 8-byte lock word at offset 0 of every leaf node, per §4.2.1 and
// §4.2.3 of the paper. RDMA atomics operate on 8-byte words, but a lock
// needs only one bit, so CHIME packs the node's vacancy bitmap and the
// argmax-of-keys index into the spare bits. A masked-CAS with a compare
// mask of just the lock bit acquires the lock *and* returns the whole
// word, so the writer learns the vacancy bitmap with no extra access;
// the release WRITE carries the updated bitmap back for free.
//
// Bit layout (LSB first):
//
//	bit  0        lock
//	bits 1..48    vacancy bitmap (48 groups; bit g = 1 means every entry
//	              in group g is occupied — "no vacancy here")
//	bits 49..58   argmax: entry index of the maximum key (10 bits)
//	bit  59       argmax valid
//	bits 60..63   unused

const (
	lockBit = uint64(1)

	vacancyShift = 1
	vacancyBits  = 48
	vacancyMask  = ((uint64(1) << vacancyBits) - 1) << vacancyShift

	argmaxShift = 49
	argmaxBits  = 10
	argmaxMask  = ((uint64(1) << argmaxBits) - 1) << argmaxShift

	argmaxValidBit = uint64(1) << 59
)

// lockWord is the decoded form of a leaf's lock word.
type lockWord struct {
	locked      bool
	vacancy     uint64 // bit g set = group g full
	argmax      int    // entry index of the max key
	argmaxValid bool
}

func decodeLockWord(w uint64) lockWord {
	return lockWord{
		locked:      w&lockBit != 0,
		vacancy:     (w & vacancyMask) >> vacancyShift,
		argmax:      int((w & argmaxMask) >> argmaxShift),
		argmaxValid: w&argmaxValidBit != 0,
	}
}

func (lw lockWord) encode() uint64 {
	var w uint64
	if lw.locked {
		w |= lockBit
	}
	w |= (lw.vacancy << vacancyShift) & vacancyMask
	w |= (uint64(lw.argmax) << argmaxShift) & argmaxMask
	if lw.argmaxValid {
		w |= argmaxValidBit
	}
	return w
}

// vacancyGroups returns how many vacancy-bitmap groups a span uses and
// how many entries each bit covers. When the span exceeds the bitmap
// width, each bit covers several entries "as evenly as possible" (§4.2.1
// maps bits to entry groups; we use a uniform ceiling size).
func vacancyGroups(span int) (groups, perBit int) {
	if span <= vacancyBits {
		return span, 1
	}
	perBit = (span + vacancyBits - 1) / vacancyBits
	groups = (span + perBit - 1) / perBit
	return groups, perBit
}

// groupOf returns the vacancy group of an entry index.
func groupOf(idx, perBit int) int { return idx / perBit }

// groupRange returns the entry index range [lo, hi) covered by group g.
func groupRange(g, perBit, span int) (lo, hi int) {
	lo = g * perBit
	hi = lo + perBit
	if hi > span {
		hi = span
	}
	return lo, hi
}
