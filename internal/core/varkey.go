package core

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"chime/internal/dmsim"
)

// Variable-length key support (§4.5): the first 8 bytes of the key act
// as a fingerprint stored in the leaf entry, while the full key and
// value live in a remote block linked from the entry. Keys sharing a
// fingerprint (rare) chain their blocks; a lookup walks the chain
// comparing full keys.
//
// Block layout: [8B next][2B keyLen][4B valLen][key][value].
//
// Blocks are immutable once published: updates and deletes rebuild the
// affected chain prefix into fresh blocks under the leaf lock and
// repoint the leaf entry, so lock-free readers always observe a
// complete, valid chain (possibly one update old — the same overlap
// semantics as inline values).

const (
	varBlockHeader = 8 + 2 + 4
	maxVarKeyLen   = 1<<16 - 1
	maxVarValLen   = 1<<31 - 1
)

// KVBytes is one variable-length scan result.
type KVBytes struct {
	Key   []byte
	Value []byte
}

// FingerprintOf returns the 8-byte big-endian prefix fingerprint used
// to place a variable-length key in the tree. Fingerprint order equals
// bytewise prefix order, so range scans remain meaningful.
func FingerprintOf(key []byte) uint64 {
	var b [8]byte
	copy(b[:], key)
	return binary.BigEndian.Uint64(b[:])
}

func (c *Client) requireVarKeys() error {
	if !c.ix.opts.VarKeys {
		return fmt.Errorf("core: variable-length API requires Options.VarKeys")
	}
	return nil
}

func validateVarKV(key, value []byte) error {
	if len(key) == 0 || len(key) > maxVarKeyLen {
		return fmt.Errorf("core: key length %d out of [1,%d]", len(key), maxVarKeyLen)
	}
	if len(value) > maxVarValLen {
		return fmt.Errorf("core: value length %d too large", len(value))
	}
	return nil
}

// varBlock is a decoded chain block.
type varBlock struct {
	addr dmsim.GAddr
	next dmsim.GAddr
	key  []byte
	val  []byte
}

// writeVarBlock allocates and writes a block, returning its address.
func (c *Client) writeVarBlock(next dmsim.GAddr, key, value []byte) (dmsim.GAddr, error) {
	buf := make([]byte, varBlockHeader+len(key)+len(value))
	binary.LittleEndian.PutUint64(buf[0:8], next.Pack())
	binary.LittleEndian.PutUint16(buf[8:10], uint16(len(key)))
	binary.LittleEndian.PutUint32(buf[10:14], uint32(len(value)))
	copy(buf[varBlockHeader:], key)
	copy(buf[varBlockHeader+len(key):], value)
	addr, err := c.alloc.Alloc(len(buf))
	if err != nil {
		return dmsim.NilGAddr, err
	}
	if err := c.dc.Write(addr, buf); err != nil {
		return dmsim.NilGAddr, err
	}
	return addr, nil
}

// readVarBlock fetches a chain block. Block sizes vary, so the header
// and body are fetched with one doorbell batch sized by a conservative
// first segment: the header plus maxInline bytes; longer bodies cost a
// second read (rare with typical KV sizes).
func (c *Client) readVarBlock(addr dmsim.GAddr) (varBlock, error) {
	const firstFetch = 256
	buf := make([]byte, firstFetch)
	if err := c.dc.Read(addr, buf); err != nil {
		return varBlock{}, err
	}
	next := dmsim.UnpackGAddr(binary.LittleEndian.Uint64(buf[0:8]))
	keyLen := int(binary.LittleEndian.Uint16(buf[8:10]))
	valLen := int(binary.LittleEndian.Uint32(buf[10:14]))
	total := varBlockHeader + keyLen + valLen
	if total > firstFetch {
		rest := make([]byte, total-firstFetch)
		if err := c.dc.Read(addr.Add(firstFetch), rest); err != nil {
			return varBlock{}, err
		}
		buf = append(buf, rest...)
	}
	b := varBlock{
		addr: addr,
		next: next,
		key:  buf[varBlockHeader : varBlockHeader+keyLen],
		val:  buf[varBlockHeader+keyLen : total],
	}
	return b, nil
}

// readChain walks a fingerprint chain from head.
func (c *Client) readChain(head dmsim.GAddr) ([]varBlock, error) {
	var chain []varBlock
	for cur := head; !cur.IsNil(); {
		b, err := c.readVarBlock(cur)
		if err != nil {
			return nil, err
		}
		chain = append(chain, b)
		cur = b.next
		if len(chain) > 1024 {
			return nil, fmt.Errorf("core: fingerprint chain too long (corrupt?)")
		}
	}
	return chain, nil
}

func ptrBytes(addr dmsim.GAddr) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, addr.Pack())
	return b
}

func ptrOf(val []byte) dmsim.GAddr {
	return dmsim.UnpackGAddr(binary.LittleEndian.Uint64(val[:8]))
}

// SearchKV looks up a variable-length key (§4.5).
func (c *Client) SearchKV(key []byte) ([]byte, error) {
	if err := c.requireVarKeys(); err != nil {
		return nil, err
	}
	if err := validateVarKV(key, nil); err != nil {
		return nil, err
	}
	head, err := c.Search(FingerprintOf(key))
	if err != nil {
		return nil, err
	}
	chain, err := c.readChain(ptrOf(head))
	if err != nil {
		return nil, err
	}
	for _, b := range chain {
		if bytes.Equal(b.key, key) {
			return append([]byte(nil), b.val...), nil
		}
	}
	return nil, ErrNotFound
}

// InsertKV inserts or overwrites a variable-length key.
func (c *Client) InsertKV(key, value []byte) error {
	if err := c.requireVarKeys(); err != nil {
		return err
	}
	if err := validateVarKV(key, value); err != nil {
		return err
	}
	fp := FingerprintOf(key)
	return c.insertWith(fp, func(old []byte, exists bool) ([]byte, error) {
		if !exists {
			addr, err := c.writeVarBlock(dmsim.NilGAddr, key, value)
			if err != nil {
				return nil, err
			}
			return ptrBytes(addr), nil
		}
		// Fingerprint collision or update: rebuild the chain with the
		// new (key, value) replacing any exact match, keeping blocks
		// immutable.
		chain, err := c.readChain(ptrOf(old))
		if err != nil {
			return nil, err
		}
		return c.rebuildChain(chain, key, value, true)
	})
}

// UpdateKV overwrites an existing variable-length key, ErrNotFound
// otherwise.
func (c *Client) UpdateKV(key, value []byte) error {
	if err := c.requireVarKeys(); err != nil {
		return err
	}
	if err := validateVarKV(key, value); err != nil {
		return err
	}
	_, err := c.SearchKV(key) // cheap existence probe; races map to upsert
	if err != nil {
		return err
	}
	return c.InsertKV(key, value)
}

// rebuildChain writes a new chain equal to the old one with `key`
// removed (and, when insert is set, re-added at the head with the new
// value). It returns the new head pointer bytes, or nil when the
// resulting chain is empty.
func (c *Client) rebuildChain(chain []varBlock, key, value []byte, insert bool) ([]byte, error) {
	// The suffix strictly after the removed block can be reused as-is
	// (blocks are immutable); only the prefix needs copying.
	removed := -1
	for i, b := range chain {
		if bytes.Equal(b.key, key) {
			removed = i
			break
		}
	}
	var tail dmsim.GAddr // head of the reusable suffix
	prefix := chain
	if removed >= 0 {
		tail = chain[removed].next
		prefix = chain[:removed]
	} else if len(chain) > 0 {
		// Nothing removed: reuse the whole chain as the suffix.
		tail = chain[0].addr
		prefix = nil
	}
	// Copy the prefix back-to-front so each copy can point at the next.
	cur := tail
	for i := len(prefix) - 1; i >= 0; i-- {
		addr, err := c.writeVarBlock(cur, prefix[i].key, prefix[i].val)
		if err != nil {
			return nil, err
		}
		cur = addr
	}
	if insert {
		addr, err := c.writeVarBlock(cur, key, value)
		if err != nil {
			return nil, err
		}
		cur = addr
	}
	if cur.IsNil() {
		return nil, nil
	}
	return ptrBytes(cur), nil
}

// DeleteKV removes a variable-length key; the leaf entry disappears
// when its fingerprint chain empties.
func (c *Client) DeleteKV(key []byte) error {
	if err := c.requireVarKeys(); err != nil {
		return err
	}
	if err := validateVarKV(key, nil); err != nil {
		return err
	}
	fp := FingerprintOf(key)
	return c.modifyEntry(fp, func(e *leafEntry) (bool, error) {
		chain, err := c.readChain(ptrOf(e.value))
		if err != nil {
			return false, err
		}
		found := false
		for _, b := range chain {
			if bytes.Equal(b.key, key) {
				found = true
				break
			}
		}
		if !found {
			return false, ErrNotFound
		}
		head, err := c.rebuildChain(chain, key, nil, false)
		if err != nil {
			return false, err
		}
		if head == nil {
			return false, nil // chain empty: drop the entry
		}
		e.value = head
		return true, nil
	})
}

// ScanKV returns up to count items with keys bytewise >= start, in
// bytewise key order.
func (c *Client) ScanKV(start []byte, count int) ([]KVBytes, error) {
	if err := c.requireVarKeys(); err != nil {
		return nil, err
	}
	if count <= 0 {
		return nil, nil
	}
	fpStart := FingerprintOf(start)
	fetch := count
	for try := 0; try < 32; try++ {
		entries, err := c.Scan(fpStart, fetch)
		if err != nil {
			return nil, err
		}
		var out []KVBytes
		for _, kv := range entries {
			chain, err := c.readChain(ptrOf(kv.Value))
			if err != nil {
				return nil, err
			}
			var group []KVBytes
			for _, b := range chain {
				if bytes.Compare(b.key, start) >= 0 {
					group = append(group, KVBytes{
						Key:   append([]byte(nil), b.key...),
						Value: append([]byte(nil), b.val...),
					})
				}
			}
			sortKVBytes(group)
			out = append(out, group...)
		}
		if len(out) >= count {
			return out[:count], nil
		}
		if len(entries) < fetch {
			return out, nil // index exhausted
		}
		fetch *= 2
	}
	return nil, fmt.Errorf("core: ScanKV(%q): expansion retries exhausted", start)
}

func sortKVBytes(kvs []KVBytes) {
	// Insertion sort: groups are fingerprint-collision sets, almost
	// always of size 1.
	for i := 1; i < len(kvs); i++ {
		for j := i; j > 0 && bytes.Compare(kvs[j].Key, kvs[j-1].Key) < 0; j-- {
			kvs[j], kvs[j-1] = kvs[j-1], kvs[j]
		}
	}
}
