package core

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"

	"chime/internal/dmsim"
	"chime/internal/offroute"
)

func newOffloadTree(t *testing.T, cfg dmsim.Config, opts Options) (*dmsim.Fabric, *Index, *Client) {
	t.Helper()
	f := dmsim.MustNewFabric(cfg)
	ix, err := Bootstrap(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	cn := ix.NewComputeNode(64<<20, 1<<20)
	return f, ix, cn.NewClient()
}

// ModeAlways: every supported op goes through the MN program; results
// must match what the one-sided paths produce, and the MN CPU must have
// been charged.
func TestOffloadSearchUpdateScan(t *testing.T) {
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 512 << 20
	opts := DefaultOptions()
	opts.Offload = offroute.ModeAlways
	f, _, cl := newOffloadTree(t, cfg, opts)

	const n = 500 // enough keys to force splits: a real multi-level tree
	for i := uint64(1); i <= n; i++ {
		if err := cl.Insert(i*7, val8(i*100)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= n; i++ {
		got, err := cl.Search(i * 7)
		if err != nil {
			t.Fatalf("Search(%d): %v", i*7, err)
		}
		if binary.LittleEndian.Uint64(got) != i*100 {
			t.Fatalf("Search(%d) = %d, want %d", i*7, binary.LittleEndian.Uint64(got), i*100)
		}
	}
	if _, err := cl.Search(3); !errors.Is(err, ErrNotFound) {
		t.Fatalf("absent key: %v, want ErrNotFound", err)
	}

	for i := uint64(1); i <= n; i += 3 {
		if err := cl.Update(i*7, val8(i*1000)); err != nil {
			t.Fatalf("Update(%d): %v", i*7, err)
		}
	}
	if err := cl.Update(3, val8(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update absent key: %v, want ErrNotFound", err)
	}
	for i := uint64(1); i <= n; i++ {
		want := i * 100
		if i%3 == 1 {
			want = i * 1000
		}
		got, err := cl.Search(i * 7)
		if err != nil {
			t.Fatal(err)
		}
		if binary.LittleEndian.Uint64(got) != want {
			t.Fatalf("after update, Search(%d) = %d, want %d", i*7, binary.LittleEndian.Uint64(got), want)
		}
	}

	out, err := cl.Scan(7*10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 20 {
		t.Fatalf("scan returned %d items, want 20", len(out))
	}
	for j, kv := range out {
		wantKey := (10 + uint64(j)) * 7
		if kv.Key != wantKey {
			t.Fatalf("scan[%d].Key = %d, want %d", j, kv.Key, wantKey)
		}
		i := 10 + uint64(j)
		want := i * 100
		if i%3 == 1 {
			want = i * 1000
		}
		if binary.LittleEndian.Uint64(kv.Value) != want {
			t.Fatalf("scan[%d].Value = %d, want %d", j, binary.LittleEndian.Uint64(kv.Value), want)
		}
	}

	if off := cl.DM().Stats().Offloads; off == 0 {
		t.Error("ModeAlways client posted no offload verbs")
	}
	if st := f.MNCPUStatsFor(0); st.Ops == 0 || st.BusyNs == 0 {
		t.Errorf("MN CPU unused under ModeAlways: %+v", st)
	}
	if offOps, oneOps := cl.OffloadStats(); offOps == 0 || oneOps != 0 {
		t.Errorf("router stats = %d offloaded, %d one-sided; want all offloaded", offOps, oneOps)
	}
}

// Indirect mode: searches and scans offload (the program resolves KV
// blocks MN-side); updates are gated one-sided — and everything stays
// correct.
func TestOffloadIndirectSearch(t *testing.T) {
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 512 << 20
	opts := DefaultOptions()
	opts.Indirect = true
	opts.ValueSize = 64
	opts.Offload = offroute.ModeAlways
	_, ix, cl := newOffloadTree(t, cfg, opts)

	if ix.offloadUpdateOK() {
		t.Fatal("indirect updates must not be offloadable")
	}
	val := make([]byte, 64)
	for i := uint64(1); i <= 200; i++ {
		binary.LittleEndian.PutUint64(val, i*11)
		if err := cl.Insert(i, val); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 200; i++ {
		got, err := cl.Search(i)
		if err != nil {
			t.Fatalf("Search(%d): %v", i, err)
		}
		if len(got) != 64 || binary.LittleEndian.Uint64(got) != i*11 {
			t.Fatalf("Search(%d) = len %d, head %d", i, len(got), binary.LittleEndian.Uint64(got))
		}
	}
	out, err := cl.Scan(50, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 || out[0].Key != 50 {
		t.Fatalf("indirect scan: %d items, first key %d", len(out), out[0].Key)
	}
	if off := cl.DM().Stats().Offloads; off == 0 {
		t.Error("indirect searches posted no offload verbs")
	}
}

// Multiple MNs: descents and indirect blocks leave the program's MN, so
// it returns CrossMN verdicts and the client transparently falls back —
// correctness is preserved and the fallbacks are counted.
func TestOffloadCrossMNFallback(t *testing.T) {
	cfg := dmsim.DefaultConfig()
	cfg.MNs = 4
	cfg.MNSize = 128 << 20
	opts := DefaultOptions()
	opts.Offload = offroute.ModeAlways
	f, ix, cl := newOffloadTree(t, cfg, opts)

	cn2 := ix.NewComputeNode(64<<20, 0)
	writers := []*Client{cl, cn2.NewClient(), cn2.NewClient(), cn2.NewClient()}
	for w, cw := range writers {
		for i := uint64(0); i < 150; i++ {
			k := uint64(w)*1000 + i
			if err := cw.Insert(k, val8(k+7)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for w := range writers {
		for i := uint64(0); i < 150; i++ {
			k := uint64(w)*1000 + i
			got, err := cl.Search(k)
			if err != nil {
				t.Fatalf("Search(%d): %v", k, err)
			}
			if binary.LittleEndian.Uint64(got) != k+7 {
				t.Fatalf("Search(%d) = %d, want %d", k, binary.LittleEndian.Uint64(got), k+7)
			}
		}
	}
	total := f.TotalMNCPUStats()
	if total.Ops == 0 {
		t.Fatal("no offloaded programs executed")
	}
	if total.Fallbacks == 0 {
		t.Error("4-MN tree produced no CrossMN fallbacks; expected split leaves off MN 0")
	}
}

// Adaptive mode under a hot workload must stay correct and route ops to
// both paths (probing keeps the disfavored path sampled).
func TestOffloadAdaptiveRoutesAndStaysCorrect(t *testing.T) {
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 512 << 20
	opts := DefaultOptions()
	opts.Offload = offroute.ModeAdaptive
	_, _, cl := newOffloadTree(t, cfg, opts)

	for i := uint64(1); i <= 300; i++ {
		if err := cl.Insert(i, val8(i)); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 4; round++ {
		for i := uint64(1); i <= 300; i++ {
			got, err := cl.Search(i)
			if err != nil {
				t.Fatalf("Search(%d): %v", i, err)
			}
			if binary.LittleEndian.Uint64(got) != i {
				t.Fatalf("Search(%d) = %d", i, binary.LittleEndian.Uint64(got))
			}
		}
	}
	offOps, oneOps := cl.OffloadStats()
	if offOps == 0 || oneOps == 0 {
		t.Errorf("adaptive router used only one path: %d offloaded, %d one-sided", offOps, oneOps)
	}
}

// Off means off: the zero Options value keeps the router nil and the
// client posts no offload verbs at all.
func TestOffloadOffPostsNothing(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	for i := uint64(1); i <= 100; i++ {
		if err := cl.Insert(i, val8(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Search(i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Scan(1, 50); err != nil {
		t.Fatal(err)
	}
	if off := cl.DM().Stats().Offloads; off != 0 {
		t.Fatalf("ModeOff client posted %d offload verbs", off)
	}
	if offOps, oneOps := cl.OffloadStats(); offOps != 0 || oneOps != 0 {
		t.Fatalf("nil router counted ops: %d, %d", offOps, oneOps)
	}
}

// Lock interop: concurrent offloaded updates (plain lock-bit CAS at the
// MN) and one-sided inserts/updates (piggyback masked-CAS) on the same
// leaves must not lose the vacancy/argmax payload or corrupt entries.
func TestOffloadUpdateLockInterop(t *testing.T) {
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 512 << 20
	opts := DefaultOptions()
	opts.Offload = offroute.ModeAlways
	_, ix, seed := newOffloadTree(t, cfg, opts)

	const keys = 128
	for i := uint64(0); i < keys; i++ {
		if err := seed.Insert(i, val8(i)); err != nil {
			t.Fatal(err)
		}
	}

	offOpts := opts
	cnOff := ix.NewComputeNode(64<<20, 0)
	_ = offOpts
	cnOne := ix.NewComputeNode(64<<20, 0)

	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for g := 0; g < 2; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			cl := cnOff.NewClient() // router ModeAlways: offloaded updates
			for r := 0; r < 30; r++ {
				for i := uint64(0); i < keys; i += 2 {
					if err := cl.Update(i, val8(1_000_000+i)); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(g)
		go func(g int) {
			defer wg.Done()
			cl := cnOne.NewClient()
			cl.router = nil // force pure one-sided writes on the same leaves
			for r := 0; r < 30; r++ {
				for i := uint64(1); i < keys; i += 2 {
					if err := cl.Insert(i, val8(2_000_000+i)); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	for i := uint64(0); i < keys; i++ {
		got, err := seed.Search(i)
		if err != nil {
			t.Fatalf("Search(%d) after interop: %v", i, err)
		}
		v := binary.LittleEndian.Uint64(got)
		want := uint64(1_000_000 + i)
		if i%2 == 1 {
			want = 2_000_000 + i
		}
		if v != want {
			t.Fatalf("key %d = %d, want %d", i, v, want)
		}
	}
}

// Deep-tree scans through the MN program: with thousands of keys the
// tree has real internal levels and a ScatterGatherScan crosses many
// leaves, so the program's leaf walk (sibling hops, per-leaf collection
// limits) is exercised well past the single-leaf case. Offloaded
// results must match a one-sided client on the same tree byte for byte.
func TestOffloadScanDeep(t *testing.T) {
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 512 << 20
	opts := DefaultOptions()
	opts.Offload = offroute.ModeAlways
	_, ix, cl := newOffloadTree(t, cfg, opts)

	const n = 6000
	for i := uint64(0); i < n; i++ {
		if err := cl.Insert(i*3, val8(i^0xABCD)); err != nil {
			t.Fatal(err)
		}
	}
	oneSided := ix.NewComputeNode(64<<20, 0).NewClient()
	oneSided.router = nil

	offBefore := cl.DM().Stats().Offloads
	for _, tc := range []struct {
		start uint64
		count int
		want  int // expected items (truncated at the keyspace tail)
	}{
		{0, 500, 500},           // long scan from the left edge
		{3 * (n / 2), 700, 700}, // long scan from the middle
		{3*(n/2) + 1, 64, 64},   // start between stored keys
		{3 * (n - 10), 100, 10}, // runs off the tail: truncated
		{3 * n, 10, 0},          // start past every key
	} {
		got, err := cl.Scan(tc.start, tc.count)
		if err != nil {
			t.Fatalf("Scan(%d,%d): %v", tc.start, tc.count, err)
		}
		if len(got) != tc.want {
			t.Fatalf("Scan(%d,%d) returned %d items, want %d", tc.start, tc.count, len(got), tc.want)
		}
		ref, err := oneSided.Scan(tc.start, tc.count)
		if err != nil {
			t.Fatalf("one-sided Scan(%d,%d): %v", tc.start, tc.count, err)
		}
		if len(ref) != len(got) {
			t.Fatalf("Scan(%d,%d): offloaded %d items, one-sided %d", tc.start, tc.count, len(got), len(ref))
		}
		for j := range got {
			if got[j].Key != ref[j].Key {
				t.Fatalf("Scan(%d,%d)[%d].Key = %d, one-sided %d", tc.start, tc.count, j, got[j].Key, ref[j].Key)
			}
			if binary.LittleEndian.Uint64(got[j].Value) != binary.LittleEndian.Uint64(ref[j].Value) {
				t.Fatalf("Scan(%d,%d)[%d] value mismatch", tc.start, tc.count, j)
			}
		}
	}
	if cl.DM().Stats().Offloads == offBefore {
		t.Error("deep scans posted no offload verbs")
	}
	if off, _ := oneSided.OffloadStats(); off != 0 {
		t.Error("reference client offloaded; comparison is vacuous")
	}
}
