package core

import (
	"encoding/binary"
	"sort"
	"sync"

	"chime/internal/dmsim"
)

// Internal node remote layout (paper Figure 6):
//
//	off 0:   8-byte lock word (only the lock bit is used)
//	off 64:  header cell: [1B flags][1B level][2B nkeys]
//	                      [8B fenceLow][8B fenceHigh][8B sibling]
//	                      [8B leftmost child]
//	then:    span entry cells: [keySize pivot][8B child]
//
// Internal nodes keep their fence keys (only leaves shed them via
// sibling-based validation, §4.2.3). Entry cells are only ever modified
// under whole-node writes, so reads validate with the node-level version
// alone. child[i] covers keys in [pivot[i], pivot[i+1]); the leftmost
// child covers [fenceLow, pivot[0]).

const (
	inodeFlagValid    = 1 << 0
	inodeFlagFenceInf = 1 << 1
)

// internalLayout is the derived byte geometry of internal nodes. The
// image pool recycles fetch buffers on the hot traversal path; decoded
// nodes copy every byte they keep, so a buffer can be recycled as soon
// as decoding finishes.
type internalLayout struct {
	span    int
	keySize int

	headerCell cell
	entryCells []cell
	allCells   []cell
	size       int

	imgPool sync.Pool // of []byte, len == size
}

// getImage returns a (possibly recycled) internal-node image buffer.
func (l *internalLayout) getImage() []byte {
	if b, ok := l.imgPool.Get().([]byte); ok && len(b) == l.size {
		return b
	}
	return make([]byte, l.size)
}

// putImage recycles a buffer previously returned by getImage.
func (l *internalLayout) putImage(b []byte) {
	if len(b) == l.size {
		l.imgPool.Put(b)
	}
}

func newInternalLayout(o Options) *internalLayout {
	l := &internalLayout{span: o.SpanSize, keySize: o.KeySize}
	headerContent := 1 + 1 + 2 + 8 + 8 + 8 + 8
	entryContent := o.KeySize + 8
	contents := []int{headerContent}
	for i := 0; i < o.SpanSize; i++ {
		contents = append(contents, entryContent)
	}
	cells, regionSize := layoutCells(lineSize, contents)
	l.headerCell = cells[0]
	l.entryCells = cells[1:]
	l.allCells = cells
	l.size = lineSize + regionSize
	return l
}

// pivotEntry is one routing entry of a decoded internal node.
type pivotEntry struct {
	pivot uint64
	child dmsim.GAddr
}

// internalNode is the decoded form. Pivots are kept sorted ascending.
type internalNode struct {
	addr     dmsim.GAddr
	level    uint8
	valid    bool
	fenceLow uint64
	fenceInf bool
	fenceHi  uint64
	sibling  dmsim.GAddr
	leftmost dmsim.GAddr
	entries  []pivotEntry
}

// covers reports whether the node's key range includes key.
func (n *internalNode) covers(key uint64) bool {
	return key >= n.fenceLow && (n.fenceInf || key < n.fenceHi)
}

// childFor returns the child covering key and the index of the routing
// entry used (-1 for the leftmost child). It also returns the address of
// the next sibling child (the "next child pointer" used for
// sibling-based validation of leaves, §4.2.3); next is the nil address
// when the child is the node's last.
func (n *internalNode) childFor(key uint64) (child dmsim.GAddr, entryIdx int, next dmsim.GAddr) {
	// First entry with pivot > key; the child before it covers key.
	i := sort.Search(len(n.entries), func(i int) bool { return n.entries[i].pivot > key })
	if i == 0 {
		child = n.leftmost
		entryIdx = -1
	} else {
		child = n.entries[i-1].child
		entryIdx = i - 1
	}
	if i < len(n.entries) {
		next = n.entries[i].child
	}
	return child, entryIdx, next
}

// insertEntry adds a routing entry, keeping pivots sorted. It reports
// false when the node is already full.
func (n *internalNode) insertEntry(span int, e pivotEntry) bool {
	if len(n.entries) >= span {
		return false
	}
	i := sort.Search(len(n.entries), func(i int) bool { return n.entries[i].pivot >= e.pivot })
	n.entries = append(n.entries, pivotEntry{})
	copy(n.entries[i+1:], n.entries[i:])
	n.entries[i] = e
	return true
}

// encodeInternal serializes the node into a fresh image, bumping the
// node-level version relative to the previous image when prev is
// non-nil (i.e. this encode represents a node write).
func (l *internalLayout) encodeInternal(n *internalNode, prev []byte) []byte {
	img := make([]byte, l.size)
	if prev != nil {
		copy(img, prev)
	}

	content := make([]byte, l.headerCell.Content)
	if n.valid {
		content[0] |= inodeFlagValid
	}
	if n.fenceInf {
		content[0] |= inodeFlagFenceInf
	}
	content[1] = n.level
	binary.LittleEndian.PutUint16(content[2:4], uint16(len(n.entries)))
	binary.LittleEndian.PutUint64(content[4:12], n.fenceLow)
	binary.LittleEndian.PutUint64(content[12:20], n.fenceHi)
	binary.LittleEndian.PutUint64(content[20:28], n.sibling.Pack())
	binary.LittleEndian.PutUint64(content[28:36], n.leftmost.Pack())
	writeCellContent(img, l.headerCell, content)

	ec := make([]byte, l.keySize+8)
	for i, e := range n.entries {
		for j := range ec {
			ec[j] = 0
		}
		binary.LittleEndian.PutUint64(ec[0:8], e.pivot)
		binary.LittleEndian.PutUint64(ec[l.keySize:], e.child.Pack())
		writeCellContent(img, l.entryCells[i], ec)
	}
	if prev != nil {
		bumpNV(img, l.allCells)
	}
	return img
}

// decodeInternal parses a fetched whole-node image after version
// validation. addr is recorded for cache bookkeeping.
func (l *internalLayout) decodeInternal(addr dmsim.GAddr, img []byte) *internalNode {
	content := readCellContent(img, l.headerCell, make([]byte, 0, l.headerCell.Content))
	n := &internalNode{
		addr:     addr,
		valid:    content[0]&inodeFlagValid != 0,
		fenceInf: content[0]&inodeFlagFenceInf != 0,
		level:    content[1],
		fenceLow: binary.LittleEndian.Uint64(content[4:12]),
		fenceHi:  binary.LittleEndian.Uint64(content[12:20]),
		sibling:  dmsim.UnpackGAddr(binary.LittleEndian.Uint64(content[20:28])),
		leftmost: dmsim.UnpackGAddr(binary.LittleEndian.Uint64(content[28:36])),
	}
	nkeys := int(binary.LittleEndian.Uint16(content[2:4]))
	if nkeys > l.span {
		nkeys = l.span // torn header defends itself; version check re-runs
	}
	buf := make([]byte, 0, l.keySize+8)
	for i := 0; i < nkeys; i++ {
		buf = readCellContent(img, l.entryCells[i], buf)
		n.entries = append(n.entries, pivotEntry{
			pivot: binary.LittleEndian.Uint64(buf[0:8]),
			child: dmsim.UnpackGAddr(binary.LittleEndian.Uint64(buf[l.keySize:])),
		})
	}
	return n
}

// checkInternalImage validates the version bytes of a fetched internal
// node image.
func (l *internalLayout) checkInternalImage(img []byte) error {
	return checkVersions(img, 0, l.allCells)
}
