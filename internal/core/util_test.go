package core

import "chime/internal/dmsim"

// gaddr is a test helper constructing remote addresses tersely.
func gaddr(mn uint8, off uint64) dmsim.GAddr { return dmsim.GAddr{MN: mn, Off: off} }
