package core

import (
	"container/list"
	"sync"

	"chime/internal/dmsim"
)

// nodeCache is the compute-node-side cache of internal tree nodes
// (§2.2, §3.1). It is shared by all clients of one CN, keyed by remote
// node address, and bounded by a byte budget measured in *encoded* node
// bytes — the unit the paper reports cache consumption in.
//
// Eviction is LRU. The cache stores decoded nodes; lookups are local and
// free of network cost.
type nodeCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	lru    *list.List // front = most recent; values are *cacheSlot
	items  map[dmsim.GAddr]*list.Element

	hits, misses, invalidations int64
}

type cacheSlot struct {
	addr dmsim.GAddr
	node *internalNode
	size int64
}

func newNodeCache(budget int64) *nodeCache {
	return &nodeCache{
		budget: budget,
		lru:    list.New(),
		items:  make(map[dmsim.GAddr]*list.Element),
	}
}

// get returns the cached node, promoting it, or nil.
func (c *nodeCache) get(addr dmsim.GAddr) *internalNode {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[addr]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheSlot).node
}

// put inserts or replaces a node costing size bytes, evicting LRU
// entries as needed. A budget of 0 disables caching entirely.
func (c *nodeCache) put(addr dmsim.GAddr, n *internalNode, size int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget <= 0 || size > c.budget {
		return
	}
	if el, ok := c.items[addr]; ok {
		slot := el.Value.(*cacheSlot)
		c.used += size - slot.size
		slot.node, slot.size = n, size
		c.lru.MoveToFront(el)
	} else {
		el := c.lru.PushFront(&cacheSlot{addr: addr, node: n, size: size})
		c.items[addr] = el
		c.used += size
	}
	for c.used > c.budget {
		back := c.lru.Back()
		if back == nil {
			break
		}
		slot := back.Value.(*cacheSlot)
		c.lru.Remove(back)
		delete(c.items, slot.addr)
		c.used -= slot.size
	}
}

// invalidate drops a stale node (a sibling-based cache validation
// failure, §4.2.3).
func (c *nodeCache) invalidate(addr dmsim.GAddr) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[addr]; ok {
		slot := el.Value.(*cacheSlot)
		c.lru.Remove(el)
		delete(c.items, addr)
		c.used -= slot.size
		c.invalidations++
	}
}

// CacheStats is a snapshot of cache behaviour and footprint.
type CacheStats struct {
	Hits, Misses, Invalidations int64
	UsedBytes, BudgetBytes      int64
	Nodes                       int
}

func (c *nodeCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Invalidations: c.invalidations,
		UsedBytes: c.used, BudgetBytes: c.budget, Nodes: len(c.items),
	}
}
