package core

import (
	"container/list"
	"sync"

	"chime/internal/dmsim"
)

// nodeCache is the compute-node-side cache of internal tree nodes
// (§2.2, §3.1). It is shared by all clients of one CN, keyed by remote
// node address, and bounded by a byte budget measured in *encoded* node
// bytes — the unit the paper reports cache consumption in.
//
// The cache is lock-striped into cacheShards independent shards, each
// with its own mutex, LRU list and byte budget: a single global mutex
// would serialize every traversal of every client goroutine on the CN,
// which shows up as wall-clock contention at high client counts.
// Eviction is LRU per shard (global LRU order is approximated, which is
// standard for striped caches). Decoded nodes are stored; lookups are
// local and free of network cost.
const cacheShards = 16

// minShardBudget keeps striping from starving tiny caches: a shard that
// cannot hold a handful of nodes is useless, so small budgets collapse
// to fewer shards (1 in the limit — the pre-sharding behaviour).
const minShardBudget = 64 << 10

type nodeCache struct {
	shards []cacheShard
}

type cacheShard struct {
	mu     sync.Mutex
	budget int64
	used   int64
	lru    *list.List // front = most recent; values are *cacheSlot
	items  map[dmsim.GAddr]*list.Element

	hits, misses, invalidations int64
}

type cacheSlot struct {
	addr dmsim.GAddr
	node *internalNode
	size int64
}

func newNodeCache(budget int64) *nodeCache {
	n := cacheShards
	for n > 1 && budget/int64(n) < minShardBudget {
		n /= 2
	}
	c := &nodeCache{shards: make([]cacheShard, n)}
	// Split the budget across shards; remainder bytes go to shard 0 so
	// the total is preserved exactly.
	per := budget / int64(n)
	for i := range c.shards {
		b := per
		if i == 0 {
			b += budget - per*int64(n)
		}
		c.shards[i] = cacheShard{
			budget: b,
			lru:    list.New(),
			items:  make(map[dmsim.GAddr]*list.Element),
		}
	}
	return c
}

// shardOf maps a node address to its shard. Node addresses are 64-byte
// aligned, so the low 6 bits are dead; mix the meaningful bits.
func (c *nodeCache) shardOf(addr dmsim.GAddr) *cacheShard {
	h := (addr.Off >> 6) * 0x9e3779b97f4a7c15
	h ^= uint64(addr.MN) * 0xff51afd7ed558ccd
	return &c.shards[(h>>32)%uint64(len(c.shards))]
}

// get returns the cached node, promoting it, or nil.
func (c *nodeCache) get(addr dmsim.GAddr) *internalNode {
	s := c.shardOf(addr)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[addr]
	if !ok {
		s.misses++
		return nil
	}
	s.hits++
	s.lru.MoveToFront(el)
	return el.Value.(*cacheSlot).node
}

// put inserts or replaces a node costing size bytes, evicting LRU
// entries from its shard as needed. A budget of 0 disables caching.
func (c *nodeCache) put(addr dmsim.GAddr, n *internalNode, size int64) {
	s := c.shardOf(addr)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.budget <= 0 || size > s.budget {
		return
	}
	if el, ok := s.items[addr]; ok {
		slot := el.Value.(*cacheSlot)
		s.used += size - slot.size
		slot.node, slot.size = n, size
		s.lru.MoveToFront(el)
	} else {
		el := s.lru.PushFront(&cacheSlot{addr: addr, node: n, size: size})
		s.items[addr] = el
		s.used += size
	}
	for s.used > s.budget {
		back := s.lru.Back()
		if back == nil {
			break
		}
		slot := back.Value.(*cacheSlot)
		s.lru.Remove(back)
		delete(s.items, slot.addr)
		s.used -= slot.size
	}
}

// invalidate drops a stale node (a sibling-based cache validation
// failure, §4.2.3).
func (c *nodeCache) invalidate(addr dmsim.GAddr) {
	s := c.shardOf(addr)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[addr]; ok {
		slot := el.Value.(*cacheSlot)
		s.lru.Remove(el)
		delete(s.items, addr)
		s.used -= slot.size
		s.invalidations++
	}
}

// CacheStats is a snapshot of cache behaviour and footprint, aggregated
// over all shards.
type CacheStats struct {
	Hits, Misses, Invalidations int64
	UsedBytes, BudgetBytes      int64
	Nodes                       int
}

func (c *nodeCache) stats() CacheStats {
	var st CacheStats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Invalidations += s.invalidations
		st.UsedBytes += s.used
		st.BudgetBytes += s.budget
		st.Nodes += len(s.items)
		s.mu.Unlock()
	}
	return st
}
