package core

import (
	"sync"
	"testing"

	"chime/internal/dmsim"
)

func cacheAddr(i int) dmsim.GAddr {
	return dmsim.GAddr{MN: uint8(i % 3), Off: uint64(64 + 64*i)}
}

func TestCacheShardingBudgetSplit(t *testing.T) {
	const budget = int64(1<<20) + 37 // deliberately not shard-divisible
	c := newNodeCache(budget)
	if got := c.stats().BudgetBytes; got != budget {
		t.Fatalf("aggregate budget %d, want %d", got, budget)
	}
}

func TestCachePutGetInvalidate(t *testing.T) {
	c := newNodeCache(1 << 20)
	n := &internalNode{level: 1}
	for i := 0; i < 100; i++ {
		c.put(cacheAddr(i), n, 1024)
	}
	for i := 0; i < 100; i++ {
		if c.get(cacheAddr(i)) == nil {
			t.Fatalf("addr %d missing after put", i)
		}
	}
	st := c.stats()
	if st.Nodes != 100 || st.UsedBytes != 100*1024 {
		t.Fatalf("stats = %+v, want 100 nodes / %d bytes", st, 100*1024)
	}
	for i := 0; i < 100; i += 2 {
		c.invalidate(cacheAddr(i))
	}
	st = c.stats()
	if st.Nodes != 50 || st.Invalidations != 50 {
		t.Fatalf("after invalidations: %+v", st)
	}
	if c.get(cacheAddr(0)) != nil {
		t.Fatal("invalidated entry still cached")
	}
	if c.get(cacheAddr(1)) == nil {
		t.Fatal("untouched entry evicted by invalidate")
	}
}

func TestCacheEvictionStaysWithinBudget(t *testing.T) {
	const budget = int64(64 << 10)
	c := newNodeCache(budget)
	n := &internalNode{}
	for i := 0; i < 1000; i++ {
		c.put(cacheAddr(i), n, 1024)
	}
	st := c.stats()
	if st.UsedBytes > budget {
		t.Fatalf("used %d exceeds budget %d", st.UsedBytes, budget)
	}
	if st.Nodes == 0 {
		t.Fatal("eviction emptied the cache entirely")
	}
}

func TestCacheZeroBudgetDisables(t *testing.T) {
	c := newNodeCache(0)
	c.put(cacheAddr(1), &internalNode{}, 64)
	if c.get(cacheAddr(1)) != nil {
		t.Fatal("zero-budget cache stored a node")
	}
}

// TestCacheConcurrentSharded hammers the cache from many goroutines;
// run under -race this pins the lock striping's soundness, and the
// address set is spread so multiple shards are exercised.
func TestCacheConcurrentSharded(t *testing.T) {
	c := newNodeCache(1 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := &internalNode{}
			for i := 0; i < 2000; i++ {
				a := cacheAddr((g*31 + i) % 256)
				switch i % 4 {
				case 0:
					c.put(a, n, 512)
				case 1, 2:
					c.get(a)
				case 3:
					c.invalidate(a)
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.stats()
	if st.UsedBytes < 0 {
		t.Fatalf("accounting went negative: %+v", st)
	}
	if st.Hits+st.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
}

// TestCacheShardDistribution: 64-byte-aligned sequential node addresses
// must not all land in one shard.
func TestCacheShardDistribution(t *testing.T) {
	c := newNodeCache(1 << 20)
	seen := map[*cacheShard]int{}
	for i := 0; i < 1024; i++ {
		seen[c.shardOf(dmsim.GAddr{Off: uint64(64 * i)})]++
	}
	if len(seen) < cacheShards/2 {
		t.Fatalf("sequential addresses hit only %d of %d shards", len(seen), cacheShards)
	}
	for s, n := range seen {
		if n > 1024/2 {
			t.Fatalf("shard %p absorbed %d of 1024 addresses", s, n)
		}
	}
}
