package rolex

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"chime/internal/dmsim"
	"chime/internal/ycsb"
)

func hopOptions() Options {
	o := DefaultOptions()
	o.HopscotchLeaves = true
	o.Neighborhood = 8
	return o
}

func buildHop(t *testing.T, n int) (*Index, *Client) {
	t.Helper()
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 512 << 20
	ix, err := Build(dmsim.MustNewFabric(cfg), hopOptions(), sortedKeys(n), nil)
	if err != nil {
		t.Fatal(err)
	}
	return ix, ix.NewComputeNode().NewClient()
}

func TestHopLeafOptionValidation(t *testing.T) {
	o := hopOptions()
	o.Neighborhood = 3 // does not divide span 16
	if err := o.Validate(); err == nil {
		t.Fatal("indivisible neighborhood must be rejected")
	}
	o = hopOptions()
	o.Neighborhood = 32
	if err := o.Validate(); err == nil {
		t.Fatal("H > span must be rejected")
	}
	if err := hopOptions().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHopLeafSearch(t *testing.T) {
	const n = 4000
	_, cl := buildHop(t, n)
	for _, k := range sortedKeys(n) {
		got, err := cl.Search(k)
		if err != nil {
			t.Fatalf("search %#x: %v", k, err)
		}
		if len(got) != 8 {
			t.Fatalf("value length %d", len(got))
		}
	}
	if _, err := cl.Search(999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("absent: %v", err)
	}
}

func TestHopLeafReadAmplification(t *testing.T) {
	// CHIME-Learned must read ~2 neighborhoods, far less than ROLEX's 2
	// whole leaves.
	const n = 4000
	ixHop, clHop := buildHop(t, n)
	cfgPlain := dmsim.DefaultConfig()
	cfgPlain.MNSize = 512 << 20
	ixPlain, err := Build(dmsim.MustNewFabric(cfgPlain), DefaultOptions(), sortedKeys(n), nil)
	if err != nil {
		t.Fatal(err)
	}
	clPlain := ixPlain.NewComputeNode().NewClient()

	keys := sortedKeys(n)
	perOp := func(cl *Client) float64 {
		before := cl.DM().Stats().BytesRead
		for i := 0; i < 200; i++ {
			if _, err := cl.Search(keys[(i*13)%n]); err != nil {
				t.Fatal(err)
			}
		}
		return float64(cl.DM().Stats().BytesRead-before) / 200
	}
	hop, plain := perOp(clHop), perOp(clPlain)
	if hop >= plain {
		t.Fatalf("hopscotch leaves read %.0f B/op, plain %.0f: no amplification win", hop, plain)
	}
	t.Logf("bytes/search: CHIME-Learned %.0f vs ROLEX %.0f", hop, plain)
	_ = ixHop
	_ = ixPlain
}

func TestHopLeafInsertUpdateDelete(t *testing.T) {
	const n = 1000
	_, cl := buildHop(t, n)
	val := func(x uint64) []byte {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, x)
		return b
	}
	// Insert fresh keys.
	r := rand.New(rand.NewSource(9))
	fresh := map[uint64]uint64{}
	for len(fresh) < 300 {
		k := r.Uint64()
		if err := cl.Insert(k, val(k>>3)); err != nil {
			t.Fatalf("insert %#x: %v", k, err)
		}
		fresh[k] = k >> 3
	}
	for k, v := range fresh {
		got, err := cl.Search(k)
		if err != nil || binary.LittleEndian.Uint64(got) != v {
			t.Fatalf("fresh %#x: %v %v", k, got, err)
		}
	}
	// Update and delete trained keys.
	keys := sortedKeys(n)
	for i, k := range keys {
		switch i % 3 {
		case 0:
			if err := cl.Update(k, val(uint64(i))); err != nil {
				t.Fatalf("update: %v", err)
			}
		case 1:
			if err := cl.Delete(k); err != nil {
				t.Fatalf("delete: %v", err)
			}
		}
	}
	for i, k := range keys {
		got, err := cl.Search(k)
		switch i % 3 {
		case 0:
			if err != nil || binary.LittleEndian.Uint64(got) != uint64(i) {
				t.Fatalf("updated %d: %v %v", i, got, err)
			}
		case 1:
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("deleted %d: %v", i, err)
			}
		}
	}
}

func TestHopLeafScan(t *testing.T) {
	const n = 2000
	_, cl := buildHop(t, n)
	keys := sortedKeys(n)
	out, err := cl.Scan(keys[50], 120)
	if err != nil || len(out) != 120 {
		t.Fatalf("scan: %d %v", len(out), err)
	}
	if out[0].Key != keys[50] {
		t.Fatalf("scan start %#x, want %#x", out[0].Key, keys[50])
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].Key >= out[i].Key {
			t.Fatal("unsorted")
		}
	}
}

func TestHopLeafConcurrent(t *testing.T) {
	const n = 3000
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 512 << 20
	ix, err := Build(dmsim.MustNewFabric(cfg), hopOptions(), sortedKeys(n), nil)
	if err != nil {
		t.Fatal(err)
	}
	cn := ix.NewComputeNode()
	keys := sortedKeys(n)
	const clients = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := cn.NewClient()
			r := rand.New(rand.NewSource(int64(c)))
			b := make([]byte, 8)
			for i := 0; i < 400; i++ {
				k := keys[r.Intn(n)]
				switch r.Intn(3) {
				case 0:
					if _, err := cl.Search(k); err != nil && !errors.Is(err, ErrNotFound) {
						errs <- fmt.Errorf("search: %w", err)
						return
					}
				case 1:
					if err := cl.Update(k, b); err != nil && !errors.Is(err, ErrNotFound) {
						errs <- fmt.Errorf("update: %w", err)
						return
					}
				case 2:
					if err := cl.Insert(ycsb.KeyOf(uint64(c)<<40|uint64(i)), b); err != nil {
						errs <- fmt.Errorf("insert: %w", err)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
