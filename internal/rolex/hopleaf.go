package rolex

import (
	"fmt"
	"sort"

	"chime/internal/dmsim"
	"chime/internal/hopscotch"
	"chime/internal/nodelayout"
)

// Hopscotch-leaf mode ("CHIME-Learned", §5.3): each ROLEX leaf is a
// hopscotch hash table, so point queries fetch an H-entry neighborhood
// from the main leaf and its buddy instead of both whole leaves. The
// learned index still cannot avoid probing two leaves per lookup — the
// reason the paper pairs hopscotch leaves with a B+ tree instead.

// placer performs local hopscotch placement into a fresh leaf image
// (bulk load and overflow-leaf builds).
type placer struct {
	lay      *layout
	img      []byte
	occupied []bool
	homes    []int
}

func newPlacer(lay *layout, img []byte) *placer {
	return &placer{lay: lay, img: img, occupied: make([]bool, lay.span), homes: make([]int, lay.span)}
}

// place inserts one KV, reporting false when no hop sequence fits.
func (p *placer) place(key uint64, val []byte) bool {
	lay := p.lay
	home := lay.homeOf(key)
	moves, free, err := hopscotch.Plan(lay.span, lay.h, home,
		func(i int) bool { return p.occupied[i] },
		func(i int) int { return p.homes[i] })
	if err != nil {
		return false
	}
	for _, m := range moves {
		applyHopMove(lay, p.img, m, false)
		p.occupied[m.To], p.occupied[m.From] = true, false
		p.homes[m.To] = p.homes[m.From]
	}
	placeAt(lay, p.img, free, home, key, val, false)
	p.occupied[free] = true
	p.homes[free] = home
	return true
}

// applyHopMove relocates the entry at m.From to m.To in img, updating
// the hopscotch bitmap in the key's home entry.
func applyHopMove(lay *layout, img []byte, m hopscotch.Move, bump bool) {
	e := lay.decodeEntry(img, m.From)
	kHome := lay.homeOf(e.key)

	tgt := lay.decodeEntry(img, m.To)
	tgt.occupied, tgt.key = true, e.key
	tgt.val = append([]byte(nil), e.val...)
	lay.encodeEntry(img, m.To, tgt, bump)

	src := lay.decodeEntry(img, m.From)
	src.occupied = false
	lay.encodeEntry(img, m.From, src, bump)

	hE := lay.decodeEntry(img, kHome)
	dOld := ((m.From-kHome)%lay.span + lay.span) % lay.span
	dNew := ((m.To-kHome)%lay.span + lay.span) % lay.span
	hE.hopBM &^= 1 << uint(dOld)
	hE.hopBM |= 1 << uint(dNew)
	lay.encodeEntry(img, kHome, hE, bump)
}

// placeAt stores a new KV at slot `at` and sets its home bitmap bit.
func placeAt(lay *layout, img []byte, at, home int, key uint64, val []byte, bump bool) {
	e := lay.decodeEntry(img, at)
	e.occupied, e.key, e.val = true, key, val
	lay.encodeEntry(img, at, e, bump)
	hE := lay.decodeEntry(img, home)
	d := ((at-home)%lay.span + lay.span) % lay.span
	hE.hopBM |= 1 << uint(d)
	lay.encodeEntry(img, home, hE, bump)
}

// hopInsert plans and applies a hopscotch insert on a locked, fully
// fetched leaf image, returning the modified slot indexes, or ok=false
// when the leaf cannot absorb the key.
func hopInsert(lay *layout, img []byte, key uint64, val []byte) ([]int, bool) {
	home := lay.homeOf(key)
	moves, free, err := hopscotch.Plan(lay.span, lay.h, home,
		func(i int) bool { return lay.decodeEntry(img, i).occupied },
		func(i int) int { return lay.homeOf(lay.decodeEntry(img, i).key) })
	if err != nil {
		return nil, false
	}
	changed := map[int]bool{home: true, free: true}
	for _, m := range moves {
		kHome := lay.homeOf(lay.decodeEntry(img, m.From).key)
		applyHopMove(lay, img, m, true)
		changed[m.From], changed[m.To], changed[kHome] = true, true, true
	}
	placeAt(lay, img, free, home, key, val, true)
	slots := make([]int, 0, len(changed))
	for i := range changed {
		slots = append(slots, i)
	}
	sort.Ints(slots)
	return slots, true
}

// neighborhoodRanges returns 1-2 byte ranges of the leaf image covering
// entries [home, home+H) circularly.
type hopRange struct{ off, end int }

func (l *layout) neighborhoodRanges(home int) []hopRange {
	last := home + l.h - 1
	if last < l.span {
		return []hopRange{{l.entryCells[home].Off, l.entryCells[last].End()}}
	}
	return []hopRange{
		{l.entryCells[home].Off, l.entryCells[l.span-1].End()},
		{l.entryCells[0].Off, l.entryCells[last%l.span].End()},
	}
}

// coveredCells lists entry cells fully inside the fetched ranges.
func (l *layout) coveredCells(ranges []hopRange) []nodelayout.Cell {
	var out []nodelayout.Cell
	for _, c := range l.entryCells {
		for _, r := range ranges {
			if c.Off >= r.off && c.End() <= r.end {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

// reconstructHopBitmap recomputes the expected bitmap of home from the
// keys actually present in the fetched neighborhood (the third
// synchronization level, borrowed from CHIME §4.1.2).
func (l *layout) reconstructHopBitmap(img []byte, home int) uint16 {
	var bm uint16
	for d := 0; d < l.h; d++ {
		i := (home + d) % l.span
		e := l.decodeEntry(img, i)
		if e.occupied && l.homeOf(e.key) == home {
			bm |= 1 << uint(d)
		}
	}
	return bm
}

// searchHopGroup reads the H-entry neighborhoods of a group's main and
// buddy leaves in one doorbell batch and looks the key up. found=false
// with nil error means the key is in neither neighborhood (the caller
// falls back to the overflow chain).
func (c *Client) searchHopGroup(g int, key uint64) (entry, bool, error) {
	lay := c.ix.lay
	home := lay.homeOf(key)
	ranges := lay.neighborhoodRanges(home)

	mainImg := make([]byte, lay.size)
	buddyImg := make([]byte, lay.size)
	var addrs []dmsim.GAddr
	var bufs [][]byte
	for _, r := range ranges {
		addrs = append(addrs, c.ix.groupMain(g).Add(uint64(r.off)))
		bufs = append(bufs, mainImg[r.off:r.end])
	}
	for _, r := range ranges {
		addrs = append(addrs, c.ix.groupBuddy(g).Add(uint64(r.off)))
		bufs = append(bufs, buddyImg[r.off:r.end])
	}

	for try := 0; try < maxRetries; try++ {
		if err := c.dc.ReadBatch(addrs, bufs); err != nil {
			return entry{}, false, err
		}
		cells := lay.coveredCells(ranges)
		if nodelayout.CheckVersions(mainImg, 0, cells) != nil ||
			nodelayout.CheckVersions(buddyImg, 0, cells) != nil {
			c.yield()
			continue
		}
		consistent := true
		for _, img := range [][]byte{mainImg, buddyImg} {
			if lay.decodeEntry(img, home).hopBM != lay.reconstructHopBitmap(img, home) {
				consistent = false
				break
			}
		}
		if !consistent {
			c.yield()
			continue
		}
		c.backoff = 0
		for _, img := range [][]byte{mainImg, buddyImg} {
			bm := lay.decodeEntry(img, home).hopBM
			for d := 0; d < lay.h; d++ {
				if bm&(1<<uint(d)) == 0 {
					continue
				}
				e := lay.decodeEntry(img, (home+d)%lay.span)
				if e.occupied && e.key == key {
					e.val = append([]byte(nil), e.val...)
					return e, true, nil
				}
			}
		}
		return entry{}, false, nil
	}
	return entry{}, false, fmt.Errorf("rolex: group %d neighborhood: retries exhausted", g)
}

// writeSlotsAndUnlock writes the changed entry cells of one leaf and
// releases the group lock — combined into one doorbell batch unless a
// local contender takes the lock by handover.
func (c *Client) writeSlotsAndUnlock(leafAddr dmsim.GAddr, g int, img []byte, slots []int) error {
	lay := c.ix.lay
	addrs := make([]dmsim.GAddr, 0, len(slots)+1)
	bufs := make([][]byte, 0, len(slots)+1)
	for _, s := range slots {
		cell := lay.entryCells[s]
		addrs = append(addrs, leafAddr.Add(uint64(cell.Off)))
		bufs = append(bufs, img[cell.Off:cell.End()])
	}
	lockAddr := c.ix.groupMain(g)
	if c.cn.locks.HasWaiters(lockAddr.Pack()) {
		if err := c.dc.WriteBatch(addrs, bufs); err != nil {
			return err
		}
		if c.cn.locks.ReleaseHandover(c.dc, lockAddr.Pack(), 1) {
			return nil
		}
	}
	var zero [8]byte
	addrs = append(addrs, lockAddr)
	bufs = append(bufs, zero[:])
	if err := c.dc.WriteBatch(addrs, bufs); err != nil {
		return err
	}
	c.cn.locks.ReleaseRemote(c.dc, lockAddr.Pack())
	return nil
}
