// Package rolex implements the ROLEX baseline (FAST '23): a learned
// range index on disaggregated memory. Piecewise-linear-regression (PLR)
// models trained over the sorted key set live on each compute node as a
// tiny cache; they predict a key's position within an error bound ε, so
// a point query fetches the predicted leaf group (the leaf plus its
// overflow buddy — 2·span entries, the read amplification the CHIME
// paper measures for ROLEX).
//
// Following the CHIME evaluation (§5.1, footnote 3), models are
// pre-trained over the loaded keys and retraining is avoided: inserts
// obey ROLEX's data-movement constraint and stay within the leaf group
// their key routes to, spilling into the group's overflow chain.
package rolex

import (
	"fmt"
	"sort"
)

// Segment is one linear model: for keys in [StartKey, next segment's
// StartKey), position ≈ Intercept + Slope·(key−StartKey).
type Segment struct {
	StartKey  uint64
	Slope     float64
	Intercept float64
}

// PLR is a piecewise-linear model over a sorted key array, guaranteeing
// |Predict(k) − rank(k)| <= Epsilon for every trained key.
type PLR struct {
	Epsilon  int
	Segments []Segment
}

// TrainPLR fits a PLR with the given error bound over sorted, unique
// keys using a greedy shrinking-cone pass (the standard one-pass PLR
// construction learned indexes use).
func TrainPLR(keys []uint64, epsilon int) (*PLR, error) {
	if epsilon < 1 {
		return nil, fmt.Errorf("rolex: epsilon %d < 1", epsilon)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			return nil, fmt.Errorf("rolex: keys not sorted/unique at %d", i)
		}
	}
	p := &PLR{Epsilon: epsilon}
	if len(keys) == 0 {
		return p, nil
	}

	eps := float64(epsilon)
	start := 0
	for start < len(keys) {
		// Grow a segment from keys[start] while the slope cone stays
		// non-empty: every point must be reachable within ±eps.
		x0 := float64(keys[start])
		loSlope, hiSlope := 0.0, 1e18 // cone bounds
		end := start + 1
		for end < len(keys) {
			dx := float64(keys[end]) - x0
			dy := float64(end - start)
			lo, hi := loSlope, hiSlope
			if l := (dy - eps) / dx; l > lo {
				lo = l
			}
			if h := (dy + eps) / dx; h < hi {
				hi = h
			}
			// The cone must only shrink once the point is accepted: a
			// rejected point's constraints would otherwise push the
			// midpoint slope outside the included points' bounds.
			if lo > hi {
				break
			}
			loSlope, hiSlope = lo, hi
			end++
		}
		slope := (loSlope + hiSlope) / 2
		if end == start+1 {
			slope = 0
		}
		p.Segments = append(p.Segments, Segment{
			StartKey:  keys[start],
			Slope:     slope,
			Intercept: float64(start),
		})
		start = end
	}
	return p, nil
}

// Predict returns the estimated rank of key, clamped to [0, n).
func (p *PLR) Predict(key uint64, n int) int {
	if len(p.Segments) == 0 || n == 0 {
		return 0
	}
	// Last segment with StartKey <= key.
	i := sort.Search(len(p.Segments), func(i int) bool { return p.Segments[i].StartKey > key }) - 1
	if i < 0 {
		i = 0
	}
	s := p.Segments[i]
	var dx float64
	if key > s.StartKey {
		dx = float64(key - s.StartKey)
	}
	pos := int(s.Intercept + s.Slope*dx + 0.5) // round: truncation would leak past ±ε
	if pos < 0 {
		pos = 0
	}
	if pos >= n {
		pos = n - 1
	}
	return pos
}

// SizeBytes reports the model's memory footprint (24 bytes per segment),
// the quantity ROLEX counts as computing-side cache consumption.
func (p *PLR) SizeBytes() int64 { return int64(len(p.Segments)) * 24 }
