package rolex

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"chime/internal/dmsim"
	"chime/internal/ycsb"
)

func sortedKeys(n int) []uint64 {
	keys := ycsb.LoadKeys(uint64(n))
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func buildTest(t *testing.T, opts Options, n int) (*Index, *Client) {
	t.Helper()
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 512 << 20
	ix, err := Build(dmsim.MustNewFabric(cfg), opts, sortedKeys(n), nil)
	if err != nil {
		t.Fatal(err)
	}
	return ix, ix.NewComputeNode().NewClient()
}

func val8(x uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, x)
	return b
}

func TestPLRErrorBound(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 200 + r.Intn(2000)
		keys := make([]uint64, 0, n)
		cur := uint64(0)
		for i := 0; i < n; i++ {
			cur += 1 + uint64(r.Intn(1000))
			keys = append(keys, cur)
		}
		eps := 1 + r.Intn(32)
		p, err := TrainPLR(keys, eps)
		if err != nil {
			return false
		}
		for i, k := range keys {
			pred := p.Predict(k, n)
			diff := pred - i
			if diff < 0 {
				diff = -diff
			}
			if diff > eps {
				t.Logf("seed %d: key %d rank %d predicted %d (eps %d)", seed, k, i, pred, eps)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPLRCompresses(t *testing.T) {
	// A perfectly linear key set must collapse to very few segments.
	keys := make([]uint64, 10000)
	for i := range keys {
		keys[i] = uint64(i) * 17
	}
	p, err := TrainPLR(keys, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Segments) > 5 {
		t.Fatalf("linear data needed %d segments", len(p.Segments))
	}
	if p.SizeBytes() != int64(len(p.Segments))*24 {
		t.Fatal("SizeBytes accounting")
	}
}

func TestPLRRejectsBadInput(t *testing.T) {
	if _, err := TrainPLR([]uint64{1, 1}, 4); err == nil {
		t.Fatal("duplicate keys must fail")
	}
	if _, err := TrainPLR([]uint64{2, 1}, 4); err == nil {
		t.Fatal("unsorted keys must fail")
	}
	if _, err := TrainPLR([]uint64{1}, 0); err == nil {
		t.Fatal("epsilon 0 must fail")
	}
	p, err := TrainPLR(nil, 4)
	if err != nil || p.Predict(5, 0) != 0 {
		t.Fatal("empty model must predict 0")
	}
}

func TestBuildAndSearch(t *testing.T) {
	const n = 5000
	_, cl := buildTest(t, DefaultOptions(), n)
	for _, k := range sortedKeys(n) {
		got, err := cl.Search(k)
		if err != nil {
			t.Fatalf("Search(%#x): %v", k, err)
		}
		if len(got) != 8 {
			t.Fatalf("value size %d", len(got))
		}
	}
	if _, err := cl.Search(12345); !errors.Is(err, ErrNotFound) {
		t.Fatalf("absent key: %v", err)
	}
}

func TestBuildWithValues(t *testing.T) {
	keys := sortedKeys(100)
	vals := map[uint64][]byte{}
	for _, k := range keys {
		vals[k] = val8(k ^ 0xAA)
	}
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 64 << 20
	ix, err := Build(dmsim.MustNewFabric(cfg), DefaultOptions(), keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	cl := ix.NewComputeNode().NewClient()
	for _, k := range keys {
		got, err := cl.Search(k)
		if err != nil || binary.LittleEndian.Uint64(got) != k^0xAA {
			t.Fatalf("key %#x: %v %v", k, got, err)
		}
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 16 << 20
	f := dmsim.MustNewFabric(cfg)
	if _, err := Build(f, DefaultOptions(), nil, nil); err == nil {
		t.Fatal("empty build must fail")
	}
	if _, err := Build(f, DefaultOptions(), []uint64{5, 5}, nil); err == nil {
		t.Fatal("duplicate build must fail")
	}
	bad := DefaultOptions()
	bad.SpanSize = 0
	if _, err := Build(f, bad, []uint64{1}, nil); err == nil {
		t.Fatal("bad options must fail")
	}
}

func TestInsertIntoGroups(t *testing.T) {
	const n = 2000
	_, cl := buildTest(t, DefaultOptions(), n)
	// Insert new keys interleaved between trained ones.
	r := rand.New(rand.NewSource(3))
	inserted := map[uint64]uint64{}
	for len(inserted) < 500 {
		k := r.Uint64()
		if _, dup := inserted[k]; dup {
			continue
		}
		if err := cl.Insert(k, val8(k>>1)); err != nil {
			t.Fatalf("insert %#x: %v", k, err)
		}
		inserted[k] = k >> 1
	}
	for k, v := range inserted {
		got, err := cl.Search(k)
		if err != nil || binary.LittleEndian.Uint64(got) != v {
			t.Fatalf("inserted %#x: %v %v", k, got, err)
		}
	}
}

func TestOverflowChaining(t *testing.T) {
	// Hammer one group far past 2x span to force chained leaves.
	const n = 64
	ix, cl := buildTest(t, DefaultOptions(), n)
	keys := sortedKeys(n)
	lo := keys[0]
	// All inserts below the first fence route to group 0.
	var mine []uint64
	for k := uint64(1); k < lo && len(mine) < 100; k += (lo / 120) + 1 {
		if err := cl.Insert(k, val8(k)); err != nil {
			t.Fatalf("overflow insert %#x: %v", k, err)
		}
		mine = append(mine, k)
	}
	if len(mine) < 40 {
		t.Skipf("key space too tight for the test: %d inserts", len(mine))
	}
	for _, k := range mine {
		got, err := cl.Search(k)
		if err != nil || binary.LittleEndian.Uint64(got) != k {
			t.Fatalf("chained key %#x: %v %v", k, got, err)
		}
	}
	_ = ix
}

func TestUpdateDelete(t *testing.T) {
	const n = 1000
	_, cl := buildTest(t, DefaultOptions(), n)
	keys := sortedKeys(n)
	for i, k := range keys {
		if i%2 == 0 {
			if err := cl.Update(k, val8(uint64(i))); err != nil {
				t.Fatalf("update: %v", err)
			}
		} else if i%5 == 1 {
			if err := cl.Delete(k); err != nil {
				t.Fatalf("delete: %v", err)
			}
		}
	}
	for i, k := range keys {
		got, err := cl.Search(k)
		switch {
		case i%2 == 0:
			if err != nil || binary.LittleEndian.Uint64(got) != uint64(i) {
				t.Fatalf("updated %d: %v %v", i, got, err)
			}
		case i%5 == 1:
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("deleted %d: %v", i, err)
			}
		}
	}
	if err := cl.Update(999999999, val8(0)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update absent: %v", err)
	}
}

func TestScanOrdered(t *testing.T) {
	const n = 3000
	_, cl := buildTest(t, DefaultOptions(), n)
	keys := sortedKeys(n)
	out, err := cl.Scan(keys[100], 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 200 {
		t.Fatalf("scan returned %d", len(out))
	}
	if out[0].Key != keys[100] {
		t.Fatalf("scan starts at %#x, want %#x", out[0].Key, keys[100])
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].Key >= out[i].Key {
			t.Fatal("scan unsorted")
		}
	}
}

func TestSearchIsTwoLeavesOneTrip(t *testing.T) {
	const n = 4000
	ix, cl := buildTest(t, DefaultOptions(), n)
	keys := sortedKeys(n)
	before := cl.DM().Stats()
	const reads = 100
	for i := 0; i < reads; i++ {
		if _, err := cl.Search(keys[i*7]); err != nil {
			t.Fatal(err)
		}
	}
	after := cl.DM().Stats()
	if trips := after.Trips - before.Trips; trips != reads {
		t.Fatalf("trips = %d for %d searches, want 1 each", trips, reads)
	}
	perOp := float64(after.BytesRead-before.BytesRead) / reads
	want := 2 * float64(ix.LeafNodeSize()-64)
	if perOp < want*0.99 || perOp > want*1.2 {
		t.Fatalf("per-search bytes %.0f, want ≈ 2 leaf bodies %.0f", perOp, want)
	}
}

func TestIndirectValues(t *testing.T) {
	o := DefaultOptions()
	o.Indirect = true
	o.ValueSize = 32
	keys := sortedKeys(300)
	vals := map[uint64][]byte{}
	for _, k := range keys {
		vals[k] = ycsb.FillValue(k, 32, 0)
	}
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 128 << 20
	ix, err := Build(dmsim.MustNewFabric(cfg), o, keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	cl := ix.NewComputeNode().NewClient()
	for _, k := range keys {
		got, err := cl.Search(k)
		if err != nil || string(got) != string(ycsb.FillValue(k, 32, 0)) {
			t.Fatalf("indirect %#x: %v", k, err)
		}
	}
	k := keys[7]
	if err := cl.Update(k, ycsb.FillValue(k, 32, 1)); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Search(k)
	if err != nil || string(got) != string(ycsb.FillValue(k, 32, 1)) {
		t.Fatal("indirect update lost")
	}
}

func TestCacheBytesSmall(t *testing.T) {
	const n = 50000
	ix, _ := buildTest(t, DefaultOptions(), n)
	// ROLEX's selling point: the model cache is tiny relative to data.
	dataBytes := int64(n * 16)
	if ix.CacheBytes() > dataBytes {
		t.Fatalf("cache %d bytes exceeds data %d", ix.CacheBytes(), dataBytes)
	}
	t.Logf("cache = %d bytes for %d keys (%d segments)", ix.CacheBytes(), n, len(ix.model.Segments))
}

func TestConcurrentMixed(t *testing.T) {
	const n = 4000
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 512 << 20
	ix, err := Build(dmsim.MustNewFabric(cfg), DefaultOptions(), sortedKeys(n), nil)
	if err != nil {
		t.Fatal(err)
	}
	cn := ix.NewComputeNode()
	keys := sortedKeys(n)
	const clients = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := cn.NewClient()
			r := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < 400; i++ {
				k := keys[r.Intn(n)]
				switch r.Intn(3) {
				case 0:
					if _, err := cl.Search(k); err != nil && !errors.Is(err, ErrNotFound) {
						errs <- fmt.Errorf("search: %w", err)
						return
					}
				case 1:
					if err := cl.Update(k, val8(uint64(i))); err != nil && !errors.Is(err, ErrNotFound) {
						errs <- fmt.Errorf("update: %w", err)
						return
					}
				case 2:
					if _, err := cl.Scan(k, 10); err != nil {
						errs <- fmt.Errorf("scan: %w", err)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
