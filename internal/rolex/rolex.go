package rolex

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"chime/internal/dmsim"
	"chime/internal/hopscotch"
	"chime/internal/locktable"
	"chime/internal/nodelayout"
	"chime/internal/obs"
	"chime/internal/offroute"
)

// Options configures a ROLEX index.
type Options struct {
	// SpanSize is the number of entries per leaf. Paper default: 16.
	SpanSize int
	// Epsilon is the model error bound. Paper default: equal to the
	// span size.
	Epsilon int
	// ValueSize is the inline value size in bytes.
	ValueSize int
	// Indirect stores block pointers in leaves (ROLEX-Indirect).
	Indirect bool

	// HopscotchLeaves turns each leaf into a hopscotch hash table so
	// point queries fetch H-entry neighborhoods instead of whole
	// leaves. This is "CHIME-Learned" from the paper's §5.3 factor
	// analysis: the hopscotch-leaf technique applied to the learned
	// index. Searches still touch both the main leaf and its overflow
	// buddy, which is why the paper prefers the B+-tree hybrid.
	HopscotchLeaves bool
	// Neighborhood is the hopscotch neighborhood size (default 8).
	Neighborhood int

	// LeaseLocks stamps an (owner, expiry) lease into every remote lock
	// so survivors can steal locks from crashed holders (internal/lease).
	// Lease mode bypasses the same-CN lock table: a local handover would
	// hand a waiter the holder's lease.
	LeaseLocks bool
	// LeaseNs is the lease duration in virtual nanoseconds (zero =
	// lease.DefaultNs).
	LeaseNs int64

	// Offload selects the hybrid one-sided/RPC protocol: per-op routing
	// between one-sided group reads and the MN-side program registered
	// at build time (mnprog.go). The PLR model stays CN-side — the
	// client ships the predicted group as the verb argument. Zero =
	// pure one-sided (today's behavior).
	Offload offroute.Mode
}

// DefaultOptions returns the paper's default ROLEX configuration.
func DefaultOptions() Options {
	return Options{SpanSize: 16, Epsilon: 16, ValueSize: 8}
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.SpanSize < 2 || o.SpanSize > 1024 {
		return fmt.Errorf("rolex: SpanSize %d out of [2,1024]", o.SpanSize)
	}
	if o.Epsilon < 1 {
		return fmt.Errorf("rolex: Epsilon %d < 1", o.Epsilon)
	}
	if !o.Indirect && (o.ValueSize < 1 || o.ValueSize > 4096) {
		return fmt.Errorf("rolex: ValueSize %d out of [1,4096]", o.ValueSize)
	}
	if o.LeaseNs < 0 {
		return fmt.Errorf("rolex: negative LeaseNs")
	}
	if o.HopscotchLeaves {
		h := o.Neighborhood
		if h == 0 {
			h = 8
		}
		if h < 1 || h > 16 || h > o.SpanSize || o.SpanSize%h != 0 {
			return fmt.Errorf("rolex: Neighborhood %d incompatible with span %d", h, o.SpanSize)
		}
	}
	return nil
}

// ErrNotFound reports an absent key.
var ErrNotFound = errors.New("rolex: key not found")

const (
	maxRetries = 100000
	lineSize   = nodelayout.LineSize

	flagOccupied = 1 << 0
)

// Leaf remote layout: lock word at 0, a header cell
// [8B chain pointer][2B count unused], then span entry cells
// [1B flags][8B key][val]. Every leaf group is a main leaf plus an
// eagerly allocated overflow buddy at a deterministic address, so a
// search fetches both in one doorbell batch — the 2·span amplification
// the paper reports. Buddies can chain further overflow leaves for
// pathological skew.
type layout struct {
	span    int
	valSize int
	hop     bool
	h       int

	header     nodelayout.Cell
	entryCells []nodelayout.Cell
	allCells   []nodelayout.Cell
	size       int
}

func newLayout(o Options) *layout {
	l := &layout{span: o.SpanSize, valSize: o.ValueSize, hop: o.HopscotchLeaves, h: o.Neighborhood}
	if l.hop && l.h == 0 {
		l.h = 8
	}
	if o.Indirect {
		l.valSize = 8
	}
	entryContent := 1 + 8 + l.valSize
	if l.hop {
		entryContent += 2 // hopscotch bitmap
	}
	contents := []int{8}
	for i := 0; i < o.SpanSize; i++ {
		contents = append(contents, entryContent)
	}
	cells, regionSize := nodelayout.LayoutCells(lineSize, contents)
	l.header = cells[0]
	l.entryCells = cells[1:]
	l.allCells = cells
	l.size = lineSize + regionSize
	return l
}

type entry struct {
	occupied bool
	hopBM    uint16 // hopscotch-leaf mode only
	key      uint64
	val      []byte
}

func (l *layout) encodeEntry(img []byte, i int, e entry, bump bool) {
	c := l.entryCells[i]
	content := make([]byte, c.Content)
	if e.occupied {
		content[0] |= flagOccupied
	}
	off := 1
	if l.hop {
		binary.LittleEndian.PutUint16(content[1:3], e.hopBM)
		off = 3
	}
	binary.LittleEndian.PutUint64(content[off:off+8], e.key)
	copy(content[off+8:], e.val)
	nodelayout.WriteCellContent(img, c, content)
	if bump {
		nodelayout.BumpEV(img, c)
	}
}

func (l *layout) decodeEntry(img []byte, i int) entry {
	c := l.entryCells[i]
	content := nodelayout.ReadCellContent(img, c, make([]byte, 0, c.Content))
	e := entry{occupied: content[0]&flagOccupied != 0}
	off := 1
	if l.hop {
		e.hopBM = binary.LittleEndian.Uint16(content[1:3])
		off = 3
	}
	e.key = binary.LittleEndian.Uint64(content[off : off+8])
	e.val = content[off+8:]
	return e
}

// homeOf returns a key's hopscotch home slot within a leaf.
func (l *layout) homeOf(key uint64) int {
	return int(hopscotch.Hash(key) % uint64(l.span))
}

func (l *layout) setChain(img []byte, chain dmsim.GAddr) {
	content := make([]byte, l.header.Content)
	binary.LittleEndian.PutUint64(content, chain.Pack())
	nodelayout.WriteCellContent(img, l.header, content)
}

func (l *layout) chain(img []byte) dmsim.GAddr {
	content := nodelayout.ReadCellContent(img, l.header, make([]byte, 0, 8))
	return dmsim.UnpackGAddr(binary.LittleEndian.Uint64(content))
}

// Index is one ROLEX index: the remote leaf-group array plus the
// CN-side model (PLR segments and leaf fence keys, both counted as
// cache consumption).
type Index struct {
	fabric *dmsim.Fabric
	opts   Options
	lay    *layout

	base      dmsim.GAddr // leaf group array: group i = 2 leaves at base + i*2*size
	numGroups int
	model     *PLR
	fences    []uint64 // fences[i] = smallest trained key of group i

	// mnprog is the MN-side offload program registered at build time;
	// offMN is the MN it is addressed on (the group array's MN).
	mnprog dmsim.MNProgramID
	offMN  int
}

// Build bulk-loads a ROLEX index from keys and their values. Keys are
// sorted internally; values[i] must correspond to keys[i] (nil values
// load a zero value of the configured size). Models are trained once,
// per the CHIME evaluation's pre-training setup.
func Build(f *dmsim.Fabric, opts Options, keys []uint64, values map[uint64][]byte) (*Index, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("rolex: Build requires at least one key (models are pre-trained)")
	}
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] == sorted[i] {
			return nil, fmt.Errorf("rolex: duplicate key %#x", sorted[i])
		}
	}

	ix := &Index{fabric: f, opts: opts, lay: newLayout(opts)}
	model, err := TrainPLR(sorted, opts.Epsilon)
	if err != nil {
		return nil, err
	}
	ix.model = model

	span := opts.SpanSize
	ix.numGroups = (len(sorted) + span - 1) / span
	boot := f.NewClient()
	groupBytes := 2 * ix.lay.size
	base, err := boot.AllocRPC(0, ix.numGroups*groupBytes)
	if err != nil {
		return nil, err
	}
	ix.base = base

	ix.fences = make([]uint64, ix.numGroups)
	for g := 0; g < ix.numGroups; g++ {
		lo := g * span
		hi := lo + span
		if hi > len(sorted) {
			hi = len(sorted)
		}
		ix.fences[g] = sorted[lo]

		img := make([]byte, ix.lay.size)
		mainPlacer := newPlacer(ix.lay, img)
		var buddyImg []byte
		var buddyPlacer *placer
		for i, k := range sorted[lo:hi] {
			v := values[k]
			if v == nil {
				v = make([]byte, ix.lay.valSize)
			}
			v, err = prepareValue(boot, f, opts, ix.lay, k, v)
			if err != nil {
				return nil, err
			}
			if ix.lay.hop {
				// A fully packed group exceeds hopscotch's maximum load
				// factor; keys that cannot hop into the main leaf spill
				// into the overflow buddy, which lookups fetch anyway.
				if !mainPlacer.place(k, v) {
					if buddyPlacer == nil {
						buddyImg = make([]byte, ix.lay.size)
						buddyPlacer = newPlacer(ix.lay, buddyImg)
					}
					if !buddyPlacer.place(k, v) {
						return nil, fmt.Errorf("rolex: hopscotch bulk placement failed in group %d", g)
					}
				}
			} else {
				ix.lay.encodeEntry(img, i, entry{occupied: true, key: k, val: v}, false)
			}
			_ = i
		}
		if err := boot.Write(ix.groupMain(g), img); err != nil {
			return nil, err
		}
		if buddyImg != nil {
			if err := boot.Write(ix.groupBuddy(g), buddyImg); err != nil {
				return nil, err
			}
		}
		// Otherwise the overflow buddy starts empty (zero image is valid).
	}
	ix.mnprog = f.RegisterMNProgram(&mnProgram{ix: ix})
	ix.offMN = int(base.MN)
	return ix, nil
}

func prepareValue(dc *dmsim.Client, f *dmsim.Fabric, opts Options, lay *layout, key uint64, value []byte) ([]byte, error) {
	if !opts.Indirect {
		if len(value) != opts.ValueSize {
			return nil, fmt.Errorf("rolex: value is %dB, index stores %dB", len(value), opts.ValueSize)
		}
		return value, nil
	}
	block := make([]byte, 8+len(value))
	binary.LittleEndian.PutUint64(block[:8], key)
	copy(block[8:], value)
	// Bulk load allocates blocks straight from the MN.
	addr, err := dc.AllocRPC(0, len(block))
	if err != nil {
		return nil, err
	}
	if err := dc.Write(addr, block); err != nil {
		return nil, err
	}
	ptr := make([]byte, 8)
	binary.LittleEndian.PutUint64(ptr, addr.Pack())
	return ptr, nil
}

// Options returns the index configuration.
func (ix *Index) Options() Options { return ix.opts }

// LeafNodeSize returns one leaf's encoded footprint.
func (ix *Index) LeafNodeSize() int { return ix.lay.size }

// CacheBytes reports the computing-side footprint: PLR segments plus the
// per-group fence keys — what ROLEX keeps on CNs instead of tree nodes.
func (ix *Index) CacheBytes() int64 {
	return ix.model.SizeBytes() + int64(len(ix.fences))*8
}

func (ix *Index) groupMain(g int) dmsim.GAddr {
	return ix.base.Add(uint64(g * 2 * ix.lay.size))
}

func (ix *Index) groupBuddy(g int) dmsim.GAddr {
	return ix.base.Add(uint64(g*2*ix.lay.size + ix.lay.size))
}

// route returns the leaf group a key belongs to: the model predicts a
// rank, and the (CN-cached) fence keys correct it within the ±ε window.
// Routing is deterministic, which is what makes retraining-free inserts
// sound (ROLEX's data-movement constraint).
func (ix *Index) route(key uint64) int {
	pos := ix.model.Predict(key, ix.numGroups*ix.opts.SpanSize)
	g := pos / ix.opts.SpanSize
	if g >= ix.numGroups {
		g = ix.numGroups - 1
	}
	for g > 0 && key < ix.fences[g] {
		g--
	}
	for g+1 < ix.numGroups && key >= ix.fences[g+1] {
		g++
	}
	return g
}

// ComputeNode is ROLEX's per-CN state: the (immutable, shared) model
// plus a local lock table absorbing same-CN group-lock contention.
type ComputeNode struct {
	ix    *Index
	locks *locktable.Table
	mu    sync.Mutex
	obs   obs.IndexInstruments
}

// NewComputeNode returns per-CN state.
func (ix *Index) NewComputeNode() *ComputeNode {
	return &ComputeNode{ix: ix, locks: locktable.New()}
}

// SetObserver attaches an observability sink; clients created afterward
// count torn reads, lock backoffs and overflow-chain hops into it and
// emit per-operation trace spans when the sink traces. Call before
// NewClient. With no sink every instrumented call is a no-op.
func (cn *ComputeNode) SetObserver(s *obs.Sink) {
	cn.obs = obs.ResolveIndex(s)
}

// Client is one ROLEX client; not safe for concurrent use.
type Client struct {
	cn      *ComputeNode
	ix      *Index
	dc      *dmsim.Client
	alloc   *dmsim.ChunkAllocator
	backoff int64
	obs     obs.IndexInstruments

	// router decides one-sided vs. MN-side offload per op (offload.go);
	// nil when Options.Offload is off. offBuf is the reusable offload
	// response buffer.
	router *offroute.Router
	offBuf []byte
}

// NewClient creates a client bound to the compute node.
func (cn *ComputeNode) NewClient() *Client {
	dc := cn.ix.fabric.NewClient()
	dc.SetFlight(cn.obs.Flight.NewFlight(dc.ID()))
	bufSize := cn.ix.opts.ValueSize
	if bufSize < 8 {
		bufSize = 8
	}
	return &Client{
		cn: cn, ix: cn.ix, dc: dc,
		alloc:  dmsim.NewChunkAllocator(dc, int(dc.ID())%cn.ix.fabric.MNs()),
		router: offroute.New(cn.ix.opts.Offload),
		offBuf: make([]byte, bufSize),
		obs:    cn.obs,
	}
}

// DM exposes the fabric client for the benchmark harness.
func (c *Client) DM() *dmsim.Client { return c.dc }

func (c *Client) yield() {
	if c.backoff < 64 {
		c.backoff = 64
	} else if c.backoff < 8192 {
		c.backoff *= 2
	}
	c.dc.Advance(c.backoff)
	runtime.Gosched()
}

// chargeModel charges the CN-side learned-model inference that routes a
// key to its leaf group, labeled as cache-lookup time in the flight
// ledger (model inference is ROLEX's analog of the index-cache probe).
func (c *Client) chargeModel() {
	fl := c.dc.Flight()
	prev := fl.SetPhase(obs.PhaseCacheLookup)
	c.dc.Advance(150)
	fl.SetPhase(prev)
}
