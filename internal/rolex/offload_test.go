package rolex

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"

	"chime/internal/dmsim"
	"chime/internal/offroute"
)

func buildOffloadTest(t *testing.T, cfg dmsim.Config, opts Options, n int) (*Index, *Client) {
	t.Helper()
	ix, err := Build(dmsim.MustNewFabric(cfg), opts, sortedKeys(n), nil)
	if err != nil {
		t.Fatal(err)
	}
	return ix, ix.NewComputeNode().NewClient()
}

// ModeAlways: every supported op goes through the MN program; results
// must match what the one-sided paths produce, and the MN CPU must have
// been charged.
func TestOffloadSearchUpdateScan(t *testing.T) {
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 512 << 20
	opts := DefaultOptions()
	opts.Offload = offroute.ModeAlways
	ix, cl := buildOffloadTest(t, cfg, opts, 2000)
	keys := sortedKeys(2000)

	for _, k := range keys {
		got, err := cl.Search(k)
		if err != nil {
			t.Fatalf("Search(%#x): %v", k, err)
		}
		if len(got) != 8 {
			t.Fatalf("Search(%#x): %d bytes", k, len(got))
		}
	}
	// A key between two trained keys is absent.
	absent := keys[10] + 1
	if absent == keys[11] {
		absent = keys[20] + 1
	}
	if _, err := cl.Search(absent); !errors.Is(err, ErrNotFound) {
		t.Fatalf("absent key: %v, want ErrNotFound", err)
	}

	for i, k := range keys {
		if i%3 != 0 {
			continue
		}
		if err := cl.Update(k, val8(k+5)); err != nil {
			t.Fatalf("Update(%#x): %v", k, err)
		}
	}
	if err := cl.Update(absent, val8(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update absent key: %v, want ErrNotFound", err)
	}
	for i, k := range keys {
		got, err := cl.Search(k)
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 && binary.LittleEndian.Uint64(got) != k+5 {
			t.Fatalf("after update, Search(%#x) = %d, want %d", k, binary.LittleEndian.Uint64(got), k+5)
		}
	}

	out, err := cl.Scan(keys[100], 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 50 {
		t.Fatalf("scan returned %d items, want 50", len(out))
	}
	for j, kv := range out {
		if kv.Key != keys[100+j] {
			t.Fatalf("scan[%d].Key = %#x, want %#x", j, kv.Key, keys[100+j])
		}
	}

	if off := cl.DM().Stats().Offloads; off == 0 {
		t.Error("ModeAlways client posted no offload verbs")
	}
	if st := ix.fabric.MNCPUStatsFor(ix.offMN); st.Ops == 0 || st.BusyNs == 0 {
		t.Errorf("MN CPU unused under ModeAlways: %+v", st)
	}
	if offOps, oneOps := cl.OffloadStats(); offOps == 0 || oneOps != 0 {
		t.Errorf("router stats = %d offloaded, %d one-sided; want all offloaded", offOps, oneOps)
	}
}

// Hopscotch-leaf mode ("CHIME-Learned"): the MN program reads whole
// leaves instead of neighborhoods but must return identical results,
// and upserts must preserve home-slot bitmaps.
func TestOffloadHopscotchLeaves(t *testing.T) {
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 512 << 20
	opts := DefaultOptions()
	opts.HopscotchLeaves = true
	opts.Neighborhood = 8
	opts.Offload = offroute.ModeAlways
	_, cl := buildOffloadTest(t, cfg, opts, 1000)
	keys := sortedKeys(1000)

	for _, k := range keys {
		if _, err := cl.Search(k); err != nil {
			t.Fatalf("Search(%#x): %v", k, err)
		}
	}
	for i, k := range keys {
		if i%2 == 0 {
			if err := cl.Update(k, val8(k^0xFF)); err != nil {
				t.Fatalf("Update(%#x): %v", k, err)
			}
		}
	}
	for i, k := range keys {
		got, err := cl.Search(k)
		if err != nil {
			t.Fatalf("Search(%#x) after update: %v", k, err)
		}
		if i%2 == 0 && binary.LittleEndian.Uint64(got) != k^0xFF {
			t.Fatalf("Search(%#x) = %d, want %d", k, binary.LittleEndian.Uint64(got), k^0xFF)
		}
	}
	if off := cl.DM().Stats().Offloads; off == 0 {
		t.Error("hopscotch mode posted no offload verbs")
	}
}

// Indirect mode: searches and scans offload (the program resolves KV
// blocks MN-side when they are local, falling back when they are not);
// updates are gated one-sided — and everything stays correct.
func TestOffloadIndirectSearch(t *testing.T) {
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 512 << 20
	opts := DefaultOptions()
	opts.Indirect = true
	opts.ValueSize = 64
	opts.Offload = offroute.ModeAlways
	ix, cl := buildOffloadTest(t, cfg, opts, 500)
	keys := sortedKeys(500)

	if ix.offloadUpdateOK() {
		t.Fatal("indirect updates must not be offloadable")
	}
	for _, k := range keys {
		got, err := cl.Search(k)
		if err != nil {
			t.Fatalf("Search(%#x): %v", k, err)
		}
		if len(got) != 64 {
			t.Fatalf("Search(%#x): %d bytes, want 64", k, len(got))
		}
	}
	out, err := cl.Scan(keys[50], 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 || out[0].Key != keys[50] {
		t.Fatalf("indirect scan: %d items, first key %#x", len(out), out[0].Key)
	}
	if off := cl.DM().Stats().Offloads; off == 0 {
		t.Error("indirect searches posted no offload verbs")
	}
}

// Adaptive mode must stay correct and route ops to both paths.
func TestOffloadAdaptiveRoutesAndStaysCorrect(t *testing.T) {
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 512 << 20
	opts := DefaultOptions()
	opts.Offload = offroute.ModeAdaptive
	_, cl := buildOffloadTest(t, cfg, opts, 1000)
	keys := sortedKeys(1000)

	for round := 0; round < 3; round++ {
		for _, k := range keys {
			if _, err := cl.Search(k); err != nil {
				t.Fatalf("Search(%#x): %v", k, err)
			}
		}
	}
	offOps, oneOps := cl.OffloadStats()
	if offOps == 0 || oneOps == 0 {
		t.Errorf("adaptive router used only one path: %d offloaded, %d one-sided", offOps, oneOps)
	}
}

// Off means off: the zero Options value keeps the router nil and the
// client posts no offload verbs at all.
func TestOffloadOffPostsNothing(t *testing.T) {
	_, cl := buildTest(t, DefaultOptions(), 500)
	keys := sortedKeys(500)
	for _, k := range keys {
		if _, err := cl.Search(k); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Scan(keys[0], 50); err != nil {
		t.Fatal(err)
	}
	if off := cl.DM().Stats().Offloads; off != 0 {
		t.Fatalf("ModeOff client posted %d offload verbs", off)
	}
	if offOps, oneOps := cl.OffloadStats(); offOps != 0 || oneOps != 0 {
		t.Fatalf("nil router counted ops: %d, %d", offOps, oneOps)
	}
}

// Lock interop: concurrent offloaded updates (MN-local lock-bit CAS)
// and one-sided inserts through the CN lock table on the same groups
// must not lose updates or corrupt entries.
func TestOffloadUpdateLockInterop(t *testing.T) {
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 512 << 20
	opts := DefaultOptions()
	opts.Offload = offroute.ModeAlways
	ix, seed := buildOffloadTest(t, cfg, opts, 256)
	keys := sortedKeys(256)

	cnOff := ix.NewComputeNode()
	cnOne := ix.NewComputeNode()

	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for g := 0; g < 2; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			cl := cnOff.NewClient() // router ModeAlways: offloaded updates
			for r := 0; r < 30; r++ {
				for i := 0; i < len(keys); i += 2 {
					if err := cl.Update(keys[i], val8(1_000_000+uint64(i))); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(g)
		go func(g int) {
			defer wg.Done()
			cl := cnOne.NewClient()
			cl.router = nil // force pure one-sided writes on the same groups
			for r := 0; r < 30; r++ {
				for i := 1; i < len(keys); i += 2 {
					if err := cl.Insert(keys[i], val8(2_000_000+uint64(i))); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	for i, k := range keys {
		got, err := seed.Search(k)
		if err != nil {
			t.Fatalf("Search(%#x) after interop: %v", k, err)
		}
		v := binary.LittleEndian.Uint64(got)
		want := uint64(1_000_000 + i)
		if i%2 == 1 {
			want = 2_000_000 + uint64(i)
		}
		if v != want {
			t.Fatalf("key %#x = %d, want %d", k, v, want)
		}
	}
}
