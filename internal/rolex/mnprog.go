package rolex

import (
	"encoding/binary"
	"runtime"
	"sort"

	"chime/internal/dmsim"
	"chime/internal/nodelayout"
)

// MN-side offload program (dmsim offload verbs), co-designed with
// ROLEX's learned routing: the PLR model and fence keys live on the CN,
// so the client routes first and ships the predicted leaf group as the
// verb's arg — the program never re-runs the model, it just probes the
// group (main leaf, overflow buddy, chain) MN-locally. The group array
// is one contiguous allocation on the program's MN; only chained
// overflow leaves and indirect KV blocks (chunk-allocated on the
// inserting client's home MN) can cross MNs, which the metered view
// reports and the program converts into a CrossMN fallback verdict.
const (
	mnTornRetries = 64
	mnLockRetries = 64
	mnChainHops   = 128
)

type mnProgram struct {
	ix *Index
}

// readLeaf fetches one leaf image through the metered view, retrying
// torn reads against a small budget.
func (p *mnProgram) readLeaf(ctx *dmsim.MNCtx, addr dmsim.GAddr) ([]byte, dmsim.OffloadStatus) {
	lay := p.ix.lay
	img := make([]byte, lay.size)
	for try := 0; try < mnTornRetries; try++ {
		if !ctx.Read(addr.Add(lineSize), img[lineSize:]) {
			return nil, dmsim.OffloadCrossMN
		}
		if nodelayout.CheckVersions(img, 0, lay.allCells) != nil {
			runtime.Gosched()
			continue
		}
		return img, dmsim.OffloadOK
	}
	return nil, dmsim.OffloadRetry
}

func mnFindIn(lay *layout, img []byte, key uint64) (int, entry) {
	for i := 0; i < lay.span; i++ {
		e := lay.decodeEntry(img, i)
		if e.occupied && e.key == key {
			return i, e
		}
	}
	return -1, entry{}
}

// emitValue resolves an entry (inline value or indirect KV block) into
// the response.
func (p *mnProgram) emitValue(ctx *dmsim.MNCtx, key uint64, e entry) dmsim.OffloadStatus {
	lay := p.ix.lay
	if !p.ix.opts.Indirect {
		if !ctx.Emit(e.val[:lay.valSize]) {
			return dmsim.OffloadRetry
		}
		return dmsim.OffloadOK
	}
	ptr := dmsim.UnpackGAddr(binary.LittleEndian.Uint64(e.val[:8]))
	if ptr.IsNil() {
		return dmsim.OffloadNotFound
	}
	block := make([]byte, 8+p.ix.opts.ValueSize)
	if !ctx.Read(ptr, block) {
		return dmsim.OffloadCrossMN
	}
	if binary.LittleEndian.Uint64(block[:8]) != key {
		return dmsim.OffloadRetry
	}
	if !ctx.Emit(block[8:]) {
		return dmsim.OffloadRetry
	}
	return dmsim.OffloadOK
}

// Search: probe the routed group's main leaf, buddy, then the overflow
// chain. Group membership never changes after routing (ROLEX's
// data-movement constraint), so there is no descent to restart.
func (p *mnProgram) Search(ctx *dmsim.MNCtx, key, arg uint64) dmsim.OffloadStatus {
	g := int(arg)
	if g < 0 || g >= p.ix.numGroups {
		return dmsim.OffloadUnsupported
	}
	lay := p.ix.lay
	main, st := p.readLeaf(ctx, p.ix.groupMain(g))
	if main == nil {
		return st
	}
	if _, e := mnFindIn(lay, main, key); e.occupied {
		return p.emitValue(ctx, key, e)
	}
	buddy, st := p.readLeaf(ctx, p.ix.groupBuddy(g))
	if buddy == nil {
		return st
	}
	if _, e := mnFindIn(lay, buddy, key); e.occupied {
		return p.emitValue(ctx, key, e)
	}
	chain := lay.chain(buddy)
	for hops := 0; !chain.IsNil() && hops < mnChainHops; hops++ {
		img, st := p.readLeaf(ctx, chain)
		if img == nil {
			return st
		}
		if _, e := mnFindIn(lay, img, key); e.occupied {
			return p.emitValue(ctx, key, e)
		}
		chain = lay.chain(img)
	}
	return dmsim.OffloadNotFound
}

// lockGroup takes the group's lock word by MN-local CAS. The word
// carries no payload outside lease mode (gated off client-side), so the
// single-bit compare-and-swap interoperates with the client's CAS
// acquire and write-zero release; while a CN-local handover chain holds
// the lock the word stays set and the budget here expires into a
// fallback.
func (p *mnProgram) lockGroup(ctx *dmsim.MNCtx, addr dmsim.GAddr) dmsim.OffloadStatus {
	for try := 0; try < mnLockRetries; try++ {
		_, swapped, ok := ctx.MaskedCAS(addr, 0, 1, 1, 1)
		if !ok {
			return dmsim.OffloadCrossMN
		}
		if swapped {
			return dmsim.OffloadOK
		}
		runtime.Gosched()
	}
	return dmsim.OffloadRetry
}

func (p *mnProgram) unlockGroup(ctx *dmsim.MNCtx, addr dmsim.GAddr) {
	ctx.MaskedCAS(addr, 1, 0, 1, 1)
}

// Update: in-place value swap under the group lock. The upsert keeps
// the slot's hopscotch bitmap (it tracks keys homed at the slot, not
// the stored key), matching the one-sided writer. Indirect values need
// client-side allocation and lease locks carry the holder's identity —
// both are gated off client-side.
func (p *mnProgram) Update(ctx *dmsim.MNCtx, key, arg uint64, val []byte) dmsim.OffloadStatus {
	o := p.ix.opts
	if o.Indirect || o.LeaseLocks {
		return dmsim.OffloadUnsupported
	}
	lay := p.ix.lay
	if len(val) != lay.valSize {
		return dmsim.OffloadUnsupported
	}
	g := int(arg)
	if g < 0 || g >= p.ix.numGroups {
		return dmsim.OffloadUnsupported
	}
	lockAddr := p.ix.groupMain(g)
	if st := p.lockGroup(ctx, lockAddr); st != dmsim.OffloadOK {
		return st
	}
	st := p.updateLocked(ctx, g, key, val)
	p.unlockGroup(ctx, lockAddr)
	return st
}

func (p *mnProgram) updateLocked(ctx *dmsim.MNCtx, g int, key uint64, val []byte) dmsim.OffloadStatus {
	lay := p.ix.lay
	type leafImg struct {
		addr dmsim.GAddr
		img  []byte
	}
	main, st := p.readLeaf(ctx, p.ix.groupMain(g))
	if main == nil {
		return st
	}
	buddy, st := p.readLeaf(ctx, p.ix.groupBuddy(g))
	if buddy == nil {
		return st
	}
	leaves := []leafImg{{p.ix.groupMain(g), main}, {p.ix.groupBuddy(g), buddy}}
	chain := lay.chain(buddy)
	for hops := 0; !chain.IsNil() && hops < mnChainHops; hops++ {
		img, st := p.readLeaf(ctx, chain)
		if img == nil {
			return st
		}
		leaves = append(leaves, leafImg{chain, img})
		chain = lay.chain(img)
	}
	for _, lf := range leaves {
		if i, e := mnFindIn(lay, lf.img, key); i >= 0 {
			e.val = val
			lay.encodeEntry(lf.img, i, e, true)
			c := lay.entryCells[i]
			if !ctx.Write(lf.addr.Add(uint64(c.Off)), lf.img[c.Off:c.End()]) {
				return dmsim.OffloadCrossMN
			}
			return dmsim.OffloadOK
		}
	}
	return dmsim.OffloadNotFound
}

// Scan: read consecutive groups from the routed start group, sorting
// each group's main+buddy+chain batch and emitting [8B key][value]
// records until the limit fills.
func (p *mnProgram) Scan(ctx *dmsim.MNCtx, start, arg uint64, limit int) dmsim.OffloadStatus {
	if limit <= 0 {
		return dmsim.OffloadOK
	}
	g := int(arg)
	if g < 0 || g >= p.ix.numGroups {
		return dmsim.OffloadUnsupported
	}
	lay := p.ix.lay
	emitted := 0
	// Inline mode emits lay.valSize bytes per record, indirect mode the
	// resolved opts.ValueSize — both equal opts.ValueSize.
	rec := make([]byte, 8+p.ix.opts.ValueSize)
	for ; g < p.ix.numGroups; g++ {
		var batch []entry
		collect := func(img []byte) {
			for i := 0; i < lay.span; i++ {
				e := lay.decodeEntry(img, i)
				if e.occupied && e.key >= start {
					e.val = append([]byte(nil), e.val...)
					batch = append(batch, e)
				}
			}
		}
		main, st := p.readLeaf(ctx, p.ix.groupMain(g))
		if main == nil {
			return st
		}
		buddy, st := p.readLeaf(ctx, p.ix.groupBuddy(g))
		if buddy == nil {
			return st
		}
		collect(main)
		collect(buddy)
		chain := lay.chain(buddy)
		for hops := 0; !chain.IsNil() && hops < mnChainHops; hops++ {
			img, st := p.readLeaf(ctx, chain)
			if img == nil {
				return st
			}
			collect(img)
			chain = lay.chain(img)
		}
		sort.Slice(batch, func(i, j int) bool { return batch[i].key < batch[j].key })
		for _, e := range batch {
			v := e.val[:lay.valSize]
			if p.ix.opts.Indirect {
				ptr := dmsim.UnpackGAddr(binary.LittleEndian.Uint64(e.val[:8]))
				if ptr.IsNil() {
					return dmsim.OffloadRetry
				}
				block := make([]byte, 8+p.ix.opts.ValueSize)
				if !ctx.Read(ptr, block) {
					return dmsim.OffloadCrossMN
				}
				if binary.LittleEndian.Uint64(block[:8]) != e.key {
					return dmsim.OffloadRetry
				}
				v = block[8:]
			}
			rec = rec[:8+len(v)]
			binary.LittleEndian.PutUint64(rec[:8], e.key)
			copy(rec[8:], v)
			if !ctx.Emit(rec) {
				return dmsim.OffloadOK
			}
			emitted++
			if emitted >= limit {
				return dmsim.OffloadOK
			}
		}
	}
	return dmsim.OffloadOK
}
