package rolex

import (
	"encoding/binary"
	"fmt"
	"sort"

	"chime/internal/dmsim"
	"chime/internal/lease"
	"chime/internal/nodelayout"
	"chime/internal/obs"
)

// readGroup fetches a leaf group's main leaf and overflow buddy in one
// doorbell batch (one round trip, 2·span entries — ROLEX's read
// amplification), validating versions on both.
func (c *Client) readGroup(g int) (main, buddy []byte, err error) {
	lay := c.ix.lay
	main = make([]byte, lay.size)
	buddy = make([]byte, lay.size)
	for try := 0; try < maxRetries; try++ {
		err = c.dc.ReadBatch(
			[]dmsim.GAddr{c.ix.groupMain(g).Add(lineSize), c.ix.groupBuddy(g).Add(lineSize)},
			[][]byte{main[lineSize:], buddy[lineSize:]},
		)
		if err != nil {
			return nil, nil, err
		}
		if nodelayout.CheckVersions(main, 0, lay.allCells) != nil ||
			nodelayout.CheckVersions(buddy, 0, lay.allCells) != nil {
			c.obs.TornReads.Inc()
			c.yield()
			continue
		}
		c.backoff = 0
		return main, buddy, nil
	}
	return nil, nil, fmt.Errorf("rolex: group %d: torn-read retries exhausted", g)
}

// readChained fetches one extra overflow leaf (rare path).
func (c *Client) readChained(addr dmsim.GAddr) ([]byte, error) {
	lay := c.ix.lay
	img := make([]byte, lay.size)
	for try := 0; try < maxRetries; try++ {
		if err := c.dc.Read(addr.Add(lineSize), img[lineSize:]); err != nil {
			return nil, err
		}
		if nodelayout.CheckVersions(img, 0, lay.allCells) != nil {
			c.obs.TornReads.Inc()
			c.yield()
			continue
		}
		c.backoff = 0
		return img, nil
	}
	return nil, fmt.Errorf("rolex: chained leaf %v: retries exhausted", addr)
}

func (c *Client) findIn(img []byte, key uint64) (int, entry) {
	lay := c.ix.lay
	for i := 0; i < lay.span; i++ {
		e := lay.decodeEntry(img, i)
		if e.occupied && e.key == key {
			return i, e
		}
	}
	return -1, entry{}
}

// searchOneSided performs a point query. In hopscotch-leaf mode
// ("CHIME-Learned") only the H-entry neighborhoods of the main leaf and
// its buddy are fetched; otherwise both whole leaves are.
func (c *Client) searchOneSided(key uint64) ([]byte, error) {
	g := c.ix.route(key)
	c.chargeModel()
	if c.ix.lay.hop {
		e, found, err := c.searchHopGroup(g, key)
		if err != nil {
			return nil, err
		}
		if found {
			return c.resolve(e, key)
		}
		return c.searchChain(g, key, dmsim.NilGAddr, true)
	}
	main, buddy, err := c.readGroup(g)
	if err != nil {
		return nil, err
	}
	for _, img := range [][]byte{main, buddy} {
		if _, e := c.findIn(img, key); e.occupied {
			return c.resolve(e, key)
		}
	}
	return c.searchChain(g, key, c.ix.lay.chain(buddy), false)
}

// searchChain walks a group's overflow chain (rare). When fetchHead is
// set the chain head is first read from the buddy's header cell.
func (c *Client) searchChain(g int, key uint64, chain dmsim.GAddr, fetchHead bool) ([]byte, error) {
	lay := c.ix.lay
	if fetchHead {
		hc := lay.header
		hdr := make([]byte, lay.size)
		if err := c.dc.Read(c.ix.groupBuddy(g).Add(uint64(hc.Off)), hdr[hc.Off:hc.End()]); err != nil {
			return nil, err
		}
		chain = lay.chain(hdr)
	}
	for hops := 0; !chain.IsNil() && hops < maxRetries; hops++ {
		c.obs.SiblingChases.Inc()
		img, err := c.readChained(chain)
		if err != nil {
			return nil, err
		}
		if _, e := c.findIn(img, key); e.occupied {
			return c.resolve(e, key)
		}
		chain = lay.chain(img)
	}
	return nil, ErrNotFound
}

func (c *Client) resolve(e entry, key uint64) ([]byte, error) {
	if !c.ix.opts.Indirect {
		return append([]byte(nil), e.val[:c.ix.lay.valSize]...), nil
	}
	for try := 0; try < maxRetries; try++ {
		ptr := dmsim.UnpackGAddr(binary.LittleEndian.Uint64(e.val[:8]))
		if ptr.IsNil() {
			break
		}
		buf := make([]byte, 8+c.ix.opts.ValueSize)
		if err := c.dc.Read(ptr, buf); err != nil {
			return nil, err
		}
		if binary.LittleEndian.Uint64(buf[:8]) == key {
			return buf[8:], nil
		}
		c.obs.Retries.Inc()
		c.yield()
	}
	return nil, ErrNotFound
}

// lockGroup serializes writers on a leaf group via the main leaf's lock
// word, with same-CN contention absorbed by the local lock table.
func (c *Client) lockGroup(g int) error {
	// All time until the lock is held — handover waits, CAS round
	// trips, backoff — is lock time in the flight ledger.
	fl := c.dc.Flight()
	defer fl.SetPhase(fl.SetPhase(obs.PhaseLockBackoff))
	addr := c.ix.groupMain(g)
	if c.ix.opts.LeaseLocks {
		return c.lockGroupLease(addr, g)
	}
	if _, handover := c.cn.locks.Acquire(c.dc, addr.Pack()); handover {
		return nil
	}
	for try := 0; try < maxRetries; try++ {
		_, ok, err := c.dc.MaskedCAS(addr, 0, 1, 1, 1)
		if err != nil {
			return err
		}
		if ok {
			c.backoff = 0
			return nil
		}
		c.obs.LockBackoffs.Inc()
		c.yield()
	}
	return fmt.Errorf("rolex: group %d lock starved", g)
}

// lockGroupLease is the lease-mode acquisition: the CAS installs an
// (owner, expiry) lease and a lock stuck under an expired lease is
// stolen (internal/lease). Writers re-read the group under the lock,
// so a steal needs no repair read.
func (c *Client) lockGroupLease(addr dmsim.GAddr, g int) error {
	leaseNs := c.ix.opts.LeaseNs
	if leaseNs <= 0 {
		leaseNs = lease.DefaultNs
	}
	for try := 0; try < maxRetries; try++ {
		word := lease.Word(c.dc.ID(), c.dc.Now()+leaseNs)
		prev, ok, err := c.dc.MaskedCAS(addr, 0, word, 1, ^uint64(0))
		if err != nil {
			return err
		}
		if ok {
			c.backoff = 0
			return nil
		}
		if lease.Expired(prev, c.dc.Now()) {
			c.obs.LeaseExpired.Inc()
			if _, won, err := c.dc.CAS(addr, prev, word); err != nil {
				return err
			} else if won {
				c.obs.Recoveries.Inc()
				c.backoff = 0
				return nil
			}
		}
		c.obs.LockBackoffs.Inc()
		c.yield()
	}
	return fmt.Errorf("rolex: group %d lock starved", g)
}

func (c *Client) unlockGroup(g int) error {
	addr := c.ix.groupMain(g)
	if c.ix.opts.LeaseLocks {
		var zero [8]byte
		return c.dc.Write(addr, zero[:])
	}
	if c.cn.locks.ReleaseHandover(c.dc, addr.Pack(), 1) {
		return nil
	}
	var zero [8]byte
	if err := c.dc.Write(addr, zero[:]); err != nil {
		return err
	}
	c.cn.locks.ReleaseRemote(c.dc, addr.Pack())
	return nil
}

func (c *Client) prepareValue(key uint64, value []byte) ([]byte, error) {
	if !c.ix.opts.Indirect {
		if len(value) != c.ix.opts.ValueSize {
			return nil, fmt.Errorf("rolex: value is %dB, index stores %dB", len(value), c.ix.opts.ValueSize)
		}
		return value, nil
	}
	block := make([]byte, 8+len(value))
	binary.LittleEndian.PutUint64(block[:8], key)
	copy(block[8:], value)
	addr, err := c.alloc.Alloc(len(block))
	if err != nil {
		return nil, err
	}
	if err := c.dc.Write(addr, block); err != nil {
		return nil, err
	}
	ptr := make([]byte, 8)
	binary.LittleEndian.PutUint64(ptr, addr.Pack())
	return ptr, nil
}

// writeEntryAndUnlock writes one entry of a leaf and releases the group
// lock: a combined doorbell batch without local contenders, a local
// handover otherwise (the group is contiguous on one MN, so the batch
// is always legal).
func (c *Client) writeEntryAndUnlock(leafAddr dmsim.GAddr, g int, img []byte, slot int) error {
	cellC := c.ix.lay.entryCells[slot]
	lockAddr := c.ix.groupMain(g)
	if c.cn.locks.HasWaiters(lockAddr.Pack()) {
		if err := c.dc.Write(leafAddr.Add(uint64(cellC.Off)), img[cellC.Off:cellC.End()]); err != nil {
			return err
		}
		if c.cn.locks.ReleaseHandover(c.dc, lockAddr.Pack(), 1) {
			return nil
		}
	}
	var zero [8]byte
	if err := c.dc.WriteBatch(
		[]dmsim.GAddr{leafAddr.Add(uint64(cellC.Off)), lockAddr},
		[][]byte{img[cellC.Off:cellC.End()], zero[:]},
	); err != nil {
		return err
	}
	c.cn.locks.ReleaseRemote(c.dc, lockAddr.Pack())
	return nil
}

// Insert adds or overwrites a key. The key is routed by the pre-trained
// model; it lands in its group's main leaf, the buddy, or — rarely — a
// chained overflow leaf (ROLEX's data-movement constraint keeps it in
// the group either way, so no retraining is needed).
func (c *Client) Insert(key uint64, value []byte) error {
	if sp := c.obs.Tracer.Begin("rolex.insert", "idx", c.dc.ID(), c.dc.Now()); sp != nil {
		defer func() { sp.End(c.dc.Now()) }()
	}
	if fl := c.dc.Flight(); fl != nil {
		fl.Begin(obs.OpInsert, c.dc.Now())
		defer func() { fl.End(c.dc.Now()) }()
	}
	val, err := c.prepareValue(key, value)
	if err != nil {
		return err
	}
	g := c.ix.route(key)
	c.chargeModel()
	if err := c.lockGroup(g); err != nil {
		return err
	}
	main, buddy, err := c.readGroup(g)
	if err != nil {
		c.unlockGroup(g)
		return err
	}
	lay := c.ix.lay

	type leafImg struct {
		addr dmsim.GAddr
		img  []byte
	}
	leaves := []leafImg{{c.ix.groupMain(g), main}, {c.ix.groupBuddy(g), buddy}}

	// Follow any existing chain so upserts and capacity checks see the
	// whole group.
	chain := lay.chain(buddy)
	for !chain.IsNil() {
		img, err := c.readChained(chain)
		if err != nil {
			c.unlockGroup(g)
			return err
		}
		leaves = append(leaves, leafImg{chain, img})
		chain = lay.chain(img)
	}

	// Upsert in place (preserving the slot's hopscotch bitmap, which
	// tracks keys homed at the slot, not the stored key).
	for _, lf := range leaves {
		if i, e := c.findIn(lf.img, key); i >= 0 && e.occupied {
			e.val = val
			lay.encodeEntry(lf.img, i, e, true)
			return c.writeEntryAndUnlock(lf.addr, g, lf.img, i)
		}
	}
	// Place the key: hopscotch planning per leaf in hop mode, first
	// free slot otherwise.
	for _, lf := range leaves {
		if lay.hop {
			if slots, ok := hopInsert(lay, lf.img, key, val); ok {
				return c.writeSlotsAndUnlock(lf.addr, g, lf.img, slots)
			}
			continue
		}
		for i := 0; i < lay.span; i++ {
			if !lay.decodeEntry(lf.img, i).occupied {
				lay.encodeEntry(lf.img, i, entry{occupied: true, key: key, val: val}, true)
				return c.writeEntryAndUnlock(lf.addr, g, lf.img, i)
			}
		}
	}

	// Group exhausted: chain a new overflow leaf onto the last one.
	c.obs.Splits.Inc()
	newAddr, err := c.alloc.Alloc(lay.size)
	if err != nil {
		c.unlockGroup(g)
		return err
	}
	img := make([]byte, lay.size)
	if lay.hop {
		if !newPlacer(lay, img).place(key, val) {
			c.unlockGroup(g)
			return fmt.Errorf("rolex: fresh overflow leaf rejected key %#x", key)
		}
	} else {
		lay.encodeEntry(img, 0, entry{occupied: true, key: key, val: val}, false)
	}
	if err := c.dc.Write(newAddr, img); err != nil {
		c.unlockGroup(g)
		return err
	}
	last := leaves[len(leaves)-1]
	lay.setChain(last.img, newAddr)
	nodelayout.BumpEV(last.img, lay.header)
	hc := lay.header
	if err := c.dc.Write(last.addr.Add(uint64(hc.Off)), last.img[hc.Off:hc.End()]); err != nil {
		return err
	}
	return c.unlockGroup(g)
}

// updateOneSided overwrites an existing key, ErrNotFound otherwise.
func (c *Client) updateOneSided(key uint64, value []byte) error {
	val, err := c.prepareValue(key, value)
	if err != nil {
		return err
	}
	return c.modify(key, &val)
}

// Delete removes a key.
func (c *Client) Delete(key uint64) error {
	if sp := c.obs.Tracer.Begin("rolex.delete", "idx", c.dc.ID(), c.dc.Now()); sp != nil {
		defer func() { sp.End(c.dc.Now()) }()
	}
	if fl := c.dc.Flight(); fl != nil {
		fl.Begin(obs.OpDelete, c.dc.Now())
		defer func() { fl.End(c.dc.Now()) }()
	}
	return c.modify(key, nil)
}

func (c *Client) modify(key uint64, val *[]byte) error {
	g := c.ix.route(key)
	c.chargeModel()
	if err := c.lockGroup(g); err != nil {
		return err
	}
	main, buddy, err := c.readGroup(g)
	if err != nil {
		c.unlockGroup(g)
		return err
	}
	lay := c.ix.lay
	type leafImg struct {
		addr dmsim.GAddr
		img  []byte
	}
	leaves := []leafImg{{c.ix.groupMain(g), main}, {c.ix.groupBuddy(g), buddy}}
	chain := lay.chain(buddy)
	for !chain.IsNil() {
		img, err := c.readChained(chain)
		if err != nil {
			c.unlockGroup(g)
			return err
		}
		leaves = append(leaves, leafImg{chain, img})
		chain = lay.chain(img)
	}
	for _, lf := range leaves {
		if i, e := c.findIn(lf.img, key); i >= 0 && e.occupied {
			if val != nil {
				e.val = *val
				lay.encodeEntry(lf.img, i, e, true)
				return c.writeEntryAndUnlock(lf.addr, g, lf.img, i)
			}
			// Delete: clear occupancy but keep the slot's own bitmap;
			// in hop mode also drop the key's bit in its home entry.
			e.occupied = false
			lay.encodeEntry(lf.img, i, e, true)
			if !lay.hop {
				return c.writeEntryAndUnlock(lf.addr, g, lf.img, i)
			}
			home := lay.homeOf(key)
			hE := lay.decodeEntry(lf.img, home)
			d := ((i-home)%lay.span + lay.span) % lay.span
			hE.hopBM &^= 1 << uint(d)
			lay.encodeEntry(lf.img, home, hE, true)
			slots := []int{i}
			if home != i {
				slots = append(slots, home)
			}
			sort.Ints(slots)
			return c.writeSlotsAndUnlock(lf.addr, g, lf.img, slots)
		}
	}
	c.unlockGroup(g)
	return ErrNotFound
}

// KV is one scan result.
type KV struct {
	Key   uint64
	Value []byte
}

// scanOneSided reads consecutive groups until the budget is filled;
// ROLEX's small span makes scans cheap.
func (c *Client) scanOneSided(start uint64, count int) ([]KV, error) {
	g := c.ix.route(start)
	c.chargeModel()
	var out []KV
	for ; g < c.ix.numGroups; g++ {
		main, buddy, err := c.readGroup(g)
		if err != nil {
			return nil, err
		}
		var batch []entry
		collect := func(img []byte) {
			for i := 0; i < c.ix.lay.span; i++ {
				e := c.ix.lay.decodeEntry(img, i)
				if e.occupied && e.key >= start {
					e.val = append([]byte(nil), e.val...)
					batch = append(batch, e)
				}
			}
		}
		collect(main)
		collect(buddy)
		chain := c.ix.lay.chain(buddy)
		for !chain.IsNil() {
			img, err := c.readChained(chain)
			if err != nil {
				return nil, err
			}
			collect(img)
			chain = c.ix.lay.chain(img)
		}
		sort.Slice(batch, func(i, j int) bool { return batch[i].key < batch[j].key })
		for _, e := range batch {
			v, err := c.resolve(e, e.key)
			if err != nil {
				return nil, err
			}
			out = append(out, KV{Key: e.key, Value: v})
		}
		if len(out) >= count {
			return out[:count], nil
		}
	}
	return out, nil
}
