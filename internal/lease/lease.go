// Package lease encodes the (owner, expiry) crash-recovery lease every
// index in this repo can stamp into the 8-byte remote lock word it
// already CASes. A client that dies holding a lock leaves the word
// locked forever; a lease lets survivors distinguish a crashed holder
// from a slow one using nothing but the word itself and the virtual
// clock — no extra verbs, no out-of-band fencing service.
//
// Bit layout while locked (LSB first):
//
//	bit  0        lock bit (always 1 while the lease is meaningful)
//	bits 1..16    owner: low 16 bits of the holder's client ID, forced
//	              nonzero so a lease-stamped word is distinguishable
//	              from the plain locked word of non-lease mode
//	bits 17..63   expiry: virtual-clock nanoseconds, low 47 bits
//
// The bits above the lock bit are free in every index here: while a
// node is locked its lock word is treated as opaque (payloads such as
// CHIME's vacancy bitmap ride the word only while it is UNLOCKED), and
// the release write replaces the whole word.
//
// Steal protocol: a contender whose lock CAS fails receives the current
// word as prev. If Expired(prev, now), it CASes the FULL word from
// prev to its own fresh lease. The full-word compare makes the steal
// linearizable against both rival stealers and a holder that was merely
// slow: any intervening release or steal changes the word and the CAS
// loses.
package lease

const (
	lockBit = uint64(1)

	ownerShift = 1
	ownerBits  = 16
	ownerMask  = ((uint64(1) << ownerBits) - 1) << ownerShift

	expiryShift = 17
	expiryBits  = 47
	expiryMask  = ((uint64(1) << expiryBits) - 1) << expiryShift
)

// DefaultNs is the default lease duration: 500 µs of virtual time, two
// orders of magnitude above any index's lock critical section (a
// handful of verbs at ~2 µs RTT), so a live holder is never mistaken
// for a corpse even under heavy NIC queueing or injected latency spikes
// while chaos tests still recover quickly.
const DefaultNs = 500_000

// Word returns the lock word a lease-mode acquire CAS installs: lock
// bit, owner tag derived from the client ID (forced nonzero), and the
// expiry time in virtual nanoseconds.
func Word(clientID int64, expiry int64) uint64 {
	owner := uint64(clientID) & (ownerMask >> ownerShift)
	if owner == 0 {
		owner = 1
	}
	return lockBit |
		owner<<ownerShift |
		(uint64(expiry) << expiryShift & expiryMask)
}

// Decode splits a lock word into its lease fields.
func Decode(w uint64) (owner uint64, expiry int64) {
	return (w & ownerMask) >> ownerShift, int64((w & expiryMask) >> expiryShift)
}

// Expired reports whether w is a lock word held under a lease that ran
// out at virtual time now. A word without the lock bit, or without an
// owner (non-lease locked words have zero owner bits), never expires.
func Expired(w uint64, now int64) bool {
	if w&lockBit == 0 {
		return false
	}
	owner, expiry := Decode(w)
	return owner != 0 && expiry != 0 && now > expiry
}
