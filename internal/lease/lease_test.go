package lease

import "testing"

func TestWordRoundTrip(t *testing.T) {
	w := Word(42, 1_000_000)
	if w&1 == 0 {
		t.Fatal("lease word must carry the lock bit")
	}
	owner, expiry := Decode(w)
	if owner != 42 || expiry != 1_000_000 {
		t.Fatalf("Decode = (%d, %d), want (42, 1000000)", owner, expiry)
	}
}

func TestOwnerForcedNonzero(t *testing.T) {
	// A client ID whose low 16 bits are zero must still be
	// distinguishable from a non-lease locked word.
	owner, _ := Decode(Word(1<<16, 99))
	if owner == 0 {
		t.Fatal("owner aliased to zero")
	}
}

func TestExpired(t *testing.T) {
	w := Word(7, 1000)
	cases := []struct {
		name string
		w    uint64
		now  int64
		want bool
	}{
		{"before expiry", w, 999, false},
		{"at expiry", w, 1000, false},
		{"past expiry", w, 1001, true},
		{"unlocked word", w &^ 1, 1 << 40, false},
		{"plain locked word (no lease)", 1, 1 << 40, false},
		{"zero word", 0, 1 << 40, false},
	}
	for _, tc := range cases {
		if got := Expired(tc.w, tc.now); got != tc.want {
			t.Errorf("%s: Expired = %v, want %v", tc.name, got, tc.want)
		}
	}
}
