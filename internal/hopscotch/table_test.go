package hopscotch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewTableGeometry(t *testing.T) {
	if _, err := NewTable(0, 4); err == nil {
		t.Error("n=0 must fail")
	}
	if _, err := NewTable(8, 0); err == nil {
		t.Error("h=0 must fail")
	}
	if _, err := NewTable(8, 16); err == nil {
		t.Error("h>n must fail")
	}
	if _, err := NewTable(64, 33); err == nil {
		t.Error("h>32 must fail (bitmap width)")
	}
	tbl, err := NewTable(128, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Cap() != 128 || tbl.H() != 8 || tbl.Len() != 0 {
		t.Fatalf("geometry: cap=%d h=%d len=%d", tbl.Cap(), tbl.H(), tbl.Len())
	}
}

func TestPutGetDelete(t *testing.T) {
	tbl, _ := NewTable(128, 8)
	keys := map[uint64]uint64{}
	r := rand.New(rand.NewSource(1))
	for len(keys) < 80 {
		k, v := r.Uint64(), r.Uint64()
		if err := tbl.Put(k, v); err != nil {
			t.Fatalf("put failed at %d keys: %v", len(keys), err)
		}
		keys[k] = v
	}
	if err := tbl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k, v := range keys {
		got, ok := tbl.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%#x) = %d,%v want %d", k, got, ok, v)
		}
	}
	if _, ok := tbl.Get(0xDEAD); ok {
		t.Fatal("found absent key")
	}
	// Delete half, verify, re-check invariants.
	n := 0
	for k := range keys {
		if n%2 == 0 {
			if !tbl.Delete(k) {
				t.Fatalf("Delete(%#x) missed", k)
			}
			delete(keys, k)
		}
		n++
	}
	if tbl.Delete(0xDEAD) {
		t.Fatal("deleted absent key")
	}
	if err := tbl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k, v := range keys {
		if got, ok := tbl.Get(k); !ok || got != v {
			t.Fatalf("after deletes Get(%#x) = %d,%v", k, got, ok)
		}
	}
}

func TestPutUpdatesInPlace(t *testing.T) {
	tbl, _ := NewTable(64, 8)
	if err := tbl.Put(7, 1); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Put(7, 2); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("len = %d after update, want 1", tbl.Len())
	}
	if v, _ := tbl.Get(7); v != 2 {
		t.Fatalf("value = %d, want 2", v)
	}
}

// TestInvariantsUnderRandomOps is the package's core property test:
// arbitrary put/delete sequences preserve the hopscotch invariants and
// a shadow map.
func TestInvariantsUnderRandomOps(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tbl, _ := NewTable(64, 8)
		shadow := map[uint64]uint64{}
		keys := make([]uint64, 0, 64)
		for i := 0; i < 500; i++ {
			if r.Float64() < 0.7 || len(keys) == 0 {
				k, v := r.Uint64()%1000, r.Uint64()
				if err := tbl.Put(k, v); err == nil {
					if _, dup := shadow[k]; !dup {
						keys = append(keys, k)
					}
					shadow[k] = v
				}
			} else {
				k := keys[r.Intn(len(keys))]
				tbl.Delete(k)
				delete(shadow, k)
			}
			if err := tbl.CheckInvariants(); err != nil {
				t.Logf("seed %d step %d: %v", seed, i, err)
				return false
			}
		}
		if tbl.Len() != len(shadow) {
			return false
		}
		for k, v := range shadow {
			if got, ok := tbl.Get(k); !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanRejectsBadGeometry(t *testing.T) {
	occ := func(int) bool { return false }
	hm := func(int) int { return 0 }
	if _, _, err := Plan(0, 4, 0, occ, hm); err == nil {
		t.Error("n=0 must fail")
	}
	if _, _, err := Plan(8, 9, 0, occ, hm); err == nil {
		t.Error("h>n must fail")
	}
	if _, _, err := Plan(8, 4, 8, occ, hm); err == nil {
		t.Error("home out of range must fail")
	}
}

func TestPlanDirectPlacement(t *testing.T) {
	// Slot 3 free inside the neighborhood of home 2: no moves needed.
	occupied := map[int]bool{0: true, 1: true, 2: true}
	moves, free, err := Plan(8, 4, 2,
		func(i int) bool { return occupied[i] },
		func(i int) int { return i })
	if err != nil || len(moves) != 0 || free != 3 {
		t.Fatalf("moves=%v free=%d err=%v", moves, free, err)
	}
}

func TestPlanSingleHop(t *testing.T) {
	// Table of 8, H=2, home=0. Slots 0..2 occupied (homes 0,1,2), slot 3
	// free. Free slot 3 is outside [0,2); key at 2 (home 2) can hop to 3.
	// Then hole at 2 still outside; key at 1 (home 1) hops to 2; hole at
	// 1 is within [0,2).
	homes := map[int]int{0: 0, 1: 1, 2: 2}
	occ := map[int]bool{0: true, 1: true, 2: true}
	moves, free, err := Plan(8, 2, 0,
		func(i int) bool { return occ[i] },
		func(i int) int { return homes[i] })
	if err != nil {
		t.Fatal(err)
	}
	if free != 1 {
		t.Fatalf("free = %d, want 1", free)
	}
	want := []Move{{From: 2, To: 3}, {From: 1, To: 2}}
	if len(moves) != len(want) {
		t.Fatalf("moves = %v, want %v", moves, want)
	}
	for i := range want {
		if moves[i] != want[i] {
			t.Fatalf("moves = %v, want %v", moves, want)
		}
	}
}

func TestPlanFullTable(t *testing.T) {
	// All slots occupied by keys homed at their own positions: no probe
	// target exists at all.
	_, _, err := Plan(8, 4, 0,
		func(i int) bool { return true },
		func(i int) int { return i })
	if err != ErrFull {
		t.Fatalf("err = %v, want ErrFull", err)
	}
}

func TestPlanInfeasibleHop(t *testing.T) {
	// H=2, home=0, slots 0..5 hold keys that are all exactly at their
	// home; slot 6 free. Key at 5 could move (home 5, dist to 6 = 1 <2).
	// Construct instead homes such that no predecessor can move: give
	// each slot a home exactly H-1 behind it... then they CAN move.
	// Make every occupied slot's key already at max displacement: home
	// = slot-1 (for H=2, dist from home to slot = 1, moving to slot+1
	// would be dist 2 >= H). Then no hop is legal.
	occ := func(i int) bool { return i != 6 }
	homeOf := func(i int) int { return (i - 1 + 8) % 8 }
	_, _, err := Plan(8, 2, 0, occ, homeOf)
	if err != ErrFull {
		t.Fatalf("err = %v, want ErrFull", err)
	}
}

func TestPlanWrapAround(t *testing.T) {
	// Home near the end of the table: the neighborhood wraps.
	n, h := 8, 4
	occ := map[int]bool{7: true}
	moves, free, err := Plan(n, h, 7,
		func(i int) bool { return occ[i] },
		func(i int) int { return 7 })
	if err != nil || len(moves) != 0 {
		t.Fatalf("moves=%v err=%v", moves, err)
	}
	if free != 0 { // wraps to slot 0
		t.Fatalf("free = %d, want 0", free)
	}
}

func TestHopRange(t *testing.T) {
	// No moves: range is just the neighborhood.
	start, length := HopRange(64, 8, 5, nil, 7)
	if start != 5 || length != 8 {
		t.Fatalf("range = [%d,+%d), want [5,+8)", start, length)
	}
	// With a move extending past the neighborhood.
	moves := []Move{{From: 12, To: 14}, {From: 9, To: 12}}
	start, length = HopRange(64, 8, 5, moves, 9)
	if start != 5 || length != 10 { // slot 14 is at distance 9 from home 5
		t.Fatalf("range = [%d,+%d), want [5,+10)", start, length)
	}
}

func TestHighLoadFill(t *testing.T) {
	// A 128-slot, H=8 table should comfortably exceed 75% before the
	// first failure (paper reports ≈90% mean).
	tbl, _ := NewTable(128, 8)
	r := rand.New(rand.NewSource(42))
	for {
		if err := tbl.Put(r.Uint64(), 0); err != nil {
			break
		}
	}
	if lf := tbl.LoadFactor(); lf < 0.75 {
		t.Fatalf("first-failure load factor %.3f, want >= 0.75", lf)
	}
	if err := tbl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSchemeLoadFactors(t *testing.T) {
	const n, trials = 128, 20
	hop8 := MaxLoadFactorHopscotch(n, 8, trials, 1)
	hop16 := MaxLoadFactorHopscotch(n, 16, trials, 1)
	hop2 := MaxLoadFactorHopscotch(n, 2, trials, 1)
	assoc4 := MaxLoadFactorAssociative(n, 4, trials, 1)
	race4 := MaxLoadFactorRACE(n, 4, trials, 1)
	farm4 := MaxLoadFactorFaRM(n, 4, trials, 1)

	// Paper Figure 3d / 19b shapes:
	if hop8 < 0.8 {
		t.Errorf("hopscotch H=8 load factor %.3f, want >= 0.8 (paper ~0.9)", hop8)
	}
	if hop16 < hop8 {
		t.Errorf("H=16 (%.3f) must beat H=8 (%.3f)", hop16, hop8)
	}
	if hop2 > hop8 {
		t.Errorf("H=2 (%.3f) must trail H=8 (%.3f)", hop2, hop8)
	}
	if hop2 < 0.2 || hop2 > 0.6 {
		t.Errorf("H=2 load factor %.3f, paper reports ~0.38", hop2)
	}
	// Hopscotch with amplification 8 must beat associativity with the
	// same amplification... associativity's amp-8 config is bucket 8.
	assoc8 := MaxLoadFactorAssociative(n, 8, trials, 1)
	if hop8 <= assoc8 {
		t.Errorf("hopscotch(8) %.3f must beat associative(8) %.3f at equal amp", hop8, assoc8)
	}
	if assoc4 < 0.3 || assoc4 > 0.9 {
		t.Errorf("associative(4) load factor %.3f out of plausible range", assoc4)
	}
	if race4 <= assoc4 {
		t.Errorf("RACE(4) %.3f should beat single-choice associative(4) %.3f", race4, assoc4)
	}
	if farm4 <= assoc4 {
		t.Errorf("FaRM(4) %.3f should beat associative(4) %.3f", farm4, assoc4)
	}
	t.Logf("hop2=%.3f hop8=%.3f hop16=%.3f assoc4=%.3f race4=%.3f farm4=%.3f",
		hop2, hop8, hop16, assoc4, race4, farm4)
}

func TestFigure3dSweep(t *testing.T) {
	results := Figure3d(128, 5, 1)
	if len(results) != 12 {
		t.Fatalf("got %d results, want 12", len(results))
	}
	for _, r := range results {
		if r.MaxLoadFactor <= 0 || r.MaxLoadFactor > 1 {
			t.Errorf("%s amp=%d: load factor %.3f out of (0,1]", r.Name, r.ReadAmp, r.MaxLoadFactor)
		}
	}
}
