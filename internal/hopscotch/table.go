// Package hopscotch implements hopscotch hashing (Herlihy, Shavit,
// Tzafrir, DISC '08): the collision-resolution scheme CHIME uses for its
// leaf nodes. Every key lives within a fixed-size neighborhood of its
// home slot, so a reader fetches exactly H consecutive entries, and a
// per-slot bitmap tracks which neighborhood slots hold keys homed there.
//
// The package exposes the hop-planning algorithm separately from any
// storage (Plan), so both the local Table here and CHIME's remote,
// byte-encoded leaf nodes share one implementation of the subtle part.
// It also contains the load-factor laboratory comparing hopscotch with
// the associative, RACE and FaRM schemes from Figure 3d of the paper.
package hopscotch

import (
	"errors"
	"fmt"
)

// Move is one hop: the key at From moves to the empty slot at To.
// Indexes are slot positions in the table (already wrapped).
type Move struct {
	From, To int
}

// ErrFull reports that no empty slot could be hopped into the
// neighborhood; the caller must resize (or, in CHIME, split the leaf).
var ErrFull = errors.New("hopscotch: no feasible hop")

// Plan computes the hop sequence that frees a slot inside the
// neighborhood [home, home+H) of a circular table with n slots.
//
// occupied(i) reports whether slot i holds a key; homeOf(i) returns the
// home slot of the key at occupied slot i. Plan returns the moves in
// execution order, the final free slot (guaranteed within the
// neighborhood of home), and ErrFull when the table cannot absorb the
// key.
//
// The algorithm is the classic one from §2.3 of the CHIME paper: linear
// probe for the first empty slot, then repeatedly swap the farthest
// eligible predecessor into the empty slot until the hole reaches the
// neighborhood.
func Plan(n, h, home int, occupied func(int) bool, homeOf func(int) int) ([]Move, int, error) {
	if n <= 0 || h <= 0 || h > n {
		return nil, 0, fmt.Errorf("hopscotch: bad geometry n=%d h=%d", n, h)
	}
	if home < 0 || home >= n {
		return nil, 0, fmt.Errorf("hopscotch: home %d out of [0,%d)", home, n)
	}

	// dist is the forward circular distance from a to b.
	dist := func(a, b int) int { return ((b-a)%n + n) % n }

	// Linear probe for the first empty slot at or after home.
	empty := -1
	for d := 0; d < n; d++ {
		i := (home + d) % n
		if !occupied(i) {
			empty = i
			break
		}
	}
	if empty == -1 {
		return nil, 0, ErrFull
	}

	var moves []Move
	for dist(home, empty) >= h {
		// Search the H-1 slots before empty for the farthest key (i.e.
		// the one earliest in the window) that may legally move into
		// empty: its home must be within H behind empty.
		moved := false
		for back := h - 1; back >= 1; back-- {
			j := (empty - back + n) % n
			if !occupied(j) {
				// A hole inside the window: jump the hole backward.
				empty = j
				moved = true
				break
			}
			if dist(homeOf(j), empty) < h {
				moves = append(moves, Move{From: j, To: empty})
				empty = j
				moved = true
				break
			}
		}
		if !moved {
			return nil, 0, ErrFull
		}
	}
	return moves, empty, nil
}

// HopRange returns the smallest circular slot interval [start, start+len)
// touched by the whole hopping process: the home neighborhood plus every
// move endpoint. CHIME reads and writes back exactly this range (§4.1.2).
func HopRange(n, h, home int, moves []Move, finalFree int) (start, length int) {
	dist := func(a, b int) int { return ((b-a)%n + n) % n }
	// All touched slots lie at some forward distance from home.
	maxd := h - 1
	if d := dist(home, finalFree); d > maxd {
		maxd = d
	}
	for _, m := range moves {
		if d := dist(home, m.From); d > maxd {
			maxd = d
		}
		if d := dist(home, m.To); d > maxd {
			maxd = d
		}
	}
	if maxd >= n {
		maxd = n - 1
	}
	return home, maxd + 1
}

// Table is an in-memory hopscotch hash table with uint64 keys and
// values. It is the reference implementation used by tests and the
// load-factor experiments; the remote leaf-node encoding in
// internal/core reuses Plan but stores entries in remote memory.
// Not safe for concurrent use.
type Table struct {
	h       int
	slots   []slot
	bitmaps []uint32 // bit d set: slot (i+d)%n holds a key homed at i
	size    int
	hash    func(uint64) int
}

type slot struct {
	occupied bool
	key      uint64
	val      uint64
	home     int
}

// NewTable creates a table with n slots and neighborhood size h.
func NewTable(n, h int) (*Table, error) {
	if n <= 0 || h <= 0 || h > n || h > 32 {
		return nil, fmt.Errorf("hopscotch: bad geometry n=%d h=%d", n, h)
	}
	t := &Table{h: h, slots: make([]slot, n), bitmaps: make([]uint32, n)}
	t.hash = func(k uint64) int { return int(defaultHash(k) % uint64(n)) }
	return t, nil
}

// Hash is the 64-bit mixer used to pick home slots. It is exported so
// that the remote leaf-node encoding in internal/core homes keys exactly
// like the local Table.
func Hash(k uint64) uint64 { return defaultHash(k) }

func defaultHash(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xFF51AFD7ED558CCD
	k ^= k >> 33
	k *= 0xC4CEB9FE1A85EC53
	return k ^ (k >> 33)
}

// Len returns the number of stored keys.
func (t *Table) Len() int { return t.size }

// Cap returns the number of slots.
func (t *Table) Cap() int { return len(t.slots) }

// H returns the neighborhood size.
func (t *Table) H() int { return t.h }

// LoadFactor returns size/capacity.
func (t *Table) LoadFactor() float64 { return float64(t.size) / float64(len(t.slots)) }

// Get looks the key up, scanning only its H-slot neighborhood.
func (t *Table) Get(key uint64) (uint64, bool) {
	home := t.hash(key)
	n := len(t.slots)
	bm := t.bitmaps[home]
	for d := 0; d < t.h; d++ {
		if bm&(1<<uint(d)) == 0 {
			continue
		}
		s := &t.slots[(home+d)%n]
		if s.occupied && s.key == key {
			return s.val, true
		}
	}
	return 0, false
}

// Put inserts or updates a key. It returns ErrFull when no hop sequence
// can make room; the caller should resize.
func (t *Table) Put(key, val uint64) error {
	home := t.hash(key)
	n := len(t.slots)

	// Update in place if present.
	for d := 0; d < t.h; d++ {
		s := &t.slots[(home+d)%n]
		if s.occupied && s.key == key {
			s.val = val
			return nil
		}
	}

	moves, free, err := Plan(n, t.h,
		home,
		func(i int) bool { return t.slots[i].occupied },
		func(i int) int { return t.slots[i].home },
	)
	if err != nil {
		return err
	}
	for _, m := range moves {
		t.applyMove(m)
	}
	t.place(free, home, key, val)
	t.size++
	return nil
}

func (t *Table) applyMove(m Move) {
	n := len(t.slots)
	s := t.slots[m.From]
	dOld := ((m.From-s.home)%n + n) % n
	dNew := ((m.To-s.home)%n + n) % n
	t.bitmaps[s.home] &^= 1 << uint(dOld)
	t.bitmaps[s.home] |= 1 << uint(dNew)
	t.slots[m.To] = s
	t.slots[m.From] = slot{}
}

func (t *Table) place(at, home int, key, val uint64) {
	n := len(t.slots)
	d := ((at-home)%n + n) % n
	t.slots[at] = slot{occupied: true, key: key, val: val, home: home}
	t.bitmaps[home] |= 1 << uint(d)
}

// Delete removes a key, reporting whether it was present.
func (t *Table) Delete(key uint64) bool {
	home := t.hash(key)
	n := len(t.slots)
	for d := 0; d < t.h; d++ {
		i := (home + d) % n
		s := &t.slots[i]
		if s.occupied && s.key == key {
			t.bitmaps[home] &^= 1 << uint(d)
			*s = slot{}
			t.size--
			return true
		}
	}
	return false
}

// CheckInvariants verifies the hopscotch structural invariants; tests
// call it after mutation sequences.
func (t *Table) CheckInvariants() error {
	n := len(t.slots)
	count := 0
	for i, s := range t.slots {
		if !s.occupied {
			continue
		}
		count++
		d := ((i-s.home)%n + n) % n
		if d >= t.h {
			return fmt.Errorf("key %#x at slot %d is %d past home %d (H=%d)", s.key, i, d, s.home, t.h)
		}
		if t.bitmaps[s.home]&(1<<uint(d)) == 0 {
			return fmt.Errorf("bitmap of home %d misses key %#x at +%d", s.home, s.key, d)
		}
	}
	if count != t.size {
		return fmt.Errorf("size %d but %d occupied slots", t.size, count)
	}
	for home, bm := range t.bitmaps {
		for d := 0; d < t.h; d++ {
			if bm&(1<<uint(d)) == 0 {
				continue
			}
			s := t.slots[(home+d)%n]
			if !s.occupied || s.home != home {
				return fmt.Errorf("bitmap of home %d claims +%d but slot disagrees", home, d)
			}
		}
	}
	return nil
}
