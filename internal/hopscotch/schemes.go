package hopscotch

import "math/rand"

// This file is the hashing-scheme laboratory behind Figure 3d of the
// CHIME paper: for each collision-resolution scheme used on DM, measure
// the maximum load factor a fixed-size table sustains, alongside the
// scheme's read-amplification factor (how many entries one lookup must
// fetch). Tables have 128 entries in the paper; trials insert random
// keys until the first insertion failure.

// SchemeResult is one point of Figure 3d.
type SchemeResult struct {
	Name          string
	MaxLoadFactor float64 // mean over trials
	ReadAmp       int     // entries fetched per lookup
}

// MaxLoadFactorHopscotch measures hopscotch hashing with the given
// table size and neighborhood.
func MaxLoadFactorHopscotch(n, h, trials int, seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	var sum float64
	for t := 0; t < trials; t++ {
		tbl, err := NewTable(n, h)
		if err != nil {
			panic(err)
		}
		for {
			if err := tbl.Put(r.Uint64(), 0); err != nil {
				break
			}
		}
		sum += tbl.LoadFactor()
	}
	return sum / float64(trials)
}

// MaxLoadFactorAssociative measures a single-choice associative-bucket
// table: n entries grouped into buckets of size b; a key may only live
// in its home bucket. Read amplification is b.
func MaxLoadFactorAssociative(n, b, trials int, seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	buckets := n / b
	var sum float64
	for t := 0; t < trials; t++ {
		fill := make([]int, buckets)
		inserted := 0
		for {
			h := int(defaultHash(r.Uint64()) % uint64(buckets))
			if fill[h] == b {
				break
			}
			fill[h]++
			inserted++
		}
		sum += float64(inserted) / float64(n)
	}
	return sum / float64(trials)
}

// MaxLoadFactorRACE measures the RACE hash-table design (ATC '21):
// associativity + two choices + overflow colocation. The table is a row
// of bucket groups, each group holding [main1 | overflow | main2]; a key
// hashes to two main buckets in different groups and may also use the
// overflow bucket adjacent to each. A lookup fetches both candidate
// (main+overflow) pairs, so the read amplification is 4·b.
func MaxLoadFactorRACE(n, b, trials int, seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	// n entries total; each group holds 3 buckets of size b.
	groups := n / (3 * b)
	if groups < 2 {
		groups = 2
	}
	total := groups * 3 * b
	var sum float64
	for t := 0; t < trials; t++ {
		fill := make([]int, groups*3) // bucket fill counts
		inserted := 0
		for {
			k := r.Uint64()
			h1 := int(defaultHash(k) % uint64(groups))
			h2 := int(defaultHash(k^0xDEADBEEF) % uint64(groups))
			if h2 == h1 {
				h2 = (h1 + 1) % groups
			}
			// Candidate buckets: (main1, overflow) of group h1 and
			// (main2, overflow) of group h2.
			cands := []int{h1*3 + 0, h1*3 + 1, h2*3 + 2, h2*3 + 1}
			best := -1
			for _, c := range cands {
				if fill[c] < b && (best == -1 || fill[c] < fill[best]) {
					best = c
				}
			}
			if best == -1 {
				break
			}
			fill[best]++
			inserted++
		}
		sum += float64(inserted) / float64(total)
	}
	return sum / float64(trials)
}

// MaxLoadFactorFaRM measures FaRM's chained associative hopscotch
// (NSDI '14) with the chained overflow blocks disabled, as the CHIME
// paper does: hopscotch hashing whose neighborhood is two associative
// buckets (2·b entries) and whose reads fetch both buckets, giving a
// read amplification of 2·b.
func MaxLoadFactorFaRM(n, b, trials int, seed int64) float64 {
	// Neighborhood of two b-entry buckets = hopscotch with H = 2b over
	// bucket-aligned homes.
	r := rand.New(rand.NewSource(seed))
	var sum float64
	for t := 0; t < trials; t++ {
		tbl, err := NewTable(n, 2*b)
		if err != nil {
			panic(err)
		}
		// Bucket-aligned homes: hash to a bucket, home = bucket start.
		buckets := n / b
		tbl.hash = func(k uint64) int { return int(defaultHash(k)%uint64(buckets)) * b }
		for {
			if err := tbl.Put(r.Uint64(), 0); err != nil {
				break
			}
		}
		sum += tbl.LoadFactor()
	}
	return sum / float64(trials)
}

// Figure3d runs the full Figure 3d sweep over a table of n entries and
// returns one result per scheme configuration, in the paper's layout:
// associativity with bucket sizes, hopscotch with neighborhood sizes,
// RACE and FaRM with their default bucket geometry.
func Figure3d(n, trials int, seed int64) []SchemeResult {
	var out []SchemeResult
	for _, b := range []int{2, 4, 8, 16} {
		out = append(out, SchemeResult{
			Name:          "associative",
			MaxLoadFactor: MaxLoadFactorAssociative(n, b, trials, seed),
			ReadAmp:       b,
		})
	}
	for _, h := range []int{2, 4, 8, 16} {
		out = append(out, SchemeResult{
			Name:          "hopscotch",
			MaxLoadFactor: MaxLoadFactorHopscotch(n, h, trials, seed),
			ReadAmp:       h,
		})
	}
	for _, b := range []int{2, 4} {
		out = append(out, SchemeResult{
			Name:          "RACE",
			MaxLoadFactor: MaxLoadFactorRACE(n, b, trials, seed),
			ReadAmp:       4 * b,
		})
	}
	for _, b := range []int{2, 4} {
		out = append(out, SchemeResult{
			Name:          "FaRM",
			MaxLoadFactor: MaxLoadFactorFaRM(n, b, trials, seed),
			ReadAmp:       2 * b,
		})
	}
	return out
}
