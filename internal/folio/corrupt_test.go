package folio

// Corruption robustness: each of the crash shapes recovery must face —
// truncated tail record, torn mid-record write, stale dirty flag — is
// synthesized by direct file surgery and must either recover (tail
// damage, staleness) or fail with the right typed sentinel (mid-file
// rot, alien versions). Matching uses errors.Is throughout, per the
// dmerrors analyzer rules.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// seedFile builds a dirty store with a few flushed records and returns
// its path plus the expected memory image.
func seedFile(t *testing.T) (string, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "mn.folio")
	s, err := Create(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mem := make([]byte, 2048)
	for i, payload := range [][]byte{[]byte("first"), []byte("second"), []byte("third")} {
		off := uint64(64 * (i + 1))
		copy(mem[off:], payload)
		if err := s.AppendWrite(off, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Abandon(); err != nil { // crash with dirty flag set
		t.Fatal(err)
	}
	return path, mem
}

func recoverImage(t *testing.T, path string) (*Recovery, []byte) {
	t.Helper()
	s, rec, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	mem := make([]byte, 2048)
	if err := rec.Materialize(mem); err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	return rec, mem
}

func TestRecoverTruncatedTailRecord(t *testing.T) {
	path, want := seedFile(t)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the final record mid-line: a crash during the last append.
	if err := os.WriteFile(path, blob[:len(blob)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	rec, got := recoverImage(t, path)
	if !rec.TruncatedTail {
		t.Error("truncated tail not reported")
	}
	if rec.Records != 2 {
		t.Errorf("replayed %d records, want the 2 intact ones", rec.Records)
	}
	// The third write is lost (it was torn), the first two survive.
	copy(want[64*3:], make([]byte, len("third")))
	if !bytes.Equal(got, want) {
		t.Error("recovered image wrong after truncated tail")
	}
}

func TestRecoverTornFinalRecord(t *testing.T) {
	path, want := seedFile(t)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip payload bytes inside the final record but keep it a full
	// line: a torn write that landed with the wrong bits. The checksum
	// catches it.
	lines := bytes.Split(blob, []byte("\n"))
	last := lines[len(lines)-2] // -1 is the empty slice after the final \n
	i := bytes.Index(last, []byte(`"d":"`))
	if i < 0 {
		t.Fatal("no payload field in final record")
	}
	last[i+6] ^= 0x01
	last[i+7] ^= 0x01
	if err := os.WriteFile(path, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	rec, got := recoverImage(t, path)
	if !rec.TruncatedTail {
		t.Error("torn final record not reported as discarded tail")
	}
	copy(want[64*3:], make([]byte, len("third")))
	if !bytes.Equal(got, want) {
		t.Error("recovered image wrong after torn final record")
	}
}

func TestMidLogCorruptionIsRefused(t *testing.T) {
	path, _ := seedFile(t)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the SECOND record (intact records follow): that is not a
	// torn append, it is rot — recovery must refuse with ErrCorrupt.
	lines := bytes.Split(blob, []byte("\n"))
	second := lines[2]
	i := bytes.Index(second, []byte(`"d":"`))
	second[i+6] ^= 0x01
	if err := os.WriteFile(path, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(path, Options{})
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("Open on mid-log rot = %v, want errors.Is(..., ErrCorrupt)", err)
	}
	if _, err := Inspect(path); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Inspect on mid-log rot = %v, want ErrCorrupt", err)
	}
}

func TestStaleDirtyFlagRecovers(t *testing.T) {
	// A dirty flag with a perfectly intact file (the crash happened
	// after the last flush, before the clean-close header rewrite) is
	// the common case: recovery must replay everything and lose
	// nothing.
	path, want := seedFile(t)
	rec, got := recoverImage(t, path)
	if !rec.WasDirty {
		t.Error("stale dirty flag not reported")
	}
	if rec.TruncatedTail {
		t.Error("intact file reported a torn tail")
	}
	if rec.Records != 3 {
		t.Errorf("replayed %d records, want all 3", rec.Records)
	}
	if !bytes.Equal(got, want) {
		t.Error("recovered image differs")
	}
}

func TestHeaderVersionMismatch(t *testing.T) {
	path, _ := seedFile(t)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fixed := bytes.Replace(blob, []byte(`{"_v":1,`), []byte(`{"_v":9,`), 1)
	if bytes.Equal(fixed, blob) {
		t.Fatal("version field not found in header")
	}
	if err := os.WriteFile(path, fixed, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(path, Options{})
	if !errors.Is(err, ErrVersion) {
		t.Errorf("Open on _v=9 = %v, want errors.Is(..., ErrVersion)", err)
	}
}

func TestMangledHeaderIsBadHeader(t *testing.T) {
	path, _ := seedFile(t)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	copy(blob, []byte("not json at all"))
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path, Options{}); !errors.Is(err, ErrBadHeader) {
		t.Errorf("Open on mangled header = %v, want ErrBadHeader", err)
	}
	short := filepath.Join(t.TempDir(), "short.folio")
	if err := os.WriteFile(short, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(short, Options{}); !errors.Is(err, ErrBadHeader) {
		t.Errorf("Open on short file = %v, want ErrBadHeader", err)
	}
}

func TestClosedStoreRefusesAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mn.folio")
	s, err := Create(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendWrite(0, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("AppendWrite after Close = %v, want ErrClosed", err)
	}
}
