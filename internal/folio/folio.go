// Package folio is the durability plane's on-disk chunk store: a
// self-describing, JSONL-inspectable snapshot + append-log file format
// modeled on the folio exemplar (SNIPPETS.md). One .folio file holds
// the durable image of one memory node.
//
// # The file is the interface
//
// Every .folio file is valid JSONL: one JSON document per line, so jq,
// grep and wc work on it directly — no tool required to understand the
// data. The layout is
//
//	Header   one JSON object, space-padded to exactly 128 bytes
//	Heap     page records ({"t":"page",...}), sorted by offset
//	Index    idx records ({"t":"idx",...}), sorted by offset
//	Sparse   append tail: write/alloc/meta records in arrival order
//
// The header's _s array carries the heap and index section end offsets,
// so the three sections are addressable without scanning; the sparse
// tail runs from the index end to EOF. The dirty flag (_e) is set while
// a session has the file open and cleared only by a clean Close, so a
// crash is detectable on the next open: recovery replays snapshot pages
// and then the sparse log, tolerating a truncated or torn final record
// (the classic crashed-mid-append shapes) while refusing mid-file
// corruption with a typed error.
//
// # Compaction
//
// Appends accumulate in the sparse tail. Compact rewrites the file —
// fresh snapshot pages, fresh index, empty tail — into a temp file and
// atomically renames it over the original, so a crash during
// compaction leaves the old file intact. Record payloads are base64
// (the exemplar compresses; this store favors simplicity) and each
// carries an FNV-1a checksum so torn writes are detected per record.
package folio

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Typed sentinels. Wrap sites use %w so callers match with errors.Is
// (never ==), per the dmerrors analyzer rules.
var (
	// ErrBadHeader reports a file whose first 128 bytes are not a valid
	// folio header line.
	ErrBadHeader = errors.New("folio: malformed header")

	// ErrVersion reports a header whose format version this code does
	// not speak.
	ErrVersion = errors.New("folio: unsupported format version")

	// ErrCorrupt reports corruption recovery cannot tolerate: a bad
	// record in the heap or index sections, or a bad sparse record that
	// is not the file's final record (disk rot, not a torn append).
	ErrCorrupt = errors.New("folio: corrupt record")

	// ErrClosed reports an operation on a closed or abandoned store.
	ErrClosed = errors.New("folio: store is closed")
)

// Version is the format version this package reads and writes.
const Version = 1

// HeaderBytes is the exact byte length of the header line, newline
// included. The header is rewritten in place, so its length is fixed;
// JSON shorter than the budget is space-padded (spaces between the
// closing brace and the newline are insignificant to JSON parsers).
const HeaderBytes = 128

// checksumAlg identifies FNV-1a/64 in the header's _alg field.
const checksumAlg = 2

// Options configure a store.
type Options struct {
	// PageSize is the snapshot page granularity in bytes. Compaction
	// writes one page record per non-zero PageSize-aligned page. Zero
	// selects 4096.
	PageSize int

	// AutoCompactEvery is the sparse-append count beyond which
	// MaybeCompact compacts. Zero disables auto-compaction (explicit
	// Compact still works). Recorded in the header for inspectability.
	AutoCompactEvery int

	// Stamp is the timestamp written into the header's _ts field.
	// Callers pass virtual time (or zero): folio itself never reads a
	// wall clock, so same-seed runs produce bit-identical files.
	Stamp int64
}

func (o Options) withDefaults() Options {
	if o.PageSize <= 0 {
		o.PageSize = 4096
	}
	return o
}

// header is the line-1 JSON document. Field names follow the exemplar:
// _v version, _e dirty ("emergency") flag, _alg checksum algorithm,
// _ts stamp, _s section state [heapEnd, indexEnd, pageSize, pages,
// appendsSinceCompact, autoCompactEvery].
type header struct {
	V   int      `json:"_v"`
	E   int      `json:"_e"`
	Alg int      `json:"_alg"`
	TS  int64    `json:"_ts"`
	S   [6]int64 `json:"_s"`
}

// record is the union of every line-2+ document shape. T discriminates:
// "page" (snapshot page), "idx" (page directory entry), "w" (logged
// write), "alloc" (allocator watermark), "meta" (key/value).
type record struct {
	T   string `json:"t"`
	Off uint64 `json:"off,omitempty"`
	Len int    `json:"len,omitempty"`
	At  int64  `json:"at,omitempty"`
	Q   uint64 `json:"q,omitempty"`
	D   string `json:"d,omitempty"`
	C   string `json:"c,omitempty"`
	K   string `json:"k,omitempty"`
	V   string `json:"v,omitempty"`
}

// Store is one open .folio file. Appends are buffered; Flush is the
// durability boundary (the log device is modeled as NVM: everything
// flushed survives a crash). Safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	w       *bufio.Writer
	opts    Options
	hdr     header
	seq     uint64 // next write-record sequence number
	appends int64  // sparse records since last compaction
	closed  bool
}

// Recovery is what Open reconstructed from an existing file.
type Recovery struct {
	// Pages and PageBytes count the snapshot pages restored from the
	// heap section and their payload bytes.
	Pages     int
	PageBytes int64

	// Records and RecordBytes count the sparse-tail records replayed
	// (writes, allocs and metas) and the write payload bytes.
	Records     int
	RecordBytes int64

	// WasDirty reports that the file was not closed cleanly — the
	// previous session crashed and the sparse tail is the authority.
	WasDirty bool

	// TruncatedTail reports that the final sparse record was truncated
	// or torn and was discarded. Only the unacknowledged tail can be
	// lost this way; anything flushed before the crash replays.
	TruncatedTail bool

	// AllocOff is the recovered allocator watermark (the max of all
	// alloc records), zero if none was logged.
	AllocOff uint64

	// Meta holds the recovered key/value metadata, last write wins.
	Meta map[string]string

	pages  []pageRec
	writes []writeRec
}

type pageRec struct {
	off  uint64
	data []byte
}

type writeRec struct {
	off  uint64
	data []byte
}

// Materialize applies the recovered image — snapshot pages, then the
// sparse log in append order — onto mem. Errors if any record lies
// outside mem (e.g. the file belongs to a larger memory node).
func (r *Recovery) Materialize(mem []byte) error {
	for _, p := range r.pages {
		if p.off+uint64(len(p.data)) > uint64(len(mem)) {
			return fmt.Errorf("%w: page [%d,+%d) outside %d-byte region",
				ErrCorrupt, p.off, len(p.data), len(mem))
		}
		copy(mem[p.off:], p.data)
	}
	for _, w := range r.writes {
		if w.off+uint64(len(w.data)) > uint64(len(mem)) {
			return fmt.Errorf("%w: write [%d,+%d) outside %d-byte region",
				ErrCorrupt, w.off, len(w.data), len(mem))
		}
		copy(mem[w.off:], w.data)
	}
	return nil
}

// Create makes a fresh store at path, truncating any existing file. The
// header is written dirty: the session is live until Close.
func Create(path string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	s := &Store{
		path: path,
		f:    f,
		w:    bufio.NewWriter(f),
		opts: opts,
		hdr: header{
			V:   Version,
			E:   1,
			Alg: checksumAlg,
			TS:  opts.Stamp,
			S:   [6]int64{HeaderBytes, HeaderBytes, int64(opts.PageSize), 0, 0, int64(opts.AutoCompactEvery)},
		},
	}
	if err := s.rewriteHeader(); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// Open reads and recovers an existing store, returning the live store
// (positioned for appends) plus what was recovered. The header is
// re-marked dirty for the new session.
func Open(path string, opts Options) (*Store, *Recovery, error) {
	opts = opts.withDefaults()
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	hdr, rec, err := recover_(blob)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	s := &Store{
		path:    path,
		f:       f,
		w:       bufio.NewWriter(f),
		opts:    opts,
		hdr:     hdr,
		appends: hdr.S[4],
	}
	s.hdr.E = 1
	s.hdr.TS = opts.Stamp
	if err := s.rewriteHeader(); err != nil {
		f.Close()
		return nil, nil, err
	}
	// Truncate away a torn tail so new appends start on a record
	// boundary, then position at EOF.
	end := validEnd(blob, hdr)
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(end, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	return s, rec, nil
}

// validEnd returns the byte offset after the last intact record — EOF
// unless the tail was torn or truncated.
func validEnd(blob []byte, hdr header) int64 {
	end := int64(len(blob))
	start := hdr.S[1]
	if start < HeaderBytes {
		start = HeaderBytes
	}
	tail := blob[start:]
	off := start
	for len(tail) > 0 {
		nl := bytes.IndexByte(tail, '\n')
		if nl < 0 {
			return off // truncated final line
		}
		line := tail[:nl]
		var r record
		if json.Unmarshal(line, &r) != nil || !checksumOK(r) {
			return off // torn final record (recover_ verified it IS final)
		}
		off += int64(nl) + 1
		tail = tail[nl+1:]
	}
	return end
}

// checksumOK verifies a record's payload checksum, if it carries one.
func checksumOK(r record) bool {
	if r.C == "" {
		return true
	}
	data, err := base64.StdEncoding.DecodeString(r.D)
	if err != nil {
		return false
	}
	return checksum(data) == r.C
}

func checksum(data []byte) string {
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64())
}

// parseHeader decodes and validates the fixed-size header line.
func parseHeader(blob []byte) (header, error) {
	var hdr header
	if len(blob) < HeaderBytes || blob[HeaderBytes-1] != '\n' {
		return hdr, fmt.Errorf("%w: file shorter than the %d-byte header", ErrBadHeader, HeaderBytes)
	}
	line := bytes.TrimRight(blob[:HeaderBytes-1], " ")
	if err := json.Unmarshal(line, &hdr); err != nil {
		return hdr, fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	if hdr.V != Version {
		return hdr, fmt.Errorf("%w: file is _v=%d, this build speaks _v=%d", ErrVersion, hdr.V, Version)
	}
	if hdr.S[0] < HeaderBytes || hdr.S[1] < hdr.S[0] || hdr.S[1] > int64(len(blob)) {
		return hdr, fmt.Errorf("%w: section offsets [%d,%d] outside file of %d bytes",
			ErrBadHeader, hdr.S[0], hdr.S[1], len(blob))
	}
	return hdr, nil
}

// recover_ rebuilds the durable image from raw file bytes: snapshot
// pages from the heap section, directory validation from the index
// section, then the sparse tail in order. The trailing underscore
// dodges the builtin.
func recover_(blob []byte) (header, *Recovery, error) {
	hdr, err := parseHeader(blob)
	if err != nil {
		return hdr, nil, err
	}
	rec := &Recovery{WasDirty: hdr.E != 0, Meta: map[string]string{}}

	// Heap: page records, written atomically by compaction. Any damage
	// here is disk rot, not a torn append — refuse it.
	heap := blob[HeaderBytes:hdr.S[0]]
	lineNo := 1
	for len(heap) > 0 {
		line, rest, err := nextLine(heap, "heap")
		if err != nil {
			return hdr, nil, err
		}
		heap = rest
		lineNo++
		var r record
		if err := json.Unmarshal(line, &r); err != nil {
			return hdr, nil, fmt.Errorf("%w: heap line %d: %v", ErrCorrupt, lineNo, err)
		}
		if r.T != "page" {
			return hdr, nil, fmt.Errorf("%w: heap line %d has t=%q, want \"page\"", ErrCorrupt, lineNo, r.T)
		}
		data, err := base64.StdEncoding.DecodeString(r.D)
		if err != nil || checksum(data) != r.C || len(data) != r.Len {
			return hdr, nil, fmt.Errorf("%w: heap page at offset %d fails its checksum", ErrCorrupt, r.Off)
		}
		rec.pages = append(rec.pages, pageRec{off: r.Off, data: data})
		rec.Pages++
		rec.PageBytes += int64(len(data))
	}

	// Index: one idx record per page, sorted. Redundant with the heap
	// for recovery, but it is part of the format contract — validate.
	idx := blob[hdr.S[0]:hdr.S[1]]
	var idxN int
	var prevOff uint64
	for len(idx) > 0 {
		line, rest, err := nextLine(idx, "index")
		if err != nil {
			return hdr, nil, err
		}
		idx = rest
		var r record
		if err := json.Unmarshal(line, &r); err != nil || r.T != "idx" {
			return hdr, nil, fmt.Errorf("%w: index entry %d is not an idx record", ErrCorrupt, idxN)
		}
		if idxN > 0 && r.Off <= prevOff {
			return hdr, nil, fmt.Errorf("%w: index entry %d out of order", ErrCorrupt, idxN)
		}
		prevOff = r.Off
		idxN++
	}
	if idxN != rec.Pages {
		return hdr, nil, fmt.Errorf("%w: index has %d entries for %d heap pages", ErrCorrupt, idxN, rec.Pages)
	}

	// Sparse tail: replay in append order. A truncated or torn FINAL
	// record is the signature of a crash mid-append — tolerated. A bad
	// record with intact records after it is rot — refused.
	sparse := blob[hdr.S[1]:]
	for len(sparse) > 0 {
		nl := bytes.IndexByte(sparse, '\n')
		if nl < 0 {
			rec.TruncatedTail = true
			break
		}
		line := sparse[:nl]
		rest := sparse[nl+1:]
		var r record
		data, perr := decodeSparse(line, &r)
		if perr != nil {
			if len(bytes.TrimSpace(rest)) == 0 {
				rec.TruncatedTail = true
				break
			}
			return hdr, nil, fmt.Errorf("%w: mid-log record %q: %v", ErrCorrupt, clip(line), perr)
		}
		switch r.T {
		case "w":
			rec.writes = append(rec.writes, writeRec{off: r.Off, data: data})
			rec.RecordBytes += int64(len(data))
		case "alloc":
			if r.Off > rec.AllocOff {
				rec.AllocOff = r.Off
			}
		case "meta":
			rec.Meta[r.K] = r.V
		default:
			return hdr, nil, fmt.Errorf("%w: sparse record with t=%q", ErrCorrupt, r.T)
		}
		rec.Records++
		sparse = rest
	}
	return hdr, rec, nil
}

// decodeSparse parses one sparse line and verifies its checksum,
// returning the decoded payload for write records.
func decodeSparse(line []byte, r *record) ([]byte, error) {
	if err := json.Unmarshal(line, r); err != nil {
		return nil, err
	}
	if r.T != "w" {
		return nil, nil
	}
	data, err := base64.StdEncoding.DecodeString(r.D)
	if err != nil {
		return nil, err
	}
	if checksum(data) != r.C {
		return nil, fmt.Errorf("checksum mismatch")
	}
	return data, nil
}

// nextLine splits one newline-terminated line off a fixed section; a
// section may not end mid-line.
func nextLine(b []byte, section string) (line, rest []byte, err error) {
	nl := bytes.IndexByte(b, '\n')
	if nl < 0 {
		return nil, nil, fmt.Errorf("%w: %s section ends mid-record", ErrCorrupt, section)
	}
	return b[:nl], b[nl+1:], nil
}

func clip(b []byte) string {
	if len(b) > 40 {
		b = b[:40]
	}
	return string(b)
}

// rewriteHeader re-encodes the header and writes it in place. Caller
// holds mu (or is constructing the store).
func (s *Store) rewriteHeader() error {
	line, err := encodeHeader(s.hdr)
	if err != nil {
		return err
	}
	_, err = s.f.WriteAt(line, 0)
	return err
}

func encodeHeader(hdr header) ([]byte, error) {
	blob, err := json.Marshal(hdr)
	if err != nil {
		return nil, err
	}
	if len(blob) > HeaderBytes-1 {
		return nil, fmt.Errorf("%w: encoded header needs %d bytes, budget is %d",
			ErrBadHeader, len(blob), HeaderBytes-1)
	}
	line := make([]byte, HeaderBytes)
	copy(line, blob)
	for i := len(blob); i < HeaderBytes-1; i++ {
		line[i] = ' '
	}
	line[HeaderBytes-1] = '\n'
	return line, nil
}

// Path returns the file path the store was opened at.
func (s *Store) Path() string { return s.path }

// Appends returns the sparse records appended since the last
// compaction (including those recovered from the file).
func (s *Store) Appends() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appends
}

// AppendWrite logs one remote-memory write to the sparse tail. The
// append is durable once it returns (the log device is modeled as
// NVM); checksums let recovery discard a torn final record.
func (s *Store) AppendWrite(off uint64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	r := record{T: "w", Q: s.seq, Off: off, D: base64.StdEncoding.EncodeToString(data), C: checksum(data)}
	s.seq++
	return s.appendLocked(r)
}

// NoteAlloc logs the MN allocator watermark; recovery takes the max.
func (s *Store) NoteAlloc(off uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.appendLocked(record{T: "alloc", Off: off})
}

// SetMeta logs a key/value pair (last write wins on recovery). The
// fabric uses it for addresses an attaching client must discover, e.g.
// a tree's super-block location.
func (s *Store) SetMeta(k, v string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.appendLocked(record{T: "meta", K: k, V: v})
}

func (s *Store) appendLocked(r record) error {
	blob, err := json.Marshal(r)
	if err != nil {
		return err
	}
	if _, err := s.w.Write(blob); err != nil {
		return err
	}
	if err := s.w.WriteByte('\n'); err != nil {
		return err
	}
	s.appends++
	return nil
}

// Flush drains the append buffer to the file: the durability boundary.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.w.Flush()
}

// Compact rewrites the file as a fresh snapshot of mem: non-zero pages
// into the heap, a sorted index, and a sparse tail reseeded with the
// allocator watermark and metadata (so they survive without the old
// log). The rewrite lands in a temp file renamed over the original —
// a crash mid-compaction leaves the old file intact. Callers must
// ensure mem is quiescent (no concurrent writers).
func (s *Store) Compact(mem []byte, allocOff uint64, meta map[string]string, stamp int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.w.Flush(); err != nil {
		return err
	}

	tmpPath := s.path + ".tmp"
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return err
	}
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpPath)
	}
	w := bufio.NewWriterSize(tmp, 1<<20)
	// Placeholder header; rewritten once section ends are known.
	if _, err := w.Write(make([]byte, HeaderBytes)); err != nil {
		cleanup()
		return err
	}

	ps := s.opts.PageSize
	limit := int(allocOff)
	if limit > len(mem) {
		limit = len(mem)
	}
	pos := int64(HeaderBytes)
	type idxEntry struct {
		off uint64
		at  int64
	}
	var entries []idxEntry
	zero := make([]byte, ps)
	for po := 0; po < limit; po += ps {
		end := po + ps
		if end > len(mem) {
			end = len(mem)
		}
		page := mem[po:end]
		if bytes.Equal(page, zero[:len(page)]) {
			continue
		}
		r := record{T: "page", Off: uint64(po), Len: len(page),
			D: base64.StdEncoding.EncodeToString(page), C: checksum(page)}
		blob, err := json.Marshal(r)
		if err != nil {
			cleanup()
			return err
		}
		entries = append(entries, idxEntry{off: uint64(po), at: pos})
		if _, err := w.Write(blob); err != nil {
			cleanup()
			return err
		}
		if err := w.WriteByte('\n'); err != nil {
			cleanup()
			return err
		}
		pos += int64(len(blob)) + 1
	}
	heapEnd := pos

	sort.Slice(entries, func(i, j int) bool { return entries[i].off < entries[j].off })
	for _, e := range entries {
		blob, err := json.Marshal(record{T: "idx", Off: e.off, At: e.at})
		if err != nil {
			cleanup()
			return err
		}
		if _, err := w.Write(blob); err != nil {
			cleanup()
			return err
		}
		if err := w.WriteByte('\n'); err != nil {
			cleanup()
			return err
		}
		pos += int64(len(blob)) + 1
	}
	indexEnd := pos

	// Reseed the sparse tail: watermark + metadata, sorted for
	// byte-determinism.
	var reseeded int64
	appendRec := func(r record) error {
		blob, err := json.Marshal(r)
		if err != nil {
			return err
		}
		if _, err := w.Write(blob); err != nil {
			return err
		}
		reseeded++
		return w.WriteByte('\n')
	}
	if allocOff > 0 {
		if err := appendRec(record{T: "alloc", Off: allocOff}); err != nil {
			cleanup()
			return err
		}
	}
	keys := make([]string, 0, len(meta))
	for k := range meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := appendRec(record{T: "meta", K: k, V: meta[k]}); err != nil {
			cleanup()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		cleanup()
		return err
	}

	hdr := s.hdr
	hdr.TS = stamp
	hdr.S = [6]int64{heapEnd, indexEnd, int64(s.opts.PageSize), int64(len(entries)), reseeded, int64(s.opts.AutoCompactEvery)}
	line, err := encodeHeader(hdr)
	if err != nil {
		cleanup()
		return err
	}
	if _, err := tmp.WriteAt(line, 0); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return err
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		os.Remove(tmpPath)
		return err
	}

	// Swap the live handle onto the new file.
	f, err := os.OpenFile(s.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return err
	}
	s.f.Close()
	s.f = f
	s.w = bufio.NewWriter(f)
	s.hdr = hdr
	s.appends = reseeded
	return nil
}

// MaybeCompact compacts when the sparse tail has outgrown the
// configured AutoCompactEvery threshold; a zero threshold disables it.
// Reports whether a compaction ran.
func (s *Store) MaybeCompact(mem []byte, allocOff uint64, meta map[string]string, stamp int64) (bool, error) {
	if s.opts.AutoCompactEvery <= 0 || s.Appends() < int64(s.opts.AutoCompactEvery) {
		return false, nil
	}
	return true, s.Compact(mem, allocOff, meta, stamp)
}

// Close flushes, clears the dirty flag and closes the file: the clean
// shutdown. A later Open sees _e=0 and still replays the sparse tail
// (clean close does not imply compaction).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.closed = true
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	s.hdr.E = 0
	s.hdr.S[4] = s.appends
	if err := s.rewriteHeader(); err != nil {
		s.f.Close()
		return err
	}
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// Abandon simulates a crash: the append buffer is flushed (the NVM log
// retains everything acknowledged) but the dirty flag is NOT cleared,
// so the next Open takes the recovery path. The store is unusable
// afterwards.
func (s *Store) Abandon() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.closed = true
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// ScratchDir creates a fresh temp directory. It exists so simulation
// packages can obtain scratch space without importing os, which the
// durableio analyzer confines to this package and cmd/.
func ScratchDir(pattern string) (string, error) {
	return os.MkdirTemp("", pattern)
}

// RemoveDir removes a directory tree created with ScratchDir.
func RemoveDir(dir string) error {
	return os.RemoveAll(dir)
}

// Exists reports whether a file exists at path — the "is there a
// snapshot to warm-start from?" probe, kept here with the rest of the
// confined file I/O.
func Exists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// Join joins path elements (a filepath.Join re-export so confined
// packages need no extra import).
func Join(elem ...string) string {
	return filepath.Join(elem...)
}
