package folio

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// mkStore creates a store in a test temp dir.
func mkStore(t *testing.T, opts Options) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "mn0.folio")
	s, err := Create(path, opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return s, path
}

func TestHeaderIsExactly128Bytes(t *testing.T) {
	s, path := mkStore(t, Options{})
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) != HeaderBytes {
		t.Fatalf("fresh file is %d bytes, want exactly the %d-byte header", len(blob), HeaderBytes)
	}
	if blob[HeaderBytes-1] != '\n' {
		t.Fatalf("header line not newline-terminated")
	}
	var hdr map[string]any
	if err := json.Unmarshal(bytes.TrimRight(blob[:HeaderBytes-1], " "), &hdr); err != nil {
		t.Fatalf("header is not valid JSON: %v", err)
	}
	if hdr["_v"].(float64) != Version {
		t.Fatalf("_v = %v, want %d", hdr["_v"], Version)
	}
	if hdr["_e"].(float64) != 0 {
		t.Fatalf("clean close left _e = %v", hdr["_e"])
	}
}

func TestLogRoundTrip(t *testing.T) {
	s, path := mkStore(t, Options{})
	mem := make([]byte, 1<<16)
	writeAt := func(off uint64, b []byte) {
		copy(mem[off:], b)
		if err := s.AppendWrite(off, b); err != nil {
			t.Fatalf("AppendWrite: %v", err)
		}
	}
	writeAt(64, []byte("hello"))
	writeAt(4096, bytes.Repeat([]byte{0xAB}, 200))
	writeAt(64, []byte("HELLO")) // overwrite: order must be preserved
	if err := s.NoteAlloc(8192); err != nil {
		t.Fatal(err)
	}
	if err := s.SetMeta("system", "CHIME"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, rec, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s2.Close()
	if rec.WasDirty {
		t.Error("clean close reported dirty")
	}
	if rec.AllocOff != 8192 {
		t.Errorf("AllocOff = %d, want 8192", rec.AllocOff)
	}
	if rec.Meta["system"] != "CHIME" {
		t.Errorf("Meta = %v", rec.Meta)
	}
	got := make([]byte, len(mem))
	if err := rec.Materialize(got); err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if !bytes.Equal(got, mem) {
		t.Error("recovered image differs from the written one")
	}
}

func TestCrashRecoveryFromDirtyFile(t *testing.T) {
	s, path := mkStore(t, Options{})
	if err := s.AppendWrite(128, []byte("acked")); err != nil {
		t.Fatal(err)
	}
	if err := s.Abandon(); err != nil { // crash: dirty flag stays set
		t.Fatal(err)
	}

	s2, rec, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	defer s2.Close()
	if !rec.WasDirty {
		t.Error("crashed file not reported dirty")
	}
	mem := make([]byte, 1024)
	if err := rec.Materialize(mem); err != nil {
		t.Fatal(err)
	}
	if string(mem[128:133]) != "acked" {
		t.Errorf("acked write lost across crash: %q", mem[128:133])
	}
}

func TestCompactionRoundTripAndShrink(t *testing.T) {
	s, path := mkStore(t, Options{PageSize: 256})
	mem := make([]byte, 4096)
	// Many overwrites of the same region: the log grows, the image
	// does not.
	for i := 0; i < 100; i++ {
		b := bytes.Repeat([]byte{byte(i)}, 64)
		copy(mem[512:], b)
		if err := s.AppendWrite(512, b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SetMeta("k", "v"); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	before, _ := os.Stat(path)

	if err := s.Compact(mem, 1024, map[string]string{"k": "v"}, 42); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Errorf("compaction did not shrink the file: %d -> %d", before.Size(), after.Size())
	}

	// Post-compaction appends land in the new sparse tail.
	copy(mem[2048:], []byte("post"))
	if err := s.AppendWrite(2048, []byte("post")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec, err := Open(path, Options{PageSize: 256})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s2.Close()
	if rec.Pages == 0 {
		t.Error("compacted file has no snapshot pages")
	}
	if rec.AllocOff != 1024 || rec.Meta["k"] != "v" {
		t.Errorf("watermark/meta lost by compaction: off=%d meta=%v", rec.AllocOff, rec.Meta)
	}
	got := make([]byte, len(mem))
	if err := rec.Materialize(got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mem) {
		t.Error("image differs after compact + append + reopen")
	}

	info, err := Inspect(path)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if info.PageRecords != rec.Pages || info.WriteRecords != 1 {
		t.Errorf("Inspect counts: %+v", info)
	}
}

func TestZeroPagesAreSkipped(t *testing.T) {
	s, path := mkStore(t, Options{PageSize: 256})
	mem := make([]byte, 4096)
	mem[300] = 1 // exactly one non-zero page
	if err := s.Compact(mem, 4096, nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := Inspect(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.PageRecords != 1 {
		t.Errorf("snapshot has %d pages, want 1 (zero pages skipped)", info.PageRecords)
	}
}

func TestMaybeCompactHonorsThreshold(t *testing.T) {
	s, _ := mkStore(t, Options{AutoCompactEvery: 10})
	defer s.Close()
	mem := make([]byte, 1024)
	for i := 0; i < 9; i++ {
		if err := s.AppendWrite(0, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	ran, err := s.MaybeCompact(mem, 64, nil, 0)
	if err != nil || ran {
		t.Fatalf("MaybeCompact below threshold ran=%v err=%v", ran, err)
	}
	if err := s.AppendWrite(0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	ran, err = s.MaybeCompact(mem, 64, nil, 0)
	if err != nil || !ran {
		t.Fatalf("MaybeCompact at threshold ran=%v err=%v", ran, err)
	}
	if got := s.Appends(); got != 1 { // the reseeded alloc record
		t.Errorf("appends after compact = %d", got)
	}
}

func TestFileIsValidJSONL(t *testing.T) {
	s, path := mkStore(t, Options{PageSize: 128})
	mem := make([]byte, 1024)
	copy(mem[0:], []byte("payload"))
	if err := s.Compact(mem, 512, map[string]string{"a": "b"}, 7); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendWrite(100, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for n, line := range bytes.Split(bytes.TrimSuffix(blob, []byte("\n")), []byte("\n")) {
		var doc map[string]any
		if err := json.Unmarshal(bytes.TrimRight(line, " "), &doc); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", n+1, err, line)
		}
	}
}
