package folio

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Info is the structural summary of a .folio file that Inspect
// produces and `chimectl folio` renders. Every figure is recomputable
// with jq/grep/wc — the file is the interface; Inspect is a
// convenience, not a decoder ring.
type Info struct {
	Path      string `json:"path"`
	FileBytes int64  `json:"file_bytes"`

	// Header fields.
	Version  int   `json:"version"`
	Dirty    bool  `json:"dirty"`
	Stamp    int64 `json:"stamp"`
	HeapEnd  int64 `json:"heap_end"`
	IndexEnd int64 `json:"index_end"`
	PageSize int64 `json:"page_size"`

	// Record counts by section/type, from scanning the file.
	PageRecords  int `json:"page_records"`
	IndexRecords int `json:"index_records"`
	WriteRecords int `json:"write_records"`
	AllocRecords int `json:"alloc_records"`
	MetaRecords  int `json:"meta_records"`

	// Payload byte totals (decoded, not base64 length).
	PageBytes  int64 `json:"page_bytes"`
	WriteBytes int64 `json:"write_bytes"`

	// TruncatedTail reports a torn or truncated final record —
	// tolerated by recovery, surfaced by inspection.
	TruncatedTail bool `json:"truncated_tail"`

	// AllocOff is the recovered allocator watermark; Meta the
	// recovered key/value pairs.
	AllocOff uint64            `json:"alloc_off"`
	Meta     map[string]string `json:"meta,omitempty"`
}

// Inspect reads a .folio file without opening a session (the dirty
// flag is untouched) and summarizes its structure. Corruption beyond
// a torn tail surfaces as the same typed errors Open returns.
func Inspect(path string) (Info, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return Info{}, err
	}
	hdr, rec, err := recover_(blob)
	if err != nil {
		return Info{}, err
	}
	info := Info{
		Path:          path,
		FileBytes:     int64(len(blob)),
		Version:       hdr.V,
		Dirty:         hdr.E != 0,
		Stamp:         hdr.TS,
		HeapEnd:       hdr.S[0],
		IndexEnd:      hdr.S[1],
		PageSize:      hdr.S[2],
		PageRecords:   rec.Pages,
		IndexRecords:  rec.Pages, // recover_ enforces index == heap count
		PageBytes:     rec.PageBytes,
		WriteBytes:    rec.RecordBytes,
		TruncatedTail: rec.TruncatedTail,
		AllocOff:      rec.AllocOff,
		Meta:          rec.Meta,
	}
	// Count sparse records by type (rec.Records lumps them together).
	sparse := blob[hdr.S[1]:]
	for len(sparse) > 0 {
		nl := bytes.IndexByte(sparse, '\n')
		if nl < 0 {
			break
		}
		var r record
		if json.Unmarshal(sparse[:nl], &r) != nil {
			break
		}
		switch r.T {
		case "w":
			info.WriteRecords++
		case "alloc":
			info.AllocRecords++
		case "meta":
			info.MetaRecords++
		}
		sparse = sparse[nl+1:]
	}
	return info, nil
}

// Format renders an Info as the aligned text block `chimectl folio`
// prints.
func (i Info) Format() string {
	var b strings.Builder
	dirty := "clean"
	if i.Dirty {
		dirty = "DIRTY (crashed or live session)"
	}
	fmt.Fprintf(&b, "%s: folio v%d, %d bytes, %s\n", i.Path, i.Version, i.FileBytes, dirty)
	fmt.Fprintf(&b, "  header   [%8d, %8d)  stamp %d, page size %d\n", 0, HeaderBytes, i.Stamp, i.PageSize)
	fmt.Fprintf(&b, "  heap     [%8d, %8d)  %d pages, %d payload bytes\n", HeaderBytes, i.HeapEnd, i.PageRecords, i.PageBytes)
	fmt.Fprintf(&b, "  index    [%8d, %8d)  %d entries\n", i.HeapEnd, i.IndexEnd, i.IndexRecords)
	fmt.Fprintf(&b, "  sparse   [%8d, %8d)  %d writes (%d bytes), %d allocs, %d metas\n",
		i.IndexEnd, i.FileBytes, i.WriteRecords, i.WriteBytes, i.AllocRecords, i.MetaRecords)
	if i.TruncatedTail {
		fmt.Fprintf(&b, "  tail     torn/truncated final record (recovery discards it)\n")
	}
	if i.AllocOff > 0 {
		fmt.Fprintf(&b, "  alloc    watermark %d\n", i.AllocOff)
	}
	keys := make([]string, 0, len(i.Meta))
	for k := range i.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "  meta     %s = %s\n", k, i.Meta[k])
	}
	return b.String()
}
