package obsnames_test

import (
	"testing"

	"chime/internal/analysis/analysistest"
	"chime/internal/analysis/obsnames"
)

func TestObsNames(t *testing.T) {
	analysistest.Run(t, "testdata", obsnames.Analyzer, "chime/internal/metrics")
}
