// Fixture stub of the internal/obs registry surface.
package obs

type Counter struct{ v int64 }

func (c *Counter) Inc() {}

type Gauge struct{ v int64 }

type Histogram struct{}

type Registry struct{}

func (r *Registry) Counter(name string) *Counter     { return &Counter{} }
func (r *Registry) Gauge(name string) *Gauge         { return &Gauge{} }
func (r *Registry) Histogram(name string) *Histogram { return &Histogram{} }

type Snapshot struct{}

func (s Snapshot) CounterDelta(prev Snapshot, name string) int64 { return 0 }
