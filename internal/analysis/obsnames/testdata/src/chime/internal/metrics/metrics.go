// Fixture: instrument registrations that respect and violate the
// metrics-name schema.
package metrics

import (
	"fmt"

	"chime/internal/obs"
)

// Constants (local or imported) are fine — they are still compile-time
// names the schema can be grepped from.
const nameRetry = "idx.retry"

func register(r *obs.Registry, verb string) {
	_ = r.Counter("dm.verb_timeout")
	_ = r.Counter(nameRetry)
	_ = r.Gauge("fault.active_windows")
	_ = r.Histogram("dm.nic.read.service_ns")
	_ = r.Histogram("dm.mn.service_ns")
	_ = r.Counter("dm.mn.offload")
	_ = r.Counter("bench.rows")

	// Metrics-v4 era: the flight section rides in the artifact beside the
	// registry, so flight-adjacent counters still live in the bench.*
	// namespace — "flight" is not a registry namespace of its own.
	_ = r.Counter("bench.flight.resets")
	_ = r.Histogram("bench.flight.window_ops")

	_ = r.Counter("nic.queue_ns")             // want `instrument name "nic\.queue_ns" does not match`
	_ = r.Counter("Idx.Retry")                // want `instrument name "Idx\.Retry" does not match`
	_ = r.Histogram("idx")                    // want `instrument name "idx" does not match`
	_ = r.Counter("flight.descend")           // want `instrument name "flight\.descend" does not match`
	_ = r.Counter(fmt.Sprintf("dm.%s", verb)) // want `must be a compile-time string constant`
}

func delta(s, prev obs.Snapshot, dyn string) int64 {
	good := s.CounterDelta(prev, "idx.torn_read")
	bad := s.CounterDelta(prev, dyn) // want `must be a compile-time string constant`
	return good + bad
}
