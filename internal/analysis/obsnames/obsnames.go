// Package obsnames pins the instrument-name schema of internal/obs.
// Names registered through Registry.Counter/Gauge/Histogram (and read
// back through Snapshot.CounterDelta) land verbatim in the
// chime-bench/metrics JSON artifact; dashboards and the EXPERIMENTS.md
// tables key on them. Requiring compile-time string constants matching
//
//	^(dm|idx|fault|bench)\.[a-z_\.]+$
//
// keeps the schema greppable (every instrument is a literal in the
// tree) and namespaced (dm.* = substrate, idx.* = index protocol,
// fault.* = injection plane, bench.* = harness).
package obsnames

import (
	"go/ast"
	"go/constant"
	"regexp"

	"chime/internal/analysis"
)

const obsPath = "chime/internal/obs"

// nameArg maps (receiver type, method) to the index of the
// instrument-name argument.
var nameArg = map[[2]string]int{
	{"Registry", "Counter"}:      0,
	{"Registry", "Gauge"}:        0,
	{"Registry", "Histogram"}:    0,
	{"Snapshot", "CounterDelta"}: 1,
}

var nameRe = regexp.MustCompile(`^(dm|idx|fault|bench)\.[a-z_\.]+$`)

var Analyzer = &analysis.Analyzer{
	Name: "obsnames",
	Doc:  "instrument names passed to internal/obs must be string literals matching ^(dm|idx|fault|bench)\\.[a-z_\\.]+$ so the metrics-json schema stays stable",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Path() == obsPath {
		return nil, nil
	}
	analysis.Preorder(pass.Files, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		fn := analysis.FuncOf(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPath {
			return
		}
		idx, ok := nameArg[[2]string{analysis.ReceiverNamed(fn), fn.Name()}]
		if !ok || idx >= len(call.Args) {
			return
		}
		arg := call.Args[idx]
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			pass.Reportf(arg.Pos(), "instrument name passed to obs.%s.%s must be a compile-time string constant (the metrics-json schema is the set of literal names in the tree)",
				analysis.ReceiverNamed(fn), fn.Name())
			return
		}
		name := constant.StringVal(tv.Value)
		if !nameRe.MatchString(name) {
			pass.Reportf(arg.Pos(), "instrument name %q does not match the metrics schema ^(dm|idx|fault|bench)\\.[a-z_\\.]+$", name)
		}
	})
	return nil, nil
}
