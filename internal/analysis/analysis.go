// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects
// one type-checked package at a time and reports Diagnostics. The
// container this repo builds in has no module proxy access, so vendoring
// x/tools is not an option; the subset here (Analyzer, Pass, Reportf,
// position-sorted diagnostics, `//lint:allow` suppression) is all the
// chimelint analyzers need, and the field names deliberately mirror
// x/tools so a future swap is mechanical.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one static check. Run inspects a single package
// through the Pass and reports findings via Pass.Report; the returned
// value is reserved for inter-analyzer results and is currently unused.
type Analyzer struct {
	Name string // short lower-case identifier, e.g. "virtualclock"
	Doc  string // invariant the analyzer enforces, first line = summary
	Run  func(*Pass) (any, error)
}

// Pass hands an Analyzer one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding inside the package being analyzed.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a resolved diagnostic: position plus the analyzer that
// produced it, ready for printing or comparison against expectations.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// allowRe matches the documented suppression directive: the analyzer
// being silenced followed by a mandatory justification, e.g.
//
//	//lint:allow virtualclock wall-clock progress logging only
//
// A bare `//lint:allow virtualclock` (no reason) does not suppress.
var allowRe = regexp.MustCompile(`^//lint:allow\s+([a-z]+)\s+\S`)

// allowedAt builds filename -> line -> set-of-analyzer-names from every
// //lint:allow comment in the package. A directive suppresses findings
// on its own line and on the line directly below it (so it can sit
// either at the end of the offending line or on its own line above).
func allowedAt(fset *token.FileSet, files []*ast.File) map[string]map[int]map[string]bool {
	out := make(map[string]map[int]map[string]bool)
	add := func(pos token.Position, name string) {
		lines := out[pos.Filename]
		if lines == nil {
			lines = make(map[int]map[string]bool)
			out[pos.Filename] = lines
		}
		for _, ln := range []int{pos.Line, pos.Line + 1} {
			if lines[ln] == nil {
				lines[ln] = make(map[string]bool)
			}
			lines[ln][name] = true
		}
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//lint:allow") {
					continue
				}
				if m := allowRe.FindStringSubmatch(c.Text); m != nil {
					add(fset.Position(c.Pos()), m[1])
				}
			}
		}
	}
	return out
}

// Run applies every analyzer to one loaded package and returns the
// surviving findings sorted by position. //lint:allow-suppressed
// diagnostics are dropped here so every front end (chimelint, the vet
// shim, analysistest) shares identical suppression semantics.
func Run(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	allow := allowedAt(pkg.Fset, pkg.Syntax)
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		var diags []Diagnostic
		pass.Report = func(d Diagnostic) { diags = append(diags, d) }
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if allow[pos.Filename][pos.Line][a.Name] {
				continue
			}
			out = append(out, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// Preorder walks every node of every file, calling f on each.
func Preorder(files []*ast.File, f func(ast.Node)) {
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			if n != nil {
				f(n)
			}
			return true
		})
	}
}

// FuncOf resolves the *types.Func a call expression invokes, or nil for
// indirect calls, conversions, and builtins.
func FuncOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgLevelFunc reports whether obj is a package-level function (no
// receiver) of the package with the given import path.
func IsPkgLevelFunc(obj types.Object, pkgPath string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// ReceiverNamed returns the name of fn's receiver named type ("" when
// fn is not a method), unwrapping any pointer.
func ReceiverNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
