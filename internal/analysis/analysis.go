// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects
// one type-checked package at a time and reports Diagnostics. The
// container this repo builds in has no module proxy access, so vendoring
// x/tools is not an option; the subset here (Analyzer, Pass, Reportf,
// position-sorted diagnostics, `//lint:allow` suppression) is all the
// chimelint analyzers need, and the field names deliberately mirror
// x/tools so a future swap is mechanical.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one static check. Run inspects a single package
// through the Pass and reports findings via Pass.Report; the returned
// value is reserved for inter-analyzer results and is currently unused.
type Analyzer struct {
	Name string // short lower-case identifier, e.g. "virtualclock"
	Doc  string // invariant the analyzer enforces, first line = summary
	Run  func(*Pass) (any, error)
}

// Pass hands an Analyzer one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	// Facts holds the summaries exported by previously analyzed
	// packages (the dependencies, when the driver runs in
	// dependency order). Nil-safe to query; never written to.
	Facts *FactSet
	// export receives facts this analyzer exports about functions
	// of the current package. Nil when the driver discards facts.
	export func(Fact)

	// loaded is the Package under analysis, kept for lazily built
	// derived structures (the call graph).
	loaded *Package
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ExportFact exports a summary about fn under the running analyzer's
// name. Facts become visible to later passes over dependent packages.
func (p *Pass) ExportFact(fn *types.Func, name, detail string) {
	if p.export == nil {
		return
	}
	p.export(Fact{Fn: KeyOf(fn), Analyzer: p.Analyzer.Name, Name: name, Detail: detail})
}

// ExportKeyed is ExportFact for a pre-computed function key (used when
// re-exporting a transitive property tied to a callee's key).
func (p *Pass) ExportKeyed(fnKey, name, detail string) {
	if p.export == nil {
		return
	}
	p.export(Fact{Fn: fnKey, Analyzer: p.Analyzer.Name, Name: name, Detail: detail})
}

// Graph returns the call graph of the package under analysis, built on
// first use and shared by all analyzers in the pass.
func (p *Pass) Graph() *Graph {
	if p.loaded == nil {
		return &Graph{ByObj: map[*types.Func]*FuncInfo{}, ByKey: map[string]*FuncInfo{}}
	}
	return p.loaded.Graph()
}

// Allowed reports whether a `//lint:allow <analyzer> <reason>`
// directive covers pos for the running analyzer. Run already filters
// reported diagnostics; analyzers that *summarise* constructs into
// facts before reporting (noalloc) consult this so a suppressed
// construct also stops tainting callers.
func (p *Pass) Allowed(pos token.Pos) bool {
	if p.loaded == nil {
		return false
	}
	position := p.Fset.Position(pos)
	return p.loaded.allow()[position.Filename][position.Line][p.Analyzer.Name]
}

// Diagnostic is one finding inside the package being analyzed.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a resolved diagnostic: position plus the analyzer that
// produced it, ready for printing or comparison against expectations.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// allowRe matches the documented suppression directive: the analyzer
// being silenced followed by a mandatory justification, e.g.
//
//	//lint:allow virtualclock wall-clock progress logging only
//
// A bare `//lint:allow virtualclock` (no reason) does not suppress.
var allowRe = regexp.MustCompile(`^//lint:allow\s+([a-z]+)\s+(\S.*)$`)

// AllowDirective is one parsed //lint:allow comment, as listed by
// `chimelint -suppressions`.
type AllowDirective struct {
	Analyzer string         `json:"analyzer"`
	Reason   string         `json:"reason"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
}

// Suppressions returns every //lint:allow directive in the package's
// files (test files are not loaded, so directives there are not
// listed), sorted by position.
func Suppressions(pkg *Package) []AllowDirective {
	var out []AllowDirective
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//lint:allow") {
					continue
				}
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				out = append(out, AllowDirective{
					Analyzer: m[1],
					Reason:   strings.TrimSpace(m[2]),
					Pos:      pos,
					File:     pos.Filename,
					Line:     pos.Line,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	return out
}

// allowedAt builds filename -> line -> set-of-analyzer-names from every
// //lint:allow comment in the package. A directive suppresses findings
// on its own line and on the line directly below it (so it can sit
// either at the end of the offending line or on its own line above).
func allowedAt(fset *token.FileSet, files []*ast.File) map[string]map[int]map[string]bool {
	out := make(map[string]map[int]map[string]bool)
	add := func(pos token.Position, name string) {
		lines := out[pos.Filename]
		if lines == nil {
			lines = make(map[int]map[string]bool)
			out[pos.Filename] = lines
		}
		for _, ln := range []int{pos.Line, pos.Line + 1} {
			if lines[ln] == nil {
				lines[ln] = make(map[string]bool)
			}
			lines[ln][name] = true
		}
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//lint:allow") {
					continue
				}
				if m := allowRe.FindStringSubmatch(c.Text); m != nil {
					add(fset.Position(c.Pos()), m[1])
				}
			}
		}
	}
	return out
}

// Run applies every analyzer to one loaded package and returns the
// surviving findings sorted by position, plus the facts the analyzers
// exported about this package's functions. //lint:allow-suppressed
// diagnostics are dropped here so every front end (chimelint, the vet
// shim, analysistest) shares identical suppression semantics.
//
// imported carries the facts of previously analyzed packages (nil is
// an empty set); drivers that want interprocedural precision must run
// packages in dependency order and merge each package's exported set
// into the imported set of the next.
func Run(pkg *Package, analyzers []*Analyzer, imported *FactSet) ([]Finding, *FactSet, error) {
	allow := pkg.allow()
	exported := NewFactSet()
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Facts:     imported,
			export:    exported.Add,
			loaded:    pkg,
		}
		var diags []Diagnostic
		pass.Report = func(d Diagnostic) { diags = append(diags, d) }
		if _, err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if allow[pos.Filename][pos.Line][a.Name] {
				continue
			}
			out = append(out, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, exported, nil
}

// AnalyzeAll runs the suite over every package of a loaded set in
// dependency order, threading facts, and returns all findings sorted
// globally by position. Packages with type errors are skipped (their
// errors are returned in typeErrs) — their facts are simply absent,
// which downstream analyzers treat as opaque.
func AnalyzeAll(pkgs []*Package, analyzers []*Analyzer) (findings []Finding, typeErrs map[string][]error, err error) {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
	}
	// Topological order over the loaded set: dependencies first,
	// ties broken by import path (Package.Types.Imports() is the
	// type checker's stable order; we sort anyway for belt and
	// braces).
	var order []*Package
	visited := make(map[string]bool)
	var visit func(p *Package)
	visit = func(p *Package) {
		if visited[p.PkgPath] {
			return
		}
		visited[p.PkgPath] = true
		if p.Types != nil {
			deps := make([]string, 0, len(p.Types.Imports()))
			for _, imp := range p.Types.Imports() {
				deps = append(deps, imp.Path())
			}
			sort.Strings(deps)
			for _, dep := range deps {
				if dp, ok := byPath[dep]; ok {
					visit(dp)
				}
			}
		}
		order = append(order, p)
	}
	paths := make([]string, 0, len(pkgs))
	for _, p := range pkgs {
		paths = append(paths, p.PkgPath)
	}
	sort.Strings(paths)
	for _, path := range paths {
		visit(byPath[path])
	}

	facts := NewFactSet()
	typeErrs = make(map[string][]error)
	for _, pkg := range order {
		if len(pkg.TypeErrs) > 0 {
			typeErrs[pkg.PkgPath] = pkg.TypeErrs
			continue
		}
		fs, exported, rerr := Run(pkg, analyzers, facts)
		if rerr != nil {
			return nil, nil, rerr
		}
		facts.Merge(exported)
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, typeErrs, nil
}

// Preorder walks every node of every file, calling f on each.
func Preorder(files []*ast.File, f func(ast.Node)) {
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			if n != nil {
				f(n)
			}
			return true
		})
	}
}

// FuncOf resolves the *types.Func a call expression invokes, or nil for
// indirect calls, conversions, and builtins.
func FuncOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgLevelFunc reports whether obj is a package-level function (no
// receiver) of the package with the given import path.
func IsPkgLevelFunc(obj types.Object, pkgPath string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// ReceiverNamed returns the name of fn's receiver named type ("" when
// fn is not a method), unwrapping any pointer.
func ReceiverNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
