// Package virtualclock forbids wall-clock time in simulation-facing
// packages. The dmsim substrate derives every timestamp from the
// virtual clock (dmsim.Client.Now, virtual nanoseconds threaded through
// NICs and the time gate); one stray time.Now() makes simulated
// latencies depend on host scheduling and silently breaks the
// bit-identical replay guarantee the fault plane is built on
// (TestFaultsZeroScheduleBitIdentical, chaos suite).
package virtualclock

import (
	"chime/internal/analysis"
)

// SimPackages are the packages whose time must be virtual. cmd/ and
// examples/ may read the wall clock (progress logs, artifact stamps);
// everything that runs inside a simulation may not.
var SimPackages = map[string]bool{
	"chime/internal/dmsim":       true,
	"chime/internal/dmsim/sched": true,
	"chime/internal/core":        true,
	"chime/internal/sherman":     true,
	"chime/internal/smartidx":    true,
	"chime/internal/rolex":       true,
	"chime/internal/fault":       true,
	"chime/internal/lease":       true,
	"chime/internal/obs":         true,
	"chime/internal/locktable":   true,
	"chime/internal/bench":       true,
}

// banned lists the package-level time functions that observe or wait on
// the wall clock. time.Duration values and arithmetic remain legal —
// configs express RTTs as time.Duration — but reading "now" or
// sleeping must go through the simulator.
var banned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "virtualclock",
	Doc:  "forbid wall-clock time (time.Now, time.Sleep, timers) in simulation-facing packages; all time must come from the dmsim virtual clock",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if !SimPackages[pass.Pkg.Path()] {
		return nil, nil
	}
	for ident, obj := range pass.TypesInfo.Uses {
		if !banned[obj.Name()] || !analysis.IsPkgLevelFunc(obj, "time") {
			continue
		}
		pass.Reportf(ident.Pos(), "time.%s reads or waits on the wall clock; %s is simulation-facing and must use dmsim virtual time (Client.Now / virtual-ns arithmetic)",
			obj.Name(), pass.Pkg.Path())
	}
	return nil, nil
}
