// Fixture: a simulation-facing package (chime/internal/core is in the
// virtualclock SimPackages set) reaching for the wall clock.
package core

import "time"

// BaseRTT as a time.Duration constant is fine: durations configure the
// simulator, they do not read the host clock.
const BaseRTT = 2 * time.Microsecond

func bad() int64 {
	start := time.Now()             // want `time\.Now reads or waits on the wall clock`
	time.Sleep(time.Millisecond)    // want `time\.Sleep reads or waits on the wall clock`
	elapsed := time.Since(start)    // want `time\.Since reads or waits on the wall clock`
	t := time.NewTimer(time.Second) // want `time\.NewTimer reads or waits on the wall clock`
	t.Stop()
	return int64(elapsed)
}

func allowed() int64 {
	// A documented escape hatch is honored (and audited by grep).
	start := time.Now() //lint:allow virtualclock fixture proves suppression works
	return start.UnixNano()
}

// clean: virtual-time arithmetic on int64 nanoseconds.
func virtualNs(now int64, rtt time.Duration) int64 {
	return now + rtt.Nanoseconds()
}
