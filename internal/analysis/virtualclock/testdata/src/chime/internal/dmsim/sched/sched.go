// Fixture: the calendar-queue scheduler package
// (chime/internal/dmsim/sched) is simulation-facing — its keys are
// virtual nanoseconds, so host time must never leak into them.
package sched

import "time"

// Calendar keys are virtual ns; Duration arithmetic on configured
// widths is legal (it never reads the host clock).
func bucketWidth(quantum time.Duration) int64 {
	return quantum.Nanoseconds()
}

func bad(keys []int64) int64 {
	deadline := time.Now().UnixNano() // want `time\.Now reads or waits on the wall clock`
	for _, k := range keys {
		if k < deadline {
			time.Sleep(time.Microsecond) // want `time\.Sleep reads or waits on the wall clock`
		}
	}
	<-time.After(time.Millisecond) // want `time\.After reads or waits on the wall clock`
	return deadline
}

func allowed() int64 {
	// The audited escape hatch works here too.
	t := time.Now() //lint:allow virtualclock fixture proves suppression works in sched
	return t.UnixNano()
}
