// Fixture: a package outside the simulation-facing set may read the
// wall clock freely (progress logging, artifact timestamps).
package gen

import "time"

func Stamp() int64 {
	return time.Now().UnixNano()
}
