package virtualclock_test

import (
	"testing"

	"chime/internal/analysis/analysistest"
	"chime/internal/analysis/virtualclock"
)

func TestVirtualClock(t *testing.T) {
	analysistest.Run(t, "testdata", virtualclock.Analyzer,
		"chime/internal/core", "chime/internal/dmsim/sched", "chime/tools/gen")
}
