// Package alpha is an engine fixture: an interface, a concrete
// implementation, and functions whose call edges (static and dynamic)
// the determinism tests dump and compare across loads.
package alpha

// Sink consumes bytes.
type Sink interface {
	Emit(p []byte) int
}

// Buffer is the in-package Sink implementation.
type Buffer struct{ n int }

// Emit counts bytes.
func (b *Buffer) Emit(p []byte) int {
	b.n += len(p)
	return b.n
}

// Twice emits through the interface twice — one function, two dynamic
// call sites to the same method.
func Twice(s Sink, p []byte) int {
	s.Emit(p)
	return s.Emit(p)
}

// direct calls Emit statically, and Twice dynamically via Buffer.
func direct(b *Buffer, p []byte) int {
	b.Emit(p)
	return Twice(b, p)
}

// Chain keeps direct reachable.
func Chain(p []byte) int {
	var b Buffer
	return direct(&b, p)
}
