// Package beta is an engine fixture: it imports alpha, adds a second
// Sink implementation, and calls across the package boundary both
// statically and through the interface.
package beta

import "chime/internal/alpha"

// Null is a second Sink implementation, visible only from beta's side
// of the boundary: alpha's own graph must not list it, beta's must.
type Null struct{}

// Emit discards bytes.
func (Null) Emit(p []byte) int { return 0 }

// Relay calls alpha statically.
func Relay(p []byte) int {
	return alpha.Chain(p)
}

// Via dispatches through the shared interface; from beta both Buffer
// and Null are candidate implementations.
func Via(s alpha.Sink, p []byte) int {
	return s.Emit(p)
}
