// Fixture: cmd/ front ends write artifacts and read configs — real
// I/O is their job, the analyzer ignores them.
package dump

import "os"

func Write(path string, blob []byte) error {
	return os.WriteFile(path, blob, 0o644)
}
