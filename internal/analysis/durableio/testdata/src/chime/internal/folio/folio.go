// Fixture: the durability plane itself is the one internal package
// allowed to open files.
package folio

import (
	"os"
	"path/filepath"
)

func Exists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

func Join(elem ...string) string {
	return filepath.Join(elem...)
}
