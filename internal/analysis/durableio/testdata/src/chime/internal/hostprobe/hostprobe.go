// Fixture: the documented escape hatch. A host-side measurement
// package may read /proc with a justified //lint:allow, mirroring
// internal/bench/scale.go's RSS probe.
package hostprobe

import (
	"os" //lint:allow durableio fixture proves the suppression path works
)

func RSS() int64 {
	blob, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	return int64(len(blob))
}
