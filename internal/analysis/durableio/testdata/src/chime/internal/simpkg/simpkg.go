// Fixture: a simulation-facing internal package reaching for the host
// filesystem. Every banned import is flagged at its import line.
package simpkg

import (
	"os"            // want `import "os" \(file and process I/O\): host I/O is confined`
	"os/exec"       // want `import "os/exec" \(subprocess I/O\)`
	"path/filepath" // want `import "path/filepath" \(host path handling \(use folio.Join\)\)`

	"bufio" // clean: byte plumbing is legal, opening descriptors is not
	"bytes"
)

func bad() string {
	f, _ := os.Open("/etc/passwd")
	defer f.Close()
	r := bufio.NewReader(f)
	line, _ := r.ReadString('\n')
	_ = exec.Command("ls")
	return filepath.Join("a", line)
}

func clean() int {
	var b bytes.Buffer
	b.WriteString("no descriptors here")
	return b.Len()
}
