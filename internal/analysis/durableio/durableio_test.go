package durableio_test

import (
	"testing"

	"chime/internal/analysis/analysistest"
	"chime/internal/analysis/durableio"
)

func TestDurableIO(t *testing.T) {
	analysistest.Run(t, "testdata", durableio.Analyzer,
		"chime/internal/simpkg", "chime/internal/hostprobe",
		"chime/internal/folio", "chime/cmd/dump")
}
