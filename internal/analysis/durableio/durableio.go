// Package durableio confines host file I/O to the durability plane.
// The simulator's determinism contract (same-seed bit-identical runs,
// TestPersistOffMeansOff) holds because simulation packages never touch
// the host filesystem: every durable byte flows through internal/folio,
// whose append/flush costs are charged to virtual time as pure
// functions of byte counts, never of host I/O timing. One stray
// os.Open in an index or the fabric reintroduces host-dependent state
// and breaks crash-recovery replay. cmd/ front ends (artifact files,
// progress logs) and the analysis tree (the lint tool must read
// source) stay free to do real I/O.
package durableio

import (
	"strconv"
	"strings"

	"chime/internal/analysis"
)

// Confined are the internal packages allowed to import the host I/O
// surface: the durability plane itself.
var Confined = map[string]bool{
	"chime/internal/folio": true,
}

// exemptPrefixes are internal subtrees outside the simulation: the
// lint infrastructure reads and type-checks source files by nature.
var exemptPrefixes = []string{
	"chime/internal/analysis",
}

// banned maps import paths that imply host file/process I/O to a short
// description used in the diagnostic. Pure byte plumbing (bufio, io,
// encoding/*) stays legal — the gate is the package that opens the
// descriptor, not the one that wraps it.
var banned = map[string]string{
	"os":            "file and process I/O",
	"io/ioutil":     "legacy file I/O",
	"io/fs":         "filesystem traversal",
	"os/exec":       "subprocess I/O",
	"path/filepath": "host path handling (use folio.Join)",
	"syscall":       "raw host syscalls",
}

var Analyzer = &analysis.Analyzer{
	Name: "durableio",
	Doc:  "confine host file I/O imports (os, io/ioutil, os/exec, path/filepath, syscall) to internal/folio and cmd/; simulation packages must stay filesystem-free",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	path := pass.Pkg.Path()
	if !strings.HasPrefix(path, "chime/internal/") || Confined[path] {
		return nil, nil
	}
	for _, pre := range exemptPrefixes {
		if path == pre || strings.HasPrefix(path, pre+"/") {
			return nil, nil
		}
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			ip, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			what, bad := banned[ip]
			if !bad {
				continue
			}
			pass.Reportf(imp.Path.Pos(), "import %q (%s): host I/O is confined to internal/folio and cmd/; %s must stay filesystem-free — route durable bytes through folio (ScratchDir, Exists, Join) or move the I/O to a cmd front end",
				ip, what, path)
		}
	}
	return nil, nil
}
