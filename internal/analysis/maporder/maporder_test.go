package maporder_test

import (
	"testing"

	"chime/internal/analysis/analysistest"
	"chime/internal/analysis/maporder"
)

func TestMapOrder(t *testing.T) {
	// Dependencies first: the sink facts of emitter and report must
	// exist before mapuser is analyzed, exactly as the real drivers
	// guarantee via dependency order.
	analysistest.Run(t, "testdata", maporder.Analyzer,
		"chime/internal/emitter",
		"chime/internal/report",
		"chime/internal/mapuser",
	)
}
