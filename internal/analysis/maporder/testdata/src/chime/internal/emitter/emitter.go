// Package emitter is a maporder fixture dependency: its sink-ness
// must cross the package boundary via facts.
package emitter

import (
	"fmt"
	"io"
	"sort"
)

// EmitRow writes one formatted row — an order-sensitive sink.
func EmitRow(w io.Writer, k string, v int) {
	fmt.Fprintf(w, "%s=%d\n", k, v)
}

// emit is an unexported link in a sink chain.
func emit(w io.Writer, k string) {
	fmt.Fprintln(w, k)
}

// EmitVia reaches a sink through an in-package call.
func EmitVia(w io.Writer, k string) {
	emit(w, k)
}

// EmitSorted sorts before emitting: an ordering barrier, safe to call
// from inside a map range.
func EmitSorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// Describe formats a value without emitting it anywhere — not a sink.
func Describe(k string, v int) string {
	return fmt.Sprintf("%s=%d", k, v)
}
