// Package mapuser exercises maporder: map ranges feeding sinks
// directly, through in-package calls, across package boundaries, and
// through interface methods — plus the clean collect-sort-emit idiom.
package mapuser

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"

	"chime/internal/emitter"
	"chime/internal/report"
)

// DumpDirect emits inside a map range.
func DumpDirect(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `map iteration order reaches fmt\.Fprintf`
	}
}

// DumpViaCall reaches the sink through a cross-package call.
func DumpViaCall(w io.Writer, m map[string]int) {
	for k, v := range m {
		emitter.EmitRow(w, k, v) // want `map iteration order reaches EmitRow`
	}
}

// DumpViaChain reaches the sink through a cross-package chain.
func DumpViaChain(w io.Writer, m map[string]int) {
	for k := range m {
		emitter.EmitVia(w, k) // want `map iteration order reaches EmitVia`
	}
}

// Fingerprint hashes keys in map order — the PR 7 bug class.
func Fingerprint(m map[string]int) uint64 {
	h := fnv.New64a()
	for k := range m {
		h.Write([]byte(k)) // want `map iteration order reaches .*Write`
	}
	return h.Sum64()
}

// DumpIface reaches the sink through an interface method: one known
// implementation (report.File) transitively prints.
func DumpIface(r report.Reporter, m map[string]int) {
	for k := range m {
		r.Report(k) // want `map iteration order reaches Report`
	}
}

// DumpSyncMap emits from a sync.Map.Range callback.
func DumpSyncMap(w io.Writer, m *sync.Map) {
	m.Range(func(k, v any) bool {
		fmt.Fprintln(w, k, v) // want `map iteration order reaches fmt\.Fprintln`
		return true
	})
}

// DumpSorted is the idiomatic fix: collect, sort, then emit.
func DumpSorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// DumpDelegated delegates to a function that sorts internally — the
// barrier stops the taint.
func DumpDelegated(w io.Writer, m map[string]int) {
	emitter.EmitSorted(w, m)
}

// BuildLabels formats values inside a range but never emits — Sprintf
// is not a sink.
func BuildLabels(m map[string]int) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = emitter.Describe(k, v)
	}
	return out
}

// SliceEmit ranges a slice, not a map — ordered, clean.
func SliceEmit(w io.Writer, keys []string) {
	for _, k := range keys {
		fmt.Fprintln(w, k)
	}
}
