// Package report is a maporder fixture dependency: the sink hides
// behind an interface method, so flagging it in a dependent package
// needs method-set resolution plus cross-package facts.
package report

import "fmt"

// Reporter abstracts row emission.
type Reporter interface {
	Report(k string)
}

// Discard drops rows — no sink.
type Discard struct{}

// Report ignores the row.
func (Discard) Report(k string) { _ = k }

// File emits rows through fmt — an order-sensitive sink, reached
// through an unexported helper so the fact is genuinely transitive.
type File struct{}

// Report prints the row.
func (File) Report(k string) {
	printRow(k)
}

func printRow(k string) {
	fmt.Println(k)
}
