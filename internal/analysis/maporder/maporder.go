// Package maporder defines an interprocedural analyzer that flags map
// iteration order escaping into order-sensitive sinks.
//
// Go randomizes map (and sync.Map) iteration order per run. The repro
// pins every artifact bit-identical per seed — bench fingerprints,
// folio logs, obs traces — so a map range that feeds a hash, a
// persisted record, or formatted output without an intervening sort is
// a determinism bug even when it survives today's tests (exactly the
// CHIME hotspot-LFU tie-break class fixed by hand in the hotspot PR).
//
// The analyzer is reachability-based, not data-flow-based: a call
// lexically inside a map-iteration region that can reach a sink —
// directly, or transitively through calls, including across package
// boundaries via exported facts and through interface methods via
// method-set resolution — is reported. A function that sorts
// (sort.*, slices.Sort*) is treated as an ordering barrier and does
// not propagate its callees' sink-ness to its callers; the idiomatic
// fix (collect keys in the loop, sort, then emit) therefore lints
// clean. The over-approximation (a sink call that never sees
// map-derived data) is deliberate: in this codebase emitting anything
// from inside an unordered loop is worth restructuring.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"chime/internal/analysis"
)

// Analyzer flags map iteration order flowing into order-sensitive
// sinks without an intervening sort.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "map or sync.Map iteration order must not reach fingerprinted, persisted, " +
		"or obs-reported sinks without an intervening sort",
	Run: run,
}

// factSink marks a function that can reach an order-sensitive sink.
const factSink = "sink"

// rootSink reports whether fn is itself an order-sensitive sink, and
// names it for the diagnostic.
func rootSink(fn *types.Func) (string, bool) {
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	pkg := fn.Pkg().Path()
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return "", false
	}
	if sig.Recv() == nil {
		// Formatted output: emission order is output order. The
		// value-returning formatters (Sprintf, Errorf) are not
		// sinks — building a string from one key is fine.
		if pkg == "fmt" {
			switch fn.Name() {
			case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
				return "fmt." + fn.Name(), true
			}
		}
		return "", false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, _ := recv.(*types.Named)
	// An io.Writer-shaped Write on any receiver: bytes written in
	// map order are persisted or hashed in map order. This matches
	// hash.Hash, bytes.Buffer, bufio.Writer, os.File and the
	// interface method io.Writer.Write itself.
	if fn.Name() == "Write" && isWriteShaped(sig) {
		return recvName(pkg, named) + ".Write", true
	}
	// Digest extraction on the hash packages' types.
	if pkg == "hash" || strings.HasPrefix(pkg, "hash/") {
		switch fn.Name() {
		case "Sum", "Sum32", "Sum64":
			return recvName(pkg, named) + "." + fn.Name(), true
		}
	}
	if named == nil {
		return "", false
	}
	// The durable persistence plane: append order is replay order.
	if pkg == "chime/internal/folio" && named.Obj().Name() == "Store" {
		switch fn.Name() {
		case "AppendWrite", "NoteAlloc", "SetMeta":
			return "folio.Store." + fn.Name(), true
		}
	}
	// Trace emission: event order is artifact order.
	if pkg == "chime/internal/obs" && named.Obj().Name() == "Tracer" {
		switch fn.Name() {
		case "Begin", "Instant", "CounterSample":
			return "obs.Tracer." + fn.Name(), true
		}
	}
	return "", false
}

func recvName(pkg string, named *types.Named) string {
	if named == nil {
		return pkg
	}
	return named.Obj().Name()
}

func isWriteShaped(sig *types.Signature) bool {
	if sig.Params().Len() != 1 || sig.Results().Len() != 2 || sig.Variadic() {
		return false
	}
	p, ok := sig.Params().At(0).Type().(*types.Slice)
	if !ok {
		return false
	}
	if b, ok := p.Elem().(*types.Basic); !ok || b.Kind() != types.Byte {
		return false
	}
	r0, ok := sig.Results().At(0).Type().(*types.Basic)
	if !ok || r0.Kind() != types.Int {
		return false
	}
	r1, ok := sig.Results().At(1).Type().(*types.Named)
	return ok && r1.Obj().Name() == "error" && r1.Obj().Pkg() == nil
}

// isSortCall reports whether the call establishes an order (sort.*,
// slices.Sort*), making the enclosing function an ordering barrier.
func isSortCall(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		return true
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	return false
}

// posRange is a half-open source interval [from, to).
type posRange struct{ from, to token.Pos }

func (r posRange) contains(p token.Pos) bool { return p >= r.from && p < r.to }

// mapRegions returns the source ranges of body that iterate a map in
// nondeterministic order: range statements over map values (and over
// maps.Keys/Values/All iterators), and sync.Map.Range callbacks.
func mapRegions(info *types.Info, body *ast.BlockStmt) []posRange {
	var out []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if isMapExpr(info, n.X) {
				out = append(out, posRange{n.Body.Pos(), n.Body.End()})
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Range" || len(n.Args) != 1 {
				return true
			}
			fn, _ := info.Uses[sel.Sel].(*types.Func)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
				return true
			}
			if lit, ok := n.Args[0].(*ast.FuncLit); ok {
				out = append(out, posRange{lit.Body.Pos(), lit.Body.End()})
			}
		}
		return true
	})
	return out
}

// isMapExpr reports whether ranging over e iterates in randomized map
// order: e has map type, or is a maps.Keys/Values/All iterator.
func isMapExpr(info *types.Info, e ast.Expr) bool {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		if _, ok := tv.Type.Underlying().(*types.Map); ok {
			return true
		}
	}
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		if fn := analysis.FuncOf(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "maps" {
			switch fn.Name() {
			case "Keys", "Values", "All":
				return true
			}
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	g := pass.Graph()

	// sinkOf: function key -> human-readable reason it reaches a
	// sink, for this package's functions. Seeded from root sinks
	// and imported facts, then iterated to a fixpoint so chains
	// inside the package resolve regardless of declaration order.
	sinkOf := make(map[string]string)
	barrier := make(map[string]bool)
	for _, fi := range g.Funcs {
		for _, cs := range fi.Calls {
			if isSortCall(cs.Callee) {
				barrier[fi.Key] = true
				break
			}
		}
	}
	// reaches resolves one call site against root sinks, imported
	// facts, the current fixpoint state, and interface impls.
	reaches := func(cs analysis.CallSite) (string, bool) {
		if cs.Callee == nil {
			return "", false
		}
		if name, ok := rootSink(cs.Callee); ok {
			return name, true
		}
		key := analysis.KeyOf(cs.Callee)
		if why, ok := sinkOf[key]; ok {
			return cs.Callee.Name() + " (" + why + ")", true
		}
		if why, ok := pass.Facts.Detail(pass.Analyzer.Name, key, factSink); ok {
			return cs.Callee.Name() + " (" + why + ")", true
		}
		if cs.Iface {
			for _, impl := range cs.Impls {
				ikey := analysis.KeyOf(impl)
				if why, ok := sinkOf[ikey]; ok {
					return cs.Callee.Name() + " (" + ikey + ": " + why + ")", true
				}
				if why, ok := pass.Facts.Detail(pass.Analyzer.Name, ikey, factSink); ok {
					return cs.Callee.Name() + " (" + ikey + ": " + why + ")", true
				}
				if name, ok := rootSink(impl); ok {
					return cs.Callee.Name() + " (" + name + ")", true
				}
			}
		}
		return "", false
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range g.Funcs {
			if barrier[fi.Key] {
				continue
			}
			if _, done := sinkOf[fi.Key]; done {
				continue
			}
			for _, cs := range fi.Calls {
				if why, ok := reaches(cs); ok {
					sinkOf[fi.Key] = why
					changed = true
					break
				}
			}
		}
	}
	for _, fi := range g.Funcs {
		if why, ok := sinkOf[fi.Key]; ok {
			pass.ExportFact(fi.Fn, factSink, why)
		}
	}

	// Report: any call inside a map-iteration region that reaches a
	// sink. Barrier status does not matter here — sorting after the
	// loop cannot fix emission happening inside it.
	for _, fi := range g.Funcs {
		regions := mapRegions(pass.TypesInfo, fi.Decl.Body)
		if len(regions) == 0 {
			continue
		}
		for _, cs := range fi.Calls {
			inRegion := false
			for _, r := range regions {
				if r.contains(cs.Pos) {
					inRegion = true
					break
				}
			}
			if !inRegion {
				continue
			}
			if why, ok := reaches(cs); ok {
				pass.Reportf(cs.Pos, "map iteration order reaches %s without an intervening sort; collect keys, sort, then emit", why)
			}
		}
	}
	return nil, nil
}
