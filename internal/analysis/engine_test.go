package analysis

import (
	"fmt"
	"strings"
	"testing"
)

// graphAnalyzer exports one "edges" fact per declared function: its
// static callees in preorder plus, for dynamic calls, the interface
// method and the sorted set of known implementations. Two loads of the
// same tree must export byte-identical fact dumps — the interprocedural
// analyzers inherit their determinism from exactly this property.
var graphAnalyzer = &Analyzer{
	Name: "graphdump",
	Doc:  "test analyzer: export call-graph edges as facts",
	Run: func(pass *Pass) (any, error) {
		for _, fi := range pass.Graph().Funcs {
			var parts []string
			for _, cs := range fi.Calls {
				switch {
				case cs.Callee == nil:
					parts = append(parts, "dyn:<value>")
				case cs.Iface:
					var impls []string
					for _, m := range cs.Impls {
						impls = append(impls, KeyOf(m))
					}
					parts = append(parts, fmt.Sprintf("iface:%s[%s]", KeyOf(cs.Callee), strings.Join(impls, " ")))
				default:
					parts = append(parts, KeyOf(cs.Callee))
				}
			}
			pass.ExportKeyed(fi.Key, "edges", strings.Join(parts, ", "))
		}
		return nil, nil
	},
}

// dumpTree loads the fixture tree fresh and runs graphAnalyzer over it
// in dependency order, threading facts the way the drivers do.
func dumpTree(t *testing.T) string {
	t.Helper()
	pkgs, err := LoadTree("testdata/src", "chime/internal/alpha", "chime/internal/beta")
	if err != nil {
		t.Fatal(err)
	}
	facts := NewFactSet()
	for _, pkg := range pkgs {
		if len(pkg.TypeErrs) > 0 {
			t.Fatalf("%s: type errors: %v", pkg.PkgPath, pkg.TypeErrs)
		}
		_, exported, err := Run(pkg, []*Analyzer{graphAnalyzer}, facts)
		if err != nil {
			t.Fatal(err)
		}
		facts.Merge(exported)
	}
	return facts.DumpString()
}

// Repeated loads of the same package set must produce byte-identical
// summary dumps: lint output stability across machines and runs hangs
// on it.
func TestFactDumpDeterministic(t *testing.T) {
	first := dumpTree(t)
	if first == "" {
		t.Fatal("empty fact dump")
	}
	for i := 0; i < 5; i++ {
		if got := dumpTree(t); got != first {
			t.Fatalf("run %d: fact dump differs\n--- first ---\n%s\n--- got ---\n%s", i+2, first, got)
		}
	}
}

// The graph itself must be deterministic and correctly scoped: alpha's
// side of the boundary cannot see beta's Null implementation, beta's
// side sees both.
func TestCallGraphCrossPackageResolution(t *testing.T) {
	dump := dumpTree(t)

	wantLines := map[string]string{
		// Inside alpha only Buffer implements Sink.
		"chime/internal/alpha.Twice": "iface:(chime/internal/alpha.Sink).Emit[(chime/internal/alpha.Buffer).Emit], iface:(chime/internal/alpha.Sink).Emit[(chime/internal/alpha.Buffer).Emit]",
		// From beta, both implementations are visible, sorted by key.
		"chime/internal/beta.Via": "iface:(chime/internal/alpha.Sink).Emit[(chime/internal/alpha.Buffer).Emit (chime/internal/beta.Null).Emit]",
		// Static cross-package edge.
		"chime/internal/beta.Relay": "chime/internal/alpha.Chain",
	}
	for key, want := range wantLines {
		line := fmt.Sprintf("%s\tgraphdump\tedges\t%s", key, want)
		if !strings.Contains(dump, line) {
			t.Errorf("fact dump missing line:\n%s\ngot dump:\n%s", line, dump)
		}
	}
}

// ReadFacts(Dump(s)) must reproduce s exactly — the vettool protocol
// ships facts through files and depends on a lossless round trip.
func TestFactDumpRoundTrip(t *testing.T) {
	dump := dumpTree(t)
	parsed, err := ReadFacts(strings.NewReader(dump))
	if err != nil {
		t.Fatal(err)
	}
	if got := parsed.DumpString(); got != dump {
		t.Fatalf("round trip changed the dump\n--- in ---\n%s\n--- out ---\n%s", dump, got)
	}
}
