package analysis

import (
	"path/filepath"
	"testing"
)

// The loader must type-check the entire real module cleanly: every
// analyzer result (and `make lint`) is only as trustworthy as the type
// information underneath it.
func TestLoadModuleTypeChecksRepo(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages, expected the whole module", len(pkgs))
	}
	seen := make(map[string]bool)
	for _, p := range pkgs {
		seen[p.PkgPath] = true
		for _, e := range p.TypeErrs {
			t.Errorf("%s: type error: %v", p.PkgPath, e)
		}
		if p.Types == nil || p.TypesInfo == nil {
			t.Errorf("%s: missing type information", p.PkgPath)
		}
	}
	for _, want := range []string{"chime", "chime/internal/dmsim", "chime/internal/core", "chime/cmd/chime-bench"} {
		if !seen[want] {
			t.Errorf("package %s not loaded", want)
		}
	}
}
