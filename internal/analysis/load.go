package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Syntax    []*ast.File // non-test files only
	Types     *types.Package
	TypesInfo *types.Info
	TypeErrs  []error // type-check problems (fixtures and trees must be clean)

	graphOnce sync.Once
	graph     *Graph
	allowOnce sync.Once
	allowMap  map[string]map[int]map[string]bool
}

// allow returns the memoized //lint:allow suppression map.
func (p *Package) allow() map[string]map[int]map[string]bool {
	p.allowOnce.Do(func() { p.allowMap = allowedAt(p.Fset, p.Syntax) })
	return p.allowMap
}

// The process shares one FileSet and one stdlib source importer: the
// importer type-checks stdlib dependencies from $GOROOT/src (the build
// environment has no compiled export data and no module proxy), which
// costs a second or two once and nothing after, but only if every load
// in the process reuses the same instance.
var (
	sharedMu   sync.Mutex
	sharedFset = token.NewFileSet()
	sharedStd  types.Importer
)

func stdImporter() types.Importer {
	if sharedStd == nil {
		sharedStd = importer.ForCompiler(sharedFset, "source", nil)
	}
	return sharedStd
}

// loader type-checks a closed universe of local packages (a module tree
// or an analysistest src root), delegating anything it cannot resolve
// locally to the stdlib source importer.
type loader struct {
	fset    *token.FileSet
	resolve func(path string) (dir string, ok bool)
	pkgs    map[string]*Package
	loading map[string]bool
}

// LoadModule loads every package of the Go module rooted at dir,
// returned in deterministic (import path) order. The walk mirrors the
// go tool's pruning: testdata, hidden and underscore-prefixed
// directories are skipped, and _test.go files are never analyzed — the
// chimelint invariants deliberately exempt test code.
func LoadModule(dir string) ([]*Package, error) {
	sharedMu.Lock()
	defer sharedMu.Unlock()

	modPath, err := modulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	dirs := make(map[string]string) // import path -> dir
	err = filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(p, ".go") || strings.HasSuffix(p, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(dir, filepath.Dir(p))
		if err != nil {
			return err
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		dirs[ip] = filepath.Dir(p)
		return nil
	})
	if err != nil {
		return nil, err
	}

	l := &loader{
		fset: sharedFset,
		resolve: func(path string) (string, bool) {
			d, ok := dirs[path]
			return d, ok
		},
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	paths := make([]string, 0, len(dirs))
	for ip := range dirs {
		paths = append(paths, ip)
	}
	sort.Strings(paths)
	var out []*Package
	for _, ip := range paths {
		pkg, err := l.load(ip)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadTree loads the named packages from a GOPATH-style source root
// (import path P lives in root/P), the layout analysistest fixtures
// use. Fixture packages may shadow real import paths — a stub
// chime/internal/dmsim under testdata/src stands in for the real one.
func LoadTree(root string, pkgpaths ...string) ([]*Package, error) {
	sharedMu.Lock()
	defer sharedMu.Unlock()

	l := &loader{
		fset: sharedFset,
		resolve: func(path string) (string, bool) {
			d := filepath.Join(root, filepath.FromSlash(path))
			if fi, err := os.Stat(d); err == nil && fi.IsDir() {
				return d, true
			}
			return "", false
		},
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	var out []*Package
	for _, ip := range pkgpaths {
		pkg, err := l.load(ip)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s", gomod)
}

// importerFunc adapts the loader to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, ok := l.resolve(path)
	if !ok {
		return nil, fmt.Errorf("cannot resolve package %s", path)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}

	pkg := &Package{
		PkgPath: path,
		Dir:     dir,
		Fset:    l.fset,
		Syntax:  files,
		TypesInfo: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		},
	}
	cfg := &types.Config{
		Importer: importerFunc(func(ip string) (*types.Package, error) {
			if _, ok := l.resolve(ip); ok {
				dep, err := l.load(ip)
				if err != nil {
					return nil, err
				}
				return dep.Types, nil
			}
			return stdImporter().Import(ip)
		}),
		Error: func(err error) { pkg.TypeErrs = append(pkg.TypeErrs, err) },
	}
	pkg.Types, _ = cfg.Check(path, l.fset, files, pkg.TypesInfo)
	l.pkgs[path] = pkg
	return pkg, nil
}
