// Package seededrand forbids the global math/rand (and math/rand/v2)
// top-level generators in non-test code. Fault schedules, YCSB
// workloads and hopscotch placement must replay bit-identically from a
// seed; the global source is shared mutable state that any package can
// perturb, so one stray rand.Intn makes two runs with the same seed
// diverge. Thread an explicit seeded *rand.Rand instead (see
// ycsb.NewGenerator, fault.NewSchedule, hopscotch schemes — all take a
// seed and build rand.New(rand.NewSource(seed))).
package seededrand

import (
	"chime/internal/analysis"
)

// constructors are the package-level functions that build explicit,
// seedable state rather than touching the global source; everything
// else at package level either reads or reseeds process-global state.
var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

var randPkgs = []string{"math/rand", "math/rand/v2"}

var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc:  "forbid global math/rand top-level functions outside tests; thread an explicit seeded *rand.Rand so seeded runs replay bit-identically",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for ident, obj := range pass.TypesInfo.Uses {
		if constructors[obj.Name()] {
			continue
		}
		for _, p := range randPkgs {
			if analysis.IsPkgLevelFunc(obj, p) {
				pass.Reportf(ident.Pos(), "%s.%s draws from the process-global random source; thread a seeded *rand.Rand (rand.New(rand.NewSource(seed))) so runs replay bit-identically",
					p, obj.Name())
				break
			}
		}
	}
	return nil, nil
}
