package seededrand_test

import (
	"testing"

	"chime/internal/analysis/analysistest"
	"chime/internal/analysis/seededrand"
)

func TestSeededRand(t *testing.T) {
	analysistest.Run(t, "testdata", seededrand.Analyzer, "a", "sched")
}
