// Fixture: scheduler-shaped code. The event loop's determinism
// guarantee (same seed → bit-identical replay regardless of
// GOMAXPROCS) dies the moment lane assignment, tie breaks, or bucket
// probing draw from the process-global source.
package sched

import "math/rand"

func badLaneSpread(slots []int32) {
	rand.Shuffle(len(slots), func(i, j int) { // want `math/rand\.Shuffle draws from the process-global random source`
		slots[i], slots[j] = slots[j], slots[i]
	})
}

func badTieBreak(n int) int {
	return rand.Intn(n) // want `math/rand\.Intn draws from the process-global random source`
}

// goodTieBreak threads explicit seeded state: replayable.
func goodTieBreak(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}
