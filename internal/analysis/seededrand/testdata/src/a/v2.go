package a

import randv2 "math/rand/v2"

func badV2() {
	_ = randv2.IntN(10) // want `math/rand/v2\.IntN draws from the process-global random source`
	_ = randv2.Uint64() // want `math/rand/v2\.Uint64 draws from the process-global random source`
}

func goodV2(seed uint64) int {
	r := randv2.New(randv2.NewPCG(seed, seed))
	return r.IntN(10)
}
