// Fixture: global math/rand draws vs an explicitly threaded seeded
// generator. The rule applies to every package — determinism is a
// whole-tree property.
package a

import "math/rand"

func bad() {
	_ = rand.Intn(10)                  // want `math/rand\.Intn draws from the process-global random source`
	_ = rand.Int63()                   // want `math/rand\.Int63 draws from the process-global random source`
	_ = rand.Float64()                 // want `math/rand\.Float64 draws from the process-global random source`
	rand.Shuffle(3, func(i, j int) {}) // want `math/rand\.Shuffle draws from the process-global random source`
	rand.Seed(42)                      // want `math/rand\.Seed draws from the process-global random source`
}

// clean: explicit seeded generator, including the constructors and the
// methods on *rand.Rand (same function names, but with a receiver).
func good(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(r, 1.1, 1, 1000)
	return r.Intn(10) + int(z.Uint64())
}
