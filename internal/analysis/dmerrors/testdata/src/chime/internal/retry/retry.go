// Fixture: classifying dmsim verb errors the wrong ways and the right
// way.
package retry

import (
	"errors"

	"chime/internal/dmsim"
)

func bad(err error) bool {
	if err == dmsim.ErrTimeout { // want `dmsim\.ErrTimeout compared with ==`
		return true
	}
	if dmsim.ErrMNDown != err { // want `dmsim\.ErrMNDown compared with !=`
		return false
	}
	switch err {
	case dmsim.ErrNICUnavailable: // want `dmsim\.ErrNICUnavailable matched in a value switch`
		return true
	case dmsim.ErrClientCrashed: // want `dmsim\.ErrClientCrashed matched in a value switch`
		return false
	}
	return false
}

func good(err error) bool {
	// errors.Is survives %w wrapping anywhere down the verb path.
	if errors.Is(err, dmsim.ErrTimeout) || errors.Is(err, dmsim.ErrNICUnavailable) {
		return true
	}
	// Comparing non-sentinel errors with == stays legal; the rule is
	// scoped to the dmsim fault-plane sentinels.
	return err == errSentinelLocal
}

var errSentinelLocal = errors.New("local")
