// Fixture stub of the dmsim fault-plane sentinels.
package dmsim

import "errors"

var (
	ErrTimeout        = errors.New("dmsim: verb timed out")
	ErrNICUnavailable = errors.New("dmsim: NIC unavailable")
	ErrMNDown         = errors.New("dmsim: memory node down")
	ErrClientCrashed  = errors.New("dmsim: client crashed")
)
