// Package dmerrors enforces errors.Is matching for the typed dmsim verb
// errors (ErrTimeout, ErrNICUnavailable, ErrMNDown, ErrClientCrashed).
// Verb errors cross several layers — fault gate, retry loops, index
// recovery paths, the bench harness — and any of them may wrap the
// sentinel with %w for context. An == comparison (or a value switch)
// matches only the unwrapped sentinel and silently stops classifying
// the moment someone adds context, turning a retriable timeout into an
// unhandled failure.
package dmerrors

import (
	"go/ast"
	"go/token"
	"go/types"

	"chime/internal/analysis"
)

const dmsimPath = "chime/internal/dmsim"

var sentinels = map[string]bool{
	"ErrTimeout":        true,
	"ErrNICUnavailable": true,
	"ErrMNDown":         true,
	"ErrClientCrashed":  true,
}

var Analyzer = &analysis.Analyzer{
	Name: "dmerrors",
	Doc:  "match the typed dmsim errors with errors.Is, never == / != or a value switch — wrapped verb errors must still classify",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	analysis.Preorder(pass.Files, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return
			}
			for _, side := range []ast.Expr{n.X, n.Y} {
				if name, ok := sentinelUse(pass, side); ok {
					pass.Reportf(n.Pos(), "dmsim.%s compared with %s; use errors.Is so wrapped verb errors still match", name, n.Op)
					return
				}
			}
		case *ast.SwitchStmt:
			if n.Tag == nil {
				return
			}
			for _, stmt := range n.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if name, ok := sentinelUse(pass, e); ok {
						pass.Reportf(e.Pos(), "dmsim.%s matched in a value switch; use errors.Is so wrapped verb errors still match", name)
					}
				}
			}
		}
	})
	return nil, nil
}

// sentinelUse reports whether e resolves to one of the dmsim sentinel
// error variables.
func sentinelUse(pass *analysis.Pass, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg().Path() != dmsimPath || !sentinels[v.Name()] {
		return "", false
	}
	return v.Name(), true
}
