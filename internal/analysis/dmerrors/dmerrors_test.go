package dmerrors_test

import (
	"testing"

	"chime/internal/analysis/analysistest"
	"chime/internal/analysis/dmerrors"
)

func TestDMErrors(t *testing.T) {
	analysistest.Run(t, "testdata", dmerrors.Analyzer, "chime/internal/retry")
}
