package verbgate_test

import (
	"testing"

	"chime/internal/analysis/analysistest"
	"chime/internal/analysis/verbgate"
)

func TestVerbGate(t *testing.T) {
	analysistest.Run(t, "testdata", verbgate.Analyzer,
		"chime/internal/dmsim", "chime/internal/idx")
}
