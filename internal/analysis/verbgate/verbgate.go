// Package verbgate keeps one-sided verbs the only door into memory
// nodes. Outside internal/dmsim, index and bench code must move every
// byte through the Client verb API (Read/Write/CAS/MaskedCAS/AllocRPC
// and the posted variants) — the same choke point the fault-injection
// gate sits on, so a verb that bypasses it would also bypass injected
// faults, NIC accounting and the observability plane.
//
// Two leaks are detectable statically:
//
//   - Fabric.Peek / Fabric.Poke, the test-only debug accessors that
//     touch MN backing memory without charging network cost;
//   - composite literals of dmsim.GAddr, which manufacture remote
//     pointers from raw integers instead of deriving them from the
//     allocator (AllocRPC), pointer arithmetic (GAddr.Add), or the
//     sanctioned codecs (UnpackGAddr, UnpackTagged).
package verbgate

import (
	"go/ast"
	"go/types"

	"chime/internal/analysis"
)

const dmsimPath = "chime/internal/dmsim"

var Analyzer = &analysis.Analyzer{
	Name: "verbgate",
	Doc:  "outside internal/dmsim, all data movement goes through the Client verb API: no Fabric.Peek/Poke, no raw dmsim.GAddr literals",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Path() == dmsimPath {
		return nil, nil
	}
	analysis.Preorder(pass.Files, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if isDmsimNamed(pass.TypesInfo.TypeOf(n), "GAddr") {
				pass.Reportf(n.Pos(), "raw dmsim.GAddr literal bypasses the verb gate's address discipline; derive addresses from AllocRPC, GAddr.Add, UnpackGAddr or UnpackTagged")
			}
		case *ast.CallExpr:
			fn := analysis.FuncOf(pass.TypesInfo, n)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != dmsimPath {
				return
			}
			if (fn.Name() == "Peek" || fn.Name() == "Poke") && analysis.ReceiverNamed(fn) == "Fabric" {
				pass.Reportf(n.Pos(), "Fabric.%s touches MN backing memory without going through the verb gate (no fault injection, no NIC accounting); it is test-only — use Client verbs", fn.Name())
			}
		}
	})
	return nil, nil
}

func isDmsimNamed(t types.Type, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == dmsimPath
}
