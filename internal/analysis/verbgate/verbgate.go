// Package verbgate keeps one-sided verbs the only door into memory
// nodes. Outside internal/dmsim, index and bench code must move every
// byte through the Client verb API (Read/Write/CAS/MaskedCAS/AllocRPC
// and the posted variants) — the same choke point the fault-injection
// gate sits on, so a verb that bypasses it would also bypass injected
// faults, NIC accounting and the observability plane.
//
// Two leaks are detectable statically:
//
//   - Fabric.Peek / Fabric.Poke, the test-only debug accessors that
//     touch MN backing memory without charging network cost;
//   - composite literals of dmsim.GAddr, which manufacture remote
//     pointers from raw integers instead of deriving them from the
//     allocator (AllocRPC), pointer arithmetic (GAddr.Add), or the
//     sanctioned codecs (UnpackGAddr, UnpackTagged);
//   - Fabric.ExecOffload, the fabric-side offload executor that runs an
//     MN program without the Client verb's NIC charge, MN-CPU queueing
//     or fault gate — index code dispatches offloads through the Client
//     verbs (LeafSearchAtMN, CompareAndCASAtMN, ScatterGatherScan and
//     the Post variants);
//   - composite literals of dmsim.MNCtx, which fabricate an unmetered
//     MN execution context. Index packages receive a *MNCtx in their
//     registered MN programs; only dmsim may construct one.
package verbgate

import (
	"go/ast"
	"go/types"

	"chime/internal/analysis"
)

const dmsimPath = "chime/internal/dmsim"

var Analyzer = &analysis.Analyzer{
	Name: "verbgate",
	Doc:  "outside internal/dmsim, all data movement goes through the Client verb API: no Fabric.Peek/Poke/ExecOffload, no raw dmsim.GAddr or dmsim.MNCtx literals",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Path() == dmsimPath {
		return nil, nil
	}
	analysis.Preorder(pass.Files, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(n)
			if isDmsimNamed(t, "GAddr") {
				pass.Reportf(n.Pos(), "raw dmsim.GAddr literal bypasses the verb gate's address discipline; derive addresses from AllocRPC, GAddr.Add, UnpackGAddr or UnpackTagged")
			}
			if isDmsimNamed(t, "MNCtx") {
				pass.Reportf(n.Pos(), "raw dmsim.MNCtx literal fabricates an unmetered MN execution context; MN programs receive their *MNCtx from the offload verbs")
			}
		case *ast.CallExpr:
			fn := analysis.FuncOf(pass.TypesInfo, n)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != dmsimPath {
				return
			}
			if (fn.Name() == "Peek" || fn.Name() == "Poke") && analysis.ReceiverNamed(fn) == "Fabric" {
				pass.Reportf(n.Pos(), "Fabric.%s touches MN backing memory without going through the verb gate (no fault injection, no NIC accounting); it is test-only — use Client verbs", fn.Name())
			}
			if fn.Name() == "ExecOffload" && analysis.ReceiverNamed(fn) == "Fabric" {
				pass.Reportf(n.Pos(), "Fabric.ExecOffload runs an MN program without the verb gate's NIC charge, MN-CPU queueing or fault injection; dispatch offloads through the Client verbs (LeafSearchAtMN, CompareAndCASAtMN, ScatterGatherScan)")
			}
		}
	})
	return nil, nil
}

func isDmsimNamed(t types.Type, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == dmsimPath
}
