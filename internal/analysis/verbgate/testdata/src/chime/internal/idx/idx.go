// Fixture: a consumer package that must stay behind the verb gate.
package idx

import "chime/internal/dmsim"

func bad(f *dmsim.Fabric, c *dmsim.Client) {
	a := dmsim.GAddr{MN: 0, Off: 64} // want `raw dmsim\.GAddr literal`
	var buf [8]byte
	_ = f.Peek(a, buf[:])                 // want `Fabric\.Peek touches MN backing memory`
	_ = f.Poke(a, buf[:])                 // want `Fabric\.Poke touches MN backing memory`
	addrs := []dmsim.GAddr{{Off: 128}, a} // want `raw dmsim\.GAddr literal`
	_ = addrs
}

func badOffload(f *dmsim.Fabric) {
	var dst [64]byte
	// Fabric-side offload execution bypasses the MN CPU's queueing model.
	_, _, _ = f.ExecOffload(0, dst[:], func(ctx *dmsim.MNCtx) {}) // want `Fabric\.ExecOffload runs an MN program without the verb gate`
	ctx := dmsim.MNCtx{}                                          // want `raw dmsim\.MNCtx literal`
	_ = ctx
	ctxs := []dmsim.MNCtx{{}} // want `raw dmsim\.MNCtx literal`
	_ = ctxs
}

// goodOffload: receiving a *MNCtx in a registered MN program and
// dispatching through the Client offload verbs are both sanctioned.
func goodOffload(c *dmsim.Client, base dmsim.GAddr) error {
	prog := func(ctx *dmsim.MNCtx) error {
		var buf [8]byte
		return ctx.Read(base, buf[:])
	}
	_ = prog
	var dst [64]byte
	_, _, err := c.LeafSearchAtMN(0, 0, 42, 0, dst[:])
	return err
}

func good(c *dmsim.Client) error {
	base, err := c.AllocRPC(0, 4096)
	if err != nil {
		return err
	}
	// Sanctioned address derivation: allocator + Add + the codecs.
	next := base.Add(64)
	_ = dmsim.UnpackGAddr(next.Off)
	root, level := dmsim.UnpackTagged(12345)
	_ = level
	// Slice literals of derived addresses are fine — only GAddr
	// composite literals themselves are raw.
	sibs := []dmsim.GAddr{base.Add(128), root}
	var buf [8]byte
	return c.Read(sibs[0], buf[:])
}
