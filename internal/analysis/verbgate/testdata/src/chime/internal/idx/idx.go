// Fixture: a consumer package that must stay behind the verb gate.
package idx

import "chime/internal/dmsim"

func bad(f *dmsim.Fabric, c *dmsim.Client) {
	a := dmsim.GAddr{MN: 0, Off: 64} // want `raw dmsim\.GAddr literal`
	var buf [8]byte
	_ = f.Peek(a, buf[:])                 // want `Fabric\.Peek touches MN backing memory`
	_ = f.Poke(a, buf[:])                 // want `Fabric\.Poke touches MN backing memory`
	addrs := []dmsim.GAddr{{Off: 128}, a} // want `raw dmsim\.GAddr literal`
	_ = addrs
}

func good(c *dmsim.Client) error {
	base, err := c.AllocRPC(0, 4096)
	if err != nil {
		return err
	}
	// Sanctioned address derivation: allocator + Add + the codecs.
	next := base.Add(64)
	_ = dmsim.UnpackGAddr(next.Off)
	root, level := dmsim.UnpackTagged(12345)
	_ = level
	// Slice literals of derived addresses are fine — only GAddr
	// composite literals themselves are raw.
	sibs := []dmsim.GAddr{base.Add(128), root}
	var buf [8]byte
	return c.Read(sibs[0], buf[:])
}
