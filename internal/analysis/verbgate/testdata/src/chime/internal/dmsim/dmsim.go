// Fixture stub standing in for the real chime/internal/dmsim: just
// enough surface for consumers to trip (or respect) the verb gate.
// Being the dmsim package itself, everything here is exempt — the
// substrate is where GAddr literals and backing-memory access live.
package dmsim

type GAddr struct {
	MN  uint8
	Off uint64
}

var NilGAddr = GAddr{}

func (a GAddr) Add(d uint64) GAddr { return GAddr{MN: a.MN, Off: a.Off + d} }

func UnpackGAddr(v uint64) GAddr {
	return GAddr{MN: uint8(v >> 56), Off: v & ((1 << 56) - 1)}
}

func UnpackTagged(w uint64) (GAddr, uint8) {
	return GAddr{Off: w & ((1 << 56) - 1)}, uint8(w >> 56)
}

type Fabric struct{ mem []byte }

func (f *Fabric) Peek(a GAddr, buf []byte) error { return nil }
func (f *Fabric) Poke(a GAddr, b []byte) error   { return nil }

// MNCtx and ExecOffload mirror the offload plane: the metered MN-side
// execution context and the fabric-side executor that runs a program
// against backing memory.
type MNCtx struct{ touched int64 }

func (ctx *MNCtx) Read(a GAddr, buf []byte) error { return nil }

func (f *Fabric) ExecOffload(mn int, dst []byte, fn func(*MNCtx)) (int, int64, error) {
	fn(&MNCtx{})
	return 0, 0, nil
}

type MNProgramID uint32

type OffloadStatus uint8

type Client struct{ f *Fabric }

func (c *Client) Read(a GAddr, buf []byte) error       { return nil }
func (c *Client) AllocRPC(mn, size int) (GAddr, error) { return GAddr{}, nil }

func (c *Client) LeafSearchAtMN(id MNProgramID, mn int, key, arg uint64, dst []byte) (int, OffloadStatus, error) {
	return 0, 0, nil
}
