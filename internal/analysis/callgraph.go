// The package-level call graph: every function declaration in a loaded
// package together with the calls its body (including nested function
// literals) makes. Static calls resolve directly to their *types.Func;
// calls through an interface method are additionally resolved to the
// set of known concrete implementations by method-set matching over
// every named type visible from the package (its own scope plus the
// scopes of all transitively imported packages). That resolution is
// unsound in the usual ways — implementations living in packages that
// import *us* are invisible — and analyzers are expected to treat an
// empty implementation set as "opaque" rather than "safe" where it
// matters.
//
// Everything is ordered deterministically: functions in source order,
// calls in preorder, implementations sorted by canonical key. The
// graph is built once per Package and memoized.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CallSite is one call expression inside a function body.
type CallSite struct {
	Call   *ast.CallExpr
	Pos    token.Pos
	Callee *types.Func   // static callee or interface method; nil for func values, builtins, conversions
	Iface  bool          // true when Callee is an interface method (dynamic dispatch)
	Impls  []*types.Func // for Iface calls: known concrete implementations, sorted by KeyOf
}

// FuncInfo is one declared function and its outgoing calls. Calls made
// inside function literals nested in the body are attributed to the
// enclosing declaration: for the invariants chimelint enforces, work a
// function schedules is work it does.
type FuncInfo struct {
	Decl  *ast.FuncDecl
	Fn    *types.Func
	Key   string // KeyOf(Fn)
	Calls []CallSite
}

// Graph is the call graph of one package.
type Graph struct {
	Funcs []*FuncInfo
	ByObj map[*types.Func]*FuncInfo
	ByKey map[string]*FuncInfo
}

// Graph returns the package's call graph, building it on first use.
func (p *Package) Graph() *Graph {
	p.graphOnce.Do(func() { p.graph = buildGraph(p.Syntax, p.Types, p.TypesInfo) })
	return p.graph
}

func buildGraph(files []*ast.File, pkg *types.Package, info *types.Info) *Graph {
	g := &Graph{
		ByObj: make(map[*types.Func]*FuncInfo),
		ByKey: make(map[string]*FuncInfo),
	}
	res := newImplResolver(pkg)
	for _, file := range files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &FuncInfo{Decl: fd, Fn: fn, Key: KeyOf(fn)}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fi.Calls = append(fi.Calls, resolveCall(info, call, res))
				return true
			})
			g.Funcs = append(g.Funcs, fi)
			g.ByObj[fn] = fi
			g.ByKey[fi.Key] = fi
		}
	}
	return g
}

func resolveCall(info *types.Info, call *ast.CallExpr, res *implResolver) CallSite {
	cs := CallSite{Call: call, Pos: call.Lparen}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		cs.Callee, _ = info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return cs
		}
		cs.Callee = fn
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if _, ok := sel.Recv().Underlying().(*types.Interface); ok {
				cs.Iface = true
				cs.Impls = res.implsOf(fn)
			}
		}
	}
	return cs
}

// implResolver finds concrete implementations of interface methods by
// scanning every named type visible from one package. Results are
// cached per interface method.
type implResolver struct {
	named []*types.Named
	cache map[*types.Func][]*types.Func
}

func newImplResolver(pkg *types.Package) *implResolver {
	r := &implResolver{cache: make(map[*types.Func][]*types.Func)}
	if pkg == nil {
		return r
	}
	seen := make(map[*types.Package]bool)
	var visit func(p *types.Package)
	visit = func(p *types.Package) {
		if p == nil || seen[p] {
			return
		}
		seen[p] = true
		scope := p.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				r.named = append(r.named, named)
			}
		}
		for _, imp := range p.Imports() {
			visit(imp)
		}
	}
	visit(pkg)
	return r
}

// implsOf returns the known concrete methods implementing the
// interface method m, sorted by canonical key.
func (r *implResolver) implsOf(m *types.Func) []*types.Func {
	if impls, ok := r.cache[m]; ok {
		return impls
	}
	var impls []*types.Func
	sig, _ := m.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		r.cache[m] = nil
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	if iface == nil {
		r.cache[m] = nil
		return nil
	}
	for _, named := range r.named {
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		var recv types.Type
		switch {
		case types.Implements(named, iface):
			recv = named
		case types.Implements(types.NewPointer(named), iface):
			recv = types.NewPointer(named)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, m.Pkg(), m.Name())
		if impl, ok := obj.(*types.Func); ok {
			impls = append(impls, impl)
		}
	}
	sort.Slice(impls, func(i, j int) bool { return KeyOf(impls[i]) < KeyOf(impls[j]) })
	// Dedup: the same method can be reached through several named
	// types (embedding).
	out := impls[:0]
	var prev *types.Func
	for _, f := range impls {
		if f != prev {
			out = append(out, f)
		}
		prev = f
	}
	r.cache[m] = out
	return out
}
