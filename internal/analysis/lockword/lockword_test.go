package lockword_test

import (
	"testing"

	"chime/internal/analysis/analysistest"
	"chime/internal/analysis/lockword"
)

func TestLockWord(t *testing.T) {
	analysistest.Run(t, "testdata", lockword.Analyzer,
		"chime/internal/lease", "chime/internal/core", "chime/internal/smart")
}
