// Fixture: an index client reimplementing the lease layout by hand —
// exactly the drift the analyzer exists to stop.
package smart

func stealIfExpired(w uint64, now int64) bool {
	expiry := int64(w >> 17) // want `raw lock-word bit-twiddling \(shift by 17`
	return expiry != 0 && now > expiry
}

func ownerOf(w uint64) uint64 {
	return (w & 0x1FFFE) >> 1 // want `raw lock-word bit-twiddling \(lease owner mask`
}
