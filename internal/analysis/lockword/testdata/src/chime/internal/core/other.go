// Fixture: core code OUTSIDE lockword.go must use the codec, not the
// raw layout — only the lockword.go file is exempt.
package core

func leak(w uint64) (uint64, uint64) {
	v := (w & vacancyMask) >> 1 // want `raw lock-word bit-twiddling \(vacancy bitmap mask`
	a := w >> 49                // want `raw lock-word bit-twiddling \(shift by 49`
	return v, a
}

// clean: everyday bit math that happens to be near lock code.
func popLow6(w uint64) uint64 { return w & 0x3F }

func double(x uint64) uint64 { return x << 1 }

// clean: going through the sanctioned accessor.
func vacancyOf(w uint64) uint64 { return DecodeVacancy(w) }
