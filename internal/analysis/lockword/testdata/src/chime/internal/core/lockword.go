// Fixture stub of the core lock-word codec: this file name, in this
// package, is the one sanctioned bit-twiddling site outside lease.
package core

const (
	lockBit        = uint64(1)
	vacancyMask    = ((uint64(1) << 48) - 1) << 1
	argmaxMask     = ((uint64(1) << 10) - 1) << 49
	argmaxValidBit = uint64(1) << 59
)

// DecodeVacancy is the sanctioned accessor other files should call.
func DecodeVacancy(w uint64) uint64 { return (w & vacancyMask) >> 1 }

func encode(locked bool, vacancy uint64) uint64 {
	var w uint64
	if locked {
		w |= lockBit
	}
	w |= (vacancy << 1) & vacancyMask
	w |= argmaxMask & argmaxValidBit
	return w
}
