// Fixture stub of the real lease package: the encoding site itself is
// exempt — this is exactly where the bit layout is allowed to live.
package lease

const (
	lockBit     = uint64(1)
	ownerShift  = 1
	ownerMask   = ((uint64(1) << 16) - 1) << ownerShift
	expiryShift = 17
	expiryMask  = ((uint64(1) << 47) - 1) << expiryShift
)

func Word(clientID int64, expiry int64) uint64 {
	owner := uint64(clientID) & (ownerMask >> ownerShift)
	if owner == 0 {
		owner = 1
	}
	return lockBit | owner<<ownerShift | (uint64(expiry) << expiryShift & expiryMask)
}

func Decode(w uint64) (owner uint64, expiry int64) {
	return (w & ownerMask) >> ownerShift, int64((w & expiryMask) >> expiryShift)
}

func Expired(w uint64, now int64) bool {
	if w&lockBit == 0 {
		return false
	}
	owner, expiry := Decode(w)
	return owner != 0 && expiry != 0 && now > expiry
}
