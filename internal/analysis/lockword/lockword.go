// Package lockword confines raw lock-word bit-twiddling to the two
// encoding sites: internal/lease (lock bit + 16-bit owner + 47-bit
// virtual-ns expiry, §4.1–§4.2 / the PR-4 lease design) and
// internal/core/lockword.go (lock bit + 48-bit vacancy bitmap + 10-bit
// argmax, §4.2.1/§4.2.3). Every other package must go through the
// helpers (lease.Word/Decode/Expired, core's lockWord codec) — a stray
// shift-by-17 in an index client would silently disagree with the
// layout the recovery plane depends on.
//
// Detection is a layout-fingerprint heuristic: the analyzer flags bit
// operations whose constant operand is one of the canonical layout
// masks, and shifts whose constant count is one of the layout's field
// offsets (17, 47, 49, 59). Shifts by 1 and masks like 0x3F are
// everyday integer code and stay legal; the flagged values identify
// this word layout specifically.
package lockword

import (
	"go/ast"
	"go/constant"
	"go/token"
	"path/filepath"

	"chime/internal/analysis"
)

// The canonical layout masks, spelled as the encoders derive them.
var magicMasks = map[uint64]string{
	((1 << 16) - 1) << 1:  "lease owner mask",
	((1 << 47) - 1) << 17: "lease expiry mask",
	((1 << 48) - 1) << 1:  "vacancy bitmap mask",
	((1 << 10) - 1) << 49: "argmax mask",
	1 << 59:               "argmax-valid bit",
}

// The layout's field offsets; shifting by one of these is how raw code
// extracts or installs a lock-word field.
var magicShifts = map[uint64]string{
	17: "lease expiry offset",
	47: "lease expiry width",
	49: "argmax offset",
	59: "argmax-valid offset",
}

var Analyzer = &analysis.Analyzer{
	Name: "lockword",
	Doc:  "lock/lease word bit-twiddling (lock bit, 16-bit owner, 47-bit expiry, vacancy/argmax layout) is only legal in internal/lease and internal/core/lockword.go; use the encoding helpers",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	// internal/lease owns the layout; this package necessarily spells
	// the same masks and offsets out as its fingerprint table.
	switch pass.Pkg.Path() {
	case "chime/internal/lease", "chime/internal/analysis/lockword":
		return nil, nil
	}
	inCore := pass.Pkg.Path() == "chime/internal/core"
	for _, file := range pass.Files {
		if inCore && filepath.Base(pass.Fset.Position(file.Pos()).Filename) == "lockword.go" {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.AND, token.OR, token.XOR, token.AND_NOT:
				for _, side := range []ast.Expr{be.X, be.Y} {
					if v, ok := constUint64(pass, side); ok {
						if what, hit := magicMasks[v]; hit {
							pass.Reportf(be.Pos(), "raw lock-word bit-twiddling (%s 0x%X); the layout is private to internal/lease and internal/core/lockword.go — use lease.Word/Decode/Expired or the core lockWord codec", what, v)
							return true
						}
					}
				}
			case token.SHL, token.SHR:
				if v, ok := constUint64(pass, be.Y); ok {
					if what, hit := magicShifts[v]; hit {
						pass.Reportf(be.Pos(), "raw lock-word bit-twiddling (shift by %d, the %s); the layout is private to internal/lease and internal/core/lockword.go — use lease.Word/Decode/Expired or the core lockWord codec", v, what)
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

func constUint64(pass *analysis.Pass, e ast.Expr) (uint64, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Uint64Val(tv.Value)
}
