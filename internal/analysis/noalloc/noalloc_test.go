package noalloc_test

import (
	"testing"

	"chime/internal/analysis/analysistest"
	"chime/internal/analysis/noalloc"
)

func TestNoAlloc(t *testing.T) {
	// hotdep first: hot's cross-package cases consume its facts.
	analysistest.Run(t, "testdata", noalloc.Analyzer,
		"chime/internal/hotdep",
		"chime/internal/hot",
	)
}
