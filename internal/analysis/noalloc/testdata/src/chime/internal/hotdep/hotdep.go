// Package hotdep is a noalloc fixture dependency: its allocation
// summaries must reach annotated callers in dependent packages
// through facts.
package hotdep

import (
	"os"
	"sync/atomic"
)

// Grow allocates — the "allocates" fact crosses the package boundary.
func Grow(s []byte) []byte {
	return append(s, 0)
}

// Bump is allocation-free.
func Bump(x *int64) {
	atomic.AddInt64(x, 1)
}

// Mystery calls stdlib outside the allowlist — opaque, which must
// poison annotated callers just like a proven allocation.
func Mystery() int {
	return os.Getpid()
}
