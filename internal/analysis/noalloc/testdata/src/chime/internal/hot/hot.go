// Package hot exercises noalloc: direct constructs, transitive
// propagation within and across packages, interface dispatch, the
// //chime:coldalloc waiver, and //lint:allow suppression.
package hot

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"chime/internal/hotdep"
)

//chime:noalloc
func BadMake(n int) []int {
	return make([]int, n) // want `make in //chime:noalloc function BadMake`
}

//chime:noalloc
func BadAppend(s []int) []int {
	return append(s, 1) // want `append \(may grow\) in //chime:noalloc function BadAppend`
}

//chime:noalloc
func BadLiteral() {
	_ = []int{1, 2}      // want `slice literal in //chime:noalloc function BadLiteral`
	_ = map[string]int{} // want `map literal in //chime:noalloc function BadLiteral`
}

type box struct{ v int }

//chime:noalloc
func BadEscape() *box {
	return &box{v: 1} // want `heap-escaping composite literal \(&T\{\}\) in //chime:noalloc function BadEscape`
}

//chime:noalloc
func BadClosure(n int) func() int {
	return func() int { return n } // want `closure capturing n in //chime:noalloc function BadClosure`
}

//chime:noalloc
func BadConcat(a, b string) string {
	return a + b // want `string concatenation in //chime:noalloc function BadConcat`
}

//chime:noalloc
func BadConvert(s string) []byte {
	return []byte(s) // want `string to \[\]byte/\[\]rune conversion in //chime:noalloc function BadConvert`
}

//chime:noalloc
func BadMapInsert(m map[int]int, k int) {
	m[k] = 1 // want `map insert \(may grow\) in //chime:noalloc function BadMapInsert`
}

//chime:noalloc
func BadGo(f func()) {
	go f() // want `go statement in //chime:noalloc function BadGo` `call cannot be verified allocation-free \(call through function value\) in //chime:noalloc function BadGo`
}

func sinkAny(v any) { _ = v }

//chime:noalloc
func BadBox(x int) {
	sinkAny(x) // want `interface boxing \(arg to any param\) in //chime:noalloc function BadBox`
}

//chime:noalloc
func BadFmt(x int) string {
	return fmt.Sprintf("%d", x) // want `call allocates \(call to fmt\.Sprintf\) in //chime:noalloc function BadFmt` `interface boxing \(arg to any param\) in //chime:noalloc function BadFmt`
}

// grow is not annotated — no diagnostics of its own, but its summary
// poisons annotated callers.
func grow(s []int) []int {
	return append(s, 1)
}

//chime:noalloc
func BadTransitive(s []int) []int {
	return grow(s) // want `call allocates \(grow: append \(may grow\)\) in //chime:noalloc function BadTransitive`
}

//chime:noalloc
func BadCross(s []byte) []byte {
	return hotdep.Grow(s) // want `call allocates \(hotdep\.Grow: append \(may grow\)\) in //chime:noalloc function BadCross`
}

//chime:noalloc
func BadOpaque() int {
	return hotdep.Mystery() // want `call cannot be verified allocation-free \(hotdep\.Mystery: calls os\.Getpid \(not allocation-free-listed\)\) in //chime:noalloc function BadOpaque`
}

// Adder dispatches dynamically; one implementation allocates.
type Adder interface{ Add(v int64) }

// SlowAdder allocates on Add.
type SlowAdder struct{ s []int64 }

// Add appends.
func (a *SlowAdder) Add(v int64) { a.s = append(a.s, v) }

// FastAdder is allocation-free.
type FastAdder struct{ v int64 }

// Add accumulates in place.
func (f *FastAdder) Add(v int64) { atomic.AddInt64(&f.v, v) }

//chime:noalloc
func BadIface(a Adder) {
	a.Add(1) // want `call allocates \(\(chime/internal/hot\.SlowAdder\)\.Add: append \(may grow\)\) in //chime:noalloc function BadIface`
}

// Ghost has no implementation anywhere in the fixture universe.
type Ghost interface{ BooNobodyImplementsThis() }

//chime:noalloc
func BadGhost(g Ghost) {
	g.BooNobodyImplementsThis() // want `call cannot be verified allocation-free \(interface call Ghost\.BooNobodyImplementsThis with no known implementation\) in //chime:noalloc function BadGhost`
}

//chime:coldalloc pools warm up on first use; steady state is pinned by alloc tests
func warmPool(n int) []int {
	return make([]int, n)
}

var mu sync.Mutex

//chime:noalloc
func GoodHot(x *int64, s []int) int {
	mu.Lock()
	atomic.AddInt64(x, 1)
	n := bits.OnesCount64(uint64(*x))
	if len(s) == 0 {
		s = warmPool(8)
	}
	mu.Unlock()
	return n + len(s)
}

//chime:noalloc
func GoodAllowed(buf []int) []int {
	buf = append(buf[:0], 1) //lint:allow noalloc append into capacity retained by the freelist
	return buf
}

//chime:coldalloc
func badCold() { // want `//chime:coldalloc on badCold requires a reason`
}

// unannotated allocates freely without diagnostics.
func unannotated() []int {
	return append(make([]int, 0, 4), 1, 2, 3)
}
