// Package noalloc defines an interprocedural analyzer enforcing
// //chime:noalloc annotations: the annotated function and everything
// it transitively calls must be free of allocating constructs.
//
// The simulator's verb path is pinned at zero allocations per op by
// TestVerbRoundTripZeroAllocs; that test samples one configuration,
// while this analyzer proves the property over every path the type
// system can see. Allocating constructs are the syntactic ones the gc
// compiler cannot generally keep off the heap: make/new/append, slice
// and map composite literals, address-taken composite literals,
// closures capturing enclosing variables, interface boxing (arguments
// and conversions), non-constant string concatenation, string<->[]byte
// conversions, map inserts, `go` statements, and any call into fmt.
//
// Every function's summary is exported as facts — "allocates" (the
// function or a transitive callee contains an allocating construct)
// and "opaque" (the function calls something the analyzer cannot see
// through: a non-allowlisted stdlib function, a function value, or an
// interface method with no known implementation). Both poison
// //chime:noalloc callers, because "cannot verify" must not read as
// "verified".
//
// Escape hatches, both deliberate and auditable:
//
//   - //lint:allow noalloc <reason> on (or directly above) a construct
//     or call excludes it from the summary — for amortised appends
//     into retained capacity and for cold branches like trace
//     sampling, whose zero-steady-state cost the alloc tests pin
//     dynamically.
//   - //chime:coldalloc <reason> on a function declaration exempts the
//     whole body (constructors, error paths, warm-up): callers treat
//     it as allocation-free, and the reason is mandatory.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"chime/internal/analysis"
)

// Analyzer enforces //chime:noalloc functions (transitively)
// allocation-free.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc: "functions annotated //chime:noalloc and their transitive callees must not " +
		"contain allocating constructs",
	Run: run,
}

const (
	factAllocates = "allocates"
	factOpaque    = "opaque"
)

// allowedStdlib lists the stdlib functions and methods the verb path
// may call: keyed by package path then name ("*" = whole package).
// Everything stdlib outside this list makes the caller opaque.
var allowedStdlib = map[string]map[string]bool{
	"sync":            {"Lock": true, "Unlock": true, "RLock": true, "RUnlock": true, "TryLock": true, "TryRLock": true, "Wait": true, "Signal": true, "Broadcast": true},
	"sync/atomic":     {"*": true},
	"math":            {"*": true},
	"math/bits":       {"*": true},
	"errors":          {"Is": true},
	"encoding/binary": {"Uint16": true, "Uint32": true, "Uint64": true, "PutUint16": true, "PutUint32": true, "PutUint64": true},
	"slices":          {"Sort": true, "Contains": true, "Index": true, "BinarySearch": true},
}

// construct is one allocating construct found directly in a body.
type construct struct {
	pos  token.Pos
	desc string
}

// status is one function's summary during the in-package fixpoint.
type status struct {
	alloc  string // "" = does not allocate; else first cause
	opaque string // "" = fully visible; else first cause
	cold   bool   // //chime:coldalloc — exempt body
}

func run(pass *analysis.Pass) (any, error) {
	g := pass.Graph()

	constructs := make(map[string][]construct) // key -> direct constructs
	stat := make(map[string]*status)
	annotated := make(map[string]bool)

	for _, fi := range g.Funcs {
		st := &status{}
		stat[fi.Key] = st
		noalloc, cold, coldReason := directives(fi.Decl)
		annotated[fi.Key] = noalloc
		if cold {
			if noalloc {
				pass.Reportf(fi.Decl.Pos(), "function %s is annotated both //chime:noalloc and //chime:coldalloc", fi.Fn.Name())
			}
			if coldReason == "" {
				pass.Reportf(fi.Decl.Pos(), "//chime:coldalloc on %s requires a reason", fi.Fn.Name())
			}
			st.cold = true
			continue
		}
		cs := collect(pass, fi.Decl)
		constructs[fi.Key] = cs
		if len(cs) > 0 {
			st.alloc = cs[0].desc
		}
	}

	// resolve classifies one call against builtins/conversions, the
	// stdlib allowlist, same-package statuses, and imported facts.
	resolve := func(cs analysis.CallSite) (alloc, opaque string) {
		if cs.Callee == nil {
			if kindOfOpaqueCall(pass.TypesInfo, cs.Call) {
				return "", "call through function value"
			}
			return "", "" // builtin or conversion: handled as constructs
		}
		name := calleeName(cs.Callee)
		if cs.Iface {
			if len(cs.Impls) == 0 {
				return "", "interface call " + name + " with no known implementation"
			}
			for _, impl := range cs.Impls {
				ikey := analysis.KeyOf(impl)
				if st, ok := stat[ikey]; ok {
					if st.alloc != "" && alloc == "" {
						alloc = ikey + ": " + st.alloc
					}
					if st.opaque != "" && opaque == "" {
						opaque = ikey + ": " + st.opaque
					}
					continue
				}
				if why, ok := pass.Facts.Detail(pass.Analyzer.Name, ikey, factAllocates); ok && alloc == "" {
					alloc = ikey + ": " + why
				}
				if why, ok := pass.Facts.Detail(pass.Analyzer.Name, ikey, factOpaque); ok && opaque == "" {
					opaque = ikey + ": " + why
				}
				if !isModuleFunc(impl) && !stdlibAllowed(impl) && opaque == "" {
					opaque = ikey + " not allocation-free-listed"
				}
			}
			return alloc, opaque
		}
		key := analysis.KeyOf(cs.Callee)
		if st, ok := stat[key]; ok { // same package
			if st.alloc != "" {
				return cs.Callee.Name() + ": " + st.alloc, ""
			}
			if st.opaque != "" {
				return "", cs.Callee.Name() + ": " + st.opaque
			}
			return "", ""
		}
		if isModuleFunc(cs.Callee) {
			// Another module package: trust its facts; absence of
			// facts means it was analyzed clean (the drivers run
			// dependencies first) or was never analyzed, in which
			// case the whole-module runs in CI still see it.
			if why, ok := pass.Facts.Detail(pass.Analyzer.Name, key, factAllocates); ok {
				return name + ": " + why, ""
			}
			if why, ok := pass.Facts.Detail(pass.Analyzer.Name, key, factOpaque); ok {
				return "", name + ": " + why
			}
			return "", ""
		}
		if cs.Callee.Pkg() != nil && cs.Callee.Pkg().Path() == "fmt" {
			return "call to fmt." + cs.Callee.Name(), ""
		}
		if stdlibAllowed(cs.Callee) {
			return "", ""
		}
		return "", "calls " + name + " (not allocation-free-listed)"
	}

	// In-package fixpoint: propagate callee summaries through the
	// call graph in deterministic order until stable.
	for changed := true; changed; {
		changed = false
		for _, fi := range g.Funcs {
			st := stat[fi.Key]
			if st.cold || (st.alloc != "" && st.opaque != "") {
				continue
			}
			for _, cs := range fi.Calls {
				if pass.Allowed(cs.Pos) {
					continue
				}
				alloc, opaque := resolve(cs)
				if alloc != "" && st.alloc == "" {
					st.alloc = truncate(alloc)
					changed = true
				}
				if opaque != "" && st.opaque == "" {
					st.opaque = truncate(opaque)
					changed = true
				}
			}
		}
	}

	for _, fi := range g.Funcs {
		st := stat[fi.Key]
		if st.cold {
			continue
		}
		if st.alloc != "" {
			pass.ExportFact(fi.Fn, factAllocates, st.alloc)
		}
		if st.opaque != "" {
			pass.ExportFact(fi.Fn, factOpaque, st.opaque)
		}
	}

	// Report inside annotated functions: constructs at their own
	// position, transitive causes at the offending call site.
	for _, fi := range g.Funcs {
		if !annotated[fi.Key] {
			continue
		}
		name := fi.Fn.Name()
		for _, c := range constructs[fi.Key] {
			pass.Reportf(c.pos, "%s in //chime:noalloc function %s", c.desc, name)
		}
		for _, cs := range fi.Calls {
			if pass.Allowed(cs.Pos) {
				continue
			}
			alloc, opaque := resolve(cs)
			if alloc != "" {
				pass.Reportf(cs.Pos, "call allocates (%s) in //chime:noalloc function %s", truncate(alloc), name)
			} else if opaque != "" {
				pass.Reportf(cs.Pos, "call cannot be verified allocation-free (%s) in //chime:noalloc function %s", truncate(opaque), name)
			}
		}
	}
	return nil, nil
}

// truncate keeps transitive cause chains readable.
func truncate(s string) string {
	const max = 120
	if len(s) > max {
		return s[:max] + "..."
	}
	return s
}

func calleeName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	if recv := analysis.ReceiverNamed(fn); recv != "" {
		return recv + "." + fn.Name()
	}
	return fn.Pkg().Name() + "." + fn.Name()
}

func isModuleFunc(fn *types.Func) bool {
	return fn.Pkg() != nil && (fn.Pkg().Path() == "chime" || strings.HasPrefix(fn.Pkg().Path(), "chime/"))
}

func stdlibAllowed(fn *types.Func) bool {
	if fn.Pkg() == nil {
		// Universe scope: error.Error etc. — no allocation.
		return true
	}
	names := allowedStdlib[fn.Pkg().Path()]
	return names != nil && (names["*"] || names[fn.Name()])
}

// directives parses the function's doc comment for //chime:noalloc
// and //chime:coldalloc.
func directives(decl *ast.FuncDecl) (noalloc, cold bool, coldReason string) {
	if decl.Doc == nil {
		return false, false, ""
	}
	for _, c := range decl.Doc.List {
		switch {
		case c.Text == "//chime:noalloc" || strings.HasPrefix(c.Text, "//chime:noalloc "):
			noalloc = true
		case strings.HasPrefix(c.Text, "//chime:coldalloc"):
			cold = true
			coldReason = strings.TrimSpace(strings.TrimPrefix(c.Text, "//chime:coldalloc"))
		}
	}
	return noalloc, cold, coldReason
}

// kindOfOpaqueCall reports whether a Callee-less call is a genuine
// dynamic call (through a function value) rather than a builtin or a
// type conversion.
func kindOfOpaqueCall(info *types.Info, call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	}
	if id != nil {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			return false
		}
	}
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return false
	}
	return true
}

// collect walks one declaration body and returns its direct
// allocating constructs, skipping any carrying a `//lint:allow
// noalloc <reason>` directive.
func collect(pass *analysis.Pass, decl *ast.FuncDecl) []construct {
	info := pass.TypesInfo
	var out []construct
	add := func(pos token.Pos, desc string) {
		if pass.Allowed(pos) {
			return
		}
		out = append(out, construct{pos: pos, desc: desc})
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			collectCall(info, n, add)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					add(n.Pos(), "heap-escaping composite literal (&T{})")
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					add(n.Pos(), "slice literal")
				case *types.Map:
					add(n.Pos(), "map literal")
				}
			}
		case *ast.FuncLit:
			if v := capturedVar(info, n, decl); v != "" {
				add(n.Pos(), "closure capturing "+v)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isNonConstString(info, n) {
				add(n.Pos(), "string concatenation")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info, n.Lhs[0]) {
				add(n.Pos(), "string concatenation (+=)")
			}
			for _, lhs := range n.Lhs {
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					if tv, ok := info.Types[ix.X]; ok && tv.Type != nil {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
							add(n.Pos(), "map insert (may grow)")
						}
					}
				}
			}
		case *ast.GoStmt:
			add(n.Pos(), "go statement")
		}
		return true
	})
	return out
}

// collectCall handles the call-shaped constructs: allocating builtins,
// allocating conversions, and interface boxing of arguments.
func collectCall(info *types.Info, call *ast.CallExpr, add func(token.Pos, string)) {
	fun := ast.Unparen(call.Fun)

	// Allocating builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				add(call.Pos(), "make")
			case "new":
				add(call.Pos(), "new")
			case "append":
				add(call.Pos(), "append (may grow)")
			}
			return
		}
	}

	// Conversions.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		if ctv, ok := info.Types[call]; ok && ctv.Value != nil {
			return // constant-folded
		}
		if len(call.Args) != 1 {
			return
		}
		src, ok := info.Types[call.Args[0]]
		if !ok || src.Type == nil {
			return
		}
		dst := tv.Type.Underlying()
		switch dst := dst.(type) {
		case *types.Slice:
			if b, ok := dst.Elem().(*types.Basic); ok && (b.Kind() == types.Byte || b.Kind() == types.Rune) {
				if isString(src.Type) {
					add(call.Pos(), "string to []byte/[]rune conversion")
				}
			}
		case *types.Basic:
			if dst.Info()&types.IsString != 0 {
				if _, ok := src.Type.Underlying().(*types.Slice); ok {
					add(call.Pos(), "[]byte to string conversion")
				}
			}
		case *types.Interface:
			if !types.IsInterface(src.Type) {
				add(call.Pos(), "interface conversion")
			}
		}
		return
	}

	// Interface boxing of arguments.
	sig := signatureOf(info, fun)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed whole, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type()
			if s, ok := pt.Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at, ok := info.Types[arg]
		if !ok || at.Type == nil || at.IsNil() || types.IsInterface(at.Type) {
			continue
		}
		add(arg.Pos(), "interface boxing (arg to "+pt.String()+" param)")
	}
}

func signatureOf(info *types.Info, fun ast.Expr) *types.Signature {
	tv, ok := info.Types[fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isStringType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Type != nil && isString(tv.Type)
}

func isNonConstString(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Type != nil && isString(tv.Type) && tv.Value == nil
}

// capturedVar returns the name of a variable the literal captures from
// its enclosing function (forcing a heap-allocated closure), or "".
func capturedVar(info *types.Info, lit *ast.FuncLit, decl *ast.FuncDecl) string {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured iff declared inside the enclosing declaration
		// (parameters included) but outside the literal itself.
		if v.Pos() >= decl.Pos() && v.Pos() < lit.Pos() {
			captured = v.Name()
		}
		return true
	})
	return captured
}
