package lockorder_test

import (
	"testing"

	"chime/internal/analysis/analysistest"
	"chime/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	// Dependencies first: dmsim's cross-package case consumes the
	// acquire-set facts of locktable and folio.
	analysistest.Run(t, "testdata", lockorder.Analyzer,
		"chime/internal/locktable",
		"chime/internal/folio",
		"chime/internal/dmsim",
	)
}
