// Package locktable is a lockorder fixture stand-in for the real
// chime/internal/locktable: Table.mu is the rank-1 "locktable" class.
package locktable

import "sync"

// Table is the stand-in lock table.
type Table struct {
	mu sync.Mutex
	m  map[uint64]int
}

// Acquire takes the table mutex — its "acquires locktable" fact must
// cross the package boundary.
func (t *Table) Acquire(addr uint64) bool {
	t.mu.Lock()
	t.m[addr]++
	free := t.m[addr] == 1
	t.mu.Unlock()
	return free
}
