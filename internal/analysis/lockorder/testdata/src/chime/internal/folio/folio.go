// Package folio is a lockorder fixture stand-in for the real
// chime/internal/folio: Store.mu is the rank-6 "folio" class.
package folio

import "sync"

// Store is the stand-in durable store.
type Store struct {
	mu  sync.Mutex
	log [][]byte
}

// AppendWrite appends under the store mutex.
func (s *Store) AppendWrite(rec []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log = append(s.log, rec)
}

// BadReenter calls a mu-taking method while already holding mu via a
// deferred unlock — same-class nesting, a self-deadlock.
func (s *Store) BadReenter(rec []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.AppendWrite(rec) // want `call to AppendWrite may acquire folio lock \(rank 6\) while holding folio lock \(rank 6\)`
}
