// Package dmsim is a lockorder fixture stand-in for the real
// simulator: stripe, nicshard, loop and lane lock classes plus
// cross-package calls into folio and locktable.
package dmsim

import (
	"sync"

	"chime/internal/folio"
	"chime/internal/locktable"
)

type memoryNode struct {
	locks [4]sync.Mutex
	st    *folio.Store
	tab   *locktable.Table
}

// casLock returns the stripe mutex guarding off.
func (m *memoryNode) casLock(off uint64) *sync.Mutex {
	return &m.locks[off%4]
}

type nicShard struct {
	mu    sync.Mutex
	verbs int64
}

type evLane struct {
	mu      sync.Mutex
	pending []int32
}

type evLoop struct {
	mu    sync.Mutex
	lanes []evLane
}

// join nests lane under loop — ascending ranks, clean.
func (l *evLoop) join(i int) {
	l.mu.Lock()
	lane := &l.lanes[i]
	lane.mu.Lock()
	lane.pending = lane.pending[:0]
	lane.mu.Unlock()
	l.mu.Unlock()
}

// put holds a stripe while appending to the folio store — ascending
// ranks (stripe 5 < folio 6), clean.
func (m *memoryNode) put(off uint64, rec []byte) {
	lk := m.casLock(off)
	lk.Lock()
	m.st.AppendWrite(rec)
	lk.Unlock()
}

// badShard grabs a NIC shard under a stripe — rank inversion.
func (m *memoryNode) badShard(s *nicShard, off uint64) {
	lk := m.casLock(off)
	lk.Lock()
	s.mu.Lock() // want `acquires nicshard lock \(rank 4\) while holding stripe lock \(rank 5\)`
	s.verbs++
	s.mu.Unlock()
	lk.Unlock()
}

// badInvert takes the loop lock under a lane lock — rank inversion.
func (l *evLoop) badInvert(lane *evLane) {
	lane.mu.Lock()
	l.mu.Lock() // want `acquires loop lock \(rank 2\) while holding lane lock \(rank 3\)`
	l.mu.Unlock()
	lane.mu.Unlock()
}

// badCallUnder calls into the lock table while holding a stripe — the
// callee's acquire-set arrives via cross-package facts.
func (m *memoryNode) badCallUnder(off uint64) {
	lk := m.casLock(off)
	lk.Lock()
	m.tab.Acquire(off) // want `call to Acquire may acquire locktable lock \(rank 1\) while holding stripe lock \(rank 5\)`
	lk.Unlock()
}

// badDouble nests two stripes — same-class nesting is flagged because
// nothing orders stripe indices.
func (m *memoryNode) badDouble(a, b uint64) {
	la := m.casLock(a)
	lb := m.casLock(b)
	la.Lock()
	lb.Lock() // want `acquires stripe lock \(rank 5\) while holding stripe lock \(rank 5\)`
	lb.Unlock()
	la.Unlock()
}
