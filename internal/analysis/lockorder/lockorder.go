// Package lockorder defines an interprocedural analyzer enforcing a
// partial order over the simulator's host-side mutexes.
//
// The deadlock-relevant locks are declared once, with ranks:
//
//	locktable(1) < loop(2) < lane(3) < nicshard(4) < stripe(5) < folio(6)
//
// matching the nestings the code actually performs (the event loop
// takes a lane lock under the loop lock; a stripe lock is held while
// the persistence plane appends to the folio store). Acquiring a class
// with rank less than or equal to any held class — directly, or
// through a call whose transitive acquire-set (facts, including
// interface implementations) contains one — is reported.
//
// The held-set tracking is a linear source-order scan per function:
// Lock/Unlock on classified expressions (struct fields, stripe array
// elements, locals assigned from classifying sources such as
// memoryNode.casLock, deferred unlocks pinning the lock to function
// end). Branches are not path-sensitive — a conditional early unlock
// makes the remainder of the function appear unlocked — so the
// analyzer under-approximates; what it does flag is a real ordering
// inversion on at least one syntactic path.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"chime/internal/analysis"
)

// Analyzer flags lock acquisitions that invert the declared partial
// order over dmsim stripe locks, NIC shard locks, event-loop locks,
// locktable and folio mutexes.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "host-side mutexes must be acquired in the declared partial order " +
		"(locktable < loop < lane < nicshard < stripe < folio)",
	Run: run,
}

const factAcquires = "acquires"

// lockClass is one declared lock class: the (package, type, field)
// triple that identifies its mutexes, and its rank in the order.
type lockClass struct {
	name            string
	rank            int
	pkg, typ, field string
}

var classes = []lockClass{
	{"locktable", 1, "chime/internal/locktable", "Table", "mu"},
	{"loop", 2, "chime/internal/dmsim", "evLoop", "mu"},
	{"lane", 3, "chime/internal/dmsim", "evLane", "mu"},
	{"nicshard", 4, "chime/internal/dmsim", "nicShard", "mu"},
	{"stripe", 5, "chime/internal/dmsim", "memoryNode", "locks"},
	{"folio", 6, "chime/internal/folio", "Store", "mu"},
}

// producers are methods returning a classified mutex, so locals
// assigned from them classify too (lk := m.casLock(off); lk.Lock()).
var producers = map[string]string{
	"(chime/internal/dmsim.memoryNode).casLock": "stripe",
}

var byName = func() map[string]lockClass {
	m := make(map[string]lockClass, len(classes))
	for _, c := range classes {
		m[c.name] = c
	}
	return m
}()

func orderString() string {
	s := ""
	for i, c := range classes {
		if i > 0 {
			s += " < "
		}
		s += c.name
	}
	return s
}

// classifyField matches a selector x.f (or x.f[i]'s base) against the
// class table.
func classifyField(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	field, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !field.IsField() || field.Pkg() == nil {
		return "", false
	}
	base := info.Types[sel.X].Type
	if base == nil {
		return "", false
	}
	if p, ok := base.(*types.Pointer); ok {
		base = p.Elem()
	}
	named, ok := base.(*types.Named)
	if !ok {
		return "", false
	}
	for _, c := range classes {
		if field.Pkg().Path() == c.pkg && named.Obj().Name() == c.typ && field.Name() == c.field {
			return c.name, true
		}
	}
	return "", false
}

// classifier resolves lock-valued expressions to class names within
// one function, tracking locals assigned from classifying sources.
type classifier struct {
	info *types.Info
	vars map[*types.Var]string
}

func (c *classifier) classify(e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return classifyField(c.info, e)
	case *ast.IndexExpr:
		// Stripe arrays: m.locks[i].
		if sel, ok := ast.Unparen(e.X).(*ast.SelectorExpr); ok {
			return classifyField(c.info, sel)
		}
		return "", false
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return c.classify(e.X)
		}
		return "", false
	case *ast.Ident:
		v, ok := c.info.Uses[e].(*types.Var)
		if !ok {
			return "", false
		}
		name, ok := c.vars[v]
		return name, ok
	case *ast.CallExpr:
		if fn := analysis.FuncOf(c.info, e); fn != nil {
			name, ok := producers[analysis.KeyOf(fn)]
			return name, ok
		}
		return "", false
	}
	return "", false
}

// event is one lock-relevant occurrence in source order.
type event struct {
	pos      token.Pos
	class    string             // for acquire/release
	call     *analysis.CallSite // for calls into other functions
	acquire  bool
	release  bool
	deferred bool
}

// scan extracts the event sequence of one function.
func scan(info *types.Info, fi *analysis.FuncInfo) []event {
	cl := &classifier{info: info, vars: make(map[*types.Var]string)}
	// Prepass: locals assigned from classifying sources, anywhere in
	// the body (source order does not matter for classification).
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			name, ok := cl.classify(rhs)
			if !ok {
				continue
			}
			if id, ok := assign.Lhs[i].(*ast.Ident); ok {
				if v, ok := info.Defs[id].(*types.Var); ok {
					cl.vars[v] = name
				} else if v, ok := info.Uses[id].(*types.Var); ok {
					cl.vars[v] = name
				}
			}
		}
		return true
	})

	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})

	var events []event
	calls := make(map[*ast.CallExpr]*analysis.CallSite, len(fi.Calls))
	for i := range fi.Calls {
		calls[fi.Calls[i].Call] = &fi.Calls[i]
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Lock", "RLock", "TryLock", "TryRLock":
				if name, ok := cl.classify(sel.X); ok {
					events = append(events, event{pos: call.Pos(), class: name, acquire: true, deferred: deferred[call]})
					return true
				}
			case "Unlock", "RUnlock":
				if name, ok := cl.classify(sel.X); ok {
					events = append(events, event{pos: call.Pos(), class: name, release: true, deferred: deferred[call]})
					return true
				}
			}
		}
		if cs := calls[call]; cs != nil && cs.Callee != nil {
			events = append(events, event{pos: call.Pos(), call: cs})
		}
		return true
	})
	return events
}

func run(pass *analysis.Pass) (any, error) {
	g := pass.Graph()
	info := pass.TypesInfo

	events := make(map[string][]event, len(g.Funcs))
	acq := make(map[string]map[string]bool, len(g.Funcs)) // key -> transitive acquire-set
	for _, fi := range g.Funcs {
		evs := scan(info, fi)
		events[fi.Key] = evs
		set := make(map[string]bool)
		for _, ev := range evs {
			if ev.acquire {
				set[ev.class] = true
			}
		}
		acq[fi.Key] = set
	}

	// calleeSet resolves the acquire-set of one call: same-package
	// fixpoint state, imported facts, and the union over interface
	// implementations.
	calleeSet := func(cs *analysis.CallSite) []string {
		set := make(map[string]bool)
		addFrom := func(key string) {
			if s, ok := acq[key]; ok {
				for c := range s {
					set[c] = true
				}
				return
			}
			for _, f := range pass.Facts.Lookup(pass.Analyzer.Name, key) {
				if f.Name == factAcquires {
					set[f.Detail] = true
				}
			}
		}
		addFrom(analysis.KeyOf(cs.Callee))
		if cs.Iface {
			for _, impl := range cs.Impls {
				addFrom(analysis.KeyOf(impl))
			}
		}
		out := make([]string, 0, len(set))
		for c := range set {
			out = append(out, c)
		}
		sort.Strings(out)
		return out
	}

	// Fixpoint: fold callee sets into callers until stable.
	for changed := true; changed; {
		changed = false
		for _, fi := range g.Funcs {
			set := acq[fi.Key]
			for _, ev := range events[fi.Key] {
				if ev.call == nil {
					continue
				}
				for _, c := range calleeSet(ev.call) {
					if !set[c] {
						set[c] = true
						changed = true
					}
				}
			}
		}
	}

	for _, fi := range g.Funcs {
		set := make([]string, 0, len(acq[fi.Key]))
		for c := range acq[fi.Key] {
			set = append(set, c)
		}
		sort.Strings(set)
		for _, c := range set {
			pass.ExportFact(fi.Fn, factAcquires, c)
		}
	}

	// Violation pass: replay each function's events against a held
	// multiset.
	for _, fi := range g.Funcs {
		held := make(map[string]int)
		worstHeld := func(rank int) (string, bool) {
			worst, found := "", false
			for c, n := range held {
				if n <= 0 {
					continue
				}
				if byName[c].rank >= rank && (!found || byName[c].rank > byName[worst].rank || (byName[c].rank == byName[worst].rank && c < worst)) {
					worst, found = c, true
				}
			}
			return worst, found
		}
		for _, ev := range events[fi.Key] {
			switch {
			case ev.acquire:
				c := byName[ev.class]
				if h, bad := worstHeld(c.rank); bad {
					pass.Reportf(ev.pos, "acquires %s lock (rank %d) while holding %s lock (rank %d); required order: %s",
						c.name, c.rank, h, byName[h].rank, orderString())
				}
				held[ev.class]++
			case ev.release:
				if ev.deferred {
					continue // held to function end
				}
				if held[ev.class] > 0 {
					held[ev.class]--
				}
			case ev.call != nil:
				for _, c := range calleeSet(ev.call) {
					if h, bad := worstHeld(byName[c].rank); bad {
						pass.Reportf(ev.pos, "call to %s may acquire %s lock (rank %d) while holding %s lock (rank %d); required order: %s",
							ev.call.Callee.Name(), c, byName[c].rank, h, byName[h].rank, orderString())
					}
				}
			}
		}
	}
	return nil, nil
}
