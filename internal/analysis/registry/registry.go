// Package registry enumerates the chimelint analyzer suite in one
// place, shared by cmd/chimelint and its tests.
package registry

import (
	"chime/internal/analysis"
	"chime/internal/analysis/dmerrors"
	"chime/internal/analysis/durableio"
	"chime/internal/analysis/lockword"
	"chime/internal/analysis/obsnames"
	"chime/internal/analysis/seededrand"
	"chime/internal/analysis/verbgate"
	"chime/internal/analysis/virtualclock"
)

// All returns every analyzer chimelint runs, in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		virtualclock.Analyzer,
		seededrand.Analyzer,
		verbgate.Analyzer,
		lockword.Analyzer,
		dmerrors.Analyzer,
		obsnames.Analyzer,
		durableio.Analyzer,
	}
}
