// Package registry enumerates the chimelint analyzer suite in one
// place, shared by cmd/chimelint and its tests.
package registry

import (
	"chime/internal/analysis"
	"chime/internal/analysis/dmerrors"
	"chime/internal/analysis/durableio"
	"chime/internal/analysis/lockorder"
	"chime/internal/analysis/lockword"
	"chime/internal/analysis/maporder"
	"chime/internal/analysis/noalloc"
	"chime/internal/analysis/obsnames"
	"chime/internal/analysis/seededrand"
	"chime/internal/analysis/verbgate"
	"chime/internal/analysis/virtualclock"
)

// All returns every analyzer chimelint runs, in stable order: the
// per-package seven first, then the interprocedural three (maporder,
// noalloc, lockorder), which consume the fact flow the drivers thread
// through packages in dependency order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		virtualclock.Analyzer,
		seededrand.Analyzer,
		verbgate.Analyzer,
		lockword.Analyzer,
		dmerrors.Analyzer,
		obsnames.Analyzer,
		durableio.Analyzer,
		maporder.Analyzer,
		noalloc.Analyzer,
		lockorder.Analyzer,
	}
}
