// Facts: the cross-package function-summary store.
//
// An interprocedural analyzer summarises each function it sees ("this
// function may allocate", "this function acquires the folio lock",
// "this function reaches an order-sensitive sink") and exports the
// summary as a Fact. When a dependent package is analyzed later, the
// same analyzer consumes the facts of the packages it imports instead
// of re-analyzing their bodies. The driver — standalone chimelint or
// the go vet unitchecker — is responsible for analyzing packages in
// dependency order and threading the accumulated FactSet through.
//
// Everything here is deterministic by construction: facts are stored
// sorted and deduplicated, Dump emits a canonical line-oriented text
// encoding, and the same package set always produces byte-identical
// output. That matters because lint output is itself pinned
// bit-identical (see cmd/chimelint's double-run test), and because the
// vetx files exchanged with the go command are content-hashed by the
// build cache.
package analysis

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"go/types"
)

// Fact is one exported summary statement about one function.
type Fact struct {
	// Fn is the canonical key of the function the fact describes,
	// as produced by KeyOf: "pkgpath.Name" for package-level
	// functions, "(pkgpath.Type).Name" for methods.
	Fn string
	// Analyzer is the name of the analyzer that exported the fact.
	Analyzer string
	// Name identifies the kind of fact within the analyzer's
	// vocabulary (e.g. "allocates", "acquires", "sink").
	Name string
	// Detail is a human-readable qualifier: the allocating
	// construct, the lock class, the sink reached. It is part of
	// the fact's identity (two facts differing only in Detail are
	// both kept) so set-valued summaries — a function acquiring
	// three lock classes — are expressed as three facts.
	Detail string
}

// KeyOf returns the canonical cross-package key for a function:
// "pkgpath.Name" for package-level functions and "(pkgpath.Type).Name"
// for methods (pointer receivers are stripped, so (T).M and (*T).M
// share a key). Interface methods key on the interface's named type.
// The empty string is returned for nil.
func KeyOf(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		switch t := t.(type) {
		case *types.Named:
			return "(" + pkg + "." + t.Obj().Name() + ")." + fn.Name()
		case *types.Interface:
			return "(" + pkg + ".interface)." + fn.Name()
		default:
			return "(" + pkg + ".?)." + fn.Name()
		}
	}
	return pkg + "." + fn.Name()
}

// FactSet is a deduplicated, order-independent collection of facts.
// The zero value is not usable; call NewFactSet. A nil *FactSet is
// safe to query (all lookups miss).
type FactSet struct {
	facts map[Fact]struct{}
}

// NewFactSet returns an empty fact set.
func NewFactSet() *FactSet { return &FactSet{facts: make(map[Fact]struct{})} }

// sanitize strips the characters the text encoding reserves.
func sanitize(s string) string {
	s = strings.ReplaceAll(s, "\t", " ")
	s = strings.ReplaceAll(s, "\n", " ")
	return s
}

// Add records a fact. Tabs and newlines in any field are replaced with
// spaces so the canonical encoding stays line- and tab-delimited.
func (s *FactSet) Add(f Fact) {
	f.Fn = sanitize(f.Fn)
	f.Analyzer = sanitize(f.Analyzer)
	f.Name = sanitize(f.Name)
	f.Detail = sanitize(f.Detail)
	s.facts[f] = struct{}{}
}

// Merge adds every fact of o into s. A nil o is a no-op.
func (s *FactSet) Merge(o *FactSet) {
	if o == nil {
		return
	}
	for f := range o.facts {
		s.facts[f] = struct{}{}
	}
}

// Len reports the number of distinct facts.
func (s *FactSet) Len() int {
	if s == nil {
		return 0
	}
	return len(s.facts)
}

// Has reports whether any fact by analyzer about fn with the given
// name exists, regardless of detail.
func (s *FactSet) Has(analyzer, fn, name string) bool {
	_, ok := s.first(analyzer, fn, name)
	return ok
}

// Detail returns the lexically smallest detail of the matching facts,
// and whether any matched. Useful for diagnostics when any one cause
// suffices.
func (s *FactSet) Detail(analyzer, fn, name string) (string, bool) {
	return s.first(analyzer, fn, name)
}

func (s *FactSet) first(analyzer, fn, name string) (string, bool) {
	if s == nil {
		return "", false
	}
	best, ok := "", false
	for f := range s.facts {
		if f.Analyzer == analyzer && f.Fn == fn && f.Name == name {
			if !ok || f.Detail < best {
				best, ok = f.Detail, true
			}
		}
	}
	return best, ok
}

// Lookup returns all facts by analyzer about fn, sorted by (Name,
// Detail).
func (s *FactSet) Lookup(analyzer, fn string) []Fact {
	if s == nil {
		return nil
	}
	var out []Fact
	for f := range s.facts {
		if f.Analyzer == analyzer && f.Fn == fn {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Detail < out[j].Detail
	})
	return out
}

// All returns every fact sorted by (Fn, Analyzer, Name, Detail). This
// is the canonical order used by Dump.
func (s *FactSet) All() []Fact {
	if s == nil {
		return nil
	}
	out := make([]Fact, 0, len(s.facts))
	for f := range s.facts {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Fn != b.Fn {
			return a.Fn < b.Fn
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Detail < b.Detail
	})
	return out
}

// Dump writes the canonical text encoding: one fact per line,
// tab-separated fields, sorted. The encoding round-trips through
// ReadFacts and is byte-identical for equal sets.
func (s *FactSet) Dump(w io.Writer) error {
	for _, f := range s.All() {
		if _, err := fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", f.Fn, f.Analyzer, f.Name, f.Detail); err != nil {
			return err
		}
	}
	return nil
}

// DumpString returns Dump's output as a string.
func (s *FactSet) DumpString() string {
	var b strings.Builder
	_ = s.Dump(&b) // strings.Builder writes cannot fail
	return b.String()
}

// ReadFacts parses the encoding produced by Dump. Blank lines are
// ignored; malformed lines are an error. An empty input yields an
// empty, usable set.
func ReadFacts(r io.Reader) (*FactSet, error) {
	s := NewFactSet()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, "\t", 4)
		if len(parts) != 4 {
			return nil, fmt.Errorf("analysis: malformed fact line %q", line)
		}
		s.Add(Fact{Fn: parts[0], Analyzer: parts[1], Name: parts[2], Detail: parts[3]})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("analysis: reading facts: %w", err)
	}
	return s, nil
}
