// Package analysistest runs an analyzer over fixture packages and
// checks its findings against `// want` expectations, mirroring the
// x/tools package of the same name. A fixture tree lives under
// testdata/src, with each package at its import path — including
// stand-ins for real paths (a stub chime/internal/dmsim, say) so
// analyzers that key on import paths see the names they expect.
//
// Expectations are written on the offending line:
//
//	_ = time.Now() // want `time\.Now`
//
// Each quoted or backquoted string is a regexp that must match the
// message of a distinct diagnostic reported on that line; diagnostics
// with no matching want, and wants with no matching diagnostic, fail
// the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"chime/internal/analysis"
)

// Run loads each fixture package from testdata/src and applies the
// analyzer, comparing findings to // want comments. Facts exported by
// earlier packages are visible to later ones, so fixtures exercising
// cross-package summaries must list dependency packages before their
// dependents (the order interprocedural drivers guarantee).
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	pkgs, err := analysis.LoadTree(testdata+"/src", pkgpaths...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	facts := analysis.NewFactSet()
	for _, pkg := range pkgs {
		for _, err := range pkg.TypeErrs {
			t.Errorf("fixture %s does not type-check: %v", pkg.PkgPath, err)
		}
		if len(pkg.TypeErrs) > 0 {
			continue
		}
		findings, exported, err := analysis.Run(pkg, []*analysis.Analyzer{a}, facts)
		if err != nil {
			t.Fatalf("%s: %v", pkg.PkgPath, err)
		}
		facts.Merge(exported)
		checkWants(t, pkg, findings)
	}
}

type want struct {
	file    string
	line    int
	pattern string
	matched bool
}

func checkWants(t *testing.T, pkg *analysis.Package, findings []analysis.Finding) {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Syntax {
		wants = append(wants, collectWants(t, pkg, f)...)
	}
	for _, f := range findings {
		ok := false
		for _, w := range wants {
			if w.matched || w.file != f.Pos.Filename || w.line != f.Pos.Line {
				continue
			}
			m, err := regexp.MatchString(w.pattern, f.Message)
			if err != nil {
				t.Errorf("%s:%d: bad want pattern %q: %v", w.file, w.line, w.pattern, err)
				w.matched = true
				continue
			}
			if m {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.pattern)
		}
	}
}

func collectWants(t *testing.T, pkg *analysis.Package, f *ast.File) []*want {
	t.Helper()
	var out []*want
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			i := strings.Index(text, "// want ")
			if i < 0 {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			pats, err := parsePatterns(text[i+len("// want "):])
			if err != nil {
				t.Errorf("%s:%d: malformed want comment: %v", pos.Filename, pos.Line, err)
				continue
			}
			for _, p := range pats {
				out = append(out, &want{file: pos.Filename, line: pos.Line, pattern: p})
			}
		}
	}
	return out
}

// parsePatterns splits `"re1" `+"`re2`"+` ...` into its pattern strings.
func parsePatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
				end++
			}
			if end == len(s) {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			p, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			out = append(out, p)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			out = append(out, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			return nil, fmt.Errorf("expected quoted pattern at %q", s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no patterns")
	}
	return out, nil
}
