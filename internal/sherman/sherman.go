// Package sherman implements the Sherman baseline (SIGMOD '22): a
// write-optimized B+ tree on disaggregated memory, enhanced — as the
// CHIME paper's evaluation does — with two-level cache-line versions in
// place of its original (incorrect) bookend versioning.
//
// Sherman is the KV-contiguous baseline: leaf nodes store entries
// contiguously, so the compute-side cache only needs internal nodes
// (low cache consumption), but every point query fetches an entire leaf
// node (read amplification = span size). Writes are fine-grained: an
// update writes one entry plus the combined unlock, not the whole node.
//
// The remote layouts reuse internal/nodelayout, and the fabric is the
// same internal/dmsim pool CHIME runs on, so head-to-head benchmarks
// measure index design, not substrate differences.
package sherman

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sort"

	"chime/internal/dmsim"
	"chime/internal/nodelayout"
	"chime/internal/offroute"
)

// Options configures a Sherman tree.
type Options struct {
	// SpanSize is the number of entries per node. Paper default: 64.
	SpanSize int
	// ValueSize is the inline value size in bytes.
	ValueSize int
	// KeySize models the on-wire key size (>= 8).
	KeySize int
	// Indirect stores an 8-byte pointer per entry with the KV block
	// elsewhere (the Marlin-style variable-length variant).
	Indirect bool
	// LeaseLocks stamps an (owner, expiry) lease into every remote lock
	// so survivors can steal locks from crashed holders (internal/lease).
	// Lease mode bypasses the same-CN lock table: a local handover would
	// hand a waiter the holder's lease.
	LeaseLocks bool
	// LeaseNs is the lease duration in virtual nanoseconds (zero =
	// lease.DefaultNs).
	LeaseNs int64
	// Offload selects the hybrid one-sided/RPC protocol: per-op routing
	// between one-sided traversal and the MN-side program registered at
	// bootstrap (mnprog.go). Zero = pure one-sided (today's behavior).
	Offload offroute.Mode
}

// DefaultOptions returns the paper's default Sherman configuration.
func DefaultOptions() Options {
	return Options{SpanSize: 64, ValueSize: 8, KeySize: 8}
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.SpanSize < 2 || o.SpanSize > 1024 {
		return fmt.Errorf("sherman: SpanSize %d out of [2,1024]", o.SpanSize)
	}
	if !o.Indirect && (o.ValueSize < 1 || o.ValueSize > 4096) {
		return fmt.Errorf("sherman: ValueSize %d out of [1,4096]", o.ValueSize)
	}
	if o.KeySize < 8 || o.KeySize > 256 {
		return fmt.Errorf("sherman: KeySize %d out of [8,256]", o.KeySize)
	}
	if o.LeaseNs < 0 {
		return fmt.Errorf("sherman: negative LeaseNs")
	}
	return nil
}

// ErrNotFound reports an absent key.
var ErrNotFound = errors.New("sherman: key not found")

var errRestart = errors.New("sherman: restart traversal")

const (
	maxRetries  = 100000
	lineSize    = nodelayout.LineSize
	localWorkNs = 150

	flagValid    = 1 << 0
	flagFenceInf = 1 << 1
	flagOccupied = 1 << 0
	flagLeaf     = 1 << 2
)

// layout is the derived geometry shared by internal and leaf nodes.
// Both node kinds use the same frame: a lock word, a header cell and
// span entry cells; internal entries hold (pivot, child), leaf entries
// hold (key, value).
type layout struct {
	span     int
	keySize  int
	valSize  int
	indirect bool

	header     nodelayout.Cell
	entryCells []nodelayout.Cell
	allCells   []nodelayout.Cell
	size       int
}

// Header content: [1B flags][1B level][2B nkeys][8B fenceLow]
// [8B fenceHigh][8B sibling][8B leftmost].
const headerContent = 1 + 1 + 2 + 8 + 8 + 8 + 8

func newLayout(o Options, leaf bool) *layout {
	l := &layout{span: o.SpanSize, keySize: o.KeySize, valSize: o.ValueSize, indirect: o.Indirect}
	if o.Indirect {
		l.valSize = 8
	}
	entryContent := 1 + l.keySize + 8 // flags + key + child/value word
	if leaf && !o.Indirect {
		entryContent = 1 + l.keySize + l.valSize
	}
	contents := []int{headerContent}
	for i := 0; i < o.SpanSize; i++ {
		contents = append(contents, entryContent)
	}
	cells, regionSize := nodelayout.LayoutCells(lineSize, contents)
	l.header = cells[0]
	l.entryCells = cells[1:]
	l.allCells = cells
	l.size = lineSize + regionSize
	return l
}

// header is the decoded node header.
type header struct {
	valid    bool
	fenceInf bool
	level    uint8
	nkeys    int
	fenceLow uint64
	fenceHi  uint64
	sibling  dmsim.GAddr
	leftmost dmsim.GAddr
}

func (l *layout) encodeHeader(img []byte, h header) {
	content := make([]byte, l.header.Content)
	if h.valid {
		content[0] |= flagValid
	}
	if h.fenceInf {
		content[0] |= flagFenceInf
	}
	content[1] = h.level
	binary.LittleEndian.PutUint16(content[2:4], uint16(h.nkeys))
	binary.LittleEndian.PutUint64(content[4:12], h.fenceLow)
	binary.LittleEndian.PutUint64(content[12:20], h.fenceHi)
	binary.LittleEndian.PutUint64(content[20:28], h.sibling.Pack())
	binary.LittleEndian.PutUint64(content[28:36], h.leftmost.Pack())
	nodelayout.WriteCellContent(img, l.header, content)
}

func (l *layout) decodeHeader(img []byte) header {
	content := nodelayout.ReadCellContent(img, l.header, make([]byte, 0, l.header.Content))
	h := header{
		valid:    content[0]&flagValid != 0,
		fenceInf: content[0]&flagFenceInf != 0,
		level:    content[1],
		nkeys:    int(binary.LittleEndian.Uint16(content[2:4])),
		fenceLow: binary.LittleEndian.Uint64(content[4:12]),
		fenceHi:  binary.LittleEndian.Uint64(content[12:20]),
		sibling:  dmsim.UnpackGAddr(binary.LittleEndian.Uint64(content[20:28])),
		leftmost: dmsim.UnpackGAddr(binary.LittleEndian.Uint64(content[28:36])),
	}
	if h.nkeys > l.span {
		h.nkeys = l.span
	}
	return h
}

// entry is one decoded slot: an (occupied, key, word/value) triple. For
// internal nodes word is the packed child address; for leaves it is the
// value bytes (or block pointer).
type entry struct {
	occupied bool
	key      uint64
	val      []byte
}

func (l *layout) encodeEntry(img []byte, i int, e entry, bump bool) {
	c := l.entryCells[i]
	content := make([]byte, c.Content)
	if e.occupied {
		content[0] |= flagOccupied
	}
	binary.LittleEndian.PutUint64(content[1:9], e.key)
	copy(content[1+l.keySize:], e.val)
	nodelayout.WriteCellContent(img, c, content)
	if bump {
		nodelayout.BumpEV(img, c)
	}
}

func (l *layout) decodeEntry(img []byte, i int) entry {
	c := l.entryCells[i]
	content := nodelayout.ReadCellContent(img, c, make([]byte, 0, c.Content))
	return entry{
		occupied: content[0]&flagOccupied != 0,
		key:      binary.LittleEndian.Uint64(content[1:9]),
		val:      content[1+l.keySize:],
	}
}

// Index is one Sherman tree on the fabric.
type Index struct {
	fabric *dmsim.Fabric
	opts   Options
	leaf   *layout
	inner  *layout
	super  dmsim.GAddr

	// mnprog is the MN-side offload program registered at bootstrap;
	// offMN is the MN it is addressed on (the root's MN).
	mnprog dmsim.MNProgramID
	offMN  int
}

// Bootstrap creates an empty tree: a super block plus a root leaf.
func Bootstrap(f *dmsim.Fabric, opts Options) (*Index, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	ix := &Index{
		fabric: f,
		opts:   opts,
		leaf:   newLayout(opts, true),
		inner:  newLayout(opts, false),
	}
	boot := f.NewClient()
	super, err := boot.AllocRPC(0, 8)
	if err != nil {
		return nil, err
	}
	ix.super = super
	leafAddr, err := boot.AllocRPC(0, ix.leaf.size)
	if err != nil {
		return nil, err
	}
	img := make([]byte, ix.leaf.size)
	ix.leaf.encodeHeader(img, header{valid: true, fenceInf: true, level: 0})
	if err := boot.Write(leafAddr, img); err != nil {
		return nil, err
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], packSuper(leafAddr, 0))
	if err := boot.Write(super, b[:]); err != nil {
		return nil, err
	}
	ix.mnprog = f.RegisterMNProgram(&mnProgram{ix: ix})
	ix.offMN = int(super.MN)
	return ix, nil
}

// Attach binds to a tree that already exists on the fabric — a
// warm-started persistent fabric restored from a folio snapshot+log.
// No remote writes are issued; opts must match the bootstrap options.
func Attach(f *dmsim.Fabric, opts Options, super dmsim.GAddr) (*Index, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	ix := &Index{
		fabric: f,
		opts:   opts,
		leaf:   newLayout(opts, true),
		inner:  newLayout(opts, false),
		super:  super,
	}
	ix.mnprog = f.RegisterMNProgram(&mnProgram{ix: ix})
	ix.offMN = int(super.MN)
	return ix, nil
}

// Super returns the super block's address for persistence metadata.
func (ix *Index) Super() dmsim.GAddr { return ix.super }

// Options returns the tree's configuration.
func (ix *Index) Options() Options { return ix.opts }

// LeafNodeSize returns the encoded leaf footprint in bytes.
func (ix *Index) LeafNodeSize() int { return ix.leaf.size }

// InternalNodeSize returns the encoded internal-node footprint.
func (ix *Index) InternalNodeSize() int { return ix.inner.size }

func packSuper(addr dmsim.GAddr, level uint8) uint64 {
	return dmsim.PackTagged(addr, level)
}

func unpackSuper(w uint64) (dmsim.GAddr, uint8) {
	return dmsim.UnpackTagged(w)
}

// yieldState implements capped exponential virtual-time backoff shared
// by retry loops.
type yieldState struct{ backoff int64 }

func (y *yieldState) yield(dc *dmsim.Client) {
	if y.backoff < 64 {
		y.backoff = 64
	} else if y.backoff < 8192 {
		y.backoff *= 2
	}
	dc.Advance(y.backoff)
	runtime.Gosched()
}

func (y *yieldState) reset() { y.backoff = 0 }

// sortEntries returns the occupied entries of a decoded node sorted by
// key; used by splits and scans (Sherman leaves are slot-allocated, not
// kept sorted — an insert touches one slot, preserving the fine-grained
// write property).
func sortEntries(es []entry) []entry {
	out := make([]entry, 0, len(es))
	for _, e := range es {
		if e.occupied {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}
