package sherman

import (
	"encoding/binary"
	"testing"

	"chime/internal/dmsim"
	"chime/internal/ycsb"
)

// TestCrossCNStaleCache: CN1 warms its cache, CN2 splits nodes behind
// its back, and CN1 must detect staleness via fence checks, drop cached
// nodes and still find every key.
func TestCrossCNStaleCache(t *testing.T) {
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 512 << 20
	ix, err := Bootstrap(dmsim.MustNewFabric(cfg), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cn1 := ix.NewComputeNode(64 << 20)
	cn2 := ix.NewComputeNode(64 << 20)
	cl1, cl2 := cn1.NewClient(), cn2.NewClient()

	const phase1 = 800
	for i := uint64(0); i < phase1; i++ {
		if err := cl1.Insert(ycsb.KeyOf(i), val8(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Warm CN1's cache.
	for i := uint64(0); i < phase1; i++ {
		if _, err := cl1.Search(ycsb.KeyOf(i)); err != nil {
			t.Fatal(err)
		}
	}
	// CN2 grows the tree far past CN1's cached view.
	const phase2 = 4000
	for i := uint64(phase1); i < phase2; i++ {
		if err := cl2.Insert(ycsb.KeyOf(i), val8(i)); err != nil {
			t.Fatal(err)
		}
	}
	// CN1 must find both old and new keys through its stale cache.
	for i := uint64(0); i < phase2; i += 7 {
		got, err := cl1.Search(ycsb.KeyOf(i))
		if err != nil || binary.LittleEndian.Uint64(got) != i {
			t.Fatalf("stale-cache search %d: %v %v", i, got, err)
		}
	}
	// And update through it.
	for i := uint64(0); i < phase2; i += 101 {
		if err := cl1.Update(ycsb.KeyOf(i), val8(i+1)); err != nil {
			t.Fatalf("stale-cache update %d: %v", i, err)
		}
	}
}

func TestTinyCacheEviction(t *testing.T) {
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 512 << 20
	ix, err := Bootstrap(dmsim.MustNewFabric(cfg), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// A cache that holds roughly two internal nodes forces constant
	// eviction.
	cn := ix.NewComputeNode(int64(2 * ix.InternalNodeSize()))
	cl := cn.NewClient()
	for i := uint64(0); i < 3000; i++ {
		if err := cl.Insert(ycsb.KeyOf(i), val8(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 3000; i++ {
		if _, err := cl.Search(ycsb.KeyOf(i)); err != nil {
			t.Fatalf("search %d: %v", i, err)
		}
	}
	hits, misses, nodes, used := cn.CacheStats()
	if used > int64(2*ix.InternalNodeSize()) {
		t.Fatalf("cache exceeded budget: %d bytes", used)
	}
	if misses == 0 || nodes > 2 {
		t.Fatalf("eviction never happened: hits=%d misses=%d nodes=%d", hits, misses, nodes)
	}
}

func TestAccessors(t *testing.T) {
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 64 << 20
	ix, err := Bootstrap(dmsim.MustNewFabric(cfg), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ix.Options().SpanSize != 64 {
		t.Fatal("Options accessor")
	}
	if ix.LeafNodeSize() <= 0 || ix.InternalNodeSize() <= 0 {
		t.Fatal("node size accessors")
	}
	if ix.LeafNodeSize() < 64*17 {
		t.Fatalf("leaf %dB implausibly small", ix.LeafNodeSize())
	}
}
