package sherman

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"

	"chime/internal/dmsim"
	"chime/internal/ycsb"
)

func checkAllW(t *testing.T, cl *Client, want map[uint64]uint64) {
	t.Helper()
	for k, v := range want {
		got, err := cl.Search(k)
		if err != nil {
			t.Fatalf("key %#x lost: %v", k, err)
		}
		if binary.LittleEndian.Uint64(got) != v {
			t.Fatalf("key %#x = %x, want %d", k, got, v)
		}
	}
}

func TestShermanInsertBatchBasic(t *testing.T) {
	for _, depth := range []int{1, 8} {
		t.Run(fmt.Sprintf("depth%d", depth), func(t *testing.T) {
			_, cl := newTestTree(t, DefaultOptions())
			const n = 500
			keys := make([]uint64, n)
			vals := make([][]byte, n)
			want := map[uint64]uint64{}
			for i := range keys {
				keys[i] = ycsb.KeyOf(uint64(i))
				vals[i] = val8(uint64(i) + 1)
				want[keys[i]] = uint64(i) + 1
			}
			for i, err := range cl.InsertBatch(keys, vals, depth) {
				if err != nil {
					t.Fatalf("key %d: %v", i, err)
				}
			}
			checkAllW(t, cl, want)
		})
	}
}

func TestShermanInsertBatchUpsert(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	const n = 300
	keys := make([]uint64, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = ycsb.KeyOf(uint64(i))
		vals[i] = val8(uint64(i) + 1)
		if err := cl.Insert(keys[i], val8(0xdead)); err != nil {
			t.Fatal(err)
		}
	}
	want := map[uint64]uint64{}
	for i, k := range keys {
		want[k] = uint64(i) + 1
	}
	for i, err := range cl.InsertBatch(keys, vals, 8) {
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
	}
	checkAllW(t, cl, want)
}

func TestShermanUpdateBatchMixed(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	const n = 200
	keys := make([]uint64, n)
	vals := make([][]byte, n)
	want := map[uint64]uint64{}
	for i := range keys {
		keys[i] = ycsb.KeyOf(uint64(i))
		vals[i] = val8(uint64(i) + 1)
		if i%3 != 0 {
			continue // every third key is never inserted
		}
		if err := cl.Insert(keys[i], val8(7)); err != nil {
			t.Fatal(err)
		}
	}
	errs := cl.UpdateBatch(keys, vals, 8)
	for i, err := range errs {
		if i%3 == 0 {
			if err != nil {
				t.Fatalf("present key %d: %v", i, err)
			}
			want[keys[i]] = uint64(i) + 1
		} else if !errors.Is(err, ErrNotFound) {
			t.Fatalf("absent key %d: err = %v, want ErrNotFound", i, err)
		}
	}
	checkAllW(t, cl, want)
	for i := range keys {
		if i%3 != 0 {
			if _, err := cl.Search(keys[i]); !errors.Is(err, ErrNotFound) {
				t.Fatalf("absent key %d materialized: %v", i, err)
			}
		}
	}
}

func TestShermanInsertBatchSplits(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	const n = 2500
	keys := make([]uint64, n)
	vals := make([][]byte, n)
	want := map[uint64]uint64{}
	for i := range keys {
		keys[i] = ycsb.KeyOf(uint64(i))
		vals[i] = val8(uint64(i) + 1)
		want[keys[i]] = uint64(i) + 1
	}
	for i, err := range cl.InsertBatch(keys, vals, 16) {
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
	}
	checkAllW(t, cl, want)
}

func TestShermanWriteBatchCombining(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	const n = 8
	keys := make([]uint64, n)
	vals := make([][]byte, n)
	want := map[uint64]uint64{}
	for i := range keys {
		keys[i] = ycsb.KeyOf(uint64(i))
		vals[i] = val8(uint64(i) + 1)
		want[keys[i]] = uint64(i) + 1
	}
	for i, err := range cl.InsertBatch(keys, vals, n) {
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
	}
	cycles, combined := cl.WriteCombineStats()
	if cycles == 0 {
		t.Fatal("no write cycles recorded")
	}
	if combined == 0 {
		t.Fatalf("no combining on a single-leaf batch (cycles=%d)", cycles)
	}
	checkAllW(t, cl, want)
}

func TestShermanWriteBatchRestartIsolation(t *testing.T) {
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 512 << 20
	ix, err := Bootstrap(dmsim.MustNewFabric(cfg), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cn := ix.NewComputeNode(64 << 20)
	const writers, perWriter = 4, 600
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := cn.NewClient()
			keys := make([]uint64, perWriter)
			vals := make([][]byte, perWriter)
			for i := range keys {
				id := uint64(i*writers + w) // interleaved ownership
				keys[i] = ycsb.KeyOf(id)
				vals[i] = val8(id + 1)
			}
			for i, err := range cl.InsertBatch(keys, vals, 8) {
				if err != nil {
					errCh <- fmt.Errorf("writer %d key %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	cl := cn.NewClient()
	for id := uint64(0); id < writers*perWriter; id++ {
		got, err := cl.Search(ycsb.KeyOf(id))
		if err != nil {
			t.Fatalf("lost batched insert %d: %v", id, err)
		}
		if binary.LittleEndian.Uint64(got) != id+1 {
			t.Fatalf("batched insert %d corrupted: %x", id, got)
		}
	}
}

// TestShermanWriteBatchVsSyncWriters races the lock-table-bypassing
// batch path against synchronous clients that do use the local lock
// table, on overlapping leaves with disjoint keys.
func TestShermanWriteBatchVsSyncWriters(t *testing.T) {
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 512 << 20
	ix, err := Bootstrap(dmsim.MustNewFabric(cfg), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cn := ix.NewComputeNode(64 << 20)
	const n = 800
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	wg.Add(2)
	go func() {
		defer wg.Done()
		cl := cn.NewClient()
		keys := make([]uint64, n)
		vals := make([][]byte, n)
		for i := range keys {
			keys[i] = ycsb.KeyOf(uint64(2 * i)) // even ids
			vals[i] = val8(uint64(2*i) + 1)
		}
		for i, err := range cl.InsertBatch(keys, vals, 8) {
			if err != nil {
				errCh <- fmt.Errorf("batch key %d: %w", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		cl := cn.NewClient()
		for i := 0; i < n; i++ {
			id := uint64(2*i + 1) // odd ids
			if err := cl.Insert(ycsb.KeyOf(id), val8(id+1)); err != nil {
				errCh <- fmt.Errorf("sync insert %d: %w", i, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	cl := cn.NewClient()
	for id := uint64(0); id < 2*n; id++ {
		got, err := cl.Search(ycsb.KeyOf(id))
		if err != nil {
			t.Fatalf("lost id %d: %v", id, err)
		}
		if binary.LittleEndian.Uint64(got) != id+1 {
			t.Fatalf("id %d corrupted: %x", id, got)
		}
	}
}

func TestShermanInsertBatchIndirect(t *testing.T) {
	opts := DefaultOptions()
	opts.Indirect = true
	opts.ValueSize = 24
	_, cl := newTestTree(t, opts)
	const n = 400
	keys := make([]uint64, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = ycsb.KeyOf(uint64(i))
		v := make([]byte, 24)
		binary.LittleEndian.PutUint64(v, uint64(i)+1)
		vals[i] = v
	}
	for i, err := range cl.InsertBatch(keys, vals, 8) {
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
	}
	for i, k := range keys {
		got, err := cl.Search(k)
		if err != nil {
			t.Fatalf("key %d lost: %v", i, err)
		}
		if binary.LittleEndian.Uint64(got[:8]) != uint64(i)+1 {
			t.Fatalf("key %d = %x", i, got)
		}
	}
}
