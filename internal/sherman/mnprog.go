package sherman

import (
	"encoding/binary"
	"runtime"

	"chime/internal/dmsim"
	"chime/internal/nodelayout"
)

// MN-side offload program (dmsim offload verbs), co-designed with
// Sherman's remote layout. Sherman leaves keep fence keys (no
// sibling-based validation), so the program's leaf chain check is the
// same fenceLow/fenceHi/sibling walk the one-sided client does — run
// against MN-local memory through the metered MNCtx that feeds the
// bounded MN CPU. Anything that leaves the MN (children or indirect KV
// blocks on other MNs) or exceeds the small local retry budgets yields
// a fallback verdict and the client redoes the op one-sided.
const (
	mnTornRetries = 64
	mnLockRetries = 64
	mnChainHops   = 128
)

type mnProgram struct {
	ix *Index
}

// readNode fetches and validates a whole node image through the metered
// view. ok=false carries a fallback status; torn=true requests a
// restart after the budget (reported as Retry by the caller's loop).
func (p *mnProgram) readNode(ctx *dmsim.MNCtx, lay *layout, addr dmsim.GAddr) (img []byte, hdr header, st dmsim.OffloadStatus) {
	img = make([]byte, lay.size)
	for try := 0; try < mnTornRetries; try++ {
		if !ctx.Read(addr.Add(lineSize), img[lineSize:]) {
			return nil, header{}, dmsim.OffloadCrossMN
		}
		if nodelayout.CheckVersions(img, 0, lay.allCells) != nil {
			runtime.Gosched()
			continue
		}
		return img, lay.decodeHeader(img), dmsim.OffloadOK
	}
	return nil, header{}, dmsim.OffloadRetry
}

// descend walks from the super block to the leaf covering key. A zero
// status with a nil address requests a restart from the caller.
func (p *mnProgram) descend(ctx *dmsim.MNCtx, key uint64) (dmsim.GAddr, dmsim.OffloadStatus, bool) {
	var b [8]byte
	if !ctx.Read(p.ix.super, b[:]) {
		return dmsim.NilGAddr, dmsim.OffloadCrossMN, false
	}
	cur, level := unpackSuper(binary.LittleEndian.Uint64(b[:]))
	if level == 0 {
		return cur, dmsim.OffloadOK, false
	}
	for hop := 0; hop < mnChainHops; hop++ {
		img, hdr, st := p.readNode(ctx, p.ix.inner, cur)
		if img == nil {
			return dmsim.NilGAddr, st, false
		}
		if !hdr.valid {
			return dmsim.NilGAddr, 0, true // restart
		}
		if key < hdr.fenceLow {
			return dmsim.NilGAddr, 0, true
		}
		if !hdr.fenceInf && key >= hdr.fenceHi {
			if hdr.sibling.IsNil() {
				return dmsim.NilGAddr, 0, true
			}
			cur = hdr.sibling
			continue
		}
		n := &node{addr: cur, hdr: hdr}
		for i := 0; i < hdr.nkeys; i++ {
			e := p.ix.inner.decodeEntry(img, i)
			n.piv = append(n.piv, e.key)
			n.kids = append(n.kids, dmsim.UnpackGAddr(binary.LittleEndian.Uint64(e.val[:8])))
		}
		child := n.childFor(key)
		if child.IsNil() {
			return dmsim.NilGAddr, 0, true
		}
		if hdr.level == 1 {
			return child, dmsim.OffloadOK, false
		}
		cur = child
	}
	return dmsim.NilGAddr, dmsim.OffloadRetry, false
}

// emitValue resolves stored entry bytes (inline value or indirect KV
// block) into the response. restart=true requests a fresh descent.
func (p *mnProgram) emitValue(ctx *dmsim.MNCtx, key uint64, stored []byte) (dmsim.OffloadStatus, bool) {
	lay := p.ix.leaf
	if !p.ix.opts.Indirect {
		if !ctx.Emit(stored[:lay.valSize]) {
			return dmsim.OffloadRetry, false
		}
		return dmsim.OffloadOK, false
	}
	ptr := dmsim.UnpackGAddr(binary.LittleEndian.Uint64(stored[:8]))
	if ptr.IsNil() {
		return 0, true
	}
	block := make([]byte, 8+p.ix.opts.ValueSize)
	if !ctx.Read(ptr, block) {
		return dmsim.OffloadCrossMN, false
	}
	if binary.LittleEndian.Uint64(block[:8]) != key {
		return 0, true
	}
	if !ctx.Emit(block[8:]) {
		return dmsim.OffloadRetry, false
	}
	return dmsim.OffloadOK, false
}

// Search: descend + whole-leaf probe, MN-local.
func (p *mnProgram) Search(ctx *dmsim.MNCtx, key, arg uint64) dmsim.OffloadStatus {
	lay := p.ix.leaf
	for attempt := 0; attempt < mnTornRetries; attempt++ {
		leaf, st, restart := p.descend(ctx, key)
		if restart {
			runtime.Gosched()
			continue
		}
		if st != dmsim.OffloadOK {
			return st
		}
		st, restart = p.searchChain(ctx, lay, leaf, key)
		if restart {
			runtime.Gosched()
			continue
		}
		return st
	}
	return dmsim.OffloadRetry
}

func (p *mnProgram) searchChain(ctx *dmsim.MNCtx, lay *layout, leaf dmsim.GAddr, key uint64) (dmsim.OffloadStatus, bool) {
	for hops := 0; hops < mnChainHops; hops++ {
		img, hdr, st := p.readNode(ctx, lay, leaf)
		if img == nil {
			return st, false
		}
		if !hdr.valid || key < hdr.fenceLow {
			return 0, true
		}
		if !hdr.fenceInf && key >= hdr.fenceHi {
			if hdr.sibling.IsNil() {
				return 0, true
			}
			leaf = hdr.sibling
			continue
		}
		for i := 0; i < lay.span; i++ {
			e := lay.decodeEntry(img, i)
			if e.occupied && e.key == key {
				return p.emitValue(ctx, key, e.val)
			}
		}
		return dmsim.OffloadNotFound, false
	}
	return dmsim.OffloadRetry, false
}

// lockNode takes the node's lock bit by MN-local CAS. Sherman's lock
// word carries no payload (lease mode is gated off before offload), so
// compare-and-swap of the single bit interoperates with the client's
// identical CAS and its write-zero release.
func (p *mnProgram) lockNode(ctx *dmsim.MNCtx, addr dmsim.GAddr) dmsim.OffloadStatus {
	for try := 0; try < mnLockRetries; try++ {
		_, swapped, ok := ctx.MaskedCAS(addr, 0, 1, 1, 1)
		if !ok {
			return dmsim.OffloadCrossMN
		}
		if swapped {
			return dmsim.OffloadOK
		}
		runtime.Gosched()
	}
	return dmsim.OffloadRetry
}

func (p *mnProgram) unlockNode(ctx *dmsim.MNCtx, addr dmsim.GAddr) {
	ctx.MaskedCAS(addr, 1, 0, 1, 1)
}

// Update: in-place entry value swap under the node lock. Indirect values
// (client-side allocation) and lease locks are gated off client-side.
func (p *mnProgram) Update(ctx *dmsim.MNCtx, key, arg uint64, val []byte) dmsim.OffloadStatus {
	o := p.ix.opts
	if o.Indirect || o.LeaseLocks {
		return dmsim.OffloadUnsupported
	}
	lay := p.ix.leaf
	if len(val) != lay.valSize {
		return dmsim.OffloadUnsupported
	}
	for attempt := 0; attempt < mnTornRetries; attempt++ {
		leaf, st, restart := p.descend(ctx, key)
		if restart {
			runtime.Gosched()
			continue
		}
		if st != dmsim.OffloadOK {
			return st
		}
		st, restart = p.updateInChain(ctx, lay, leaf, key, val)
		if restart {
			runtime.Gosched()
			continue
		}
		return st
	}
	return dmsim.OffloadRetry
}

func (p *mnProgram) updateInChain(ctx *dmsim.MNCtx, lay *layout, leaf dmsim.GAddr, key uint64, val []byte) (dmsim.OffloadStatus, bool) {
	for hops := 0; hops < mnChainHops; hops++ {
		if st := p.lockNode(ctx, leaf); st != dmsim.OffloadOK {
			return st, false
		}
		img, hdr, st := p.readNode(ctx, lay, leaf)
		if img == nil {
			p.unlockNode(ctx, leaf)
			return st, false
		}
		if !hdr.valid || key < hdr.fenceLow {
			p.unlockNode(ctx, leaf)
			return 0, true
		}
		if !hdr.fenceInf && key >= hdr.fenceHi {
			next := hdr.sibling
			p.unlockNode(ctx, leaf)
			if next.IsNil() {
				return 0, true
			}
			leaf = next
			continue
		}
		for i := 0; i < lay.span; i++ {
			e := lay.decodeEntry(img, i)
			if e.occupied && e.key == key {
				lay.encodeEntry(img, i, entry{occupied: true, key: key, val: val}, true)
				cellC := lay.entryCells[i]
				ok := ctx.Write(leaf.Add(uint64(cellC.Off)), img[cellC.Off:cellC.End()])
				p.unlockNode(ctx, leaf)
				if !ok {
					return dmsim.OffloadCrossMN, false
				}
				return dmsim.OffloadOK, false
			}
		}
		p.unlockNode(ctx, leaf)
		return dmsim.OffloadNotFound, false
	}
	return dmsim.OffloadRetry, false
}

// Scan: walk the leaf chain MN-side, emitting sorted [8B key][value]
// records. Restarts are only honored before the first emitted record.
func (p *mnProgram) Scan(ctx *dmsim.MNCtx, start, arg uint64, limit int) dmsim.OffloadStatus {
	if limit <= 0 {
		return dmsim.OffloadOK
	}
	lay := p.ix.leaf
	for attempt := 0; attempt < mnTornRetries; attempt++ {
		leaf, st, restart := p.descend(ctx, start)
		if restart {
			runtime.Gosched()
			continue
		}
		if st != dmsim.OffloadOK {
			return st
		}
		emitted := 0
		var rec []byte
		for hops := 0; hops < mnChainHops; hops++ {
			img, hdr, st := p.readNode(ctx, lay, leaf)
			if img == nil {
				if emitted == 0 && st == dmsim.OffloadRetry {
					restart = true
					break
				}
				return st
			}
			if !hdr.valid {
				if emitted == 0 {
					restart = true
					break
				}
				return dmsim.OffloadRetry
			}
			var batch []entry
			for i := 0; i < lay.span; i++ {
				e := lay.decodeEntry(img, i)
				if e.occupied && e.key >= start {
					e.val = append([]byte(nil), e.val...)
					batch = append(batch, e)
				}
			}
			for _, e := range sortEntries(batch) {
				v := e.val[:lay.valSize]
				if p.ix.opts.Indirect {
					ptr := dmsim.UnpackGAddr(binary.LittleEndian.Uint64(e.val[:8]))
					if ptr.IsNil() {
						if emitted == 0 {
							restart = true
							break
						}
						return dmsim.OffloadRetry
					}
					block := make([]byte, 8+p.ix.opts.ValueSize)
					if !ctx.Read(ptr, block) {
						return dmsim.OffloadCrossMN
					}
					if binary.LittleEndian.Uint64(block[:8]) != e.key {
						if emitted == 0 {
							restart = true
							break
						}
						return dmsim.OffloadRetry
					}
					v = block[8:]
				}
				if cap(rec) < 8+len(v) {
					rec = make([]byte, 8+len(v))
				}
				rec = rec[:8+len(v)]
				binary.LittleEndian.PutUint64(rec[:8], e.key)
				copy(rec[8:], v)
				if !ctx.Emit(rec) {
					return dmsim.OffloadOK
				}
				emitted++
				if emitted >= limit {
					return dmsim.OffloadOK
				}
			}
			if restart {
				break
			}
			if hdr.sibling.IsNil() {
				return dmsim.OffloadOK
			}
			leaf = hdr.sibling
		}
		if restart {
			runtime.Gosched()
			continue
		}
		if emitted > 0 {
			return dmsim.OffloadRetry
		}
	}
	return dmsim.OffloadRetry
}
