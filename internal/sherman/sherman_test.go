package sherman

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"

	"chime/internal/dmsim"
	"chime/internal/ycsb"
)

func newTestTree(t *testing.T, opts Options) (*Index, *Client) {
	t.Helper()
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 512 << 20
	ix, err := Bootstrap(dmsim.MustNewFabric(cfg), opts)
	if err != nil {
		t.Fatal(err)
	}
	return ix, ix.NewComputeNode(64 << 20).NewClient()
}

func val8(x uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, x)
	return b
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	for i, bad := range []Options{
		{SpanSize: 1, ValueSize: 8, KeySize: 8},
		{SpanSize: 64, ValueSize: 0, KeySize: 8},
		{SpanSize: 64, ValueSize: 8, KeySize: 2},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("case %d must fail", i)
		}
	}
}

func TestEmptySearch(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	if _, err := cl.Search(1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty search: %v", err)
	}
}

func TestInsertSearchUpdateDelete(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	const n = 3000
	for i := uint64(0); i < n; i++ {
		if err := cl.Insert(ycsb.KeyOf(i), val8(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := uint64(0); i < n; i++ {
		got, err := cl.Search(ycsb.KeyOf(i))
		if err != nil || binary.LittleEndian.Uint64(got) != i {
			t.Fatalf("search %d: %v %v", i, got, err)
		}
	}
	for i := uint64(0); i < n; i += 3 {
		if err := cl.Update(ycsb.KeyOf(i), val8(i+n)); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	for i := uint64(1); i < n; i += 5 {
		if i%3 == 0 {
			continue
		}
		if err := cl.Delete(ycsb.KeyOf(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	for i := uint64(0); i < n; i++ {
		got, err := cl.Search(ycsb.KeyOf(i))
		switch {
		case i%3 == 0:
			if err != nil || binary.LittleEndian.Uint64(got) != i+n {
				t.Fatalf("updated %d: %v %v", i, got, err)
			}
		case i%5 == 1:
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("deleted %d: %v", i, err)
			}
		default:
			if err != nil || binary.LittleEndian.Uint64(got) != i {
				t.Fatalf("plain %d: %v %v", i, got, err)
			}
		}
	}
}

func TestUpsert(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	if err := cl.Insert(9, val8(1)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Insert(9, val8(2)); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Search(9)
	if err != nil || binary.LittleEndian.Uint64(got) != 2 {
		t.Fatalf("upsert: %v %v", got, err)
	}
}

func TestScan(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	const n = 2000
	for i := uint64(0); i < n; i++ {
		if err := cl.Insert(ycsb.KeyOf(i), val8(i)); err != nil {
			t.Fatal(err)
		}
	}
	out, err := cl.Scan(0, 150)
	if err != nil || len(out) != 150 {
		t.Fatalf("scan: %d items, %v", len(out), err)
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].Key >= out[i].Key {
			t.Fatal("scan unsorted")
		}
	}
	all, err := cl.Scan(0, n+10)
	if err != nil || len(all) != n {
		t.Fatalf("full scan: %d of %d, %v", len(all), n, err)
	}
}

func TestIndirect(t *testing.T) {
	o := DefaultOptions()
	o.Indirect = true
	o.ValueSize = 32
	_, cl := newTestTree(t, o)
	for i := uint64(0); i < 400; i++ {
		k := ycsb.KeyOf(i)
		if err := cl.Insert(k, ycsb.FillValue(k, 32, 0)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 400; i++ {
		k := ycsb.KeyOf(i)
		got, err := cl.Search(k)
		if err != nil || string(got) != string(ycsb.FillValue(k, 32, 0)) {
			t.Fatalf("indirect %d: %v", i, err)
		}
	}
	out, err := cl.Scan(0, 5)
	if err != nil || len(out) != 5 {
		t.Fatalf("indirect scan: %v", err)
	}
}

func TestReadAmplificationIsWholeLeaf(t *testing.T) {
	// Sherman's defining property: a cached-path search reads one whole
	// leaf node.
	ix, cl := newTestTree(t, DefaultOptions())
	for i := uint64(0); i < 1000; i++ {
		if err := cl.Insert(ycsb.KeyOf(i), val8(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 1000; i++ { // warm cache
		if _, err := cl.Search(ycsb.KeyOf(i)); err != nil {
			t.Fatal(err)
		}
	}
	before := cl.DM().Stats()
	const reads = 200
	for i := uint64(0); i < reads; i++ {
		if _, err := cl.Search(ycsb.KeyOf(i)); err != nil {
			t.Fatal(err)
		}
	}
	after := cl.DM().Stats()
	perOp := float64(after.BytesRead-before.BytesRead) / reads
	leafBody := float64(ix.LeafNodeSize() - 64)
	if perOp < leafBody*0.99 {
		t.Fatalf("per-search bytes %.0f, want ≈ leaf body %.0f", perOp, leafBody)
	}
	trips := after.Trips - before.Trips
	if trips != reads {
		t.Fatalf("cached search trips = %d for %d reads, want 1 each", trips, reads)
	}
}

func TestConcurrentInserts(t *testing.T) {
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 512 << 20
	ix, err := Bootstrap(dmsim.MustNewFabric(cfg), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cn := ix.NewComputeNode(64 << 20)
	const clients, per = 6, 300
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := cn.NewClient()
			for i := 0; i < per; i++ {
				id := uint64(c*per + i)
				if err := cl.Insert(ycsb.KeyOf(id), val8(id)); err != nil {
					errs <- fmt.Errorf("client %d: %w", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	cl := cn.NewClient()
	for id := uint64(0); id < clients*per; id++ {
		got, err := cl.Search(ycsb.KeyOf(id))
		if err != nil || binary.LittleEndian.Uint64(got) != id {
			t.Fatalf("lost insert %d: %v %v", id, got, err)
		}
	}
}

func TestSmallSpan(t *testing.T) {
	o := DefaultOptions()
	o.SpanSize = 8
	_, cl := newTestTree(t, o)
	for i := uint64(0); i < 800; i++ {
		if err := cl.Insert(ycsb.KeyOf(i), val8(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := uint64(0); i < 800; i++ {
		if _, err := cl.Search(ycsb.KeyOf(i)); err != nil {
			t.Fatalf("search %d: %v", i, err)
		}
	}
}
