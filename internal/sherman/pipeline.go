package sherman

import (
	"encoding/binary"
	"fmt"

	"chime/internal/dmsim"
	"chime/internal/nodelayout"
	"chime/internal/obs"
)

// Pipelined multi-get for the Sherman baseline: the same posted-verb
// state machine as core.SearchBatch, so the pipelining sensitivity
// experiment compares the two systems through an identical interface.
// Sherman reads whole leaves (its read amplification is the point of
// the comparison), so each in-flight key posts full-node READs.

const (
	sOpStart = iota
	sOpRootWait
	sOpInternalWait
	sOpLeafWait
	sOpIndirectWait
	sOpDone
)

type batchOp struct {
	key uint64
	idx int

	state int

	root      dmsim.GAddr
	rootLevel uint8
	cur       dmsim.GAddr // internal node being fetched / descended
	leaf      dmsim.GAddr
	hops      int

	h       *dmsim.Completion
	rootBuf [8]byte
	img     []byte
	valBuf  []byte

	restarts, torn int

	val []byte
	err error
}

// SearchBatch performs up to depth point lookups concurrently on this
// client; results are positionally aligned with keys and absent keys
// report ErrNotFound.
func (c *Client) SearchBatch(keys []uint64, depth int) ([][]byte, []error) {
	n := len(keys)
	vals := make([][]byte, n)
	errs := make([]error, n)
	if n == 0 {
		return vals, errs
	}
	if sp := c.obs.Tracer.Begin("sherman.search_batch", "idx", c.dc.ID(), c.dc.Now()); sp != nil {
		sp.Arg("keys", n)
		sp.Arg("depth", depth)
		defer func() { sp.End(c.dc.Now()) }()
	}
	if fl := c.dc.Flight(); fl != nil {
		fl.Begin(obs.OpBatchRead, c.dc.Now())
		defer func() { fl.End(c.dc.Now()) }()
	}
	if depth < 1 {
		depth = 1
	}

	ops := make([]*batchOp, 0, depth)
	next := 0
	admit := func() {
		for next < n && len(ops) < depth {
			op := &batchOp{key: keys[next], idx: next}
			next++
			c.beginOp(op)
			if op.state == sOpDone {
				vals[op.idx], errs[op.idx] = op.val, op.err
				continue
			}
			ops = append(ops, op)
		}
	}
	admit()
	for len(ops) > 0 {
		op := ops[0]
		ops = ops[1:]
		c.stepOp(op)
		if op.state == sOpDone {
			vals[op.idx], errs[op.idx] = op.val, op.err
			admit()
		} else {
			ops = append(ops, op)
		}
	}
	return vals, errs
}

func (c *Client) beginOp(op *batchOp) {
	op.hops = 0
	c.chargeLocalWork()
	if c.rootAddr.IsNil() {
		h, err := c.dc.PostRead(c.ix.super, op.rootBuf[:])
		if err != nil {
			c.failOp(op, err)
			return
		}
		op.h = h
		op.state = sOpRootWait
		return
	}
	op.root, op.rootLevel = c.rootAddr, c.rootLevel
	c.descendFromRoot(op)
}

func (c *Client) descendFromRoot(op *batchOp) {
	if op.rootLevel == 0 {
		op.leaf = op.root
		c.postLeafOp(op)
		return
	}
	op.cur = op.root
	c.descendLoop(op)
}

func (c *Client) descendLoop(op *batchOp) {
	for ; op.hops < maxRetries; op.hops++ {
		n := c.cn.cacheGet(op.cur)
		if n == nil {
			c.postInternalOp(op)
			return
		}
		if !c.stepNode(op, n, true) {
			return
		}
	}
	c.failOp(op, fmt.Errorf("sherman: SearchBatch(%#x): descent loop exhausted", op.key))
}

// stepNode applies one internal node to the descent; false means the op
// posted a read, restarted, or failed.
func (c *Client) stepNode(op *batchOp, n *node, fromCache bool) bool {
	key := op.key
	if !n.covers(key) {
		if fromCache {
			c.cn.cacheDrop(op.cur)
			return true
		}
		if !n.hdr.fenceInf && key >= n.hdr.fenceHi && !n.hdr.sibling.IsNil() {
			op.cur = n.hdr.sibling
			return true
		}
		c.restartOp(op)
		return false
	}
	child := n.childFor(key)
	if child.IsNil() {
		if fromCache {
			c.cn.cacheDrop(op.cur)
			return true
		}
		c.restartOp(op)
		return false
	}
	if n.hdr.level == 1 {
		op.leaf = child
		c.postLeafOp(op)
		return false
	}
	op.cur = child
	return true
}

func (c *Client) postInternalOp(op *batchOp) {
	if op.img == nil || len(op.img) != c.ix.inner.size {
		op.img = make([]byte, c.ix.inner.size)
	}
	h, err := c.dc.PostRead(op.cur.Add(lineSize), op.img[lineSize:])
	if err != nil {
		c.failOp(op, err)
		return
	}
	op.h = h
	op.state = sOpInternalWait
}

func (c *Client) postLeafOp(op *batchOp) {
	if op.img == nil || len(op.img) != c.ix.leaf.size {
		op.img = make([]byte, c.ix.leaf.size)
	}
	h, err := c.dc.PostRead(op.leaf.Add(lineSize), op.img[lineSize:])
	if err != nil {
		c.failOp(op, err)
		return
	}
	op.h = h
	op.state = sOpLeafWait
}

func (c *Client) stepOp(op *batchOp) {
	switch op.state {
	case sOpRootWait:
		c.dc.Poll(op.h)
		op.h = nil
		addr, lvl := unpackSuper(binary.LittleEndian.Uint64(op.rootBuf[:]))
		c.rootAddr, c.rootLevel = addr, lvl
		op.root, op.rootLevel = addr, lvl
		c.descendFromRoot(op)

	case sOpInternalWait:
		c.dc.Poll(op.h)
		op.h = nil
		if err := nodelayout.CheckVersions(op.img, 0, c.ix.inner.allCells); err != nil {
			if !c.retryTorn(op, func() { c.postInternalOp(op) }) {
				return
			}
			return
		}
		c.ys.reset()
		hdr := c.ix.inner.decodeHeader(op.img)
		if !hdr.valid {
			c.restartOp(op)
			return
		}
		n := c.decodeInternal(op.cur, op.img, hdr)
		c.cn.cachePut(op.cur, n)
		op.img = nil
		if c.stepNode(op, n, false) {
			c.descendLoop(op)
		}

	case sOpLeafWait:
		c.dc.Poll(op.h)
		op.h = nil
		if err := nodelayout.CheckVersions(op.img, 0, c.ix.leaf.allCells); err != nil {
			if !c.retryTorn(op, func() { c.postLeafOp(op) }) {
				return
			}
			return
		}
		c.ys.reset()
		c.finishLeafOp(op)

	case sOpIndirectWait:
		c.dc.Poll(op.h)
		op.h = nil
		if binary.LittleEndian.Uint64(op.valBuf[:8]) != op.key {
			c.restartOp(op)
			return
		}
		op.val = op.valBuf[8:]
		op.state = sOpDone

	default:
		c.failOp(op, fmt.Errorf("sherman: SearchBatch: step in state %d", op.state))
	}
}

// retryTorn reposts after a torn read; returns false when the op failed
// on the retry guard.
func (c *Client) retryTorn(op *batchOp, repost func()) bool {
	op.torn++
	if op.torn > maxRetries {
		c.failOp(op, fmt.Errorf("sherman: node %v: torn-read retries exhausted", op.cur))
		return false
	}
	c.ys.yield(c.dc)
	repost()
	return true
}

func (c *Client) finishLeafOp(op *batchOp) {
	lay := c.ix.leaf
	hdr := lay.decodeHeader(op.img)
	if !hdr.valid || op.key < hdr.fenceLow {
		c.restartOp(op)
		return
	}
	if !hdr.fenceInf && op.key >= hdr.fenceHi {
		if hdr.sibling.IsNil() {
			c.restartOp(op)
			return
		}
		op.hops++
		if op.hops > maxRetries {
			c.failOp(op, fmt.Errorf("sherman: SearchBatch(%#x): leaf chain too long", op.key))
			return
		}
		op.leaf = hdr.sibling
		c.postLeafOp(op)
		return
	}
	for i := 0; i < lay.span; i++ {
		e := lay.decodeEntry(op.img, i)
		if e.occupied && e.key == op.key {
			if c.ix.opts.Indirect {
				ptr := dmsim.UnpackGAddr(binary.LittleEndian.Uint64(e.val[:8]))
				if ptr.IsNil() {
					c.restartOp(op)
					return
				}
				op.valBuf = make([]byte, 8+c.ix.opts.ValueSize)
				h, err := c.dc.PostRead(ptr, op.valBuf)
				if err != nil {
					c.failOp(op, err)
					return
				}
				op.h = h
				op.state = sOpIndirectWait
				return
			}
			op.val = append([]byte(nil), e.val[:lay.valSize]...)
			op.state = sOpDone
			return
		}
	}
	op.err = ErrNotFound
	op.state = sOpDone
}

func (c *Client) restartOp(op *batchOp) {
	op.restarts++
	c.obs.Retries.Inc()
	if op.restarts > maxRetries {
		c.failOp(op, fmt.Errorf("sherman: SearchBatch(%#x): retries exhausted", op.key))
		return
	}
	c.dc.Poll(op.h)
	op.h = nil
	c.rootAddr = dmsim.NilGAddr
	c.ys.yield(c.dc)
	c.beginOp(op)
}

func (c *Client) failOp(op *batchOp, err error) {
	c.dc.Poll(op.h)
	op.h = nil
	op.err = err
	op.state = sOpDone
}
