package sherman

import (
	"encoding/binary"
	"fmt"
	"sort"

	"chime/internal/dmsim"
	"chime/internal/nodelayout"
	"chime/internal/obs"
)

// Pipelined batch writes for the Sherman baseline: the same posted-verb
// write state machine as core.InsertBatch, so the write-pipelining
// sensitivity experiment compares the two systems through an identical
// interface. Sherman fetches whole leaves under the lock (its write path
// reads the full node before picking a slot), so every cycle posts a
// full-node READ; the write-back is fine-grained — only the touched
// entry cells ride the doorbell batch alongside the cleared lock word.
//
// Keys resolving to the same leaf while its cycle is still collecting
// are combined into one lock/fetch/write round, exactly as in core. The
// batch path bypasses the local lock table (its blocking Acquire would
// stall the rest of the batch); the remote lock word stays the ground
// truth and ReleaseRemote on a never-Acquired address is a no-op.

// wOp states.
const (
	swRootWait = iota + 1
	swInternalWait
	swLockWait
	swFetchWait
	swWriteWait
	swJoined
	swDone
)

type writeKind int

const (
	writeUpsert writeKind = iota // insert-or-overwrite
	writeUpdate                  // overwrite-only, ErrNotFound when absent
)

// wOp is one in-flight key of an InsertBatch/UpdateBatch.
type wOp struct {
	kind writeKind
	key  uint64
	val  []byte
	idx  int

	state int

	root      dmsim.GAddr
	rootLevel uint8
	cur       dmsim.GAddr
	path      []pathEntry
	leaf      dmsim.GAddr
	hops      int

	h       *dmsim.Completion
	rootBuf [8]byte
	img     []byte // internal-node image

	restarts, torn, casFails int

	cy       *wCycle
	notFound bool
	err      error
}

// wCycle is one lock/fetch/write round over a single leaf, shared by
// every batch key that resolved to that leaf while it was collecting.
type wCycle struct {
	leaf       dmsim.GAddr
	leader     *wOp
	ops        []*wOp
	collecting bool

	img []byte
	h   *dmsim.Completion

	// settled holds the ops whose outcome commits when the posted
	// doorbell write+unlock completes.
	settled []*wOp
}

// swSched is the per-batch scheduler state.
type swSched struct {
	cycles map[uint64]*wCycle
	wake   []*wOp

	cyclesN  int64
	combined int64
}

// InsertBatch performs up to depth concurrent upserts on this client;
// results are positionally aligned with keys.
func (c *Client) InsertBatch(keys []uint64, values [][]byte, depth int) []error {
	return c.runWriteBatch(writeUpsert, keys, values, depth)
}

// UpdateBatch performs up to depth concurrent overwrite-only updates,
// returning ErrNotFound per absent key.
func (c *Client) UpdateBatch(keys []uint64, values [][]byte, depth int) []error {
	return c.runWriteBatch(writeUpdate, keys, values, depth)
}

// MultiPut is the bench-facing alias for InsertBatch.
func (c *Client) MultiPut(keys []uint64, values [][]byte, depth int) []error {
	return c.InsertBatch(keys, values, depth)
}

// WriteCombineStats reports executed leaf write cycles and batch keys
// absorbed into an already-open cycle on the same leaf.
func (c *Client) WriteCombineStats() (cycles, combinedKeys int64) {
	return c.wcCycles, c.wcCombined
}

func (c *Client) runWriteBatch(kind writeKind, keys []uint64, values [][]byte, depth int) []error {
	n := len(keys)
	errs := make([]error, n)
	if n == 0 {
		return errs
	}
	if len(values) != n {
		err := fmt.Errorf("sherman: write batch: %d keys but %d values", n, len(values))
		for i := range errs {
			errs[i] = err
		}
		return errs
	}
	if depth < 1 {
		depth = 1
	}
	if sp := c.obs.Tracer.Begin("sherman.write_batch", "idx", c.dc.ID(), c.dc.Now()); sp != nil {
		sp.Arg("keys", n)
		sp.Arg("depth", depth)
		defer func() { sp.End(c.dc.Now()) }()
	}
	if fl := c.dc.Flight(); fl != nil {
		fl.Begin(obs.OpBatchWrite, c.dc.Now())
		defer func() { fl.End(c.dc.Now()) }()
	}

	st := &swSched{cycles: make(map[uint64]*wCycle)}
	var queue []*wOp
	var all []*wOp
	live := 0
	next := 0

	settle := func(op *wOp) {
		switch op.state {
		case swDone:
			errs[op.idx] = op.err
			live--
		case swJoined:
			// Parked on a cycle; its leader drives it from here.
		default:
			queue = append(queue, op)
		}
	}
	drain := func() {
		for len(st.wake) > 0 {
			w := st.wake
			st.wake = nil
			for _, op := range w {
				settle(op)
			}
		}
	}
	admit := func() {
		for next < n && live < depth {
			op := &wOp{kind: kind, key: keys[next], idx: next}
			next++
			live++
			all = append(all, op)
			val, err := c.prepareValue(op.key, values[op.idx])
			if err != nil {
				op.err, op.state = err, swDone
			} else {
				op.val = val
				c.beginWOp(st, op)
			}
			settle(op)
			drain()
		}
	}

	admit()
	for live > 0 {
		if len(queue) == 0 {
			for _, op := range all {
				if op.state != swDone {
					errs[op.idx] = fmt.Errorf("sherman: write batch(%#x): scheduler stalled in state %d", op.key, op.state)
				}
			}
			break
		}
		op := queue[0]
		queue = queue[1:]
		c.stepWOp(st, op)
		settle(op)
		drain()
		admit()
	}

	c.wcCycles += st.cyclesN
	c.wcCombined += st.combined
	c.obs.WCCycles.Add(st.cyclesN)
	c.obs.WCCombined.Add(st.combined)
	return errs
}

// beginWOp (re)starts a key's traversal toward its leaf.
func (c *Client) beginWOp(st *swSched, op *wOp) {
	op.path = nil
	op.hops = 0
	op.cy = nil
	op.notFound = false
	c.chargeLocalWork()
	if c.rootAddr.IsNil() {
		h, err := c.dc.PostRead(c.ix.super, op.rootBuf[:])
		if err != nil {
			c.failWOp(op, err)
			return
		}
		op.h = h
		op.state = swRootWait
		return
	}
	op.root, op.rootLevel = c.rootAddr, c.rootLevel
	c.descendWFromRoot(st, op)
}

func (c *Client) descendWFromRoot(st *swSched, op *wOp) {
	if op.rootLevel == 0 {
		op.leaf = op.root
		c.arriveWAtLeaf(st, op)
		return
	}
	op.cur = op.root
	c.descendWLoop(st, op)
}

func (c *Client) descendWLoop(st *swSched, op *wOp) {
	for ; op.hops < maxRetries; op.hops++ {
		n := c.cn.cacheGet(op.cur)
		if n == nil {
			c.postWInternal(op)
			return
		}
		if !c.stepWNode(st, op, n, true) {
			return
		}
	}
	c.failWOp(op, fmt.Errorf("sherman: write batch(%#x): descent loop exhausted", op.key))
}

// stepWNode applies one internal node to the descent; false means the
// op posted, arrived at its leaf, restarted, or failed.
func (c *Client) stepWNode(st *swSched, op *wOp, n *node, fromCache bool) bool {
	key := op.key
	if !n.covers(key) {
		if fromCache {
			c.cn.cacheDrop(op.cur)
			return true
		}
		if !n.hdr.fenceInf && key >= n.hdr.fenceHi && !n.hdr.sibling.IsNil() {
			op.cur = n.hdr.sibling
			return true
		}
		c.restartWOp(st, op)
		return false
	}
	op.path = append(op.path, pathEntry{addr: op.cur, level: n.hdr.level})
	child := n.childFor(key)
	if child.IsNil() {
		if fromCache {
			c.cn.cacheDrop(op.cur)
			return true
		}
		c.restartWOp(st, op)
		return false
	}
	if n.hdr.level == 1 {
		op.leaf = child
		c.arriveWAtLeaf(st, op)
		return false
	}
	op.cur = child
	return true
}

func (c *Client) postWInternal(op *wOp) {
	if op.img == nil || len(op.img) != c.ix.inner.size {
		op.img = make([]byte, c.ix.inner.size)
	}
	h, err := c.dc.PostRead(op.cur.Add(lineSize), op.img[lineSize:])
	if err != nil {
		c.failWOp(op, err)
		return
	}
	op.h = h
	op.state = swInternalWait
}

// arriveWAtLeaf joins the leaf's collecting cycle, or opens a new one
// and posts its lock CAS.
func (c *Client) arriveWAtLeaf(st *swSched, op *wOp) {
	k := op.leaf.Pack()
	if cy, ok := st.cycles[k]; ok && cy.collecting {
		op.cy = cy
		cy.ops = append(cy.ops, op)
		op.state = swJoined
		st.combined++
		return
	}
	cy := &wCycle{leaf: op.leaf, leader: op, ops: []*wOp{op}, collecting: true}
	st.cycles[k] = cy
	st.cyclesN++
	op.cy = cy
	c.postWCycleLock(st, op)
}

// postWCycleLock posts the leaf lock CAS (Sherman's plain lock bit; no
// piggyback payload).
func (c *Client) postWCycleLock(st *swSched, op *wOp) {
	cy := op.cy
	h, err := c.dc.PostMaskedCAS(cy.leaf, 0, 1, 1, 1)
	if err != nil {
		c.failWCycle(st, op, err, false)
		return
	}
	cy.h = h
	op.state = swLockWait
}

// postWCycleFetch freezes the cycle's membership and posts the
// whole-node read (Sherman always reads the full leaf under the lock).
func (c *Client) postWCycleFetch(st *swSched, drv *wOp) {
	cy := drv.cy
	cy.collecting = false
	if cur, ok := st.cycles[cy.leaf.Pack()]; ok && cur == cy {
		delete(st.cycles, cy.leaf.Pack())
	}
	if cy.img == nil || len(cy.img) != c.ix.leaf.size {
		cy.img = make([]byte, c.ix.leaf.size)
	}
	h, err := c.dc.PostRead(cy.leaf.Add(lineSize), cy.img[lineSize:])
	if err != nil {
		c.failWCycle(st, drv, err, true)
		return
	}
	cy.h = h
	drv.state = swFetchWait
}

func (c *Client) stepWOp(st *swSched, op *wOp) {
	switch op.state {
	case swRootWait:
		c.dc.Poll(op.h)
		op.h = nil
		addr, lvl := unpackSuper(binary.LittleEndian.Uint64(op.rootBuf[:]))
		c.rootAddr, c.rootLevel = addr, lvl
		op.root, op.rootLevel = addr, lvl
		c.descendWFromRoot(st, op)

	case swInternalWait:
		c.dc.Poll(op.h)
		op.h = nil
		if err := nodelayout.CheckVersions(op.img, 0, c.ix.inner.allCells); err != nil {
			op.torn++
			if op.torn > maxRetries {
				c.failWOp(op, fmt.Errorf("sherman: node %v: torn-read retries exhausted", op.cur))
				return
			}
			c.ys.yield(c.dc)
			c.postWInternal(op)
			return
		}
		c.ys.reset()
		hdr := c.ix.inner.decodeHeader(op.img)
		if !hdr.valid {
			c.restartWOp(st, op)
			return
		}
		n := c.decodeInternal(op.cur, op.img, hdr)
		c.cn.cachePut(op.cur, n)
		op.img = nil
		if c.stepWNode(st, op, n, false) {
			c.descendWLoop(st, op)
		}

	case swLockWait:
		cy := op.cy
		c.dc.Poll(cy.h)
		_, ok := cy.h.CASResult()
		cy.h = nil
		if !ok {
			op.casFails++
			if op.casFails > maxRetries {
				c.failWCycle(st, op, fmt.Errorf("sherman: leaf %v: lock acquisition starved", cy.leaf), false)
				return
			}
			c.ys.yield(c.dc)
			c.postWCycleLock(st, op) // the cycle keeps collecting meanwhile
			return
		}
		c.ys.reset()
		c.postWCycleFetch(st, op)

	case swFetchWait:
		cy := op.cy
		c.dc.Poll(cy.h)
		cy.h = nil
		// The lock is held, so tearing cannot happen; validate anyway for
		// defense in depth (mirrors the sync readNode).
		if err := nodelayout.CheckVersions(cy.img, 0, c.ix.leaf.allCells); err != nil {
			op.torn++
			if op.torn > maxRetries {
				c.failWCycle(st, op, fmt.Errorf("sherman: leaf %v: torn-read retries exhausted", cy.leaf), true)
				return
			}
			c.ys.yield(c.dc)
			h, perr := c.dc.PostRead(cy.leaf.Add(lineSize), cy.img[lineSize:])
			if perr != nil {
				c.failWCycle(st, op, perr, true)
				return
			}
			cy.h = h
			return
		}
		c.applyWCycle(st, op)

	case swWriteWait:
		cy := op.cy
		c.dc.Poll(cy.h)
		cy.h = nil
		c.ys.reset()
		for _, d := range cy.settled {
			d.cy = nil
			if d.notFound {
				d.err = ErrNotFound
			}
			d.state = swDone
			if d != op {
				st.wake = append(st.wake, d)
			}
		}
		c.releaseWCycle(cy)

	default:
		c.failWOp(op, fmt.Errorf("sherman: write batch: step in state %d", op.state))
	}
}

// applyWCycle validates and mutates the fetched leaf image for every op
// of the cycle, then posts ONE doorbell batch carrying the changed entry
// cells plus the cleared lock word. Per-key conflicts (moved fences)
// peel only the affected ops off the cycle.
func (c *Client) applyWCycle(st *swSched, stepped *wOp) {
	cy := stepped.cy
	lay := c.ix.leaf
	hdr := lay.decodeHeader(cy.img)

	leave := func(op *wOp, f func(*wOp)) {
		op.cy = nil
		f(op)
		if op != stepped {
			st.wake = append(st.wake, op)
		}
	}

	if !hdr.valid {
		c.batchUnlock(cy.leaf)
		for _, op := range cy.ops {
			leave(op, func(op *wOp) { c.restartWOp(st, op) })
		}
		c.releaseWCycle(cy)
		return
	}

	pending := make([]*wOp, 0, len(cy.ops))
	for _, op := range cy.ops {
		if op.key < hdr.fenceLow {
			leave(op, func(op *wOp) { c.restartWOp(st, op) })
			continue
		}
		if !hdr.fenceInf && op.key >= hdr.fenceHi {
			if !hdr.sibling.IsNil() {
				// Half-split: chase the B-link sibling chain, as the sync
				// insert and modify paths do.
				sib := hdr.sibling
				leave(op, func(op *wOp) { c.rearriveWOp(st, op, sib) })
			} else {
				leave(op, func(op *wOp) { c.restartWOp(st, op) })
			}
			continue
		}
		pending = append(pending, op)
	}
	cy.ops = pending

	if len(pending) == 0 {
		c.batchUnlock(cy.leaf)
		c.releaseWCycle(cy)
		return
	}
	if !containsWOp(pending, cy.leader) {
		cy.leader = pending[0]
	}

	changed := map[int]bool{}
	var done []*wOp
	for pi, op := range pending {
		slot, free := -1, -1
		for i := 0; i < lay.span; i++ {
			e := lay.decodeEntry(cy.img, i)
			if e.occupied && e.key == op.key {
				slot = i
				break
			}
			if !e.occupied && free < 0 {
				free = i
			}
		}
		if slot < 0 && op.kind == writeUpdate {
			op.notFound = true
			done = append(done, op)
			continue
		}
		if slot < 0 {
			slot = free
		}
		if slot < 0 {
			// Leaf full: split synchronously; both halves are rewritten from
			// the image, so the already-applied ops commit with the split.
			c.splitWCycle(st, cy, stepped, op, hdr, done, pending[pi+1:])
			return
		}
		lay.encodeEntry(cy.img, slot, entry{occupied: true, key: op.key, val: op.val}, true)
		changed[slot] = true
		done = append(done, op)
	}

	if len(changed) == 0 {
		// Every pending op was an absent-key update: nothing to write back.
		c.batchUnlock(cy.leaf)
		for _, op := range done {
			leave(op, func(op *wOp) {
				op.err = ErrNotFound
				op.state = swDone
			})
		}
		c.releaseWCycle(cy)
		return
	}

	ranges := mergedWCellRanges(lay, changed)
	addrs := make([]dmsim.GAddr, 0, len(ranges)+1)
	bufs := make([][]byte, 0, len(ranges)+1)
	for _, r := range ranges {
		addrs = append(addrs, cy.leaf.Add(uint64(r.off)))
		bufs = append(bufs, cy.img[r.off:r.end])
	}
	var zero [8]byte
	addrs = append(addrs, cy.leaf)
	bufs = append(bufs, zero[:])
	h, err := c.dc.PostWriteBatch(addrs, bufs)
	if err != nil {
		c.batchUnlock(cy.leaf)
		for _, op := range pending {
			leave(op, func(op *wOp) { c.failWOp(op, err) })
		}
		c.releaseWCycle(cy)
		return
	}
	c.cn.locks.ReleaseRemote(c.dc, cy.leaf.Pack())
	cy.h = h
	cy.settled = done
	drv := cy.leader
	drv.state = swWriteWait
	if drv != stepped {
		st.wake = append(st.wake, drv)
	}
}

// splitWCycle handles a full leaf discovered mid-apply: the synchronous
// splitLeaf rewrites both halves from the image (committing every
// already-applied mutation) and unlocks internally. Applied ops
// complete; the splitting op and the not-yet-applied rest retraverse.
func (c *Client) splitWCycle(st *swSched, cy *wCycle, stepped, splitter *wOp, hdr header, done, rest []*wOp) {
	err := c.splitLeaf(cy.leaf, splitter.path, cy.img, hdr)
	for _, op := range done {
		op.cy = nil
		if op.notFound {
			op.err = ErrNotFound
		}
		op.state = swDone
		if op != stepped {
			st.wake = append(st.wake, op)
		}
	}
	splitter.cy = nil
	if err != nil {
		c.failWOp(splitter, err)
	} else {
		c.restartWOp(st, splitter)
	}
	if splitter != stepped {
		st.wake = append(st.wake, splitter)
	}
	for _, op := range rest {
		op.cy = nil
		c.restartWOp(st, op)
		if op != stepped {
			st.wake = append(st.wake, op)
		}
	}
	c.releaseWCycle(cy)
}

// wCellRange is a half-open byte range [off, end) within a leaf image.
type wCellRange struct{ off, end int }

// mergedWCellRanges converts a changed-slot set into write-back ranges,
// merging exactly-abutting entry cells.
func mergedWCellRanges(lay *layout, changed map[int]bool) []wCellRange {
	idxs := make([]int, 0, len(changed))
	for i := range changed {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	var out []wCellRange
	for _, i := range idxs {
		cell := lay.entryCells[i]
		if n := len(out); n > 0 && out[n-1].end >= cell.Off {
			if cell.End() > out[n-1].end {
				out[n-1].end = cell.End()
			}
		} else {
			out = append(out, wCellRange{off: cell.Off, end: cell.End()})
		}
	}
	return out
}

func containsWOp(ops []*wOp, op *wOp) bool {
	for _, o := range ops {
		if o == op {
			return true
		}
	}
	return false
}

// batchUnlock releases a batch-held leaf lock without the local lock
// table's handover path (the batch never Acquired the local slot).
func (c *Client) batchUnlock(leaf dmsim.GAddr) {
	var zero [8]byte
	if err := c.dc.Write(leaf, zero[:]); err != nil {
		return
	}
	c.cn.locks.ReleaseRemote(c.dc, leaf.Pack())
}

// rearriveWOp re-enters the leaf layer at a sibling (B-link chase). The
// op keeps its path: sibling leaves propagate splits through the same
// ancestors, exactly as the synchronous chase does.
func (c *Client) rearriveWOp(st *swSched, op *wOp, leaf dmsim.GAddr) {
	op.hops++
	if op.hops > maxRetries {
		c.failWOp(op, fmt.Errorf("sherman: write batch(%#x): sibling chain too long", op.key))
		return
	}
	op.leaf = leaf
	c.arriveWAtLeaf(st, op)
}

// restartWOp retraverses one key after an optimistic conflict; the rest
// of the batch is untouched.
func (c *Client) restartWOp(st *swSched, op *wOp) {
	op.restarts++
	c.obs.Retries.Inc()
	if op.restarts > maxRetries {
		c.failWOp(op, fmt.Errorf("sherman: write batch(%#x): retries exhausted", op.key))
		return
	}
	c.dc.Poll(op.h)
	op.h = nil
	op.img = nil
	c.rootAddr = dmsim.NilGAddr
	c.ys.yield(c.dc)
	c.beginWOp(st, op)
}

func (c *Client) failWOp(op *wOp, err error) {
	c.dc.Poll(op.h)
	op.h = nil
	op.err = err
	op.state = swDone
}

// failWCycle fails every op of the cycle; locked says whether the leaf
// lock is held and must be released.
func (c *Client) failWCycle(st *swSched, stepped *wOp, err error, locked bool) {
	cy := stepped.cy
	if locked {
		c.batchUnlock(cy.leaf)
	}
	if cur, ok := st.cycles[cy.leaf.Pack()]; ok && cur == cy {
		delete(st.cycles, cy.leaf.Pack())
	}
	for _, op := range cy.ops {
		op.cy = nil
		c.failWOp(op, err)
		if op != stepped {
			st.wake = append(st.wake, op)
		}
	}
	c.releaseWCycle(cy)
}

// releaseWCycle drains any in-flight completion and drops the image.
func (c *Client) releaseWCycle(cy *wCycle) {
	c.dc.Poll(cy.h)
	cy.h = nil
	cy.img = nil
	cy.settled = nil
	cy.ops = nil
}
