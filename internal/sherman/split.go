package sherman

import (
	"encoding/binary"
	"fmt"

	"chime/internal/dmsim"
	"chime/internal/nodelayout"
)

// Up-propagation after a split, following the same Step 1–3 protocol as
// CHIME (which inherits it from Sherman, §4.4 of the CHIME paper).

func (c *Client) propagate(path []pathEntry, childLevel uint8, splitKey uint64, rightAddr dmsim.GAddr) error {
	parentLevel := childLevel + 1
	var parentAddr dmsim.GAddr
	for _, pe := range path {
		if pe.level == parentLevel {
			parentAddr = pe.addr
			break
		}
	}
	for attempt := 0; attempt < maxRetries; attempt++ {
		if parentAddr.IsNil() {
			if err := c.refreshRoot(); err != nil {
				return err
			}
			if c.rootLevel == childLevel {
				done, err := c.growRoot(childLevel, splitKey, rightAddr)
				if err != nil {
					return err
				}
				if done {
					return nil
				}
				continue
			}
			addr, err := c.findParentAt(parentLevel, splitKey)
			if err != nil {
				return err
			}
			parentAddr = addr
		}
		done, err := c.insertIntoParent(parentAddr, parentLevel, splitKey, rightAddr, path)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		parentAddr = dmsim.NilGAddr
		c.ys.yield(c.dc)
	}
	return fmt.Errorf("sherman: propagate(%#x) exhausted", splitKey)
}

func (c *Client) growRoot(oldLevel uint8, splitKey uint64, rightAddr dmsim.GAddr) (bool, error) {
	oldRoot, curLevel := c.rootAddr, c.rootLevel
	if curLevel != oldLevel {
		return false, nil
	}
	newRoot, err := c.dc.AllocRPC(0, c.ix.inner.size)
	if err != nil {
		return false, err
	}
	img := make([]byte, c.ix.inner.size)
	c.ix.inner.encodeHeader(img, header{
		valid: true, fenceInf: true, level: oldLevel + 1, nkeys: 1,
		leftmost: oldRoot,
	})
	child := make([]byte, 8)
	binary.LittleEndian.PutUint64(child, rightAddr.Pack())
	c.ix.inner.encodeEntry(img, 0, entry{occupied: true, key: splitKey, val: child}, false)
	if err := c.dc.Write(newRoot, img); err != nil {
		return false, err
	}
	prev, ok, err := c.dc.CAS(c.ix.super, packSuper(oldRoot, oldLevel), packSuper(newRoot, oldLevel+1))
	if err != nil {
		return false, err
	}
	if !ok {
		c.rootAddr, c.rootLevel = unpackSuper(prev)
		return false, nil
	}
	c.rootAddr, c.rootLevel = newRoot, oldLevel+1
	return true, nil
}

// encodeInternalNode serializes a decoded internal node over prev (nil
// for fresh nodes; non-nil bumps NV as a node write).
func (c *Client) encodeInternalNode(n *node, prev []byte) []byte {
	lay := c.ix.inner
	img := make([]byte, lay.size)
	if prev != nil {
		copy(img, prev)
	}
	hdr := n.hdr
	hdr.nkeys = len(n.piv)
	c.ix.inner.encodeHeader(img, hdr)
	child := make([]byte, 8)
	for i := range n.piv {
		binary.LittleEndian.PutUint64(child, n.kids[i].Pack())
		lay.encodeEntry(img, i, entry{occupied: true, key: n.piv[i], val: child}, false)
	}
	if prev != nil {
		nodelayout.BumpNV(img, lay.allCells)
	}
	return img
}

func (c *Client) insertIntoParent(addr dmsim.GAddr, level uint8, splitKey uint64, rightAddr dmsim.GAddr, path []pathEntry) (bool, error) {
	for hops := 0; hops <= maxRetries; hops++ {
		if err := c.lock(addr); err != nil {
			return false, err
		}
		img, hdr, err := c.readNode(c.ix.inner, addr)
		if err != nil {
			c.unlock(addr)
			return false, err
		}
		if !hdr.valid || hdr.level != level {
			c.unlock(addr)
			return false, nil
		}
		n := c.decodeInternal(addr, img, hdr)
		if !n.covers(splitKey) {
			sib := hdr.sibling
			c.unlock(addr)
			if !hdr.fenceInf && splitKey >= hdr.fenceHi && !sib.IsNil() {
				addr = sib
				continue
			}
			return false, nil
		}

		// Sorted insert of the routing entry.
		pos := 0
		for pos < len(n.piv) && n.piv[pos] < splitKey {
			pos++
		}
		n.piv = append(n.piv, 0)
		copy(n.piv[pos+1:], n.piv[pos:])
		n.piv[pos] = splitKey
		n.kids = append(n.kids, dmsim.NilGAddr)
		copy(n.kids[pos+1:], n.kids[pos:])
		n.kids[pos] = rightAddr

		if len(n.piv) <= c.ix.inner.span {
			out := c.encodeInternalNode(n, img)
			if err := c.writeNodeAndUnlock(addr, out); err != nil {
				return false, err
			}
			c.cn.cachePut(addr, n)
			return true, nil
		}

		// Parent overflow: split it; the median pivot moves up.
		mid := len(n.piv) / 2
		midKey := n.piv[mid]
		newAddr, err := c.alloc.Alloc(c.ix.inner.size)
		if err != nil {
			c.unlock(addr)
			return false, err
		}
		right := &node{
			addr: newAddr,
			hdr: header{
				valid: true, level: level,
				fenceLow: midKey, fenceHi: hdr.fenceHi, fenceInf: hdr.fenceInf,
				sibling: hdr.sibling,
			},
			piv:  append([]uint64(nil), n.piv[mid+1:]...),
			kids: append([]dmsim.GAddr(nil), n.kids[mid+1:]...),
		}
		right.hdr.leftmost = n.kids[mid]
		if err := c.dc.Write(newAddr, c.encodeInternalNode(right, nil)); err != nil {
			c.unlock(addr)
			return false, err
		}
		n.piv = n.piv[:mid]
		n.kids = n.kids[:mid]
		n.hdr.fenceInf = false
		n.hdr.fenceHi = midKey
		n.hdr.sibling = newAddr
		if err := c.writeNodeAndUnlock(addr, c.encodeInternalNode(n, img)); err != nil {
			return false, err
		}
		c.cn.cachePut(addr, n)
		if err := c.propagate(path, level, midKey, newAddr); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, fmt.Errorf("sherman: insertIntoParent(%#x) exhausted", splitKey)
}

func (c *Client) findParentAt(level uint8, key uint64) (dmsim.GAddr, error) {
	for attempt := 0; attempt < maxRetries; attempt++ {
		if err := c.refreshRoot(); err != nil {
			return dmsim.NilGAddr, err
		}
		if c.rootLevel < level {
			c.ys.yield(c.dc)
			continue
		}
		cur := c.rootAddr
		for {
			img, hdr, err := c.readNode(c.ix.inner, cur)
			if err != nil {
				return dmsim.NilGAddr, err
			}
			if !hdr.valid {
				break
			}
			if key < hdr.fenceLow || (!hdr.fenceInf && key >= hdr.fenceHi) {
				if !hdr.fenceInf && key >= hdr.fenceHi && !hdr.sibling.IsNil() {
					cur = hdr.sibling
					continue
				}
				break
			}
			if hdr.level == level {
				return cur, nil
			}
			if hdr.level < level {
				break
			}
			n := c.decodeInternal(cur, img, hdr)
			child := n.childFor(key)
			if child.IsNil() {
				break
			}
			cur = child
		}
		c.ys.yield(c.dc)
	}
	return dmsim.NilGAddr, fmt.Errorf("sherman: findParentAt(%d, %#x) exhausted", level, key)
}
