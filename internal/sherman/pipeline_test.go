package sherman

import (
	"encoding/binary"
	"errors"
	"testing"

	"chime/internal/dmsim"
)

func TestSearchBatchMatchesSearch(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	const n = 2000
	for i := 1; i <= n; i++ {
		if err := cl.Insert(uint64(i)*5, val8(uint64(i)*13)); err != nil {
			t.Fatal(err)
		}
	}
	var keys []uint64
	for i := 0; i < 150; i++ {
		k := uint64(i*41%n+1) * 5
		if i%6 == 0 {
			k += 2 // absent
		}
		keys = append(keys, k)
	}
	for _, depth := range []int{1, 4, 8, 32} {
		vals, errs := cl.SearchBatch(keys, depth)
		for i, k := range keys {
			if k%5 != 0 {
				if !errors.Is(errs[i], ErrNotFound) {
					t.Fatalf("depth %d key %d: err = %v, want ErrNotFound", depth, k, errs[i])
				}
				continue
			}
			if errs[i] != nil {
				t.Fatalf("depth %d key %d: %v", depth, k, errs[i])
			}
			if got := binary.LittleEndian.Uint64(vals[i]); got != (k/5)*13 {
				t.Fatalf("depth %d key %d: value %d, want %d", depth, k, got, (k/5)*13)
			}
		}
	}
	if cl.DM().Inflight() != 0 {
		t.Fatalf("leaked %d in-flight verbs", cl.DM().Inflight())
	}
}

func TestSearchBatchPipelinesColdCache(t *testing.T) {
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 512 << 20
	ix, err := Bootstrap(dmsim.MustNewFabric(cfg), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	loader := ix.NewComputeNode(64 << 20).NewClient()
	const n = 4000
	for i := 1; i <= n; i++ {
		if err := loader.Insert(uint64(i)*3, val8(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	var keys []uint64
	for i := 0; i < 200; i++ {
		keys = append(keys, uint64(i*23%n+1)*3)
	}
	elapsed := func(depth int) int64 {
		cl := ix.NewComputeNode(0).NewClient() // cold: cache disabled
		start := cl.DM().Now()
		vals, errs := cl.SearchBatch(keys, depth)
		for i := range keys {
			if errs[i] != nil {
				t.Fatalf("depth %d key %d: %v", depth, keys[i], errs[i])
			}
			if binary.LittleEndian.Uint64(vals[i]) != keys[i]/3 {
				t.Fatalf("depth %d: wrong value for key %d", depth, keys[i])
			}
		}
		return cl.DM().Now() - start
	}
	seq := elapsed(1)
	pipe := elapsed(8)
	t.Logf("sherman cold-cache batch: depth-1 %dns, depth-8 %dns (%.2fx)",
		seq, pipe, float64(seq)/float64(pipe))
	if pipe*2 >= seq {
		t.Fatalf("depth-8 pipelining too slow: %dns vs sequential %dns", pipe, seq)
	}
}
