package sherman

import (
	"testing"

	"chime/internal/dmsim"
)

func TestHeaderCodecRoundTrip(t *testing.T) {
	lay := newLayout(DefaultOptions(), false)
	img := make([]byte, lay.size)
	want := header{
		valid:    true,
		fenceInf: true,
		level:    3,
		nkeys:    17,
		fenceLow: 100,
		fenceHi:  99999,
		sibling:  dmsim.GAddr{MN: 1, Off: 4096},
		leftmost: dmsim.GAddr{MN: 0, Off: 8192},
	}
	lay.encodeHeader(img, want)
	got := lay.decodeHeader(img)
	if got != want {
		t.Fatalf("header round trip: %+v != %+v", got, want)
	}
}

func TestHeaderNkeysClamped(t *testing.T) {
	lay := newLayout(DefaultOptions(), false)
	img := make([]byte, lay.size)
	lay.encodeHeader(img, header{nkeys: 9999})
	if got := lay.decodeHeader(img); got.nkeys > lay.span {
		t.Fatalf("torn nkeys not clamped: %d", got.nkeys)
	}
}

func TestEntryCodecRoundTrip(t *testing.T) {
	for _, leaf := range []bool{true, false} {
		lay := newLayout(DefaultOptions(), leaf)
		img := make([]byte, lay.size)
		val := make([]byte, len(lay.decodeEntry(img, 0).val))
		for i := range val {
			val[i] = byte(i)
		}
		lay.encodeEntry(img, 3, entry{occupied: true, key: 0xABCDEF, val: val}, true)
		got := lay.decodeEntry(img, 3)
		if !got.occupied || got.key != 0xABCDEF || string(got.val) != string(val) {
			t.Fatalf("leaf=%v entry round trip: %+v", leaf, got)
		}
		if lay.decodeEntry(img, 2).occupied || lay.decodeEntry(img, 4).occupied {
			t.Fatal("neighbors contaminated")
		}
	}
}

func TestChildForBoundaries(t *testing.T) {
	n := &node{
		hdr: header{leftmost: dmsim.GAddr{Off: 1}},
		piv: []uint64{10, 20, 30},
		kids: []dmsim.GAddr{
			{Off: 2}, {Off: 3}, {Off: 4},
		},
	}
	n.hdr.leftmost = dmsim.GAddr{Off: 1}
	cases := map[uint64]uint64{0: 1, 9: 1, 10: 2, 19: 2, 20: 3, 30: 4, 1000: 4}
	for key, want := range cases {
		if got := n.childFor(key); got.Off != want {
			t.Errorf("childFor(%d) = %d, want %d", key, got.Off, want)
		}
	}
}

func TestSortEntries(t *testing.T) {
	es := []entry{
		{occupied: true, key: 30},
		{occupied: false, key: 5}, // skipped
		{occupied: true, key: 10},
		{occupied: true, key: 20},
	}
	out := sortEntries(es)
	if len(out) != 3 || out[0].key != 10 || out[2].key != 30 {
		t.Fatalf("sortEntries: %+v", out)
	}
}

func TestScanStartBeyondAllKeys(t *testing.T) {
	_, cl := newTestTree(t, DefaultOptions())
	for i := uint64(1); i <= 100; i++ {
		if err := cl.Insert(i, val8(i)); err != nil {
			t.Fatal(err)
		}
	}
	out, err := cl.Scan(1000, 10)
	if err != nil || len(out) != 0 {
		t.Fatalf("past-end scan: %d %v", len(out), err)
	}
	if out, _ := cl.Scan(50, 0); out != nil {
		t.Fatal("count=0 must return nil")
	}
}
