package sherman

import (
	"encoding/binary"

	"chime/internal/dmsim"
	"chime/internal/obs"
)

// Public operation entry points and the hybrid one-sided/offload router
// wiring; the same shape as internal/core's offload.go. Support gates
// run before the router so unsupported ops never pollute its cost
// estimates; a routed offload that falls back redoes the op one-sided
// and reports the combined cost, so adaptive mode learns the true price.

// offloadUpdateOK: indirect values need client-side allocation and
// lease locks carry the holder's identity — both stay one-sided.
func (ix *Index) offloadUpdateOK() bool {
	return !ix.opts.Indirect && !ix.opts.LeaseLocks
}

// Search performs a point query. With offload enabled the op may
// execute as a single LeafSearchAtMN RPC instead of fetching the whole
// leaf node to the CN.
func (c *Client) Search(key uint64) ([]byte, error) {
	if sp := c.obs.Tracer.Begin("sherman.search", "idx", c.dc.ID(), c.dc.Now()); sp != nil {
		defer func() { sp.End(c.dc.Now()) }()
	}
	if fl := c.dc.Flight(); fl != nil {
		fl.Begin(obs.OpSearch, c.dc.Now())
		defer func() { fl.End(c.dc.Now()) }()
	}
	if c.router == nil {
		return c.searchOneSided(key)
	}
	if !c.router.UseOffload() {
		t0, trips0 := c.dc.Now(), c.dc.Stats().Trips
		val, err := c.searchOneSided(key)
		c.router.ObserveOneSided(c.dc.Now()-t0, c.dc.Stats().Trips-trips0)
		return val, err
	}
	t0 := c.dc.Now()
	n, st, err := c.dc.LeafSearchAtMN(c.ix.mnprog, c.ix.offMN, key, 0, c.offBuf)
	if err != nil {
		return nil, err
	}
	if !st.Fallback() {
		c.router.ObserveOffload(c.dc.Now() - t0)
		if st == dmsim.OffloadNotFound {
			return nil, ErrNotFound
		}
		return append([]byte(nil), c.offBuf[:n]...), nil
	}
	val, err := c.searchOneSided(key)
	c.router.ObserveOffload(c.dc.Now() - t0)
	return val, err
}

// Update overwrites an existing key's value, possibly as a single
// CompareAndCASAtMN RPC.
func (c *Client) Update(key uint64, value []byte) error {
	if sp := c.obs.Tracer.Begin("sherman.update", "idx", c.dc.ID(), c.dc.Now()); sp != nil {
		defer func() { sp.End(c.dc.Now()) }()
	}
	if fl := c.dc.Flight(); fl != nil {
		fl.Begin(obs.OpUpdate, c.dc.Now())
		defer func() { fl.End(c.dc.Now()) }()
	}
	if c.router == nil || !c.ix.offloadUpdateOK() {
		return c.updateOneSided(key, value)
	}
	if !c.router.UseOffload() {
		t0, trips0 := c.dc.Now(), c.dc.Stats().Trips
		err := c.updateOneSided(key, value)
		c.router.ObserveOneSided(c.dc.Now()-t0, c.dc.Stats().Trips-trips0)
		return err
	}
	t0 := c.dc.Now()
	st, err := c.dc.CompareAndCASAtMN(c.ix.mnprog, c.ix.offMN, key, 0, value)
	if err != nil {
		return err
	}
	if !st.Fallback() {
		c.router.ObserveOffload(c.dc.Now() - t0)
		if st == dmsim.OffloadNotFound {
			return ErrNotFound
		}
		return nil
	}
	err = c.updateOneSided(key, value)
	c.router.ObserveOffload(c.dc.Now() - t0)
	return err
}

// Scan returns up to count items with keys >= start in ascending order,
// possibly as a single ScatterGatherScan RPC.
func (c *Client) Scan(start uint64, count int) ([]KV, error) {
	if count <= 0 {
		return nil, nil
	}
	if sp := c.obs.Tracer.Begin("sherman.scan", "idx", c.dc.ID(), c.dc.Now()); sp != nil {
		defer func() { sp.End(c.dc.Now()) }()
	}
	if fl := c.dc.Flight(); fl != nil {
		fl.Begin(obs.OpScan, c.dc.Now())
		defer func() { fl.End(c.dc.Now()) }()
	}
	if c.router == nil {
		return c.scanOneSided(start, count)
	}
	if !c.router.UseOffload() {
		t0, trips0 := c.dc.Now(), c.dc.Stats().Trips
		out, err := c.scanOneSided(start, count)
		c.router.ObserveOneSided(c.dc.Now()-t0, c.dc.Stats().Trips-trips0)
		return out, err
	}
	t0 := c.dc.Now()
	valSize := c.ix.opts.ValueSize
	recSize := 8 + valSize
	dst := make([]byte, count*recSize)
	n, st, err := c.dc.ScatterGatherScan(c.ix.mnprog, c.ix.offMN, start, 0, count, dst)
	if err != nil {
		return nil, err
	}
	if !st.Fallback() {
		c.router.ObserveOffload(c.dc.Now() - t0)
		out := make([]KV, 0, n/recSize)
		for off := 0; off+recSize <= n; off += recSize {
			out = append(out, KV{
				Key:   binary.LittleEndian.Uint64(dst[off : off+8]),
				Value: dst[off+8 : off+recSize],
			})
		}
		return out, nil
	}
	out, err := c.scanOneSided(start, count)
	c.router.ObserveOffload(c.dc.Now() - t0)
	return out, err
}

// OffloadStats reports how many of this client's routed ops went to
// each path (zeros with offload off).
func (c *Client) OffloadStats() (offloaded, onesided uint64) {
	return c.router.Stats()
}
