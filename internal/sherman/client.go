package sherman

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"sync"

	"chime/internal/dmsim"
	"chime/internal/lease"
	"chime/internal/locktable"
	"chime/internal/nodelayout"
	"chime/internal/obs"
	"chime/internal/offroute"
)

// node is a decoded internal node: header plus sorted routing entries
// (slots [0, nkeys) hold pivots ascending; child addresses are packed in
// the entry value word).
type node struct {
	addr dmsim.GAddr
	hdr  header
	piv  []uint64
	kids []dmsim.GAddr
}

func (n *node) covers(key uint64) bool {
	return key >= n.hdr.fenceLow && (n.hdr.fenceInf || key < n.hdr.fenceHi)
}

func (n *node) childFor(key uint64) dmsim.GAddr {
	lo, hi := 0, len(n.piv)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.piv[mid] > key {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == 0 {
		return n.hdr.leftmost
	}
	return n.kids[lo-1]
}

// ComputeNode holds the CN-shared internal-node cache and the local
// lock table (Sherman's signature optimization).
type ComputeNode struct {
	ix    *Index
	locks *locktable.Table

	mu     sync.Mutex
	budget int64
	used   int64
	lru    *list.List
	items  map[dmsim.GAddr]*list.Element

	hits, misses int64

	obs obs.IndexInstruments
}

// SetObserver attaches an observability sink; clients created afterward
// count retries, torn reads, lock backoffs and sibling chases into it
// and emit per-operation trace spans when the sink traces. Call before
// NewClient. With no sink every instrumented call is a no-op.
func (cn *ComputeNode) SetObserver(s *obs.Sink) {
	cn.obs = obs.ResolveIndex(s)
}

type cacheSlot struct {
	addr dmsim.GAddr
	n    *node
}

// NewComputeNode creates CN state with an internal-node cache budget.
func (ix *Index) NewComputeNode(cacheBytes int64) *ComputeNode {
	return &ComputeNode{
		ix:     ix,
		locks:  locktable.New(),
		budget: cacheBytes,
		lru:    list.New(),
		items:  make(map[dmsim.GAddr]*list.Element),
	}
}

// CacheStats reports hit/miss/occupancy counters.
func (cn *ComputeNode) CacheStats() (hits, misses, nodes int64, usedBytes int64) {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.hits, cn.misses, int64(len(cn.items)), cn.used
}

func (cn *ComputeNode) cacheGet(addr dmsim.GAddr) *node {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if el, ok := cn.items[addr]; ok {
		cn.hits++
		cn.lru.MoveToFront(el)
		return el.Value.(*cacheSlot).n
	}
	cn.misses++
	return nil
}

func (cn *ComputeNode) cachePut(addr dmsim.GAddr, n *node) {
	size := int64(cn.ix.inner.size)
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if cn.budget <= 0 {
		return
	}
	if el, ok := cn.items[addr]; ok {
		el.Value.(*cacheSlot).n = n
		cn.lru.MoveToFront(el)
		return
	}
	cn.items[addr] = cn.lru.PushFront(&cacheSlot{addr: addr, n: n})
	cn.used += size
	for cn.used > cn.budget {
		back := cn.lru.Back()
		if back == nil {
			break
		}
		slot := back.Value.(*cacheSlot)
		cn.lru.Remove(back)
		delete(cn.items, slot.addr)
		cn.used -= size
	}
}

func (cn *ComputeNode) cacheDrop(addr dmsim.GAddr) {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if el, ok := cn.items[addr]; ok {
		cn.lru.Remove(el)
		delete(cn.items, addr)
		cn.used -= int64(cn.ix.inner.size)
	}
}

// Client is one Sherman client; not safe for concurrent use.
type Client struct {
	cn    *ComputeNode
	ix    *Index
	dc    *dmsim.Client
	alloc *dmsim.ChunkAllocator

	rootAddr  dmsim.GAddr
	rootLevel uint8
	ys        yieldState

	// Write-pipeline counters: leaf write cycles executed and batch keys
	// absorbed into an already-open cycle (per-leaf write combining).
	wcCycles   int64
	wcCombined int64

	obs obs.IndexInstruments

	// router decides one-sided vs. MN-side offload per op (offload.go);
	// nil when Options.Offload is off. offBuf is the reusable offload
	// response buffer.
	router *offroute.Router
	offBuf []byte
}

// NewClient creates a client bound to the compute node.
func (cn *ComputeNode) NewClient() *Client {
	dc := cn.ix.fabric.NewClient()
	dc.SetFlight(cn.obs.Flight.NewFlight(dc.ID()))
	bufSize := cn.ix.opts.ValueSize
	if bufSize < 8 {
		bufSize = 8
	}
	return &Client{
		cn: cn, ix: cn.ix, dc: dc,
		alloc:  dmsim.NewChunkAllocator(dc, int(dc.ID())%cn.ix.fabric.MNs()),
		obs:    cn.obs,
		router: offroute.New(cn.ix.opts.Offload),
		offBuf: make([]byte, bufSize),
	}
}

// DM exposes the fabric client for the benchmark harness.
func (c *Client) DM() *dmsim.Client { return c.dc }

// chargeLocalWork charges the per-step CN-side compute, labeled as
// cache-lookup time in the flight ledger (the local work is dominated by
// the index-cache probe and node decode).
func (c *Client) chargeLocalWork() {
	fl := c.dc.Flight()
	prev := fl.SetPhase(obs.PhaseCacheLookup)
	c.dc.Advance(localWorkNs)
	fl.SetPhase(prev)
}

func (c *Client) refreshRoot() error {
	var b [8]byte
	if err := c.dc.Read(c.ix.super, b[:]); err != nil {
		return err
	}
	c.rootAddr, c.rootLevel = unpackSuper(binary.LittleEndian.Uint64(b[:]))
	return nil
}

// readNode fetches and validates a whole node image of the given layout.
func (c *Client) readNode(lay *layout, addr dmsim.GAddr) ([]byte, header, error) {
	img := make([]byte, lay.size)
	for try := 0; try < maxRetries; try++ {
		if err := c.dc.Read(addr.Add(lineSize), img[lineSize:]); err != nil {
			return nil, header{}, err
		}
		if err := nodelayout.CheckVersions(img, 0, lay.allCells); err != nil {
			c.obs.TornReads.Inc()
			c.ys.yield(c.dc)
			continue
		}
		c.ys.reset()
		return img, lay.decodeHeader(img), nil
	}
	return nil, header{}, fmt.Errorf("sherman: node %v: torn-read retries exhausted", addr)
}

func (c *Client) decodeInternal(addr dmsim.GAddr, img []byte, hdr header) *node {
	n := &node{addr: addr, hdr: hdr}
	for i := 0; i < hdr.nkeys; i++ {
		e := c.ix.inner.decodeEntry(img, i)
		n.piv = append(n.piv, e.key)
		n.kids = append(n.kids, dmsim.UnpackGAddr(binary.LittleEndian.Uint64(e.val[:8])))
	}
	return n
}

type pathEntry struct {
	addr  dmsim.GAddr
	level uint8
}

// traverse descends to the leaf covering key, preferring cached internal
// nodes, and returns the leaf address plus the visited path.
func (c *Client) traverse(key uint64) (dmsim.GAddr, []pathEntry, error) {
	for attempt := 0; attempt < maxRetries; attempt++ {
		if c.rootAddr.IsNil() {
			if err := c.refreshRoot(); err != nil {
				return dmsim.NilGAddr, nil, err
			}
		}
		c.chargeLocalWork()
		if c.rootLevel == 0 {
			return c.rootAddr, nil, nil
		}
		cur := c.rootAddr
		var path []pathEntry
		restart := false
		for hop := 0; hop < maxRetries && !restart; hop++ {
			fromCache := true
			n := c.cn.cacheGet(cur)
			if n == nil {
				fromCache = false
				img, hdr, err := c.readNode(c.ix.inner, cur)
				if err != nil {
					return dmsim.NilGAddr, nil, err
				}
				if !hdr.valid {
					restart = true
					break
				}
				n = c.decodeInternal(cur, img, hdr)
				c.cn.cachePut(cur, n)
			}
			if !n.covers(key) {
				if fromCache {
					c.cn.cacheDrop(cur)
					continue
				}
				if !n.hdr.fenceInf && key >= n.hdr.fenceHi && !n.hdr.sibling.IsNil() {
					c.obs.SiblingChases.Inc()
					cur = n.hdr.sibling
					continue
				}
				restart = true
				break
			}
			path = append(path, pathEntry{addr: cur, level: n.hdr.level})
			child := n.childFor(key)
			if child.IsNil() {
				if fromCache {
					c.cn.cacheDrop(cur)
					continue
				}
				restart = true
				break
			}
			if n.hdr.level == 1 {
				return child, path, nil
			}
			cur = child
		}
		c.obs.Retries.Inc()
		c.rootAddr = dmsim.NilGAddr
		c.ys.yield(c.dc)
	}
	return dmsim.NilGAddr, nil, fmt.Errorf("sherman: traverse(%#x) exhausted", key)
}

// searchOneSided performs a point query with one-sided verbs, fetching
// the entire leaf node — the read amplification CHIME's hopscotch leaves
// eliminate. The public Search (offload.go) routes between this and the
// MN-side offload program.
func (c *Client) searchOneSided(key uint64) ([]byte, error) {
	for attempt := 0; attempt < maxRetries; attempt++ {
		leaf, _, err := c.traverse(key)
		if err != nil {
			return nil, err
		}
		val, err := c.searchLeafChain(leaf, key)
		if err == errRestart {
			c.obs.Retries.Inc()
			c.rootAddr = dmsim.NilGAddr // a split root-leaf invalidates it
			c.ys.yield(c.dc)
			continue
		}
		return val, err
	}
	return nil, fmt.Errorf("sherman: Search(%#x) exhausted", key)
}

func (c *Client) searchLeafChain(leaf dmsim.GAddr, key uint64) ([]byte, error) {
	lay := c.ix.leaf
	for hops := 0; hops <= maxRetries; hops++ {
		img, hdr, err := c.readNode(lay, leaf)
		if err != nil {
			return nil, err
		}
		if !hdr.valid {
			return nil, errRestart
		}
		if key < hdr.fenceLow {
			return nil, errRestart
		}
		if !hdr.fenceInf && key >= hdr.fenceHi {
			if hdr.sibling.IsNil() {
				return nil, errRestart
			}
			c.obs.SiblingChases.Inc()
			leaf = hdr.sibling // half-split validation via fence keys
			continue
		}
		for i := 0; i < lay.span; i++ {
			e := lay.decodeEntry(img, i)
			if e.occupied && e.key == key {
				if c.ix.opts.Indirect {
					return c.readIndirect(e.val, key)
				}
				return append([]byte(nil), e.val[:lay.valSize]...), nil
			}
		}
		return nil, ErrNotFound
	}
	return nil, fmt.Errorf("sherman: leaf chain too long")
}

func (c *Client) readIndirect(ptrBytes []byte, key uint64) ([]byte, error) {
	ptr := dmsim.UnpackGAddr(binary.LittleEndian.Uint64(ptrBytes[:8]))
	if ptr.IsNil() {
		return nil, errRestart
	}
	buf := make([]byte, 8+c.ix.opts.ValueSize)
	if err := c.dc.Read(ptr, buf); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(buf[:8]) != key {
		return nil, errRestart
	}
	return buf[8:], nil
}

// lock acquires a node's lock bit, absorbing same-CN contention in the
// local lock table (Sherman's design): only the first local contender
// issues remote CASes; later ones receive the lock by local handover.
func (c *Client) lock(addr dmsim.GAddr) error {
	// All time until the lock is held — handover waits, CAS round
	// trips, backoff — is lock time in the flight ledger.
	fl := c.dc.Flight()
	defer fl.SetPhase(fl.SetPhase(obs.PhaseLockBackoff))
	if c.ix.opts.LeaseLocks {
		return c.lockLease(addr)
	}
	if _, handover := c.cn.locks.Acquire(c.dc, addr.Pack()); handover {
		return nil
	}
	for try := 0; try < maxRetries; try++ {
		_, ok, err := c.dc.MaskedCAS(addr, 0, 1, 1, 1)
		if err != nil {
			return err
		}
		if ok {
			c.ys.reset()
			return nil
		}
		c.obs.LockBackoffs.Inc()
		c.ys.yield(c.dc)
	}
	return fmt.Errorf("sherman: lock %v starved", addr)
}

// lockLease is the lease-mode acquisition: the CAS installs our
// (owner, expiry) lease and a lock stuck under an expired lease is
// stolen with a full-word CAS (internal/lease). No repair read is
// needed — every write re-reads the node under the lock before
// touching it, so a steal leaves nothing stale behind.
func (c *Client) lockLease(addr dmsim.GAddr) error {
	leaseNs := c.ix.opts.LeaseNs
	if leaseNs <= 0 {
		leaseNs = lease.DefaultNs
	}
	for try := 0; try < maxRetries; try++ {
		word := lease.Word(c.dc.ID(), c.dc.Now()+leaseNs)
		prev, ok, err := c.dc.MaskedCAS(addr, 0, word, 1, ^uint64(0))
		if err != nil {
			return err
		}
		if ok {
			c.ys.reset()
			return nil
		}
		if lease.Expired(prev, c.dc.Now()) {
			c.obs.LeaseExpired.Inc()
			if _, won, err := c.dc.CAS(addr, prev, word); err != nil {
				return err
			} else if won {
				c.obs.Recoveries.Inc()
				c.ys.reset()
				return nil
			}
		}
		c.obs.LockBackoffs.Inc()
		c.ys.yield(c.dc)
	}
	return fmt.Errorf("sherman: lock %v starved", addr)
}

func (c *Client) unlock(addr dmsim.GAddr) error {
	if c.ix.opts.LeaseLocks {
		var b [8]byte
		return c.dc.Write(addr, b[:])
	}
	if c.cn.locks.ReleaseHandover(c.dc, addr.Pack(), 1) {
		return nil
	}
	var b [8]byte
	if err := c.dc.Write(addr, b[:]); err != nil {
		return err
	}
	c.cn.locks.ReleaseRemote(c.dc, addr.Pack())
	return nil
}

// writeEntryAndUnlock writes one entry cell and releases the lock: a
// combined doorbell batch when no local contender waits, a local
// handover otherwise.
func (c *Client) writeEntryAndUnlock(lay *layout, addr dmsim.GAddr, img []byte, slot int) error {
	cellC := lay.entryCells[slot]
	if c.cn.locks.HasWaiters(addr.Pack()) {
		if err := c.dc.Write(addr.Add(uint64(cellC.Off)), img[cellC.Off:cellC.End()]); err != nil {
			return err
		}
		if c.cn.locks.ReleaseHandover(c.dc, addr.Pack(), 1) {
			return nil
		}
	}
	var zero [8]byte
	if err := c.dc.WriteBatch(
		[]dmsim.GAddr{addr.Add(uint64(cellC.Off)), addr},
		[][]byte{img[cellC.Off:cellC.End()], zero[:]},
	); err != nil {
		return err
	}
	c.cn.locks.ReleaseRemote(c.dc, addr.Pack())
	return nil
}

// writeNodeAndUnlock writes the whole node body and releases the lock.
func (c *Client) writeNodeAndUnlock(addr dmsim.GAddr, img []byte) error {
	if c.cn.locks.HasWaiters(addr.Pack()) {
		if err := c.dc.Write(addr.Add(lineSize), img[lineSize:]); err != nil {
			return err
		}
		if c.cn.locks.ReleaseHandover(c.dc, addr.Pack(), 1) {
			return nil
		}
	}
	var zero [8]byte
	if err := c.dc.WriteBatch(
		[]dmsim.GAddr{addr.Add(lineSize), addr},
		[][]byte{img[lineSize:], zero[:]},
	); err != nil {
		return err
	}
	c.cn.locks.ReleaseRemote(c.dc, addr.Pack())
	return nil
}

func (c *Client) prepareValue(key uint64, value []byte) ([]byte, error) {
	if !c.ix.opts.Indirect {
		if len(value) != c.ix.opts.ValueSize {
			return nil, fmt.Errorf("sherman: value is %dB, tree stores %dB", len(value), c.ix.opts.ValueSize)
		}
		return value, nil
	}
	block := make([]byte, 8+len(value))
	binary.LittleEndian.PutUint64(block[:8], key)
	copy(block[8:], value)
	addr, err := c.alloc.Alloc(len(block))
	if err != nil {
		return nil, err
	}
	if err := c.dc.Write(addr, block); err != nil {
		return nil, err
	}
	ptr := make([]byte, 8)
	binary.LittleEndian.PutUint64(ptr, addr.Pack())
	return ptr, nil
}

// Insert adds or overwrites a key (upsert).
func (c *Client) Insert(key uint64, value []byte) error {
	if sp := c.obs.Tracer.Begin("sherman.insert", "idx", c.dc.ID(), c.dc.Now()); sp != nil {
		defer func() { sp.End(c.dc.Now()) }()
	}
	if fl := c.dc.Flight(); fl != nil {
		fl.Begin(obs.OpInsert, c.dc.Now())
		defer func() { fl.End(c.dc.Now()) }()
	}
	val, err := c.prepareValue(key, value)
	if err != nil {
		return err
	}
	for attempt := 0; attempt < maxRetries; attempt++ {
		leaf, path, err := c.traverse(key)
		if err != nil {
			return err
		}
		done, err := c.insertIntoLeaf(leaf, path, key, val)
		if err == errRestart {
			c.obs.Retries.Inc()
			c.rootAddr = dmsim.NilGAddr
			c.ys.yield(c.dc)
			continue
		}
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
	return fmt.Errorf("sherman: Insert(%#x) exhausted", key)
}

func (c *Client) insertIntoLeaf(leaf dmsim.GAddr, path []pathEntry, key uint64, val []byte) (bool, error) {
	lay := c.ix.leaf
	var img []byte
	var hdr header
	// Chase the sibling chain across half-splits and stale caches, as
	// the read path does.
	for hops := 0; ; hops++ {
		if hops > maxRetries {
			return false, fmt.Errorf("sherman: insert(%#x): sibling chain too long", key)
		}
		if err := c.lock(leaf); err != nil {
			return false, err
		}
		var err error
		img, hdr, err = c.readNode(lay, leaf)
		if err != nil {
			c.unlock(leaf)
			return false, err
		}
		if !hdr.valid || key < hdr.fenceLow {
			c.unlock(leaf)
			return false, errRestart
		}
		if !hdr.fenceInf && key >= hdr.fenceHi {
			next := hdr.sibling
			c.unlock(leaf)
			if next.IsNil() {
				return false, errRestart
			}
			c.obs.SiblingChases.Inc()
			leaf = next
			continue
		}
		break
	}

	freeSlot := -1
	for i := 0; i < lay.span; i++ {
		e := lay.decodeEntry(img, i)
		if e.occupied && e.key == key {
			// Upsert in place: one entry write + combined unlock.
			lay.encodeEntry(img, i, entry{occupied: true, key: key, val: val}, true)
			return true, c.writeEntryAndUnlock(lay, leaf, img, i)
		}
		if !e.occupied && freeSlot < 0 {
			freeSlot = i
		}
	}
	if freeSlot >= 0 {
		lay.encodeEntry(img, freeSlot, entry{occupied: true, key: key, val: val}, true)
		return true, c.writeEntryAndUnlock(lay, leaf, img, freeSlot)
	}

	// Leaf full: split (median key), write new right node then old node.
	if err := c.splitLeaf(leaf, path, img, hdr); err != nil {
		return false, err
	}
	return false, nil
}

func (c *Client) splitLeaf(leaf dmsim.GAddr, path []pathEntry, img []byte, hdr header) error {
	c.obs.Splits.Inc()
	lay := c.ix.leaf
	var all []entry
	for i := 0; i < lay.span; i++ {
		e := lay.decodeEntry(img, i)
		if e.occupied {
			e.val = append([]byte(nil), e.val...)
			all = append(all, e)
		}
	}
	all = sortEntries(all)
	mid := len(all) / 2
	splitKey := all[mid].key

	rightAddr, err := c.alloc.Alloc(lay.size)
	if err != nil {
		c.unlock(leaf)
		return err
	}
	rightImg := make([]byte, lay.size)
	lay.encodeHeader(rightImg, header{
		valid: true, level: 0,
		fenceLow: splitKey, fenceHi: hdr.fenceHi, fenceInf: hdr.fenceInf,
		sibling: hdr.sibling,
	})
	for i, e := range all[mid:] {
		lay.encodeEntry(rightImg, i, e, false)
	}
	if err := c.dc.Write(rightAddr, rightImg); err != nil {
		c.unlock(leaf)
		return err
	}

	// Rewrite the old node compacted; a node write bumps NV everywhere.
	for i := 0; i < lay.span; i++ {
		lay.encodeEntry(img, i, entry{}, false)
	}
	for i, e := range all[:mid] {
		lay.encodeEntry(img, i, e, false)
	}
	lay.encodeHeader(img, header{
		valid: true, level: 0,
		fenceLow: hdr.fenceLow, fenceHi: splitKey,
		sibling: rightAddr,
	})
	nodelayout.BumpNV(img, lay.allCells)
	if err := c.writeNodeAndUnlock(leaf, img); err != nil {
		return err
	}
	return c.propagate(path, 0, splitKey, rightAddr)
}

// updateOneSided overwrites an existing key's value with one-sided
// verbs; the public Update (offload.go) routes between this and the
// MN-side offload program.
func (c *Client) updateOneSided(key uint64, value []byte) error {
	val, err := c.prepareValue(key, value)
	if err != nil {
		return err
	}
	return c.modify(key, &val)
}

// Delete removes a key.
func (c *Client) Delete(key uint64) error {
	if sp := c.obs.Tracer.Begin("sherman.delete", "idx", c.dc.ID(), c.dc.Now()); sp != nil {
		defer func() { sp.End(c.dc.Now()) }()
	}
	if fl := c.dc.Flight(); fl != nil {
		fl.Begin(obs.OpDelete, c.dc.Now())
		defer func() { fl.End(c.dc.Now()) }()
	}
	return c.modify(key, nil)
}

func (c *Client) modify(key uint64, val *[]byte) error {
	lay := c.ix.leaf
	for attempt := 0; attempt < maxRetries; attempt++ {
		leaf, _, err := c.traverse(key)
		if err != nil {
			return err
		}
		// Chase the B-link sibling chain under per-leaf locks: a stale
		// cached parent may route to a long-split leaf whose keys moved
		// right, and the chain — not a retraversal through the same
		// stale cache — is what reaches them.
		restart := false
		for hops := 0; hops <= maxRetries && !restart; hops++ {
			if err := c.lock(leaf); err != nil {
				return err
			}
			img, hdr, err := c.readNode(lay, leaf)
			if err != nil {
				c.unlock(leaf)
				return err
			}
			if !hdr.valid || key < hdr.fenceLow {
				c.unlock(leaf)
				restart = true
				break
			}
			if !hdr.fenceInf && key >= hdr.fenceHi {
				next := hdr.sibling
				c.unlock(leaf)
				if next.IsNil() {
					restart = true
					break
				}
				c.obs.SiblingChases.Inc()
				leaf = next
				continue
			}
			for i := 0; i < lay.span; i++ {
				e := lay.decodeEntry(img, i)
				if e.occupied && e.key == key {
					if val != nil {
						lay.encodeEntry(img, i, entry{occupied: true, key: key, val: *val}, true)
					} else {
						lay.encodeEntry(img, i, entry{}, true)
					}
					return c.writeEntryAndUnlock(lay, leaf, img, i)
				}
			}
			c.unlock(leaf)
			return ErrNotFound
		}
		c.obs.Retries.Inc()
		c.rootAddr = dmsim.NilGAddr
		c.ys.yield(c.dc)
	}
	return fmt.Errorf("sherman: modify(%#x) exhausted", key)
}

// KV is one scan result.
type KV struct {
	Key   uint64
	Value []byte
}

// scanOneSided returns up to count items with keys >= start in
// ascending order, reading whole leaves along the sibling chain with
// one-sided verbs; the public Scan (offload.go) routes between this and
// the MN-side offload program.
func (c *Client) scanOneSided(start uint64, count int) ([]KV, error) {
	lay := c.ix.leaf
	for attempt := 0; attempt < maxRetries; attempt++ {
		leaf, _, err := c.traverse(start)
		if err != nil {
			return nil, err
		}
		var out []KV
		restart := false
		for leaves := 0; leaves <= maxRetries; leaves++ {
			img, hdr, err := c.readNode(lay, leaf)
			if err != nil {
				return nil, err
			}
			if !hdr.valid {
				restart = true
				break
			}
			var batch []entry
			for i := 0; i < lay.span; i++ {
				e := lay.decodeEntry(img, i)
				if e.occupied && e.key >= start {
					e.val = append([]byte(nil), e.val...)
					batch = append(batch, e)
				}
			}
			for _, e := range sortEntries(batch) {
				v := e.val[:lay.valSize]
				if c.ix.opts.Indirect {
					v, err = c.readIndirect(e.val, e.key)
					if err == errRestart {
						restart = true
						break
					}
					if err != nil {
						return nil, err
					}
				}
				out = append(out, KV{Key: e.key, Value: append([]byte(nil), v...)})
			}
			if restart {
				break
			}
			if len(out) >= count {
				return out[:count], nil
			}
			if hdr.sibling.IsNil() {
				return out, nil
			}
			leaf = hdr.sibling
		}
		if restart {
			c.obs.Retries.Inc()
			c.rootAddr = dmsim.NilGAddr
			c.ys.yield(c.dc)
			continue
		}
	}
	return nil, fmt.Errorf("sherman: Scan(%#x) exhausted", start)
}
