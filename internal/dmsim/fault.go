package dmsim

import (
	"errors"

	"chime/internal/obs"
)

// Fault-injection plane. The fabric stays fault-free by default; an
// attached FaultInjector is consulted once per verb issue attempt (at
// post time, where the NIC is charged and data moves) and can impose
// five failure modes:
//
//   - Latency spike: the verb completes ExtraLatencyNs late. Pure
//     timing; no error surfaces.
//   - Dropped completion: the verb's completion is lost. The client
//     waits out one VerbTimeout of virtual time and transparently
//     reposts, up to MaxVerbRetries times, then fails with ErrTimeout.
//   - Transient NIC unavailability: the post is rejected; same
//     timeout-and-repost policy, terminal error ErrNICUnavailable.
//   - MN blackout: the target memory node is dark. Each retry advances
//     the effective issue time by one VerbTimeout, so a short blackout
//     window is ridden out by the retry budget and a long one surfaces
//     as ErrMNDown.
//   - Client crash: the client is torn down. The failing verb and every
//     subsequent verb return ErrClientCrashed; no data moves after the
//     crash point, so a mid-protocol victim leaves remote state exactly
//     as its last completed verb wrote it (possibly holding locks).
//
// Transient faults are absorbed at post time: the accumulated penalty
// rides on the completion's NIC-done time, so synchronous verbs and
// async Poll both observe the verb landing late — the fault surface of
// the async path is the late completion plus the typed error from the
// post. Decisions are the injector's; schedules driven purely by
// (seed, client, per-client sequence, virtual time) make every fault
// deterministic and independent of host scheduling.

// Typed verb-fault errors. Transparent retries absorb transient faults;
// these surface only when the retry budget is exhausted (or, for
// ErrClientCrashed, forever after the crash point).
var (
	// ErrTimeout reports a verb whose completion was lost more times
	// than the retry budget allows.
	ErrTimeout = errors.New("dmsim: verb timed out")

	// ErrNICUnavailable reports a verb rejected by a transiently
	// unavailable NIC beyond the retry budget.
	ErrNICUnavailable = errors.New("dmsim: NIC unavailable")

	// ErrMNDown reports a verb aimed at a blacked-out memory node that
	// stayed dark past the retry budget.
	ErrMNDown = errors.New("dmsim: memory node down")

	// ErrClientCrashed reports a verb issued by a crashed client. Once
	// a client crashes, every verb it issues fails with this error.
	ErrClientCrashed = errors.New("dmsim: client crashed")
)

// VerbClass is the coarse verb taxonomy the injector keys decisions on.
type VerbClass int

const (
	VerbRead VerbClass = iota
	VerbWrite
	VerbAtomic
	VerbRPC
)

// VerbInfo describes one verb issue attempt to the injector. Seq is a
// per-client counter that increments on every attempt (retries re-roll),
// so rate-based schedules are a pure function of (Client, Seq).
// Now includes the penalty accumulated by earlier retries of the same
// verb, letting window-based faults (blackouts) expire mid-retry.
type VerbInfo struct {
	Client int64
	Seq    int64
	Class  VerbClass
	MN     int
	Now    int64
}

// FaultDecision is the injector's verdict for one issue attempt. At most
// one failure field should be set; ExtraLatencyNs composes with none.
type FaultDecision struct {
	Crash          bool
	MNDown         bool
	NICUnavailable bool
	DropCompletion bool
	ExtraLatencyNs int64
}

// CASInfo reports one applied atomic to the injector, after the fact.
// LockAcquire marks the lock-acquire shape every index in this repo
// uses (compare mask = just the lock bit, swap sets it), which is what
// crash-after-N-lock-acquires schedules count.
type CASInfo struct {
	Client      int64
	MN          int
	Off         uint64
	Swapped     bool
	LockAcquire bool
}

// FaultInjector is consulted by the fabric's verb layer. Implementations
// must be safe for concurrent use (one call per client goroutine) and
// must not advance any virtual clock. internal/fault provides the
// seeded, deterministic implementation.
type FaultInjector interface {
	// Decide rules on one verb issue attempt.
	Decide(v VerbInfo) FaultDecision

	// ObserveCAS reports the outcome of an applied atomic, letting
	// schedules trigger crashes on the Nth successful lock acquire —
	// the "died holding a lock" scenario recovery must handle.
	ObserveCAS(ci CASInfo)
}

// Registry names of the fault-plane instruments.
const (
	// NameVerbTimeout counts completions lost to injected drops (each
	// cost the client one VerbTimeout of virtual waiting).
	NameVerbTimeout = "dm.verb_timeout"

	// NameVerbRetry counts transparent verb reposts of any transient
	// cause (drop, NIC unavailable, MN blackout).
	NameVerbRetry = "dm.verb_retry"

	// NameFaultDelay is the histogram of per-verb fault-induced delay
	// (virtual ns): the queue-drain cost of riding out faults.
	NameFaultDelay = "dm.fault.delay_ns"
)

// faultObs holds the resolved fault-plane instruments (nil-safe zero
// value when no sink is attached).
type faultObs struct {
	timeouts *obs.Counter
	retries  *obs.Counter
	delay    *obs.Histogram
}

// FaultStats are fabric-level fault counters, tracked independently of
// any observer sink.
type FaultStats struct {
	Timeouts int64 // completions lost to drops
	Retries  int64 // transparent reposts, all causes
	Crashes  int64 // clients torn down
	Failures int64 // verbs that surfaced a typed error after retries
}

// SetFaultInjector attaches (or, with nil, detaches) the fault plane.
// Like SetObserver, call it from a single goroutine while no verbs are
// in flight — typically between a clean load phase and a faulty
// measurement phase. With no injector attached the verb hot path costs
// one nil check and behaves bit-identically to a fabric built before
// this plane existed.
func (f *Fabric) SetFaultInjector(inj FaultInjector) {
	f.inj = inj
}

// FaultStats returns a snapshot of the fabric's fault counters.
func (f *Fabric) FaultStats() FaultStats {
	return FaultStats{
		Timeouts: f.ftTimeouts.Load(),
		Retries:  f.ftRetries.Load(),
		Crashes:  f.ftCrashes.Load(),
		Failures: f.ftFailures.Load(),
	}
}

// Crashed reports whether the client has been torn down by a crash
// fault. A crashed client fails every verb with ErrClientCrashed.
func (c *Client) Crashed() bool { return c.crashed }

// Default retry policy, applied when the config leaves the knobs zero.
const (
	defaultVerbTimeoutNs  = 10_000 // 10 µs: ~5x the default RTT
	defaultMaxVerbRetries = 8
)

// faultGate runs the injector's decision loop for one verb. It returns
// the virtual-ns penalty to add to the verb's NIC arrival (latency
// spikes plus timeout-and-repost rounds) or the terminal typed error.
// Called after the time-gate sync and range checks, before any data
// movement, so a crashed or failed verb leaves remote memory untouched.
//
//chime:coldalloc the injector interface is external and nil in steady state
func (c *Client) faultGate(class VerbClass, mn int) (int64, error) {
	if c.crashed {
		return 0, ErrClientCrashed
	}
	if c.f.mns[mn].dead.Load() {
		// Crash-stopped by KillMN (persist.go): unlike an injector
		// blackout there is nothing to ride out — the MN is down until
		// someone restarts it — so the typed error surfaces at once.
		c.f.ftFailures.Inc(int32(c.id))
		return 0, ErrMNDown
	}
	inj := c.f.inj
	if inj == nil {
		return 0, nil
	}
	var penalty int64
	for retries := 0; ; retries++ {
		d := inj.Decide(VerbInfo{Client: c.id, Seq: c.verbSeq, Class: class, MN: mn, Now: c.now + penalty})
		c.verbSeq++
		if d.Crash {
			c.crashed = true
			c.f.ftCrashes.Inc(int32(c.id))
			return 0, ErrClientCrashed
		}
		if !d.MNDown && !d.NICUnavailable && !d.DropCompletion {
			if d.ExtraLatencyNs > 0 {
				penalty += d.ExtraLatencyNs
			}
			if penalty > 0 {
				c.f.ftObs.delay.Observe(penalty)
			}
			return penalty, nil
		}
		if retries >= c.faultRetries {
			c.f.ftFailures.Inc(int32(c.id))
			switch {
			case d.MNDown:
				return 0, ErrMNDown
			case d.NICUnavailable:
				return 0, ErrNICUnavailable
			default:
				return 0, ErrTimeout
			}
		}
		// Transient: the client waits out one verb timeout and reposts.
		penalty += c.timeoutNs
		c.f.ftRetries.Inc(int32(c.id))
		c.f.ftObs.retries.Inc()
		if d.DropCompletion {
			c.f.ftTimeouts.Inc(int32(c.id))
			c.f.ftObs.timeouts.Inc()
		}
	}
}

// observeCAS reports an applied atomic to the injector, if any.
//
//chime:coldalloc the injector interface is external and nil in steady state
func (c *Client) observeCAS(a GAddr, swapped bool, cmpMask, swap uint64) {
	if inj := c.f.inj; inj != nil {
		inj.ObserveCAS(CASInfo{
			Client:      c.id,
			MN:          int(a.MN),
			Off:         a.Off,
			Swapped:     swapped,
			LockAcquire: cmpMask == 1 && swap&1 == 1,
		})
	}
}
