package dmsim

import "chime/internal/obs"

// ClientStats counts the remote traffic one client has generated.
// Batched reads count one Trip but one Read per segment, matching how
// doorbell batching behaves on real NICs.
type ClientStats struct {
	Reads        int64
	Writes       int64
	Atomics      int64
	RPCs         int64
	Trips        int64
	BytesRead    int64
	BytesWritten int64

	// Offloads counts MN-side offload verbs (offload.go); each also
	// counts as one RPC and one Trip.
	Offloads int64

	// Posted counts verbs issued through the asynchronous layer
	// (synchronous verbs are post+wait, so every verb counts).
	// MaxInflight is the deepest post/poll pipeline the client reached.
	Posted      int64
	MaxInflight int64
}

// Client is one simulated compute-side client (one CPU core / coroutine
// on a CN in the paper's terminology). A Client is NOT safe for
// concurrent use: each simulated client owns exactly one goroutine, and
// its virtual clock advances as it issues verbs.
//
// Verbs come in two flavors:
//
//   - Synchronous (Read, Write, CAS, ...): return after the simulated
//     round trip completes and advance the client's clock accordingly.
//   - Asynchronous (PostRead, PostWrite, PostCAS, ... in async.go):
//     return a *Completion immediately, advancing the clock only by the
//     issue overhead; Poll/WaitAll advance it to the completion time.
//
// The synchronous verbs are implemented as post + immediate wait, so
// both flavors share one NIC-charging path and identical semantics.
type Client struct {
	f     *Fabric
	id    int64
	now   int64 // virtual nanoseconds
	gated bool  // member of the fabric's time-gate cohort

	inflight int64 // posted but not yet polled completions

	stats ClientStats

	rttNs   int64
	issueNs int64
	rpcNs   int64

	// Fault plane (fault.go): per-attempt verb sequence for
	// deterministic schedules, the retry policy, and the crash latch.
	verbSeq      int64
	timeoutNs    int64
	faultRetries int
	crashed      bool

	// Event-loop scheduler state (eventloop.go). evSlot is the dense
	// cohort slot assigned at first join (-1 until then); evLane/evLocal
	// are derived from it. evPark is the cap-1 wake channel; evBaton
	// marks this client as its lane's current runner; evMustPark forces
	// an unconditional park at the first syncGate after join/resume so
	// execution order is loop-controlled before any verb issues.
	evSlot     int32
	evLane     int32
	evLocal    int32
	evPark     chan struct{}
	evBaton    bool
	evMustPark bool

	// Completion freelist (async.go): recycled handles so steady-state
	// post/poll performs zero heap allocations.
	free []*Completion

	// payloadScratch backs the per-segment payload slice of batched
	// verbs, reused across batches.
	payloadScratch []int

	// offCtx is the reusable MN-side view for offload verbs
	// (offload.go); one per client keeps the verb path allocation-free.
	offCtx MNCtx

	// fl is the per-op flight ledger (nil without a flight recorder).
	// Strictly observational: the ledger records clock deltas the
	// simulation computed anyway, never alters them.
	fl *obs.Flight
}

// NewClient registers a new client on the fabric. Its clock starts at
// the fabric's virtual-time frontier (the latest NIC busy time), so a
// client created after a bulk-load phase joins "now" rather than
// queueing behind history.
func (f *Fabric) NewClient() *Client {
	timeout := f.cfg.VerbTimeout.Nanoseconds()
	if timeout <= 0 {
		timeout = defaultVerbTimeoutNs
	}
	retries := f.cfg.MaxVerbRetries
	if retries <= 0 {
		retries = defaultMaxVerbRetries
	}
	return &Client{
		f:            f,
		id:           f.clientSeq.Add(1),
		now:          f.Frontier(),
		rttNs:        f.cfg.BaseRTT.Nanoseconds(),
		issueNs:      f.cfg.IssueOverhead.Nanoseconds(),
		rpcNs:        f.cfg.RPCServiceTime.Nanoseconds(),
		timeoutNs:    timeout,
		faultRetries: retries,
		evSlot:       -1,
	}
}

// ID returns the client's fabric-unique identifier.
func (c *Client) ID() int64 { return c.id }

// Now returns the client's virtual clock in nanoseconds.
func (c *Client) Now() int64 { return c.now }

// Advance adds local (CN-side) compute time to the client's clock.
//
//chime:noalloc
func (c *Client) Advance(ns int64) {
	if ns > 0 {
		c.now += ns
		c.fl.ChargeActive(ns)
	}
}

// SetFlight attaches a per-op flight recording handle (obs.Flight) to
// the client: verb timing and local advances are charged into the
// ledger of whatever op the handle has open. Purely observational —
// virtual clocks are bit-identical with and without a flight.
func (c *Client) SetFlight(fl *obs.Flight) { c.fl = fl }

// Flight returns the client's flight handle (nil when recording is
// off). Layers above use it to bracket ops and label phases.
func (c *Client) Flight() *obs.Flight { return c.fl }

// JoinCohort enrolls the client in the fabric's virtual-time gate: its
// verbs will stay within one RTT-sized quantum of every other cohort
// member, which keeps the NIC queueing model faithful when many
// simulated clients share few host CPUs. Benchmark cohorts must join
// before issuing measured operations and call LeaveCohort when done.
func (c *Client) JoinCohort() {
	if !c.gated {
		c.gated = true
		if c.f.loop != nil {
			c.f.loop.join(c)
		} else {
			c.f.gate.join(c.now)
		}
	}
}

// LeaveCohort withdraws the client from the time gate.
func (c *Client) LeaveCohort() {
	if c.gated {
		c.gated = false
		if c.f.loop != nil {
			c.f.loop.leave(c)
		} else {
			c.f.gate.leave()
		}
	}
}

// shard picks the NIC shard this client's verbs are charged to. A
// gated event-loop member uses its lane's shard (lane-private NIC
// state, the basis of parallel-deterministic execution); freewheeling
// clients hash by ID so bootstrap loaders spread across shards. With
// one shard (any gate-mode fabric) this is always 0.
//
//chime:noalloc
func (c *Client) shard() int32 {
	if c.f.shards == 1 {
		return 0
	}
	if c.gated && c.evSlot >= 0 {
		return c.evLane
	}
	return int32(c.id % int64(c.f.shards))
}

// syncGate blocks a cohort member until its clock is inside the gate
// window; freewheeling clients pass straight through.
//
//chime:noalloc
func (c *Client) syncGate() {
	if c.gated {
		if c.f.loop != nil {
			c.f.loop.sync(c)
		} else {
			c.f.gate.sync(c.now)
		}
	}
}

// Suspend temporarily withdraws a cohort member that is about to block
// on another client's progress (e.g. a delegated read waiting for its
// leader). A suspended member no longer holds up the gate window; it
// must call Resume before issuing verbs again. No-op for freewheeling
// clients. Returns whether the client was actually suspended.
//
//chime:noalloc
func (c *Client) Suspend() bool {
	if !c.gated {
		return false
	}
	c.gated = false
	if c.f.loop != nil {
		c.f.loop.leave(c)
	} else {
		c.f.gate.leave()
	}
	return true
}

// Resume re-enrolls a suspended client, optionally fast-forwarding its
// clock to at least now (virtual time never runs backward). The gate
// window is NOT widened: the client blocks at its next verb until the
// cohort's window reaches its (possibly far-ahead) clock.
//
//chime:noalloc
func (c *Client) Resume(now int64) {
	if now > c.now {
		// The fast-forward is the time this client spent parked on its
		// leader; charged to the active phase (the rdwc layer sets
		// PhaseWriteCombine around delegated waits).
		c.fl.ChargeActive(now - c.now)
		c.now = now
	}
	c.gated = true
	if c.f.loop != nil {
		c.f.loop.join(c)
	} else {
		c.f.gate.rejoin()
	}
}

// Stats returns a snapshot of the client's traffic counters.
func (c *Client) Stats() ClientStats { return c.stats }

// ResetStats zeroes the traffic counters, including Posted (the count
// restarts for the new measurement window). The clock keeps running and
// in-flight completions remain in flight: MaxInflight is re-seeded to
// the current pipeline depth, so verbs already posted still count
// toward the new window's maximum.
func (c *Client) ResetStats() {
	c.stats = ClientStats{}
	c.stats.MaxInflight = c.inflight
}

// Fabric returns the fabric this client is attached to.
func (c *Client) Fabric() *Fabric { return c.f }

// finish advances the client past a round trip that completed at the NIC
// at nicDone (two-sided RPCs, which have no posted form).
//
//chime:noalloc
func (c *Client) finish(nicDone int64) {
	c.now = nicDone + c.rttNs
}

// Read fetches len(buf) bytes from the remote address into buf using a
// one-sided READ. Individual 64-byte lines are copied atomically, but a
// multi-line transfer is not atomic as a whole: concurrent writers can
// interleave at line boundaries, so readers must validate with version
// checks, exactly as on real RDMA hardware.
//
//chime:noalloc
func (c *Client) Read(a GAddr, buf []byte) error {
	h, err := c.PostRead(a, buf)
	if err != nil {
		return err
	}
	c.Poll(h)
	c.Release(h)
	return nil
}

// ReadBatch issues several READs as one doorbell batch: the client pays
// a single round trip while the NIC services every segment. All
// addresses must live on the same MN (the common case in the paper:
// wrap-around segments of one node).
//
//chime:noalloc
func (c *Client) ReadBatch(addrs []GAddr, bufs [][]byte) error {
	h, err := c.PostReadBatch(addrs, bufs)
	if err != nil {
		return err
	}
	c.Poll(h)
	c.Release(h)
	return nil
}

// Write stores data at the remote address using a one-sided WRITE.
//
//chime:noalloc
func (c *Client) Write(a GAddr, data []byte) error {
	h, err := c.PostWrite(a, data)
	if err != nil {
		return err
	}
	c.Poll(h)
	c.Release(h)
	return nil
}

// WriteBatch issues several WRITEs as one doorbell batch (one round
// trip). Used for wrap-around hop-range write-back and the combined
// "write entry + unlock" pattern from Sherman and CHIME.
//
//chime:noalloc
func (c *Client) WriteBatch(addrs []GAddr, datas [][]byte) error {
	h, err := c.PostWriteBatch(addrs, datas)
	if err != nil {
		return err
	}
	c.Poll(h)
	c.Release(h)
	return nil
}

// CAS atomically compares the 8-byte word at a with old and, when equal,
// replaces it with new. It returns the value observed before the swap
// and whether the swap happened. Word encoding is little-endian.
//
//chime:noalloc
func (c *Client) CAS(a GAddr, old, new uint64) (uint64, bool, error) {
	return c.MaskedCAS(a, old, new, ^uint64(0), ^uint64(0))
}

// MaskedCAS is the RDMA extended atomic used by CHIME's vacancy-bitmap
// piggybacking (§4.2.1): compare only the bits under cmpMask, swap only
// the bits under swapMask, and return the full previous word either way.
//
//chime:noalloc
func (c *Client) MaskedCAS(a GAddr, cmp, swap, cmpMask, swapMask uint64) (uint64, bool, error) {
	h, err := c.PostMaskedCAS(a, cmp, swap, cmpMask, swapMask)
	if err != nil {
		return 0, false, err
	}
	c.Poll(h)
	prev, ok := h.CASResult()
	c.Release(h)
	return prev, ok, nil
}

// FetchAdd atomically adds delta to the 8-byte word at a and returns the
// previous value (RDMA FETCH_AND_ADD).
//
//chime:noalloc
func (c *Client) FetchAdd(a GAddr, delta uint64) (uint64, error) {
	h, err := c.PostFetchAdd(a, delta)
	if err != nil {
		return 0, err
	}
	c.Poll(h)
	prev, _ := h.CASResult()
	c.Release(h)
	return prev, nil
}
