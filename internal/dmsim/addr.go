package dmsim

import "fmt"

// GAddr is a global address in the memory pool: a memory-node index plus
// a byte offset within that node's region. The zero GAddr (MN 0, offset
// 0) is reserved as the nil address; allocators never hand it out.
type GAddr struct {
	MN  uint8
	Off uint64
}

// NilGAddr is the null remote pointer.
var NilGAddr = GAddr{}

// IsNil reports whether a is the null remote pointer.
func (a GAddr) IsNil() bool { return a == NilGAddr }

// Add returns the address d bytes past a within the same MN.
func (a GAddr) Add(d uint64) GAddr { return GAddr{MN: a.MN, Off: a.Off + d} }

// Pack encodes the address into a single uint64 (high byte = MN) so it
// can be stored in 8-byte remote pointers, mirroring how DM indexes pack
// pointers into CAS-able words.
func (a GAddr) Pack() uint64 {
	return uint64(a.MN)<<56 | (a.Off & ((1 << 56) - 1))
}

// UnpackGAddr decodes a packed remote pointer.
func UnpackGAddr(v uint64) GAddr {
	return GAddr{MN: uint8(v >> 56), Off: v & ((1 << 56) - 1)}
}

// String formats the address for diagnostics.
func (a GAddr) String() string {
	if a.IsNil() {
		return "nil"
	}
	return fmt.Sprintf("mn%d:0x%x", a.MN, a.Off)
}
