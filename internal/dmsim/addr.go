package dmsim

import "fmt"

// GAddr is a global address in the memory pool: a memory-node index plus
// a byte offset within that node's region. The zero GAddr (MN 0, offset
// 0) is reserved as the nil address; allocators never hand it out.
type GAddr struct {
	MN  uint8
	Off uint64
}

// NilGAddr is the null remote pointer.
var NilGAddr = GAddr{}

// IsNil reports whether a is the null remote pointer.
func (a GAddr) IsNil() bool { return a == NilGAddr }

// maxOff is the largest offset a packed remote pointer can carry: Pack
// keeps 56 bits for the offset (the high byte holds the MN index).
const maxOff = 1<<56 - 1

// Add returns the address d bytes past a within the same MN. It panics
// when the sum wraps uint64 or leaves the 56-bit packable range — a
// silently truncated pointer would corrupt whatever node it aliases, so
// arithmetic overflow is a simulation bug, never data.
func (a GAddr) Add(d uint64) GAddr {
	off := a.Off + d
	if off < a.Off || off > maxOff {
		panic(fmt.Sprintf("dmsim: GAddr.Add overflow: %v + 0x%x", a, d))
	}
	return GAddr{MN: a.MN, Off: off}
}

// Pack encodes the address into a single uint64 (high byte = MN) so it
// can be stored in 8-byte remote pointers, mirroring how DM indexes pack
// pointers into CAS-able words. Offsets past 56 bits cannot round-trip,
// so Pack panics rather than silently masking them.
func (a GAddr) Pack() uint64 {
	if a.Off > maxOff {
		panic(fmt.Sprintf("dmsim: GAddr.Pack offset 0x%x exceeds 56 bits", a.Off))
	}
	return uint64(a.MN)<<56 | a.Off
}

// UnpackGAddr decodes a packed remote pointer.
func UnpackGAddr(v uint64) GAddr {
	return GAddr{MN: uint8(v >> 56), Off: v & ((1 << 56) - 1)}
}

// PackTagged encodes an MN-0 address plus an 8-bit tag into one
// CAS-able word, reusing the byte Pack spends on the MN index. Super
// blocks use this to store the root pointer and tree level in a single
// atomic word (roots always live on MN 0). Like Pack, it panics instead
// of silently truncating.
func PackTagged(a GAddr, tag uint8) uint64 {
	if a.MN != 0 {
		panic(fmt.Sprintf("dmsim: PackTagged address %v not on MN 0", a))
	}
	if a.Off > maxOff {
		panic(fmt.Sprintf("dmsim: PackTagged offset 0x%x exceeds 56 bits", a.Off))
	}
	return uint64(tag)<<56 | a.Off
}

// UnpackTagged decodes a word packed by PackTagged.
func UnpackTagged(w uint64) (GAddr, uint8) {
	return GAddr{Off: w & maxOff}, uint8(w >> 56)
}

// String formats the address for diagnostics.
func (a GAddr) String() string {
	if a.IsNil() {
		return "nil"
	}
	return fmt.Sprintf("mn%d:0x%x", a.MN, a.Off)
}
