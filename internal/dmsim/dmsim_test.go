package dmsim

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.MNSize = 1 << 20
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.MNs = 0 },
		func(c *Config) { c.MNSize = -1 },
		func(c *Config) { c.BandwidthBps = 0 },
		func(c *Config) { c.IOPS = -5 },
		func(c *Config) { c.BaseRTT = -time.Second },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestGAddrPackRoundTrip(t *testing.T) {
	prop := func(mn uint8, off uint64) bool {
		a := GAddr{MN: mn, Off: off & ((1 << 56) - 1)}
		return UnpackGAddr(a.Pack()) == a
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGAddrNil(t *testing.T) {
	if !NilGAddr.IsNil() {
		t.Fatal("NilGAddr must be nil")
	}
	if (GAddr{MN: 0, Off: 64}).IsNil() {
		t.Fatal("non-zero address must not be nil")
	}
	if NilGAddr.String() != "nil" {
		t.Fatalf("nil String() = %q", NilGAddr.String())
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	f := MustNewFabric(testConfig())
	c := f.NewClient()
	addr := GAddr{Off: 128}
	want := []byte("hello disaggregated memory")
	if err := c.Write(addr, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := c.Read(addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read back %q, want %q", got, want)
	}
}

func TestReadOutOfBounds(t *testing.T) {
	f := MustNewFabric(testConfig())
	c := f.NewClient()
	buf := make([]byte, 16)
	if err := c.Read(GAddr{Off: uint64(testConfig().MNSize) - 8}, buf); err == nil {
		t.Fatal("expected out-of-bounds error")
	}
	if err := c.Read(GAddr{MN: 9, Off: 0}, buf); err == nil {
		t.Fatal("expected unknown-MN error")
	}
}

func TestReadBatchSingleTrip(t *testing.T) {
	f := MustNewFabric(testConfig())
	c := f.NewClient()
	if err := c.Write(GAddr{Off: 64}, []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(GAddr{Off: 256}, []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	before := c.Stats()
	b1, b2 := make([]byte, 4), make([]byte, 4)
	if err := c.ReadBatch([]GAddr{{Off: 64}, {Off: 256}}, [][]byte{b1, b2}); err != nil {
		t.Fatal(err)
	}
	after := c.Stats()
	if after.Trips-before.Trips != 1 {
		t.Fatalf("batch cost %d trips, want 1", after.Trips-before.Trips)
	}
	if after.Reads-before.Reads != 2 {
		t.Fatalf("batch counted %d reads, want 2", after.Reads-before.Reads)
	}
	if string(b1) != "aaaa" || string(b2) != "bbbb" {
		t.Fatalf("batch read %q %q", b1, b2)
	}
}

func TestReadBatchRejectsCrossMN(t *testing.T) {
	cfg := testConfig()
	cfg.MNs = 2
	f := MustNewFabric(cfg)
	c := f.NewClient()
	err := c.ReadBatch(
		[]GAddr{{MN: 0, Off: 64}, {MN: 1, Off: 64}},
		[][]byte{make([]byte, 4), make([]byte, 4)})
	if err == nil {
		t.Fatal("expected cross-MN batch rejection")
	}
}

func TestCASSemantics(t *testing.T) {
	f := MustNewFabric(testConfig())
	c := f.NewClient()
	addr := GAddr{Off: 64}

	prev, ok, err := c.CAS(addr, 0, 42)
	if err != nil || !ok || prev != 0 {
		t.Fatalf("CAS(0->42) = %d, %v, %v", prev, ok, err)
	}
	prev, ok, err = c.CAS(addr, 0, 99)
	if err != nil || ok || prev != 42 {
		t.Fatalf("failed CAS should return prev=42: got %d, %v, %v", prev, ok, err)
	}
}

// TestMaskedCASPiggyback exercises the exact pattern CHIME uses for
// vacancy-bitmap piggybacking: compare only the lock bit, swap the whole
// word, observe the previous word's payload bits.
func TestMaskedCASPiggyback(t *testing.T) {
	f := MustNewFabric(testConfig())
	c := f.NewClient()
	addr := GAddr{Off: 64}

	// Seed: lock free (bit0=0), payload bits set.
	payload := uint64(0xABCD_EF00)
	_, ok, err := c.CAS(addr, 0, payload)
	if err != nil || !ok {
		t.Fatal("seed failed")
	}

	// Acquire: compare lock bit only, swap everything to payload|1.
	prev, ok, err := c.MaskedCAS(addr, 0, payload|1, 0x1, ^uint64(0))
	if err != nil || !ok {
		t.Fatalf("masked acquire failed: %v %v", ok, err)
	}
	if prev != payload {
		t.Fatalf("piggybacked payload = %#x, want %#x", prev, payload)
	}

	// Second acquire must fail (lock bit now 1) but still return word.
	prev, ok, err = c.MaskedCAS(addr, 0, payload|1, 0x1, ^uint64(0))
	if err != nil || ok {
		t.Fatalf("acquire on held lock must fail: %v %v", ok, err)
	}
	if prev != payload|1 {
		t.Fatalf("prev = %#x, want %#x", prev, payload|1)
	}
}

func TestMaskedCASSwapMask(t *testing.T) {
	f := MustNewFabric(testConfig())
	c := f.NewClient()
	addr := GAddr{Off: 64}
	if _, _, err := c.CAS(addr, 0, 0xFF00); err != nil {
		t.Fatal(err)
	}
	// Swap only the low byte.
	_, ok, err := c.MaskedCAS(addr, 0xFF00, 0x00AB, ^uint64(0), 0xFF)
	if err != nil || !ok {
		t.Fatal("masked swap failed")
	}
	got, _, err := c.CAS(addr, 1, 1) // failing CAS used as an atomic read
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xFFAB {
		t.Fatalf("after masked swap word = %#x, want 0xFFAB", got)
	}
}

func TestFetchAdd(t *testing.T) {
	f := MustNewFabric(testConfig())
	c := f.NewClient()
	addr := GAddr{Off: 64}
	for i := uint64(0); i < 5; i++ {
		prev, err := c.FetchAdd(addr, 3)
		if err != nil {
			t.Fatal(err)
		}
		if prev != i*3 {
			t.Fatalf("FetchAdd prev = %d, want %d", prev, i*3)
		}
	}
}

func TestCASAtomicityUnderContention(t *testing.T) {
	f := MustNewFabric(testConfig())
	addr := GAddr{Off: 64}
	const clients, per = 8, 200
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := f.NewClient()
			for j := 0; j < per; j++ {
				for {
					prev, _, err := c.CAS(addr, 1<<63, 1<<63) // atomic read
					if err != nil {
						t.Error(err)
						return
					}
					if _, ok, _ := c.CAS(addr, prev, prev+1); ok {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	c := f.NewClient()
	got, _, err := c.CAS(addr, 1<<63, 1<<63)
	if err != nil {
		t.Fatal(err)
	}
	if got != clients*per {
		t.Fatalf("counter = %d, want %d (lost updates)", got, clients*per)
	}
}

func TestVirtualClockAdvances(t *testing.T) {
	f := MustNewFabric(testConfig())
	c := f.NewClient()
	if c.Now() != 0 {
		t.Fatal("fresh client clock must start at 0")
	}
	buf := make([]byte, 64)
	if err := c.Read(GAddr{Off: 0}, buf); err != nil {
		t.Fatal(err)
	}
	min := f.Config().BaseRTT.Nanoseconds()
	if c.Now() < min {
		t.Fatalf("clock after READ = %dns, want >= RTT %dns", c.Now(), min)
	}
	before := c.Now()
	c.Advance(1000)
	if c.Now() != before+1000 {
		t.Fatal("Advance must add to clock")
	}
	c.Advance(-5)
	if c.Now() != before+1000 {
		t.Fatal("negative Advance must be ignored")
	}
}

// TestNICBandwidthVsIOPSBound checks the §3.2.3 regime split: large
// transfers are charged by bandwidth, small ones by the IOPS ceiling.
func TestNICBandwidthVsIOPSBound(t *testing.T) {
	cfg := testConfig()
	n := newNIC(cfg)

	perOp := 1e9 / cfg.IOPS
	small := n.serve(0, kindRead, 0, 8)
	if got := float64(small); got < perOp-1 || got > perOp*1.5 {
		t.Fatalf("8B service = %vns, want about per-op %vns", got, perOp)
	}

	bigBytes := 1 << 20
	bwNs := float64(bigBytes) * 1e9 / cfg.BandwidthBps
	start := n.shards[0].freeAt
	done := n.serve(0, kindRead, start, bigBytes)
	if got := float64(done - start); got < bwNs*0.99 || got > bwNs*1.1 {
		t.Fatalf("1MB service = %vns, want about bandwidth %vns", got, bwNs)
	}
}

func TestNICQueueing(t *testing.T) {
	cfg := testConfig()
	n := newNIC(cfg)
	// Two verbs arriving at the same instant must serialize.
	d1 := n.serve(0, kindRead, 0, 1024)
	d2 := n.serve(0, kindRead, 0, 1024)
	if d2 <= d1 {
		t.Fatalf("second verb completed at %d, first at %d: no queueing", d2, d1)
	}
	s := n.stats()
	if s.Verbs != 2 || s.QueuedNs <= 0 {
		t.Fatalf("stats = %+v, want 2 verbs and queueing delay", s)
	}
}

func TestAllocRPCAlignmentAndExhaustion(t *testing.T) {
	cfg := testConfig()
	cfg.MNSize = 4096
	f := MustNewFabric(cfg)
	c := f.NewClient()

	a1, err := c.AllocRPC(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Off%64 != 0 || a1.IsNil() {
		t.Fatalf("alloc not aligned or nil: %v", a1)
	}
	a2, err := c.AllocRPC(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Off <= a1.Off {
		t.Fatalf("allocations overlap: %v then %v", a1, a2)
	}
	if _, err := c.AllocRPC(0, 1<<20); err == nil {
		t.Fatal("expected out-of-memory")
	}
	if _, err := c.AllocRPC(5, 64); err == nil {
		t.Fatal("expected unknown-MN error")
	}
	if _, err := c.AllocRPC(0, 0); err == nil {
		t.Fatal("expected bad-size error")
	}
}

func TestChunkAllocatorReusesChunk(t *testing.T) {
	cfg := testConfig()
	cfg.MNSize = 64 << 20
	f := MustNewFabric(cfg)
	c := f.NewClient()
	al := NewChunkAllocator(c, 0)

	a1, err := al.Alloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	rpcsAfterFirst := c.Stats().RPCs
	a2, err := al.Alloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats().RPCs != rpcsAfterFirst {
		t.Fatal("second small alloc must come from the cached chunk (no RPC)")
	}
	if a2.Off != a1.Off+1024 {
		t.Fatalf("bump allocation: got %v after %v", a2, a1)
	}
}

func TestChunkAllocatorRoundRobinMNs(t *testing.T) {
	cfg := testConfig()
	cfg.MNs = 3
	cfg.MNSize = 64 << 20
	f := MustNewFabric(cfg)
	c := f.NewClient()
	al := NewChunkAllocator(c, 0)

	seen := map[uint8]bool{}
	for i := 0; i < 3; i++ {
		a, err := al.Alloc(ChunkSize) // force a fresh chunk each time
		if err != nil {
			t.Fatal(err)
		}
		seen[a.MN] = true
	}
	if len(seen) != 3 {
		t.Fatalf("chunks placed on %d MNs, want 3", len(seen))
	}
}

func TestStatsAccounting(t *testing.T) {
	f := MustNewFabric(testConfig())
	c := f.NewClient()
	if err := c.Write(GAddr{Off: 64}, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := c.Read(GAddr{Off: 64}, make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.BytesWritten != 100 || s.BytesRead != 40 || s.Trips != 2 {
		t.Fatalf("stats = %+v", s)
	}
	c.ResetStats()
	if c.Stats() != (ClientStats{}) {
		t.Fatal("ResetStats must zero counters")
	}
	ns := f.TotalNICStats()
	if ns.BytesIn != 100 || ns.BytesOut != 40 {
		t.Fatalf("nic stats = %+v", ns)
	}
}

func TestPeekPoke(t *testing.T) {
	f := MustNewFabric(testConfig())
	if err := f.Poke(GAddr{Off: 64}, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3)
	if err := f.Peek(GAddr{Off: 64}, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "abc" {
		t.Fatalf("peek = %q", got)
	}
	if err := f.Peek(GAddr{MN: 4}, got); err == nil {
		t.Fatal("expected error for unknown MN")
	}
}
