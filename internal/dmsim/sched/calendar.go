// Package sched provides the deterministic scheduling substrate for
// dmsim's batch event loop: a calendar queue (Brown, CACM '88) keyed on
// virtual nanoseconds, specialized for cohort scheduling where keys
// advance through quantum-sized windows.
//
// The queue is intrusive and allocation-free in steady state: members
// are dense int32 slots, and the per-slot key/next arrays double as the
// chain storage, so parking and unparking a client never allocates.
// Every operation is single-threaded by contract (the caller holds its
// lane's lock); determinism follows because the pop order is a pure
// function of the push history, never of host scheduling.
package sched

import "math"

// NoSlot is returned by PopBelow when no entry is eligible.
const NoSlot = int32(-1)

const nilSlot = int32(-1)

// Calendar is a bucketed ring of virtual-time buckets. Bucket i holds
// entries whose key falls in [i*width, (i+1)*width) modulo the ring
// horizon; entries past the horizon wait on an overflow chain and are
// refiled as the scan cursor advances. With bucket width set to the
// cohort quantum, the common case — every parked client's key within
// one window of the cursor — touches exactly one bucket per window, so
// enqueue and harvest are O(1) amortized per client per window.
type Calendar struct {
	width   int64   // bucket span in virtual ns (the cohort quantum)
	buckets []int32 // chain head per bucket, nilSlot when empty
	next    []int32 // per-slot chain link
	key     []int64 // per-slot virtual-ns key
	parked  []bool  // per-slot membership (guards double push/pop)

	overflow int32 // chain of entries at or past the ring horizon
	base     int64 // scan cursor: every entry's key is >= base or clamped to it
	count    int
}

// NewCalendar returns a calendar with the given bucket width (clamped
// to >= 1) and bucket count (rounded up to a power of two, minimum 8).
func NewCalendar(width int64, nbuckets int) *Calendar {
	if width < 1 {
		width = 1
	}
	nb := 8
	for nb < nbuckets {
		nb <<= 1
	}
	c := &Calendar{width: width, buckets: make([]int32, nb), overflow: nilSlot}
	for i := range c.buckets {
		c.buckets[i] = nilSlot
	}
	return c
}

// Grow ensures the calendar can hold slots [0, n).
func (c *Calendar) Grow(n int) {
	for len(c.key) < n {
		c.key = append(c.key, 0)
		c.next = append(c.next, nilSlot)
		c.parked = append(c.parked, false)
	}
}

// Len returns the number of parked slots.
func (c *Calendar) Len() int { return c.count }

// Parked reports whether the slot is currently enqueued.
func (c *Calendar) Parked(slot int32) bool { return c.parked[slot] }

// horizon is the exclusive upper bound of keys the ring can file.
func (c *Calendar) horizon() int64 {
	h := c.base + c.width*int64(len(c.buckets))
	if h < c.base { // overflow guard for huge virtual times
		return math.MaxInt64
	}
	return h
}

// bucketOf maps a key (already clamped to >= base, < horizon) to its
// ring bucket.
func (c *Calendar) bucketOf(key int64) int {
	return int((key / c.width) & int64(len(c.buckets)-1))
}

// Push parks a slot at the given key. Keys behind the scan cursor are
// legal (a rejoined client whose clock lags the cohort window) and are
// filed at the cursor's bucket with their true key, so they pop on the
// very next harvest. Pushing an already-parked slot panics: the caller
// has lost track of who is running, and continuing would corrupt the
// chains.
//
//chime:noalloc
func (c *Calendar) Push(slot int32, key int64) {
	if c.parked[slot] {
		panic("sched: Push of an already-parked slot")
	}
	c.parked[slot] = true
	c.key[slot] = key
	c.count++
	filed := key
	if filed < c.base {
		filed = c.base
	}
	if filed >= c.horizon() {
		c.next[slot] = c.overflow
		c.overflow = slot
		return
	}
	b := c.bucketOf(filed)
	c.next[slot] = c.buckets[b]
	c.buckets[b] = slot
}

// MinKey returns the smallest parked key, or math.MaxInt64 when empty.
// The first nonempty ring bucket at or after the cursor bounds every
// later bucket's keys from below, so only that bucket's chain (plus the
// rare overflow chain when the ring is empty) is scanned.
//
//chime:noalloc
func (c *Calendar) MinKey() int64 {
	if c.count == 0 {
		return math.MaxInt64
	}
	b := c.bucketOf(c.base)
	for scanned := 0; scanned < len(c.buckets); scanned++ {
		if head := c.buckets[(b+scanned)&(len(c.buckets)-1)]; head != nilSlot {
			min := int64(math.MaxInt64)
			for s := head; s != nilSlot; s = c.next[s] {
				if c.key[s] < min {
					min = c.key[s]
				}
			}
			return min
		}
	}
	min := int64(math.MaxInt64)
	for s := c.overflow; s != nilSlot; s = c.next[s] {
		if c.key[s] < min {
			min = c.key[s]
		}
	}
	return min
}

// PopBelow removes and returns one slot whose key is < limit, or NoSlot
// when none is eligible. Buckets are scanned in ascending virtual-time
// order from the cursor, so successive pops drain a window in coarse
// clock order; within a bucket the chain order (a pure function of push
// history) decides. Advancing limit moves the scan cursor forward and
// refiles overflow entries that enter the ring horizon.
//
//chime:noalloc
func (c *Calendar) PopBelow(limit int64) int32 {
	if c.count == 0 {
		c.advanceTo(limit)
		return NoSlot
	}
	start := c.bucketOf(c.base)
	bound := limit
	if h := c.horizon(); bound > h {
		bound = h
	}
	// Number of buckets the window [base, bound) spans, capped at one
	// full ring revolution (computed in int64 to survive huge keys).
	span := 0
	if bound > c.base {
		if d := bound - c.base; d >= c.width*int64(len(c.buckets)) {
			span = len(c.buckets)
		} else {
			span = int((d + c.width - 1) / c.width)
		}
	}
	for i := 0; i < span; i++ {
		b := (start + i) & (len(c.buckets) - 1)
		prev := nilSlot
		for s := c.buckets[b]; s != nilSlot; s = c.next[s] {
			if c.key[s] < limit {
				if prev == nilSlot {
					c.buckets[b] = c.next[s]
				} else {
					c.next[prev] = c.next[s]
				}
				c.unfile(s)
				return s
			}
			prev = s
		}
	}
	// Ring exhausted below limit: check the overflow chain (rare — only
	// populated by keys far past the horizon).
	prev := nilSlot
	for s := c.overflow; s != nilSlot; s = c.next[s] {
		if c.key[s] < limit {
			if prev == nilSlot {
				c.overflow = c.next[s]
			} else {
				c.next[prev] = c.next[s]
			}
			c.unfile(s)
			return s
		}
		prev = s
	}
	c.advanceTo(limit)
	return NoSlot
}

//chime:noalloc
func (c *Calendar) unfile(s int32) {
	c.next[s] = nilSlot
	c.parked[s] = false
	c.count--
}

// advanceTo moves the scan cursor forward to limit (never backward) and
// refiles overflow entries that the wider horizon can now hold.
//
//chime:noalloc
func (c *Calendar) advanceTo(limit int64) {
	if limit <= c.base {
		return
	}
	c.base = limit
	h := c.horizon()
	var keep int32 = nilSlot
	s := c.overflow
	for s != nilSlot {
		n := c.next[s]
		filed := c.key[s]
		if filed < c.base {
			filed = c.base
		}
		if filed < h {
			b := c.bucketOf(filed)
			c.next[s] = c.buckets[b]
			c.buckets[b] = s
		} else {
			c.next[s] = keep
			keep = s
		}
		s = n
	}
	c.overflow = keep
}
