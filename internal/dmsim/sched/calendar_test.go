package sched

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func drainBelow(c *Calendar, limit int64) []int32 {
	var out []int32
	for {
		s := c.PopBelow(limit)
		if s == NoSlot {
			return out
		}
		out = append(out, s)
	}
}

func TestCalendarBasicOrder(t *testing.T) {
	c := NewCalendar(1000, 8)
	c.Grow(4)
	c.Push(0, 2500)
	c.Push(1, 500)
	c.Push(2, 1500)
	c.Push(3, 900)

	if got := c.MinKey(); got != 500 {
		t.Fatalf("MinKey = %d, want 500", got)
	}
	// Window [0, 1000): slots 1 and 3 (bucket 0), chain order LIFO.
	got := drainBelow(c, 1000)
	if len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Fatalf("drain below 1000 = %v, want [3 1]", got)
	}
	if got := c.MinKey(); got != 1500 {
		t.Fatalf("MinKey after first window = %d, want 1500", got)
	}
	got = drainBelow(c, 3000)
	if len(got) != 2 || got[0] != 2 || got[1] != 0 {
		t.Fatalf("drain below 3000 = %v, want [2 0]", got)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
	if got := c.MinKey(); got != math.MaxInt64 {
		t.Fatalf("MinKey on empty = %d, want MaxInt64", got)
	}
}

func TestCalendarOverflowAndRefile(t *testing.T) {
	c := NewCalendar(1000, 8) // horizon = 8 buckets = 8000ns
	c.Grow(3)
	c.Push(0, 100)
	c.Push(1, 50_000) // far past the horizon: overflow chain
	c.Push(2, 9_000)  // just past the horizon: overflow chain

	if got := c.MinKey(); got != 100 {
		t.Fatalf("MinKey = %d, want 100", got)
	}
	if got := drainBelow(c, 1000); len(got) != 1 || got[0] != 0 {
		t.Fatalf("first window = %v, want [0]", got)
	}
	// Advancing the cursor past 1000 leaves 9000 inside the new
	// horizon; it must surface as the min and pop below 10_000.
	if got := c.MinKey(); got != 9_000 {
		t.Fatalf("MinKey = %d, want 9000", got)
	}
	if got := drainBelow(c, 10_000); len(got) != 1 || got[0] != 2 {
		t.Fatalf("window below 10k = %v, want [2]", got)
	}
	if got := drainBelow(c, 60_000); len(got) != 1 || got[0] != 1 {
		t.Fatalf("window below 60k = %v, want [1]", got)
	}
}

func TestCalendarLaggingKeyClampsToCursor(t *testing.T) {
	c := NewCalendar(1000, 8)
	c.Grow(2)
	c.Push(0, 5_000)
	// Advance the cursor well past zero.
	if got := drainBelow(c, 4_000); len(got) != 0 {
		t.Fatalf("nothing below 4000, got %v", got)
	}
	// A rejoined client whose clock lags the cohort window must still
	// pop on the next harvest even though its key is behind the cursor.
	c.Push(1, 700)
	if got := c.MinKey(); got != 700 {
		t.Fatalf("MinKey = %d, want 700", got)
	}
	got := drainBelow(c, 6_000)
	if len(got) != 2 {
		t.Fatalf("drain = %v, want both slots", got)
	}
}

func TestCalendarPushParkedPanics(t *testing.T) {
	c := NewCalendar(1000, 8)
	c.Grow(1)
	c.Push(0, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("double Push did not panic")
		}
	}()
	c.Push(0, 20)
}

// The calendar must behave like a priority queue at window granularity:
// draining successive windows yields every slot exactly once, never
// before its window, against a seeded random workload.
func TestCalendarRandomizedAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 500
	const quantum = 1000
	c := NewCalendar(quantum, 16)
	c.Grow(n)
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63n(40 * quantum)
		c.Push(int32(i), keys[i])
	}
	seen := make(map[int32]bool)
	for w := int64(quantum); w <= 41*quantum; w += quantum {
		for _, s := range drainBelow(c, w) {
			if keys[s] >= w {
				t.Fatalf("slot %d key %d popped before its window %d", s, keys[s], w)
			}
			if seen[s] {
				t.Fatalf("slot %d popped twice", s)
			}
			seen[s] = true
		}
	}
	if len(seen) != n {
		t.Fatalf("popped %d slots, want %d", len(seen), n)
	}
}

// Two identical push histories must drain in identical order: pop order
// is a pure function of the push history (the determinism the event
// loop builds on).
func TestCalendarDeterministicDrainOrder(t *testing.T) {
	build := func() *Calendar {
		rng := rand.New(rand.NewSource(7))
		c := NewCalendar(500, 8)
		c.Grow(200)
		for i := 0; i < 200; i++ {
			c.Push(int32(i), rng.Int63n(20_000))
		}
		return c
	}
	a, b := build(), build()
	var orderA, orderB []int32
	for w := int64(500); w <= 21_000; w += 500 {
		orderA = append(orderA, drainBelow(a, w)...)
		orderB = append(orderB, drainBelow(b, w)...)
	}
	if len(orderA) != 200 || len(orderB) != 200 {
		t.Fatalf("drained %d/%d slots, want 200 each", len(orderA), len(orderB))
	}
	for i := range orderA {
		if orderA[i] != orderB[i] {
			t.Fatalf("drain order diverged at %d: %d vs %d", i, orderA[i], orderB[i])
		}
	}
	// Sanity: every slot appeared.
	sorted := append([]int32(nil), orderA...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, s := range sorted {
		if s != int32(i) {
			t.Fatalf("missing slot %d", i)
		}
	}
}
