package dmsim

import (
	"sync"
	"testing"
)

func TestNICQueueingUnderLoad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MNSize = 1 << 20
	f := MustNewFabric(cfg)
	const clients, ops, size = 64, 100, 1400
	var wg sync.WaitGroup
	durs := make([]int64, clients)
	cls := make([]*Client, clients)
	for i := range cls {
		cls[i] = f.NewClient()
	}
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := cls[i]
			start := c.Now()
			buf := make([]byte, size)
			for j := 0; j < ops; j++ {
				c.Read(GAddr{Off: 64}, buf)
			}
			durs[i] = c.Now() - start
		}(i)
	}
	wg.Wait()
	var max int64
	for _, d := range durs {
		if d > max {
			max = d
		}
	}
	totalService := int64(clients*ops) * int64(float64(size)*1e9/cfg.BandwidthBps)
	t.Logf("maxDur=%dus totalService=%dus", max/1000, totalService/1000)
	if max < totalService {
		t.Fatalf("max client duration %dns < total NIC service %dns: NIC not serializing", max, totalService)
	}
}
