package dmsim

import (
	"sync"

	"chime/internal/obs"
)

// MN compute model. Memory nodes in a disaggregated rack carry weak,
// near-memory cores (Clio's offload engines, Outback's two-sided
// handlers); offloaded verbs execute on them, not for free. Each MN
// owns an mnCPU: a virtual-time queueing resource exactly parallel to
// the NIC model in nic.go — per-lane shards, single-server recurrence
// per shard, capacity pre-scaled so the aggregate is lane-invariant.
//
// Service time of one offloaded program is
//
//	service = MNServiceTime + touched / MNScanBps
//
// where `touched` is the number of bytes the program moved through its
// metered MN-side view (offload.go): the base covers dispatch and
// per-op fixed work, the byte term models the weak core streaming node
// images out of local DRAM. A c-core MN is approximated as a single
// server of c times the rate (the same fast-server approximation the
// sharded NIC makes): utilization and saturation points match an M/M/c
// model, per-op service under light load is optimistic by at most the
// core count, and — decisive here — the recurrence stays a
// deterministic pure function of arrival order.
//
// Determinism mirrors the NIC's story verbatim: one shard per event-loop
// lane, each lane's clients hit only their shard, shard capacity is
// pre-divided by the lane count, and with a single lane the model is a
// plain single queue. Same seed, same lane count => bit-identical
// completion times under both schedulers.

// Registry names of the MN compute-plane instruments.
const (
	// NameMNService is the histogram of per-offload MN CPU service time
	// (virtual ns).
	NameMNService = "dm.mn.service_ns"

	// NameMNQueue is the histogram of time offloaded ops queued waiting
	// for an MN core (virtual ns).
	NameMNQueue = "dm.mn.queue_ns"

	// NameMNDepth is a gauge of the MN CPU queue depth observed at each
	// offload arrival (ops waiting ahead, estimated from the backlog and
	// the arriving op's own service time).
	NameMNDepth = "dm.mn.queue_depth"

	// NameMNOffload counts offloaded programs executed at MNs.
	NameMNOffload = "dm.mn.offload"

	// NameMNFallback counts offloaded programs that returned a fallback
	// verdict (local validation gave up, cross-MN reference, or the
	// program does not support the op) — the client redoes the op
	// one-sided.
	NameMNFallback = "dm.mn.fallback"
)

// Default MN compute parameters, applied when the config leaves the
// knobs zero: two wimpy cores per MN, 600 ns fixed dispatch cost per
// offloaded program, 4 GB/s per-core touch bandwidth.
const (
	defaultMNCPUs      = 2
	defaultMNServiceNs = 600
	defaultMNScanBps   = 4e9
	minMNServiceNs     = 1
)

// mnCPUShard is one lane-private slice of an MN's offload cores: its
// own busy horizon and counters under its own mutex, padded onto a
// private cache line (same layout discipline as nicShard).
type mnCPUShard struct {
	mu        sync.Mutex
	freeAt    int64
	ops       int64
	fallbacks int64
	busyNs    int64
	queuedNs  int64
	_         [64]byte
}

// mnCPU is the bounded compute of one memory node.
type mnCPU struct {
	baseNs    float64 // per-shard fixed cost per offloaded program
	nsPerByte float64 // per-shard cost per byte the program touches
	shards    []mnCPUShard

	// Observability (nil-safe without a sink; see Fabric.SetObserver).
	svcHist   *obs.Histogram
	queueHist *obs.Histogram
	depth     *obs.Gauge
	offloads  *obs.Counter
	fallbacks *obs.Counter
	fr        *obs.FlightRecorder
}

func newMNCPU(cfg Config) *mnCPU {
	cores := cfg.MNCPUs
	if cores <= 0 {
		cores = defaultMNCPUs
	}
	baseNs := float64(cfg.MNServiceTime.Nanoseconds())
	if baseNs <= 0 {
		baseNs = defaultMNServiceNs
	}
	scan := cfg.MNScanBps
	if scan <= 0 {
		scan = defaultMNScanBps
	}
	lanes := cfg.lanes()
	// Pre-scale by lanes/cores: each of the `lanes` shards serves at
	// cores/lanes times a single core's rate, so aggregate capacity is
	// exactly `cores` cores regardless of sharding.
	scale := float64(lanes) / float64(cores)
	return &mnCPU{
		baseNs:    baseNs * scale,
		nsPerByte: 1e9 / scan * scale,
		shards:    make([]mnCPUShard, lanes),
	}
}

func (m *mnCPU) setObserver(s *obs.Sink) {
	r := s.Registry()
	m.svcHist = r.Histogram(NameMNService)
	m.queueHist = r.Histogram(NameMNQueue)
	m.depth = r.Gauge(NameMNDepth)
	m.offloads = r.Counter(NameMNOffload)
	m.fallbacks = r.Counter(NameMNFallback)
	m.fr = s.FlightRecorder()
}

// serviceNs is the MN CPU cost of one offloaded program that touched
// the given number of bytes through its metered view.
func (m *mnCPU) serviceNs(touched int64) int64 {
	sNs := int64(m.baseNs + float64(touched)*m.nsPerByte)
	if sNs < minMNServiceNs {
		sNs = minMNServiceNs
	}
	return sNs
}

// serve charges one offloaded program arriving (fully received by the
// NIC) at the given virtual time and returns its completion time at the
// MN CPU. fallback marks programs whose verdict sends the client back
// to the one-sided path — they consumed the CPU all the same.
func (m *mnCPU) serve(shard int32, arrival, svcNs int64, fallback bool) int64 {
	s := &m.shards[shard]
	s.mu.Lock()
	start := arrival
	if s.freeAt > start {
		start = s.freeAt
	}
	completion := start + svcNs
	s.freeAt = completion
	s.ops++
	if fallback {
		s.fallbacks++
	}
	s.busyNs += svcNs
	s.queuedNs += start - arrival
	s.mu.Unlock()

	m.svcHist.Observe(svcNs)
	m.queueHist.Observe(start - arrival)
	if m.fr != nil {
		m.fr.AddMNBusy(start, completion)
	}
	if m.depth != nil {
		m.depth.Set((start - arrival + svcNs - 1) / svcNs)
	}
	m.offloads.Inc()
	if fallback {
		m.fallbacks.Inc()
	}
	return completion
}

// pushBusy raises every shard's busy horizon to at least the given
// virtual time (see nic.pushBusy).
func (m *mnCPU) pushBusy(until int64) {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		if s.freeAt < until {
			s.freeAt = until
		}
		s.mu.Unlock()
	}
}

// frontier returns the latest busy time across the CPU's shards.
func (m *mnCPU) frontier() int64 {
	var fr int64
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		if s.freeAt > fr {
			fr = s.freeAt
		}
		s.mu.Unlock()
	}
	return fr
}

// MNCPUStats is a snapshot of one MN's offload-compute counters,
// aggregated across shards.
type MNCPUStats struct {
	Ops       int64 // offloaded programs executed
	Fallbacks int64 // programs that returned a fallback verdict
	BusyNs    int64 // total MN CPU service consumed
	QueuedNs  int64 // total time programs waited for an MN core
}

func (m *mnCPU) stats() MNCPUStats {
	var t MNCPUStats
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		t.Ops += s.ops
		t.Fallbacks += s.fallbacks
		t.BusyNs += s.busyNs
		t.QueuedNs += s.queuedNs
		s.mu.Unlock()
	}
	return t
}

// MNCPUStatsFor returns a snapshot of one MN's offload-compute counters.
func (f *Fabric) MNCPUStatsFor(mn int) MNCPUStats {
	return f.mns[mn].cpu.stats()
}

// MNCores reports the resolved offload-core count per MN — the
// configured MNCPUs, or the model default when the knob was left zero.
// BusyNs out of MNCores()*MNs()*wallNs is the offload plane's
// utilization.
func (f *Fabric) MNCores() int {
	if f.cfg.MNCPUs > 0 {
		return f.cfg.MNCPUs
	}
	return defaultMNCPUs
}

// TotalMNCPUStats sums offload-compute counters across all MNs.
func (f *Fabric) TotalMNCPUStats() MNCPUStats {
	var t MNCPUStats
	for _, m := range f.mns {
		s := m.cpu.stats()
		t.Ops += s.Ops
		t.Fallbacks += s.Fallbacks
		t.BusyNs += s.BusyNs
		t.QueuedNs += s.QueuedNs
	}
	return t
}
