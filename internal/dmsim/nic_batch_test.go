package dmsim

import "testing"

// TestServeBatchAccountingMatchesServe pins the invariant that a
// doorbell batch attributes queued/served nanoseconds per segment
// exactly like the same verb stream issued unbatched at one arrival
// time: NICStats must be comparable between batched and unbatched runs.
func TestServeBatchAccountingMatchesServe(t *testing.T) {
	cfg := DefaultConfig()
	payloads := []int{64, 1400, 8, 4096, 200}

	for _, backlog := range []int64{0, 12345} {
		a := newNIC(cfg)
		b := newNIC(cfg)
		a.shards[0].freeAt = backlog
		b.shards[0].freeAt = backlog

		const arrival = int64(100)
		var lastSeq int64
		for _, p := range payloads {
			lastSeq = a.serve(0, kindRead, arrival, p)
		}
		lastBatch := b.serveBatch(0, kindRead, arrival, payloads)

		if lastSeq != lastBatch {
			t.Fatalf("backlog %d: completion %d (sequential) != %d (batched)", backlog, lastSeq, lastBatch)
		}
		sa, sb := a.stats(), b.stats()
		if sa.Verbs != sb.Verbs {
			t.Fatalf("backlog %d: verbs %d != %d", backlog, sa.Verbs, sb.Verbs)
		}
		if sa.ServedNs != sb.ServedNs {
			t.Fatalf("backlog %d: ServedNs %d (sequential) != %d (batched)", backlog, sa.ServedNs, sb.ServedNs)
		}
		if sa.QueuedNs != sb.QueuedNs {
			t.Fatalf("backlog %d: QueuedNs %d (sequential) != %d (batched)", backlog, sa.QueuedNs, sb.QueuedNs)
		}
	}
}

// TestServeBatchQueuedNsZeroLoad: a batch arriving at an idle NIC still
// charges intra-batch queueing to every segment after the first.
func TestServeBatchQueuedNsZeroLoad(t *testing.T) {
	cfg := DefaultConfig()
	n := newNIC(cfg)
	perOp := int64(1e9 / cfg.IOPS)
	n.serveBatch(0, kindRead, 0, []int{8, 8, 8})
	s := n.stats()
	// Segment 0 waits 0, segment 1 waits one service, segment 2 waits two.
	if want := 3 * perOp; s.QueuedNs != want {
		t.Fatalf("QueuedNs = %d, want %d (intra-batch head-of-line wait)", s.QueuedNs, want)
	}
	if want := 3 * perOp; s.ServedNs != want {
		t.Fatalf("ServedNs = %d, want %d", s.ServedNs, want)
	}
}
