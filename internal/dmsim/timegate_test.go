package dmsim

import (
	"sync"
	"testing"
	"time"
)

func TestGateDirect(t *testing.T) {
	g := newTimeGate(1000)
	g.join(0)
	g.join(0)
	var wg sync.WaitGroup
	spans := make([]int64, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer g.leave()
			now := int64(0)
			for j := 0; j < 100; j++ {
				g.sync(now)
				now += 1000
			}
			spans[i] = now
		}(i)
	}
	wg.Wait()
	t.Logf("spans: %v, final window %d", spans, g.window)
	if g.window > 110000 {
		t.Fatalf("window ran to %d, want ~101000 (lockstep)", g.window)
	}
}

// TestGateRejoinAheadDoesNotWidenWindow models a poll-after-suspend: a
// member leaves, its clock jumps far ahead (polling a completion that
// landed past the window), and it rejoins. The window must not be
// widened by the rejoin — the laggards march it forward quantum by
// quantum while the rejoined member blocks in sync until the window
// catches up to its advanced clock.
func TestGateRejoinAheadDoesNotWidenWindow(t *testing.T) {
	g := newTimeGate(1000)
	g.join(0)
	g.join(0)
	g.join(0)

	const ahead = int64(50_000)
	released := make(chan int64, 1)
	go func() {
		// Suspended member polls a far-future completion, rejoins, and
		// issues its next verb.
		g.leave()
		g.rejoin()
		g.sync(ahead)
		released <- ahead
		g.leave() // done issuing; a member that stops syncing must leave
	}()

	// The two laggards advance in lockstep; the rejoined member must not
	// unblock before the window actually reaches its clock.
	var wg sync.WaitGroup
	for m := 0; m < 2; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			defer g.leave()
			now := int64(0)
			for now < ahead+2000 {
				g.sync(now)
				now += 1000
				select {
				case <-released:
					g.mu.Lock()
					w := g.window
					g.mu.Unlock()
					if w <= ahead {
						t.Errorf("ahead member released with window %d <= its clock %d", w, ahead)
					}
					released <- ahead // let the other laggard observe too
				default:
				}
			}
		}(m)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("gate wedged: rejoined-ahead member blocked the cohort")
	}
}

// TestGateLeaveReleasesLoneSurvivor is the ISSUE 6 satellite
// regression: two members join, one is blocked at the window edge, and
// the other leaves mid-window. The survivor must be released to
// freewheel — and its stale edge registration must be consumed, so a
// later two-member cohort on the same gate still advances in lockstep
// instead of letting one member march the window alone.
func TestGateLeaveReleasesLoneSurvivor(t *testing.T) {
	g := newTimeGate(1000)
	g.join(0)
	g.join(0)

	released := make(chan struct{})
	go func() {
		g.sync(5_000) // far past the window edge: blocks and registers
		close(released)
	}()
	// Wait for the survivor-to-be to register at the edge.
	for {
		g.mu.Lock()
		w := g.waiting
		g.mu.Unlock()
		if w == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	g.leave() // members drops to 1 mid-window
	select {
	case <-released:
	case <-time.After(20 * time.Second):
		t.Fatal("lone survivor deadlocked in sync after leave")
	}

	// The registration left behind by the released survivor must have
	// been consumed: waiting and minNow reset, so the next cohort's
	// first sync cannot spuriously satisfy waiting >= members.
	g.mu.Lock()
	waiting, minNow, window := g.waiting, g.minNow, g.window
	g.mu.Unlock()
	if waiting != 0 || minNow != maxInt64 {
		t.Fatalf("stale registration after leave: waiting=%d minNow=%d", waiting, minNow)
	}

	// Rebuild a two-member cohort and let one member register once: the
	// window must not move (lockstep requires both members).
	g.join(0)
	synced := make(chan struct{})
	go func() {
		g.sync(window) // at the edge: must block, not advance alone
		close(synced)
	}()
	select {
	case <-synced:
		t.Fatal("single member advanced the window alone after leave reset")
	case <-time.After(50 * time.Millisecond):
	}
	g.mu.Lock()
	if g.window != window {
		t.Fatalf("window moved from %d to %d with one of two members registered", window, g.window)
	}
	g.mu.Unlock()
	// Release the blocked member by leaving with the other.
	g.leave()
	<-synced
	g.leave()
}

func TestGateJoinLeaveChurn(t *testing.T) {
	// Members joining and leaving mid-flight must never wedge the gate.
	g := newTimeGate(1000)
	const members = 6
	var wg sync.WaitGroup
	for m := 0; m < members; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			now := int64(m * 100)
			g.join(now)
			for j := 0; j < 200; j++ {
				g.sync(now)
				now += int64(500 + m*37)
				if j%50 == 25 {
					// Simulate a suspend/resume cycle.
					g.leave()
					now += 10_000
					g.rejoin()
				}
			}
			g.leave()
		}(m)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("gate wedged under join/leave churn")
	}
}
