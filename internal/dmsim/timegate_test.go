package dmsim

import (
	"sync"
	"testing"
	"time"
)

func TestGateDirect(t *testing.T) {
	g := newTimeGate(1000)
	g.join(0)
	g.join(0)
	var wg sync.WaitGroup
	spans := make([]int64, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer g.leave()
			now := int64(0)
			for j := 0; j < 100; j++ {
				g.sync(now)
				now += 1000
			}
			spans[i] = now
		}(i)
	}
	wg.Wait()
	t.Logf("spans: %v, final window %d", spans, g.window)
	if g.window > 110000 {
		t.Fatalf("window ran to %d, want ~101000 (lockstep)", g.window)
	}
}

func TestGateJoinLeaveChurn(t *testing.T) {
	// Members joining and leaving mid-flight must never wedge the gate.
	g := newTimeGate(1000)
	const members = 6
	var wg sync.WaitGroup
	for m := 0; m < members; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			now := int64(m * 100)
			g.join(now)
			for j := 0; j < 200; j++ {
				g.sync(now)
				now += int64(500 + m*37)
				if j%50 == 25 {
					// Simulate a suspend/resume cycle.
					g.leave()
					now += 10_000
					g.rejoin()
				}
			}
			g.leave()
		}(m)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("gate wedged under join/leave churn")
	}
}
