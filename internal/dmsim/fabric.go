package dmsim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"chime/internal/obs"
)

// memoryNode is one node in the memory pool: a flat byte region, its
// NIC, a striped lock table for atomic verbs, and a bump allocator that
// services chunk-allocation RPCs.
type memoryNode struct {
	mem   []byte
	nic   *nic
	cpu   *mnCPU          // bounded offload compute (mncpu.go)
	locks [256]sync.Mutex // striped by address for CAS atomicity

	allocMu  sync.Mutex
	allocOff uint64

	// Durability plane (persist.go). ps is nil with persistence off —
	// the hot path pays one nil check. dead marks a crash-stopped MN
	// (KillMN): every verb aimed at it fails with ErrMNDown until
	// RestartMN recovers it.
	ps   *pstore
	dead atomic.Bool
}

// casLock returns the stripe lock guarding atomics on the given offset.
// Real NICs serialize atomics to the same cache line; striping by the
// 64-byte line index reproduces that without a global bottleneck.
func (m *memoryNode) casLock(off uint64) *sync.Mutex {
	return &m.locks[(off>>6)%uint64(len(m.locks))]
}

// copyOut copies remote memory into buf one 64-byte-aligned line at a
// time, each line under its stripe lock. This models the atomicity
// granularity of real RDMA data paths (PCIe TLPs): a transfer never
// tears *within* a cache line, but transfers spanning multiple lines can
// interleave with concurrent writers at line boundaries — the torn reads
// that cache-line versioning exists to detect.
func (m *memoryNode) copyOut(off uint64, buf []byte) {
	for len(buf) > 0 {
		lineEnd := (off | 63) + 1
		n := int(lineEnd - off)
		if n > len(buf) {
			n = len(buf)
		}
		lk := m.casLock(off)
		lk.Lock()
		copy(buf[:n], m.mem[off:off+uint64(n)])
		lk.Unlock()
		buf = buf[n:]
		off += uint64(n)
	}
}

// copyIn is the write-side counterpart of copyOut.
func (m *memoryNode) copyIn(off uint64, data []byte) {
	for len(data) > 0 {
		lineEnd := (off | 63) + 1
		n := int(lineEnd - off)
		if n > len(data) {
			n = len(data)
		}
		lk := m.casLock(off)
		lk.Lock()
		copy(m.mem[off:off+uint64(n)], data[:n])
		lk.Unlock()
		data = data[n:]
		off += uint64(n)
	}
}

// Fabric is the simulated disaggregated-memory pool: a set of memory
// nodes reachable from any number of clients. Create one with NewFabric
// and hand each simulated client its own *Client via NewClient.
type Fabric struct {
	cfg  Config
	mns  []*memoryNode
	gate *timeGate // cohort synchronizer under SchedulerGate
	loop *evLoop   // cohort synchronizer under SchedulerEventLoop (nil otherwise)

	// shards is the per-MN NIC shard count (== effective lanes).
	shards int32

	clientSeq atomic.Int64

	// Fault plane (fault.go). inj is read on every verb; set it only
	// while no verbs are in flight (SetFaultInjector). The counters are
	// striped (per-writer cache lines) so heavily faulted fleets on the
	// sharded NIC path don't serialize on four shared hot words.
	inj   FaultInjector
	ftObs faultObs

	ftTimeouts obs.Striped
	ftRetries  obs.Striped
	ftCrashes  obs.Striped
	ftFailures obs.Striped

	// Durability plane (persist.go): recovered metadata and the per-MN
	// restore summaries from construction-time warm start.
	pmetaMu       sync.Mutex
	pmeta         map[string]string
	restored      []RecoveryStats
	restoreHostNs int64

	// MN-side offload programs (offload.go). progMu guards registration
	// only; lookups on the verb path read the slice without it because
	// registration is required to happen-before offload traffic
	// (bootstrap precedes client goroutines).
	progMu sync.Mutex
	progs  []MNProgram
}

// NewFabric builds a fabric from the configuration.
func NewFabric(cfg Config) (*Fabric, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := &Fabric{cfg: cfg, shards: int32(cfg.lanes())}
	if cfg.Scheduler == SchedulerEventLoop {
		f.loop = newEvLoop(cfg.quantumNs(), cfg.lanes())
	} else {
		f.gate = newTimeGate(cfg.quantumNs())
	}
	for i := 0; i < cfg.MNs; i++ {
		f.mns = append(f.mns, &memoryNode{
			mem: make([]byte, cfg.MNSize),
			nic: newNIC(cfg),
			cpu: newMNCPU(cfg),
			// Offset 0 is the nil address; start allocating at 64.
			allocOff: 64,
		})
	}
	if cfg.Persist.Enabled() {
		if err := f.openPersist(); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// MustNewFabric is NewFabric that panics on a bad configuration. Useful
// in tests and examples where the config is a literal.
func MustNewFabric(cfg Config) *Fabric {
	f, err := NewFabric(cfg)
	if err != nil {
		panic(err)
	}
	return f
}

// Config returns the fabric's configuration.
func (f *Fabric) Config() Config { return f.cfg }

// MNs returns the number of memory nodes.
func (f *Fabric) MNs() int { return len(f.mns) }

// SetObserver attaches an observability sink to every NIC: per-verb
// service histograms and queue-wait histograms land in the sink's
// registry, and (when the sink traces) each NIC emits a rate-limited
// backlog/queue-depth counter timeline. Passing nil detaches nothing —
// call it once, before the traffic of interest, from a single
// goroutine. Observation never advances virtual clocks: timings are
// identical with or without a sink.
func (f *Fabric) SetObserver(s *obs.Sink) {
	if s == nil {
		return
	}
	for i, m := range f.mns {
		m.nic.setObserver(i, s)
		m.cpu.setObserver(s)
	}
	r := s.Registry()
	f.ftObs = faultObs{
		timeouts: r.Counter(NameVerbTimeout),
		retries:  r.Counter(NameVerbRetry),
		delay:    r.Histogram(NameFaultDelay),
	}
}

func (f *Fabric) node(a GAddr) (*memoryNode, error) {
	if int(a.MN) >= len(f.mns) {
		return nil, fmt.Errorf("dmsim: address %v references MN %d of %d", a, a.MN, len(f.mns))
	}
	return f.mns[a.MN], nil
}

// checkRange validates that [a, a+n) lies inside the MN region.
//
//chime:coldalloc allocates only when building the out-of-bounds error
func (f *Fabric) checkRange(a GAddr, n int) (*memoryNode, error) {
	mn, err := f.node(a)
	if err != nil {
		return nil, err
	}
	if n < 0 || a.Off+uint64(n) > uint64(len(mn.mem)) {
		return nil, fmt.Errorf("dmsim: access [%v, +%d) out of bounds (MN size %d)", a, n, len(mn.mem))
	}
	return mn, nil
}

// Frontier returns the fabric's current virtual time: the latest point
// any NIC or MN CPU is busy until. New clients start their clocks here.
func (f *Fabric) Frontier() int64 {
	var frontier int64
	for _, m := range f.mns {
		if fr := m.nic.frontier(); fr > frontier {
			frontier = fr
		}
		if fr := m.cpu.frontier(); fr > frontier {
			frontier = fr
		}
	}
	return frontier
}

// NICStatsFor returns a snapshot of one MN's NIC counters.
func (f *Fabric) NICStatsFor(mn int) NICStats {
	return f.mns[mn].nic.stats()
}

// TotalNICStats sums NIC counters across all MNs.
func (f *Fabric) TotalNICStats() NICStats {
	var t NICStats
	for _, m := range f.mns {
		s := m.nic.stats()
		t.Verbs += s.Verbs
		t.BytesIn += s.BytesIn
		t.BytesOut += s.BytesOut
		t.QueuedNs += s.QueuedNs
		t.ServedNs += s.ServedNs
	}
	return t
}

// Peek copies remote bytes without charging network cost. It exists for
// tests and debugging only — index code must use Client verbs.
func (f *Fabric) Peek(a GAddr, buf []byte) error {
	mn, err := f.checkRange(a, len(buf))
	if err != nil {
		return err
	}
	copy(buf, mn.mem[a.Off:])
	return nil
}

// Poke writes remote bytes without charging network cost. Tests only.
func (f *Fabric) Poke(a GAddr, data []byte) error {
	mn, err := f.checkRange(a, len(data))
	if err != nil {
		return err
	}
	copy(mn.mem[a.Off:], data)
	// Free mutations still mutate durable state; log them (at zero
	// virtual cost, like the rest of Poke).
	if mn.ps != nil {
		mn.ps.logWrite(a.Off, data)
	}
	return nil
}
