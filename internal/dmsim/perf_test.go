package dmsim

import (
	"sync"
	"testing"
)

// TestVerbRoundTripZeroAllocs pins the ISSUE 6 tentpole invariant:
// steady-state verb issue/poll allocates nothing. The completion
// freelist, batch-payload scratch, and shard counters make every verb
// after the first reuse of warm state.
func TestVerbRoundTripZeroAllocs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MNSize = 1 << 20
	f := MustNewFabric(cfg)
	c := f.NewClient()
	buf := make([]byte, 64)
	addr := GAddr{Off: 64}

	if n := testing.AllocsPerRun(1000, func() {
		if err := c.Read(addr, buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("sync read allocates %v per op, want 0", n)
	}

	if n := testing.AllocsPerRun(1000, func() {
		if err := c.Write(addr, buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("sync write allocates %v per op, want 0", n)
	}

	if n := testing.AllocsPerRun(1000, func() {
		if _, _, err := c.CAS(addr, 0, 1); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("CAS allocates %v per op, want 0", n)
	}

	// Posted pipeline at depth 8 with explicit Release.
	var hs [8]*Completion
	if n := testing.AllocsPerRun(1000, func() {
		for i := range hs {
			h, err := c.PostRead(addr, buf)
			if err != nil {
				t.Fatal(err)
			}
			hs[i] = h
		}
		for i := range hs {
			c.Poll(hs[i])
			c.Release(hs[i])
		}
	}); n != 0 {
		t.Fatalf("posted pipeline allocates %v per batch, want 0", n)
	}

	// Doorbell batch reusing the payload scratch.
	addrs := []GAddr{{Off: 64}, {Off: 256}, {Off: 512}}
	bufs := [][]byte{make([]byte, 64), make([]byte, 64), make([]byte, 64)}
	if n := testing.AllocsPerRun(1000, func() {
		if err := c.ReadBatch(addrs, bufs); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("batched read allocates %v per batch, want 0", n)
	}
}

// BenchmarkVerbRoundTrip measures the verb issue/poll hot path: the
// sync wrapper (post + poll + release) and a depth-8 posted pipeline.
func BenchmarkVerbRoundTrip(b *testing.B) {
	cfg := DefaultConfig()
	cfg.MNSize = 1 << 20

	b.Run("sync", func(b *testing.B) {
		f := MustNewFabric(cfg)
		c := f.NewClient()
		buf := make([]byte, 64)
		addr := GAddr{Off: 64}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.Read(addr, buf); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("posted8", func(b *testing.B) {
		f := MustNewFabric(cfg)
		c := f.NewClient()
		buf := make([]byte, 64)
		addr := GAddr{Off: 64}
		var hs [8]*Completion
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += len(hs) {
			for j := range hs {
				h, err := c.PostRead(addr, buf)
				if err != nil {
					b.Fatal(err)
				}
				hs[j] = h
			}
			for j := range hs {
				c.Poll(hs[j])
				c.Release(hs[j])
			}
		}
	})
}

// BenchmarkGateAdvance measures the scheduler advance itself — cohort
// members crossing window edges as fast as they can — for the condvar
// gate and the event loop at several cohort sizes. Every sync is an
// edge crossing (the member's clock advances one quantum per issue), so
// ns/op is the per-member cost of one window advance.
func BenchmarkGateAdvance(b *testing.B) {
	for _, members := range []int{8, 64, 512} {
		b.Run(benchName("gate", members), func(b *testing.B) {
			g := newTimeGate(1000)
			for m := 0; m < members; m++ {
				g.join(0)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N / members
			for m := 0; m < members; m++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer g.leave()
					now := int64(0)
					for j := 0; j < per; j++ {
						g.sync(now)
						now += 1000
					}
				}()
			}
			wg.Wait()
		})
		b.Run(benchName("event", members), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.MNSize = 1 << 20
			cfg.Scheduler = SchedulerEventLoop
			f := MustNewFabric(cfg)
			cls := make([]*Client, members)
			for m := range cls {
				cls[m] = f.NewClient()
				cls[m].JoinCohort()
			}
			quantum := cfg.quantumNs()
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N / members
			for m := 0; m < members; m++ {
				wg.Add(1)
				go func(c *Client) {
					defer wg.Done()
					defer c.LeaveCohort()
					for j := 0; j < per; j++ {
						c.syncGate()
						c.now += quantum
					}
				}(cls[m])
			}
			wg.Wait()
		})
	}
}

func benchName(kind string, members int) string {
	switch members {
	case 8:
		return kind + "/8"
	case 64:
		return kind + "/64"
	default:
		return kind + "/512"
	}
}
