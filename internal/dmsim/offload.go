package dmsim

import (
	"encoding/binary"
	"fmt"
)

// MN-side offload verbs. An offloadable verb ships one bounded index
// operation to the target memory node instead of traversing remote
// structures with a chain of one-sided verbs: the client pays one round
// trip (request in, result out) plus the MN CPU service time of the
// program (mncpu.go). This is the hybrid protocol of Outback/Clio: the
// index registers a co-designed MN-side program at bootstrap, and each
// op chooses per-call between one-sided traversal and offload.
//
// Index-layout knowledge stays out of dmsim: the fabric stores opaque
// MNProgram values and hands them a metered MN-side view (MNCtx) whose
// byte accounting drives the MN CPU service time. Programs run at post
// time — exactly when every other verb moves data — against the same
// stripe-locked memory one-sided verbs hit, so an MN-side read can
// observe the same line-granular tearing a remote READ would and must
// validate with the index's own version machinery, retrying locally
// (cheap — that locality is the whole win) or returning a fallback
// verdict that sends the client back to the one-sided path.
//
// Three verbs are exposed, mapping to the three MNProgram methods:
//
//	LeafSearchAtMN      one RPC replaces descend + leaf fetch + probe
//	CompareAndCASAtMN   read-compare-update without shipping the leaf
//	ScatterGatherScan   MN-side range collection into one response
//
// All three go through the fault/verb plane as VerbRPC class verbs: the
// gate is consulted before the program runs, so a crashed or faulted
// client leaves MN memory untouched.

// OffloadStatus is the verdict of one offloaded program execution.
type OffloadStatus uint8

const (
	// OffloadOK: the program completed the operation.
	OffloadOK OffloadStatus = iota

	// OffloadNotFound: the program completed and determined the key is
	// absent. A definitive verdict, not a fallback.
	OffloadNotFound

	// OffloadRetry: MN-local optimistic validation kept failing (or an
	// MN-side lock stayed contended) past the program's local budget.
	OffloadRetry

	// OffloadCrossMN: the program hit a reference leaving its MN. MN
	// cores only reach their own memory; the client falls back to
	// one-sided verbs, which reach everything.
	OffloadCrossMN

	// OffloadUnsupported: the program does not implement this op for the
	// index's configuration (e.g. updates of indirect values, whose
	// safety protocol needs client-side allocation).
	OffloadUnsupported
)

// Fallback reports whether the verdict sends the caller back to the
// one-sided path. OK and NotFound are both definitive.
func (s OffloadStatus) Fallback() bool {
	return s != OffloadOK && s != OffloadNotFound
}

func (s OffloadStatus) String() string {
	switch s {
	case OffloadOK:
		return "ok"
	case OffloadNotFound:
		return "notfound"
	case OffloadRetry:
		return "retry"
	case OffloadCrossMN:
		return "crossmn"
	case OffloadUnsupported:
		return "unsupported"
	}
	return fmt.Sprintf("offloadstatus(%d)", uint8(s))
}

// MNProgramID names a registered MN-side program. The zero value is
// invalid.
type MNProgramID int32

// MNProgram is one index's MN-side offload handlers, co-designed with
// the index's remote layout. Implementations must be safe for
// concurrent use (one call per client goroutine, like the index's own
// shared state) and must touch remote memory only through the MNCtx —
// the metering on that view is what the MN CPU charges for.
//
// arg carries a program-defined routing hint computed CN-side (ROLEX
// ships the model-predicted leaf group; tree indexes ignore it), so
// learned-model state never needs to live at the MN.
type MNProgram interface {
	// Search locates key and emits its value into the response buffer.
	Search(ctx *MNCtx, key, arg uint64) OffloadStatus

	// Update overwrites the value of an existing key in place (the
	// read-compare-update shape: probe, compare keys, swap the entry
	// under the index's own lock word). Absent keys are NotFound —
	// inserts keep their placement/split logic client-side.
	Update(ctx *MNCtx, key, arg uint64, val []byte) OffloadStatus

	// Scan collects up to limit entries with key >= start, in key order,
	// emitting [8B key][value] records into the response buffer.
	Scan(ctx *MNCtx, start, arg uint64, limit int) OffloadStatus
}

// RegisterMNProgram installs an index's MN-side program on every MN and
// returns its id. Call at bootstrap, before offload traffic; programs
// cannot be unregistered.
func (f *Fabric) RegisterMNProgram(p MNProgram) MNProgramID {
	f.progMu.Lock()
	defer f.progMu.Unlock()
	f.progs = append(f.progs, p)
	return MNProgramID(len(f.progs))
}

func (f *Fabric) program(id MNProgramID) MNProgram {
	if id < 1 || int(id) > len(f.progs) {
		return nil
	}
	return f.progs[id-1]
}

// MNCtx is the metered MN-side memory view handed to MNProgram methods.
// Every byte moved through it is charged to the program's MN CPU
// service time. Reads and writes are line-atomic under the same stripe
// locks one-sided verbs use; accesses leaving the MN (or its bounds)
// return false so the program can yield a CrossMN verdict. Not safe for
// concurrent use; valid only for the duration of the program call.
type MNCtx struct {
	f       *Fabric
	mn      *memoryNode
	mnIdx   int
	cl      *Client // issuing client (nil under ExecOffload)
	touched int64
	out     []byte
	outN    int

	// persistNs accumulates the durability charge of the program's
	// mutations (persist.go); postOffload adds it to the completion.
	persistNs int64
}

// MN returns the index of the memory node the program runs on.
func (x *MNCtx) MN() int { return x.mnIdx }

// Touched returns the bytes moved through the view so far.
func (x *MNCtx) Touched() int64 { return x.touched }

// local reports whether [a, a+n) is on this MN and in bounds.
func (x *MNCtx) local(a GAddr, n int) bool {
	return int(a.MN) == x.mnIdx && n >= 0 && a.Off+uint64(n) <= uint64(len(x.mn.mem))
}

// Read copies MN-local memory into buf (line-atomic per 64 B, torn
// across lines exactly like a one-sided READ). False means the address
// leaves this MN or its bounds — return OffloadCrossMN.
func (x *MNCtx) Read(a GAddr, buf []byte) bool {
	if !x.local(a, len(buf)) {
		return false
	}
	x.mn.copyOut(a.Off, buf)
	x.touched += int64(len(buf))
	return true
}

// Write stores data into MN-local memory (line-atomic per 64 B).
func (x *MNCtx) Write(a GAddr, data []byte) bool {
	if !x.local(a, len(data)) {
		return false
	}
	x.mn.copyIn(a.Off, data)
	x.touched += int64(len(data))
	if x.mn.ps != nil {
		x.persistNs += x.mn.ps.logWrite(a.Off, data)
	}
	return true
}

// CAS is MaskedCAS with full masks.
func (x *MNCtx) CAS(a GAddr, old, new uint64) (prev uint64, swapped, ok bool) {
	return x.MaskedCAS(a, old, new, ^uint64(0), ^uint64(0))
}

// MaskedCAS applies the extended masked atomic to an MN-local word,
// under the same stripe lock remote atomics take — MN-side lock
// acquisition interoperates exactly with client-side CAS on the same
// word. ok=false means the address leaves this MN or its bounds.
// Applied atomics are reported to the fault plane on behalf of the
// issuing client, so crash-after-N-lock-acquires schedules count
// offloaded acquires too.
func (x *MNCtx) MaskedCAS(a GAddr, cmp, swap, cmpMask, swapMask uint64) (prev uint64, swapped, ok bool) {
	if !x.local(a, 8) {
		return 0, false, false
	}
	lk := x.mn.casLock(a.Off)
	lk.Lock()
	word := x.mn.mem[a.Off : a.Off+8]
	prev = binary.LittleEndian.Uint64(word)
	swapped = prev&cmpMask == cmp&cmpMask
	if swapped {
		next := (prev &^ swapMask) | (swap & swapMask)
		binary.LittleEndian.PutUint64(word, next)
		if x.mn.ps != nil {
			// Under the stripe lock, like PostMaskedCAS: handoffs on
			// one word must replay in serialization order.
			x.persistNs += x.mn.ps.logWord(a.Off, next)
		}
	}
	lk.Unlock()
	x.touched += 8
	if x.cl != nil {
		x.cl.observeCAS(a, swapped, cmpMask, swap)
	}
	return prev, swapped, true
}

// Emit appends p to the response buffer. False means the caller's
// buffer is full; the program should stop emitting and return.
func (x *MNCtx) Emit(p []byte) bool {
	if x.outN+len(p) > len(x.out) {
		return false
	}
	copy(x.out[x.outN:], p)
	x.outN += len(p)
	x.touched += int64(len(p))
	return true
}

// EmitLen returns the bytes emitted so far.
func (x *MNCtx) EmitLen() int { return x.outN }

// ExecOffload runs fn against an unmetered-cost MN-side view: no NIC or
// MN CPU charge, no fault gate, no client. It exists for dmsim tests
// and debugging only — index code must reach programs through the
// offload verbs (enforced by chimelint's verbgate analyzer, like
// Peek/Poke). Returns the bytes emitted and touched.
func (f *Fabric) ExecOffload(mn int, dst []byte, fn func(*MNCtx)) (n int, touched int64, err error) {
	if mn < 0 || mn >= len(f.mns) {
		return 0, 0, fmt.Errorf("dmsim: ExecOffload on MN %d of %d", mn, len(f.mns))
	}
	ctx := MNCtx{f: f, mn: f.mns[mn], mnIdx: mn, out: dst}
	fn(&ctx)
	return ctx.outN, ctx.touched, nil
}

// offKind dispatches the three verb shapes onto MNProgram methods.
type offKind uint8

const (
	offSearch offKind = iota
	offUpdate
	offScan
)

// offHeaderBytes is the on-wire request/response header of an offload
// RPC: program id, op, key, arg, limit, status, result length.
const offHeaderBytes = 32

// postOffload is the single offload verb path: fault gate, program
// execution against a metered view, NIC charge for request+response,
// MN CPU charge for the program, pooled completion. The per-client
// scratch MNCtx keeps the steady state allocation-free.
func (c *Client) postOffload(id MNProgramID, mn int, kind offKind, key, arg uint64, val []byte, limit int, dst []byte) (*Completion, error) {
	c.syncGate()
	if mn < 0 || mn >= len(c.f.mns) {
		return nil, fmt.Errorf("dmsim: offload to MN %d of %d", mn, len(c.f.mns))
	}
	prog := c.f.program(id)
	if prog == nil {
		return nil, fmt.Errorf("dmsim: offload with unregistered program id %d", id)
	}
	penalty, err := c.faultGate(VerbRPC, mn)
	if err != nil {
		return nil, err
	}
	node := c.f.mns[mn]

	ctx := &c.offCtx
	*ctx = MNCtx{f: c.f, mn: node, mnIdx: mn, cl: c, out: dst}
	var st OffloadStatus
	switch kind {
	case offSearch:
		st = prog.Search(ctx, key, arg)
	case offUpdate:
		st = prog.Update(ctx, key, arg, val)
	default:
		st = prog.Scan(ctx, key, arg, limit)
	}
	n := ctx.outN
	touched := ctx.touched
	persistNs := ctx.persistNs
	ctx.cl = nil // drop references until the next offload reuses it
	ctx.out = nil
	ctx.mn = nil
	ctx.f = nil

	reqBytes := offHeaderBytes + len(val)
	respBytes := offHeaderBytes + n
	arrival := c.now + c.issueNs + penalty
	mnSvc := node.cpu.serviceNs(touched)
	nicDone := node.nic.serve(c.shard(), kindRPC, arrival, reqBytes+respBytes)
	cpuDone := node.cpu.serve(c.shard(), nicDone, mnSvc, st.Fallback()) + persistNs

	c.stats.RPCs++
	c.stats.Offloads++
	c.stats.Trips++
	c.stats.BytesWritten += int64(reqBytes)
	c.stats.BytesRead += int64(respBytes)
	h := c.post(cpuDone)
	h.offN, h.offStatus, h.isOff = int32(n), st, true
	if c.fl != nil {
		h.recordLedger(penalty, arrival, nicDone, node.nic.serviceNs(reqBytes+respBytes))
		h.ledMNSvc = mnSvc
		h.ledMNQueue = cpuDone - nicDone - mnSvc
	}
	return h, nil
}

// OffloadResult returns the emitted byte count and verdict of a polled
// offload completion. It panics before Poll, or on a completion that
// did not come from an offload verb.
func (h *Completion) OffloadResult() (int, OffloadStatus) {
	if !h.polled {
		panic("dmsim: OffloadResult before Poll")
	}
	if !h.isOff {
		panic("dmsim: OffloadResult on a non-offload completion")
	}
	return int(h.offN), h.offStatus
}

// waitOffload is the shared sync tail: poll, read, release.
func (c *Client) waitOffload(h *Completion) (int, OffloadStatus) {
	c.Poll(h)
	n, st := h.OffloadResult()
	c.Release(h)
	return n, st
}

// PostLeafSearchAtMN posts an offloaded point lookup: the registered
// program descends and probes at the MN and emits the value into dst.
func (c *Client) PostLeafSearchAtMN(id MNProgramID, mn int, key, arg uint64, dst []byte) (*Completion, error) {
	return c.postOffload(id, mn, offSearch, key, arg, nil, 0, dst)
}

// LeafSearchAtMN is the synchronous form of PostLeafSearchAtMN. It
// returns the emitted byte count and the program's verdict; on a
// Fallback() verdict the caller should redo the op one-sided.
func (c *Client) LeafSearchAtMN(id MNProgramID, mn int, key, arg uint64, dst []byte) (int, OffloadStatus, error) {
	h, err := c.PostLeafSearchAtMN(id, mn, key, arg, dst)
	if err != nil {
		return 0, 0, err
	}
	n, st := c.waitOffload(h)
	return n, st, nil
}

// PostCompareAndCASAtMN posts an offloaded in-place update: the program
// locates key, takes the index's own lock word via MN-local CAS, and
// swaps the entry without shipping the leaf to the client.
func (c *Client) PostCompareAndCASAtMN(id MNProgramID, mn int, key, arg uint64, val []byte) (*Completion, error) {
	return c.postOffload(id, mn, offUpdate, key, arg, val, 0, nil)
}

// CompareAndCASAtMN is the synchronous form of PostCompareAndCASAtMN.
func (c *Client) CompareAndCASAtMN(id MNProgramID, mn int, key, arg uint64, val []byte) (OffloadStatus, error) {
	h, err := c.PostCompareAndCASAtMN(id, mn, key, arg, val)
	if err != nil {
		return 0, err
	}
	_, st := c.waitOffload(h)
	return st, nil
}

// PostScatterGatherScan posts an offloaded range collection: the
// program walks the index MN-side and emits up to limit [8B key][value]
// records into dst, replacing a chain of leaf fetches with one RPC.
func (c *Client) PostScatterGatherScan(id MNProgramID, mn int, start, arg uint64, limit int, dst []byte) (*Completion, error) {
	return c.postOffload(id, mn, offScan, start, arg, nil, limit, dst)
}

// ScatterGatherScan is the synchronous form of PostScatterGatherScan.
// It returns the emitted byte count and the program's verdict.
func (c *Client) ScatterGatherScan(id MNProgramID, mn int, start, arg uint64, limit int, dst []byte) (int, OffloadStatus, error) {
	h, err := c.PostScatterGatherScan(id, mn, start, arg, limit, dst)
	if err != nil {
		return 0, 0, err
	}
	n, st := c.waitOffload(h)
	return n, st, nil
}
