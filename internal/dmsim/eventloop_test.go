package dmsim

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

var errMustSuspend = errors.New("gated client must suspend")

func evConfig(lanes int) Config {
	cfg := DefaultConfig()
	cfg.MNSize = 1 << 20
	cfg.Scheduler = SchedulerEventLoop
	cfg.Lanes = lanes
	return cfg
}

// runEvCohort drives a deterministic mixed-verb workload (disjoint
// 64-byte slots per client, so lanes never race on remote lines) and
// returns a fingerprint of everything observable: per-client clocks and
// stats plus the aggregate NIC counters.
type evFingerprint struct {
	clocks []int64
	stats  []ClientStats
	nic    NICStats
}

func runEvCohort(t *testing.T, cfg Config, clients, ops int) evFingerprint {
	t.Helper()
	f := MustNewFabric(cfg)
	cls := make([]*Client, clients)
	for i := range cls {
		cls[i] = f.NewClient()
		cls[i].JoinCohort()
	}
	var wg sync.WaitGroup
	for i := range cls {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := cls[i]
			defer c.LeaveCohort()
			addr := GAddr{Off: uint64(64 * (i + 1))}
			buf := make([]byte, 64)
			for j := 0; j < ops; j++ {
				switch (i + j) % 3 {
				case 0:
					if err := c.Read(addr, buf); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if err := c.Write(addr, buf); err != nil {
						t.Error(err)
						return
					}
				default:
					if _, _, err := c.CAS(addr, 0, uint64(j)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	fp := evFingerprint{nic: f.TotalNICStats()}
	for _, c := range cls {
		fp.clocks = append(fp.clocks, c.Now())
		fp.stats = append(fp.stats, c.Stats())
	}
	return fp
}

// TestEventLoopCohortOverlapsVirtualTime is the event-mode twin of
// TestCohortOverlapsVirtualTime: cohort members must share virtual
// time, not serialize behind each other.
func TestEventLoopCohortOverlapsVirtualTime(t *testing.T) {
	for _, lanes := range []int{1, 4} {
		fp := runEvCohort(t, evConfig(lanes), 8, 200)
		perOp := int64(2400)
		for i, now := range fp.clocks {
			if now > 200*perOp*3 {
				t.Errorf("lanes=%d client %d clock %dns: cohort not overlapping", lanes, i, now)
			}
		}
	}
}

// TestEventLoopDeterministicAcrossRunsAndProcs pins the headline
// guarantee: same seed (here, same workload), same lane count →
// bit-identical client clocks, client stats, and NIC counters,
// regardless of GOMAXPROCS or host scheduling.
func TestEventLoopDeterministicAcrossRunsAndProcs(t *testing.T) {
	cfg := evConfig(4)
	base := runEvCohort(t, cfg, 12, 150)
	for trial := 0; trial < 3; trial++ {
		procs := 1 + trial%3
		prev := runtime.GOMAXPROCS(procs)
		got := runEvCohort(t, cfg, 12, 150)
		runtime.GOMAXPROCS(prev)
		if got.nic != base.nic {
			t.Fatalf("GOMAXPROCS=%d: NIC stats %+v != %+v", procs, got.nic, base.nic)
		}
		for i := range base.clocks {
			if got.clocks[i] != base.clocks[i] {
				t.Fatalf("GOMAXPROCS=%d: client %d clock %d != %d", procs, i, got.clocks[i], base.clocks[i])
			}
			if got.stats[i] != base.stats[i] {
				t.Fatalf("GOMAXPROCS=%d: client %d stats %+v != %+v", procs, i, got.stats[i], base.stats[i])
			}
		}
	}
}

// TestEventLoopSingleLaneMatchesGateFrontier sanity-checks the shard
// capacity scaling: the same single-client verb stream must cost the
// same virtual time under both schedulers (one shard each).
func TestEventLoopSingleLaneMatchesGateFrontier(t *testing.T) {
	run := func(cfg Config) int64 {
		f := MustNewFabric(cfg)
		c := f.NewClient()
		buf := make([]byte, 256)
		for i := 0; i < 100; i++ {
			if err := c.Write(GAddr{Off: 64}, buf); err != nil {
				t.Fatal(err)
			}
		}
		return f.Frontier()
	}
	gate := func() Config { c := DefaultConfig(); c.MNSize = 1 << 20; return c }()
	if g, e := run(gate), run(evConfig(1)); g != e {
		t.Fatalf("frontier: gate %d != event %d", g, e)
	}
}

// TestEventLoopSuspendResume is the event-mode twin of
// TestSuspendReleasesGate: a suspended member must not stall the
// cohort, and a member resuming far ahead must not widen the window.
func TestEventLoopSuspendResume(t *testing.T) {
	f := MustNewFabric(evConfig(2))
	a, b := f.NewClient(), f.NewClient()
	a.JoinCohort()
	b.JoinCohort()

	done := make(chan struct{})
	var bErr error
	go func() {
		defer close(done)
		if !b.Suspend() {
			bErr = errMustSuspend
			return
		}
		// Resume far ahead and issue one more verb: must not deadlock
		// and must not run the clock backward.
		b.Resume(b.Now() + 1_000_000)
		bErr = b.Read(GAddr{Off: 128}, make([]byte, 64))
		b.LeaveCohort()
	}()

	buf := make([]byte, 64)
	for i := 0; i < 600; i++ {
		if err := a.Read(GAddr{Off: 64}, buf); err != nil {
			t.Fatal(err)
		}
	}
	a.LeaveCohort()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("event loop wedged on suspend/resume")
	}
	if bErr != nil {
		t.Fatal(bErr)
	}
}

// TestEventLoopJoinLeaveChurn: members joining and leaving mid-flight
// must never wedge the loop (the gate's churn test, in event mode).
func TestEventLoopJoinLeaveChurn(t *testing.T) {
	f := MustNewFabric(evConfig(3))
	const members = 6
	var wg sync.WaitGroup
	for m := 0; m < members; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			c := f.NewClient()
			c.JoinCohort()
			addr := GAddr{Off: uint64(64 * (m + 1))}
			buf := make([]byte, 64)
			for j := 0; j < 200; j++ {
				if err := c.Read(addr, buf); err != nil {
					t.Error(err)
					break
				}
				if j%50 == 25 {
					c.Suspend()
					c.Advance(10_000)
					c.Resume(0)
				}
			}
			c.LeaveCohort()
		}(m)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("event loop wedged under join/leave churn")
	}
}

// TestShardedNICStatsAggregate pins the ResetStats/obs interaction on
// the sharded path (ISSUE 6 satellite): client stats reset per window
// while NIC counters keep aggregating consistently across shards —
// totals equal the sum of per-MN snapshots, and bytes match what the
// clients actually moved after their reset.
func TestShardedNICStatsAggregate(t *testing.T) {
	cfg := evConfig(4)
	cfg.MNs = 2
	f := MustNewFabric(cfg)
	const clients, warm, ops = 8, 50, 100
	cls := make([]*Client, clients)
	for i := range cls {
		cls[i] = f.NewClient()
		cls[i].JoinCohort()
	}
	var wg sync.WaitGroup
	for i := range cls {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := cls[i]
			defer c.LeaveCohort()
			addr := GAddr{MN: uint8(i % cfg.MNs), Off: uint64(64 * (i + 1))}
			buf := make([]byte, 64)
			for j := 0; j < warm; j++ {
				if err := c.Write(addr, buf); err != nil {
					t.Error(err)
					return
				}
			}
			c.ResetStats()
			for j := 0; j < ops; j++ {
				if err := c.Write(addr, buf); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	var perMN NICStats
	for mn := 0; mn < cfg.MNs; mn++ {
		s := f.NICStatsFor(mn)
		perMN.Verbs += s.Verbs
		perMN.BytesIn += s.BytesIn
		perMN.BytesOut += s.BytesOut
		perMN.QueuedNs += s.QueuedNs
		perMN.ServedNs += s.ServedNs
	}
	if total := f.TotalNICStats(); total != perMN {
		t.Fatalf("TotalNICStats %+v != sum of per-MN snapshots %+v", total, perMN)
	}
	// NIC counters are fabric-lifetime: they must cover warmup AND the
	// measured window even though client stats were reset in between.
	if want := int64(clients * (warm + ops)); perMN.Verbs != want {
		t.Fatalf("NIC verbs %d, want %d across shards", perMN.Verbs, want)
	}
	if want := int64(clients * (warm + ops) * 64); perMN.BytesIn != want {
		t.Fatalf("NIC bytesIn %d, want %d across shards", perMN.BytesIn, want)
	}
	// Client stats cover only the post-reset window.
	for i, c := range cls {
		s := c.Stats()
		if s.Writes != ops || s.BytesWritten != ops*64 {
			t.Fatalf("client %d post-reset stats %+v, want %d writes", i, s, ops)
		}
	}
}
