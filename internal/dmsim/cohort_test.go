package dmsim

import (
	"sync"
	"testing"
)

func TestCohortOverlapsVirtualTime(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MNSize = 1 << 20
	f := MustNewFabric(cfg)
	const clients, ops = 8, 200
	cls := make([]*Client, clients)
	for i := range cls {
		cls[i] = f.NewClient()
		cls[i].JoinCohort()
	}
	var wg sync.WaitGroup
	durs := make([]int64, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer cls[i].LeaveCohort()
			c := cls[i]
			start := c.Now()
			buf := make([]byte, 64)
			for j := 0; j < ops; j++ {
				c.Read(GAddr{Off: 64}, buf)
			}
			durs[i] = c.Now() - start
		}(i)
	}
	wg.Wait()
	// Each client's span is ~ops*2.4us; if spans overlap, every span is
	// close to that, not k times it.
	perOp := int64(2400)
	for i, d := range durs {
		t.Logf("client %d: %dus", i, d/1000)
		if d > ops*perOp*3 {
			t.Errorf("client %d span %dns: cohort not overlapping", i, d)
		}
	}
}
