package dmsim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"chime/internal/obs"
)

// Verb service classes, used to split the NIC service-time histograms
// the observability layer records.
type verbKind int

const (
	kindRead verbKind = iota
	kindWrite
	kindAtomic
	kindRPC
	verbKinds
)

// Registry histogram names for NIC service/queue timing, one service
// histogram per verb class plus one shared queue-wait histogram.
const (
	NameNICQueueNs       = "dm.nic.queue_ns"
	NameNICReadService   = "dm.nic.read.service_ns"
	NameNICWriteService  = "dm.nic.write.service_ns"
	NameNICAtomicService = "dm.nic.atomic.service_ns"
	NameNICRPCService    = "dm.nic.rpc.service_ns"
)

// nicSampleIntervalNs rate-limits the per-NIC trace counter timeline to
// one sample per microsecond of virtual time, keeping trace files
// proportional to simulated time rather than verb count.
const nicSampleIntervalNs = 1000

// nic models one memory-node NIC as a single shared queueing resource.
// A verb's service time is the larger of its bandwidth cost
// (bytes / BandwidthBps) and its message cost (1 / IOPS), so streams of
// small verbs are IOPS-bound and large transfers are bandwidth-bound.
//
// Completion follows the classic single-server recurrence
//
//	completion = max(arrival, free) + service
//
// under a mutex; clients arrive with their own virtual clocks, and the
// max() term is what creates queueing delay when the NIC saturates.
type nic struct {
	mu     sync.Mutex
	freeAt int64 // virtual ns at which the NIC next idles

	nsPerByte float64
	nsPerOp   float64

	verbs    atomic.Int64
	bytesIn  atomic.Int64 // written to the MN
	bytesOut atomic.Int64 // read from the MN
	queuedNs atomic.Int64 // total time verbs spent waiting for the NIC
	servedNs atomic.Int64 // total service time consumed

	// Observability (nil when no sink is attached; see Fabric.SetObserver).
	// svcHist is indexed by verbKind. lastSampleNs gates the trace
	// counter timeline and is guarded by mu.
	svcHist      [verbKinds]*obs.Histogram
	queueHist    *obs.Histogram
	tr           *obs.Tracer
	trName       string
	lastSampleNs int64
}

func newNIC(cfg Config) *nic {
	return &nic{
		nsPerByte: 1e9 / cfg.BandwidthBps,
		nsPerOp:   1e9 / cfg.IOPS,
	}
}

// setObserver resolves the NIC's instruments from a sink. The service
// and queue histograms aggregate over all MNs; the trace counter
// timeline is per NIC ("nic<mn>").
func (n *nic) setObserver(mn int, s *obs.Sink) {
	r := s.Registry()
	n.svcHist[kindRead] = r.Histogram(NameNICReadService)
	n.svcHist[kindWrite] = r.Histogram(NameNICWriteService)
	n.svcHist[kindAtomic] = r.Histogram(NameNICAtomicService)
	n.svcHist[kindRPC] = r.Histogram(NameNICRPCService)
	n.queueHist = r.Histogram(NameNICQueueNs)
	n.tr = s.Tracer()
	n.trName = fmt.Sprintf("nic%d", mn)
}

// sampleLocked decides (under n.mu) whether to emit a timeline sample.
func (n *nic) sampleLocked(completion int64) bool {
	if n.tr == nil {
		return false
	}
	if completion-n.lastSampleNs < nicSampleIntervalNs {
		return false
	}
	n.lastSampleNs = completion
	return true
}

// serve charges one verb of the given payload size arriving at the given
// virtual time and returns its completion time at the NIC.
func (n *nic) serve(kind verbKind, arrival int64, payload int) int64 {
	service := n.nsPerOp
	if bw := float64(payload) * n.nsPerByte; bw > service {
		service = bw
	}
	sNs := int64(service)
	if sNs < 1 {
		sNs = 1
	}

	n.mu.Lock()
	start := arrival
	if n.freeAt > start {
		start = n.freeAt
	}
	completion := start + sNs
	n.freeAt = completion
	sample := n.sampleLocked(completion)
	n.mu.Unlock()

	n.verbs.Add(1)
	n.queuedNs.Add(start - arrival)
	n.servedNs.Add(sNs)
	n.svcHist[kind].Observe(sNs)
	n.queueHist.Observe(start - arrival)
	if sample {
		n.tr.CounterSample(n.trName, completion, map[string]float64{
			"backlog_ns": float64(completion - arrival),
			"queued_ns":  float64(start - arrival),
		})
	}
	return completion
}

// serveBatch charges a doorbell batch: each segment is serviced
// back-to-back at the NIC, but the caller pays only one round trip.
//
// Accounting attributes queued-vs-service nanoseconds per segment
// exactly as serve would if the same segments arrived individually at
// the batch's arrival time: segment k waits for the NIC to free up AND
// for the k-1 segments ahead of it in the batch, so
// queued_k = (start - arrival) + sum(service_0..service_{k-1}).
// This keeps NICStats.QueuedNs/ServedNs comparable between batched and
// unbatched runs of the same verb stream.
func (n *nic) serveBatch(kind verbKind, arrival int64, payloads []int) int64 {
	var total, queuedInBatch int64
	services := make([]int64, len(payloads))
	for i, p := range payloads {
		service := n.nsPerOp
		if bw := float64(p) * n.nsPerByte; bw > service {
			service = bw
		}
		sNs := int64(service)
		if sNs < 1 {
			sNs = 1
		}
		services[i] = sNs
		queuedInBatch += total // this segment waits behind its predecessors
		total += sNs
	}

	n.mu.Lock()
	start := arrival
	if n.freeAt > start {
		start = n.freeAt
	}
	completion := start + total
	n.freeAt = completion
	sample := n.sampleLocked(completion)
	n.mu.Unlock()

	n.verbs.Add(int64(len(payloads)))
	n.queuedNs.Add((start-arrival)*int64(len(payloads)) + queuedInBatch)
	n.servedNs.Add(total)
	if h := n.svcHist[kind]; h != nil {
		var behind int64
		for _, sNs := range services {
			h.Observe(sNs)
			n.queueHist.Observe(start - arrival + behind)
			behind += sNs
		}
	}
	if sample {
		n.tr.CounterSample(n.trName, completion, map[string]float64{
			"backlog_ns": float64(completion - arrival),
			"queued_ns":  float64(start - arrival),
		})
	}
	return completion
}

// NICStats is a snapshot of one MN NIC's counters.
type NICStats struct {
	Verbs    int64
	BytesIn  int64
	BytesOut int64
	QueuedNs int64
	ServedNs int64
}

func (n *nic) stats() NICStats {
	return NICStats{
		Verbs:    n.verbs.Load(),
		BytesIn:  n.bytesIn.Load(),
		BytesOut: n.bytesOut.Load(),
		QueuedNs: n.queuedNs.Load(),
		ServedNs: n.servedNs.Load(),
	}
}
