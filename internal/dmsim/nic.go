package dmsim

import (
	"fmt"
	"sync"

	"chime/internal/obs"
)

// Verb service classes, used to split the NIC service-time histograms
// the observability layer records.
type verbKind int

const (
	kindRead verbKind = iota
	kindWrite
	kindAtomic
	kindRPC
	verbKinds
)

// Registry histogram names for NIC service/queue timing, one service
// histogram per verb class plus one shared queue-wait histogram.
const (
	NameNICQueueNs       = "dm.nic.queue_ns"
	NameNICReadService   = "dm.nic.read.service_ns"
	NameNICWriteService  = "dm.nic.write.service_ns"
	NameNICAtomicService = "dm.nic.atomic.service_ns"
	NameNICRPCService    = "dm.nic.rpc.service_ns"
)

// nicSampleIntervalNs rate-limits the per-NIC trace counter timeline to
// one sample per microsecond of virtual time, keeping trace files
// proportional to simulated time rather than verb count.
const nicSampleIntervalNs = 1000

// nicShard is one independent slice of an MN NIC: its own FIFO busy
// horizon, traffic counters, and trace-sampling gate, all guarded by
// its own mutex so host cores never serialize on a sibling shard's
// lock. Counters are plain words mutated under mu — the mutex is
// already held for the busy-horizon recurrence, so folding the counter
// writes in costs nothing and drops five atomic RMWs per verb from the
// hot path. The padding keeps neighboring shards off one cache line.
type nicShard struct {
	mu           sync.Mutex
	freeAt       int64 // virtual ns at which this shard next idles
	verbs        int64
	bytesIn      int64 // written to the MN
	bytesOut     int64 // read from the MN
	queuedNs     int64 // total time verbs spent waiting for the shard
	servedNs     int64 // total service time consumed
	lastSampleNs int64 // trace timeline gate
	trName       string
	_            [64]byte
}

// nic models one memory-node NIC as a queueing resource split into one
// or more shards (Config.Lanes). A verb's service time is the larger of
// its bandwidth cost (bytes / BandwidthBps) and its message cost
// (1 / IOPS), so streams of small verbs are IOPS-bound and large
// transfers are bandwidth-bound.
//
// Each shard runs the classic single-server recurrence
//
//	completion = max(arrival, free) + service
//
// under its own mutex, with 1/shards of the NIC's bandwidth and IOPS
// (nsPerByte and nsPerOp are pre-scaled by the shard count), so the
// aggregate capacity is independent of sharding. With one shard the
// model is bit-identical to the historical single-server NIC; with
// lanes > 1 each event-loop lane owns a shard, trading the single FIFO
// horizon for per-lane horizons — the same approximation a multi-queue
// NIC makes with per-QP scheduling.
type nic struct {
	nsPerByte float64 // per shard
	nsPerOp   float64 // per shard
	shards    []nicShard

	// Observability (nil when no sink is attached; see
	// Fabric.SetObserver). svcHist is indexed by verbKind. Histograms
	// are atomic and shared across shards; the trace timeline is per
	// shard (distinct series names) since shards complete out of order.
	svcHist   [verbKinds]*obs.Histogram
	queueHist *obs.Histogram
	tr        *obs.Tracer
	fr        *obs.FlightRecorder
}

func newNIC(cfg Config) *nic {
	s := cfg.lanes()
	return &nic{
		nsPerByte: float64(s) * 1e9 / cfg.BandwidthBps,
		nsPerOp:   float64(s) * 1e9 / cfg.IOPS,
		shards:    make([]nicShard, s),
	}
}

// setObserver resolves the NIC's instruments from a sink. The service
// and queue histograms aggregate over all MNs; the trace counter
// timeline is per shard ("nic<mn>" for the single-shard NIC, keeping
// historical trace names; "nic<mn>.s<k>" under sharding).
func (n *nic) setObserver(mn int, s *obs.Sink) {
	r := s.Registry()
	n.svcHist[kindRead] = r.Histogram(NameNICReadService)
	n.svcHist[kindWrite] = r.Histogram(NameNICWriteService)
	n.svcHist[kindAtomic] = r.Histogram(NameNICAtomicService)
	n.svcHist[kindRPC] = r.Histogram(NameNICRPCService)
	n.queueHist = r.Histogram(NameNICQueueNs)
	n.tr = s.Tracer()
	n.fr = s.FlightRecorder()
	for k := range n.shards {
		if len(n.shards) == 1 {
			n.shards[k].trName = fmt.Sprintf("nic%d", mn)
		} else {
			n.shards[k].trName = fmt.Sprintf("nic%d.s%d", mn, k)
		}
	}
}

// serviceNs is the service time of one verb of the given payload size.
//
//chime:noalloc
func (n *nic) serviceNs(payload int) int64 {
	service := n.nsPerOp
	if bw := float64(payload) * n.nsPerByte; bw > service {
		service = bw
	}
	sNs := int64(service)
	if sNs < 1 {
		sNs = 1
	}
	return sNs
}

// pushBusy raises every shard's busy horizon to at least the given
// virtual time. RestartMN (persist.go) uses it to make post-recovery
// verbs queue behind the replay through the normal serve recurrence.
//
//chime:noalloc
func (n *nic) pushBusy(until int64) {
	for i := range n.shards {
		s := &n.shards[i]
		s.mu.Lock()
		if s.freeAt < until {
			s.freeAt = until
		}
		s.mu.Unlock()
	}
}

// sampleLocked decides (under the shard mutex) whether to emit a
// timeline sample.
//
//chime:noalloc
func (n *nic) sampleLocked(s *nicShard, completion int64) bool {
	if n.tr == nil {
		return false
	}
	if completion-s.lastSampleNs < nicSampleIntervalNs {
		return false
	}
	s.lastSampleNs = completion
	return true
}

// serve charges one verb of the given payload size arriving at the
// given virtual time on the given shard and returns its completion time
// at the NIC. Byte counters follow the verb class: READs move payload
// bytes out of the MN, WRITEs move them in, atomics and RPCs move
// nothing the byte counters track (their 8-byte words are charged to
// client stats, as before sharding).
//
//chime:noalloc
func (n *nic) serve(shard int32, kind verbKind, arrival int64, payload int) int64 {
	sNs := n.serviceNs(payload)

	s := &n.shards[shard]
	s.mu.Lock()
	start := arrival
	if s.freeAt > start {
		start = s.freeAt
	}
	completion := start + sNs
	s.freeAt = completion
	s.verbs++
	s.queuedNs += start - arrival
	s.servedNs += sNs
	switch kind {
	case kindRead:
		s.bytesOut += int64(payload)
	case kindWrite:
		s.bytesIn += int64(payload)
	}
	sample := n.sampleLocked(s, completion)
	s.mu.Unlock()

	n.svcHist[kind].Observe(sNs)
	n.queueHist.Observe(start - arrival)
	if n.fr != nil {
		n.fr.AddNICBusy(start, completion)
	}
	if sample {
		//lint:allow noalloc trace-sampling branch, disabled in steady state
		n.tr.CounterSample(s.trName, completion, map[string]float64{
			"backlog_ns": float64(completion - arrival),
			"queued_ns":  float64(start - arrival),
		})
	}
	return completion
}

// serveBatch charges a doorbell batch: each segment is serviced
// back-to-back at the shard, but the caller pays only one round trip.
//
// Accounting attributes queued-vs-service nanoseconds per segment
// exactly as serve would if the same segments arrived individually at
// the batch's arrival time: segment k waits for the shard to free up
// AND for the k-1 segments ahead of it in the batch, so
// queued_k = (start - arrival) + sum(service_0..service_{k-1}).
// This keeps NICStats.QueuedNs/ServedNs comparable between batched and
// unbatched runs of the same verb stream. Per-segment service times are
// recomputed in the histogram pass rather than staged in a slice, so
// the hot path stays allocation-free.
//
//chime:noalloc
func (n *nic) serveBatch(shard int32, kind verbKind, arrival int64, payloads []int) int64 {
	var total, queuedInBatch, bytes int64
	for _, p := range payloads {
		queuedInBatch += total // this segment waits behind its predecessors
		total += n.serviceNs(p)
		bytes += int64(p)
	}

	s := &n.shards[shard]
	s.mu.Lock()
	start := arrival
	if s.freeAt > start {
		start = s.freeAt
	}
	completion := start + total
	s.freeAt = completion
	s.verbs += int64(len(payloads))
	s.queuedNs += (start-arrival)*int64(len(payloads)) + queuedInBatch
	s.servedNs += total
	switch kind {
	case kindRead:
		s.bytesOut += bytes
	case kindWrite:
		s.bytesIn += bytes
	}
	sample := n.sampleLocked(s, completion)
	s.mu.Unlock()

	if h := n.svcHist[kind]; h != nil {
		var behind int64
		for _, p := range payloads {
			sNs := n.serviceNs(p)
			h.Observe(sNs)
			n.queueHist.Observe(start - arrival + behind)
			behind += sNs
		}
	}
	if n.fr != nil {
		n.fr.AddNICBusy(start, completion)
	}
	if sample {
		//lint:allow noalloc trace-sampling branch, disabled in steady state
		n.tr.CounterSample(s.trName, completion, map[string]float64{
			"backlog_ns": float64(completion - arrival),
			"queued_ns":  float64(start - arrival),
		})
	}
	return completion
}

// frontier returns the latest busy time across the NIC's shards.
//
//chime:noalloc
func (n *nic) frontier() int64 {
	var fr int64
	for i := range n.shards {
		s := &n.shards[i]
		s.mu.Lock()
		if s.freeAt > fr {
			fr = s.freeAt
		}
		s.mu.Unlock()
	}
	return fr
}

// NICStats is a snapshot of one MN NIC's counters, aggregated across
// its shards.
type NICStats struct {
	Verbs    int64
	BytesIn  int64
	BytesOut int64
	QueuedNs int64
	ServedNs int64
}

func (n *nic) stats() NICStats {
	var t NICStats
	for i := range n.shards {
		s := &n.shards[i]
		s.mu.Lock()
		t.Verbs += s.verbs
		t.BytesIn += s.bytesIn
		t.BytesOut += s.bytesOut
		t.QueuedNs += s.queuedNs
		t.ServedNs += s.servedNs
		s.mu.Unlock()
	}
	return t
}
