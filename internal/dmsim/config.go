// Package dmsim simulates a disaggregated-memory (DM) fabric: a pool of
// memory nodes (MNs) exposing one-sided RDMA-style verbs (READ, WRITE,
// CAS, masked-CAS and doorbell-batched reads) to compute-node (CN)
// clients.
//
// The simulator replaces the RDMA testbed used by the CHIME paper
// (SOSP '24). It preserves the three properties the paper's evaluation
// depends on:
//
//  1. Bytes moved. Every verb is charged for the exact payload it
//     transfers, so read and write amplification are visible.
//  2. Round trips. Every verb costs one network round trip; doorbell
//     batching collapses several reads into one.
//  3. NIC bottlenecks. Each MN NIC is a shared queueing resource with
//     both a bandwidth cap and an IOPS cap, so small transfers become
//     IOPS-bound and large transfers become bandwidth-bound, exactly the
//     regimes discussed in §3.2.3 of the paper.
//
// Time is virtual: each client carries its own clock and never sleeps,
// so experiments with hundreds of simulated clients run quickly on a
// small machine. Data movement is real: READ and WRITE copy bytes on the
// shared MN buffer without synchronization, so concurrent readers can
// observe torn state — just as on real hardware — and the index layers
// above must detect it with their optimistic-synchronization machinery.
package dmsim

import (
	"fmt"
	"time"
)

// SchedulerKind selects the cohort-ordering substrate: the legacy
// mutex+condvar time gate, or the calendar-queue batch event loop that
// scales to very large cohorts (100k+ clients).
type SchedulerKind int

const (
	// SchedulerGate is the default: cohort members synchronize through
	// the condvar time gate (timegate.go). Every window advance
	// broadcasts to the whole cohort, which is fine for hundreds of
	// members and ruinous for tens of thousands.
	SchedulerGate SchedulerKind = iota

	// SchedulerEventLoop replaces the gate with the batch event loop
	// (eventloop.go): parked members wait on a calendar queue keyed on
	// virtual ns, lanes execute one member at a time in deterministic
	// order, and window advances wake exactly one member per lane.
	// Results are bit-identical for the same seed and lane count
	// regardless of GOMAXPROCS.
	SchedulerEventLoop
)

// Config describes the simulated fabric.
type Config struct {
	// MNs is the number of memory nodes in the memory pool.
	MNs int

	// MNSize is the number of bytes of remote memory per MN.
	MNSize int

	// BandwidthBps is the per-MN NIC bandwidth in bytes per second,
	// each direction. The paper's testbed uses 100 Gbps ConnectX-6
	// NICs, i.e. 12.5 GB/s.
	BandwidthBps float64

	// IOPS is the per-MN NIC verb-rate ceiling (verbs per second).
	// Small messages hit this bound before the bandwidth bound.
	IOPS float64

	// BaseRTT is the zero-load one-sided verb latency (propagation +
	// DMA), applied once per round trip.
	BaseRTT time.Duration

	// IssueOverhead is the CN-side cost to post a verb (doorbell ring,
	// WQE write). Batched verbs pay it once per batch.
	IssueOverhead time.Duration

	// RPCServiceTime is the MN-side CPU cost of servicing an
	// allocation RPC. MNs have weak CPUs, so this is much larger than
	// a one-sided verb.
	RPCServiceTime time.Duration

	// MNCPUs is the number of wimpy offload-serving cores per memory
	// node (mncpu.go). Offloaded verbs queue for this bounded compute,
	// modeled as a single server of MNCPUs times one core's rate. Zero
	// selects the default (2).
	MNCPUs int

	// MNServiceTime is the fixed MN CPU dispatch cost per offloaded
	// program, before the per-byte touch cost. Zero selects the default
	// (600 ns).
	MNServiceTime time.Duration

	// MNScanBps is the per-core rate at which an MN core streams local
	// memory while executing an offloaded program (bytes/second); every
	// byte the program touches through its metered view costs
	// 1/MNScanBps seconds of service. Zero selects the default (4 GB/s,
	// a wimpy-core figure well under the NIC's 12.5 GB/s).
	MNScanBps float64

	// VerbTimeout is the client-side completion timeout the
	// fault-injection retry policy charges per transparent repost
	// (fault.go). Zero selects the default (10 µs). Irrelevant unless a
	// FaultInjector is attached.
	VerbTimeout time.Duration

	// MaxVerbRetries bounds the transparent reposts of a faulted verb
	// before the typed error (ErrTimeout, ErrNICUnavailable, ErrMNDown)
	// surfaces. Zero selects the default (8).
	MaxVerbRetries int

	// Scheduler selects the cohort-ordering substrate (see
	// SchedulerKind). The zero value keeps the legacy condvar gate, so
	// existing fabrics behave bit-identically.
	Scheduler SchedulerKind

	// Lanes is the number of parallel execution lanes (and per-MN NIC
	// shards) in event-loop mode: cohort members are partitioned by
	// join order across lanes, each lane runs its members one at a time
	// in deterministic calendar order, and each lane owns 1/Lanes of
	// every NIC's capacity so host cores never serialize on one busy
	// horizon. Zero or one means a single lane (bit-compatible with the
	// gate's single-server NIC). Ignored under SchedulerGate.
	Lanes int

	// QuantumRTTs widens the cohort synchronization window to this many
	// base RTTs (default 1). Large cohorts amortize park/unpark cost
	// over more verbs per window at the price of admitting more
	// virtual-time skew between members.
	QuantumRTTs int

	// Persist optionally attaches a per-MN durability backend
	// (persist.go): every MN-memory mutation is logged to a folio
	// write-behind file in Persist.Dir, snapshots compact the log, and
	// KillMN/RestartMN model true MN crash-recovery. The zero value
	// disables persistence with no change to the verb hot path.
	Persist PersistConfig

	// ChunkBytes is the unit handed out by the allocation RPC and
	// sub-allocated client-side. CHIME uses 16 MB chunks (§4.2.2);
	// benchmark fleets with hundreds of simulated clients may shrink it
	// to keep per-client reservation inside a laptop-sized MN — chunk
	// size only changes how often the (rare) allocation RPC fires.
	ChunkBytes int
}

// DefaultConfig returns fabric parameters modeled on the paper's
// testbed: 100 Gbps NICs, ~60M verbs/s small-message ceiling, 2 µs
// one-sided latency.
func DefaultConfig() Config {
	return Config{
		MNs:            1,
		MNSize:         256 << 20,
		BandwidthBps:   12.5e9,
		IOPS:           60e6,
		BaseRTT:        2 * time.Microsecond,
		IssueOverhead:  200 * time.Nanosecond,
		RPCServiceTime: 10 * time.Microsecond,
		ChunkBytes:     ChunkSize,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.MNs <= 0 {
		return fmt.Errorf("dmsim: MNs must be positive, got %d", c.MNs)
	}
	if c.MNSize <= 0 {
		return fmt.Errorf("dmsim: MNSize must be positive, got %d", c.MNSize)
	}
	if c.BandwidthBps <= 0 {
		return fmt.Errorf("dmsim: BandwidthBps must be positive, got %g", c.BandwidthBps)
	}
	if c.IOPS <= 0 {
		return fmt.Errorf("dmsim: IOPS must be positive, got %g", c.IOPS)
	}
	if c.BaseRTT < 0 || c.IssueOverhead < 0 || c.RPCServiceTime < 0 || c.VerbTimeout < 0 || c.MNServiceTime < 0 {
		return fmt.Errorf("dmsim: negative latency parameter")
	}
	if c.MNCPUs < 0 {
		return fmt.Errorf("dmsim: negative MNCPUs")
	}
	if c.MNScanBps < 0 {
		return fmt.Errorf("dmsim: negative MNScanBps")
	}
	if c.MaxVerbRetries < 0 {
		return fmt.Errorf("dmsim: negative MaxVerbRetries")
	}
	if c.ChunkBytes < 0 {
		return fmt.Errorf("dmsim: negative ChunkBytes")
	}
	if c.Scheduler != SchedulerGate && c.Scheduler != SchedulerEventLoop {
		return fmt.Errorf("dmsim: unknown Scheduler %d", c.Scheduler)
	}
	if c.Lanes < 0 {
		return fmt.Errorf("dmsim: negative Lanes")
	}
	if c.QuantumRTTs < 0 {
		return fmt.Errorf("dmsim: negative QuantumRTTs")
	}
	if err := c.Persist.validate(); err != nil {
		return err
	}
	return nil
}

// lanes returns the effective lane/shard count (>= 1).
func (c Config) lanes() int {
	if c.Scheduler == SchedulerEventLoop && c.Lanes > 1 {
		return c.Lanes
	}
	return 1
}

// quantumNs returns the effective cohort window size in virtual ns.
func (c Config) quantumNs() int64 {
	q := c.BaseRTT.Nanoseconds()
	if c.QuantumRTTs > 1 {
		q *= int64(c.QuantumRTTs)
	}
	if q < 1 {
		q = 1
	}
	return q
}
