package dmsim

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

// TestPostPollEquivalentToSync pins the virtual-clock contract: a posted
// verb polled immediately lands the clock exactly where the synchronous
// verb does.
func TestPostPollEquivalentToSync(t *testing.T) {
	cfg := testConfig()
	fSync := MustNewFabric(cfg)
	fAsync := MustNewFabric(cfg)
	cs, ca := fSync.NewClient(), fAsync.NewClient()

	buf := make([]byte, 256)
	if err := cs.Read(GAddr{Off: 64}, buf); err != nil {
		t.Fatal(err)
	}
	h, err := ca.PostRead(GAddr{Off: 64}, buf)
	if err != nil {
		t.Fatal(err)
	}
	ca.Poll(h)
	if cs.Now() != ca.Now() {
		t.Fatalf("sync clock %d != post+poll clock %d", cs.Now(), ca.Now())
	}
}

// TestPostAdvancesOnlyIssueOverhead: between post and poll the client's
// clock moves by exactly IssueOverhead per posted verb.
func TestPostAdvancesOnlyIssueOverhead(t *testing.T) {
	f := MustNewFabric(testConfig())
	c := f.NewClient()
	issue := f.Config().IssueOverhead.Nanoseconds()

	t0 := c.Now()
	var hs []*Completion
	buf := make([]byte, 64)
	for i := 0; i < 4; i++ {
		h, err := c.PostRead(GAddr{Off: 64}, buf)
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	if got, want := c.Now()-t0, 4*issue; got != want {
		t.Fatalf("clock advanced %dns during posts, want %dns", got, want)
	}
	if c.Inflight() != 4 {
		t.Fatalf("inflight = %d, want 4", c.Inflight())
	}
	c.WaitAll(hs...)
	if c.Inflight() != 0 {
		t.Fatalf("inflight after WaitAll = %d, want 0", c.Inflight())
	}
	if st := c.Stats(); st.MaxInflight != 4 || st.Posted != 4 {
		t.Fatalf("stats = %+v, want MaxInflight 4, Posted 4", st)
	}
}

// TestPipelineOverlapsRoundTrips: depth-D pipelining of independent
// reads must finish in far less virtual time than D sequential reads —
// the RTTs overlap, only NIC service serializes.
func TestPipelineOverlapsRoundTrips(t *testing.T) {
	cfg := testConfig()
	f1 := MustNewFabric(cfg)
	f2 := MustNewFabric(cfg)
	seq, pip := f1.NewClient(), f2.NewClient()
	const depth = 8
	buf := make([]byte, 64)

	t0 := seq.Now()
	for i := 0; i < depth; i++ {
		if err := seq.Read(GAddr{Off: 64}, buf); err != nil {
			t.Fatal(err)
		}
	}
	seqDur := seq.Now() - t0

	t0 = pip.Now()
	var hs []*Completion
	for i := 0; i < depth; i++ {
		h, err := pip.PostRead(GAddr{Off: 64}, buf)
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	pip.WaitAll(hs...)
	pipDur := pip.Now() - t0

	t.Logf("sequential %dns, pipelined %dns", seqDur, pipDur)
	if pipDur*2 >= seqDur {
		t.Fatalf("pipelined %dns not < half of sequential %dns", pipDur, seqDur)
	}
}

// TestCompletionOrderingUnderSaturation: a stream of posted verbs from
// one client completes at the NIC in post order, with strictly
// nondecreasing completion times, even when the NIC queue is saturated
// by a large backlog.
func TestCompletionOrderingUnderSaturation(t *testing.T) {
	cfg := testConfig()
	cfg.IOPS = 1e6 // 1 µs per verb: saturates immediately
	f := MustNewFabric(cfg)

	// Saturate the NIC with a competing client's backlog.
	other := f.NewClient()
	big := make([]byte, 64<<10)
	for i := 0; i < 32; i++ {
		if err := other.Write(GAddr{Off: 64}, big); err != nil {
			t.Fatal(err)
		}
	}

	c := f.NewClient() // joins at the frontier, behind the backlog
	buf := make([]byte, 64)
	var hs []*Completion
	for i := 0; i < 64; i++ {
		h, err := c.PostRead(GAddr{Off: 64}, buf)
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	prev := int64(-1)
	for i, h := range hs {
		if h.nicDone < prev {
			t.Fatalf("completion %d at %dns before predecessor at %dns", i, h.nicDone, prev)
		}
		prev = h.nicDone
	}
	// Polling out of order must still land the clock on the max.
	for i := len(hs) - 1; i >= 0; i-- {
		c.Poll(hs[i])
	}
	if want := hs[len(hs)-1].nicDone + f.Config().BaseRTT.Nanoseconds(); c.Now() != want {
		t.Fatalf("clock %dns after out-of-order polls, want %dns", c.Now(), want)
	}
}

// TestWaitAllEmpty: WaitAll with no (or nil) completions is a no-op.
func TestWaitAllEmpty(t *testing.T) {
	f := MustNewFabric(testConfig())
	c := f.NewClient()
	t0 := c.Now()
	if got := c.WaitAll(); got != t0 {
		t.Fatalf("WaitAll() moved clock %d -> %d", t0, got)
	}
	if got := c.WaitAll(nil, nil); got != t0 {
		t.Fatalf("WaitAll(nil, nil) moved clock %d -> %d", t0, got)
	}
	if c.Inflight() != 0 {
		t.Fatalf("inflight = %d", c.Inflight())
	}
}

// TestPostReadBatchEmpty: an empty posted batch completes instantly and
// does not count as a trip.
func TestPostReadBatchEmpty(t *testing.T) {
	f := MustNewFabric(testConfig())
	c := f.NewClient()
	h, err := c.PostReadBatch(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Done() {
		t.Fatal("empty batch must be pre-completed")
	}
	t0 := c.Now()
	c.Poll(h)
	if c.Now() != t0 {
		t.Fatal("polling an empty batch moved the clock")
	}
	if st := c.Stats(); st.Trips != 0 || st.Posted != 0 {
		t.Fatalf("empty batch counted traffic: %+v", st)
	}
}

// TestPostWriteVisibleAtPost: posted writes land in remote memory at
// post time; a read posted later (same client) observes them.
func TestPostWriteVisibleAtPost(t *testing.T) {
	f := MustNewFabric(testConfig())
	c := f.NewClient()
	want := []byte("posted write payload")
	hw, err := c.PostWrite(GAddr{Off: 128}, want)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	hr, err := c.PostRead(GAddr{Off: 128}, got)
	if err != nil {
		t.Fatal(err)
	}
	c.WaitAll(hw, hr)
	if !bytes.Equal(got, want) {
		t.Fatalf("read back %q, want %q", got, want)
	}
}

// TestPostCASResult: the atomic's outcome is readable after Poll and
// panics before it.
func TestPostCASResult(t *testing.T) {
	f := MustNewFabric(testConfig())
	c := f.NewClient()
	addr := GAddr{Off: 256}
	var zero [8]byte
	if err := c.Write(addr, zero[:]); err != nil {
		t.Fatal(err)
	}
	h, err := c.PostCAS(addr, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("CASResult before Poll must panic")
			}
		}()
		h.CASResult()
	}()
	c.Poll(h)
	prev, ok := h.CASResult()
	if prev != 0 || !ok {
		t.Fatalf("CAS result (%d, %v), want (0, true)", prev, ok)
	}
	h2, err := c.PostCAS(addr, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	c.Poll(h2)
	if prev, ok := h2.CASResult(); ok || prev != 42 {
		t.Fatalf("second CAS result (%d, %v), want (42, false)", prev, ok)
	}
}

// TestPollForeignCompletionPanics: handles are owned by their poster.
func TestPollForeignCompletionPanics(t *testing.T) {
	f := MustNewFabric(testConfig())
	c1, c2 := f.NewClient(), f.NewClient()
	buf := make([]byte, 8)
	h, err := c1.PostRead(GAddr{Off: 64}, buf)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("polling a foreign completion must panic")
		}
	}()
	c2.Poll(h)
}

// TestPollAfterSuspendCohort: a cohort member that suspends with verbs
// in flight may poll them while suspended, resume with the advanced
// clock, and keep issuing — without wedging the gate for the rest of
// the cohort.
func TestPollAfterSuspendCohort(t *testing.T) {
	cfg := testConfig()
	f := MustNewFabric(cfg)
	const members = 4
	cls := make([]*Client, members)
	for i := range cls {
		cls[i] = f.NewClient()
		cls[i].JoinCohort()
	}
	var wg sync.WaitGroup
	for i := range cls {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := cls[i]
			defer c.LeaveCohort()
			buf := make([]byte, 128)
			for j := 0; j < 50; j++ {
				h, err := c.PostRead(GAddr{Off: 64}, buf)
				if err != nil {
					t.Error(err)
					return
				}
				if j%10 == 5 {
					// Suspend mid-flight (as a delegated reader waiting on
					// its leader would), poll while suspended, resume.
					if c.Suspend() {
						now := c.Poll(h)
						c.Resume(now)
						continue
					}
				}
				c.Poll(h)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("cohort wedged: poll-after-suspend broke the time gate")
	}
}
