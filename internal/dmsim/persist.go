package dmsim

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"

	"chime/internal/folio"
)

// Per-MN persistence backend. With Config.Persist.Dir set, every
// mutation of MN memory — one-sided WRITEs, atomics, offloaded program
// writes, allocator watermarks — is appended to that MN's folio
// write-behind log, and SnapshotPersist compacts the log into a fresh
// snapshot. The log device is modeled as NVM: an append is durable the
// moment the verb that caused it completes, so an MN crash (KillMN)
// loses nothing a client was ever acked for; RestartMN replays
// snapshot + log and resumes.
//
// Virtual-time accounting. Real durability costs time, and the
// simulator charges it deterministically rather than measuring host
// I/O (which would destroy bit-identical same-seed runs):
//
//   - Each logged mutation charges appendNs(bytes) = LogNs +
//     bytes/LogBps onto the acking verb's completion time, after NIC
//     service. The NIC itself stays free — write-behind logging is MN-
//     local — so only the acked client waits, exactly the write-behind
//     shape.
//   - RestartMN computes a replay cost from the recovered page/record
//     counts and pushes the MN's NIC and CPU busy horizons past it, so
//     post-restart verbs queue behind recovery through the existing
//     single-server recurrences. No wall clock is read anywhere.
//
// With persistence off (the zero Config.Persist), no store exists, the
// hot path costs one nil check, and virtual results are bit-identical
// to a fabric built before this plane existed — pinned by
// TestPersistOffMeansOff in internal/bench.
//
// Concurrency contract: the logging hooks are safe under concurrent
// clients (the store serializes appends, capturing the fabric's
// coherence order: appends happen right after the data movement they
// record, so lock-serialized updates replay in acked order). The
// lifecycle calls — SnapshotPersist, KillMN, RestartMN, ClosePersist —
// require a quiesced fabric (no verbs in flight), like SetObserver.

// PersistConfig configures the optional per-MN durability backend.
// The zero value disables persistence entirely.
type PersistConfig struct {
	// Dir is the directory holding one <dir>/mn<i>.folio file per
	// memory node. Empty disables persistence. If the files already
	// exist, NewFabric restores MN memory from them (warm start /
	// crash recovery); otherwise fresh stores are created.
	Dir string

	// PageSize is the snapshot page granularity (folio.Options). Zero
	// selects 4096.
	PageSize int

	// AutoCompactEvery compacts an MN's log at the next safe point
	// (SnapshotPersist call) once this many records accumulated. Zero
	// disables auto-compaction.
	AutoCompactEvery int

	// LogNs is the per-record NVM append latency charged to the acking
	// verb, before the per-byte cost. Zero selects 300 ns.
	LogNs int64

	// LogBps is the NVM log stream bandwidth (bytes/second) for the
	// per-byte part of the append charge. Zero selects 2 GB/s.
	LogBps float64

	// ReplayNs is the per-record (and per-page) replay cost charged to
	// virtual time by RestartMN. Zero selects 100 ns.
	ReplayNs int64

	// ReplayBps is the replay streaming bandwidth for recovered bytes.
	// Zero selects 4 GB/s.
	ReplayBps float64
}

// Enabled reports whether the configuration turns persistence on.
func (p PersistConfig) Enabled() bool { return p.Dir != "" }

func (p PersistConfig) withDefaults() PersistConfig {
	if p.PageSize <= 0 {
		p.PageSize = 4096
	}
	if p.LogNs <= 0 {
		p.LogNs = 300
	}
	if p.LogBps <= 0 {
		p.LogBps = 2e9
	}
	if p.ReplayNs <= 0 {
		p.ReplayNs = 100
	}
	if p.ReplayBps <= 0 {
		p.ReplayBps = 4e9
	}
	return p
}

func (p PersistConfig) validate() error {
	if p.PageSize < 0 || p.AutoCompactEvery < 0 || p.LogNs < 0 || p.ReplayNs < 0 {
		return fmt.Errorf("dmsim: negative Persist parameter")
	}
	if p.LogBps < 0 || p.ReplayBps < 0 {
		return fmt.Errorf("dmsim: negative Persist bandwidth")
	}
	return nil
}

// appendNs is the deterministic virtual cost of logging one n-byte
// mutation: fixed NVM latency plus streaming.
func (p PersistConfig) appendNs(n int) int64 {
	return p.LogNs + int64(float64(n)*1e9/p.LogBps)
}

// pstore binds one MN's folio store to the cost model.
type pstore struct {
	st      *folio.Store
	cfg     PersistConfig
	records atomic.Int64
	bytes   atomic.Int64
}

// logWrite appends one mutation and returns the virtual-ns charge. A
// host I/O failure here (disk full, yanked volume) cannot be mapped to
// a simulated fault — the durable record of an acked write would be
// silently missing — so it panics.
//
//chime:coldalloc durable logging serializes each record to the folio store
func (p *pstore) logWrite(off uint64, data []byte) int64 {
	if err := p.st.AppendWrite(off, data); err != nil {
		panic(fmt.Sprintf("dmsim: persist log append failed: %v", err))
	}
	p.records.Add(1)
	p.bytes.Add(int64(len(data)))
	return p.cfg.appendNs(len(data))
}

// logWord is logWrite for an 8-byte atomic's post-image.
func (p *pstore) logWord(off uint64, word uint64) int64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], word)
	return p.logWrite(off, buf[:])
}

// logAlloc records the allocator watermark (recovery takes the max).
func (p *pstore) logAlloc(off uint64) int64 {
	if err := p.st.NoteAlloc(off); err != nil {
		panic(fmt.Sprintf("dmsim: persist alloc append failed: %v", err))
	}
	p.records.Add(1)
	return p.cfg.appendNs(8)
}

// PersistStats aggregate the fabric's durability counters.
type PersistStats struct {
	Records int64 // mutations logged across all MNs
	Bytes   int64 // payload bytes logged
}

// RecoveryStats describe one MN restore (RestartMN, or per-MN at
// NewFabric when the persist dir already held files).
type RecoveryStats struct {
	MN            int
	Pages         int   // snapshot pages restored
	PageBytes     int64 // their payload bytes
	Records       int   // log records replayed
	RecordBytes   int64 // write payload bytes replayed
	WasDirty      bool  // previous session did not close cleanly
	TruncatedTail bool  // a torn final record was discarded
	RecoverNs     int64 // virtual time charged for the replay
}

// recoverNs prices a replay with the configured cost model.
func (p PersistConfig) recoverNs(r *folio.Recovery) int64 {
	units := int64(r.Pages + r.Records)
	bytes := r.PageBytes + r.RecordBytes
	return units*p.ReplayNs + int64(float64(bytes)*1e9/p.ReplayBps)
}

func persistPath(dir string, mn int) string {
	return folio.Join(dir, fmt.Sprintf("mn%d.folio", mn))
}

// openPersist attaches stores to every MN at fabric construction,
// restoring memory from any existing files.
func (f *Fabric) openPersist() error {
	cfg := f.cfg.Persist.withDefaults()
	fopts := folio.Options{PageSize: cfg.PageSize, AutoCompactEvery: cfg.AutoCompactEvery}
	f.pmeta = map[string]string{}
	// Host wall time of the restore work alone (file decode + page
	// materialization), for the warm-start bench: fabric construction
	// around it — dominated by the MN memory allocation — is common to
	// cold and warm paths and must not pollute the comparison.
	start := time.Now() //lint:allow virtualclock host-side restore cost is a wall-clock figure by design
	defer func() {
		f.restoreHostNs = time.Since(start).Nanoseconds() //lint:allow virtualclock host-side restore cost is a wall-clock figure by design
	}()
	for i, mn := range f.mns {
		path := persistPath(cfg.Dir, i)
		if !folio.Exists(path) {
			st, err := folio.Create(path, fopts)
			if err != nil {
				return fmt.Errorf("dmsim: creating persist store: %w", err)
			}
			mn.ps = &pstore{st: st, cfg: cfg}
			continue
		}
		st, rec, err := folio.Open(path, fopts)
		if err != nil {
			return fmt.Errorf("dmsim: restoring MN %d: %w", i, err)
		}
		if err := rec.Materialize(mn.mem); err != nil {
			st.Close()
			return fmt.Errorf("dmsim: restoring MN %d: %w", i, err)
		}
		if rec.AllocOff > mn.allocOff {
			mn.allocOff = rec.AllocOff
		}
		for k, v := range rec.Meta {
			f.pmeta[k] = v
		}
		mn.ps = &pstore{st: st, cfg: cfg}
		f.restored = append(f.restored, RecoveryStats{
			MN: i, Pages: rec.Pages, PageBytes: rec.PageBytes,
			Records: rec.Records, RecordBytes: rec.RecordBytes,
			WasDirty: rec.WasDirty, TruncatedTail: rec.TruncatedTail,
			RecoverNs: cfg.recoverNs(rec),
		})
	}
	return nil
}

// PersistEnabled reports whether this fabric carries the durability
// backend.
func (f *Fabric) PersistEnabled() bool { return len(f.mns) > 0 && f.mns[0].ps != nil }

// PersistStats sums the durability counters across MNs.
func (f *Fabric) PersistStats() PersistStats {
	var t PersistStats
	for _, mn := range f.mns {
		if mn.ps != nil {
			t.Records += mn.ps.records.Load()
			t.Bytes += mn.ps.bytes.Load()
		}
	}
	return t
}

// RestoreStats returns the per-MN recovery summaries from fabric
// construction — empty for a cold (or persistence-off) fabric,
// populated when NewFabric warm-started from existing folio files.
func (f *Fabric) RestoreStats() []RecoveryStats { return f.restored }

// RestoreHostNs reports the host wall time NewFabric spent restoring
// MN memory from folio files (zero for a fresh or persistence-off
// fabric). A host-side figure like the scale experiment's capacity
// numbers — never part of virtual time.
func (f *Fabric) RestoreHostNs() int64 { return f.restoreHostNs }

// SetPersistMeta durably records a key/value pair (on MN 0's store)
// that survives snapshots and restarts — e.g. an index's super-block
// address, which an attaching client needs before it can read anything.
func (f *Fabric) SetPersistMeta(k, v string) error {
	if !f.PersistEnabled() {
		return fmt.Errorf("dmsim: SetPersistMeta on a fabric without persistence")
	}
	f.pmetaMu.Lock()
	f.pmeta[k] = v
	f.pmetaMu.Unlock()
	return f.mns[0].ps.st.SetMeta(k, v)
}

// PersistMeta reads a durable key/value pair (set this session or
// recovered at construction). Missing keys return "".
func (f *Fabric) PersistMeta(k string) string {
	f.pmetaMu.Lock()
	defer f.pmetaMu.Unlock()
	return f.pmeta[k]
}

// persistMetaFor returns the metadata snapshot compaction should carry
// forward for one MN (all of it lives on MN 0).
func (f *Fabric) persistMetaFor(mn int) map[string]string {
	if mn != 0 {
		return nil
	}
	f.pmetaMu.Lock()
	defer f.pmetaMu.Unlock()
	out := make(map[string]string, len(f.pmeta))
	for k, v := range f.pmeta {
		out[k] = v
	}
	return out
}

// FlushPersist drains every MN's append buffer to its file. Appends
// are modeled as durable at ack time; Flush makes the host file catch
// up (e.g. before out-of-band inspection with chimectl).
func (f *Fabric) FlushPersist() error {
	if !f.PersistEnabled() {
		return nil
	}
	for i, mn := range f.mns {
		if err := mn.ps.st.Flush(); err != nil {
			return fmt.Errorf("dmsim: flushing MN %d: %w", i, err)
		}
	}
	return nil
}

// SnapshotPersist compacts every MN's log into a fresh snapshot
// (folio heap+index, atomic rename), stamped with the fabric's
// frontier. Call it quiesced — compaction reads MN memory without the
// stripe locks. MNs whose log is below AutoCompactEvery still compact:
// this is the explicit snapshot; use MaybeSnapshotPersist for the
// threshold-gated form.
func (f *Fabric) SnapshotPersist() error {
	return f.snapshotPersist(false)
}

// MaybeSnapshotPersist compacts only the MNs whose sparse log has
// outgrown Persist.AutoCompactEvery. A zero threshold makes it a
// no-op. Requires the same quiescence as SnapshotPersist.
func (f *Fabric) MaybeSnapshotPersist() error {
	return f.snapshotPersist(true)
}

func (f *Fabric) snapshotPersist(thresholdOnly bool) error {
	if !f.PersistEnabled() {
		return fmt.Errorf("dmsim: snapshot on a fabric without persistence")
	}
	stamp := f.Frontier()
	for i, mn := range f.mns {
		mn.allocMu.Lock()
		allocOff := mn.allocOff
		mn.allocMu.Unlock()
		var err error
		if thresholdOnly {
			_, err = mn.ps.st.MaybeCompact(mn.mem, allocOff, f.persistMetaFor(i), stamp)
		} else {
			err = mn.ps.st.Compact(mn.mem, allocOff, f.persistMetaFor(i), stamp)
		}
		if err != nil {
			return fmt.Errorf("dmsim: snapshotting MN %d: %w", i, err)
		}
	}
	return nil
}

// ClosePersist cleanly closes every store (dirty flags cleared). The
// fabric must be quiesced and is done with durability afterwards:
// later mutations are NOT logged.
func (f *Fabric) ClosePersist() error {
	if !f.PersistEnabled() {
		return nil
	}
	var first error
	for i, mn := range f.mns {
		if mn.ps == nil {
			continue
		}
		if err := mn.ps.st.Close(); err != nil && first == nil {
			first = fmt.Errorf("dmsim: closing MN %d store: %w", i, err)
		}
		mn.ps = nil
	}
	return first
}

// KillMN crash-stops one memory node: its volatile memory is wiped,
// its folio store is abandoned exactly as a power cut would leave it
// (log flushed — the device is NVM — but the dirty flag still set),
// and every verb aimed at it fails with ErrMNDown until RestartMN.
// Requires persistence (killing an MN without a durable backend would
// silently lose data the simulation acked) and a quiesced fabric.
func (f *Fabric) KillMN(mnIdx int) error {
	if mnIdx < 0 || mnIdx >= len(f.mns) {
		return fmt.Errorf("dmsim: KillMN(%d) of %d MNs", mnIdx, len(f.mns))
	}
	mn := f.mns[mnIdx]
	if mn.ps == nil {
		return fmt.Errorf("dmsim: KillMN(%d) on a fabric without persistence", mnIdx)
	}
	if mn.dead.Load() {
		return fmt.Errorf("dmsim: KillMN(%d): already down", mnIdx)
	}
	if err := mn.ps.st.Abandon(); err != nil {
		return fmt.Errorf("dmsim: abandoning MN %d store: %w", mnIdx, err)
	}
	for i := range mn.mem {
		mn.mem[i] = 0
	}
	mn.allocMu.Lock()
	mn.allocOff = 64
	mn.allocMu.Unlock()
	mn.ps = nil
	mn.dead.Store(true)
	return nil
}

// RestartMN recovers a killed MN from its folio file: snapshot pages,
// then log replay (in acked order, tolerating a torn tail), allocator
// watermark and metadata. The replay's virtual cost — priced by the
// Persist cost model from what was actually recovered — is pushed onto
// the MN's NIC and CPU busy horizons, so the first post-restart verbs
// queue behind recovery exactly as they would behind any other busy
// resource. Requires a quiesced fabric.
func (f *Fabric) RestartMN(mnIdx int) (RecoveryStats, error) {
	if mnIdx < 0 || mnIdx >= len(f.mns) {
		return RecoveryStats{}, fmt.Errorf("dmsim: RestartMN(%d) of %d MNs", mnIdx, len(f.mns))
	}
	mn := f.mns[mnIdx]
	if !mn.dead.Load() {
		return RecoveryStats{}, fmt.Errorf("dmsim: RestartMN(%d): not down", mnIdx)
	}
	cfg := f.cfg.Persist.withDefaults()
	st, rec, err := folio.Open(persistPath(cfg.Dir, mnIdx),
		folio.Options{PageSize: cfg.PageSize, AutoCompactEvery: cfg.AutoCompactEvery, Stamp: f.Frontier()})
	if err != nil {
		return RecoveryStats{}, fmt.Errorf("dmsim: recovering MN %d: %w", mnIdx, err)
	}
	if err := rec.Materialize(mn.mem); err != nil {
		st.Close()
		return RecoveryStats{}, fmt.Errorf("dmsim: recovering MN %d: %w", mnIdx, err)
	}
	mn.allocMu.Lock()
	if rec.AllocOff > 64 {
		mn.allocOff = rec.AllocOff
	}
	mn.allocMu.Unlock()
	f.pmetaMu.Lock()
	if f.pmeta == nil {
		f.pmeta = map[string]string{}
	}
	for k, v := range rec.Meta {
		f.pmeta[k] = v
	}
	f.pmetaMu.Unlock()
	mn.ps = &pstore{st: st, cfg: cfg}

	stats := RecoveryStats{
		MN: mnIdx, Pages: rec.Pages, PageBytes: rec.PageBytes,
		Records: rec.Records, RecordBytes: rec.RecordBytes,
		WasDirty: rec.WasDirty, TruncatedTail: rec.TruncatedTail,
		RecoverNs: cfg.recoverNs(rec),
	}
	until := f.Frontier() + stats.RecoverNs
	mn.nic.pushBusy(until)
	mn.cpu.pushBusy(until)
	mn.dead.Store(false)
	return stats, nil
}

// MNDownNow reports whether an MN is currently crash-stopped by
// KillMN (not an injector blackout).
func (f *Fabric) MNDownNow(mnIdx int) bool {
	return mnIdx >= 0 && mnIdx < len(f.mns) && f.mns[mnIdx].dead.Load()
}
