package dmsim

import (
	"testing"

	"chime/internal/obs"
)

func obsTestConfig() Config {
	cfg := DefaultConfig()
	cfg.MNs = 2
	cfg.MNSize = 1 << 20
	return cfg
}

// TestResetStatsPinsPostedAndMaxInflight pins the ResetStats contract
// for the async-layer counters: Posted restarts at zero for the new
// window, while MaxInflight is re-seeded to the current pipeline depth
// so verbs still in flight count toward the new window's maximum.
func TestResetStatsPinsPostedAndMaxInflight(t *testing.T) {
	f := MustNewFabric(obsTestConfig())
	c := f.NewClient()
	buf := make([]byte, 64)

	h1, err := c.PostRead(GAddr{MN: 0, Off: 64}, buf)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c.PostRead(GAddr{MN: 0, Off: 128}, buf)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Posted != 2 || st.MaxInflight != 2 {
		t.Fatalf("pre-reset stats = %+v", st)
	}

	c.ResetStats()
	st := c.Stats()
	if st.Posted != 0 {
		t.Fatalf("Posted after reset = %d, want 0", st.Posted)
	}
	if st.MaxInflight != 2 {
		t.Fatalf("MaxInflight after reset = %d, want 2 (re-seeded to in-flight depth)", st.MaxInflight)
	}
	if st.Reads != 0 || st.Trips != 0 || st.BytesRead != 0 {
		t.Fatalf("traffic counters not zeroed: %+v", st)
	}

	c.Poll(h1)
	c.Poll(h2)
	if st := c.Stats(); st.MaxInflight != 2 {
		t.Fatalf("MaxInflight after drain = %d, want 2", st.MaxInflight)
	}

	// A reset with nothing in flight starts the window entirely at zero.
	c.ResetStats()
	if st := c.Stats(); st.Posted != 0 || st.MaxInflight != 0 {
		t.Fatalf("idle reset stats = %+v", st)
	}
}

// drive issues a fixed mixed verb sequence and returns the client's
// final virtual clock.
func drive(t *testing.T, f *Fabric) int64 {
	t.Helper()
	c := f.NewClient()
	buf := make([]byte, 256)
	for i := 0; i < 50; i++ {
		off := uint64(64 + (i%8)*256)
		if err := c.Write(GAddr{MN: uint8(i % 2), Off: off}, buf); err != nil {
			t.Fatal(err)
		}
		if err := c.Read(GAddr{MN: uint8(i % 2), Off: off}, buf); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.CAS(GAddr{MN: 0, Off: 64}, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.AllocRPC(0, 4096); err != nil {
		t.Fatal(err)
	}
	return c.Now()
}

// TestNICObserverRecords checks that an attached sink sees per-verb
// service histograms, queue timings, and (when tracing) a per-NIC
// counter timeline.
func TestNICObserverRecords(t *testing.T) {
	f := MustNewFabric(obsTestConfig())
	s := obs.NewSink(true)
	f.SetObserver(s)
	drive(t, f)

	snap := s.Registry().Snapshot()
	for _, name := range []string{
		NameNICReadService, NameNICWriteService, NameNICAtomicService, NameNICRPCService, NameNICQueueNs,
	} {
		h, ok := snap.Histograms[name]
		if !ok || h.Count == 0 {
			t.Fatalf("histogram %q not recorded: %+v", name, snap.Histograms)
		}
	}
	if got := snap.Histograms[NameNICReadService].Count; got != 50 {
		t.Fatalf("read service samples = %d, want 50", got)
	}
	if got := snap.Histograms[NameNICAtomicService].Count; got != 50 {
		t.Fatalf("atomic service samples = %d, want 50", got)
	}
	if s.Tracer().Len() == 0 {
		t.Fatal("tracing sink recorded no NIC timeline samples")
	}
}

// TestObserverNeverAdvancesClocks pins the core obs invariant: the same
// verb stream produces bit-identical virtual time with and without a
// sink attached.
func TestObserverNeverAdvancesClocks(t *testing.T) {
	plain := MustNewFabric(obsTestConfig())
	observed := MustNewFabric(obsTestConfig())
	observed.SetObserver(obs.NewSink(true))

	a := drive(t, plain)
	b := drive(t, observed)
	if a != b {
		t.Fatalf("virtual clock diverged under observation: %d vs %d", a, b)
	}
	if a <= 0 {
		t.Fatal("workload advanced no virtual time")
	}
}
