package dmsim

import (
	"bytes"
	"errors"
	"testing"
)

// persistCfg returns a small persistent fabric config rooted in a test
// temp dir.
func persistCfg(t *testing.T) Config {
	t.Helper()
	cfg := DefaultConfig()
	cfg.MNSize = 1 << 20
	cfg.ChunkBytes = 1 << 16
	cfg.Persist.Dir = t.TempDir()
	return cfg
}

func TestPersistKillRestartRestoresEverything(t *testing.T) {
	f := MustNewFabric(persistCfg(t))
	c := f.NewClient()

	base, err := c.AllocRPC(0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	// Exercise every mutating verb shape.
	if err := c.Write(base, []byte("one-sided write")); err != nil {
		t.Fatal(err)
	}
	addrs := []GAddr{{MN: 0, Off: base.Off + 256}, {MN: 0, Off: base.Off + 512}}
	if err := c.WriteBatch(addrs, [][]byte{[]byte("batch-a"), []byte("batch-b")}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.CAS(GAddr{MN: 0, Off: base.Off + 1024}, 0, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FetchAdd(GAddr{MN: 0, Off: base.Off + 1032}, 41); err != nil {
		t.Fatal(err)
	}

	// Snapshot mid-stream, then keep writing: recovery must compose
	// snapshot + log.
	if err := f.SnapshotPersist(); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(GAddr{MN: 0, Off: base.Off + 2048}, []byte("post-snapshot")); err != nil {
		t.Fatal(err)
	}

	want := make([]byte, 1<<20)
	if err := f.Peek(GAddr{MN: 0, Off: 0}, want); err != nil {
		t.Fatal(err)
	}
	usedBefore := f.UsedBytes(0)

	if err := f.KillMN(0); err != nil {
		t.Fatalf("KillMN: %v", err)
	}
	if err := c.Write(base, []byte("x")); !errors.Is(err, ErrMNDown) {
		t.Fatalf("write to dead MN = %v, want ErrMNDown", err)
	}
	if !f.MNDownNow(0) {
		t.Error("MNDownNow(0) = false after kill")
	}

	frontierBefore := f.Frontier()
	stats, err := f.RestartMN(0)
	if err != nil {
		t.Fatalf("RestartMN: %v", err)
	}
	if !stats.WasDirty {
		t.Error("crash restart did not report a dirty store")
	}
	if stats.Pages == 0 || stats.Records == 0 {
		t.Errorf("recovery restored %d pages, %d records; want both > 0", stats.Pages, stats.Records)
	}
	if stats.RecoverNs <= 0 {
		t.Errorf("RecoverNs = %d, want > 0", stats.RecoverNs)
	}
	if fr := f.Frontier(); fr < frontierBefore+stats.RecoverNs {
		t.Errorf("frontier %d not pushed past recovery (%d + %d)", fr, frontierBefore, stats.RecoverNs)
	}

	got := make([]byte, 1<<20)
	if err := f.Peek(GAddr{MN: 0, Off: 0}, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("restored MN memory differs from pre-crash state")
	}
	if used := f.UsedBytes(0); used != usedBefore {
		t.Errorf("allocator watermark %d, want %d", used, usedBefore)
	}

	// The MN is serving again.
	if err := c.Write(base, []byte("back")); err != nil {
		t.Fatalf("write after restart: %v", err)
	}
}

func TestPersistWarmStartFromCleanClose(t *testing.T) {
	cfg := persistCfg(t)
	f := MustNewFabric(cfg)
	c := f.NewClient()
	a, err := c.AllocRPC(0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Write(a, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := f.SetPersistMeta("super", "0:64"); err != nil {
		t.Fatal(err)
	}
	if err := f.ClosePersist(); err != nil {
		t.Fatal(err)
	}

	f2 := MustNewFabric(cfg)
	rs := f2.RestoreStats()
	if len(rs) == 0 {
		t.Fatal("warm-started fabric reports no restores")
	}
	if rs[0].WasDirty {
		t.Error("clean close reported dirty on reopen")
	}
	if f2.PersistMeta("super") != "0:64" {
		t.Errorf("meta lost: %q", f2.PersistMeta("super"))
	}
	buf := make([]byte, 7)
	if err := f2.Peek(a, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "durable" {
		t.Errorf("restored bytes %q", buf)
	}
	if used := f2.UsedBytes(0); used < a.Off+1024 {
		t.Errorf("allocator watermark %d not restored", used)
	}
	if err := f2.ClosePersist(); err != nil {
		t.Fatal(err)
	}
}

func TestKillMNRequiresPersistence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MNSize = 1 << 20
	f := MustNewFabric(cfg)
	if err := f.KillMN(0); err == nil {
		t.Fatal("KillMN without persistence succeeded; data would be unrecoverable")
	}
	if f.PersistEnabled() {
		t.Error("PersistEnabled on a plain fabric")
	}
}

func TestPersistCostsAreDeterministic(t *testing.T) {
	// Same seed (trivially: same op stream) twice, fresh dirs: the
	// virtual frontier and stats must be bit-identical — the durability
	// charge is a pure function, never host I/O timing.
	run := func() (int64, ClientStats, PersistStats) {
		cfg := DefaultConfig()
		cfg.MNSize = 1 << 20
		cfg.ChunkBytes = 1 << 16
		cfg.Persist.Dir = t.TempDir()
		f := MustNewFabric(cfg)
		c := f.NewClient()
		a, err := c.AllocRPC(0, 8192)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 128)
		for i := 0; i < 200; i++ {
			if err := c.Write(GAddr{MN: 0, Off: a.Off + uint64(i%8)*128}, buf); err != nil {
				t.Fatal(err)
			}
			if _, _, err := c.CAS(GAddr{MN: 0, Off: a.Off}, 0, 0); err != nil {
				t.Fatal(err)
			}
		}
		return f.Frontier(), c.Stats(), f.PersistStats()
	}
	fr1, st1, ps1 := run()
	fr2, st2, ps2 := run()
	if fr1 != fr2 || st1 != st2 || ps1 != ps2 {
		t.Errorf("same op stream diverged: frontier %d vs %d, stats %+v vs %+v, persist %+v vs %+v",
			fr1, fr2, st1, st2, ps1, ps2)
	}
	if ps1.Records == 0 {
		t.Error("no records logged")
	}
}

func TestPersistOffIsFreeOfSideEffects(t *testing.T) {
	// A fabric without Persist must not create files or change verb
	// timing. Timing identity with pre-plane history is pinned end to
	// end by TestPersistOffMeansOff in internal/bench; here we check
	// the plane is structurally absent.
	cfg := DefaultConfig()
	cfg.MNSize = 1 << 20
	f := MustNewFabric(cfg)
	c := f.NewClient()
	a, err := c.AllocRPC(0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Write(a, []byte("w")); err != nil {
		t.Fatal(err)
	}
	if s := f.PersistStats(); s != (PersistStats{}) {
		t.Errorf("persist stats nonzero with persistence off: %+v", s)
	}
	if err := f.FlushPersist(); err != nil {
		t.Errorf("FlushPersist no-op errored: %v", err)
	}
	if err := f.ClosePersist(); err != nil {
		t.Errorf("ClosePersist no-op errored: %v", err)
	}
}
