package dmsim

import "sync"

// timeGate is a conservative virtual-time synchronizer. The NIC's FIFO
// queueing recurrence (completion = max(arrival, free) + service) is
// only faithful when verbs arrive in roughly nondecreasing virtual-time
// order. Goroutines on a small host run in long real-time slices, so an
// unsynchronized cohort would present arrivals wildly out of order: one
// client's entire run executes first, pushing the NIC's busy horizon
// far past the epoch, and every later client appears to queue behind
// history that "hasn't happened yet".
//
// The gate bounds the skew: member clients may only issue verbs while
// their clock is inside the current window [0, window); a client that
// reaches the edge blocks until every other member has also reached it,
// then the window advances by one quantum past the slowest member. The
// NIC then sees arrival times that are ordered to within one quantum,
// which is set to the base RTT — about one operation per window.
//
// Membership is voluntary: clients that never join (bootstrap loaders,
// unit tests) freewheel exactly as before.
type timeGate struct {
	mu      sync.Mutex
	cond    *sync.Cond
	quantum int64

	window  int64 // exclusive upper bound of runnable virtual time
	members int
	waiting int    // members registered at the edge since the last advance
	minNow  int64  // smallest clock among registered members
	gen     uint64 // bumped by every advance; consumes registrations
}

const maxInt64 = int64(1<<63 - 1)

func newTimeGate(quantum int64) *timeGate {
	if quantum < 1 {
		quantum = 1
	}
	g := &timeGate{quantum: quantum, minNow: maxInt64}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// join adds a member whose clock currently reads now, opening the
// window to cover it (cohort setup, where all members share an epoch).
func (g *timeGate) join(now int64) {
	g.mu.Lock()
	g.members++
	if w := now + g.quantum; w > g.window {
		g.window = w
	}
	g.mu.Unlock()
}

// rejoin re-adds a member that temporarily suspended (e.g. a delegated
// read waiting on its leader) WITHOUT widening the window: the member's
// clock may have jumped ahead to its leader's completion, and opening
// the window that far would let every laggard race through it,
// unbounding the very skew the gate exists to limit. The rejoined
// member simply blocks at its next verb until the window catches up.
func (g *timeGate) rejoin() {
	g.mu.Lock()
	g.members++
	g.mu.Unlock()
}

// leave removes a member; if everyone else is registered at the window
// edge, the window advances so they can proceed.
func (g *timeGate) leave() {
	g.mu.Lock()
	g.members--
	if g.members <= 1 {
		// A lone survivor freewheels (sync's loop condition requires
		// members > 1), so release it — and consume any registrations it
		// left behind. Without the reset, the survivor's stale waiting
		// count and minNow linger; after the next join, one registration
		// would satisfy waiting >= members and march the window forward
		// alone from a stale minimum, breaking lockstep for the new
		// cohort. Bumping gen also invalidates the survivor's wait
		// predicate explicitly rather than relying on the members check.
		g.waiting = 0
		g.minNow = maxInt64
		g.gen++
		g.cond.Broadcast()
	} else if g.waiting >= g.members {
		g.advanceLocked()
	}
	g.mu.Unlock()
}

// sync blocks until the member's clock is inside the window. A blocked
// member registers exactly once per window generation: the advance
// consumes every registration (waiting is reset), so a member that was
// signalled but not yet rescheduled cannot be double-counted toward the
// next advance — the bug that would otherwise let one hot goroutine
// march the window forward alone on a small host.
func (g *timeGate) sync(now int64) {
	g.mu.Lock()
	for now >= g.window && g.members > 1 {
		if now < g.minNow {
			g.minNow = now
		}
		g.waiting++
		if g.waiting >= g.members {
			g.advanceLocked()
			continue
		}
		gen := g.gen
		for gen == g.gen && now >= g.window && g.members > 1 {
			g.cond.Wait()
		}
	}
	g.mu.Unlock()
}

// advanceLocked opens the window one quantum past the slowest
// registered member, consumes all registrations, and wakes everyone.
func (g *timeGate) advanceLocked() {
	next := g.minNow + g.quantum
	if next <= g.window {
		next = g.window + g.quantum
	}
	g.window = next
	g.minNow = maxInt64
	g.waiting = 0
	g.gen++
	g.cond.Broadcast()
}
