package dmsim

import (
	"slices"
	"sync"
	"sync/atomic"

	"chime/internal/dmsim/sched"
)

// evLoop is the batch event-loop scheduler (Config.Scheduler ==
// SchedulerEventLoop): the ordering substrate that replaces the
// condvar timeGate for large cohorts.
//
// The gate's contract is preserved — a cohort member may only issue
// verbs while its virtual clock is inside the current window
// [0, window), and the window advances one quantum past the slowest
// member — but the mechanism is event-driven instead of broadcast-
// driven:
//
//   - Parked members sit in a per-lane calendar queue (sched.Calendar)
//     keyed on their virtual clock. A window advance pops exactly one
//     member per lane instead of broadcasting to every member, so the
//     per-window wakeup cost is O(lanes), not O(members) spurious
//     wakeups contending one mutex.
//   - Members are partitioned across lanes by join order. Within a
//     lane, exactly one member runs at a time (a baton handed from the
//     parking member to the next calendar entry), in calendar order —
//     a pure function of virtual clocks. Across lanes, members run in
//     parallel against lane-private NIC shards (nic.go), so the only
//     cross-lane interactions are the quantum-boundary barriers and
//     whatever shared remote memory the workload itself touches.
//   - The window advances when every member is parked (the running
//     count hits zero): the last parker becomes the barrier leader,
//     computes min(parked clocks) + quantum, and seeds each lane's
//     baton. This is the "barrier merge at quantum boundaries" of the
//     parallel-deterministic design.
//
// Determinism: lane assignment (join order), intra-lane execution
// order (calendar pop order), NIC shard state (lane-private) and
// window arithmetic (min over parked clocks) are all pure functions of
// the simulation's virtual-time history, so a cohort whose members
// touch disjoint remote lines replays bit-identically for the same
// seed regardless of GOMAXPROCS or host scheduling. Members that race
// on the same remote line across lanes within one window keep exactly
// the relaxed semantics real hardware (and the gate) gives them.
type evLoop struct {
	quantum int64
	nlanes  int

	// mu serializes membership transitions (join/leave/rejoin) and
	// barrier advances against each other.
	mu    sync.Mutex
	seq   int32 // next dense cohort slot, guarded by mu
	lanes []evLane

	// window is the exclusive upper bound of runnable virtual time. It
	// is written only by a barrier leader while every member is parked;
	// running members read it through the happens-before edge of the
	// token channel that woke them.
	window int64

	// running counts members not currently parked. The member that
	// decrements it to zero leads the next barrier.
	running atomic.Int64
	members atomic.Int64
}

// evLane is one execution lane: a calendar of parked members, the
// slot→client table, and the pending list. lane.mu guards all three;
// it is uncontended in steady state (one running member per lane) and
// only sees real contention during the initial descent, before the
// first barrier establishes the baton discipline.
//
// pending exists for determinism: calendar chains pop in push order,
// so push order must be a pure function of virtual-time history. The
// baton holder's parks are sequential within the lane and may push
// directly, but members parking concurrently (the initial descent
// after join, rejoins after Resume) would file in host-scheduling
// order. Those parks are staged here instead, and the next barrier
// leader flushes them into the calendar in slot order.
type evLane struct {
	mu      sync.Mutex
	cal     *sched.Calendar
	clients []*Client
	pending []int32
	_       [64]byte // keep lanes off each other's cache lines
}

func newEvLoop(quantum int64, nlanes int) *evLoop {
	if quantum < 1 {
		quantum = 1
	}
	if nlanes < 1 {
		nlanes = 1
	}
	l := &evLoop{quantum: quantum, nlanes: nlanes, lanes: make([]evLane, nlanes)}
	for i := range l.lanes {
		l.lanes[i].cal = sched.NewCalendar(quantum, 64)
	}
	return l
}

// join enrolls a client. First-time members get a dense slot (join
// order is the deterministic lane assignment); rejoining members keep
// theirs. The member counts as running until it first parks, and its
// first sync parks unconditionally so no verb is issued before the
// first barrier establishes deterministic lane order.
//
//chime:coldalloc first-time enrollment allocates the park channel and lane slot
func (l *evLoop) join(c *Client) {
	l.mu.Lock()
	if c.evSlot < 0 {
		c.evSlot = l.seq
		l.seq++
		c.evLane = c.evSlot % int32(l.nlanes)
		c.evLocal = c.evSlot / int32(l.nlanes)
		if c.evPark == nil {
			c.evPark = make(chan struct{}, 1)
		}
		lane := &l.lanes[c.evLane]
		lane.mu.Lock()
		lane.cal.Grow(int(c.evLocal) + 1)
		for int(c.evLocal) >= len(lane.clients) {
			lane.clients = append(lane.clients, nil)
		}
		lane.clients[c.evLocal] = c
		lane.mu.Unlock()
	}
	c.evBaton = false
	c.evMustPark = true
	l.members.Add(1)
	l.running.Add(1)
	l.mu.Unlock()
}

// leave withdraws the (currently running) caller: hand the lane baton
// to the next parked member of the window, and if the caller was the
// last runner, lead a barrier so the parked survivors keep advancing.
func (l *evLoop) leave(c *Client) {
	l.mu.Lock()
	l.members.Add(-1)
	lane := &l.lanes[c.evLane]
	lane.mu.Lock()
	if c.evBaton {
		c.evBaton = false
		if s := lane.cal.PopBelow(l.window); s != sched.NoSlot {
			l.grant(lane, s)
		}
	}
	lane.mu.Unlock()
	if l.running.Add(-1) == 0 {
		l.advanceLocked()
	}
	l.mu.Unlock()
}

// sync is the event-loop half of Client.syncGate: park when the clock
// has reached the window edge (or unconditionally on the first sync
// after join/rejoin, so execution order is loop-controlled from the
// first verb).
//
//chime:noalloc
func (l *evLoop) sync(c *Client) {
	if !c.evMustPark && c.now < l.window {
		return
	}
	l.park(c)
}

// park enqueues the caller — the baton holder files straight into the
// calendar and hands the baton on; a batonless parker (initial descent,
// rejoin) is staged on the pending list for the next barrier to file
// deterministically — and blocks until a baton or barrier wakes it. The
// caller returns runnable: its clock is inside the (possibly advanced)
// window.
//
//chime:noalloc
func (l *evLoop) park(c *Client) {
	lane := &l.lanes[c.evLane]
	lane.mu.Lock()
	if c.evBaton {
		lane.cal.Push(c.evLocal, c.now)
		c.evBaton = false
		if s := lane.cal.PopBelow(l.window); s != sched.NoSlot {
			if s == c.evLocal {
				// The calendar handed the baton straight back (possible
				// only for a lagging clock, which files at the scan
				// cursor): keep running without a channel round trip.
				c.evBaton = true
				lane.mu.Unlock()
				return
			}
			l.grant(lane, s)
		}
	} else {
		//lint:allow noalloc pending retains capacity across barriers
		lane.pending = append(lane.pending, c.evLocal)
	}
	lane.mu.Unlock()
	if l.running.Add(-1) == 0 {
		l.mu.Lock()
		if l.running.Load() == 0 {
			l.advanceLocked()
		}
		l.mu.Unlock()
	}
	<-c.evPark
	c.evMustPark = false
}

// grant wakes one parked member: it becomes its lane's runner. The
// running increment happens before the token send so the count can
// never spuriously touch zero while a wake is in flight.
//
//chime:noalloc
func (l *evLoop) grant(lane *evLane, s int32) {
	c := lane.clients[s]
	c.evBaton = true
	l.running.Add(1)
	c.evPark <- struct{}{}
}

// advanceLocked is the barrier: every member is parked (running == 0),
// so the leader has exclusive access to all lane state. Pending parks
// are flushed into the calendars in slot order (the deterministic tie
// break for members that parked concurrently), then the window opens
// one quantum past the slowest parked member — the same arithmetic as
// timeGate.advanceLocked — and exactly one member per lane is woken to
// seed the batons.
//
//chime:noalloc
func (l *evLoop) advanceLocked() {
	min := int64(maxInt64)
	for i := range l.lanes {
		lane := &l.lanes[i]
		if len(lane.pending) > 0 {
			// Slot order is the deterministic tie break; the sort must
			// stay O(n log n) because the first barrier sees the whole
			// lane here (100k-member descents arrive in host order).
			slices.Sort(lane.pending)
			for _, s := range lane.pending {
				lane.cal.Push(s, lane.clients[s].now)
			}
			lane.pending = lane.pending[:0]
		}
		if k := lane.cal.MinKey(); k < min {
			min = k
		}
	}
	if min == maxInt64 {
		return // no parked members (cohort drained)
	}
	next := min + l.quantum
	if next <= l.window {
		next = l.window + l.quantum
	}
	l.window = next
	for i := range l.lanes {
		lane := &l.lanes[i]
		if s := lane.cal.PopBelow(l.window); s != sched.NoSlot {
			l.grant(lane, s)
		}
	}
}
