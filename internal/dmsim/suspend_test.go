package dmsim

import (
	"sync"
	"testing"
)

func TestSuspendResumeFreewheel(t *testing.T) {
	f := MustNewFabric(func() Config { c := DefaultConfig(); c.MNSize = 1 << 20; return c }())
	c := f.NewClient()
	if c.Suspend() {
		t.Fatal("freewheeling client must not report suspension")
	}
	c.Resume(0) // must not panic; client becomes gated
	c.LeaveCohort()
}

func TestSuspendReleasesGate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MNSize = 1 << 20
	f := MustNewFabric(cfg)
	a, b := f.NewClient(), f.NewClient()
	a.JoinCohort()
	b.JoinCohort()

	// b suspends; a must be able to run many windows alone.
	if !b.Suspend() {
		t.Fatal("gated client must suspend")
	}
	buf := make([]byte, 64)
	for i := 0; i < 50; i++ {
		if err := a.Read(GAddr{Off: 64}, buf); err != nil {
			t.Fatal(err)
		}
	}
	aNow := a.Now()
	if aNow < 50*2000 {
		t.Fatalf("a stalled at %dns despite b's suspension", aNow)
	}

	// b resumes far ahead; the window must NOT jump: a continues from
	// its own clock, not from b's.
	b.Resume(aNow + 1_000_000)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := a.Read(GAddr{Off: 64}, buf); err != nil {
				t.Error(err)
			}
		}
		a.LeaveCohort()
	}()
	go func() {
		defer wg.Done()
		if err := b.Read(GAddr{Off: 64}, buf); err != nil {
			t.Error(err)
		}
		b.LeaveCohort()
	}()
	go func() { wg.Wait(); close(done) }()
	<-done
	if b.Now() < aNow+1_000_000 {
		t.Fatalf("b clock %d regressed below resume point", b.Now())
	}
}

func TestFrontierTracksNICBusy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MNSize = 1 << 20
	f := MustNewFabric(cfg)
	if f.Frontier() != 0 {
		t.Fatal("fresh fabric frontier must be 0")
	}
	c := f.NewClient()
	if err := c.Write(GAddr{Off: 64}, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if f.Frontier() <= 0 {
		t.Fatal("frontier must advance with NIC busy time")
	}
	// A later client starts at the frontier.
	c2 := f.NewClient()
	if c2.Now() != f.Frontier() {
		t.Fatalf("new client clock %d, frontier %d", c2.Now(), f.Frontier())
	}
}

func TestWriteBatchStats(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MNSize = 1 << 20
	f := MustNewFabric(cfg)
	c := f.NewClient()
	err := c.WriteBatch(
		[]GAddr{{Off: 64}, {Off: 256}},
		[][]byte{make([]byte, 10), make([]byte, 20)},
	)
	if err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Writes != 2 || s.Trips != 1 || s.BytesWritten != 30 {
		t.Fatalf("batch stats: %+v", s)
	}
	if err := c.WriteBatch(nil, nil); err != nil {
		t.Fatal("empty batch must be a no-op")
	}
	if err := c.WriteBatch([]GAddr{{Off: 0}}, [][]byte{{1}, {2}}); err == nil {
		t.Fatal("mismatched batch must error")
	}
}

func TestChunkAllocatorOversized(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MNSize = 64 << 20
	cfg.ChunkBytes = 1 << 20
	f := MustNewFabric(cfg)
	c := f.NewClient()
	al := NewChunkAllocator(c, 0)
	// Larger than a chunk: dedicated RPC.
	addr, err := al.Alloc(2 << 20)
	if err != nil || addr.IsNil() {
		t.Fatalf("oversized alloc: %v %v", addr, err)
	}
	if _, err := al.Alloc(-1); err == nil {
		t.Fatal("negative alloc must fail")
	}
}
