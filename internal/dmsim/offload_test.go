package dmsim

import (
	"encoding/binary"
	"runtime"
	"sync"
	"testing"
)

// testKVProg is a minimal MN-side program over a fixed-slot KV table:
// `slots` 16-byte slots of [8B key][8B value] at `base`, keys sorted
// ascending, key 0 meaning empty. It exists to exercise the offload
// plumbing, not to model an index. Slot probes use a stack buffer so
// the verb path stays allocation-free.
type testKVProg struct {
	base  GAddr
	slots int
}

const kvSlotBytes = 16

func (p *testKVProg) slot(i int) GAddr { return p.base.Add(uint64(i * kvSlotBytes)) }

func (p *testKVProg) find(ctx *MNCtx, key uint64) (int, OffloadStatus) {
	var b [kvSlotBytes]byte
	for i := 0; i < p.slots; i++ {
		if !ctx.Read(p.slot(i), b[:]) {
			return -1, OffloadCrossMN
		}
		if binary.LittleEndian.Uint64(b[:8]) == key {
			return i, OffloadOK
		}
	}
	return -1, OffloadNotFound
}

func (p *testKVProg) Search(ctx *MNCtx, key, arg uint64) OffloadStatus {
	var b [kvSlotBytes]byte
	for i := 0; i < p.slots; i++ {
		if !ctx.Read(p.slot(i), b[:]) {
			return OffloadCrossMN
		}
		if binary.LittleEndian.Uint64(b[:8]) == key {
			if !ctx.Emit(b[8:]) {
				return OffloadRetry
			}
			return OffloadOK
		}
	}
	return OffloadNotFound
}

func (p *testKVProg) Update(ctx *MNCtx, key, arg uint64, val []byte) OffloadStatus {
	if len(val) != 8 {
		return OffloadUnsupported
	}
	i, st := p.find(ctx, key)
	if st != OffloadOK {
		return st
	}
	if !ctx.Write(p.slot(i).Add(8), val) {
		return OffloadCrossMN
	}
	return OffloadOK
}

func (p *testKVProg) Scan(ctx *MNCtx, start, arg uint64, limit int) OffloadStatus {
	var b [kvSlotBytes]byte
	emitted := 0
	for i := 0; i < p.slots && emitted < limit; i++ {
		if !ctx.Read(p.slot(i), b[:]) {
			return OffloadCrossMN
		}
		k := binary.LittleEndian.Uint64(b[:8])
		if k == 0 || k < start {
			continue
		}
		if !ctx.Emit(b[:]) {
			return OffloadOK // buffer full: return what fits
		}
		emitted++
	}
	return OffloadOK
}

// crossMNProg always reaches off its MN: every verdict is a fallback.
type crossMNProg struct{}

func (crossMNProg) Search(ctx *MNCtx, key, arg uint64) OffloadStatus {
	var b [8]byte
	if !ctx.Read(GAddr{MN: uint8(ctx.MN() + 1)}, b[:]) {
		return OffloadCrossMN
	}
	return OffloadOK
}
func (crossMNProg) Update(ctx *MNCtx, key, arg uint64, val []byte) OffloadStatus {
	return OffloadUnsupported
}
func (crossMNProg) Scan(ctx *MNCtx, start, arg uint64, limit int) OffloadStatus {
	return OffloadUnsupported
}

// buildKVTable writes `n` sorted entries (key 100i+100 -> value
// 1000i+1000) through a freewheeling client and returns the program.
func buildKVTable(t testing.TB, f *Fabric, n int) *testKVProg {
	t.Helper()
	c := f.NewClient()
	p := &testKVProg{base: GAddr{Off: 4096}, slots: n}
	var b [kvSlotBytes]byte
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(b[:8], uint64(100*(i+1)))
		binary.LittleEndian.PutUint64(b[8:], uint64(1000*(i+1)))
		if err := c.Write(p.slot(i), b[:]); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func TestExecOffloadMetering(t *testing.T) {
	f := MustNewFabric(testConfig())
	dst := make([]byte, 64)
	n, touched, err := f.ExecOffload(0, dst, func(ctx *MNCtx) {
		buf := make([]byte, 64)
		if !ctx.Read(GAddr{Off: 128}, buf) {
			t.Error("local read refused")
		}
		if !ctx.Write(GAddr{Off: 256}, buf[:32]) {
			t.Error("local write refused")
		}
		if _, _, ok := ctx.CAS(GAddr{Off: 512}, 0, 7); !ok {
			t.Error("local CAS refused")
		}
		if !ctx.Emit(buf[:8]) {
			t.Error("emit refused")
		}
		if ctx.Read(GAddr{MN: 3}, buf) {
			t.Error("cross-MN read must refuse")
		}
		if ctx.Write(GAddr{Off: uint64(testConfig().MNSize) - 4}, buf) {
			t.Error("out-of-bounds write must refuse")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Errorf("emitted %d bytes, want 8", n)
	}
	// 64 read + 32 written + 8 CAS + 8 emitted; refused accesses free.
	if touched != 112 {
		t.Errorf("touched %d bytes, want 112", touched)
	}
	if _, _, err := f.ExecOffload(9, dst, func(*MNCtx) {}); err == nil {
		t.Error("ExecOffload on absent MN must error")
	}
}

func TestOffloadSearchRoundTrip(t *testing.T) {
	f := MustNewFabric(testConfig())
	p := buildKVTable(t, f, 8)
	id := f.RegisterMNProgram(p)

	c := f.NewClient()
	start := c.Now()
	dst := make([]byte, 8)
	n, st, err := c.LeafSearchAtMN(id, 0, 300, 0, dst)
	if err != nil {
		t.Fatal(err)
	}
	if st != OffloadOK || n != 8 {
		t.Fatalf("search: n=%d st=%v, want 8, ok", n, st)
	}
	if got := binary.LittleEndian.Uint64(dst); got != 3000 {
		t.Fatalf("search value %d, want 3000", got)
	}
	// One round trip plus MN CPU service: strictly more than a bare RTT,
	// and exactly one Trip.
	cfg := testConfig()
	elapsed := c.Now() - start
	if min := cfg.BaseRTT.Nanoseconds(); elapsed <= min {
		t.Errorf("offload cost %dns, want > bare RTT %dns", elapsed, min)
	}
	s := c.Stats()
	if s.Trips != 1 || s.Offloads != 1 || s.RPCs != 1 {
		t.Errorf("stats %+v: want exactly one trip/offload/rpc", s)
	}
	if s.BytesRead != offHeaderBytes+8 || s.BytesWritten != offHeaderBytes {
		t.Errorf("bytes %d/%d, want resp %d req %d",
			s.BytesRead, s.BytesWritten, offHeaderBytes+8, offHeaderBytes)
	}

	if _, st, err = c.LeafSearchAtMN(id, 0, 12345, 0, dst); err != nil || st != OffloadNotFound {
		t.Fatalf("missing key: st=%v err=%v, want notfound", st, err)
	}
	if st.Fallback() {
		t.Error("NotFound must be definitive, not a fallback")
	}

	mn := f.MNCPUStatsFor(0)
	if mn.Ops != 2 || mn.Fallbacks != 0 {
		t.Errorf("MN CPU stats %+v, want 2 ops, 0 fallbacks", mn)
	}
	if mn.BusyNs <= 0 {
		t.Error("MN CPU consumed no service time")
	}
}

func TestOffloadUpdateAndScan(t *testing.T) {
	f := MustNewFabric(testConfig())
	p := buildKVTable(t, f, 8)
	id := f.RegisterMNProgram(p)
	c := f.NewClient()

	val := make([]byte, 8)
	binary.LittleEndian.PutUint64(val, 777)
	st, err := c.CompareAndCASAtMN(id, 0, 200, 0, val)
	if err != nil || st != OffloadOK {
		t.Fatalf("update: st=%v err=%v", st, err)
	}
	// Visible to a one-sided READ of the same slot.
	raw := make([]byte, 8)
	if err := c.Read(p.slot(1).Add(8), raw); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(raw); got != 777 {
		t.Fatalf("one-sided read after offloaded update: %d, want 777", got)
	}
	if st, err = c.CompareAndCASAtMN(id, 0, 4242, 0, val); err != nil || st != OffloadNotFound {
		t.Fatalf("update of absent key: st=%v err=%v", st, err)
	}

	// Scan from key 300: entries 300..600, limited to 3 records.
	dst := make([]byte, 1024)
	n, st, err := c.ScatterGatherScan(id, 0, 300, 0, 3, dst)
	if err != nil || st != OffloadOK {
		t.Fatalf("scan: st=%v err=%v", st, err)
	}
	if n != 3*kvSlotBytes {
		t.Fatalf("scan emitted %d bytes, want %d", n, 3*kvSlotBytes)
	}
	for i := 0; i < 3; i++ {
		rec := dst[i*kvSlotBytes:]
		k := binary.LittleEndian.Uint64(rec[:8])
		if want := uint64(300 + 100*i); k != want {
			t.Errorf("scan record %d key %d, want %d", i, k, want)
		}
	}
}

func TestOffloadFallbackCounted(t *testing.T) {
	f := MustNewFabric(testConfig())
	id := f.RegisterMNProgram(crossMNProg{})
	c := f.NewClient()
	_, st, err := c.LeafSearchAtMN(id, 0, 1, 0, make([]byte, 8))
	if err != nil {
		t.Fatal(err)
	}
	if st != OffloadCrossMN || !st.Fallback() {
		t.Fatalf("st=%v Fallback=%v, want crossmn fallback", st, st.Fallback())
	}
	if st, err = c.CompareAndCASAtMN(id, 0, 1, 0, make([]byte, 8)); err != nil || st != OffloadUnsupported {
		t.Fatalf("unsupported update: st=%v err=%v", st, err)
	}
	mn := f.MNCPUStatsFor(0)
	if mn.Ops != 2 || mn.Fallbacks != 2 {
		t.Errorf("MN CPU stats %+v, want 2 ops both fallbacks", mn)
	}
}

func TestOffloadUnregisteredProgram(t *testing.T) {
	f := MustNewFabric(testConfig())
	c := f.NewClient()
	if _, _, err := c.LeafSearchAtMN(0, 0, 1, 0, nil); err == nil {
		t.Error("program id 0 must error")
	}
	if _, _, err := c.LeafSearchAtMN(7, 0, 1, 0, nil); err == nil {
		t.Error("unknown program id must error")
	}
	id := f.RegisterMNProgram(&testKVProg{base: GAddr{Off: 4096}, slots: 1})
	if _, _, err := c.LeafSearchAtMN(id, 5, 1, 0, nil); err == nil {
		t.Error("absent MN must error")
	}
}

// TestOffloadQueueing pins the bounded-CPU property: offloads posted
// faster than the MN cores drain them must queue, and the queueing is
// visible in both the stats and the fabric frontier.
func TestOffloadQueueing(t *testing.T) {
	cfg := testConfig()
	p := &testKVProg{base: GAddr{Off: 4096}, slots: 1}
	f := MustNewFabric(cfg)
	buildKVTable(t, f, 1)
	id := f.RegisterMNProgram(p)
	c := f.NewClient()

	const depth = 32
	hs := make([]*Completion, depth)
	dsts := make([][]byte, depth)
	for i := range hs {
		dsts[i] = make([]byte, 8)
		h, err := c.PostLeafSearchAtMN(id, 0, 100, 0, dsts[i])
		if err != nil {
			t.Fatal(err)
		}
		hs[i] = h
	}
	for _, h := range hs {
		c.Poll(h)
		if n, st := h.OffloadResult(); st != OffloadOK || n != 8 {
			t.Fatalf("pipelined search: n=%d st=%v", n, st)
		}
		c.Release(h)
	}
	mn := f.MNCPUStatsFor(0)
	if mn.Ops != depth {
		t.Fatalf("MN ops %d, want %d", mn.Ops, depth)
	}
	// Posting every issueNs (200 ns) into >=600 ns service must queue.
	if mn.QueuedNs <= 0 {
		t.Error("back-to-back offloads did not queue at the MN CPU")
	}
	if fr := f.Frontier(); fr < mn.BusyNs {
		t.Errorf("frontier %d < MN CPU busy %d: CPU horizon not in frontier", fr, mn.BusyNs)
	}
	if tot := f.TotalMNCPUStats(); tot != mn {
		t.Errorf("TotalMNCPUStats %+v != per-MN %+v with one MN", tot, mn)
	}
}

// offloadFingerprint runs a gated cohort mixing one-sided verbs with
// all three offload verbs and fingerprints everything observable.
type offloadFingerprint struct {
	clocks []int64
	stats  []ClientStats
	nic    NICStats
	mncpu  MNCPUStats
}

func runOffloadCohort(t *testing.T, cfg Config, clients, ops int) offloadFingerprint {
	t.Helper()
	f := MustNewFabric(cfg)
	p := buildKVTable(t, f, 16)
	id := f.RegisterMNProgram(p)
	cls := make([]*Client, clients)
	for i := range cls {
		cls[i] = f.NewClient()
		cls[i].JoinCohort()
	}
	var wg sync.WaitGroup
	for i := range cls {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := cls[i]
			defer c.LeaveCohort()
			addr := GAddr{Off: uint64(64 * (i + 1))}
			buf := make([]byte, 64)
			dst := make([]byte, 256)
			val := make([]byte, 8)
			for j := 0; j < ops; j++ {
				key := uint64(100 * ((i+j)%16 + 1))
				var err error
				switch (i + j) % 5 {
				case 0:
					err = c.Read(addr, buf)
				case 1:
					err = c.Write(addr, buf)
				case 2:
					_, _, err = c.LeafSearchAtMN(id, 0, key, 0, dst)
				case 3:
					binary.LittleEndian.PutUint64(val, uint64(i*ops+j))
					_, err = c.CompareAndCASAtMN(id, 0, key, 0, val)
				default:
					_, _, err = c.ScatterGatherScan(id, 0, key, 0, 4, dst)
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	fp := offloadFingerprint{nic: f.TotalNICStats(), mncpu: f.TotalMNCPUStats()}
	for _, c := range cls {
		fp.clocks = append(fp.clocks, c.Now())
		fp.stats = append(fp.stats, c.Stats())
	}
	return fp
}

func sameOffloadFP(t *testing.T, label string, a, b offloadFingerprint) {
	t.Helper()
	if a.nic != b.nic {
		t.Fatalf("%s: NIC stats %+v != %+v", label, a.nic, b.nic)
	}
	if a.mncpu != b.mncpu {
		t.Fatalf("%s: MN CPU stats %+v != %+v", label, a.mncpu, b.mncpu)
	}
	for i := range a.clocks {
		if a.clocks[i] != b.clocks[i] {
			t.Fatalf("%s: client %d clock %d != %d", label, i, a.clocks[i], b.clocks[i])
		}
		if a.stats[i] != b.stats[i] {
			t.Fatalf("%s: client %d stats %+v != %+v", label, i, a.stats[i], b.stats[i])
		}
	}
}

// TestOffloadDeterministicAcrossSchedulers pins the tentpole
// determinism claim at the dmsim layer: an offload-heavy cohort remains
// bit-identical across reruns under BOTH schedulers — the condvar gate,
// and the event loop at one and four lanes regardless of GOMAXPROCS.
// (Gate and event loop are each deterministic but not identical to one
// another: they order concurrent verbs within a quantum differently,
// with or without offload.)
func TestOffloadDeterministicAcrossSchedulers(t *testing.T) {
	gate := runOffloadCohort(t, testConfig(), 8, 60)
	sameOffloadFP(t, "gate rerun", gate, runOffloadCohort(t, testConfig(), 8, 60))

	for _, lanes := range []int{1, 4} {
		cfg := evConfig(lanes)
		base := runOffloadCohort(t, cfg, 8, 60)
		for trial := 0; trial < 3; trial++ {
			prev := runtime.GOMAXPROCS(1 + trial)
			got := runOffloadCohort(t, cfg, 8, 60)
			runtime.GOMAXPROCS(prev)
			sameOffloadFP(t, "event-loop rerun", base, got)
		}
	}
}

// TestOffloadRoundTripZeroAllocs extends the PR 6 invariant to the
// offload verb path: steady-state offload issue/poll allocates nothing.
func TestOffloadRoundTripZeroAllocs(t *testing.T) {
	cfg := testConfig()
	cfg.Scheduler = SchedulerEventLoop
	f := MustNewFabric(cfg)
	p := buildKVTable(t, f, 4)
	id := f.RegisterMNProgram(p)
	c := f.NewClient()
	dst := make([]byte, 8)
	val := make([]byte, 8)

	if n := testing.AllocsPerRun(1000, func() {
		if _, st, err := c.LeafSearchAtMN(id, 0, 200, 0, dst); err != nil || st != OffloadOK {
			t.Fatalf("st=%v err=%v", st, err)
		}
	}); n != 0 {
		t.Fatalf("offloaded search allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if st, err := c.CompareAndCASAtMN(id, 0, 200, 0, val); err != nil || st != OffloadOK {
			t.Fatalf("st=%v err=%v", st, err)
		}
	}); n != 0 {
		t.Fatalf("offloaded update allocates %v per op, want 0", n)
	}
}

// BenchmarkOffloadRoundTrip measures the offload verb hot path on the
// event-loop scheduler (the ISSUE 7 satellite guard).
func BenchmarkOffloadRoundTrip(b *testing.B) {
	cfg := DefaultConfig()
	cfg.MNSize = 1 << 20
	cfg.Scheduler = SchedulerEventLoop
	f := MustNewFabric(cfg)
	p := buildKVTable(b, f, 4)
	id := f.RegisterMNProgram(p)
	c := f.NewClient()
	dst := make([]byte, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, st, err := c.LeafSearchAtMN(id, 0, 200, 0, dst); err != nil || st != OffloadOK {
			b.Fatalf("st=%v err=%v", st, err)
		}
	}
}
