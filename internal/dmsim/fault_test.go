package dmsim

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// scriptInjector replays a fixed sequence of decisions (then clean) and
// records every CAS it observes.
type scriptInjector struct {
	mu        sync.Mutex
	decisions []FaultDecision
	seen      []VerbInfo
	cas       []CASInfo
}

func (s *scriptInjector) Decide(v VerbInfo) FaultDecision {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seen = append(s.seen, v)
	if len(s.decisions) == 0 {
		return FaultDecision{}
	}
	d := s.decisions[0]
	s.decisions = s.decisions[1:]
	return d
}

func (s *scriptInjector) ObserveCAS(ci CASInfo) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cas = append(s.cas, ci)
}

func faultTestConfig() Config {
	cfg := DefaultConfig()
	cfg.MNSize = 1 << 20
	return cfg
}

func TestFaultLatencySpike(t *testing.T) {
	const spike = 12_345
	run := func(inj FaultInjector) int64 {
		f := MustNewFabric(faultTestConfig())
		f.SetFaultInjector(inj)
		c := f.NewClient()
		if err := c.Write(GAddr{Off: 128}, make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
		return c.Now()
	}
	base := run(nil)
	spiked := run(&scriptInjector{decisions: []FaultDecision{{ExtraLatencyNs: spike}}})
	if got := spiked - base; got != spike {
		t.Fatalf("spike delayed completion by %d ns, want %d", got, spike)
	}
}

func TestFaultDropRetriesThenSucceeds(t *testing.T) {
	cfg := faultTestConfig()
	cfg.VerbTimeout = 10 * time.Microsecond
	f := MustNewFabric(cfg)
	inj := &scriptInjector{decisions: []FaultDecision{
		{DropCompletion: true},
		{DropCompletion: true},
	}}
	f.SetFaultInjector(inj)
	c := f.NewClient()

	// Baseline clean verb on an identical fabric for the timing delta
	// (a shared fabric would couple the two clients through the NIC).
	ref := MustNewFabric(cfg).NewClient()
	if err := ref.Read(GAddr{Off: 128}, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}

	if err := c.Read(GAddr{Off: 128}, make([]byte, 64)); err != nil {
		t.Fatalf("two drops inside the retry budget must succeed: %v", err)
	}
	if got, want := c.Now()-ref.Now(), 2*cfg.VerbTimeout.Nanoseconds(); got != want {
		t.Fatalf("two dropped completions cost %d ns, want %d", got, want)
	}
	st := f.FaultStats()
	if st.Timeouts != 2 || st.Retries != 2 || st.Failures != 0 || st.Crashes != 0 {
		t.Fatalf("stats = %+v, want 2 timeouts / 2 retries", st)
	}
	// Each retry re-rolled the decision: 3 attempts, distinct sequence
	// numbers, penalty visible in Now.
	if len(inj.seen) != 3 {
		t.Fatalf("injector consulted %d times, want 3", len(inj.seen))
	}
	if inj.seen[1].Seq != inj.seen[0].Seq+1 || inj.seen[2].Now <= inj.seen[1].Now {
		t.Fatalf("retries must advance Seq and Now: %+v", inj.seen)
	}
}

func TestFaultTerminalErrors(t *testing.T) {
	cases := []struct {
		name string
		d    FaultDecision
		want error
	}{
		{"drop", FaultDecision{DropCompletion: true}, ErrTimeout},
		{"nic", FaultDecision{NICUnavailable: true}, ErrNICUnavailable},
		{"mn", FaultDecision{MNDown: true}, ErrMNDown},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := faultTestConfig()
			cfg.MaxVerbRetries = 2
			f := MustNewFabric(cfg)
			// Endless copies of the same decision: exhausts the budget.
			decisions := make([]FaultDecision, 16)
			for i := range decisions {
				decisions[i] = tc.d
			}
			f.SetFaultInjector(&scriptInjector{decisions: decisions})
			c := f.NewClient()
			err := c.Write(GAddr{Off: 128}, make([]byte, 8))
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
			if st := f.FaultStats(); st.Failures != 1 {
				t.Fatalf("stats = %+v, want 1 failure", st)
			}
		})
	}
}

func TestFaultBlackoutWindowRiddenOut(t *testing.T) {
	// An injector that blacks the MN out for a virtual-time window: the
	// retry policy's growing Now rides past the window edge and the verb
	// completes instead of erroring.
	cfg := faultTestConfig()
	cfg.VerbTimeout = 10 * time.Microsecond
	f := MustNewFabric(cfg)
	end := f.Frontier() + 25_000 // < MaxVerbRetries * VerbTimeout
	f.SetFaultInjector(windowInjector{end: end})
	c := f.NewClient()
	if err := c.Read(GAddr{Off: 128}, make([]byte, 64)); err != nil {
		t.Fatalf("short blackout must be ridden out: %v", err)
	}
	if c.Now() <= end {
		t.Fatalf("clock %d must pass the blackout end %d", c.Now(), end)
	}
	if st := f.FaultStats(); st.Retries == 0 || st.Failures != 0 {
		t.Fatalf("stats = %+v, want retries without failures", st)
	}
}

type windowInjector struct{ end int64 }

func (w windowInjector) Decide(v VerbInfo) FaultDecision {
	return FaultDecision{MNDown: v.Now < w.end}
}
func (w windowInjector) ObserveCAS(CASInfo) {}

func TestFaultCrashLatches(t *testing.T) {
	f := MustNewFabric(faultTestConfig())
	f.SetFaultInjector(&scriptInjector{decisions: []FaultDecision{{Crash: true}}})
	c := f.NewClient()
	addr := GAddr{Off: 128}
	if err := f.Poke(addr, []byte{0xaa}); err != nil {
		t.Fatal(err)
	}

	if err := c.Write(addr, []byte{0xbb}); !errors.Is(err, ErrClientCrashed) {
		t.Fatalf("crash verb err = %v", err)
	}
	if !c.Crashed() {
		t.Fatal("client must report crashed")
	}
	// The crash happened before data movement: remote memory untouched.
	got := make([]byte, 1)
	if err := f.Peek(addr, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xaa {
		t.Fatalf("crashed write moved data: byte = %#x", got[0])
	}
	// Every later verb fails the same way, even with the injector gone.
	f.SetFaultInjector(nil)
	if err := c.Read(addr, got); !errors.Is(err, ErrClientCrashed) {
		t.Fatalf("post-crash verb err = %v", err)
	}
	if _, err := c.AllocRPC(0, 64); !errors.Is(err, ErrClientCrashed) {
		t.Fatalf("post-crash RPC err = %v", err)
	}
	if st := f.FaultStats(); st.Crashes != 1 {
		t.Fatalf("stats = %+v, want 1 crash", st)
	}
	// Other clients are unaffected.
	if err := f.NewClient().Read(addr, got); err != nil {
		t.Fatal(err)
	}
}

func TestFaultObserveCASLockAcquire(t *testing.T) {
	f := MustNewFabric(faultTestConfig())
	inj := &scriptInjector{}
	f.SetFaultInjector(inj)
	c := f.NewClient()
	addr := GAddr{Off: 192}

	// Lock-acquire shape: compare just the lock bit, set it.
	if _, ok, err := c.MaskedCAS(addr, 0, 1, 1, ^uint64(0)); err != nil || !ok {
		t.Fatalf("lock CAS: ok=%v err=%v", ok, err)
	}
	// Same shape against a held lock: observed, not an acquire success.
	if _, ok, err := c.MaskedCAS(addr, 0, 1, 1, ^uint64(0)); err != nil || ok {
		t.Fatalf("second lock CAS: ok=%v err=%v", ok, err)
	}
	// Full-mask CAS (growRoot / lease-steal shape): not a lock acquire.
	if _, _, err := c.CAS(addr, 1, 0); err != nil {
		t.Fatal(err)
	}

	if len(inj.cas) != 3 {
		t.Fatalf("observed %d CASes, want 3", len(inj.cas))
	}
	if !inj.cas[0].LockAcquire || !inj.cas[0].Swapped {
		t.Fatalf("first CAS = %+v, want successful lock acquire", inj.cas[0])
	}
	if !inj.cas[1].LockAcquire || inj.cas[1].Swapped {
		t.Fatalf("second CAS = %+v, want failed lock acquire", inj.cas[1])
	}
	if inj.cas[2].LockAcquire {
		t.Fatalf("full-mask CAS misclassified as lock acquire: %+v", inj.cas[2])
	}
}
