package dmsim

import "testing"

// The arithmetic helpers must refuse to manufacture addresses that
// cannot round-trip through an 8-byte packed pointer.
func TestGAddrAddOverflowPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}

	// Regression: offsets used to wrap past 2^56 silently, producing a
	// packed pointer that aliased a different (low) address.
	mustPanic("Add past 2^56", func() {
		GAddr{MN: 1, Off: maxOff}.Add(1)
	})
	mustPanic("Add wraps uint64", func() {
		GAddr{MN: 1, Off: 64}.Add(^uint64(0))
	})
	mustPanic("Pack oversized", func() {
		GAddr{MN: 1, Off: maxOff + 1}.Pack()
	})

	// The boundary itself is fine.
	a := GAddr{MN: 2, Off: maxOff - 8}.Add(8)
	if a.Off != maxOff {
		t.Errorf("Add to boundary: got 0x%x", a.Off)
	}
	if got := UnpackGAddr(a.Pack()); got != a {
		t.Errorf("boundary round trip %v -> %v", a, got)
	}
}
