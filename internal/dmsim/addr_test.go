package dmsim

import "testing"

// The arithmetic helpers must refuse to manufacture addresses that
// cannot round-trip through an 8-byte packed pointer.
func TestGAddrAddOverflowPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}

	// Regression: offsets used to wrap past 2^56 silently, producing a
	// packed pointer that aliased a different (low) address.
	mustPanic("Add past 2^56", func() {
		GAddr{MN: 1, Off: maxOff}.Add(1)
	})
	mustPanic("Add wraps uint64", func() {
		GAddr{MN: 1, Off: 64}.Add(^uint64(0))
	})
	mustPanic("Pack oversized", func() {
		GAddr{MN: 1, Off: maxOff + 1}.Pack()
	})

	// The boundary itself is fine.
	a := GAddr{MN: 2, Off: maxOff - 8}.Add(8)
	if a.Off != maxOff {
		t.Errorf("Add to boundary: got 0x%x", a.Off)
	}
	if got := UnpackGAddr(a.Pack()); got != a {
		t.Errorf("boundary round trip %v -> %v", a, got)
	}
}

// Tagged words reuse Pack's MN byte for an 8-bit tag (super blocks
// store root pointer + level this way), so they carry MN-0 addresses
// only and refuse offsets that cannot round-trip.
func TestPackTagged(t *testing.T) {
	a := GAddr{Off: 0x1234}
	w := PackTagged(a, 7)
	got, tag := UnpackTagged(w)
	if got != a || tag != 7 {
		t.Errorf("round trip: got %v tag %d, want %v tag 7", got, tag, a)
	}

	b := GAddr{Off: maxOff}
	if got, tag := UnpackTagged(PackTagged(b, 255)); got != b || tag != 255 {
		t.Errorf("boundary round trip: got %v tag %d", got, tag)
	}

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("non-zero MN", func() { PackTagged(GAddr{MN: 1, Off: 64}, 0) })
	mustPanic("oversized offset", func() { PackTagged(GAddr{Off: maxOff + 1}, 0) })
}
