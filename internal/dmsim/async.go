package dmsim

import (
	"encoding/binary"
	"fmt"
)

// Asynchronous verbs (post/poll). A real RDMA NIC decouples posting a
// work request from reaping its completion: the CPU rings the doorbell
// and moves on, and several verbs from one QP overlap their round trips
// on the wire. CHIME's artifact exploits exactly this by running
// multiple coroutines per CPU thread; this layer gives the simulator the
// same capability with explicit completion handles.
//
// Virtual-clock rules:
//
//   - Posting charges the NIC immediately (the single-server recurrence
//     runs at post time, so NIC queueing between outstanding verbs of
//     one client — and across clients — is preserved) but advances the
//     issuing client's clock only by IssueOverhead.
//   - Poll advances the client's clock to the verb's completion time
//     (NIC completion + one RTT), never backward. Polling an already
//     overtaken completion costs nothing.
//   - WaitAll is Poll over a set: the clock lands on the latest
//     completion. An empty set is a no-op.
//
// Data movement happens at post time, exactly when the synchronous verbs
// move it: a posted READ snapshots remote memory when posted and a
// posted WRITE lands immediately. Completions carry timing (and CAS
// results), not payloads. This keeps program order between a client's
// own posted verbs trivially intact; cross-client interleavings remain
// as racy as real hardware and must be validated by the layers above
// (version checks), as with the synchronous verbs.
//
// The time-gate contract is unchanged: posting synchronizes with the
// cohort window (a gated client cannot flood the NIC with posts from the
// future), while polling is local and never blocks on the gate. A client
// that Suspend()s with verbs in flight may still Poll them; the clock
// jump is reconciled by Resume exactly as for synchronous waiters.

// Completion is the handle for one posted verb. It is owned by the
// client that posted it and, like the client itself, is not safe for
// concurrent use.
type Completion struct {
	c       *Client
	nicDone int64 // completion time at the NIC (before the return RTT)
	polled  bool

	// CAS / FetchAdd results. Valid once the completion is polled
	// (consuming them earlier is a simulation-order bug, guarded by
	// CASResult).
	prev    uint64
	swapped bool
	isAtom  bool

	// Offload results (offload.go), guarded by OffloadResult the same
	// way.
	offN      int32
	offStatus OffloadStatus
	isOff     bool

	// pooled marks a handle sitting in its client's freelist. Guards
	// double-Release and use-after-release.
	pooled bool

	// Flight-recorder decomposition of this verb's virtual timeline
	// (populated only when the client has a flight attached; zero
	// otherwise). Poll peels the clock jump into these segments — see
	// obs.Flight.ChargeVerb. Reset wholesale by newCompletion.
	ledPenalty  int64
	ledNICQueue int64
	ledNICSvc   int64
	ledMNQueue  int64
	ledMNSvc    int64
}

// recordLedger stashes a served verb's timing decomposition on the
// handle for Poll-time phase attribution: NIC service as recomputed
// from the payload, queueing as the serve recurrence's wait, and the
// fault-gate penalty. Callers only invoke it when a flight is attached.
func (h *Completion) recordLedger(penalty, arrival, nicDone, nicSvc int64) {
	h.ledPenalty = penalty
	h.ledNICSvc = nicSvc
	h.ledNICQueue = nicDone - arrival - nicSvc
}

// newCompletion takes a handle from the client's freelist, or allocates
// one the first few times. Together with Release this makes the
// steady-state post/poll path allocation-free: the freelist grows to
// the client's peak pipeline depth and is then recycled forever.
//
//chime:coldalloc freelist warms to peak pipeline depth, then recycles
func (c *Client) newCompletion() *Completion {
	if n := len(c.free); n > 0 {
		h := c.free[n-1]
		c.free = c.free[:n-1]
		*h = Completion{c: c}
		return h
	}
	return &Completion{c: c}
}

// Release returns a polled completion to its client's freelist for
// reuse. The synchronous verbs (Read, Write, CAS, ...) release their
// handles internally; pipelined callers that keep handles across
// posts may opt in by releasing each handle once they are done with it
// (after Poll and, for atomics, after reading CASResult). Releasing is
// optional — an unreleased handle is simply garbage-collected — but a
// released handle must not be touched again: the next post may recycle
// it. Releasing nil is a no-op; releasing twice, releasing another
// client's handle, or releasing before Poll panics, since each is a
// lifetime bug that would silently corrupt a recycled handle later.
//
//chime:noalloc
func (c *Client) Release(h *Completion) {
	if h == nil {
		return
	}
	if h.c != c {
		panic("dmsim: Release of another client's completion")
	}
	if !h.polled {
		panic("dmsim: Release before Poll")
	}
	if h.pooled {
		panic("dmsim: double Release of a completion")
	}
	h.pooled = true
	//lint:allow noalloc freelist retains capacity after warm-up
	c.free = append(c.free, h)
}

// Done reports whether the completion has been polled.
func (h *Completion) Done() bool { return h.polled }

// CASResult returns the previous word and swap outcome of a posted
// atomic. It panics when the completion has not been polled yet or did
// not come from PostCAS/PostMaskedCAS/PostFetchAdd — consuming a result
// before its virtual completion would let simulated code act on data it
// cannot have yet.
func (h *Completion) CASResult() (uint64, bool) {
	if !h.polled {
		panic("dmsim: CASResult before Poll")
	}
	if !h.isAtom {
		panic("dmsim: CASResult on a non-atomic completion")
	}
	return h.prev, h.swapped
}

// post charges issue overhead, tracks in-flight depth, and wraps the NIC
// completion time.
//
//chime:noalloc
func (c *Client) post(nicDone int64) *Completion {
	c.now += c.issueNs
	c.fl.ChargeActive(c.issueNs)
	c.inflight++
	if c.inflight > c.stats.MaxInflight {
		c.stats.MaxInflight = c.inflight
	}
	c.stats.Posted++
	h := c.newCompletion()
	h.nicDone = nicDone
	return h
}

// payloads returns the client's reusable batch-payload scratch slice,
// sized to n. One slice per client suffices: batches never nest, and
// serveBatch consumes the slice before returning.
//
//chime:coldalloc scratch grows once to peak batch size, then is reused
func (c *Client) payloads(n int) []int {
	if cap(c.payloadScratch) < n {
		c.payloadScratch = make([]int, n)
	}
	return c.payloadScratch[:n]
}

// Poll reaps one completion: the client's clock advances to the verb's
// completion time (never backward) and the handle is marked done.
// Polling twice is harmless. Returns the client's clock after the poll.
//
//chime:noalloc
func (c *Client) Poll(h *Completion) int64 {
	if h == nil || h.polled {
		return c.now
	}
	if h.c != c {
		panic("dmsim: Poll on another client's completion")
	}
	h.polled = true
	c.inflight--
	if t := h.nicDone + c.rttNs; t > c.now {
		if c.fl != nil {
			c.fl.ChargeVerb(t-c.now, h.ledPenalty, h.ledNICQueue, h.ledNICSvc,
				h.ledMNQueue, h.ledMNSvc, c.rttNs)
		}
		c.now = t
	}
	return c.now
}

// WaitAll reaps every completion in the set; the clock lands on the
// latest of them. An empty or all-nil set is a no-op.
func (c *Client) WaitAll(hs ...*Completion) int64 {
	for _, h := range hs {
		c.Poll(h)
	}
	return c.now
}

// Inflight returns the number of posted-but-unpolled verbs.
func (c *Client) Inflight() int { return int(c.inflight) }

// PostRead posts a one-sided READ and returns immediately. buf is
// filled at post time (see the package comment on data movement); the
// completion carries the verb's timing.
//
//chime:noalloc
func (c *Client) PostRead(a GAddr, buf []byte) (*Completion, error) {
	c.syncGate()
	mn, err := c.f.checkRange(a, len(buf))
	if err != nil {
		return nil, err
	}
	penalty, err := c.faultGate(VerbRead, int(a.MN))
	if err != nil {
		return nil, err
	}
	mn.copyOut(a.Off, buf)

	arrival := c.now + c.issueNs + penalty
	done := mn.nic.serve(c.shard(), kindRead, arrival, len(buf))

	c.stats.Reads++
	c.stats.Trips++
	c.stats.BytesRead += int64(len(buf))
	h := c.post(done)
	if c.fl != nil {
		h.recordLedger(penalty, arrival, done, mn.nic.serviceNs(len(buf)))
	}
	return h, nil
}

// PostReadBatch posts a doorbell batch of READs (one round trip, every
// segment serviced back-to-back, all on one MN) and returns immediately.
//
//chime:noalloc
func (c *Client) PostReadBatch(addrs []GAddr, bufs [][]byte) (*Completion, error) {
	c.syncGate()
	if len(addrs) != len(bufs) {
		//lint:allow noalloc batch-validation error path, never taken by correct callers
		return nil, fmt.Errorf("dmsim: PostReadBatch got %d addrs, %d bufs", len(addrs), len(bufs))
	}
	if len(addrs) == 0 {
		// A degenerate batch completes instantly: nothing was posted.
		h := c.newCompletion()
		h.nicDone = c.now - c.rttNs
		h.polled = true
		return h, nil
	}
	mn0 := addrs[0].MN
	penalty, err := c.faultGate(VerbRead, int(mn0))
	if err != nil {
		return nil, err
	}
	payloads := c.payloads(len(addrs))
	var total int64
	for i, a := range addrs {
		if a.MN != mn0 {
			//lint:allow noalloc batch-validation error path, never taken by correct callers
			return nil, fmt.Errorf("dmsim: PostReadBatch spans MNs %d and %d", mn0, a.MN)
		}
		mn, err := c.f.checkRange(a, len(bufs[i]))
		if err != nil {
			return nil, err
		}
		mn.copyOut(a.Off, bufs[i])
		payloads[i] = len(bufs[i])
		total += int64(len(bufs[i]))
	}
	mn := c.f.mns[mn0]
	arrival := c.now + c.issueNs + penalty
	done := mn.nic.serveBatch(c.shard(), kindRead, arrival, payloads)

	c.stats.Reads += int64(len(addrs))
	c.stats.Trips++
	c.stats.BytesRead += total
	h := c.post(done)
	if c.fl != nil {
		h.recordLedger(penalty, arrival, done, batchServiceNs(mn.nic, payloads))
	}
	return h, nil
}

// batchServiceNs recomputes a doorbell batch's total NIC service time
// for the flight ledger (the hot path stages no per-segment slice).
//
//chime:noalloc
func batchServiceNs(n *nic, payloads []int) int64 {
	var svc int64
	for _, p := range payloads {
		svc += n.serviceNs(p)
	}
	return svc
}

// PostWrite posts a one-sided WRITE; data lands in remote memory at post
// time, the completion carries the verb's timing.
//
//chime:noalloc
func (c *Client) PostWrite(a GAddr, data []byte) (*Completion, error) {
	c.syncGate()
	mn, err := c.f.checkRange(a, len(data))
	if err != nil {
		return nil, err
	}
	penalty, err := c.faultGate(VerbWrite, int(a.MN))
	if err != nil {
		return nil, err
	}
	mn.copyIn(a.Off, data)

	arrival := c.now + c.issueNs + penalty
	done := mn.nic.serve(c.shard(), kindWrite, arrival, len(data))
	if mn.ps != nil {
		// Write-behind durability: the log append delays only this
		// verb's ack (the NIC stays free for others).
		done += mn.ps.logWrite(a.Off, data)
	}

	c.stats.Writes++
	c.stats.Trips++
	c.stats.BytesWritten += int64(len(data))
	h := c.post(done)
	if c.fl != nil {
		h.recordLedger(penalty, arrival, done, mn.nic.serviceNs(len(data)))
	}
	return h, nil
}

// PostWriteBatch posts a doorbell batch of WRITEs (one round trip, all
// on one MN) and returns immediately.
//
//chime:noalloc
func (c *Client) PostWriteBatch(addrs []GAddr, datas [][]byte) (*Completion, error) {
	c.syncGate()
	if len(addrs) != len(datas) {
		//lint:allow noalloc batch-validation error path, never taken by correct callers
		return nil, fmt.Errorf("dmsim: PostWriteBatch got %d addrs, %d bufs", len(addrs), len(datas))
	}
	if len(addrs) == 0 {
		h := c.newCompletion()
		h.nicDone = c.now - c.rttNs
		h.polled = true
		return h, nil
	}
	mn0 := addrs[0].MN
	penalty, err := c.faultGate(VerbWrite, int(mn0))
	if err != nil {
		return nil, err
	}
	payloads := c.payloads(len(addrs))
	var total int64
	for i, a := range addrs {
		if a.MN != mn0 {
			//lint:allow noalloc batch-validation error path, never taken by correct callers
			return nil, fmt.Errorf("dmsim: PostWriteBatch spans MNs %d and %d", mn0, a.MN)
		}
		mn, err := c.f.checkRange(a, len(datas[i]))
		if err != nil {
			return nil, err
		}
		mn.copyIn(a.Off, datas[i])
		payloads[i] = len(datas[i])
		total += int64(len(datas[i]))
	}
	mn := c.f.mns[mn0]
	arrival := c.now + c.issueNs + penalty
	done := mn.nic.serveBatch(c.shard(), kindWrite, arrival, payloads)
	if mn.ps != nil {
		for i, a := range addrs {
			done += mn.ps.logWrite(a.Off, datas[i])
		}
	}

	c.stats.Writes += int64(len(addrs))
	c.stats.Trips++
	c.stats.BytesWritten += total
	h := c.post(done)
	if c.fl != nil {
		h.recordLedger(penalty, arrival, done, batchServiceNs(mn.nic, payloads))
	}
	return h, nil
}

// PostCAS posts an 8-byte compare-and-swap. The atomic applies at post
// time; read the outcome with CASResult after polling.
//
//chime:noalloc
func (c *Client) PostCAS(a GAddr, old, new uint64) (*Completion, error) {
	return c.PostMaskedCAS(a, old, new, ^uint64(0), ^uint64(0))
}

// PostMaskedCAS posts the RDMA extended masked atomic (§4.2.1).
//
//chime:noalloc
func (c *Client) PostMaskedCAS(a GAddr, cmp, swap, cmpMask, swapMask uint64) (*Completion, error) {
	c.syncGate()
	mn, err := c.f.checkRange(a, 8)
	if err != nil {
		return nil, err
	}
	penalty, err := c.faultGate(VerbAtomic, int(a.MN))
	if err != nil {
		return nil, err
	}
	var persistNs int64
	lk := mn.casLock(a.Off)
	lk.Lock()
	word := mn.mem[a.Off : a.Off+8]
	prev := binary.LittleEndian.Uint64(word)
	ok := prev&cmpMask == cmp&cmpMask
	if ok {
		next := (prev &^ swapMask) | (swap & swapMask)
		binary.LittleEndian.PutUint64(word, next)
		if mn.ps != nil {
			// Logged under the stripe lock so competing atomics on one
			// word (lock handoffs) replay in their serialization order.
			persistNs = mn.ps.logWord(a.Off, next)
		}
	}
	lk.Unlock()
	c.observeCAS(a, ok, cmpMask, swap)

	arrival := c.now + c.issueNs + penalty
	done := mn.nic.serve(c.shard(), kindAtomic, arrival, 8) + persistNs

	c.stats.Atomics++
	c.stats.Trips++
	c.stats.BytesRead += 8
	c.stats.BytesWritten += 8
	h := c.post(done)
	h.prev, h.swapped, h.isAtom = prev, ok, true
	if c.fl != nil {
		h.recordLedger(penalty, arrival, done, mn.nic.serviceNs(8))
	}
	return h, nil
}

// PostFetchAdd posts an 8-byte FETCH_AND_ADD; the previous value is
// available via CASResult (swap outcome always true) after polling.
//
//chime:noalloc
func (c *Client) PostFetchAdd(a GAddr, delta uint64) (*Completion, error) {
	c.syncGate()
	mn, err := c.f.checkRange(a, 8)
	if err != nil {
		return nil, err
	}
	penalty, err := c.faultGate(VerbAtomic, int(a.MN))
	if err != nil {
		return nil, err
	}
	var persistNs int64
	lk := mn.casLock(a.Off)
	lk.Lock()
	word := mn.mem[a.Off : a.Off+8]
	prev := binary.LittleEndian.Uint64(word)
	binary.LittleEndian.PutUint64(word, prev+delta)
	if mn.ps != nil {
		persistNs = mn.ps.logWord(a.Off, prev+delta)
	}
	lk.Unlock()

	arrival := c.now + c.issueNs + penalty
	done := mn.nic.serve(c.shard(), kindAtomic, arrival, 8) + persistNs

	c.stats.Atomics++
	c.stats.Trips++
	c.stats.BytesRead += 8
	c.stats.BytesWritten += 8
	h := c.post(done)
	h.prev, h.swapped, h.isAtom = prev, true, true
	if c.fl != nil {
		h.recordLedger(penalty, arrival, done, mn.nic.serviceNs(8))
	}
	return h, nil
}
