package dmsim

import (
	"fmt"

	"chime/internal/obs"
)

// ChunkSize is the default unit of memory handed out by the MN-side
// allocation RPC, matching the 16 MB chunks CHIME allocates to each
// client (§4.2.2). Override per fabric with Config.ChunkBytes.
const ChunkSize = 16 << 20

// AllocRPC asks one MN's (weak) CPU to carve size bytes out of its
// region and returns the base address. It models a two-sided RPC: the
// client pays a round trip plus the MN CPU service time, which is far
// more expensive than a one-sided verb — which is why CHIME amortizes it
// over 16 MB chunks.
func (c *Client) AllocRPC(mnIdx int, size int) (GAddr, error) {
	c.syncGate()
	if mnIdx < 0 || mnIdx >= len(c.f.mns) {
		return NilGAddr, fmt.Errorf("dmsim: AllocRPC on unknown MN %d", mnIdx)
	}
	if size <= 0 {
		return NilGAddr, fmt.Errorf("dmsim: AllocRPC size %d", size)
	}
	penalty, err := c.faultGate(VerbRPC, mnIdx)
	if err != nil {
		return NilGAddr, err
	}
	mn := c.f.mns[mnIdx]

	mn.allocMu.Lock()
	// Keep allocations 64-byte aligned so node headers sit at cache-line
	// starts, as the version layout assumes.
	off := (mn.allocOff + 63) &^ 63
	if off+uint64(size) > uint64(len(mn.mem)) {
		mn.allocMu.Unlock()
		return NilGAddr, fmt.Errorf("dmsim: MN %d out of memory (%d used of %d, want %d)",
			mnIdx, off, len(mn.mem), size)
	}
	mn.allocOff = off + uint64(size)
	watermark := mn.allocOff
	mn.allocMu.Unlock()
	var persistNs int64
	if mn.ps != nil {
		persistNs = mn.ps.logAlloc(watermark)
	}

	arrival := c.now + c.issueNs + penalty
	done := mn.nic.serve(c.shard(), kindRPC, arrival, 64) + persistNs
	if c.fl.Recording() {
		// The sync RPC advances the clock by exactly
		// issue+penalty+queue+service+rpc+rtt; charge each segment
		// directly (no pipelining to overlap with, unlike Poll's peel).
		svc := mn.nic.serviceNs(64)
		c.fl.Charge(obs.PhaseFaultRetry, penalty)
		c.fl.Charge(obs.PhaseNICQueue, done-arrival-svc)
		c.fl.Charge(obs.PhaseNICService, svc)
		c.fl.Charge(obs.PhaseMNService, c.rpcNs)
		c.fl.ChargeActive(c.issueNs + c.rttNs)
	}
	c.finish(done + c.rpcNs)

	c.stats.RPCs++
	c.stats.Trips++
	return GAddr{MN: uint8(mnIdx), Off: off}, nil
}

// UsedBytes reports how much of one MN's region has been allocated.
func (f *Fabric) UsedBytes(mnIdx int) uint64 {
	mn := f.mns[mnIdx]
	mn.allocMu.Lock()
	defer mn.allocMu.Unlock()
	return mn.allocOff
}

// ChunkAllocator is the client-side sub-allocator: it requests chunk
// regions via AllocRPC and bump-allocates nodes out of them, spreading
// successive chunks across MNs round-robin. Not safe for concurrent use
// (each client owns one).
type ChunkAllocator struct {
	c      *Client
	nextMN int
	chunk  int

	cur    GAddr
	remain int
}

// NewChunkAllocator builds an allocator for the client, starting chunk
// placement at the given MN and using the fabric's configured chunk
// size.
func NewChunkAllocator(c *Client, startMN int) *ChunkAllocator {
	chunk := c.f.cfg.ChunkBytes
	if chunk <= 0 {
		chunk = ChunkSize
	}
	return &ChunkAllocator{c: c, nextMN: startMN % c.f.MNs(), chunk: chunk}
}

// Alloc returns a 64-byte-aligned region of the requested size, fetching
// a fresh chunk over RPC when the current one is exhausted.
func (a *ChunkAllocator) Alloc(size int) (GAddr, error) {
	if size <= 0 {
		return NilGAddr, fmt.Errorf("dmsim: Alloc size %d", size)
	}
	aligned := (size + 63) &^ 63
	if aligned > a.chunk {
		// Oversized request: dedicated RPC.
		addr, err := a.c.AllocRPC(a.nextMN, aligned)
		a.nextMN = (a.nextMN + 1) % a.c.f.MNs()
		return addr, err
	}
	if a.remain < aligned {
		chunk, err := a.c.AllocRPC(a.nextMN, a.chunk)
		if err != nil {
			return NilGAddr, err
		}
		a.nextMN = (a.nextMN + 1) % a.c.f.MNs()
		a.cur = chunk
		a.remain = a.chunk
	}
	addr := a.cur
	a.cur = a.cur.Add(uint64(aligned))
	a.remain -= aligned
	return addr, nil
}
