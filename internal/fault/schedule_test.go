package fault

import (
	"testing"

	"chime/internal/dmsim"
)

func TestScheduleDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, DropRate: 0.05, SpikeRate: 0.1, SpikeNs: 5000}
	a, b := NewSchedule(cfg), NewSchedule(cfg)
	var faults int
	for client := int64(1); client <= 4; client++ {
		for seq := int64(0); seq < 2000; seq++ {
			v := dmsim.VerbInfo{Client: client, Seq: seq, Now: seq * 100}
			da, db := a.Decide(v), b.Decide(v)
			if da != db {
				t.Fatalf("client %d seq %d: %+v vs %+v", client, seq, da, db)
			}
			if da != (dmsim.FaultDecision{}) {
				faults++
			}
		}
	}
	if faults == 0 {
		t.Fatal("rates of 5%/10% over 8000 rolls injected nothing")
	}
}

func TestScheduleSeedsDiffer(t *testing.T) {
	cfg := Config{Seed: 1, DropRate: 0.2}
	other := cfg
	other.Seed = 2
	a, b := NewSchedule(cfg), NewSchedule(other)
	same := true
	for seq := int64(0); seq < 500; seq++ {
		v := dmsim.VerbInfo{Client: 1, Seq: seq}
		if a.Decide(v) != b.Decide(v) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical decision streams")
	}
}

func TestScheduleZeroConfigInjectsNothing(t *testing.T) {
	s := NewSchedule(Config{Seed: 42})
	for seq := int64(0); seq < 1000; seq++ {
		d := s.Decide(dmsim.VerbInfo{Client: 9, Seq: seq, Now: seq})
		if d != (dmsim.FaultDecision{}) {
			t.Fatalf("seq %d: zero-rate schedule injected %+v", seq, d)
		}
	}
}

func TestScheduleWindows(t *testing.T) {
	s := NewSchedule(Config{
		Seed:      3,
		Blackouts: map[int][]Window{1: {{Start: 100, End: 200}}},
		NICDown:   map[int64][]Window{5: {{Start: 300, End: 400}}},
	})
	if d := s.Decide(dmsim.VerbInfo{Client: 5, MN: 1, Now: 150}); !d.MNDown {
		t.Fatalf("inside blackout: %+v", d)
	}
	if d := s.Decide(dmsim.VerbInfo{Client: 5, MN: 0, Now: 150}); d.MNDown {
		t.Fatalf("blackout leaked to another MN: %+v", d)
	}
	if d := s.Decide(dmsim.VerbInfo{Client: 5, MN: 1, Now: 200}); d.MNDown {
		t.Fatalf("window end is exclusive: %+v", d)
	}
	if d := s.Decide(dmsim.VerbInfo{Client: 5, MN: 0, Now: 350}); !d.NICUnavailable {
		t.Fatalf("inside NIC-down window: %+v", d)
	}
	if d := s.Decide(dmsim.VerbInfo{Client: 6, MN: 0, Now: 350}); d.NICUnavailable {
		t.Fatalf("NIC window leaked to another client: %+v", d)
	}
}

func TestScheduleCrashAfterLockAcquires(t *testing.T) {
	s := NewSchedule(Config{Seed: 1})
	const victim = int64(7)
	s.CrashAfterLockAcquires(victim, 2)

	lockCAS := func(client int64, swapped bool) dmsim.CASInfo {
		return dmsim.CASInfo{Client: client, Swapped: swapped, LockAcquire: true}
	}

	// Failed acquires and other clients' acquires don't count.
	s.ObserveCAS(lockCAS(victim, false))
	s.ObserveCAS(lockCAS(99, true))
	s.ObserveCAS(dmsim.CASInfo{Client: victim, Swapped: true}) // not a lock CAS
	if d := s.Decide(dmsim.VerbInfo{Client: victim}); d.Crash {
		t.Fatal("crashed before any counted acquire")
	}

	s.ObserveCAS(lockCAS(victim, true))
	if d := s.Decide(dmsim.VerbInfo{Client: victim}); d.Crash {
		t.Fatal("crashed after 1 of 2 acquires")
	}
	s.ObserveCAS(lockCAS(victim, true))
	if d := s.Decide(dmsim.VerbInfo{Client: victim}); !d.Crash {
		t.Fatal("must crash after the 2nd acquire")
	}
	// The verdict is sticky and victim-specific.
	if d := s.Decide(dmsim.VerbInfo{Client: victim}); !d.Crash {
		t.Fatal("crash verdict must latch")
	}
	if d := s.Decide(dmsim.VerbInfo{Client: 99}); d.Crash {
		t.Fatal("bystander crashed")
	}
	if got := s.LockAcquires(victim); got != 2 {
		t.Fatalf("LockAcquires = %d, want 2", got)
	}
}
