// Package fault provides the seeded, deterministic fault schedule the
// simulator's fault-injection plane (dmsim.FaultInjector) consumes.
//
// A Schedule never reads wall-clock time and never keeps hidden mutable
// randomness: every verdict is a pure function of the schedule's seed,
// the issuing client, the client's per-attempt verb sequence number, and
// the client's virtual clock. Two runs with the same seed, the same
// workload, and the same virtual-time interleaving therefore inject
// byte-for-byte identical faults — which is what makes chaos tests
// reproducible and fault-sweep benchmarks comparable across systems.
//
// Five failure modes are expressible:
//
//   - rate-based completion drops and latency spikes, rolled per verb
//     attempt from (seed, client, seq);
//   - transient NIC unavailability, as per-client virtual-time windows;
//   - memory-node blackouts, as per-MN virtual-time windows;
//   - whole-client crashes, triggered after the Nth successful remote
//     lock acquisition so victims die holding locks — the scenario the
//     lease-recovery machinery in the index layers exists to handle.
package fault

import (
	"sync"

	"chime/internal/dmsim"
)

// Window is a half-open virtual-time interval [Start, End) in
// nanoseconds during which a resource is dark.
type Window struct {
	Start int64
	End   int64
}

func (w Window) contains(t int64) bool { return t >= w.Start && t < w.End }

// Config parameterizes a Schedule. The zero value injects nothing.
type Config struct {
	// Seed drives every probabilistic roll. Schedules with equal seeds
	// and rates make identical decisions.
	Seed int64

	// DropRate is the per-verb-attempt probability of losing the
	// completion (the client times out and reposts).
	DropRate float64

	// SpikeRate is the per-verb-attempt probability of a latency spike
	// of SpikeNs virtual nanoseconds.
	SpikeRate float64
	SpikeNs   int64

	// NICDown lists, per client ID, windows during which that client's
	// NIC rejects posts.
	NICDown map[int64][]Window

	// Blackouts lists, per MN index, windows during which the node is
	// unreachable.
	Blackouts map[int][]Window
}

// Schedule is a deterministic dmsim.FaultInjector. Safe for concurrent
// use by any number of simulated clients.
type Schedule struct {
	cfg Config

	mu       sync.Mutex
	acquires map[int64]int64 // successful lock acquires per client
	crashAt  map[int64]int64 // acquire count that dooms the client
	doomed   map[int64]bool
}

// NewSchedule builds a schedule from the configuration.
func NewSchedule(cfg Config) *Schedule {
	return &Schedule{
		cfg:      cfg,
		acquires: make(map[int64]int64),
		crashAt:  make(map[int64]int64),
		doomed:   make(map[int64]bool),
	}
}

// CrashAfterLockAcquires dooms the client to crash on its first verb
// after the nth successful remote lock acquisition (n >= 1). The victim
// therefore dies while holding the lock it just won — mid-protocol,
// before the unlock — exercising stale-lock recovery in the survivors.
func (s *Schedule) CrashAfterLockAcquires(clientID int64, n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crashAt[clientID] = n
}

// ObserveCAS implements dmsim.FaultInjector: count successful
// lock-acquire CASes and arm the crash when a victim reaches its
// threshold.
func (s *Schedule) ObserveCAS(ci dmsim.CASInfo) {
	if !ci.LockAcquire || !ci.Swapped {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.acquires[ci.Client]++
	if at, ok := s.crashAt[ci.Client]; ok && s.acquires[ci.Client] >= at {
		s.doomed[ci.Client] = true
	}
}

// Decide implements dmsim.FaultInjector.
func (s *Schedule) Decide(v dmsim.VerbInfo) dmsim.FaultDecision {
	s.mu.Lock()
	doomed := s.doomed[v.Client]
	s.mu.Unlock()
	if doomed {
		return dmsim.FaultDecision{Crash: true}
	}
	for _, w := range s.cfg.Blackouts[v.MN] {
		if w.contains(v.Now) {
			return dmsim.FaultDecision{MNDown: true}
		}
	}
	for _, w := range s.cfg.NICDown[v.Client] {
		if w.contains(v.Now) {
			return dmsim.FaultDecision{NICUnavailable: true}
		}
	}
	if s.cfg.DropRate > 0 && hashUnit(s.cfg.Seed, v.Client, v.Seq, 0) < s.cfg.DropRate {
		return dmsim.FaultDecision{DropCompletion: true}
	}
	if s.cfg.SpikeRate > 0 && hashUnit(s.cfg.Seed, v.Client, v.Seq, 1) < s.cfg.SpikeRate {
		return dmsim.FaultDecision{ExtraLatencyNs: s.cfg.SpikeNs}
	}
	return dmsim.FaultDecision{}
}

// LockAcquires returns how many successful remote lock acquisitions the
// schedule has observed for the client.
func (s *Schedule) LockAcquires(clientID int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acquires[clientID]
}

// hashUnit maps (seed, client, seq, salt) to a uniform float64 in
// [0, 1) via splitmix64 finalization — stateless, so rate rolls are
// reproducible regardless of goroutine interleaving.
func hashUnit(seed, client, seq, salt int64) float64 {
	x := uint64(seed)
	x ^= uint64(client) * 0x9e3779b97f4a7c15
	x ^= uint64(seq) * 0xbf58476d1ce4e5b9
	x ^= uint64(salt) * 0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
