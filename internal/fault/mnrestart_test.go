package fault_test

// MN kill/restart chaos: the durability plane (dmsim Config.Persist +
// internal/folio) must make a memory-node crash survivable. The
// scenario composes every recovery mechanism in the repo:
//
//	phase 1: four workers update under an escalating fault schedule;
//	         two victims crash right after winning a remote lock, so
//	         orphaned lock words are sitting in MN memory — and in the
//	         write-behind log.
//	kill:    the MN crash-stops. Volatile memory is wiped; the folio
//	         store is left exactly as a power cut would (log flushed,
//	         dirty flag set).
//	restart: recovery replays snapshot + log. The restored image must
//	         be byte-identical to the pre-crash memory — including the
//	         orphaned locks — and the replay's virtual cost lands on
//	         the MN's busy horizons.
//	phase 2: fresh workers keep updating through the restored state,
//	         stealing any still-orphaned locks via the lease path.
//	verify:  a clean client proves no acked update from either phase
//	         was lost, the key set is exact, and lease recovery fired.
//
// Run for all four systems under -race (make chaos).

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"chime/internal/dmsim"
	"chime/internal/fault"
	"chime/internal/obs"
)

func TestChaosMNKillRestart(t *testing.T) {
	for _, sys := range chaosSystems() {
		sys := sys
		t.Run(sys.name, func(t *testing.T) {
			runChaosMNRestart(t, sys)
		})
	}
}

func runChaosMNRestart(t *testing.T, sys chaosSystem) {
	cfg := dmsim.DefaultConfig()
	cfg.MNSize = 96 << 20
	// Two worker fleets plus probes ≈ 10 clients; default 16 MB alloc
	// chunks would exhaust the MN before phase 2.
	cfg.ChunkBytes = 2 << 20
	cfg.Persist.Dir = t.TempDir()
	f := dmsim.MustNewFabric(cfg)
	sink := obs.NewSink(false)
	f.SetObserver(sink)

	keys := make([]uint64, chaosKeys)
	vals := make(map[uint64][]byte, chaosKeys)
	for i := range keys {
		k := uint64(i + 1)
		keys[i] = k
		vals[k] = loadValue(k)
	}
	newClient, err := sys.setup(f, sink, keys, vals)
	if err != nil {
		t.Fatalf("setup: %v", err)
	}

	logs := make([]*workerLog, chaosWorkers)
	for i := range logs {
		logs[i] = &workerLog{issued: map[uint64]uint64{}, acked: map[uint64]uint64{}}
	}

	// runPhase drives the standard interleaved-ownership worker fleet
	// for ops operations each, continuing each key's sequence numbers
	// across phases (the verifier attributes values by worker tag).
	runPhase := func(phase, ops int, clients []chaosClient) {
		var wg sync.WaitGroup
		for i := range clients {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				cl := clients[w]
				dc := cl.DM()
				dc.JoinCohort()
				defer dc.LeaveCohort()
				lg := logs[w]
				for op := 0; op < ops; op++ {
					key := keys[((phase*ops+op)*chaosWorkers+w)%chaosKeys]
					seq := lg.issued[key]
					lg.issued[key] = seq + 1
					if err := cl.Update(key, workerValue(w, int(seq))); err != nil {
						if dc.Crashed() {
							lg.crashed = true
							return
						}
						t.Errorf("phase %d worker %d: Update(%#x): %v", phase, w, key, err)
						return
					}
					lg.acked[key] = seq + 1
				}
			}(i)
		}
		wg.Wait()
	}

	// Phase 1: escalating faults plus two victims who die holding a
	// remote lock, leaving orphaned lock words in the durable log.
	sched := fault.NewSchedule(fault.Config{
		Seed:      7711,
		DropRate:  0.002,
		SpikeRate: 0.01,
		SpikeNs:   20_000,
	})
	f.SetFaultInjector(sched)
	phase1 := make([]chaosClient, chaosWorkers)
	for i := range phase1 {
		phase1[i] = newClient()
	}
	sched.CrashAfterLockAcquires(phase1[0].DM().ID(), 7)
	sched.CrashAfterLockAcquires(phase1[1].DM().ID(), 23)
	runPhase(0, chaosOpsPerWkr/2, phase1)
	if !logs[0].crashed || !logs[1].crashed {
		t.Fatalf("victims did not crash (worker0=%v worker1=%v)", logs[0].crashed, logs[1].crashed)
	}
	f.SetFaultInjector(nil)

	// Crash the MN at quiescence. Everything any worker was ever acked
	// for is in the folio snapshot+log; volatile memory dies.
	used := f.UsedBytes(0)
	pre := make([]byte, used)
	if err := f.Peek(dmsim.GAddr{MN: 0, Off: 0}, pre); err != nil {
		t.Fatal(err)
	}
	if err := f.KillMN(0); err != nil {
		t.Fatalf("KillMN: %v", err)
	}
	probe := newClient()
	if _, err := probe.Search(keys[0]); err == nil {
		t.Error("Search succeeded against a dead MN")
	}

	stats, err := f.RestartMN(0)
	if err != nil {
		t.Fatalf("RestartMN: %v", err)
	}
	if !stats.WasDirty {
		t.Error("restart did not see a dirty store (crash undetected)")
	}
	if stats.Records == 0 {
		t.Error("restart replayed no log records")
	}
	if stats.RecoverNs <= 0 {
		t.Errorf("RecoverNs = %d, want > 0", stats.RecoverNs)
	}
	post := make([]byte, used)
	if err := f.Peek(dmsim.GAddr{MN: 0, Off: 0}, post); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pre, post) {
		t.Fatal("restored MN memory differs from pre-crash state")
	}

	// Phase 2: a fresh fleet (same worker tags, continuing sequence
	// numbers) runs over the restored state under a new schedule. Any
	// lock a phase-1 victim still orphans is restored locked and must
	// be stolen via the lease path.
	sched2 := fault.NewSchedule(fault.Config{
		Seed:      9090,
		DropRate:  0.002,
		SpikeRate: 0.01,
		SpikeNs:   20_000,
	})
	f.SetFaultInjector(sched2)
	phase2 := make([]chaosClient, chaosWorkers)
	for i := range phase2 {
		phase2[i] = newClient()
	}
	runPhase(1, chaosOpsPerWkr/2, phase2)
	f.SetFaultInjector(nil)

	// Verify with a clean client: exact key set, every value
	// attributable and no older than its last ack — across the crash.
	ver := newClient()
	gotKeys, gotVals, err := ver.Scan(1, chaosKeys+16)
	if err != nil {
		t.Fatalf("verify scan: %v", err)
	}
	if len(gotKeys) != chaosKeys {
		t.Fatalf("scan returned %d keys, want %d", len(gotKeys), chaosKeys)
	}
	for i, k := range gotKeys {
		if k != keys[i] {
			t.Fatalf("scan[%d] = %#x, want %#x (duplicate or lost key)", i, k, keys[i])
		}
	}
	for i, k := range gotKeys {
		owner := int(k-1) % chaosWorkers
		lg := logs[owner]
		tag, seq := decodeValue(gotVals[i])
		switch {
		case tag == 0xFF:
			if lg.acked[k] != 0 {
				t.Fatalf("key %#x: load value survived but worker %d had %d acked updates (ack lost across MN crash)",
					k, owner, lg.acked[k])
			}
		case int(tag) == owner:
			if seq >= lg.issued[k] {
				t.Fatalf("key %#x: value seq %d was never issued (max %d)", k, seq, lg.issued[k])
			}
			if seq+1 < lg.acked[k] {
				t.Fatalf("key %#x: value seq %d older than last acked %d (ack lost across MN crash)",
					k, seq, lg.acked[k]-1)
			}
		default:
			t.Fatalf("key %#x: value tagged %d, owner is %d", k, tag, owner)
		}
	}
	if recov := sink.Registry().Snapshot().Counters[obs.NameRecovery]; recov == 0 {
		t.Error("no lease recoveries despite two crashed lock holders")
	}
	if testing.Verbose() {
		ps := f.PersistStats()
		fmt.Printf("%s: recovery pages=%d records=%d replayedBytes=%d recoverNs=%d logged{records=%d bytes=%d}\n",
			sys.name, stats.Pages, stats.Records, stats.PageBytes+stats.RecordBytes, stats.RecoverNs, ps.Records, ps.Bytes)
	}
}
